#!/usr/bin/env python3
"""Validates and summarizes a Chrome trace_event JSON file (obs/trace.h).

Schema validation: the file must be a JSON object with a `traceEvents`
list; every event must carry ph/pid/tid, "X" (complete) events must have
numeric ts >= 0 and dur >= 0 plus name/cat strings, and "M" (metadata)
events must be thread_name records. Unknown phases are rejected — the
exporter only emits X and M, so anything else means a corrupted or
foreign file.

Summary (per thread, from the thread_name metadata):
  - busy fraction: sum of span durations over the thread's active window
    (first span start to last span end); the remainder is wait/idle.
  - per-category and per-name span counts and total duration.
  - epoch critical path: for every epoch id observed in span args, the
    sealed-to-applied makespan (earliest span start to latest span end
    across ALL threads touching that epoch) vs the sum of its span
    durations — how much of each epoch's latency is actual work vs
    pipeline wait.

    python3 tools/trace_summary.py trace.json
    python3 tools/trace_summary.py trace.json --expect-thread apply

Exit codes (mirroring diff_bench_json.py): 0 the trace is valid (summary
printed), 1 the trace parsed but failed validation (schema violation,
empty event list, or a --expect-thread/--min-events expectation not met),
3 the input file is missing, unreadable, or not JSON at all — an
infrastructure failure callers must not confuse with "invalid trace".
"""

import argparse
import collections
import json
import sys


class BrokenInput(Exception):
    """The input file is missing, unreadable, or not parseable JSON."""


class InvalidTrace(Exception):
    """The file parsed but is not a valid exporter trace."""


def load_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        raise BrokenInput(f"cannot read '{path}': {err.strerror or err}")
    except json.JSONDecodeError as err:
        raise BrokenInput(
            f"'{path}' is not valid JSON (line {err.lineno}: {err.msg})")
    return data


def validate(data):
    """Returns (spans, thread_names) or raises InvalidTrace."""
    if not isinstance(data, dict):
        raise InvalidTrace(f"top level is {type(data).__name__}, not an "
                           "object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise InvalidTrace("missing or non-list 'traceEvents'")
    if not events:
        raise InvalidTrace("'traceEvents' is empty")
    spans = []
    thread_names = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise InvalidTrace(f"event {i} is not an object")
        ph = ev.get("ph")
        tid = ev.get("tid")
        if not isinstance(tid, int) or "pid" not in ev:
            raise InvalidTrace(f"event {i} lacks integer tid / pid")
        if ph == "M":
            if ev.get("name") != "thread_name" or not isinstance(
                    ev.get("args", {}).get("name"), str):
                raise InvalidTrace(f"metadata event {i} is not a "
                                   "thread_name record")
            thread_names[tid] = ev["args"]["name"]
        elif ph == "X":
            ts = ev.get("ts")
            dur = ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise InvalidTrace(f"event {i} has invalid ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise InvalidTrace(f"event {i} has invalid dur {dur!r}")
            if not isinstance(ev.get("name"), str) or not isinstance(
                    ev.get("cat"), str):
                raise InvalidTrace(f"event {i} lacks name/cat strings")
            spans.append(ev)
        else:
            raise InvalidTrace(f"event {i} has unexpected phase {ph!r} "
                               "(exporter only emits X and M)")
    if not spans:
        raise InvalidTrace("no complete ('X') events — metadata only")
    for ev in spans:
        if ev["tid"] not in thread_names:
            raise InvalidTrace(f"tid {ev['tid']} has spans but no "
                               "thread_name metadata")
    return spans, thread_names


def summarize(spans, thread_names):
    per_thread = collections.defaultdict(list)
    for ev in spans:
        per_thread[ev["tid"]].append(ev)

    print(f"trace_summary: {len(spans)} spans across "
          f"{len(per_thread)} threads")
    print(f"\n{'thread':<12} {'spans':>7} {'busy ms':>10} {'window ms':>10} "
          f"{'busy %':>7}")
    for tid in sorted(per_thread):
        evs = per_thread[tid]
        busy = sum(e["dur"] for e in evs)
        start = min(e["ts"] for e in evs)
        end = max(e["ts"] + e["dur"] for e in evs)
        window = max(end - start, 1e-9)
        print(f"{thread_names[tid]:<12} {len(evs):>7} {busy / 1e3:>10.3f} "
              f"{window / 1e3:>10.3f} {100 * min(busy / window, 1.0):>6.1f}%")

    by_key = collections.defaultdict(lambda: [0, 0.0])
    for ev in spans:
        entry = by_key[(ev["cat"], ev["name"])]
        entry[0] += 1
        entry[1] += ev["dur"]
    print(f"\n{'cat/name':<28} {'count':>7} {'total ms':>10} {'mean us':>10}")
    for (cat, name), (count, total) in sorted(
            by_key.items(), key=lambda kv: -kv[1][1]):
        print(f"{cat + '/' + name:<28} {count:>7} {total / 1e3:>10.3f} "
              f"{total / count:>10.3f}")

    # Epoch critical path: makespan vs summed work, across all threads.
    epochs = collections.defaultdict(list)
    for ev in spans:
        epoch = ev.get("args", {}).get("epoch", -1)
        if isinstance(epoch, int) and epoch >= 0:
            epochs[epoch].append(ev)
    if epochs:
        makespans = []
        for epoch, evs in epochs.items():
            start = min(e["ts"] for e in evs)
            end = max(e["ts"] + e["dur"] for e in evs)
            work = sum(e["dur"] for e in evs)
            makespans.append((end - start, work, epoch, len(evs)))
        makespans.sort(reverse=True)
        worst = makespans[0]
        mean_make = sum(m[0] for m in makespans) / len(makespans)
        print(f"\nepoch critical path ({len(epochs)} epochs): "
              f"mean makespan {mean_make / 1e3:.3f} ms")
        print(f"  worst epoch {worst[2]}: makespan {worst[0] / 1e3:.3f} ms, "
              f"summed work {worst[1] / 1e3:.3f} ms across {worst[3]} spans "
              f"(pipeline wait {max(worst[0] - worst[1], 0.0) / 1e3:.3f} ms)")
    else:
        print("\nno epoch-labelled spans (trace has no pipeline stages?)")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--expect-thread", action="append", default=[],
                    help="fail (exit 1) unless a thread with this name "
                         "recorded at least one span; repeatable")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail (exit 1) with fewer complete events")
    args = ap.parse_args()

    try:
        data = load_trace(args.trace)
    except BrokenInput as err:
        print(f"trace_summary: broken input: {err}", file=sys.stderr)
        return 3
    try:
        spans, thread_names = validate(data)
    except InvalidTrace as err:
        print(f"trace_summary: invalid trace: {err}", file=sys.stderr)
        return 1

    if len(spans) < args.min_events:
        print(f"trace_summary: only {len(spans)} complete events, expected "
              f">= {args.min_events}", file=sys.stderr)
        return 1
    recorded = {thread_names[ev["tid"]] for ev in spans}
    for name in args.expect_thread:
        if name not in recorded:
            print(f"trace_summary: expected spans from thread '{name}', "
                  f"saw only {sorted(recorded)}", file=sys.stderr)
            return 1

    summarize(spans, thread_names)
    return 0


if __name__ == "__main__":
    sys.exit(main())
