#!/usr/bin/env python3
"""Diffs two bench trajectory files (BENCH_*.json) record by record.

Records are matched on the full identity (harness, scale, metric,
threads); only matching pairs are compared. The direction of "better"
follows the unit: time units (s/ms/us/ns) regress when the value grows,
speedup-style units ('x') regress when it shrinks. Units that are neither
(counts, sizes) are reported as changed but never count as regressions.

    python3 tools/diff_bench_json.py BENCH_PR2.json BENCH_ci.json

Thresholds (relative change):
  --threshold T        change that counts as a regression or improvement
                       (default 0.10, i.e. 10%); regressions at this level
                       are WARNINGS only.
  --fail-threshold F   regressions beyond F are FAILURES: the diff exits 1.
                       Unset by default. The CI bench leg passes 0.25 so a
                       >25% regression of a matching record fails the run
                       while the 10% level stays a warning (single-shot
                       timings on shared runners are too noisy for a tight
                       hard gate).
  --fail-exclude RE    metrics matching this regex are still diffed and
                       WARN on regression, but never escalate to failures
                       (observability metrics like single-shot worst-case
                       latencies, where one scheduler preemption swings the
                       value far past any sane threshold).
  --strict             exit 1 on ANY regression (>= --threshold).

Exit codes: 0 ok (possibly with warnings), 1 failing regressions
(--fail-threshold breached, or --strict with any regression), 2 no
matching records between the files (e.g. after a metric rename) — callers
that only care about regressions should treat 2 as a warning, 3 an input
file is missing, unreadable, or not valid JSON (e.g. a bench leg that
crashed mid-write left a truncated BENCH_ci.json) — a broken input is an
infrastructure failure, not a perf verdict, so callers must not confuse
it with either "clean" (0) or "regressed" (1).
"""

import argparse
import json
import re
import sys

TIME_UNITS = {"s", "ms", "us", "ns"}
HIGHER_IS_BETTER_UNITS = {"x"}


class BrokenInput(Exception):
    """An input file is missing, unreadable, or not parseable JSON."""


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        raise BrokenInput(f"cannot read '{path}': {err.strerror or err}")
    except json.JSONDecodeError as err:
        raise BrokenInput(
            f"'{path}' is not valid JSON (line {err.lineno}: {err.msg}); "
            "the producing bench run likely crashed mid-write")
    if isinstance(data, dict):
        records = data.get("records", [])
    else:
        records = data
    if not isinstance(records, list):
        raise BrokenInput(f"'{path}' has no record list (got "
                          f"{type(records).__name__})")
    table = {}
    for rec in records:
        if not isinstance(rec, dict) or not isinstance(
                rec.get("value"), (int, float)):
            raise BrokenInput(f"'{path}' holds a malformed record: {rec!r:.80}")
        key = (rec.get("harness"), rec.get("scale"), rec.get("metric"),
               rec.get("threads"))
        # Duplicate identities (reruns in one file) keep the last record,
        # matching merge_bench_json's sorted order.
        table[key] = rec
    return table


def classify(unit, baseline, current, threshold):
    """Returns (kind, rel_change) with kind in regression/improvement/same."""
    if baseline == 0:
        return ("same", 0.0)
    rel = (current - baseline) / abs(baseline)
    if unit in TIME_UNITS:
        worse = rel > threshold
        better = rel < -threshold
    elif unit in HIGHER_IS_BETTER_UNITS:
        worse = rel < -threshold
        better = rel > threshold
    else:
        return ("other", rel)
    if worse:
        return ("regression", rel)
    if better:
        return ("improvement", rel)
    return ("same", rel)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="committed baseline (e.g. BENCH_PR2.json)")
    ap.add_argument("current", help="fresh trajectory (e.g. BENCH_ci.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change that counts (default 0.10)")
    ap.add_argument("--fail-threshold", type=float, default=None,
                    help="regressions beyond this exit 1 (default: never)")
    ap.add_argument("--fail-exclude", type=str, default=None,
                    help="metric regex that can warn but never fail")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression is found")
    args = ap.parse_args()

    try:
        base = load_records(args.baseline)
        cur = load_records(args.current)
    except BrokenInput as err:
        print(f"diff_bench_json: broken input: {err}", file=sys.stderr)
        return 3
    # Sort on the FULL record identity. Leaving scale (k[1]) out would make
    # multi-scale reports interleave scales in set-iteration order, which
    # varies run to run (tools/test_diff_bench_json.py pins this order).
    shared = sorted(set(base) & set(cur),
                    key=lambda k: (k[0] or "", k[1] or 0.0, k[2] or "",
                                   k[3] or 0))
    if not shared:
        print("diff_bench_json: no matching {harness, scale, metric, threads} "
              "records between the two files", file=sys.stderr)
        return 2

    warnings = []
    failures = []
    improvements = []
    for key in shared:
        b = base[key]
        c = cur[key]
        kind, rel = classify(b.get("unit"), b["value"], c["value"],
                             args.threshold)
        line = (f"{key[0]}/{key[2]} (scale={key[1]}, threads={key[3]}): "
                f"{b['value']:.6g} -> {c['value']:.6g} {b.get('unit', '')} "
                f"({rel:+.1%})")
        if kind == "regression":
            excluded = (args.fail_exclude is not None
                        and re.search(args.fail_exclude, key[2] or ""))
            if (args.fail_threshold is not None
                    and abs(rel) > args.fail_threshold and not excluded):
                failures.append(line)
            else:
                warnings.append(line)
        elif kind == "improvement":
            improvements.append(line)

    print(f"diff_bench_json: {len(shared)} matching records "
          f"({len(base)} baseline, {len(cur)} current), "
          f"threshold {args.threshold:.0%}" +
          (f", fail threshold {args.fail_threshold:.0%}"
           if args.fail_threshold is not None else ""))
    for line in improvements:
        print(f"  IMPROVED   {line}")
    for line in warnings:
        print(f"  WARNING: REGRESSION {line}")
    for line in failures:
        print(f"  FAIL: REGRESSION {line}")
    if not warnings and not failures:
        print("diff_bench_json: no regressions")
    if failures:
        print(f"diff_bench_json: {len(failures)} regression(s) beyond the "
              f"{args.fail_threshold:.0%} fail threshold", file=sys.stderr)
        return 1
    if warnings and args.strict:
        print(f"diff_bench_json: {len(warnings)} regression(s) with "
              "--strict", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
