#!/usr/bin/env python3
"""Golden test for tools/diff_bench_json.py's report order and verdicts.

Regression pinned here: shared record keys are (harness, scale, metric,
threads) but the report used to sort on (harness, metric, threads) only,
so multi-scale trajectories interleaved their scales in set-iteration
order — which varies between Python processes (hash randomization), making
two CI runs of the same diff print different reports. The golden below
fails if scale ever drops out of the sort key again.

Run directly (exit 0 = pass) or via CTest (test name diff_bench_json_golden):

    python3 tools/test_diff_bench_json.py
"""

import json
import os
import subprocess
import sys
import tempfile

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "diff_bench_json.py")


def record(harness, scale, metric, threads, value, unit):
    return {"harness": harness, "scale": scale, "metric": metric,
            "threads": threads, "value": value, "unit": unit}


def run_diff(base_records, cur_records, *extra_args):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cur_path = os.path.join(tmp, "cur.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump({"records": base_records}, fh)
        with open(cur_path, "w", encoding="utf-8") as fh:
            json.dump({"records": cur_records}, fh)
        proc = subprocess.run(
            [sys.executable, TOOL, base_path, cur_path, *extra_args],
            capture_output=True, text=True)
    return proc.returncode, proc.stdout


def main():
    # Two harnesses x two scales x two metrics, every record changed enough
    # to appear in the report. The golden order is the full-identity sort:
    # harness, then scale, then metric, then threads.
    base = []
    cur = []
    for harness in ("fig4_right", "fig_shard_scaling"):
        for scale in (0.05, 0.5):
            for metric, threads in (("ingest_seconds", 1),
                                    ("ingest_seconds", 4),
                                    ("speedup", 4)):
                unit = "s" if metric.endswith("seconds") else "x"
                base.append(record(harness, scale, metric, threads, 1.0, unit))
                # Times regress up, speedups improve up: both land in the
                # report, exercising both verdict branches at every key.
                cur.append(record(harness, scale, metric, threads, 1.2, unit))

    rc, out = run_diff(base, cur)
    if rc != 0:
        print(f"FAIL: expected exit 0 (warnings only), got {rc}\n{out}")
        return 1

    lines = [ln.strip() for ln in out.splitlines()
             if "REGRESSION" in ln or "IMPROVED" in ln]
    expected = []
    for harness in ("fig4_right", "fig_shard_scaling"):
        for scale in (0.05, 0.5):
            expected.append(
                f"IMPROVED   {harness}/speedup (scale={scale}, threads=4): "
                f"1 -> 1.2 x (+20.0%)")
            for threads in (1, 4):
                expected.append(
                    f"WARNING: REGRESSION {harness}/ingest_seconds "
                    f"(scale={scale}, threads={threads}): "
                    f"1 -> 1.2 s (+20.0%)")
    # Improvements print before warnings; within each group the shared-key
    # sort (harness, scale, metric, threads) applies.
    expected.sort(key=lambda ln: "IMPROVED" not in ln)
    got_improved = [ln for ln in lines if ln.startswith("IMPROVED")]
    got_warned = [ln for ln in lines if ln.startswith("WARNING")]
    want_improved = [ln for ln in expected if ln.startswith("IMPROVED")]
    want_warned = [ln for ln in expected if ln.startswith("WARNING")]
    if got_improved != want_improved or got_warned != want_warned:
        print("FAIL: report order drifted from the golden "
              "(harness, scale, metric, threads) sort")
        print("--- got ---")
        print("\n".join(lines))
        print("--- want ---")
        print("\n".join(want_improved + want_warned))
        return 1

    # The fail-threshold path must keep the same deterministic order.
    rc, out = run_diff(base, cur, "--fail-threshold", "0.15")
    if rc != 1:
        print(f"FAIL: expected exit 1 beyond the fail threshold, got {rc}")
        return 1
    fails = [ln.strip() for ln in out.splitlines() if ln.strip().startswith(
        "FAIL: REGRESSION")]
    want_fails = ["FAIL: REGRESSION " + ln[len("WARNING: REGRESSION "):]
                  for ln in want_warned]
    if fails != want_fails:
        print("FAIL: fail-path report order drifted\n--- got ---")
        print("\n".join(fails))
        print("--- want ---")
        print("\n".join(want_fails))
        return 1

    print("test_diff_bench_json: golden report order OK "
          f"({len(want_improved)} improvements, {len(want_warned)} "
          "regressions, both paths)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
