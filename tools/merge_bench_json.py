#!/usr/bin/env python3
"""Merges per-harness bench output into one trajectory file.

The bench-smoke CTest entries write machine-readable output under
<build>/bench-json/: the fig*/sec* harnesses emit JSON-lines records via
bench_util.h's sink ({harness, scale, metric, value, unit, threads}), and
the micro_* Google Benchmark binaries emit their native JSON report
(*.benchmark.json). This script normalizes both into a single sorted
record list:

    python3 tools/merge_bench_json.py <dir-or-files...> -o BENCH_ci.json

The output is the repo's trajectory format (BENCH_*.json): a JSON object
with a `records` array sorted by (harness, metric, threads) plus a small
metadata header. Fails (exit 1) when no records are found — an empty
"baseline" would silently hide a broken bench leg.
"""

import argparse
import json
import os
import sys


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: bad JSON record: {e}")
            for field in ("harness", "metric", "value", "unit", "threads"):
                if field not in rec:
                    raise SystemExit(
                        f"{path}:{lineno}: record missing '{field}': {rec}")
            records.append(rec)
    return records


def load_google_benchmark(path):
    """Normalizes a Google Benchmark JSON report into sink-style records."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    harness = os.path.basename(path).split(".")[0]
    records = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        records.append({
            "harness": harness,
            "scale": None,
            "metric": b.get("name", "unknown"),
            "value": b.get("real_time", 0.0),
            "unit": b.get("time_unit", "ns"),
            "threads": b.get("threads", 1),
        })
    return records


def collect(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(
                os.path.join(p, f) for f in sorted(os.listdir(p))
                if f.endswith(".jsonl") or f.endswith(".benchmark.json"))
        else:
            files.append(p)
    records = []
    for f in files:
        if f.endswith(".benchmark.json"):
            records.extend(load_google_benchmark(f))
        else:
            records.extend(load_jsonl(f))
    return files, records


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="bench-json directory or individual record files")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument("--label", default="ci",
                    help="free-form label recorded in the header")
    args = ap.parse_args()

    files, records = collect(args.inputs)
    if not records:
        print(f"merge_bench_json: no records found in {args.inputs}",
              file=sys.stderr)
        return 1
    records.sort(key=lambda r: (r["harness"], r["metric"], r["threads"]))
    out = {
        "label": args.label,
        "host_cpus": os.cpu_count(),
        "source_files": [os.path.basename(f) for f in files],
        "record_count": len(records),
        "records": records,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=1)
        fh.write("\n")
    print(f"merge_bench_json: {len(records)} records from "
          f"{len(files)} files -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
