// Section 2.3 reproduction: aggregates with additive inequality conditions
// (SUM WHERE w1*X1 + w2*X2 > c across a join). The classical evaluation
// enumerates the join; the factorized algorithm sorts per key and answers
// each probe with a binary search, so its cost stays ~N log N while the
// naive cost grows with the join's output. We sweep the key-domain size:
// smaller domains mean fatter joins and a larger gap.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "inequality/inequality_join.h"
#include "util/rng.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const int n = static_cast<int>(100000 * bench::ScaleMultiplier());
  bench::PrintHeader("SEC 2.3",
                     "Additive-inequality aggregate: SUM(m) WHERE x + y > 0");
  std::printf("N = %d tuples per relation; sweeping join fan-out\n\n", n);
  std::printf("%8s %14s | %10s %10s | %8s | %s\n", "domain", "join tuples",
              "naive (s)", "sorted (s)", "speedup", "values agree");

  for (int32_t domain : {10000, 1000, 100, 25}) {
    Relation r("R", Schema({{"k", AttrType::kCategorical},
                            {"x", AttrType::kDouble},
                            {"m", AttrType::kDouble}}));
    Relation s("S", Schema({{"k", AttrType::kCategorical},
                            {"y", AttrType::kDouble}}));
    Rng rng(42);
    for (int i = 0; i < n; ++i) {
      r.AppendRow({static_cast<double>(rng.Below(domain)),
                   rng.Uniform(-1, 1), rng.Uniform(0, 1)});
      s.AppendRow({static_cast<double>(rng.Below(domain)),
                   rng.Uniform(-1, 1)});
    }
    InequalityAggregateSpec spec;
    spec.r_measure_attr = 2;

    WallTimer t_naive;
    InequalityAggregateResult naive = InequalityAggregateNaive(r, s, spec);
    double naive_secs = t_naive.Seconds();

    WallTimer t_sorted;
    InequalityAggregateResult sorted = InequalityAggregateSorted(r, s, spec);
    double sorted_secs = t_sorted.Seconds();

    bool agree =
        std::abs(naive.value - sorted.value) <= 1e-6 * (1 + naive.value);
    std::printf("%8d %14zu | %10.3f %10.3f | %7.1fx | %s\n", domain,
                naive.tuples_inspected, naive_secs, sorted_secs,
                naive_secs / std::max(1e-9, sorted_secs),
                agree ? "yes" : "NO (BUG)");
    const std::string suffix = "/domain_" + std::to_string(domain);
    bench::Report("naive_seconds" + suffix, naive_secs, "s");
    bench::Report("sorted_seconds" + suffix, sorted_secs, "s");
    bench::Report("inequality_speedup" + suffix,
                  naive_secs / std::max(1e-9, sorted_secs), "x");
  }
  std::printf("\nShape: the sorted algorithm's time is flat in the fan-out; "
              "the naive algorithm scales with the join size (Sec. 2.3: "
              "\"polynomially less time\").\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "sec23_inequality_join");
  relborg::Run();
  return 0;
}
