// Shared helpers for the experiment harnesses (fig*/sec* binaries).
//
// Every harness prints a self-describing table mirroring one figure/table
// of the paper. Scales default to values that finish in seconds on a
// 2-core container and can be overridden with RELBORG_SCALE (a multiplier
// applied to each harness's default dataset scale).
#ifndef RELBORG_BENCH_BENCH_UTIL_H_
#define RELBORG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace relborg {
namespace bench {

inline double ScaleMultiplier() {
  const char* env = std::getenv("RELBORG_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1073741824.0);
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1048576.0);
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace relborg

#endif  // RELBORG_BENCH_BENCH_UTIL_H_
