// Shared helpers for the experiment harnesses (fig*/sec* binaries).
//
// Every harness prints a self-describing table mirroring one figure/table
// of the paper. Scales default to values that finish in seconds on a
// 2-core container and can be overridden with RELBORG_SCALE (a multiplier
// applied to each harness's default dataset scale).
//
// Machine-readable trajectory: when RELBORG_BENCH_JSON=<path> is set (or
// `--json <path>` / `--json=<path>` is passed), every bench::Report call
// appends one JSON-lines record to <path>:
//
//   {"harness": "...", "scale": <RELBORG_SCALE multiplier>,
//    "metric": "...", "value": <double>, "unit": "...", "threads": <int>}
//
// The CI bench leg points each harness at its own file and merges them
// into BENCH_ci.json (tools/merge_bench_json.py), so trajectory
// collection never scrapes stdout.
#ifndef RELBORG_BENCH_BENCH_UTIL_H_
#define RELBORG_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace relborg {
namespace bench {

inline double ScaleMultiplier() {
  const char* env = std::getenv("RELBORG_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !std::isfinite(v) || v <= 0) {
    // A silently coerced scale would record baseline numbers for a dataset
    // size nobody asked for; refuse instead of faking the trajectory.
    std::fprintf(stderr,
                 "RELBORG_SCALE='%s' is not a positive finite number; "
                 "refusing to run with a coerced scale.\n",
                 env);
    std::exit(2);
  }
  return v;
}

namespace internal {

struct JsonSink {
  std::FILE* file = nullptr;
  std::string harness = "unknown";

  ~JsonSink() {
    if (file != nullptr) std::fclose(file);
  }
};

inline JsonSink& Sink() {
  static JsonSink sink;
  return sink;
}

// Metric/unit strings are repo-controlled identifiers; escape the few JSON
// metacharacters anyway so a stray quote cannot corrupt the record stream.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace internal

// Opens the JSON sink from `--json <path>` / `--json=<path>` (consumed
// from argv) or RELBORG_BENCH_JSON, whichever comes first. Call at the top
// of main(); without a path every Report is a no-op. The file is truncated
// per run, so a harness's records always describe one execution.
inline void InitReporting(int* argc, char** argv, const std::string& harness) {
  internal::JsonSink& sink = internal::Sink();
  sink.harness = harness;
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (path.empty()) {
    const char* env = std::getenv("RELBORG_BENCH_JSON");
    if (env != nullptr && *env != '\0') path = env;
  }
  if (path.empty()) return;
  sink.file = std::fopen(path.c_str(), "w");
  if (sink.file == nullptr) {
    std::fprintf(stderr, "cannot open bench JSON sink '%s'\n", path.c_str());
    std::exit(2);
  }
}

// Emits one record. `threads` is the thread count the measurement ran
// with (1 for serial / non-engine metrics).
inline void Report(const std::string& metric, double value,
                   const std::string& unit, int threads = 1) {
  internal::JsonSink& sink = internal::Sink();
  if (sink.file == nullptr) return;
  std::fprintf(sink.file,
               "{\"harness\":\"%s\",\"scale\":%.6g,\"metric\":\"%s\","
               "\"value\":%.17g,\"unit\":\"%s\",\"threads\":%d}\n",
               internal::JsonEscape(sink.harness).c_str(), ScaleMultiplier(),
               internal::JsonEscape(metric).c_str(), value,
               internal::JsonEscape(unit).c_str(), threads);
  std::fflush(sink.file);
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1073741824.0);
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1048576.0);
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace relborg

#endif  // RELBORG_BENCH_BENCH_UTIL_H_
