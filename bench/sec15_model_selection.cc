// Section 1.5 reproduction: "faster training can mean better accuracy" —
// once the covariance matrix is computed, a new model over any feature
// subset trains in milliseconds, so exploring many models costs almost
// nothing; the structure-agnostic alternative re-scans the data matrix per
// candidate model.
//
// The paper's numbers: 50ms per model from the covariance matrix vs >7,000s
// per TensorFlow scan at 84M rows.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/materializer.h"
#include "baseline/sgd_learner.h"
#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ml/model_selection.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  const int response = fm.num_features() - 1;

  bench::PrintHeader("SEC 1.5", "Model selection: many models, one data pass");

  WallTimer t_batch;
  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  double batch_secs = t_batch.Seconds();

  // Structure-aware: forward selection, every candidate model from the
  // same matrix.
  WallTimer t_select;
  ModelSelectionOptions opts;
  opts.max_features = 6;
  ModelSelectionResult sel = ForwardSelect(covar, response, opts);
  double select_secs = t_select.Seconds();

  // Structure-agnostic: one SGD retrain per candidate model, each a full
  // pass over the materialized matrix. (We time a few and extrapolate.)
  WallTimer t_join;
  DataMatrix matrix = MaterializeJoin(tree, fm);
  double join_secs = t_join.Seconds();
  const int sgd_samples = 3;
  WallTimer t_sgd;
  for (int i = 0; i < sgd_samples; ++i) {
    SgdOptions sgd_opts;
    TrainSgd(matrix, response, sgd_opts);
  }
  double sgd_per_model = t_sgd.Seconds() / sgd_samples;

  std::printf("Covariance batch over the join: %.3f s (once)\n", batch_secs);
  std::printf("Models evaluated by forward selection: %zu in %.3f s "
              "(%.3f ms/model)\n",
              sel.models_evaluated, select_secs,
              1e3 * select_secs / std::max<size_t>(1, sel.models_evaluated));
  std::printf("Structure-agnostic: join %.3f s + %.3f s per SGD model\n",
              join_secs, sgd_per_model);
  double agnostic_total =
      join_secs + sgd_per_model * static_cast<double>(sel.models_evaluated);
  double aware_total = batch_secs + select_secs;
  std::printf("Exploring the same %zu models: %.3f s vs %.3f s  (%.0fx)\n",
              sel.models_evaluated, agnostic_total, aware_total,
              agnostic_total / std::max(1e-9, aware_total));
  double per_model_aware =
      select_secs / std::max<size_t>(1, sel.models_evaluated);
  std::printf("Marginal cost per additional model: %.4f ms vs %.1f ms "
              "(%.0fx per model)\n",
              1e3 * per_model_aware, 1e3 * sgd_per_model,
              sgd_per_model / std::max(1e-9, per_model_aware));
  bench::Report("covar_batch_seconds", batch_secs, "s");
  bench::Report("models_evaluated",
                static_cast<double>(sel.models_evaluated), "count");
  bench::Report("aware_ms_per_model", 1e3 * per_model_aware, "ms");
  bench::Report("agnostic_ms_per_model", 1e3 * sgd_per_model, "ms");
  bench::Report("exploration_speedup",
                agnostic_total / std::max(1e-9, aware_total), "x");
  std::printf("\nSelection path (feature -> training MSE):\n");
  for (const SelectionStep& s : sel.steps) {
    std::printf("  + %-28s mse %.4f\n", fm.name(s.added_feature).c_str(),
                s.mse);
  }
  std::printf("Paper: 50 ms per additional model from the covariance matrix "
              "vs a >7,000 s data-matrix scan per TensorFlow model.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "sec15_model_selection");
  relborg::Run();
  return 0;
}
