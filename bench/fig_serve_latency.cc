// Closed-loop serving benchmark for the snapshot server (src/serve/):
// N client threads hammer BeginSnapshot / Covar / GroupBy / TrainModel
// against a LIVE Retailer insert stream and we measure both sides of the
// isolation-vs-interference tradeoff (the HTAP question Polynesia,
// arXiv:2103.00798, frames for ingest+analytics systems):
//
//   * read latency  — per-query wall time at p50 / p99 / p999, split by
//                     query kind (covar read, group-by, model refresh);
//   * ingest impact — sustained tuples/sec with readers OFF vs ON (the
//                     serve layer's contract is that snapshot reads never
//                     block the committer or compute stage, only the
//                     applier's fold into the one view being read).
//
// Reported for the zero-copy pinned path (CovarFivm: clients read COW-
// pinned arena snapshots in place) and the boundary-copy path
// (HigherOrderIvm: clients read a payload copied at the epoch boundary) —
// the copy path's reads cost nothing at query time but its snapshots cost
// O(n^2) per epoch on the pipeline's serial stage.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "serve/snapshot_server.h"
#include "stream/stream_scheduler.h"
#include "util/timer.h"

namespace relborg {
namespace {

constexpr int kReaderThreads = 4;

struct LatencyRecorder {
  std::vector<double> covar_us;
  std::vector<double> groupby_us;
  std::vector<double> model_us;
};

double Percentile(std::vector<double>* v, double q) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  const size_t idx = std::min(v->size() - 1,
                              static_cast<size_t>(q * v->size()));
  return (*v)[idx];
}

struct ServeRunResult {
  double ingest_tuples_per_sec = 0;
  double queries_per_sec = 0;
  size_t queries = 0;
  LatencyRecorder latencies;  // merged across reader threads
};

// Streams `stream` through the scheduler; with `readers` on, kReaderThreads
// closed-loop clients issue a covar read per iteration, a group-by every
// 8th and a model refresh every 64th, until ingest finishes.
template <typename Strategy>
ServeRunResult DriveServe(const Dataset& ds,
                          const std::vector<UpdateBatch>& stream,
                          const ExecPolicy& policy, bool readers) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  Strategy strategy(&shadow, &fm, policy);
  const int response = fm.num_features() - 1;
  const int root = shadow.tree().root();
  const std::vector<int>& children = shadow.tree().node(root).children;
  const int gb_node = children.empty() ? root : children[0];
  constexpr bool kPinned = serve_internal::HasServePin<Strategy>::value;

  ServeRunResult result;
  std::vector<LatencyRecorder> per_thread(readers ? kReaderThreads : 0);
  double serve_seconds = 0;
  WallTimer timer;
  {
    StreamScheduler<Strategy> scheduler(&shadow, &strategy);
    SnapshotServer<Strategy> server(&scheduler, &shadow, &strategy);
    std::atomic<bool> done{false};
    std::vector<std::thread> clients;
    if (readers) {
      clients.reserve(kReaderThreads);
      for (int t = 0; t < kReaderThreads; ++t) {
        clients.emplace_back([&, t] {
          LatencyRecorder& rec = per_thread[t];
          size_t iter = 0;
          while (!done.load(std::memory_order_acquire)) {
            ++iter;
            WallTimer q;
            auto txn = server.BeginSnapshot();
            CovarMatrix m = server.Covar(txn);
            rec.covar_us.push_back(q.Seconds() * 1e6);
            if constexpr (kPinned) {
              if (iter % 8 == 0) {
                WallTimer g;
                (void)server.GroupBy(txn, gb_node);
                rec.groupby_us.push_back(g.Seconds() * 1e6);
              }
            }
            if (iter % 64 == 0 && m.count() > 100) {
              WallTimer tm;
              (void)server.TrainModel(txn, response);
              rec.model_us.push_back(tm.Seconds() * 1e6);
            }
            server.EndSnapshot(&txn);
          }
        });
      }
    }
    WallTimer serve_timer;
    for (const UpdateBatch& batch : stream) scheduler.Push(batch);
    scheduler.Finish();
    serve_seconds = serve_timer.Seconds();
    done.store(true, std::memory_order_release);
    for (std::thread& c : clients) c.join();
  }
  const double total_seconds = timer.Seconds();
  result.ingest_tuples_per_sec =
      StreamRowCount(stream) / std::max(1e-9, total_seconds);
  for (LatencyRecorder& rec : per_thread) {
    result.queries += rec.covar_us.size() + rec.groupby_us.size() +
                      rec.model_us.size();
    auto append = [](std::vector<double>* into, std::vector<double>* from) {
      into->insert(into->end(), from->begin(), from->end());
    };
    append(&result.latencies.covar_us, &rec.covar_us);
    append(&result.latencies.groupby_us, &rec.groupby_us);
    append(&result.latencies.model_us, &rec.model_us);
  }
  result.queries_per_sec = result.queries / std::max(1e-9, serve_seconds);
  return result;
}

void ReportKind(const std::string& tag, const std::string& kind,
                std::vector<double>* v, int threads) {
  if (v->empty()) return;
  const double p50 = Percentile(v, 0.50);
  const double p99 = Percentile(v, 0.99);
  const double p999 = Percentile(v, 0.999);
  std::printf("  %-8s p50 %9.1f us   p99 %9.1f us   p999 %9.1f us   "
              "(%zu queries)\n",
              kind.c_str(), p50, p99, p999, v->size());
  bench::Report(tag + "_" + kind + "_p50_us", p50, "us", threads);
  bench::Report(tag + "_" + kind + "_p99_us", p99, "us", threads);
  bench::Report(tag + "_" + kind + "_p999_us", p999, "us", threads);
}

template <typename Strategy>
void RunStrategy(const char* name, const char* tag, const Dataset& ds,
                 const std::vector<UpdateBatch>& stream,
                 const ExecPolicy& policy) {
  ServeRunResult off = DriveServe<Strategy>(ds, stream, policy, false);
  ServeRunResult on = DriveServe<Strategy>(ds, stream, policy, true);
  std::printf("\n%s (%d reader threads):\n", name, kReaderThreads);
  std::printf("  ingest   %11.0f tuples/s readers off, %11.0f readers on "
              "(%.1f%% impact), %.0f queries/s\n",
              off.ingest_tuples_per_sec, on.ingest_tuples_per_sec,
              100.0 * (1.0 - on.ingest_tuples_per_sec /
                                 std::max(1e-9, off.ingest_tuples_per_sec)),
              on.queries_per_sec);
  const std::string t(tag);
  bench::Report(t + "_ingest_tuples_per_sec_readers_off",
                off.ingest_tuples_per_sec, "tuples/s", policy.threads);
  bench::Report(t + "_ingest_tuples_per_sec_readers_on",
                on.ingest_tuples_per_sec, "tuples/s", policy.threads);
  bench::Report(t + "_queries_per_sec", on.queries_per_sec, "queries/s",
                kReaderThreads);
  ReportKind(t, "covar", &on.latencies.covar_us, kReaderThreads);
  ReportKind(t, "groupby", &on.latencies.groupby_us, kReaderThreads);
  ReportKind(t, "model", &on.latencies.model_us, kReaderThreads);
}

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);

  bench::PrintHeader(
      "SERVE", "Snapshot-consistent query serving under live ingest, "
               "Retailer (" + std::to_string(StreamRowCount(stream)) +
               " tuples, " + std::to_string(kReaderThreads) +
               " closed-loop readers)");

  ExecPolicy policy = ExecPolicy::FromEnv();
  policy.partition_grain = 128;
  RunStrategy<CovarFivm>("F-IVM (zero-copy pinned snapshots)", "fivm", ds,
                         stream, policy);
  RunStrategy<HigherOrderIvm>("higher-order IVM (boundary-copy snapshots)",
                              "higher", ds, stream, policy);
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig_serve_latency");
  relborg::Run();
  return 0;
}
