// Figure 4 (right) reproduction: maintaining the covariance matrix of the
// Retailer join under tuple insertions into an initially empty database.
//
//   F-IVM            one factorized view tree, compound covariance ring
//                    (maintenance shared across the aggregate batch),
//   higher-order IVM delta processing with intermediate views but one
//                    scalar view tree per aggregate (no sharing),
//   first-order IVM  classical delta processing: re-enumerates the delta
//                    join per batch, no intermediate views.
//
// The paper (Azure DS14, 1 thread, 1h timeout) shows F-IVM sustaining >1M
// tuples/s, orders of magnitude above both baselines, with first-order IVM
// degrading as the database grows. We report throughput at stream-fraction
// checkpoints; each strategy gets a wall-clock budget and is cut off when
// it exceeds it (mirroring the paper's timeout).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "util/timer.h"

namespace relborg {
namespace {

struct Checkpoint {
  double fraction;
  double tuples_per_sec;
};

template <typename Strategy>
std::vector<Checkpoint> Drive(const Dataset& ds,
                              const std::vector<UpdateBatch>& stream,
                              double budget_secs, const ExecPolicy& policy,
                              bool* timed_out) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  Strategy strategy(&shadow, &fm, policy);
  const size_t total = StreamRowCount(stream);
  std::vector<Checkpoint> checkpoints;
  size_t applied = 0;
  size_t next_mark = 1;
  size_t last_applied = 0;
  double last_elapsed = 0;
  WallTimer timer;
  *timed_out = false;
  for (const UpdateBatch& batch : stream) {
    size_t first = shadow.AppendRows(batch.node, batch.rows);
    strategy.ApplyBatch(batch.node, first, batch.rows.size());
    applied += batch.rows.size();
    double elapsed = timer.Seconds();
    if (applied * 10 >= next_mark * total) {
      // Incremental (per-decile) throughput, as the paper's plot reports
      // throughput at each point of the stream.
      checkpoints.push_back({static_cast<double>(next_mark) / 10.0,
                             (applied - last_applied) /
                                 std::max(1e-9, elapsed - last_elapsed)});
      last_applied = applied;
      last_elapsed = elapsed;
      ++next_mark;
    }
    if (elapsed > budget_secs) {
      *timed_out = true;
      break;
    }
  }
  if (!*timed_out &&
      (checkpoints.empty() || checkpoints.back().fraction < 1.0)) {
    checkpoints.push_back(
        {1.0, (applied - last_applied) /
                  std::max(1e-9, timer.Seconds() - last_elapsed)});
  }
  return checkpoints;
}

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);  // full 12-feature set: 91 aggregates

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);
  const size_t total = StreamRowCount(stream);
  const size_t num_aggs = CovarBatchSize(
      static_cast<int>(ds.features.size()));

  bench::PrintHeader(
      "FIG 4 (right)",
      "Covariance maintenance under inserts, Retailer (" +
          std::to_string(total) + " tuples, batches of 1000, " +
          std::to_string(num_aggs) + " aggregates)");

  // The exec policy (RELBORG_THREADS, default: hardware) parallelizes the
  // batched update application inside each strategy; results stay
  // bit-identical to a 1-thread run by construction. The default grain
  // (2048) would leave a 1000-row batch in one partition — i.e. F-IVM's
  // delta scan entirely serial — so size the grain to the batch: 128 rows
  // gives 8 partitions per batch, independent of the thread count.
  ExecPolicy policy = ExecPolicy::FromEnv();
  policy.partition_grain = 128;
  const double budget = 120.0;
  bool fivm_to = false, ho_to = false, fo_to = false;
  std::vector<Checkpoint> fivm =
      Drive<CovarFivm>(ds, stream, budget, policy, &fivm_to);
  std::vector<Checkpoint> higher =
      Drive<HigherOrderIvm>(ds, stream, budget, policy, &ho_to);
  std::vector<Checkpoint> first =
      Drive<FirstOrderIvm>(ds, stream, budget, policy, &fo_to);

  auto at = [](const std::vector<Checkpoint>& cps, size_t i) -> std::string {
    if (i < cps.size()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%11.0f", cps[i].tuples_per_sec);
      return buf;
    }
    return "    timeout";
  };
  std::printf("%-9s %11s %11s %11s   (tuples/sec)\n", "fraction", "F-IVM",
              "higher-ord", "first-ord");
  size_t rows = std::max({fivm.size(), higher.size(), first.size()});
  for (size_t i = 0; i < rows; ++i) {
    double frac = 0.1 * (i + 1);
    if (i < fivm.size()) frac = fivm[i].fraction;
    std::printf("%-9.1f %s %s %s\n", frac, at(fivm, i).c_str(),
                at(higher, i).c_str(), at(first, i).c_str());
  }
  if (!fivm.empty()) {
    bench::Report("fivm_final_tuples_per_sec", fivm.back().tuples_per_sec,
                  "tuples/s", policy.threads);
  }
  if (!higher.empty()) {
    bench::Report("higher_order_final_tuples_per_sec",
                  higher.back().tuples_per_sec, "tuples/s", policy.threads);
  }
  if (!first.empty()) {
    bench::Report("first_order_final_tuples_per_sec",
                  first.back().tuples_per_sec, "tuples/s", policy.threads);
  }
  if (!fivm.empty() && !higher.empty()) {
    std::printf("\nFinal F-IVM / higher-order throughput ratio: %.1fx\n",
                fivm.back().tuples_per_sec / higher.back().tuples_per_sec);
    bench::Report("fivm_over_higher_order",
                  fivm.back().tuples_per_sec / higher.back().tuples_per_sec,
                  "x", policy.threads);
  }
  if (!fivm.empty() && !first.empty()) {
    std::printf("Final F-IVM / first-order throughput ratio: %.1fx%s\n",
                fivm.back().tuples_per_sec / first.back().tuples_per_sec,
                fo_to ? " (first-order hit its time budget)" : "");
    bench::Report("fivm_over_first_order",
                  fivm.back().tuples_per_sec / first.back().tuples_per_sec,
                  "x", policy.threads);
  }
  std::printf("Paper: F-IVM >1M tuples/s, 1-2 orders of magnitude above "
              "higher-order IVM and further above first-order IVM, whose "
              "throughput decays as the database grows.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig4_right_ivm_throughput");
  relborg::Run();
  return 0;
}
