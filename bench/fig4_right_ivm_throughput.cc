// Figure 4 (right) reproduction: maintaining the covariance matrix of the
// Retailer join under tuple insertions into an initially empty database.
//
//   F-IVM            one factorized view tree, compound covariance ring
//                    (maintenance shared across the aggregate batch),
//   higher-order IVM delta processing with intermediate views but one
//                    scalar view tree per aggregate (no sharing),
//   first-order IVM  classical delta processing: re-enumerates the delta
//                    join per batch, no intermediate views.
//
// The paper (Azure DS14, 1 thread, 1h timeout) shows F-IVM sustaining >1M
// tuples/s, orders of magnitude above both baselines, with first-order IVM
// degrading as the database grows. We report throughput at stream-fraction
// checkpoints; each strategy gets a wall-clock budget and is cut off when
// it exceeds it (mirroring the paper's timeout).
//
// The ASYNC mode re-runs the faster strategies through the stream
// scheduler (src/stream/): a bounded ingress queue feeds an epoch
// assembler that coalesces and stages batches off the maintenance thread,
// a committer splices epoch N+1's chunks concurrently with epoch N's
// propagation (watermark-overlapped commits), and an applier maintains
// the epochs over the same ExecPolicy. Results are bit-identical to the
// serial epoch replay; the mode reports whole-stream throughput, the
// async/serial ratio, and per-epoch latency.
//
// With --epoch-rows-sweep the harness additionally sweeps the F-IVM async
// path over epoch sizes (epoch_rows in multiples of the batch size),
// reporting throughput, async/serial ratio and latency per size — the
// epoch-size knob trades epoch latency against coalescing/overlap gain,
// and the sweep records that whole tradeoff curve in the trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "obs/metrics.h"
#include "stream/stream_scheduler.h"
#include "util/timer.h"

namespace relborg {
namespace {

struct Checkpoint {
  double fraction;
  double tuples_per_sec;
};

struct DriveResult {
  std::vector<Checkpoint> checkpoints;
  size_t applied = 0;
  double seconds = 0;
  bool timed_out = false;

  double tuples_per_sec() const {
    return applied / std::max(1e-9, seconds);
  }
};

template <typename Strategy>
DriveResult Drive(const Dataset& ds, const std::vector<UpdateBatch>& stream,
                  double budget_secs, const ExecPolicy& policy) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  Strategy strategy(&shadow, &fm, policy);
  const size_t total = StreamRowCount(stream);
  DriveResult result;
  size_t next_mark = 1;
  size_t last_applied = 0;
  double last_elapsed = 0;
  WallTimer timer;
  for (const UpdateBatch& batch : stream) {
    size_t first = shadow.AppendRows(batch.node, batch.rows, batch.sign);
    strategy.ApplyBatch(batch.node, first, batch.rows.size());
    result.applied += batch.rows.size();
    double elapsed = timer.Seconds();
    if (result.applied * 10 >= next_mark * total) {
      // Incremental (per-decile) throughput, as the paper's plot reports
      // throughput at each point of the stream.
      result.checkpoints.push_back(
          {static_cast<double>(next_mark) / 10.0,
           (result.applied - last_applied) /
               std::max(1e-9, elapsed - last_elapsed)});
      last_applied = result.applied;
      last_elapsed = elapsed;
      ++next_mark;
    }
    if (elapsed > budget_secs) {
      result.timed_out = true;
      break;
    }
  }
  result.seconds = timer.Seconds();
  if (!result.timed_out && (result.checkpoints.empty() ||
                            result.checkpoints.back().fraction < 1.0)) {
    result.checkpoints.push_back(
        {1.0, (result.applied - last_applied) /
                  std::max(1e-9, result.seconds - last_elapsed)});
  }
  return result;
}

struct AsyncResult {
  StreamStats stats;
  double seconds = 0;
  bool timed_out = false;
  // Epoch-latency quantiles from the scheduler's registry histogram
  // (relborg_stream_epoch_latency_seconds); the flat StreamStats only
  // carries mean and max. Valid only when has_latency is set — a
  // zero-epoch run (e.g. a sweep config whose whole stream fits one
  // unsealed epoch at tiny scale) has an EMPTY histogram, and reporting
  // its 0.0 quantiles would poison the committed trajectory baseline.
  bool has_latency = false;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;

  double tuples_per_sec() const {
    return stats.rows / std::max(1e-9, seconds);
  }
};

template <typename Strategy>
AsyncResult DriveAsync(const Dataset& ds,
                       const std::vector<UpdateBatch>& stream,
                       double budget_secs, const ExecPolicy& policy,
                       const StreamOptions& options) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  Strategy strategy(&shadow, &fm, policy);
  AsyncResult result;
  // The harness reuses `stream` across strategies, so hand the scheduler a
  // disposable copy made OUTSIDE the measured region: a live producer
  // moves batches into Push rather than keeping them, and the serial path
  // likewise reads the shared stream without duplicating it.
  std::vector<UpdateBatch> feed = stream;
  // External registry so the per-stage histograms survive the scheduler:
  // quantiles come from the registry, not from the flat StreamStats.
  obs::MetricsRegistry registry;
  StreamOptions instrumented = options;
  instrumented.metrics = &registry;
  WallTimer timer;
  {
    StreamScheduler<Strategy> scheduler(&shadow, &strategy, instrumented);
    for (UpdateBatch& batch : feed) {
      scheduler.Push(std::move(batch));
      if (timer.Seconds() > budget_secs) {
        result.timed_out = true;
        break;
      }
    }
    scheduler.Finish(&result.stats);
  }
  result.seconds = timer.Seconds();
  const obs::Histogram* latency =
      registry.FindHistogram("relborg_stream_epoch_latency_seconds");
  if (latency != nullptr && latency->Count() > 0) {
    result.has_latency = true;
    result.latency_p50 = latency->Quantile(0.50);
    result.latency_p95 = latency->Quantile(0.95);
    result.latency_p99 = latency->Quantile(0.99);
  }
  return result;
}

void Run(bool epoch_sweep) {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);  // full 12-feature set: 91 aggregates

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);
  const size_t total = StreamRowCount(stream);
  const size_t num_aggs = CovarBatchSize(
      static_cast<int>(ds.features.size()));

  bench::PrintHeader(
      "FIG 4 (right)",
      "Covariance maintenance under inserts, Retailer (" +
          std::to_string(total) + " tuples, batches of 1000, " +
          std::to_string(num_aggs) + " aggregates)");

  // The exec policy (RELBORG_THREADS, default: hardware) parallelizes the
  // batched update application inside each strategy; results stay
  // bit-identical to a 1-thread run by construction. The default grain
  // (2048) would leave a 1000-row batch in one partition — i.e. F-IVM's
  // delta scan entirely serial — so size the grain to the batch: 128 rows
  // gives 8 partitions per batch, independent of the thread count.
  ExecPolicy policy = ExecPolicy::FromEnv();
  policy.partition_grain = 128;
  const double budget = 120.0;
  DriveResult fivm = Drive<CovarFivm>(ds, stream, budget, policy);
  DriveResult higher = Drive<HigherOrderIvm>(ds, stream, budget, policy);
  DriveResult first = Drive<FirstOrderIvm>(ds, stream, budget, policy);

  auto at = [](const std::vector<Checkpoint>& cps, size_t i) -> std::string {
    if (i < cps.size()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%11.0f", cps[i].tuples_per_sec);
      return buf;
    }
    return "    timeout";
  };
  std::printf("%-9s %11s %11s %11s   (tuples/sec)\n", "fraction", "F-IVM",
              "higher-ord", "first-ord");
  size_t rows = std::max({fivm.checkpoints.size(), higher.checkpoints.size(),
                          first.checkpoints.size()});
  for (size_t i = 0; i < rows; ++i) {
    double frac = 0.1 * (i + 1);
    if (i < fivm.checkpoints.size()) frac = fivm.checkpoints[i].fraction;
    std::printf("%-9.1f %s %s %s\n", frac, at(fivm.checkpoints, i).c_str(),
                at(higher.checkpoints, i).c_str(),
                at(first.checkpoints, i).c_str());
  }
  if (!fivm.checkpoints.empty()) {
    bench::Report("fivm_final_tuples_per_sec",
                  fivm.checkpoints.back().tuples_per_sec, "tuples/s",
                  policy.threads);
  }
  if (!higher.checkpoints.empty()) {
    bench::Report("higher_order_final_tuples_per_sec",
                  higher.checkpoints.back().tuples_per_sec, "tuples/s",
                  policy.threads);
  }
  if (!first.checkpoints.empty()) {
    bench::Report("first_order_final_tuples_per_sec",
                  first.checkpoints.back().tuples_per_sec, "tuples/s",
                  policy.threads);
  }
  if (!fivm.checkpoints.empty() && !higher.checkpoints.empty()) {
    std::printf("\nFinal F-IVM / higher-order throughput ratio: %.1fx\n",
                fivm.checkpoints.back().tuples_per_sec /
                    higher.checkpoints.back().tuples_per_sec);
    bench::Report("fivm_over_higher_order",
                  fivm.checkpoints.back().tuples_per_sec /
                      higher.checkpoints.back().tuples_per_sec,
                  "x", policy.threads);
  }
  if (!fivm.checkpoints.empty() && !first.checkpoints.empty()) {
    std::printf("Final F-IVM / first-order throughput ratio: %.1fx%s\n",
                fivm.checkpoints.back().tuples_per_sec /
                    first.checkpoints.back().tuples_per_sec,
                first.timed_out ? " (first-order hit its time budget)" : "");
    bench::Report("fivm_over_first_order",
                  fivm.checkpoints.back().tuples_per_sec /
                      first.checkpoints.back().tuples_per_sec,
                  "x", policy.threads);
  }

  // --- Async pipelined mode (src/stream/) --------------------------------
  // The scheduler coalesces batches into epochs, stages ingestion off the
  // maintenance thread, and maintains independent view groups
  // concurrently; output is bit-identical to the serial epoch replay. The
  // first-order baseline is skipped — it times out already in serial mode
  // at default scale, so an async ratio would compare two truncations.
  StreamOptions stream_options;
  stream_options.epoch_rows = 8 * stream_opts.batch_size;
  AsyncResult fivm_async =
      DriveAsync<CovarFivm>(ds, stream, budget, policy, stream_options);
  AsyncResult higher_async = DriveAsync<HigherOrderIvm>(
      ds, stream, budget, policy, stream_options);

  std::printf("\nAsync pipelined mode (epochs of <=%zu rows / <=%zu "
              "batches):\n",
              stream_options.epoch_rows, stream_options.epoch_batches);
  auto report_async = [&](const char* name, const char* tag,
                          const AsyncResult& async, const DriveResult& serial) {
    std::printf(
        "  %-11s %11.0f tuples/s  (%zu epochs, %zu coalesced ranges, "
        "epoch latency mean %.2f ms / max %.2f ms)%s\n",
        name, async.tuples_per_sec(), async.stats.epochs, async.stats.ranges,
        async.stats.epoch_latency_mean_seconds * 1e3,
        async.stats.epoch_latency_max_seconds * 1e3,
        async.timed_out ? " [budget hit]" : "");
    bench::Report(std::string(tag) + "_async_tuples_per_sec",
                  async.tuples_per_sec(), "tuples/s", policy.threads);
    bench::Report(std::string(tag) + "_async_epoch_latency_mean_ms",
                  async.stats.epoch_latency_mean_seconds * 1e3, "ms",
                  policy.threads);
    bench::Report(std::string(tag) + "_async_epoch_latency_max_ms",
                  async.stats.epoch_latency_max_seconds * 1e3, "ms",
                  policy.threads);
    // Histogram-derived latency quantiles and per-stage time split (busy
    // vs gate wait) from the scheduler's metrics registry. Zero-epoch runs
    // have an empty latency histogram: no quantile records then, so a 0.0
    // "latency" can never become a diffable baseline value.
    if (async.has_latency) {
      std::printf(
          "  %-11s epoch latency p50 %.2f ms / p95 %.2f ms / p99 %.2f ms; "
          "stage seconds apply %.2f commit %.2f compute %.2f (gate waits "
          "%.2f/%.2f/%.2f)\n",
          name, async.latency_p50 * 1e3, async.latency_p95 * 1e3,
          async.latency_p99 * 1e3, async.stats.apply_seconds,
          async.stats.commit_seconds, async.stats.compute_seconds,
          async.stats.maintain_gate_wait_seconds,
          async.stats.commit_gate_wait_seconds,
          async.stats.compute_gate_wait_seconds);
      bench::Report(std::string(tag) + "_async_epoch_latency_p50_ms",
                    async.latency_p50 * 1e3, "ms", policy.threads);
      bench::Report(std::string(tag) + "_async_epoch_latency_p95_ms",
                    async.latency_p95 * 1e3, "ms", policy.threads);
      bench::Report(std::string(tag) + "_async_epoch_latency_p99_ms",
                    async.latency_p99 * 1e3, "ms", policy.threads);
    } else {
      std::printf(
          "  %-11s no sealed epochs (latency histogram empty); stage "
          "seconds apply %.2f commit %.2f compute %.2f\n",
          name, async.stats.apply_seconds, async.stats.commit_seconds,
          async.stats.compute_seconds);
    }
    bench::Report(std::string(tag) + "_async_apply_seconds",
                  async.stats.apply_seconds, "s", policy.threads);
    bench::Report(std::string(tag) + "_async_commit_seconds",
                  async.stats.commit_seconds, "s", policy.threads);
    bench::Report(std::string(tag) + "_async_compute_seconds",
                  async.stats.compute_seconds, "s", policy.threads);
    bench::Report(std::string(tag) + "_async_gate_wait_seconds",
                  async.stats.maintain_gate_wait_seconds +
                      async.stats.commit_gate_wait_seconds +
                      async.stats.compute_gate_wait_seconds,
                  "s", policy.threads);
    // Compute-overlap observability: how far the speculative compute stage
    // ran ahead of maintenance, and how its speculations settled.
    std::printf(
        "  %-11s compute lead <=%zu epochs, %zu speculated (%zu hits / %zu "
        "misses), %zu probe-staged\n",
        name, async.stats.compute_overlap_epochs_max,
        async.stats.speculated_ranges, async.stats.speculation_hits,
        async.stats.speculation_misses, async.stats.probe_staged_ranges);
    bench::Report(std::string(tag) + "_compute_overlap_epochs_max",
                  static_cast<double>(async.stats.compute_overlap_epochs_max),
                  "epochs", policy.threads);
    if (!async.timed_out && !serial.timed_out) {
      const double ratio = async.tuples_per_sec() / serial.tuples_per_sec();
      std::printf("  %-11s async / serial stream throughput: %.2fx\n", name,
                  ratio);
      bench::Report(std::string(tag) + "_async_over_serial", ratio, "x",
                    policy.threads);
    }
  };
  report_async("F-IVM", "fivm", fivm_async, fivm);
  report_async("higher-ord", "higher_order", higher_async, higher);

  // --- Epoch-size sweep (--epoch-rows-sweep) -----------------------------
  // Small epochs minimize seal->applied latency but commit and propagate
  // often; large epochs coalesce more rows per delta and give the
  // committer more to overlap. Each size runs with the speculative compute
  // stage ON and OFF, so the trajectory records what multi-epoch delta
  // pipelining buys (or costs) at every point of the tradeoff curve,
  // including the per-mode epoch-latency distribution and how far the
  // compute stage actually ran ahead.
  if (epoch_sweep && !fivm.timed_out) {
    std::printf("\nEpoch-size sweep (F-IVM async, epoch_rows x batch size, "
                "compute overlap on/off):\n");
    for (size_t mult : {1, 2, 8, 32}) {
      StreamOptions sweep_options;
      sweep_options.epoch_rows = mult * stream_opts.batch_size;
      for (const bool overlap : {true, false}) {
        StreamOptions mode = sweep_options;
        mode.overlap_compute = overlap;
        // mult == 8 with overlap on is exactly the headline async
        // configuration above — reuse its measurement instead of
        // re-driving the whole stream.
        AsyncResult swept =
            overlap && mode.epoch_rows == stream_options.epoch_rows
                ? fivm_async
                : DriveAsync<CovarFivm>(ds, stream, budget, policy, mode);
        std::string suffix =
            "/epoch_rows=" + std::to_string(mode.epoch_rows);
        if (!overlap) suffix += "/overlap=off";
        std::printf(
            "  epoch_rows=%-6zu overlap=%-3s %11.0f tuples/s  (%zu epochs, "
            "latency mean %.2f ms / max %.2f ms, compute lead <=%zu "
            "epochs)%s\n",
            mode.epoch_rows, overlap ? "on" : "off", swept.tuples_per_sec(),
            swept.stats.epochs, swept.stats.epoch_latency_mean_seconds * 1e3,
            swept.stats.epoch_latency_max_seconds * 1e3,
            swept.stats.compute_overlap_epochs_max,
            swept.timed_out ? " [budget hit]" : "");
        bench::Report("fivm_async_tuples_per_sec" + suffix,
                      swept.tuples_per_sec(), "tuples/s", policy.threads);
        bench::Report("fivm_async_epoch_latency_mean_ms" + suffix,
                      swept.stats.epoch_latency_mean_seconds * 1e3, "ms",
                      policy.threads);
        bench::Report("fivm_async_epoch_latency_max_ms" + suffix,
                      swept.stats.epoch_latency_max_seconds * 1e3, "ms",
                      policy.threads);
        if (overlap) {
          bench::Report(
              "fivm_async_compute_overlap_epochs_max" + suffix,
              static_cast<double>(swept.stats.compute_overlap_epochs_max),
              "epochs", policy.threads);
        }
        if (!swept.timed_out) {
          bench::Report("fivm_async_over_serial" + suffix,
                        swept.tuples_per_sec() / fivm.tuples_per_sec(), "x",
                        policy.threads);
        }
      }
    }
  }

  std::printf("Paper: F-IVM >1M tuples/s, 1-2 orders of magnitude above "
              "higher-order IVM and further above first-order IVM, whose "
              "throughput decays as the database grows.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig4_right_ivm_throughput");
  bool epoch_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--epoch-rows-sweep") == 0) epoch_sweep = true;
  }
  relborg::Run(epoch_sweep);
  return 0;
}
