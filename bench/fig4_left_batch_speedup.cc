// Figure 4 (left) reproduction: speedup of the shared factorized engine
// (LMFAO) over query-at-a-time evaluation (the commercial DBX / MonetDB
// behaviour) for two aggregate batches on all four datasets:
//
//   C = the covariance-matrix batch,
//   R = a regression-tree node batch (count/sum/sumsq per candidate split).
//
// The paper reports speedups "on par with the number of aggregates" (10x to
// >1000x depending on dataset); our query-at-a-time baseline is charitable
// (it materializes the join once, then pays one scan per aggregate), so the
// expected shape is speedup ~ batch size / small constant.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/materializer.h"
#include "baseline/query_at_a_time.h"
#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "core/decision_node_engine.h"
#include "data/dataset.h"
#include "ml/decision_tree.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.02 * bench::ScaleMultiplier();
  bench::PrintHeader("FIG 4 (left)",
                     "Shared batch evaluation vs query-at-a-time");
  std::printf("%-10s %4s %6s | %10s %12s %9s | %s\n", "dataset", "batch",
              "#aggs", "shared (s)", "per-query(s)", "speedup",
              "join rows");

  for (const std::string& name : DatasetNames()) {
    GenOptions gen;
    gen.scale = scale;
    Dataset ds = MakeDataset(name, gen);
    FeatureMap fm(ds.query, ds.features);
    RootedTree tree = ds.RootAtFact();

    // --- Batch C: covariance matrix ---
    WallTimer t_shared;
    CovarMatrix shared = ComputeCovarMatrix(tree, fm);
    double shared_secs = t_shared.Seconds();

    // A DBMS executes each aggregate of the batch as its own query,
    // join included. We measure one join materialization plus every
    // aggregate's scan, then charge the join once per aggregate (its
    // per-query cost), as the paper's DBX/MonetDB baselines incur.
    WallTimer t_join;
    DataMatrix matrix = MaterializeJoin(tree, fm);
    double join_secs = t_join.Seconds();
    WallTimer t_scans;
    size_t scans = 0;
    CovarMatrix baseline = CovarByQueryAtATime(matrix, &scans);
    double scans_secs = t_scans.Seconds();
    double baseline_secs = scans_secs + join_secs * static_cast<double>(scans);
    // Sanity: the two engines agree.
    double diff = 0;
    for (int i = 0; i <= fm.num_features(); ++i) {
      for (int j = i; j <= fm.num_features(); ++j) {
        double d = shared.Moment(i, j) - baseline.Moment(i, j);
        double m = 1 + std::abs(shared.Moment(i, j));
        diff = std::max(diff, std::abs(d) / m);
      }
    }
    std::printf("%-10s %4s %6zu | %10.3f %12.3f %8.1fx | %zu%s\n",
                name.c_str(), "C", scans, shared_secs, baseline_secs,
                baseline_secs / std::max(1e-9, shared_secs),
                matrix.num_rows(),
                diff < 1e-6 ? "" : "  (MISMATCH!)");

    // --- Batch R: one regression-tree node ---
    std::vector<TreeFeature> tree_feats;
    for (size_t f = 0; f + 1 < ds.features.size(); ++f) {
      tree_feats.push_back(
          {ds.features[f].relation, ds.features[f].attr, false});
    }
    DecisionTreeOptions opts;
    opts.thresholds_per_feature = 8;
    std::vector<int> cand_feature;
    std::vector<SplitCandidate> candidates =
        BuildSplitCandidates(ds.query, tree_feats, opts, &cand_feature);
    int response_node = ds.query.IndexOf(ds.response.relation);
    int response_attr = ds.query.relation(response_node)
                            ->schema()
                            .MustIndexOf(ds.response.attr);

    WallTimer t_node_shared;
    std::vector<SplitStats> node_stats = ComputeSplitStats(
        ds.query, response_node, response_attr, {}, candidates);
    double node_shared_secs = t_node_shared.Seconds();

    // Baseline: per-aggregate scans over the (already) materialized join.
    // Columns in `matrix` follow fm order; thresholds refer to them.
    std::vector<int> cols;
    std::vector<double> thresholds;
    for (size_t i = 0; i < candidates.size(); ++i) {
      cols.push_back(cand_feature[i]);
      thresholds.push_back(candidates[i].pred.threshold);
    }
    WallTimer t_node_baseline;
    size_t node_scans = 0;
    std::vector<double> baseline_stats = DecisionNodeByQueryAtATime(
        matrix, cols, thresholds, fm.num_features() - 1, &node_scans);
    double node_baseline_secs = t_node_baseline.Seconds() +
                                join_secs * static_cast<double>(node_scans);
    double rdiff = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      rdiff = std::max(rdiff, std::abs(node_stats[i].count -
                                       baseline_stats[3 * i]) /
                                  (1 + baseline_stats[3 * i]));
    }
    std::printf("%-10s %4s %6zu | %10.3f %12.3f %8.1fx | %zu%s\n",
                name.c_str(), "R", node_scans, node_shared_secs,
                node_baseline_secs,
                node_baseline_secs / std::max(1e-9, node_shared_secs),
                matrix.num_rows(),
                rdiff < 1e-6 ? "" : "  (MISMATCH!)");
  }
  std::printf("\nPer-query cost = join + aggregate scan (measured; the join"
              " is charged once per aggregate, as a query-at-a-time DBMS"
              " incurs it).\n");
  std::printf("Paper: LMFAO vs DBX/MonetDB speedups between ~7x and >1000x,"
              " roughly tracking the batch size.\n");
}

}  // namespace
}  // namespace relborg

int main() {
  relborg::Run();
  return 0;
}
