// Figure 4 (left) reproduction: speedup of the shared factorized engine
// (LMFAO) over query-at-a-time evaluation (the commercial DBX / MonetDB
// behaviour) for two aggregate batches on all four datasets:
//
//   C = the covariance-matrix batch,
//   R = a regression-tree node batch (count/sum/sumsq per candidate split).
//
// The paper reports speedups "on par with the number of aggregates" (10x to
// >1000x depending on dataset); our query-at-a-time baseline is charitable
// (it materializes the join once, then pays one scan per aggregate), so the
// expected shape is speedup ~ batch size / small constant.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/materializer.h"
#include "baseline/query_at_a_time.h"
#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "core/decision_node_engine.h"
#include "data/dataset.h"
#include "ml/decision_tree.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.02 * bench::ScaleMultiplier();
  bench::PrintHeader("FIG 4 (left)",
                     "Shared batch evaluation vs query-at-a-time");
  std::printf("%-10s %4s %6s | %10s %12s %9s | %s\n", "dataset", "batch",
              "#aggs", "shared (s)", "per-query(s)", "speedup",
              "join rows");

  for (const std::string& name : DatasetNames()) {
    GenOptions gen;
    gen.scale = scale;
    Dataset ds = MakeDataset(name, gen);
    FeatureMap fm(ds.query, ds.features);
    RootedTree tree = ds.RootAtFact();

    // --- Batch C: covariance matrix ---
    WallTimer t_shared;
    CovarMatrix shared = ComputeCovarMatrix(tree, fm);
    double shared_secs = t_shared.Seconds();

    // A DBMS executes each aggregate of the batch as its own query,
    // join included. We measure one join materialization plus every
    // aggregate's scan, then charge the join once per aggregate (its
    // per-query cost), as the paper's DBX/MonetDB baselines incur.
    WallTimer t_join;
    DataMatrix matrix = MaterializeJoin(tree, fm);
    double join_secs = t_join.Seconds();
    WallTimer t_scans;
    size_t scans = 0;
    CovarMatrix baseline = CovarByQueryAtATime(matrix, &scans);
    double scans_secs = t_scans.Seconds();
    double baseline_secs = scans_secs + join_secs * static_cast<double>(scans);
    // Sanity: the two engines agree.
    double diff = 0;
    for (int i = 0; i <= fm.num_features(); ++i) {
      for (int j = i; j <= fm.num_features(); ++j) {
        double d = shared.Moment(i, j) - baseline.Moment(i, j);
        double m = 1 + std::abs(shared.Moment(i, j));
        diff = std::max(diff, std::abs(d) / m);
      }
    }
    std::printf("%-10s %4s %6zu | %10.3f %12.3f %8.1fx | %zu%s\n",
                name.c_str(), "C", scans, shared_secs, baseline_secs,
                baseline_secs / std::max(1e-9, shared_secs),
                matrix.num_rows(),
                diff < 1e-6 ? "" : "  (MISMATCH!)");
    bench::Report("covar_shared_seconds/" + name, shared_secs, "s");
    bench::Report("covar_per_query_seconds/" + name, baseline_secs, "s");
    bench::Report("covar_batch_speedup/" + name,
                  baseline_secs / std::max(1e-9, shared_secs), "x");

    // --- Batch R: one regression-tree node ---
    std::vector<TreeFeature> tree_feats;
    for (size_t f = 0; f + 1 < ds.features.size(); ++f) {
      tree_feats.push_back(
          {ds.features[f].relation, ds.features[f].attr, false});
    }
    DecisionTreeOptions opts;
    opts.thresholds_per_feature = 8;
    std::vector<int> cand_feature;
    std::vector<SplitCandidate> candidates =
        BuildSplitCandidates(ds.query, tree_feats, opts, &cand_feature);
    int response_node = ds.query.IndexOf(ds.response.relation);
    int response_attr = ds.query.relation(response_node)
                            ->schema()
                            .MustIndexOf(ds.response.attr);

    WallTimer t_node_shared;
    std::vector<SplitStats> node_stats = ComputeSplitStats(
        ds.query, response_node, response_attr, {}, candidates);
    double node_shared_secs = t_node_shared.Seconds();

    // Baseline: per-aggregate scans over the (already) materialized join.
    // Columns in `matrix` follow fm order; thresholds refer to them.
    std::vector<int> cols;
    std::vector<double> thresholds;
    for (size_t i = 0; i < candidates.size(); ++i) {
      cols.push_back(cand_feature[i]);
      thresholds.push_back(candidates[i].pred.threshold);
    }
    WallTimer t_node_baseline;
    size_t node_scans = 0;
    std::vector<double> baseline_stats = DecisionNodeByQueryAtATime(
        matrix, cols, thresholds, fm.num_features() - 1, &node_scans);
    double node_baseline_secs = t_node_baseline.Seconds() +
                                join_secs * static_cast<double>(node_scans);
    double rdiff = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      rdiff = std::max(rdiff, std::abs(node_stats[i].count -
                                       baseline_stats[3 * i]) /
                                  (1 + baseline_stats[3 * i]));
    }
    std::printf("%-10s %4s %6zu | %10.3f %12.3f %8.1fx | %zu%s\n",
                name.c_str(), "R", node_scans, node_shared_secs,
                node_baseline_secs,
                node_baseline_secs / std::max(1e-9, node_shared_secs),
                matrix.num_rows(),
                rdiff < 1e-6 ? "" : "  (MISMATCH!)");
    bench::Report("decision_shared_seconds/" + name, node_shared_secs, "s");
    bench::Report("decision_speedup/" + name,
                  node_baseline_secs / std::max(1e-9, node_shared_secs), "x");
  }

  // --- Two-level parallel engine: thread sweep on the covariance batch ---
  // ExecPolicy{N} runs the deterministic partitioned plan with N threads;
  // the serial policy ExecPolicy{1} is the reference both for the speedup
  // and for bit-identical results (checked below; the thread-sweep
  // property suite proves it exhaustively).
  std::printf("\nTwo-level parallel covariance batch (partitioned plan):\n");
  std::printf("%-10s | %8s %10s %8s | identical to 1-thread\n", "dataset",
              "threads", "time (s)", "speedup");
  bool determinism_ok = true;
  for (const std::string& name : DatasetNames()) {
    GenOptions gen;
    gen.scale = scale;
    Dataset ds = MakeDataset(name, gen);
    FeatureMap fm(ds.query, ds.features);
    RootedTree tree = ds.RootAtFact();
    double serial_secs = 0;
    CovarMatrix serial_result(0, CovarPayload::Zero(0));
    for (int threads : {1, 2, 4}) {
      CovarEngineOptions options;
      options.mode = ExecMode::kSharedParallel;
      options.policy = ExecPolicy{threads};
      double best = 1e300;
      CovarMatrix m(0, CovarPayload::Zero(0));
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer t;
        m = ComputeCovarMatrix(tree, fm, {}, options);
        best = std::min(best, t.Seconds());
      }
      bool identical = true;
      if (threads == 1) {
        serial_secs = best;
        serial_result = m;
      } else {
        for (int i = 0; i <= fm.num_features() && identical; ++i) {
          for (int j = i; j <= fm.num_features(); ++j) {
            if (m.Moment(i, j) != serial_result.Moment(i, j)) {
              identical = false;
              break;
            }
          }
        }
      }
      double speedup = serial_secs / std::max(1e-9, best);
      std::printf("%-10s | %8d %10.3f %7.2fx | %s\n", name.c_str(), threads,
                  best, speedup,
                  identical ? "yes" : "NO (DETERMINISM BUG)");
      if (!identical) determinism_ok = false;
      bench::Report("covar_parallel_seconds/" + name, best, "s", threads);
      bench::Report("covar_parallel_speedup/" + name, speedup, "x", threads);
    }
  }
  if (!determinism_ok) {
    // A recorded baseline must never contain thread-count-dependent
    // numbers; fail the harness (and with it the bench-smoke CTest entry
    // and the CI bench leg) instead of publishing them.
    std::fprintf(stderr,
                 "fig4_left: parallel covariance result differs from the "
                 "1-thread policy — determinism regression\n");
    std::exit(1);
  }
  std::printf("\nPer-query cost = join + aggregate scan (measured; the join"
              " is charged once per aggregate, as a query-at-a-time DBMS"
              " incurs it).\n");
  std::printf("Paper: LMFAO vs DBX/MonetDB speedups between ~7x and >1000x,"
              " roughly tracking the batch size.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig4_left_batch_speedup");
  relborg::Run();
  return 0;
}
