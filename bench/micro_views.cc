// Micro-benchmarks for the view machinery: flat hash map probes vs
// std::unordered_map (the "specialization" gap of Fig. 6), and factorized
// covariance passes over a small retailer instance.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "core/covar_engine.h"
#include "data/dataset.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace relborg {
namespace {

void BM_FlatHashMapProbe(benchmark::State& state) {
  FlatHashMap<double> m;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = rng.Next() >> 1;
    keys.push_back(k);
    m[k] = 1.0;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_FlatHashMapProbe);

void BM_StdUnorderedMapProbe(benchmark::State& state) {
  std::unordered_map<uint64_t, double> m;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = rng.Next() >> 1;
    keys.push_back(k);
    m[k] = 1.0;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_StdUnorderedMapProbe);

// One full factorized covariance pass over a small Retailer instance.
void BM_SharedCovarPass(benchmark::State& state) {
  GenOptions gen;
  gen.scale = 0.002;
  static Dataset* ds = new Dataset(MakeRetailer(gen));
  static FeatureMap* fm = new FeatureMap(ds->query, ds->features);
  RootedTree tree = ds->RootAtFact();
  for (auto _ : state) {
    CovarMatrix m = ComputeCovarMatrix(tree, *fm);
    benchmark::DoNotOptimize(m.count());
  }
}
BENCHMARK(BM_SharedCovarPass)->Unit(benchmark::kMillisecond);

void BM_ScalarMomentPass(benchmark::State& state) {
  GenOptions gen;
  gen.scale = 0.002;
  static Dataset* ds = new Dataset(MakeRetailer(gen));
  static FeatureMap* fm = new FeatureMap(ds->query, ds->features);
  RootedTree tree = ds->RootAtFact();
  for (auto _ : state) {
    double v = ComputeScalarMoment(tree, *fm, 0, 1);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ScalarMomentPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relborg
