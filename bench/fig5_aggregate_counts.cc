// Figure 5 reproduction: number of aggregates per dataset and workload
// (covariance matrix, one decision-tree node, mutual information, k-means).
//
// Counts are the sizes of synthesized batch specs for OUR scaled datasets'
// feature configurations; the paper's datasets carry many more (especially
// categorical) attributes, so absolute numbers differ. The reproduced
// claim: batches are 1-3 orders of magnitude larger than typical reporting
// queries, and decision-node batches are the largest, covariance next.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "ml/workload_synthesis.h"

namespace relborg {
namespace {

struct PaperRow {
  const char* name;
  int covar, decision, mi, kmeans;
};

constexpr PaperRow kPaper[] = {
    {"retailer", 937, 3150, 56, 44},
    {"favorita", 157, 273, 106, 19},
    {"yelp", 730, 1392, 172, 38},
    {"tpcds", 3299, 4299, 254, 92},
};

void Run() {
  bench::PrintHeader("FIG 5", "Number of aggregates per dataset x workload");
  std::printf("%-10s | %18s | %18s | %18s | %18s\n", "dataset",
              "covar (ours/paper)", "dec.node (o/p)", "mutual inf (o/p)",
              "k-means (o/p)");
  GenOptions gen;
  gen.scale = 0.002;  // counts depend on schemas, not rows
  for (size_t d = 0; d < DatasetNames().size(); ++d) {
    Dataset ds = MakeDataset(DatasetNames()[d], gen);
    const int num_cont = static_cast<int>(ds.features.size());
    const int num_cat = static_cast<int>(ds.categoricals.size());

    size_t covar = SynthesizeCovarBatch(num_cont, num_cat).size();

    std::vector<TreeFeature> tree_feats;
    for (size_t f = 0; f + 1 < ds.features.size(); ++f) {
      tree_feats.push_back(
          {ds.features[f].relation, ds.features[f].attr, false});
    }
    for (const auto& c : ds.categoricals) {
      tree_feats.push_back({c.relation, c.attr, true});
    }
    DecisionTreeOptions opts;
    size_t decision =
        SynthesizeDecisionNodeBatch(ds.query, tree_feats, opts).size();
    size_t mi = SynthesizeMutualInfoBatch(num_cat).size();
    int feature_rels = 0;
    {
      FeatureMap fm(ds.query, ds.features);
      for (int v = 0; v < ds.query.num_relations(); ++v) {
        if (!fm.NodeFeatures(v).empty()) ++feature_rels;
      }
    }
    size_t kmeans = SynthesizeKMeansBatch(num_cont - 1, feature_rels).size();

    std::printf("%-10s | %8zu / %6d | %8zu / %6d | %8zu / %6d | %8zu / %6d\n",
                ds.name.c_str(), covar, kPaper[d].covar, decision,
                kPaper[d].decision, mi, kPaper[d].mi, kmeans,
                kPaper[d].kmeans);
    bench::Report("covar_aggregates/" + ds.name,
                  static_cast<double>(covar), "count");
    bench::Report("decision_aggregates/" + ds.name,
                  static_cast<double>(decision), "count");
    bench::Report("mutual_info_aggregates/" + ds.name,
                  static_cast<double>(mi), "count");
    bench::Report("kmeans_aggregates/" + ds.name,
                  static_cast<double>(kmeans), "count");
  }
  std::printf("\nShape check: decision-node > covariance >> MI, k-means "
              "(holds in both columns; absolute values track each schema's "
              "feature counts).\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig5_aggregate_counts");
  relborg::Run();
  return 0;
}
