// Section 2.1 / Sec. 1.2 shortcoming (3) reproduction: one-hot encoding
// blows the data matrix up; the sparse-tensor encoding represents only the
// (pairs of) categories that occur.
//
// Compares training ridge regression with categorical features two ways:
//   agnostic: materialize the join, expand categorical columns to explicit
//             one-hot columns ("turning it from lean into chubby"), solve
//             the normal equations over the wide matrix;
//   aware:    compute the sparse generalized covariance factorized and run
//             coordinate descent on it.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/materializer.h"
#include "bench/bench_util.h"
#include "core/sparse_covar.h"
#include "data/dataset.h"
#include "ml/categorical_regression.h"
#include "ml/linalg.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.02 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  const int response = fm.num_features() - 1;
  // Two categorical features with real domains.
  std::vector<FeatureRef> cats{{"Items", "subcategory"}, {"Stores", "zip"}};

  bench::PrintHeader("SEC 2.1",
                     "Categorical features: one-hot matrix vs sparse tensors");

  // --- Structure-agnostic: one-hot expanded matrix + normal equations. ---
  WallTimer t_agnostic;
  std::vector<ColumnRef> cols;
  for (const FeatureRef& f : ds.features) cols.push_back({f.relation, f.attr});
  for (const FeatureRef& c : cats) cols.push_back({c.relation, c.attr});
  DataMatrix matrix = MaterializeJoin(tree, cols);
  const int n_cont = static_cast<int>(ds.features.size());
  // Domain sizes from the data.
  std::vector<int> domain(cats.size(), 0);
  for (size_t r = 0; r < matrix.num_rows(); ++r) {
    for (size_t c = 0; c < cats.size(); ++c) {
      domain[c] = std::max(domain[c],
                           1 + static_cast<int>(matrix.At(r, n_cont + c)));
    }
  }
  const int p = n_cont /*incl bias slot for response col excluded below*/ +
                domain[0] + domain[1];
  // Design: [bias, continuous (excl response), one-hots...].
  const int pd = 1 + (n_cont - 1) + domain[0] + domain[1];
  std::vector<double> a(static_cast<size_t>(pd) * pd, 0.0), b(pd, 0.0);
  std::vector<double> row(pd);
  for (size_t r = 0; r < matrix.num_rows(); ++r) {
    std::fill(row.begin(), row.end(), 0.0);
    row[0] = 1.0;
    for (int i = 0; i + 1 < n_cont; ++i) row[1 + i] = matrix.At(r, i);
    int off = n_cont;  // 1 + (n_cont-1)
    row[off + static_cast<int>(matrix.At(r, n_cont))] = 1.0;
    row[off + domain[0] + static_cast<int>(matrix.At(r, n_cont + 1))] = 1.0;
    double y = matrix.At(r, n_cont - 1);
    for (int i = 0; i < pd; ++i) {
      if (row[i] == 0.0) continue;
      b[i] += row[i] * y;
      for (int j = 0; j < pd; ++j) a[i * pd + j] += row[i] * row[j];
    }
  }
  double penalty = 1e-3 * static_cast<double>(matrix.num_rows());
  for (int i = 1; i < pd; ++i) a[i * pd + i] += penalty;
  a[0] += 1e-9;
  std::vector<double> theta;
  bool solved = CholeskySolve(a, b, pd, &theta);
  double agnostic_secs = t_agnostic.Seconds();

  // --- Structure-aware: sparse covariance + coordinate descent. ---
  WallTimer t_aggs;
  SparseCovar sparse = ComputeSparseCovar(tree, fm, cats);
  double aggs_secs = t_aggs.Seconds();
  WallTimer t_train;
  CategoricalRidgeOptions cd_opts;
  cd_opts.tolerance = 1e-7;
  CategoricalTrainInfo info;
  CategoricalModel model =
      TrainRidgeCategorical(sparse, response, cd_opts, &info);
  double train_secs = t_train.Seconds();
  double aware_secs = aggs_secs + train_secs;

  // Sizes: lean matrix vs one-hot matrix vs sparse aggregates.
  size_t lean_bytes = matrix.ByteSize();
  size_t onehot_bytes =
      matrix.num_rows() * static_cast<size_t>(pd) * sizeof(double);
  size_t sparse_entries = 0;
  for (int c = 0; c < sparse.num_categorical(); ++c) {
    sparse_entries += sparse.cat_count(c).size();
    for (int i = 0; i < sparse.num_continuous(); ++i) {
      sparse_entries += sparse.cat_sum(c, i).size();
    }
  }
  sparse_entries += sparse.pair_count(0, 1).size();
  size_t sparse_bytes = sparse_entries * 16 +
                        (1 + fm.num_features() +
                         UpperTriSize(fm.num_features())) * sizeof(double);

  std::printf("join: %zu tuples; categorical domains: %d and %d\n",
              matrix.num_rows(), domain[0], domain[1]);
  std::printf("lean data matrix:      %s\n",
              bench::HumanBytes(lean_bytes).c_str());
  std::printf("one-hot data matrix:   %s   (%.1fx blow-up, %d columns)\n",
              bench::HumanBytes(onehot_bytes).c_str(),
              static_cast<double>(onehot_bytes) / lean_bytes, pd);
  std::printf("sparse aggregates:     %s   (%.0fx smaller than one-hot)\n",
              bench::HumanBytes(sparse_bytes).c_str(),
              static_cast<double>(onehot_bytes) / sparse_bytes);
  std::printf("\ntraining (ridge, %zu parameters):\n", info.num_parameters);
  std::printf("  one-hot: join + wide matrix + normal eq.: %8.3f s%s\n",
              agnostic_secs, solved ? "" : "  (solve FAILED)");
  std::printf("  sparse:  %zu factorized aggregates %.3f s + coordinate "
              "descent %.3f s (%d sweeps)\n",
              sparse.num_aggregates(), aggs_secs, train_secs, info.sweeps);
  std::printf("  (at this toy scale both finish in milliseconds; the paper's "
              "point is the memory column above, which decides feasibility "
              "at 84M rows)\n");
  bench::Report("lean_matrix_bytes", static_cast<double>(lean_bytes), "B");
  bench::Report("onehot_matrix_bytes", static_cast<double>(onehot_bytes),
                "B");
  bench::Report("sparse_aggregate_bytes", static_cast<double>(sparse_bytes),
                "B");
  bench::Report("onehot_blowup",
                static_cast<double>(onehot_bytes) / lean_bytes, "x");
  bench::Report("agnostic_seconds", agnostic_secs, "s");
  bench::Report("aware_seconds", aware_secs, "s");
  // Agreement check on a few tuples.
  double max_diff = 0;
  if (solved) {
    std::vector<double> cont_row(fm.num_features());
    int32_t codes[2];
    for (size_t r = 0; r < std::min<size_t>(matrix.num_rows(), 2000); ++r) {
      double ref = theta[0];
      for (int i = 0; i + 1 < n_cont; ++i) ref += theta[1 + i] * matrix.At(r, i);
      int off = n_cont;
      ref += theta[off + static_cast<int>(matrix.At(r, n_cont))];
      ref += theta[off + domain[0] +
                   static_cast<int>(matrix.At(r, n_cont + 1))];
      for (int i = 0; i < fm.num_features(); ++i) cont_row[i] = matrix.At(r, i);
      codes[0] = static_cast<int32_t>(matrix.At(r, n_cont));
      codes[1] = static_cast<int32_t>(matrix.At(r, n_cont + 1));
      max_diff = std::max(max_diff,
                          std::abs(model.Predict(cont_row.data(), codes) - ref));
    }
    std::printf("max |prediction difference| over 2000 tuples: %.2e\n",
                max_diff);
  }
  std::printf("\nPaper (Sec. 1.2 (3), Sec. 2.1): naive one-hot encoding turns "
              "the matrix 'from lean into chubby'; the sparse tensors "
              "represent only occurring (pairs of) categories.\n");
  (void)p;
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "sec21_sparse_categorical");
  relborg::Run();
  return 0;
}
