// Micro-benchmarks for the covariance payload representations
// (google-benchmark): the AoS CovarPayload ops of ring/covariance.h
// against the arena span kernels of ring/covar_arena.h, across feature
// widths n in {8, 32, 128}. These back the PR-3 payload-layout numbers:
// the per-row engine op is lift * child-product accumulated into a view
// payload, so the AosRowOp / ArenaFusedRowOp pair is the apples-to-apples
// comparison; the plain Add/Mul pairs isolate the layout effect.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "ring/covar_arena.h"
#include "ring/covariance.h"
#include "util/rng.h"

namespace relborg {
namespace {

CovarPayload RandomPayload(int n, Rng* rng) {
  CovarPayload p = CovarPayload::Zero(n);
  p.count = rng->Uniform(0.5, 3.0);
  for (auto& s : p.sum) s = rng->Uniform(-1, 1);
  for (auto& q : p.quad) q = rng->Uniform(-1, 1);
  return p;
}

std::vector<double> RandomSpan(int n, Rng* rng) {
  std::vector<double> span(CovarStride(n));
  CovarPayloadToSpan(RandomPayload(n, rng), span.data());
  return span;
}

std::vector<std::pair<int, double>> Feats(int n, size_t count) {
  std::vector<std::pair<int, double>> feats;
  for (size_t k = 0; k < count && static_cast<int>(k) < n; ++k) {
    feats.push_back({static_cast<int>(k), 0.5 + 0.25 * k});
  }
  return feats;
}

// --- Ring addition: AoS payloads vs contiguous spans ----------------------

void BM_AosAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  CovarPayload a = RandomPayload(n, &rng);
  const CovarPayload b = RandomPayload(n, &rng);
  for (auto _ : state) {
    CovarAddInPlace(&a, b);
    benchmark::DoNotOptimize(a.count);
  }
}
BENCHMARK(BM_AosAdd)->Arg(8)->Arg(32)->Arg(128);

void BM_ArenaAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> a = RandomSpan(n, &rng);
  const std::vector<double> b = RandomSpan(n, &rng);
  const size_t stride = CovarStride(n);
  for (auto _ : state) {
    CovarSpanAdd(stride, a.data(), b.data());
    benchmark::DoNotOptimize(a[0]);
  }
}
BENCHMARK(BM_ArenaAdd)->Arg(8)->Arg(32)->Arg(128);

// --- Ring product ---------------------------------------------------------

void BM_AosMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const CovarPayload a = RandomPayload(n, &rng);
  const CovarPayload b = RandomPayload(n, &rng);
  CovarPayload dst;
  for (auto _ : state) {
    CovarMulInto(n, a, b, &dst);
    benchmark::DoNotOptimize(dst.count);
  }
}
BENCHMARK(BM_AosMul)->Arg(8)->Arg(32)->Arg(128);

void BM_ArenaMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const std::vector<double> a = RandomSpan(n, &rng);
  const std::vector<double> b = RandomSpan(n, &rng);
  std::vector<double> dst(CovarStride(n));
  for (auto _ : state) {
    CovarSpanMul(n, a.data(), b.data(), dst.data());
    benchmark::DoNotOptimize(dst[0]);
  }
}
BENCHMARK(BM_ArenaMul)->Arg(8)->Arg(32)->Arg(128);

// --- The engine's per-row op: lift * child-product, accumulated -----------
//
// AoS: materialize the lift, one ring product, one ring add (the pre-arena
// engine inner loop). Arena: the fused kernel.

void BM_AosRowOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto feats = Feats(n, 2);
  const CovarPayload child = RandomPayload(n, &rng);
  CovarPayload acc = CovarPayload::Zero(n);
  CovarPayload lift;
  CovarPayload prod;
  for (auto _ : state) {
    CovarLiftInto(n, feats, &lift);
    CovarMulInto(n, lift, child, &prod);
    CovarAddInPlace(&acc, prod);
    benchmark::DoNotOptimize(acc.count);
  }
}
BENCHMARK(BM_AosRowOp)->Arg(8)->Arg(32)->Arg(128);

void BM_ArenaFusedRowOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto feats = Feats(n, 2);
  const std::vector<double> child = RandomSpan(n, &rng);
  std::vector<double> acc(CovarStride(n), 0.0);
  for (auto _ : state) {
    CovarSpanLiftMulAdd(n, feats.data(), feats.size(), 1.0, child.data(),
                        acc.data());
    benchmark::DoNotOptimize(acc[0]);
  }
}
BENCHMARK(BM_ArenaFusedRowOp)->Arg(8)->Arg(32)->Arg(128);

// Leaf-node row op: the lift alone accumulated into the view. The arena
// path is pure sparse update, O(#feats^2) instead of O(n^2).
void BM_AosLeafRowOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto feats = Feats(n, 2);
  CovarPayload acc = CovarPayload::Zero(n);
  CovarPayload lift;
  for (auto _ : state) {
    CovarLiftInto(n, feats, &lift);
    CovarAddInPlace(&acc, lift);
    benchmark::DoNotOptimize(acc.count);
  }
}
BENCHMARK(BM_AosLeafRowOp)->Arg(8)->Arg(32)->Arg(128);

void BM_ArenaLeafRowOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto feats = Feats(n, 2);
  std::vector<double> acc(CovarStride(n), 0.0);
  for (auto _ : state) {
    CovarSpanLiftMulAdd(n, feats.data(), feats.size(), 1.0, nullptr,
                        acc.data());
    benchmark::DoNotOptimize(acc[0]);
  }
}
BENCHMARK(BM_ArenaLeafRowOp)->Arg(8)->Arg(32)->Arg(128);

// Scoped product: both operands live on a quarter of the features (the
// factorized-view sparsity the scoped kernels exploit).
void BM_ArenaScopedMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<int> sa, sb;
  for (int f = 0; f < n / 4; ++f) {
    sa.push_back(f);
    sb.push_back(n / 2 + f);
  }
  const CovarScope scope = CovarScope::Union(n, sa, sb);
  const std::vector<double> a = RandomSpan(n, &rng);
  const std::vector<double> b = RandomSpan(n, &rng);
  std::vector<double> dst(CovarStride(n), 0.0);
  for (auto _ : state) {
    CovarSpanMulScoped(scope, a.data(), b.data(), dst.data());
    benchmark::DoNotOptimize(dst[0]);
  }
}
BENCHMARK(BM_ArenaScopedMul)->Arg(8)->Arg(32)->Arg(128);

// View accumulation through the hash map: FlatHashMap<CovarPayload> vs
// CovarArenaView, round-robin over a pre-materialized key set (the
// steady-state probe + payload-touch pattern of a node scan).
void BM_AosViewAccumulate(benchmark::State& state) {
  const int n = 32;
  const uint64_t kKeys = static_cast<uint64_t>(state.range(0));
  Rng rng(5);
  const CovarPayload lift = RandomPayload(n, &rng);
  FlatHashMap<CovarPayload> view;
  for (uint64_t k = 0; k < kKeys; ++k) CovarAddInPlace(&view[1 + k], lift);
  uint64_t key = 0;
  for (auto _ : state) {
    CovarAddInPlace(&view[1 + (key++ % kKeys)], lift);
    benchmark::DoNotOptimize(view.size());
  }
}
BENCHMARK(BM_AosViewAccumulate)->Arg(64)->Arg(4096);

void BM_ArenaViewAccumulate(benchmark::State& state) {
  const int n = 32;
  const uint64_t kKeys = static_cast<uint64_t>(state.range(0));
  Rng rng(5);
  const std::vector<double> lift = RandomSpan(n, &rng);
  CovarArenaView view(n);
  const size_t stride = CovarStride(n);
  for (uint64_t k = 0; k < kKeys; ++k) {
    CovarSpanAdd(stride, view.GetOrAdd(1 + k), lift.data());
  }
  uint64_t key = 0;
  for (auto _ : state) {
    CovarSpanAdd(stride, view.GetOrAdd(1 + (key++ % kKeys)), lift.data());
    benchmark::DoNotOptimize(view.size());
  }
}
BENCHMARK(BM_ArenaViewAccumulate)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace relborg
