// Section 5.3 reproduction: the IFAQ transformation ladder, executed.
//
// IFAQ rewrites the naive gradient-descent program in equivalence-
// preserving stages; this harness runs the SAME ridge-regression training
// program at each stage and measures it:
//
//   stage 0 (naive):        every GD iteration scans the materialized join
//                           and rebuilds the gradient from raw tuples
//                           (the program before any transformation);
//   stage 1 (code motion +  the covariance dictionary M is hoisted out of
//            memoization):  the convergence loop — one scan builds M, the
//                           loop runs on it;
//   stage 2 (aggregate      M's aggregates are pushed past the joins and
//            pushdown +     fused: the factorized engine computes M
//            fusion):       without materializing the join at all.
//
// Same model out of every stage; the ladder is pure performance.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/materializer.h"
#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ml/linear_regression.h"
#include "util/timer.h"

namespace relborg {
namespace {

// Stage 0: the untransformed program — gradient from raw tuples each
// iteration (standardized internally for a stable step size, same as the
// other stages' solver).
LinearModel NaiveGdOverJoin(const DataMatrix& data, int response, int iters,
                            double lambda) {
  const int cols = data.num_cols();
  const size_t rows = data.num_rows();
  std::vector<int> feats;
  for (int c = 0; c < cols; ++c) {
    if (c != response) feats.push_back(c);
  }
  const int p = static_cast<int>(feats.size());
  // Standardization statistics (two extra scans, charged to stage 0).
  std::vector<double> mean(p, 0), scale(p, 0);
  double mean_y = 0;
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < p; ++a) mean[a] += data.At(r, feats[a]);
    mean_y += data.At(r, response);
  }
  for (int a = 0; a < p; ++a) mean[a] /= static_cast<double>(rows);
  mean_y /= static_cast<double>(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < p; ++a) {
      double d = data.At(r, feats[a]) - mean[a];
      scale[a] += d * d;
    }
  }
  for (int a = 0; a < p; ++a) {
    scale[a] = std::sqrt(scale[a] / static_cast<double>(rows));
    if (scale[a] < 1e-9) scale[a] = 1;
  }
  std::vector<double> theta(p, 0.0);
  std::vector<double> grad(p), x(p);
  double step = 1.0 / (p + lambda);
  for (int it = 0; it < iters; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    // The data-intensive inner sum of the Sec. 5.3 program: over sup(Q).
    for (size_t r = 0; r < rows; ++r) {
      double pred = 0;
      for (int a = 0; a < p; ++a) {
        x[a] = (data.At(r, feats[a]) - mean[a]) / scale[a];
        pred += theta[a] * x[a];
      }
      double err = pred - (data.At(r, response) - mean_y);
      for (int a = 0; a < p; ++a) grad[a] += err * x[a];
    }
    for (int a = 0; a < p; ++a) {
      theta[a] -= step * (grad[a] / static_cast<double>(rows) +
                          lambda * theta[a]);
    }
  }
  LinearModel model;
  model.feature_indices = feats;
  model.weights.resize(p);
  double b = mean_y;
  for (int a = 0; a < p; ++a) {
    model.weights[a] = theta[a] / scale[a];
    b -= model.weights[a] * mean[a];
  }
  model.bias = b;
  return model;
}

void Run() {
  const double scale = 0.05 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  const int response = fm.num_features() - 1;
  const int kIters = 200;
  const double kLambda = 1e-3;

  bench::PrintHeader("SEC 5.3",
                     "IFAQ transformation ladder for GD ridge training");

  // Stage 0 input: the program starts from the materialized join.
  WallTimer t_join;
  DataMatrix matrix = MaterializeJoin(tree, fm);
  double join_secs = t_join.Seconds();

  WallTimer t0;
  LinearModel m0 = NaiveGdOverJoin(matrix, response, kIters, kLambda);
  double stage0 = join_secs + t0.Seconds();

  // Stage 1: memoize M (one scan), hoist it out of the loop.
  WallTimer t1;
  CovarMatrix covar_scan(fm.num_features(), [&] {
    CovarPayload p = CovarPayload::Zero(fm.num_features());
    for (size_t r = 0; r < matrix.num_rows(); ++r) {
      p.count += 1;
      const double* row = matrix.Row(r);
      for (int i = 0; i < fm.num_features(); ++i) {
        p.sum[i] += row[i];
        for (int j = i; j < fm.num_features(); ++j) {
          p.quad[UpperTriIndex(fm.num_features(), i, j)] += row[i] * row[j];
        }
      }
    }
    return p;
  }());
  RidgeOptions gd;
  gd.lambda = kLambda;
  gd.max_iters = kIters;
  LinearModel m1 = TrainRidgeGd(covar_scan, response, gd);
  double stage1 = join_secs + t1.Seconds();

  // Stage 2: push the aggregates past the joins and fuse them — no join.
  WallTimer t2;
  CovarMatrix covar_fact = ComputeCovarMatrix(tree, fm);
  LinearModel m2 = TrainRidgeGd(covar_fact, response, gd);
  double stage2 = t2.Seconds();

  double rmse0 = Rmse(m0, matrix, response);
  double rmse1 = Rmse(m1, matrix, response);
  double rmse2 = Rmse(m2, matrix, response);

  std::printf("%-44s %10s %9s %8s\n", "stage", "time (s)", "speedup",
              "RMSE");
  std::printf("%-44s %10.3f %9s %8.4f\n",
              "0: naive (join + per-iteration scans)", stage0, "1x", rmse0);
  std::printf("%-44s %10.3f %8.1fx %8.4f\n",
              "1: + memoization & code motion (hoist M)", stage1,
              stage0 / stage1, rmse1);
  std::printf("%-44s %10.3f %8.1fx %8.4f\n",
              "2: + aggregate pushdown & fusion (no join)", stage2,
              stage0 / stage2, rmse2);
  std::printf("\n%d GD iterations over %zu join tuples; all stages return "
              "the same model (equivalence-preserving rewrites).\n", kIters,
              matrix.num_rows());
  bench::Report("stage0_seconds", stage0, "s");
  bench::Report("stage1_seconds", stage1, "s");
  bench::Report("stage2_seconds", stage2, "s");
  bench::Report("stage1_speedup", stage0 / stage1, "x");
  bench::Report("stage2_speedup", stage0 / stage2, "x");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "sec53_ifaq_stages");
  relborg::Run();
  return 0;
}
