// Micro-benchmarks for join processing: factorized counting vs full
// enumeration, multiplicity passes, and group-by evaluation on a small
// Retailer instance.
#include <benchmark/benchmark.h>

#include "baseline/materializer.h"
#include "core/groupby_engine.h"
#include "core/multiplicity.h"
#include "data/dataset.h"

namespace relborg {
namespace {

const Dataset& SmallRetailer() {
  static const Dataset* ds = [] {
    GenOptions gen;
    gen.scale = 0.002;
    return new Dataset(MakeRetailer(gen));
  }();
  return *ds;
}

void BM_CountJoinFactorized(benchmark::State& state) {
  RootedTree tree = SmallRetailer().RootAtFact();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoin(tree));
  }
}
BENCHMARK(BM_CountJoinFactorized)->Unit(benchmark::kMillisecond);

void BM_MaterializeJoin(benchmark::State& state) {
  const Dataset& ds = SmallRetailer();
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  for (auto _ : state) {
    DataMatrix m = MaterializeJoin(tree, fm);
    benchmark::DoNotOptimize(m.num_rows());
  }
}
BENCHMARK(BM_MaterializeJoin)->Unit(benchmark::kMillisecond);

void BM_RowMultiplicities(benchmark::State& state) {
  RootedTree tree = SmallRetailer().RootAtFact();
  for (auto _ : state) {
    auto mult = ComputeRowMultiplicities(tree);
    benchmark::DoNotOptimize(mult[0].size());
  }
}
BENCHMARK(BM_RowMultiplicities)->Unit(benchmark::kMillisecond);

void BM_GroupByCount(benchmark::State& state) {
  const Dataset& ds = SmallRetailer();
  RootedTree tree = ds.RootAtFact();
  GroupByAggregate agg =
      CountGroupedBy(ds.query, "Items", "category");
  for (auto _ : state) {
    GroupByResult r = ComputeGroupBy(tree, agg);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_GroupByCount)->Unit(benchmark::kMillisecond);

void BM_GroupByPairCount(benchmark::State& state) {
  const Dataset& ds = SmallRetailer();
  RootedTree tree = ds.RootAtFact();
  GroupByAggregate agg = CountGroupedByPair(ds.query, "Items", "category",
                                            "Stores", "zip");
  for (auto _ : state) {
    GroupByResult r = ComputeGroupBy(tree, agg);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_GroupByPairCount)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relborg
