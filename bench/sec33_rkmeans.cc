// Section 3.3 reproduction: Rk-means — constant-factor-approximate k-means
// over the join by clustering a small coreset instead of the materialized
// join. We compare weighted Lloyd's over the full join against the
// relational grid coreset (per-relation clustering + one factorized
// counting pass for exact coreset weights), reporting runtime and the
// objective ratio evaluated on the full join.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "baseline/materializer.h"
#include "bench/bench_util.h"
#include "data/dataset.h"
#include "ml/kmeans.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);
  // Cluster on a handful of scale-comparable dimensions.
  ds.features = {{"Items", "price"},
                 {"Weather", "maxtmp"},
                 {"Weather", "mintmp"},
                 {"Stores", "avghhi"}};
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();

  bench::PrintHeader("SEC 3.3", "Rk-means: clustering the join via a coreset");

  WallTimer t_mat;
  DataMatrix matrix = MaterializeJoin(tree, fm);
  double mat_secs = t_mat.Seconds();
  WeightedPoints full;
  full.dims = matrix.num_cols();
  if (matrix.num_rows() > 0) {
    full.coords.assign(matrix.Row(0),
                       matrix.Row(0) + matrix.num_rows() * full.dims);
  }

  std::printf("%4s | %12s %12s | %12s %10s | %9s %9s\n", "k",
              "Lloyd (s)", "  +join (s)", "Rk-means (s)", "coreset",
              "obj ratio", "speedup");
  for (int k : {5, 10, 20}) {
    KMeansOptions opts;
    opts.k = k;
    opts.per_relation_k = 8;
    opts.seed = 13 + k;

    WallTimer t_lloyd;
    KMeansResult base = LloydKMeans(full, opts);
    double lloyd_secs = t_lloyd.Seconds();

    WallTimer t_rk;
    KMeansResult rk = RelationalKMeans(tree, fm, opts);
    double rk_secs = t_rk.Seconds();

    double rk_obj_on_full = KMeansObjective(full, rk.centroids);
    std::printf("%4d | %12.3f %12.3f | %12.3f %10zu | %8.3fx %8.1fx\n", k,
                lloyd_secs, lloyd_secs + mat_secs, rk_secs, rk.coreset_size,
                rk_obj_on_full / std::max(1e-12, base.objective),
                (lloyd_secs + mat_secs) / std::max(1e-9, rk_secs));
    const std::string suffix = "/k_" + std::to_string(k);
    bench::Report("lloyd_seconds" + suffix, lloyd_secs + mat_secs, "s");
    bench::Report("rkmeans_seconds" + suffix, rk_secs, "s");
    bench::Report("rkmeans_speedup" + suffix,
                  (lloyd_secs + mat_secs) / std::max(1e-9, rk_secs), "x");
    bench::Report("objective_ratio" + suffix,
                  rk_obj_on_full / std::max(1e-12, base.objective), "x");
  }
  std::printf("\nJoin: %zu tuples (materialization alone took %.3f s).\n",
              matrix.num_rows(), mat_secs);
  std::printf("Shape: objective ratio stays a small constant (~1x) while "
              "Rk-means avoids materializing/scanning the join.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "sec33_rkmeans");
  relborg::Run();
  return 0;
}
