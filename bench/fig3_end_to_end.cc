// Figure 3 reproduction: end-to-end linear regression on the Retailer
// dataset, structure-agnostic vs structure-aware.
//
// Structure-agnostic ("PostgreSQL + TensorFlow" in the paper):
//   1. materialize the join (data matrix),
//   2. export it to CSV, re-import it ("data move"),
//   3. shuffle,
//   4. one epoch of mini-batch SGD (100K-tuple batches).
// Structure-aware (LMFAO):
//   1. one factorized pass computes the covariance aggregate batch,
//   2. gradient descent on the (tiny) matrix yields the model.
//
// The paper reports 13,242s vs 6.13s (2,160x) at 84M fact rows on an 8-core
// i7; we run a scaled-down Retailer, so absolute numbers differ — the
// reproduced claims are the *shape*: batch time << join time << move time,
// aggregate output orders of magnitude smaller than the data matrix, and
// the factorized model at least as accurate as 1-epoch SGD.
#include <cstdio>
#include <string>

#include "baseline/materializer.h"
#include "baseline/sgd_learner.h"
#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ml/linear_regression.h"
#include "relational/csv_io.h"
#include "util/rng.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.05 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  const int response = fm.num_features() - 1;

  bench::PrintHeader("FIG 3",
                     "End-to-end linear regression over Retailer (scale " +
                         std::to_string(scale) + ")");
  std::printf("Database: %zu rows across %d relations, %s in memory\n",
              ds.catalog->TotalRows(), ds.query.num_relations(),
              bench::HumanBytes(ds.catalog->TotalBytes()).c_str());

  // --- Structure-agnostic flow ---
  WallTimer t_join;
  DataMatrix matrix = MaterializeJoin(tree, fm);
  double join_secs = t_join.Seconds();
  size_t matrix_bytes = matrix.ByteSize();

  const std::string csv_path = "/tmp/relborg_fig3_matrix.csv";
  WallTimer t_export;
  {
    // Serialize the matrix through the same CSV writer relations use.
    Relation as_rel("matrix", [&] {
      Schema s;
      for (const std::string& name : matrix.col_names()) {
        s.AddAttribute(name, AttrType::kDouble);
      }
      return s;
    }());
    std::vector<double> row(matrix.num_cols());
    for (size_t r = 0; r < matrix.num_rows(); ++r) {
      row.assign(matrix.Row(r), matrix.Row(r) + matrix.num_cols());
      as_rel.AppendRow(row);
    }
    WriteCsv(as_rel, csv_path);
  }
  double export_secs = t_export.Seconds();
  size_t csv_bytes = FileBytes(csv_path);

  WallTimer t_import;
  DataMatrix imported;
  {
    Schema s;
    for (const std::string& name : matrix.col_names()) {
      s.AddAttribute(name, AttrType::kDouble);
    }
    Relation back("matrix", s);
    ReadCsv(csv_path, "matrix", s, &back);
    imported = DataMatrix(matrix.col_names());
    imported.Reserve(back.num_rows());
    std::vector<double> row(matrix.num_cols());
    for (size_t r = 0; r < back.num_rows(); ++r) {
      for (int a = 0; a < matrix.num_cols(); ++a) row[a] = back.Double(r, a);
      imported.AppendRow(row.data());
    }
  }
  double import_secs = t_import.Seconds();
  std::remove(csv_path.c_str());

  WallTimer t_shuffle;
  Rng shuffle_rng(99);
  imported.ShuffleRows(&shuffle_rng);
  double shuffle_secs = t_shuffle.Seconds();

  WallTimer t_sgd;
  SgdOptions sgd_opts;  // 1 epoch, 100K batches — the paper's TF setup
  LinearModel sgd_model = TrainSgd(imported, response, sgd_opts);
  double sgd_secs = t_sgd.Seconds();

  // --- Structure-aware flow (LMFAO) ---
  WallTimer t_batch;
  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  double batch_secs = t_batch.Seconds();
  size_t covar_bytes =
      (1 + covar.payload().sum.size() + covar.payload().quad.size()) *
      sizeof(double);

  WallTimer t_gd;
  RidgeOptions gd_opts;
  TrainInfo info;
  LinearModel lmfao_model = TrainRidgeGd(covar, response, gd_opts, {}, &info);
  double gd_secs = t_gd.Seconds();

  // --- Accuracy (RMSE over the full data matrix) ---
  double rmse_sgd = Rmse(sgd_model, matrix, response);
  double rmse_lmfao = Rmse(lmfao_model, matrix, response);

  double agnostic_total = join_secs + export_secs + import_secs +
                          shuffle_secs + sgd_secs;
  double aware_total = batch_secs + gd_secs;

  std::printf("\n%-28s %14s %14s\n", "", "PG+TF-style", "LMFAO-style");
  std::printf("%-28s %11.3f s  %14s\n", "Join (materialize)", join_secs, "-");
  std::printf("%-28s %11.3f s  %14s   (CSV %s)\n", "Export",
              export_secs, "-", bench::HumanBytes(csv_bytes).c_str());
  std::printf("%-28s %11.3f s  %14s\n", "Import", import_secs, "-");
  std::printf("%-28s %11.3f s  %14s\n", "Shuffling", shuffle_secs, "-");
  std::printf("%-28s %14s  %11.3f s   (output %s)\n", "Aggregate batch", "-",
              batch_secs, bench::HumanBytes(covar_bytes).c_str());
  std::printf("%-28s %11.3f s  %11.3f s   (GD: %d iters)\n",
              "Learning (SGD / GD)", sgd_secs, gd_secs, info.iterations);
  std::printf("%-28s %11.3f s  %11.3f s\n", "Total", agnostic_total,
              aware_total);
  std::printf("\nData matrix: %zu rows x %d cols, %s in memory\n",
              matrix.num_rows(), matrix.num_cols(),
              bench::HumanBytes(matrix_bytes).c_str());
  std::printf("Sufficient statistics: %zu aggregates, %s (%.0fx smaller)\n",
              CovarBatchSize(fm.num_features()),
              bench::HumanBytes(covar_bytes).c_str(),
              static_cast<double>(matrix_bytes) / covar_bytes);
  std::printf("Speedup (total): %.0fx\n", agnostic_total / aware_total);
  std::printf("RMSE on training data: SGD(1 epoch) %.4f  |  LMFAO-GD %.4f\n",
              rmse_sgd, rmse_lmfao);
  bench::Report("agnostic_total_seconds", agnostic_total, "s");
  bench::Report("aware_total_seconds", aware_total, "s");
  bench::Report("aggregate_batch_seconds", batch_secs, "s");
  bench::Report("join_seconds", join_secs, "s");
  bench::Report("total_speedup", agnostic_total / aware_total, "x");
  bench::Report("rmse_sgd", rmse_sgd, "rmse");
  bench::Report("rmse_lmfao", rmse_lmfao, "rmse");
  std::printf("Paper (84M rows, 8 cores): 13,242s vs 6.13s = 2,160x; "
              "23 GB join vs 37 KB aggregates.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig3_end_to_end");
  relborg::Run();
  return 0;
}
