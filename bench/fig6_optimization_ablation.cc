// Figure 6 reproduction: the optimization ladder for covariance-matrix
// computation. Starting from an unspecialized per-aggregate engine (the
// AC/DC-style baseline, 1x), each step adds one optimization:
//
//   + specialization   static per-node code paths instead of interpreted
//                      expressions and generic hash tables,
//   + sharing          one pass with the covariance ring instead of one
//                      pass per aggregate,
//   + parallelization  task parallelism across subtrees and domain
//                      parallelism over the root relation.
//
// The paper reports cumulative speedups up to ~128x (4 vCPUs); sharing is
// the dominant step there and here (it removes the factor of #aggregates).
// Our container has 2 cores, so the parallel step's headroom is ~2x.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/covar_compressed.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "util/timer.h"

namespace relborg {
namespace {

void Run() {
  const double scale = 0.02 * bench::ScaleMultiplier();
  bench::PrintHeader("FIG 6",
                     "Covariance computation: added optimizations, relative "
                     "speedup over unspecialized per-aggregate baseline");
  std::printf("%-10s %6s | %9s %9s %9s %9s %9s | speedups (cumulative)\n",
              "dataset", "#aggs", "base(s)", "+spec(s)", "+share(s)",
              "+compr(s)", "+par(s)");

  for (const std::string& name : DatasetNames()) {
    GenOptions gen;
    gen.scale = scale;
    Dataset ds = MakeDataset(name, gen);
    // Cap the feature count so the per-aggregate baselines stay in budget;
    // the ladder's shape is unaffected.
    if (ds.features.size() > 8) {
      std::vector<FeatureRef> trimmed(ds.features.end() - 8,
                                      ds.features.end());
      ds.features = trimmed;
    }
    FeatureMap fm(ds.query, ds.features);
    RootedTree tree = ds.RootAtFact();

    auto time_mode = [&](ExecMode mode) {
      CovarEngineOptions options;
      options.mode = mode;
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer t;
        CovarMatrix m = ComputeCovarMatrix(tree, fm, {}, options);
        best = std::min(best, t.Seconds());
        (void)m;
      }
      return best;
    };

    double interpreted = time_mode(ExecMode::kPerAggregateInterpreted);
    double specialized = time_mode(ExecMode::kPerAggregate);
    double shared = time_mode(ExecMode::kShared);
    // Payload compression: LMFAO's subtree-restricted view payloads.
    double compressed = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer t;
      CovarMatrix m = ComputeCovarMatrixCompressed(tree, fm);
      compressed = std::min(compressed, t.Seconds());
      (void)m;
    }
    double parallel = time_mode(ExecMode::kSharedParallel);
    const int par_threads = ExecPolicy::FromEnv().threads;

    bench::Report("interpreted_seconds/" + name, interpreted, "s");
    bench::Report("specialized_seconds/" + name, specialized, "s");
    bench::Report("shared_seconds/" + name, shared, "s");
    bench::Report("compressed_seconds/" + name, compressed, "s");
    bench::Report("parallel_seconds/" + name, parallel, "s", par_threads);
    bench::Report("cumulative_speedup/" + name, interpreted / parallel, "x",
                  par_threads);
    std::printf(
        "%-10s %6zu | %9.3f %9.3f %9.3f %9.3f %9.3f | 1x -> %.1fx -> %.1fx "
        "-> %.1fx -> %.1fx\n",
        name.c_str(), CovarBatchSize(fm.num_features()), interpreted,
        specialized, shared, compressed, parallel, interpreted / specialized,
        interpreted / shared, interpreted / compressed,
        interpreted / parallel);
  }
  std::printf("\nPaper (4 vCPUs): cumulative speedups of roughly 2-6x "
              "(specialization), 10-60x (+sharing), 30-128x "
              "(+parallelization) depending on dataset.\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig6_optimization_ablation");
  relborg::Run();
  return 0;
}
