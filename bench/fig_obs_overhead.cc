// Observability overhead harness: the same insert stream is driven through
// the stream scheduler with tracing OFF (no recorder; every span is one TLS
// load + untaken branch) and ON (per-thread ring buffers + Chrome export),
// and the two modes are checked BIT-IDENTICAL before any throughput is
// compared — the instrumentation contract is that it never changes what the
// pipeline computes, only what it reports.
//
// Reported metrics (CI gates obs_traced_over_untraced >= 0.98, i.e. <= 2%
// traced-ingest overhead):
//
//   obs_untraced_tuples_per_sec   best-of-N untraced ingest throughput
//   obs_traced_tuples_per_sec     best-of-N traced ingest throughput
//   obs_traced_over_untraced      ratio of the two bests (1.0 = free)
//   obs_trace_events              events captured in the last traced run
//   obs_trace_dropped_events      ring-buffer overwrites in that run
//
// --trace-out <path> additionally writes the last traced run's Chrome
// trace_event JSON (chrome://tracing / Perfetto loadable); the CI obs leg
// points tools/trace_summary.py at it.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "obs/trace.h"
#include "ring/covariance.h"
#include "stream/stream_scheduler.h"
#include "util/check.h"
#include "util/timer.h"

namespace relborg {
namespace {

struct RunResult {
  double seconds = 0;
  size_t rows = 0;
  CovarPayload payload;  // final covariance (bit-identity witness)
  size_t trace_events = 0;
  size_t trace_dropped = 0;

  double tuples_per_sec() const {
    return static_cast<double>(rows) / (seconds > 1e-9 ? seconds : 1e-9);
  }
};

RunResult RunOnce(const Dataset& ds, const std::vector<UpdateBatch>& stream,
                  const ExecPolicy& policy, const StreamOptions& base,
                  obs::TraceRecorder* trace, std::string* chrome_json) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  CovarFivm strategy(&shadow, &fm, policy);
  StreamOptions options = base;
  options.trace = trace;
  RunResult result;
  WallTimer timer;
  {
    StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
    for (const UpdateBatch& batch : stream) scheduler.Push(batch);
    StreamStats stats;
    RELBORG_CHECK(scheduler.Finish(&stats).ok());
    result.rows = stats.rows;
  }
  result.seconds = timer.Seconds();
  result.payload = strategy.Current().payload();
  if (trace != nullptr) {
    // Export happens OUTSIDE the timed region and at quiescence (all
    // pipeline threads joined by Finish), so the snapshot is exact.
    result.trace_dropped = trace->dropped();
    std::string json = trace->ExportChromeJson();
    // Each complete event is one "ph":"X" record.
    const char* needle = "\"ph\":\"X\"";
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++result.trace_events;
    }
    if (chrome_json != nullptr) *chrome_json = std::move(json);
  }
  return result;
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  RELBORG_CHECK_MSG(a.rows == b.rows, "traced run consumed different rows");
  const CovarPayload& pa = a.payload;
  const CovarPayload& pb = b.payload;
  RELBORG_CHECK(pa.sum.size() == pb.sum.size());
  RELBORG_CHECK(pa.quad.size() == pb.quad.size());
  bool same = std::memcmp(&pa.count, &pb.count, sizeof(double)) == 0;
  same = same && (pa.sum.empty() ||
                  std::memcmp(pa.sum.data(), pb.sum.data(),
                              pa.sum.size() * sizeof(double)) == 0);
  same = same && (pa.quad.empty() ||
                  std::memcmp(pa.quad.data(), pb.quad.data(),
                              pa.quad.size() * sizeof(double)) == 0);
  RELBORG_CHECK_MSG(same, "tracing perturbed the maintained covariance");
}

void Run(int reps, const std::string& trace_out) {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);
  const size_t total = StreamRowCount(stream);

  bench::PrintHeader("OBS OVERHEAD",
                     "Traced vs untraced stream ingest, Retailer (" +
                         std::to_string(total) + " tuples, F-IVM async)");

  ExecPolicy policy = ExecPolicy::FromEnv();
  policy.partition_grain = 128;
  StreamOptions options;
  options.epoch_rows = 8 * stream_opts.batch_size;

  // Alternate modes across repetitions and keep each mode's best, so a
  // one-off scheduler hiccup on a shared runner cannot masquerade as
  // instrumentation overhead; the bit-identity check runs on every pair.
  RunResult best_off, best_on;
  std::string chrome_json;
  for (int rep = 0; rep < reps; ++rep) {
    RunResult off = RunOnce(ds, stream, policy, options, nullptr, nullptr);
    obs::TraceRecorder trace;
    RunResult on = RunOnce(ds, stream, policy, options, &trace, &chrome_json);
    ExpectBitIdentical(off, on);
    if (rep == 0 || off.seconds < best_off.seconds) best_off = off;
    if (rep == 0 || on.seconds < best_on.seconds) best_on = on;
    std::printf("  rep %d: untraced %11.0f tuples/s, traced %11.0f tuples/s "
                "(%zu events, %zu dropped)\n",
                rep, off.tuples_per_sec(), on.tuples_per_sec(),
                on.trace_events, on.trace_dropped);
  }

  const double ratio = best_on.tuples_per_sec() / best_off.tuples_per_sec();
  std::printf("\n  best untraced: %11.0f tuples/s\n",
              best_off.tuples_per_sec());
  std::printf("  best traced:   %11.0f tuples/s\n", best_on.tuples_per_sec());
  std::printf("  traced/untraced ratio: %.4fx (1.0 = tracing is free)\n",
              ratio);
  bench::Report("obs_untraced_tuples_per_sec", best_off.tuples_per_sec(),
                "tuples/s", policy.threads);
  bench::Report("obs_traced_tuples_per_sec", best_on.tuples_per_sec(),
                "tuples/s", policy.threads);
  bench::Report("obs_traced_over_untraced", ratio, "x", policy.threads);
  bench::Report("obs_trace_events",
                static_cast<double>(best_on.trace_events), "events",
                policy.threads);
  bench::Report("obs_trace_dropped_events",
                static_cast<double>(best_on.trace_dropped), "events",
                policy.threads);

  if (!trace_out.empty()) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    RELBORG_CHECK_MSG(f != nullptr, "cannot open --trace-out file");
    std::fwrite(chrome_json.data(), 1, chrome_json.size(), f);
    std::fclose(f);
    std::printf("  Chrome trace written to %s (%zu bytes)\n",
                trace_out.c_str(), chrome_json.size());
  }
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig_obs_overhead");
  int reps = 3;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  if (reps < 1) reps = 1;
  relborg::Run(reps, trace_out);
  return 0;
}
