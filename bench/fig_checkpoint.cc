// Checkpoint cost on the ingest path: the same F-IVM insert stream is
// driven through the async scheduler twice — once with checkpointing off,
// once writing a checkpoint every K maintained epochs — and the harness
// reports the throughput delta alongside the checkpoint observability
// counters (write seconds, file bytes, files written). The checkpoint
// leg serializes the committed ShadowDb prefix plus every covariance
// arena on the applier thread, so the off/on ratio is the end-to-end
// ingest tax of recoverability, not just the file write.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "stream/stream_scheduler.h"
#include "util/timer.h"

namespace relborg {
namespace {

struct IngestResult {
  StreamStats stats;
  double seconds = 0;

  double tuples_per_sec() const {
    return stats.rows / std::max(1e-9, seconds);
  }
};

IngestResult DriveIngest(const Dataset& ds,
                         const std::vector<UpdateBatch>& stream,
                         const ExecPolicy& policy,
                         const StreamOptions& options) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  CovarFivm strategy(&shadow, &fm, policy);
  IngestResult result;
  // The harness reuses `stream` across configurations, so hand the
  // scheduler a disposable copy made OUTSIDE the measured region.
  std::vector<UpdateBatch> feed = stream;
  WallTimer timer;
  {
    StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
    for (UpdateBatch& batch : feed) {
      scheduler.Push(std::move(batch));
    }
    scheduler.Finish(&result.stats);
  }
  result.seconds = timer.Seconds();
  return result;
}

std::string CheckpointScratchPath() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp && *tmp) ? tmp : "/tmp";
  return dir + "/relborg_fig_checkpoint_" + std::to_string(getpid()) +
         ".ckpt";
}

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);
  const size_t total = StreamRowCount(stream);

  bench::PrintHeader(
      "CHECKPOINT COST",
      "F-IVM async ingest, Retailer (" + std::to_string(total) +
          " tuples, batches of 1000): checkpointing off vs every-K-epochs");

  ExecPolicy policy = ExecPolicy::FromEnv();
  policy.partition_grain = 128;

  // Two-batch epochs keep the epoch count high enough that the every-K
  // checkpoint cadence fires even at smoke scale (RELBORG_SCALE=0.05
  // leaves ~a dozen batches). The cadence itself adapts to land ~4
  // checkpoints over the stream at any scale: each checkpoint serializes
  // the whole committed prefix, so a fixed small K would turn the bench
  // into a serialization stress test at large scales instead of a
  // representative recoverability tax.
  StreamOptions off;
  off.epoch_rows = 2 * stream_opts.batch_size;
  const size_t est_epochs = (stream.size() + 1) / 2;

  StreamOptions on = off;
  on.checkpoint.path = CheckpointScratchPath();
  on.checkpoint.every_epochs = std::max<size_t>(1, est_epochs / 4);
  on.checkpoint.fsync = false;  // isolate serialization + write cost from
                                // device sync latency, which dominates on
                                // slow disks and measures the disk, not us

  IngestResult base = DriveIngest(ds, stream, policy, off);
  IngestResult ckpt = DriveIngest(ds, stream, policy, on);
  std::remove(on.checkpoint.path.c_str());

  std::printf("  checkpoint off      %11.0f tuples/s  (%zu epochs)\n",
              base.tuples_per_sec(), base.stats.epochs);
  std::printf(
      "  every %zu epochs      %11.0f tuples/s  (%zu checkpoints, "
      "%.1f KiB last-file avg, %.2f ms write total)\n",
      on.checkpoint.every_epochs, ckpt.tuples_per_sec(),
      ckpt.stats.checkpoints_written,
      ckpt.stats.checkpoints_written
          ? ckpt.stats.checkpoint_bytes / 1024.0 /
                ckpt.stats.checkpoints_written
          : 0.0,
      ckpt.stats.checkpoint_seconds * 1e3);
  if (base.tuples_per_sec() > 0) {
    std::printf("  ingest slowdown     %11.2fx\n",
                base.tuples_per_sec() /
                    std::max(1e-9, ckpt.tuples_per_sec()));
  }

  bench::Report("checkpoint_off_tuples_per_sec", base.tuples_per_sec(),
                "tuples/s", policy.threads);
  bench::Report("checkpoint_on_tuples_per_sec", ckpt.tuples_per_sec(),
                "tuples/s", policy.threads);
  bench::Report("checkpoints_written",
                static_cast<double>(ckpt.stats.checkpoints_written), "files",
                policy.threads);
  bench::Report("checkpoint_file_bytes",
                static_cast<double>(ckpt.stats.checkpoint_bytes), "bytes",
                policy.threads);
  bench::Report("checkpoint_write_seconds_total",
                ckpt.stats.checkpoint_seconds, "s", policy.threads);
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig_checkpoint");
  relborg::Run();
  return 0;
}
