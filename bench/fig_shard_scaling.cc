// Shard-scaling benchmark for the key-range sharded pipelines (src/shard/):
// the same Retailer insert stream is driven through one unsharded
// StreamScheduler and through ShardedStreamScheduler fleets of 1, 2 and 4
// shards, measuring
//
//   * ingest throughput — sustained tuples/sec for the whole stream (the
//     routing layer's partition-and-broadcast cost is inside the number,
//     so a 1-shard fleet quantifies pure routing overhead);
//   * merge cost — wall time of MergedCurrent(), the ring add that folds
//     the per-shard aggregates back into one covariance matrix.
//
// Per-shard intra-operator parallelism is pinned to 1 thread
// (policy.threads = 1 for the baseline AND for every shard), so the
// sharded/unsharded ratio isolates PIPELINE-level scaling: N independent
// applier/committer/compute stages against one. The CI bench leg gates
// the 4-shard ratio at >= 1.3x on 4-CPU runners.
//
// Every run's merged aggregate is differentially checked against the
// unsharded baseline (count exact, second moments to 1e-9 relative —
// Retailer's real-valued features make bitwise equality across summation
// orders unavailable, unlike tests/shard_test.cc's integer fixtures), so
// the numbers can never describe a fleet that computes something else.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "shard/shard_map.h"
#include "shard/sharded_stream_scheduler.h"
#include "stream/stream_scheduler.h"
#include "util/timer.h"

namespace relborg {
namespace {

constexpr int kMergeReps = 10;

void CheckMergedMatchesBaseline(const CovarMatrix& got,
                                const CovarMatrix& want, int shards) {
  if (got.num_features() != want.num_features() ||
      got.count() != want.count()) {
    std::fprintf(stderr,
                 "fig_shard_scaling: %d-shard merge disagrees with the "
                 "unsharded baseline on shape/count\n",
                 shards);
    std::exit(1);
  }
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      const double a = got.Moment(i, j);
      const double b = want.Moment(i, j);
      const double tol = 1e-9 * std::max(1.0, std::fabs(b));
      if (std::fabs(a - b) > tol) {
        std::fprintf(stderr,
                     "fig_shard_scaling: %d-shard merge moment (%d,%d) "
                     "= %.17g vs baseline %.17g\n",
                     shards, i, j, a, b);
        std::exit(1);
      }
    }
  }
}

CovarMatrix RunUnsharded(const Dataset& ds,
                         const std::vector<UpdateBatch>& stream,
                         const ExecPolicy& policy, double* tuples_per_sec) {
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), ds.features);
  CovarFivm strategy(&shadow, &fm, policy);
  WallTimer timer;
  {
    StreamScheduler<CovarFivm> scheduler(&shadow, &strategy);
    for (const UpdateBatch& batch : stream) scheduler.Push(batch);
    scheduler.Finish();
  }
  *tuples_per_sec = StreamRowCount(stream) / std::max(1e-9, timer.Seconds());
  return strategy.Current();
}

CovarMatrix RunSharded(const Dataset& ds,
                       const std::vector<UpdateBatch>& stream,
                       const ExecPolicy& policy, int shards,
                       double* tuples_per_sec, double* merge_seconds) {
  const int root = ds.query.IndexOf(ds.fact);
  FeatureMap fm(ds.query, ds.features);
  ShardMap map = ShardMap::ForQuery(ds.query, root, shards);
  ShardedStreamScheduler<CovarFivm> fleet(ds.query, root, &fm,
                                          std::move(map), policy);
  WallTimer timer;
  for (const UpdateBatch& batch : stream) fleet.Push(batch);
  fleet.Finish();
  *tuples_per_sec = StreamRowCount(stream) / std::max(1e-9, timer.Seconds());
  WallTimer merge_timer;
  for (int r = 0; r < kMergeReps - 1; ++r) (void)fleet.MergedCurrent();
  CovarMatrix merged = fleet.MergedCurrent();
  *merge_seconds = merge_timer.Seconds() / kMergeReps;
  return merged;
}

void Run() {
  const double scale = 0.1 * bench::ScaleMultiplier();
  GenOptions gen;
  gen.scale = scale;
  Dataset ds = MakeRetailer(gen);

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 1000;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, stream_opts);

  bench::PrintHeader(
      "SHARD", "Key-range sharded ingest scaling, Retailer (" +
               std::to_string(StreamRowCount(stream)) +
               " tuples, F-IVM, 1 intra-op thread per pipeline)");

  // Intra-op parallelism off everywhere: the ratio below measures how N
  // whole pipelines scale, not how N*threads worker pools contend.
  ExecPolicy policy;
  policy.threads = 1;
  policy.partition_grain = 128;

  double base_tps = 0;
  CovarMatrix want = RunUnsharded(ds, stream, policy, &base_tps);
  std::printf("  unsharded          %11.0f tuples/s\n", base_tps);
  bench::Report("shard_ingest_tuples_per_sec_unsharded", base_tps,
                "tuples/s", 1);

  for (int shards : {1, 2, 4}) {
    double tps = 0;
    double merge_s = 0;
    CovarMatrix merged =
        RunSharded(ds, stream, policy, shards, &tps, &merge_s);
    CheckMergedMatchesBaseline(merged, want, shards);
    const double ratio = tps / std::max(1e-9, base_tps);
    std::printf("  %d shard%s           %11.0f tuples/s  (%.2fx)   "
                "merge %8.1f us\n",
                shards, shards == 1 ? " " : "s", tps, ratio, merge_s * 1e6);
    const std::string tag = std::to_string(shards);
    bench::Report("shard_ingest_tuples_per_sec_shards_" + tag, tps,
                  "tuples/s", shards);
    bench::Report("shard_merge_seconds_shards_" + tag, merge_s, "s", shards);
    bench::Report("fivm_sharded" + tag + "_over_unsharded", ratio, "x",
                  shards);
  }
  std::printf("  merged aggregates checked against the unsharded baseline\n");
}

}  // namespace
}  // namespace relborg

int main(int argc, char** argv) {
  relborg::bench::InitReporting(&argc, argv, "fig_shard_scaling");
  relborg::Run();
  return 0;
}
