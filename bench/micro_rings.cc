// Micro-benchmarks for the ring layer (google-benchmark): covariance-ring
// add/mul/lift at several widths, and group-ring products. These back the
// constant-factor discussion of Sec. 4.
#include <benchmark/benchmark.h>

#include "ring/covariance.h"
#include "ring/group_ring.h"
#include "util/rng.h"

namespace relborg {
namespace {

CovarPayload RandomPayload(int n, Rng* rng) {
  CovarPayload p = CovarPayload::Zero(n);
  p.count = rng->Uniform(0, 3);
  for (auto& s : p.sum) s = rng->Uniform(-1, 1);
  for (auto& q : p.quad) q = rng->Uniform(-1, 1);
  return p;
}

void BM_CovarAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  CovarPayload a = RandomPayload(n, &rng);
  CovarPayload b = RandomPayload(n, &rng);
  for (auto _ : state) {
    CovarAddInPlace(&a, b);
    benchmark::DoNotOptimize(a.count);
  }
}
BENCHMARK(BM_CovarAdd)->Arg(4)->Arg(12)->Arg(44);

void BM_CovarMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  CovarPayload a = RandomPayload(n, &rng);
  CovarPayload b = RandomPayload(n, &rng);
  CovarPayload dst;
  for (auto _ : state) {
    CovarMulInto(n, a, b, &dst);
    benchmark::DoNotOptimize(dst.count);
  }
}
BENCHMARK(BM_CovarMul)->Arg(4)->Arg(12)->Arg(44);

void BM_CovarLift(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::pair<int, double>> feats;
  for (int i = 0; i < std::min(n, 4); ++i) feats.push_back({i, 0.5 * i});
  CovarPayload dst;
  for (auto _ : state) {
    CovarLiftInto(n, feats, &dst);
    benchmark::DoNotOptimize(dst.count);
  }
}
BENCHMARK(BM_CovarLift)->Arg(4)->Arg(12)->Arg(44);

void BM_GroupMulScalar(benchmark::State& state) {
  GroupPayload a;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a.AddEntry(GroupKeyHigh(i), 1.0 + i);
  }
  GroupPayload s = GroupPayload::Single(kScalarGroupKey, 2.0);
  GroupPayload dst;
  for (auto _ : state) {
    GroupMulInto(a, s, &dst);
    benchmark::DoNotOptimize(dst.size());
  }
}
BENCHMARK(BM_GroupMulScalar)->Arg(8)->Arg(64)->Arg(512);

void BM_GroupOuterProduct(benchmark::State& state) {
  GroupPayload a;
  GroupPayload b;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a.AddEntry(GroupKeyHigh(i), 1.0);
    b.AddEntry(GroupKeyLow(i), 2.0);
  }
  GroupPayload dst;
  for (auto _ : state) {
    GroupMulInto(a, b, &dst);
    benchmark::DoNotOptimize(dst.size());
  }
}
BENCHMARK(BM_GroupOuterProduct)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace relborg
