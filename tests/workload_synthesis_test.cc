// Tests for the Fig. 5 batch synthesis: counts follow the documented
// formulas and the batches contain the expected aggregate descriptors.
#include <algorithm>

#include "data/dataset.h"
#include "gtest/gtest.h"
#include "ml/workload_synthesis.h"

namespace relborg {
namespace {

TEST(WorkloadSynthesisTest, CovarBatchCounts) {
  // n continuous: 1 + n + n(n+1)/2; plus per categorical: 1 count +
  // n sums, plus pair counts.
  std::vector<AggregateDescriptor> batch = SynthesizeCovarBatch(3, 2);
  size_t dense = 1 + 3 + 6;
  size_t categorical = 2 * (1 + 3) + 1;
  EXPECT_EQ(batch.size(), dense + categorical);
  EXPECT_NE(std::find(batch.begin(), batch.end(), "SUM(x0*x2)"), batch.end());
  EXPECT_NE(std::find(batch.begin(), batch.end(), "SUM(1) GROUP BY c0,c1"),
            batch.end());
  EXPECT_NE(std::find(batch.begin(), batch.end(), "SUM(x1) GROUP BY c1"),
            batch.end());
}

TEST(WorkloadSynthesisTest, DecisionNodeBatchIsThreePerCandidate) {
  Dataset ds = MakeDataset("yelp", [] {
    GenOptions o;
    o.scale = 0.002;
    return o;
  }());
  std::vector<TreeFeature> features;
  for (size_t f = 0; f + 1 < ds.features.size(); ++f) {
    features.push_back({ds.features[f].relation, ds.features[f].attr, false});
  }
  DecisionTreeOptions opts;
  opts.thresholds_per_feature = 4;
  std::vector<int> owner;
  std::vector<SplitCandidate> candidates =
      BuildSplitCandidates(ds.query, features, opts, &owner);
  EXPECT_EQ(owner.size(), candidates.size());
  std::vector<AggregateDescriptor> batch =
      SynthesizeDecisionNodeBatch(ds.query, features, opts);
  EXPECT_EQ(batch.size(), 3 * candidates.size());
}

TEST(WorkloadSynthesisTest, MutualInfoAndKMeansCounts) {
  EXPECT_EQ(SynthesizeMutualInfoBatch(4).size(), 4u + 6u);
  EXPECT_EQ(SynthesizeMutualInfoBatch(0).size(), 0u);
  // k-means: 1 + 2 per dim + 1 per feature relation + 1 coreset.
  EXPECT_EQ(SynthesizeKMeansBatch(5, 3).size(), 1u + 10u + 3u + 1u);
}

TEST(WorkloadSynthesisTest, OrderingAcrossWorkloadsHolds) {
  // The Fig. 5 shape: decision node > covariance >> mutual info.
  for (const std::string& name : DatasetNames()) {
    Dataset ds = MakeDataset(name, [] {
      GenOptions o;
      o.scale = 0.002;
      return o;
    }());
    int n_cont = static_cast<int>(ds.features.size());
    int n_cat = static_cast<int>(ds.categoricals.size());
    size_t covar = SynthesizeCovarBatch(n_cont, n_cat).size();
    std::vector<TreeFeature> features;
    for (size_t f = 0; f + 1 < ds.features.size(); ++f) {
      features.push_back(
          {ds.features[f].relation, ds.features[f].attr, false});
    }
    for (const auto& c : ds.categoricals) {
      features.push_back({c.relation, c.attr, true});
    }
    size_t decision =
        SynthesizeDecisionNodeBatch(ds.query, features, {}).size();
    size_t mi = SynthesizeMutualInfoBatch(n_cat).size();
    EXPECT_GT(decision, covar) << name;
    EXPECT_GT(covar, mi) << name;
  }
}

}  // namespace
}  // namespace relborg
