// Edge cases and failure-injection tests across modules: malformed CSV,
// adversarial hash keys, degenerate joins, empty relations, extreme
// options.
#include <cstdio>
#include <fstream>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/groupby_engine.h"
#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "relational/csv_io.h"
#include "tests/test_util.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

TEST(CsvRobustnessTest, TruncatedRowFailsCleanly) {
  std::string path = ::testing::TempDir() + "/relborg_bad.csv";
  {
    std::ofstream f(path);
    f << "a,b\n1.0,2.0\n3.0\n";  // second data row too short
  }
  Schema s({{"a", AttrType::kDouble}, {"b", AttrType::kDouble}});
  Relation out("X", s);
  EXPECT_FALSE(ReadCsv(path, "X", s, &out));
  std::remove(path.c_str());
}

TEST(CsvRobustnessTest, HeaderOnlyGivesEmptyRelation) {
  std::string path = ::testing::TempDir() + "/relborg_empty.csv";
  {
    std::ofstream f(path);
    f << "a,b\n";
  }
  Schema s({{"a", AttrType::kDouble}, {"b", AttrType::kDouble}});
  Relation out("X", s);
  EXPECT_TRUE(ReadCsv(path, "X", s, &out));
  EXPECT_EQ(out.num_rows(), 0u);
  std::remove(path.c_str());
}

TEST(FlatHashMapRobustnessTest, AdversarialSameBucketKeys) {
  // Keys crafted to collide under multiply-shift hashing for small tables
  // (arithmetic progression with a step that cancels the multiplier's low
  // bits) must still probe correctly.
  FlatHashMap<int> m;
  std::vector<uint64_t> keys;
  for (uint64_t i = 1; i <= 2000; ++i) keys.push_back(i << 40);
  for (size_t i = 0; i < keys.size(); ++i) m[keys[i]] = static_cast<int>(i);
  for (size_t i = 0; i < keys.size(); ++i) {
    const int* v = m.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(m.size(), keys.size());
}

TEST(FlatHashMapRobustnessTest, KeyZeroAndMaxPackedKey) {
  FlatHashMap<double> m;
  m[kUnitKey] = 1.5;
  uint64_t big = PackKey2(0x7FFFFFFF, 0x7FFFFFFF);
  m[big] = 2.5;
  EXPECT_DOUBLE_EQ(*m.Find(kUnitKey), 1.5);
  EXPECT_DOUBLE_EQ(*m.Find(big), 2.5);
}

TEST(EngineRobustnessTest, SingleRelationQueryUnsupportedJoinless) {
  // A "join" of one relation with a self-contained tree (0 edges).
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"x", AttrType::kDouble}, {"y", AttrType::kDouble}}));
  for (int i = 0; i < 10; ++i) {
    r->AppendRow({static_cast<double>(i), 2.0 * i});
  }
  JoinQuery q;
  q.AddRelation(r);
  RootedTree tree = q.Root(0);
  FeatureMap fm(q, {{"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(tree, fm);
  EXPECT_DOUBLE_EQ(m.count(), 10.0);
  EXPECT_DOUBLE_EQ(m.Moment(0, 1), 2.0 * (0 + 1 + 4 + 9 + 16 + 25 + 36 + 49 +
                                          64 + 81));
}

TEST(EngineRobustnessTest, AllRowsFilteredOut) {
  RandomDb db = MakeRandomDb(3, Topology::kStar);
  FeatureMap fm(db.query, db.features);
  FilterSet filters(db.query.num_relations());
  filters[0].push_back(Predicate::Ge(fm.AttrOf(fm.num_features() - 1), 1e30));
  CovarMatrix m = ComputeCovarMatrix(db.query.Root(0), fm, filters);
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
  GroupByResult g = ComputeGroupBy(
      db.query.Root(0), CountGroupedBy(db.query, "R0", "k1"), filters);
  EXPECT_EQ(g.size(), 0u);
}

TEST(EngineRobustnessTest, TwoGroupAttrsOnSameNode) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"a", AttrType::kCategorical},
                   {"b", AttrType::kCategorical}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  r->AppendRow({0, 1, 2});
  r->AppendRow({0, 1, 2});
  r->AppendRow({0, 3, 4});
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  GroupByResult g = ComputeGroupBy(
      q.Root("R"), CountGroupedByPair(q, "R", "a", "R", "b"));
  ASSERT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(*g.Find(GroupKeyBoth(1, 2)), 2.0);
  EXPECT_DOUBLE_EQ(*g.Find(GroupKeyBoth(3, 4)), 1.0);
}

TEST(StreamRobustnessTest, ProportionalOrderCoversAllRows) {
  RandomDb db = MakeRandomDb(17, Topology::kBushy);
  UpdateStreamOptions opts;
  opts.order = StreamOrder::kProportional;
  opts.batch_size = 7;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  size_t total = 0;
  for (int v = 0; v < db.query.num_relations(); ++v) {
    total += db.query.relation(v)->num_rows();
  }
  EXPECT_EQ(StreamRowCount(stream), total);
}

TEST(StreamRobustnessTest, IvmAgreesUnderProportionalOrderToo) {
  RandomDb db = MakeRandomDb(23, Topology::kChain, /*fact_rows=*/40);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  UpdateStreamOptions opts;
  opts.order = StreamOrder::kProportional;
  opts.batch_size = 9;
  for (const UpdateBatch& b : BuildInsertStream(db.query, opts)) {
    size_t first = shadow.AppendRows(b.node, b.rows);
    fivm.ApplyBatch(b.node, first, b.rows.size());
  }
  CovarMatrix want = ComputeCovarMatrix(shadow.tree(), fm);
  EXPECT_NEAR(fivm.Current().count(), want.count(), 1e-6);
  EXPECT_NEAR(fivm.Current().Moment(0, 1), want.Moment(0, 1),
              1e-6 * (1 + std::abs(want.Moment(0, 1))));
}

TEST(TrainingRobustnessTest, ConstantFeatureDoesNotBreakRidge) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"c", AttrType::kDouble},     // constant column
                   {"x", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Gaussian();
    r->AppendRow({0, 5.0, x, 3 * x + rng.Gaussian(0, 0.01)});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "c"}, {"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  LinearModel gd = TrainRidgeGd(m, 2);
  LinearModel cf = SolveRidgeClosedForm(m, 2);
  EXPECT_NEAR(gd.weights[1], 3.0, 0.01);
  EXPECT_NEAR(cf.weights[1], 3.0, 0.01);
  // The constant feature gets ~zero weight in both solvers.
  EXPECT_NEAR(gd.weights[0], 0.0, 1e-6);
  EXPECT_NEAR(cf.weights[0], 0.0, 1e-6);
}

TEST(TrainingRobustnessTest, SingleTupleJoin) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"x", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  r->AppendRow({0, 1.0, 2.0});
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  EXPECT_DOUBLE_EQ(m.count(), 1.0);
  // Ridge on a single tuple: no variance, all weight in the bias.
  LinearModel model = SolveRidgeClosedForm(m, 1);
  EXPECT_NEAR(model.bias + model.weights[0] * 1.0, 2.0, 1e-6);
}

}  // namespace
}  // namespace relborg
