// Edge cases and failure-injection tests across modules: malformed CSV,
// adversarial hash keys, degenerate joins, empty relations, extreme
// options — and stream-level adversarial input (out-of-range nodes, wrong
// arity, non-finite values, over-retracting deletes, quarantine bounds,
// TryPush deadlines, the stall watchdog): the pipeline must survive and
// REPORT untrusted UpdateBatch input, never abort.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/groupby_engine.h"
#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "relational/csv_io.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"
#include "util/flat_hash_map.h"
#include "util/status.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

TEST(CsvRobustnessTest, TruncatedRowFailsCleanly) {
  std::string path = ::testing::TempDir() + "/relborg_bad.csv";
  {
    std::ofstream f(path);
    f << "a,b\n1.0,2.0\n3.0\n";  // second data row too short
  }
  Schema s({{"a", AttrType::kDouble}, {"b", AttrType::kDouble}});
  Relation out("X", s);
  EXPECT_FALSE(ReadCsv(path, "X", s, &out));
  std::remove(path.c_str());
}

TEST(CsvRobustnessTest, HeaderOnlyGivesEmptyRelation) {
  std::string path = ::testing::TempDir() + "/relborg_empty.csv";
  {
    std::ofstream f(path);
    f << "a,b\n";
  }
  Schema s({{"a", AttrType::kDouble}, {"b", AttrType::kDouble}});
  Relation out("X", s);
  EXPECT_TRUE(ReadCsv(path, "X", s, &out));
  EXPECT_EQ(out.num_rows(), 0u);
  std::remove(path.c_str());
}

TEST(FlatHashMapRobustnessTest, AdversarialSameBucketKeys) {
  // Keys crafted to collide under multiply-shift hashing for small tables
  // (arithmetic progression with a step that cancels the multiplier's low
  // bits) must still probe correctly.
  FlatHashMap<int> m;
  std::vector<uint64_t> keys;
  for (uint64_t i = 1; i <= 2000; ++i) keys.push_back(i << 40);
  for (size_t i = 0; i < keys.size(); ++i) m[keys[i]] = static_cast<int>(i);
  for (size_t i = 0; i < keys.size(); ++i) {
    const int* v = m.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(m.size(), keys.size());
}

TEST(FlatHashMapRobustnessTest, KeyZeroAndMaxPackedKey) {
  FlatHashMap<double> m;
  m[kUnitKey] = 1.5;
  uint64_t big = PackKey2(0x7FFFFFFF, 0x7FFFFFFF);
  m[big] = 2.5;
  EXPECT_DOUBLE_EQ(*m.Find(kUnitKey), 1.5);
  EXPECT_DOUBLE_EQ(*m.Find(big), 2.5);
}

TEST(EngineRobustnessTest, SingleRelationQueryUnsupportedJoinless) {
  // A "join" of one relation with a self-contained tree (0 edges).
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"x", AttrType::kDouble}, {"y", AttrType::kDouble}}));
  for (int i = 0; i < 10; ++i) {
    r->AppendRow({static_cast<double>(i), 2.0 * i});
  }
  JoinQuery q;
  q.AddRelation(r);
  RootedTree tree = q.Root(0);
  FeatureMap fm(q, {{"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(tree, fm);
  EXPECT_DOUBLE_EQ(m.count(), 10.0);
  EXPECT_DOUBLE_EQ(m.Moment(0, 1), 2.0 * (0 + 1 + 4 + 9 + 16 + 25 + 36 + 49 +
                                          64 + 81));
}

TEST(EngineRobustnessTest, AllRowsFilteredOut) {
  RandomDb db = MakeRandomDb(3, Topology::kStar);
  FeatureMap fm(db.query, db.features);
  FilterSet filters(db.query.num_relations());
  filters[0].push_back(Predicate::Ge(fm.AttrOf(fm.num_features() - 1), 1e30));
  CovarMatrix m = ComputeCovarMatrix(db.query.Root(0), fm, filters);
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
  GroupByResult g = ComputeGroupBy(
      db.query.Root(0), CountGroupedBy(db.query, "R0", "k1"), filters);
  EXPECT_EQ(g.size(), 0u);
}

TEST(EngineRobustnessTest, TwoGroupAttrsOnSameNode) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"a", AttrType::kCategorical},
                   {"b", AttrType::kCategorical}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  r->AppendRow({0, 1, 2});
  r->AppendRow({0, 1, 2});
  r->AppendRow({0, 3, 4});
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  GroupByResult g = ComputeGroupBy(
      q.Root("R"), CountGroupedByPair(q, "R", "a", "R", "b"));
  ASSERT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(*g.Find(GroupKeyBoth(1, 2)), 2.0);
  EXPECT_DOUBLE_EQ(*g.Find(GroupKeyBoth(3, 4)), 1.0);
}

TEST(StreamRobustnessTest, ProportionalOrderCoversAllRows) {
  RandomDb db = MakeRandomDb(17, Topology::kBushy);
  UpdateStreamOptions opts;
  opts.order = StreamOrder::kProportional;
  opts.batch_size = 7;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  size_t total = 0;
  for (int v = 0; v < db.query.num_relations(); ++v) {
    total += db.query.relation(v)->num_rows();
  }
  EXPECT_EQ(StreamRowCount(stream), total);
}

TEST(StreamRobustnessTest, IvmAgreesUnderProportionalOrderToo) {
  RandomDb db = MakeRandomDb(23, Topology::kChain, /*fact_rows=*/40);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  UpdateStreamOptions opts;
  opts.order = StreamOrder::kProportional;
  opts.batch_size = 9;
  for (const UpdateBatch& b : BuildInsertStream(db.query, opts)) {
    size_t first = shadow.AppendRows(b.node, b.rows);
    fivm.ApplyBatch(b.node, first, b.rows.size());
  }
  CovarMatrix want = ComputeCovarMatrix(shadow.tree(), fm);
  EXPECT_NEAR(fivm.Current().count(), want.count(), 1e-6);
  EXPECT_NEAR(fivm.Current().Moment(0, 1), want.Moment(0, 1),
              1e-6 * (1 + std::abs(want.Moment(0, 1))));
}

TEST(TrainingRobustnessTest, ConstantFeatureDoesNotBreakRidge) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"c", AttrType::kDouble},     // constant column
                   {"x", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Gaussian();
    r->AppendRow({0, 5.0, x, 3 * x + rng.Gaussian(0, 0.01)});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "c"}, {"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  LinearModel gd = TrainRidgeGd(m, 2);
  LinearModel cf = SolveRidgeClosedForm(m, 2);
  EXPECT_NEAR(gd.weights[1], 3.0, 0.01);
  EXPECT_NEAR(cf.weights[1], 3.0, 0.01);
  // The constant feature gets ~zero weight in both solvers.
  EXPECT_NEAR(gd.weights[0], 0.0, 1e-6);
  EXPECT_NEAR(cf.weights[0], 0.0, 1e-6);
}

TEST(TrainingRobustnessTest, SingleTupleJoin) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"x", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  r->AppendRow({0, 1.0, 2.0});
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(d);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "x"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  EXPECT_DOUBLE_EQ(m.count(), 1.0);
  // Ridge on a single tuple: no variance, all weight in the bias.
  LinearModel model = SolveRidgeClosedForm(m, 1);
  EXPECT_NEAR(model.bias + model.weights[0] * 1.0, 2.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Stream ingress validation: every rejection case quarantines + reports
// (never aborts) and the pipeline keeps processing subsequent good
// batches — proven by comparing against a clean run of the good-only
// stream.

// Drives [good..., bad, good...] through a scheduler and checks: the bad
// batch is rejected with `want_code`, ends up quarantined, and the final
// aggregate equals a clean run over just the good batches.
void CheckRejectedButPipelineSurvives(const UpdateBatch& bad,
                                      StatusCode want_code) {
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  UpdateStreamOptions opts;
  opts.batch_size = 9;
  const std::vector<UpdateBatch> good = BuildInsertStream(db.query, opts);
  ASSERT_GE(good.size(), 2u);

  // Clean reference over the good-only stream.
  ShadowDb ref_shadow(db.query, 0);
  FeatureMap ref_fm(ref_shadow.query(), db.features);
  CovarFivm ref(&ref_shadow, &ref_fm);
  ReplayStream(&ref_shadow, &ref, good);

  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  StreamScheduler<CovarFivm> scheduler(&shadow, &fivm);
  ASSERT_TRUE(scheduler.Push(good[0]).ok());
  const Status st = scheduler.Push(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), want_code) << st.ToString();
  for (size_t i = 1; i < good.size(); ++i) {
    ASSERT_TRUE(scheduler.Push(good[i]).ok()) << "good batch " << i
                                              << " after rejection";
  }
  auto quarantined = scheduler.DrainQuarantine();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].status.code(), want_code);
  EXPECT_EQ(quarantined[0].batch.rows.size(), bad.rows.size());
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());
  EXPECT_EQ(stats.rejected_batches, 1u);
  EXPECT_EQ(stats.rejected_rows, bad.rows.size());
  EXPECT_EQ(stats.quarantined_batches, 1u);
  // Bit-identical to the clean good-only run: the rejected batch never
  // influenced epoch composition or any view.
  const int n = ref.Current().num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(fivm.Current().Moment(i, j), ref.Current().Moment(i, j));
    }
  }
}

TEST(StreamIngressValidationTest, OutOfRangeNodeRejected) {
  UpdateBatch bad;
  bad.node = 99;
  bad.rows = {{1.0, 2.0}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, NegativeNodeRejected) {
  UpdateBatch bad;
  bad.node = -7;
  bad.rows = {{1.0, 2.0}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, WrongArityRowRejected) {
  UpdateBatch bad;
  bad.node = 0;  // chain R0 has arity 2
  bad.rows = {{1.0, 2.0, 3.0}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, NonFiniteValueRejected) {
  UpdateBatch bad;
  bad.node = 0;
  bad.rows = {{1.0, std::numeric_limits<double>::infinity()}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, BadCategoricalCodeRejected) {
  // Chain R0's first attribute is categorical: negative and fractional
  // codes would silently truncate in Column::AppendCat release builds.
  UpdateBatch bad;
  bad.node = 0;
  bad.rows = {{-3.0, 1.0}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
  UpdateBatch frac;
  frac.node = 0;
  frac.rows = {{2.5, 1.0}};
  CheckRejectedButPipelineSurvives(frac, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, BadSignRejected) {
  UpdateBatch bad;
  bad.node = 0;
  bad.sign = 2.0;
  bad.rows = {{1.0, 2.0}};
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, DeleteOfNeverInsertedRowRejected) {
  UpdateBatch bad;
  bad.node = 0;
  bad.sign = -1.0;
  bad.rows = {{7.0, 123.456}};  // never inserted
  CheckRejectedButPipelineSurvives(bad, StatusCode::kInvalidArgument);
}

TEST(StreamIngressValidationTest, DeleteOverRetractingDuplicateRejected) {
  // One live copy, a delete batch retracting it TWICE: the batch-atomic
  // need-count check rejects the whole batch.
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  StreamScheduler<CovarFivm> scheduler(&shadow, &fivm);
  UpdateBatch ins;
  ins.node = 0;
  ins.rows = {{3.0, 1.25}};
  ASSERT_TRUE(scheduler.Push(ins).ok());
  UpdateBatch del;
  del.node = 0;
  del.sign = -1.0;
  del.rows = {{3.0, 1.25}, {3.0, 1.25}};
  EXPECT_EQ(scheduler.Push(del).code(), StatusCode::kInvalidArgument);
  // Retracting it once is fine.
  del.rows = {{3.0, 1.25}};
  EXPECT_TRUE(scheduler.Push(del).ok());
  // A second single retraction now over-retracts (multiplicity is 0).
  EXPECT_EQ(scheduler.Push(del).code(), StatusCode::kInvalidArgument);
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());
  EXPECT_EQ(stats.rejected_batches, 2u);
  EXPECT_DOUBLE_EQ(fivm.Current().count(), 0.0);
}

TEST(StreamIngressValidationTest, QuarantineIsBoundedAndZeroCapacityDrops) {
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  UpdateBatch bad;
  bad.node = 42;
  bad.rows = {{1.0, 2.0}};
  {  // Capacity 2: third rejection is dropped, not queued.
    ShadowDb shadow(db.query, 0);
    FeatureMap fm(shadow.query(), db.features);
    CovarFivm fivm(&shadow, &fm);
    StreamOptions options;
    options.quarantine_capacity = 2;
    StreamScheduler<CovarFivm> scheduler(&shadow, &fivm, options);
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(scheduler.Push(bad).ok());
    }
    EXPECT_EQ(scheduler.quarantine_size(), 2u);
    StreamStats stats;
    ASSERT_TRUE(scheduler.Finish(&stats).ok());
    EXPECT_EQ(stats.rejected_batches, 3u);
    EXPECT_EQ(stats.quarantined_batches, 2u);
    EXPECT_EQ(stats.quarantine_dropped_batches, 1u);
  }
  {  // Capacity 0: every rejection is dropped; nothing is ever queued.
    ShadowDb shadow(db.query, 0);
    FeatureMap fm(shadow.query(), db.features);
    CovarFivm fivm(&shadow, &fm);
    StreamOptions options;
    options.quarantine_capacity = 0;
    StreamScheduler<CovarFivm> scheduler(&shadow, &fivm, options);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(scheduler.Push(bad).code(), StatusCode::kInvalidArgument);
    }
    EXPECT_EQ(scheduler.quarantine_size(), 0u);
    StreamStats stats;
    ASSERT_TRUE(scheduler.Finish(&stats).ok());
    EXPECT_EQ(stats.quarantined_batches, 0u);
    EXPECT_EQ(stats.quarantine_dropped_batches, 3u);
  }
}

TEST(StreamIngressValidationTest, PushAfterFinishReportsInsteadOfAborting) {
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  StreamScheduler<CovarFivm> scheduler(&shadow, &fivm);
  UpdateBatch good;
  good.node = 0;
  good.rows = {{1.0, 0.5}};
  ASSERT_TRUE(scheduler.Push(good).ok());
  ASSERT_TRUE(scheduler.Finish().ok());
  const Status st = scheduler.Push(good);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());  // idempotent
  EXPECT_EQ(stats.dropped_batches, 1u);
  EXPECT_EQ(stats.batches, 1u);  // the late batch never entered
}

// Minimal maintenance strategy whose ApplyBatch blocks until released —
// stalls the applier so backpressure fills every queue deterministically.
class BlockingStrategy {
 public:
  void ApplyBatch(int /*node*/, size_t /*first*/, size_t /*count*/,
                  const size_t* /*visible*/) {
    std::unique_lock<std::mutex> lock(mu_);
    ++applied_;
    cv_.wait(lock, [&] { return released_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  int applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  int applied_ = 0;
};

TEST(StreamBackpressureTest, TryPushDeadlineExpiresUnderStalledApplier) {
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  ShadowDb shadow(db.query, 0);
  BlockingStrategy strategy;
  StreamOptions options;
  options.epoch_batches = 1;  // every batch seals an epoch
  options.epoch_rows = 1;
  options.max_queued_rows = 4;
  options.max_queued_epochs = 1;
  options.max_compute_ahead_epochs = 1;
  StreamScheduler<BlockingStrategy> scheduler(&shadow, &strategy, options);
  UpdateBatch batch;
  batch.node = 0;
  batch.rows = {{1.0, 0.5}, {2.0, 0.25}, {3.0, 0.75}, {4.0, 1.5}};
  size_t accepted = 0, timed_out = 0;
  for (int i = 0; i < 16 && timed_out == 0; ++i) {
    const Status st =
        scheduler.TryPush(batch, std::chrono::milliseconds(20));
    if (st.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
      ++timed_out;
    }
  }
  EXPECT_GE(accepted, 1u);
  ASSERT_EQ(timed_out, 1u) << "stalled pipeline never backpressured";
  strategy.Release();
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());
  EXPECT_EQ(stats.try_push_timeouts, 1u);
  // Every ACCEPTED batch was applied despite the stall + timeout.
  EXPECT_EQ(stats.batches, accepted);
  EXPECT_EQ(static_cast<size_t>(strategy.applied()), accepted);
}

TEST(StreamBackpressureTest, WatchdogReportsStallWithoutKillingPipeline) {
  RandomDb db = MakeRandomDb(5, Topology::kChain, /*fact_rows=*/24);
  ShadowDb shadow(db.query, 0);
  BlockingStrategy strategy;
  StreamOptions options;
  options.epoch_batches = 1;
  options.epoch_rows = 1;
  options.max_queued_rows = 4;
  options.max_queued_epochs = 1;
  options.max_compute_ahead_epochs = 1;
  options.stall_timeout_seconds = 0.05;
  StreamScheduler<BlockingStrategy> scheduler(&shadow, &strategy, options);
  UpdateBatch batch;
  batch.node = 0;
  batch.rows = {{1.0, 0.5}, {2.0, 0.25}};
  // Enough batches that work is QUEUED behind the stalled applier (the
  // watchdog only reports when queues are non-empty and nothing moves).
  for (int i = 0; i < 3; ++i) {
    (void)scheduler.TryPush(batch, std::chrono::milliseconds(20));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  strategy.Release();
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());
  EXPECT_GE(stats.watchdog_stalls, 1u);
  EXPECT_GT(strategy.applied(), 0);
}

}  // namespace
}  // namespace relborg
