// Tests for the factorized covariance engine: the dinner example of the
// paper (Figures 7-9) with hand-computed aggregates, plus property tests
// cross-checking all four execution modes against the materialized
// reference on random acyclic databases.
#include <tuple>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/feature_map.h"
#include "gtest/gtest.h"
#include "query/join_tree.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::ReferenceCovar;
using testing::Topology;

TEST(CovarEngineDinnerTest, CountAndSumMatchFigure9) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  FeatureMap fm(query, {{"Items", "price"}});

  CovarMatrix m = ComputeCovarMatrix(tree, fm);
  // Figure 9 left: SUM(1) over the join is 12.
  EXPECT_DOUBLE_EQ(m.count(), 12.0);
  // Figure 9 right with f == 1: 20 * f(burger) + 16 * f(hotdog) = 36.
  EXPECT_DOUBLE_EQ(m.Sum(0), 36.0);
  // SUM(price^2): burger items 36+4+4=44 (x2 orders), hotdog 4+4+16=24 (x2).
  EXPECT_DOUBLE_EQ(m.Moment(0, 0), 2 * 44.0 + 2 * 24.0);
}

TEST(CovarEngineDinnerTest, AllModesAndRootsAgree) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  FeatureMap fm(query, {{"Items", "price"}});
  for (int root = 0; root < query.num_relations(); ++root) {
    RootedTree tree = query.Root(root);
    for (ExecMode mode :
         {ExecMode::kPerAggregateInterpreted, ExecMode::kPerAggregate,
          ExecMode::kShared, ExecMode::kSharedParallel}) {
      CovarEngineOptions options;
      options.mode = mode;
      CovarMatrix m = ComputeCovarMatrix(tree, fm, {}, options);
      EXPECT_DOUBLE_EQ(m.count(), 12.0) << root;
      EXPECT_DOUBLE_EQ(m.Sum(0), 36.0) << root;
    }
  }
}

TEST(CovarEngineDinnerTest, EmptyJoinGivesZero) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  // An Items relation that matches no Dish rows.
  Schema items_schema({{"item", AttrType::kCategorical},
                       {"price", AttrType::kDouble}});
  Relation* lonely = catalog.AddRelation("LonelyItems", items_schema);
  lonely->AppendRow({99, 1.0});
  JoinQuery q;
  q.AddRelation(catalog.Get("Orders"));
  q.AddRelation(catalog.Get("Dish"));
  q.AddRelation(catalog.Get("LonelyItems"));
  q.AddJoin("Orders", "Dish", {"dish"});
  q.AddJoin("Dish", "LonelyItems", {"item"});
  FeatureMap fm(q, {{"LonelyItems", "price"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("Orders"), fm);
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
  EXPECT_DOUBLE_EQ(m.Sum(0), 0.0);
}

// --- Property tests: factorized == materialized on random databases. ---

class CovarEngineProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(CovarEngineProperty, MatchesMaterializedReference) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);

  DataMatrix matrix = MaterializeJoin(tree, fm);
  CovarPayload ref = ReferenceCovar(matrix);

  for (ExecMode mode :
       {ExecMode::kPerAggregateInterpreted, ExecMode::kPerAggregate,
        ExecMode::kShared, ExecMode::kSharedParallel}) {
    CovarEngineOptions options;
    options.mode = mode;
    CovarMatrix m = ComputeCovarMatrix(tree, fm, {}, options);
    ASSERT_NEAR(m.count(), ref.count, 1e-6 * (1 + std::abs(ref.count)));
    const int n = fm.num_features();
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(m.Sum(i), ref.sum[i], 1e-6 * (1 + std::abs(ref.sum[i])));
      for (int j = i; j < n; ++j) {
        double want = ref.quad[UpperTriIndex(n, i, j)];
        EXPECT_NEAR(m.Moment(i, j), want, 1e-6 * (1 + std::abs(want)))
            << "mode=" << static_cast<int>(mode) << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST_P(CovarEngineProperty, RootChoiceIsIrrelevant) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  CovarMatrix base = ComputeCovarMatrix(db.query.Root(0), fm);
  for (int root = 1; root < db.query.num_relations(); ++root) {
    CovarMatrix other = ComputeCovarMatrix(db.query.Root(root), fm);
    EXPECT_NEAR(base.count(), other.count(), 1e-6);
    for (int i = 0; i <= fm.num_features(); ++i) {
      for (int j = i; j <= fm.num_features(); ++j) {
        EXPECT_NEAR(base.Moment(i, j), other.Moment(i, j),
                    1e-6 * (1 + std::abs(base.Moment(i, j))));
      }
    }
  }
}

TEST_P(CovarEngineProperty, FiltersMatchMaterializedReference) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);

  // Filter: first feature's attribute >= 0 at its owning relation, and a
  // categorical filter on the fact's first key.
  FilterSet filters(db.query.num_relations());
  int f0_node = fm.NodeOf(0);
  filters[f0_node].push_back(Predicate::Ge(fm.AttrOf(0), 0.0));
  filters[0].push_back(Predicate::InSet(0, {0, 1, 2, 3}));

  DataMatrix matrix = MaterializeJoin(tree, fm, filters);
  CovarPayload ref = ReferenceCovar(matrix);
  const int n = fm.num_features();
  for (ExecMode mode : {ExecMode::kShared, ExecMode::kSharedParallel,
                        ExecMode::kPerAggregate}) {
    CovarEngineOptions options;
    options.mode = mode;
    CovarMatrix m = ComputeCovarMatrix(tree, fm, filters, options);
    EXPECT_NEAR(m.count(), ref.count, 1e-6);
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        double want = ref.quad[UpperTriIndex(n, i, j)];
        EXPECT_NEAR(m.Moment(i, j), want, 1e-6 * (1 + std::abs(want)))
            << "mode=" << static_cast<int>(mode);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, CovarEngineProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

TEST(CovarBatchSizeTest, Formula) {
  EXPECT_EQ(CovarBatchSize(0), 1u);
  EXPECT_EQ(CovarBatchSize(1), 3u);
  EXPECT_EQ(CovarBatchSize(10), 66u);
}

}  // namespace
}  // namespace relborg
