// Tests for additive-inequality join aggregates (Sec. 2.3): the sorted
// prefix-sum algorithm must agree exactly with the naive join scan while
// inspecting asymptotically fewer tuples.
#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "inequality/inequality_join.h"
#include "util/rng.h"

namespace relborg {
namespace {

struct Fixture {
  Relation r;
  Relation s;
  Fixture(int r_rows, int s_rows, int32_t domain, uint64_t seed)
      : r("R", Schema({{"k", AttrType::kCategorical},
                       {"x", AttrType::kDouble},
                       {"m", AttrType::kDouble}})),
        s("S", Schema({{"k", AttrType::kCategorical},
                       {"y", AttrType::kDouble}})) {
    Rng rng(seed);
    for (int i = 0; i < r_rows; ++i) {
      r.AppendRow({static_cast<double>(rng.Below(domain)),
                   rng.Uniform(-3, 3), rng.Uniform(0, 2)});
    }
    for (int i = 0; i < s_rows; ++i) {
      s.AppendRow({static_cast<double>(rng.Below(domain)),
                   rng.Uniform(-3, 3)});
    }
  }
};

class InequalityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InequalityProperty, SortedMatchesNaive) {
  Fixture fx(300, 400, 12, GetParam());
  for (double wx : {1.0, -0.5, 2.0}) {
    for (double wy : {1.0, 0.75, -1.5}) {
      for (double c : {-1.0, 0.0, 1.3}) {
        InequalityAggregateSpec spec;
        spec.wx = wx;
        spec.wy = wy;
        spec.threshold = c;
        spec.r_measure_attr = 2;
        InequalityAggregateResult naive =
            InequalityAggregateNaive(fx.r, fx.s, spec);
        InequalityAggregateResult sorted =
            InequalityAggregateSorted(fx.r, fx.s, spec);
        EXPECT_NEAR(naive.value, sorted.value,
                    1e-9 * (1 + std::abs(naive.value)))
            << "wx=" << wx << " wy=" << wy << " c=" << c;
      }
    }
  }
}

TEST_P(InequalityProperty, CountMeasure) {
  Fixture fx(200, 200, 6, GetParam() + 50);
  InequalityAggregateSpec spec;  // COUNT(*) WHERE x + y > 0
  InequalityAggregateResult naive = InequalityAggregateNaive(fx.r, fx.s, spec);
  InequalityAggregateResult sorted =
      InequalityAggregateSorted(fx.r, fx.s, spec);
  EXPECT_DOUBLE_EQ(naive.value, sorted.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InequalityProperty,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

TEST(InequalityWorkTest, SortedInspectsFewerTuplesOnFatJoins) {
  // Few keys -> huge join. The naive path touches every join tuple; the
  // sorted path touches each base tuple O(1) times (plus the sort).
  Fixture fx(5000, 5000, 3, 7);
  InequalityAggregateSpec spec;
  InequalityAggregateResult naive = InequalityAggregateNaive(fx.r, fx.s, spec);
  InequalityAggregateResult sorted =
      InequalityAggregateSorted(fx.r, fx.s, spec);
  EXPECT_DOUBLE_EQ(naive.value, sorted.value);
  // Join has ~5000*5000/3 tuples; sorted inspects ~10000.
  EXPECT_GT(naive.tuples_inspected, 100u * sorted.tuples_inspected);
}

TEST(InequalityTest, HingeViolationMass) {
  // Margin violations: wx*x + wy*y < 1.
  Relation r("R", Schema({{"k", AttrType::kCategorical},
                          {"x", AttrType::kDouble},
                          {"m", AttrType::kDouble}}));
  Relation s("S", Schema({{"k", AttrType::kCategorical},
                          {"y", AttrType::kDouble}}));
  r.AppendRow({0, 0.2, 1.0});
  r.AppendRow({0, 2.0, 1.0});
  s.AppendRow({0, 0.1});
  s.AppendRow({0, 3.0});
  // Pairs (x,y): (0.2,0.1)->0.3<1 violation; (0.2,3)->3.2 ok;
  // (2,0.1)->2.1 ok; (2,3)->5 ok. One violation with measure 1.
  InequalityAggregateResult viol =
      HingeViolationMass(r, s, 0, 1, 2, 0, 1, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(viol.value, 1.0);
}

TEST(InequalityTest, EmptyRelations) {
  Relation r("R", Schema({{"k", AttrType::kCategorical},
                          {"x", AttrType::kDouble}}));
  Relation s("S", Schema({{"k", AttrType::kCategorical},
                          {"y", AttrType::kDouble}}));
  InequalityAggregateSpec spec;
  spec.r_measure_attr = -1;
  EXPECT_DOUBLE_EQ(InequalityAggregateNaive(r, s, spec).value, 0.0);
  EXPECT_DOUBLE_EQ(InequalityAggregateSorted(r, s, spec).value, 0.0);
}

}  // namespace
}  // namespace relborg
