// Tests for the structure-agnostic baseline's join materializer.
#include <cmath>

#include "baseline/materializer.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

TEST(MaterializerTest, DinnerJoinHasTwelveRows) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{"Orders", "customer"},
                                   {"Orders", "dish"},
                                   {"Dish", "item"},
                                   {"Items", "price"}});
  EXPECT_EQ(m.num_rows(), 12u);
  EXPECT_EQ(m.num_cols(), 4);
  // Total price over the join (paper Fig. 9): 36.
  double total = 0;
  for (size_t r = 0; r < m.num_rows(); ++r) total += m.At(r, 3);
  EXPECT_DOUBLE_EQ(total, 36.0);
  EXPECT_DOUBLE_EQ(CountJoin(tree), 12.0);
}

TEST(MaterializerTest, CountJoinMatchesMatrixRows) {
  for (uint64_t seed : {3u, 9u, 27u}) {
    for (Topology t : {Topology::kStar, Topology::kChain, Topology::kBushy}) {
      RandomDb db = MakeRandomDb(seed, t);
      FeatureMap fm(db.query, db.features);
      for (int root = 0; root < db.query.num_relations(); ++root) {
        RootedTree tree = db.query.Root(root);
        DataMatrix m = MaterializeJoin(tree, fm);
        EXPECT_DOUBLE_EQ(CountJoin(tree), static_cast<double>(m.num_rows()))
            << "seed=" << seed << " root=" << root;
      }
    }
  }
}

TEST(MaterializerTest, FiltersReduceRows) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  FilterSet filters(query.num_relations());
  // Only burgers (dish == 0): 2 orders x 3 items = 6 rows.
  filters[query.IndexOf("Orders")].push_back(Predicate::Eq(2, 0));
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{"Items", "price"}}, filters);
  EXPECT_EQ(m.num_rows(), 6u);
  EXPECT_DOUBLE_EQ(CountJoin(tree, filters), 6.0);
}

TEST(MaterializerTest, ShuffleKeepsMultiset) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{"Items", "price"}});
  double sum_before = 0;
  for (size_t r = 0; r < m.num_rows(); ++r) sum_before += m.At(r, 0);
  Rng rng(4);
  m.ShuffleRows(&rng);
  double sum_after = 0;
  for (size_t r = 0; r < m.num_rows(); ++r) sum_after += m.At(r, 0);
  EXPECT_DOUBLE_EQ(sum_before, sum_after);
  EXPECT_EQ(m.num_rows(), 12u);
}

TEST(MaterializerTest, RowOrderIndependentOfRoot) {
  // Different roots enumerate in different orders but must produce the same
  // multiset of rows; compare via order-independent statistics.
  RandomDb db = MakeRandomDb(11, Topology::kBushy);
  FeatureMap fm(db.query, db.features);
  double count0 = 0, sum0 = 0, sumsq0 = 0;
  {
    DataMatrix m = MaterializeJoin(db.query.Root(0), fm);
    count0 = static_cast<double>(m.num_rows());
    for (size_t r = 0; r < m.num_rows(); ++r) {
      for (int c = 0; c < m.num_cols(); ++c) {
        sum0 += m.At(r, c);
        sumsq0 += m.At(r, c) * m.At(r, c);
      }
    }
  }
  for (int root = 1; root < db.query.num_relations(); ++root) {
    DataMatrix m = MaterializeJoin(db.query.Root(root), fm);
    EXPECT_DOUBLE_EQ(static_cast<double>(m.num_rows()), count0);
    double sum = 0, sumsq = 0;
    for (size_t r = 0; r < m.num_rows(); ++r) {
      for (int c = 0; c < m.num_cols(); ++c) {
        sum += m.At(r, c);
        sumsq += m.At(r, c) * m.At(r, c);
      }
    }
    EXPECT_NEAR(sum, sum0, 1e-7 * (1 + std::abs(sum0)));
    EXPECT_NEAR(sumsq, sumsq0, 1e-7 * (1 + std::abs(sumsq0)));
  }
}

TEST(DataMatrixTest, ColIndex) {
  DataMatrix m({"a", "b"});
  EXPECT_EQ(m.ColIndex("b"), 1);
  EXPECT_EQ(m.ColIndex("z"), -1);
  double row[2] = {1.0, 2.0};
  m.AppendRow(row);
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.ByteSize(), 2 * sizeof(double));
}

}  // namespace
}  // namespace relborg
