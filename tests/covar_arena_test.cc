// Golden-equivalence suite for the arena-backed covariance payload storage
// (ring/covar_arena.h): every span kernel against the reference
// CovarPayload ops of ring/covariance.h over kPropertySeeds, ring axioms on
// spans, scoped kernels against their dense counterparts, arena/view
// mechanics and edge cases, a thread sweep of the arena-backed engine (run
// under the TSan sibling config in CI), and a hot-loop allocation-count
// guard proving a CovarEngine batch allocates per KEY structure, never per
// row or per payload.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <tuple>
#include <utility>
#include <vector>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/feature_map.h"
#include "gtest/gtest.h"
#include "ring/covar_arena.h"
#include "ring/covariance.h"
#include "tests/test_util.h"
#include "util/rng.h"

// --- Global allocation counter (for the hot-loop guard) -------------------
//
// Every operator new in this binary bumps the counter; the guard measures
// the count across engine calls. Replacing the global operators is
// standard-conformant and composes with the sanitizers (malloc stays
// intercepted).

namespace {
std::atomic<size_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::ReferenceCovar;
using testing::Topology;

constexpr int kN = 7;

CovarPayload RandomPayload(int n, Rng* rng) {
  CovarPayload p = CovarPayload::Zero(n);
  p.count = rng->Uniform(0.0, 3.0);
  for (auto& s : p.sum) s = rng->Uniform(-2.0, 2.0);
  for (auto& q : p.quad) q = rng->Uniform(-2.0, 2.0);
  return p;
}

std::vector<double> SpanOf(const CovarPayload& p) {
  std::vector<double> span(CovarStride(static_cast<int>(p.sum.size())));
  CovarPayloadToSpan(p, span.data());
  return span;
}

void ExpectSpanEqPayload(int n, const std::vector<double>& span,
                         const CovarPayload& want) {
  const CovarPayload got = CovarPayloadFromSpan(n, span.data());
  EXPECT_EQ(got.count, want.count);
  for (int i = 0; i < n; ++i) EXPECT_EQ(got.sum[i], want.sum[i]) << "i=" << i;
  for (size_t i = 0; i < want.quad.size(); ++i) {
    EXPECT_EQ(got.quad[i], want.quad[i]) << "q=" << i;
  }
}

// FMA-aware golden compare: the kernels are built with -O3 -march=native,
// where GCC/Clang default to -ffp-contract=fast and may contract an
// `a * b + c` in the span kernel into one fused multiply-add while leaving
// the reference op's syntactically different expression uncontracted (or
// vice versa). A contracted FMA skips the intermediate rounding of the
// product, so the two results can differ by at most one ULP per affected
// term — a compile-time codegen choice, identical on every run and every
// thread count, so it does not weaken the repo's run-to-run determinism
// contract (which is about reproducibility of ONE binary, not about which
// of two correctly-rounded expressions the compiler emits). Accepting
// <= 1 ULP here keeps the goldens green without masking real kernel bugs:
// any indexing or accumulation-order mistake is off by far more than the
// last couple of bits. The bound is 2 ULPs because a kernel term has two
// contractible operations (the product and the accumulate), each worth at
// most one skipped rounding.
constexpr int kMaxUlps = 2;

::testing::AssertionResult WithinUlps(double got, double want) {
  double w = want;
  for (int step = 0; step <= kMaxUlps; ++step) {
    if (got == w) return ::testing::AssertionSuccess();
    w = std::nextafter(w, got);
  }
  return ::testing::AssertionFailure()
         << got << " vs " << want << " differs by more than " << kMaxUlps
         << " ULPs";
}

void ExpectSpanUlpEqPayload(int n, const std::vector<double>& span,
                            const CovarPayload& want) {
  const CovarPayload got = CovarPayloadFromSpan(n, span.data());
  EXPECT_TRUE(WithinUlps(got.count, want.count));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(WithinUlps(got.sum[i], want.sum[i])) << "i=" << i;
  }
  for (size_t i = 0; i < want.quad.size(); ++i) {
    EXPECT_TRUE(WithinUlps(got.quad[i], want.quad[i])) << "q=" << i;
  }
}

void ExpectSpanNearPayload(int n, const std::vector<double>& span,
                           const CovarPayload& want, double tol = 1e-12) {
  const CovarPayload got = CovarPayloadFromSpan(n, span.data());
  EXPECT_NEAR(got.count, want.count, tol * (1 + std::abs(want.count)));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(got.sum[i], want.sum[i], tol * (1 + std::abs(want.sum[i])));
  }
  for (size_t i = 0; i < want.quad.size(); ++i) {
    EXPECT_NEAR(got.quad[i], want.quad[i], tol * (1 + std::abs(want.quad[i])))
        << "q=" << i;
  }
}

std::vector<std::pair<int, double>> RandomFeats(int n, size_t count,
                                                Rng* rng) {
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  // Distinct feature indices in random order (the lift contract).
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->Below(i + 1)]);
  }
  std::vector<std::pair<int, double>> feats;
  for (size_t k = 0; k < count; ++k) {
    feats.push_back({order[k], rng->Uniform(-2.0, 2.0)});
  }
  return feats;
}

// --- Golden equivalence: span kernels vs reference CovarPayload ops -------

class CovarArenaKernelGolden : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CovarArenaKernelGolden, AddMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(kN, &rng);
  const CovarPayload b = RandomPayload(kN, &rng);
  std::vector<double> sa = SpanOf(a);
  const std::vector<double> sb = SpanOf(b);
  CovarSpanAdd(CovarStride(kN), sa.data(), sb.data());
  CovarAddInPlace(&a, b);
  ExpectSpanEqPayload(kN, sa, a);
}

TEST_P(CovarArenaKernelGolden, MulMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  const CovarPayload a = RandomPayload(kN, &rng);
  const CovarPayload b = RandomPayload(kN, &rng);
  std::vector<double> dst(CovarStride(kN), 7.0);  // overwritten
  CovarSpanMul(kN, SpanOf(a).data(), SpanOf(b).data(), dst.data());
  CovarPayload want;
  CovarMulInto(kN, a, b, &want);
  ExpectSpanEqPayload(kN, dst, want);
}

TEST_P(CovarArenaKernelGolden, MulAddMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  const CovarPayload a = RandomPayload(kN, &rng);
  const CovarPayload b = RandomPayload(kN, &rng);
  CovarPayload acc = RandomPayload(kN, &rng);
  std::vector<double> dst = SpanOf(acc);
  CovarSpanMulAdd(kN, SpanOf(a).data(), SpanOf(b).data(), dst.data());
  CovarPayload prod;
  CovarMulInto(kN, a, b, &prod);
  CovarAddInPlace(&acc, prod);
  // MulAdd's a*b+acc is FMA-contractible; see ExpectSpanUlpEqPayload.
  ExpectSpanUlpEqPayload(kN, dst, acc);
}

TEST_P(CovarArenaKernelGolden, LiftMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  const auto feats = RandomFeats(kN, 3, &rng);
  std::vector<double> dst(CovarStride(kN), 5.0);  // lift must zero the rest
  CovarSpanLift(kN, feats.data(), feats.size(), dst.data());
  CovarPayload want;
  CovarLiftInto(kN, feats, &want);
  ExpectSpanEqPayload(kN, dst, want);
}

TEST_P(CovarArenaKernelGolden, FusedLiftMulAddMatchesReference) {
  Rng rng(GetParam());
  for (size_t num_feats : {size_t{0}, size_t{1}, size_t{3}}) {
    const auto feats = RandomFeats(kN, num_feats, &rng);
    const CovarPayload prod = RandomPayload(kN, &rng);
    CovarPayload acc = RandomPayload(kN, &rng);
    std::vector<double> dst = SpanOf(acc);
    CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), /*sign=*/1.0,
                        SpanOf(prod).data(), dst.data());
    // Reference: materialize the lift, multiply, add.
    CovarPayload lift;
    CovarLiftInto(kN, feats, &lift);
    CovarPayload mul;
    CovarMulInto(kN, lift, prod, &mul);
    CovarAddInPlace(&acc, mul);
    ExpectSpanNearPayload(kN, dst, acc);
  }
}

TEST_P(CovarArenaKernelGolden, FusedLiftMulMatchesReference) {
  Rng rng(GetParam());
  const auto feats = RandomFeats(kN, 2, &rng);
  const CovarPayload prod = RandomPayload(kN, &rng);
  std::vector<double> dst(CovarStride(kN), -3.0);  // overwritten
  CovarSpanLiftMul(kN, feats.data(), feats.size(), /*sign=*/1.0,
                   SpanOf(prod).data(), dst.data());
  CovarPayload lift;
  CovarLiftInto(kN, feats, &lift);
  CovarPayload want;
  CovarMulInto(kN, lift, prod, &want);
  ExpectSpanNearPayload(kN, dst, want);
}

TEST_P(CovarArenaKernelGolden, LeafLiftAddMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  const auto feats = RandomFeats(kN, 3, &rng);
  CovarPayload acc = RandomPayload(kN, &rng);
  std::vector<double> dst = SpanOf(acc);
  // prod == nullptr means "multiply by ring One", i.e. add the bare lift.
  CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), /*sign=*/1.0, nullptr,
                      dst.data());
  CovarPayload lift;
  CovarLiftInto(kN, feats, &lift);
  CovarAddInPlace(&acc, lift);
  // The bare-lift add contracts xi*xj+acc; see ExpectSpanUlpEqPayload.
  ExpectSpanUlpEqPayload(kN, dst, acc);
}

TEST_P(CovarArenaKernelGolden, SignedLiftMatchesScaledReference) {
  Rng rng(GetParam());
  const auto feats = RandomFeats(kN, 2, &rng);
  const CovarPayload prod = RandomPayload(kN, &rng);
  for (double sign : {-1.0, 1.0}) {
    CovarPayload acc = CovarPayload::Zero(kN);
    std::vector<double> dst = SpanOf(acc);
    CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), sign,
                        SpanOf(prod).data(), dst.data());
    // Reference scales the lift after materializing it (the old
    // CovarIvmOps::Lift behavior).
    CovarPayload lift;
    CovarLiftInto(kN, feats, &lift);
    lift.count *= sign;
    for (double& s : lift.sum) s *= sign;
    for (double& q : lift.quad) q *= sign;
    CovarPayload mul;
    CovarMulInto(kN, lift, prod, &mul);
    CovarAddInPlace(&acc, mul);
    ExpectSpanNearPayload(kN, dst, acc);
  }
}

// Deletions must cancel insertions exactly: +lift then -lift restores the
// accumulator bit for bit (the ring's additive inverse).
TEST_P(CovarArenaKernelGolden, OppositeSignsCancelExactly) {
  Rng rng(GetParam());
  const auto feats = RandomFeats(kN, 3, &rng);
  const CovarPayload prod = RandomPayload(kN, &rng);
  const CovarPayload acc = RandomPayload(kN, &rng);
  std::vector<double> dst = SpanOf(acc);
  CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), 1.0,
                      SpanOf(prod).data(), dst.data());
  CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), -1.0,
                      SpanOf(prod).data(), dst.data());
  ExpectSpanNearPayload(kN, dst, acc);
}

// --- Scoped kernels vs dense counterparts ---------------------------------

// A payload that is zero outside `scope_feats` (the invariant factorized
// views establish by construction).
CovarPayload ScopedPayload(int n, const std::vector<int>& scope_feats,
                           Rng* rng) {
  CovarPayload p = CovarPayload::Zero(n);
  p.count = rng->Uniform(0.1, 3.0);
  for (int f : scope_feats) p.sum[f] = rng->Uniform(-2.0, 2.0);
  for (size_t a = 0; a < scope_feats.size(); ++a) {
    for (size_t b = a; b < scope_feats.size(); ++b) {
      int i = scope_feats[a];
      int j = scope_feats[b];
      if (i > j) std::swap(i, j);
      p.quad[UpperTriIndex(n, i, j)] = rng->Uniform(-2.0, 2.0);
    }
  }
  return p;
}

TEST_P(CovarArenaKernelGolden, ScopedMulMatchesDenseBitForBit) {
  Rng rng(GetParam());
  const std::vector<int> sa = {1, 4};
  const std::vector<int> sb = {0, 4, 6};
  const CovarPayload a = ScopedPayload(kN, sa, &rng);
  const CovarPayload b = ScopedPayload(kN, sb, &rng);
  const CovarScope scope = CovarScope::Union(kN, sa, sb);

  std::vector<double> dense(CovarStride(kN), 0.0);
  CovarSpanMul(kN, SpanOf(a).data(), SpanOf(b).data(), dense.data());
  std::vector<double> scoped(CovarStride(kN), 0.0);
  CovarSpanMulScoped(scope, SpanOf(a).data(), SpanOf(b).data(),
                     scoped.data());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(scoped[i], dense[i]) << "entry " << i;
  }

  // Accumulating variant.
  const CovarPayload acc = RandomPayload(kN, &rng);
  std::vector<double> dense_acc = SpanOf(acc);
  std::vector<double> scoped_acc = SpanOf(acc);
  CovarSpanMulAdd(kN, SpanOf(a).data(), SpanOf(b).data(), dense_acc.data());
  CovarSpanMulAddScoped(scope, SpanOf(a).data(), SpanOf(b).data(),
                        scoped_acc.data());
  for (size_t i = 0; i < dense_acc.size(); ++i) {
    EXPECT_EQ(scoped_acc[i], dense_acc[i]) << "entry " << i;
  }
}

TEST_P(CovarArenaKernelGolden, ScopedLiftKernelsMatchDenseBitForBit) {
  Rng rng(GetParam());
  const std::vector<int> sp = {0, 2, 5};
  const CovarPayload prod = ScopedPayload(kN, sp, &rng);
  const std::vector<std::pair<int, double>> feats = {
      {3, rng.Uniform(-2.0, 2.0)}, {5, rng.Uniform(-2.0, 2.0)}};
  const CovarScope scope = CovarScope::Union(kN, sp, {3, 5});

  std::vector<double> dense(CovarStride(kN), 0.0);
  CovarSpanLiftMul(kN, feats.data(), feats.size(), 1.0, SpanOf(prod).data(),
                   dense.data());
  std::vector<double> scoped(CovarStride(kN), 0.0);
  CovarSpanLiftMulScoped(kN, scope, feats.data(), feats.size(), 1.0,
                         SpanOf(prod).data(), scoped.data());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(scoped[i], dense[i]) << "entry " << i;
  }

  const CovarPayload acc = RandomPayload(kN, &rng);
  std::vector<double> dense_acc = SpanOf(acc);
  std::vector<double> scoped_acc = SpanOf(acc);
  CovarSpanLiftMulAdd(kN, feats.data(), feats.size(), 1.0,
                      SpanOf(prod).data(), dense_acc.data());
  CovarSpanLiftMulAddScoped(kN, CovarScope::Over(kN, sp), feats.data(),
                            feats.size(), 1.0, SpanOf(prod).data(),
                            scoped_acc.data());
  for (size_t i = 0; i < dense_acc.size(); ++i) {
    EXPECT_EQ(scoped_acc[i], dense_acc[i]) << "entry " << i;
  }
}

// --- Ring axioms on spans -------------------------------------------------

TEST_P(CovarArenaKernelGolden, RingAxiomsHoldOnSpans) {
  Rng rng(GetParam());
  const CovarPayload pa = RandomPayload(kN, &rng);
  const CovarPayload pb = RandomPayload(kN, &rng);
  const CovarPayload pc = RandomPayload(kN, &rng);
  const std::vector<double> a = SpanOf(pa);
  const std::vector<double> b = SpanOf(pb);
  const std::vector<double> c = SpanOf(pc);
  const size_t stride = CovarStride(kN);
  const double tol = 1e-9;

  // Addition commutes (bitwise: per-element sums).
  std::vector<double> ab = a;
  CovarSpanAdd(stride, ab.data(), b.data());
  std::vector<double> ba = b;
  CovarSpanAdd(stride, ba.data(), a.data());
  for (size_t i = 0; i < stride; ++i) EXPECT_EQ(ab[i], ba[i]);

  // Multiplication commutes (to rounding: term order differs).
  std::vector<double> mab(stride), mba(stride);
  CovarSpanMul(kN, a.data(), b.data(), mab.data());
  CovarSpanMul(kN, b.data(), a.data(), mba.data());
  for (size_t i = 0; i < stride; ++i) EXPECT_NEAR(mab[i], mba[i], tol);

  // Associativity (to rounding).
  std::vector<double> t1(stride), lhs(stride), t2(stride), rhs(stride);
  CovarSpanMul(kN, a.data(), b.data(), t1.data());
  CovarSpanMul(kN, t1.data(), c.data(), lhs.data());
  CovarSpanMul(kN, b.data(), c.data(), t2.data());
  CovarSpanMul(kN, a.data(), t2.data(), rhs.data());
  for (size_t i = 0; i < stride; ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], tol * (1 + std::abs(lhs[i])));
  }

  // Distributivity: a * (b + c) == a*b + a*c (to rounding).
  std::vector<double> bc = b;
  CovarSpanAdd(stride, bc.data(), c.data());
  std::vector<double> l(stride);
  CovarSpanMul(kN, a.data(), bc.data(), l.data());
  std::vector<double> r1(stride), r2(stride);
  CovarSpanMul(kN, a.data(), b.data(), r1.data());
  CovarSpanMul(kN, a.data(), c.data(), r2.data());
  CovarSpanAdd(stride, r1.data(), r2.data());
  for (size_t i = 0; i < stride; ++i) {
    EXPECT_NEAR(l[i], r1[i], tol * (1 + std::abs(l[i])));
  }

  // One is multiplicative identity, Zero is additive identity (bitwise).
  const std::vector<double> one = SpanOf(CovarPayload::One(kN));
  std::vector<double> a_one(stride);
  CovarSpanMul(kN, a.data(), one.data(), a_one.data());
  for (size_t i = 0; i < stride; ++i) EXPECT_EQ(a_one[i], a[i]);
  const std::vector<double> zero = SpanOf(CovarPayload::Zero(kN));
  std::vector<double> a_zero = a;
  CovarSpanAdd(stride, a_zero.data(), zero.data());
  for (size_t i = 0; i < stride; ++i) EXPECT_EQ(a_zero[i], a[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CovarArenaKernelGolden,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

// --- Arena and view mechanics ---------------------------------------------

TEST(CovarArenaTest, StrideAndOffsets) {
  for (int n : {0, 1, 4, 12, 128}) {
    EXPECT_EQ(CovarStride(n), 1 + static_cast<size_t>(n) + UpperTriSize(n));
    EXPECT_EQ(CovarQuadOffset(n), 1 + static_cast<size_t>(n));
  }
  CovarArena arena(4);
  EXPECT_EQ(arena.stride(), CovarStride(4));
  EXPECT_EQ(arena.num_slots(), 0u);
}

TEST(CovarArenaTest, SlotsAreZeroInitializedAndStable) {
  CovarArena arena(3);
  const uint32_t s0 = arena.Allocate();
  EXPECT_EQ(s0, 0u);
  for (size_t i = 0; i < arena.stride(); ++i) {
    EXPECT_EQ(arena.Slot(s0)[i], 0.0);
  }
  arena.Slot(s0)[0] = 42.0;
  // Growth may move the buffer but never loses content.
  for (int k = 0; k < 100; ++k) arena.Allocate();
  EXPECT_EQ(arena.Slot(s0)[0], 42.0);
  EXPECT_EQ(arena.num_slots(), 101u);
}

TEST(CovarArenaViewTest, GetOrAddFindAndForEach) {
  CovarArenaView view(2);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.Find(7), nullptr);

  double* a = view.GetOrAdd(7);
  a[0] = 1.0;
  EXPECT_EQ(view.size(), 1u);
  // Same key, same slot.
  EXPECT_EQ(view.GetOrAdd(7)[0], 1.0);
  EXPECT_EQ(view.size(), 1u);

  view.GetOrAdd(9)[0] = 2.0;
  view.GetOrAdd(11)[0] = 3.0;
  ASSERT_NE(view.Find(9), nullptr);
  EXPECT_EQ(view.Find(9)[0], 2.0);
  EXPECT_EQ(view.Find(12345), nullptr);

  double total = 0;
  size_t entries = 0;
  view.ForEach([&](uint64_t key, const double* span) {
    EXPECT_TRUE(key == 7 || key == 9 || key == 11);
    total += span[0];
    ++entries;
  });
  EXPECT_EQ(entries, 3u);
  EXPECT_EQ(total, 6.0);
}

TEST(CovarArenaViewTest, PayloadSpanRoundTrip) {
  Rng rng(99);
  const CovarPayload p = RandomPayload(kN, &rng);
  std::vector<double> span(CovarStride(kN));
  CovarPayloadToSpan(p, span.data());
  const CovarPayload back = CovarPayloadFromSpan(kN, span.data());
  EXPECT_EQ(back.count, p.count);
  EXPECT_EQ(back.sum, p.sum);
  EXPECT_EQ(back.quad, p.quad);
}

TEST(CovarArenaViewTest, UnitKeyAndZeroWidthPayloads) {
  // n == 0 payloads are a bare count (stride 1) — the root view of a
  // feature-less query still works.
  CovarArenaView view(0);
  EXPECT_EQ(view.stride(), 1u);
  double* span = view.GetOrAdd(kUnitKey);
  span[0] += 1.0;
  EXPECT_EQ(view.Find(kUnitKey)[0], 1.0);
}

// --- Engine equivalence under the thread sweep (TSan-covered) -------------

class CovarArenaEngineSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(CovarArenaEngineSweep, ParallelMatchesSerialBitForBitAndReference) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/300);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  const int n = fm.num_features();

  ExecPolicy serial_policy;
  serial_policy.threads = 1;
  serial_policy.partition_grain = 16;
  CovarEngineOptions serial;
  serial.mode = ExecMode::kSharedParallel;
  serial.policy = serial_policy;
  const CovarMatrix want = ComputeCovarMatrix(tree, fm, {}, serial);

  for (int threads : {2, 4}) {
    ExecPolicy policy;
    policy.threads = threads;
    policy.partition_grain = 16;
    CovarEngineOptions options;
    options.mode = ExecMode::kSharedParallel;
    options.policy = policy;
    const CovarMatrix got = ComputeCovarMatrix(tree, fm, {}, options);
    for (int i = 0; i <= n; ++i) {
      for (int j = i; j <= n; ++j) {
        EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
            << "threads=" << threads << " (" << i << "," << j << ")";
      }
    }
  }

  // And the arena engine agrees with the materialized reference.
  DataMatrix matrix = MaterializeJoin(tree, fm);
  const CovarPayload ref = ReferenceCovar(matrix);
  ASSERT_NEAR(want.count(), ref.count, 1e-6 * (1 + std::abs(ref.count)));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double r = ref.quad[UpperTriIndex(n, i, j)];
      EXPECT_NEAR(want.Moment(i, j), r, 1e-6 * (1 + std::abs(r)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, CovarArenaEngineSweep,
    ::testing::Combine(
        ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
        ::testing::Values(Topology::kStar, Topology::kChain,
                          Topology::kBushy)));

// --- Hot-loop allocation guard --------------------------------------------

size_t AllocationsDuringBatch(const RootedTree& tree, const FeatureMap& fm) {
  CovarEngineOptions options;
  options.mode = ExecMode::kShared;
  const size_t before = g_alloc_count.load(std::memory_order_relaxed);
  CovarMatrix m = ComputeCovarMatrix(tree, fm, {}, options);
  const size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(m.count(), 0.0);
  return after - before;
}

TEST(CovarArenaAllocGuard, BatchAllocatesPerKeyStructureNotPerRow) {
  // Same key domain, 8x the rows: the scan loop itself must not allocate,
  // so the allocation count may only move by a little map/arena growth
  // noise (the generated dimension tables differ slightly between the two
  // databases).
  RandomDb small = MakeRandomDb(3, Topology::kStar, /*fact_rows=*/500,
                                /*domain=*/16);
  RandomDb large = MakeRandomDb(3, Topology::kStar, /*fact_rows=*/4000,
                                /*domain=*/16);
  FeatureMap fm_small(small.query, small.features);
  FeatureMap fm_large(large.query, large.features);
  RootedTree tree_small = small.query.Root(0);
  RootedTree tree_large = large.query.Root(0);

  const size_t allocs_small = AllocationsDuringBatch(tree_small, fm_small);
  const size_t allocs_large = AllocationsDuringBatch(tree_large, fm_large);
  EXPECT_LE(allocs_large, allocs_small + 64)
      << "8x rows must not mean more allocations: the hot loop allocates";
}

TEST(CovarArenaAllocGuard, BatchAllocatesFarLessThanOnePerPayload) {
  // A wide key domain materializes ~1300 payload keys across the views.
  // The AoS representation paid >= 2 vector allocations per key (plus
  // rehash copies); the arena pays O(log) buffer growths per view.
  RandomDb db = MakeRandomDb(7, Topology::kStar, /*fact_rows=*/4000,
                             /*domain=*/512);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  size_t keys = 0;  // distinct join keys = payloads materialized
  for (int d = 1; d <= 3; ++d) {
    const Relation& rel = *db.query.relation(d);
    std::vector<bool> seen(512, false);
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      seen[static_cast<size_t>(rel.AsDouble(r, 0))] = true;
    }
    for (bool s : seen) keys += s ? 1 : 0;
  }
  ASSERT_GT(keys, 1000u);

  const size_t allocs = AllocationsDuringBatch(tree, fm);
  EXPECT_LT(allocs, keys / 2)
      << "payload storage must be arena-backed, not one heap block per key";
}

}  // namespace
}  // namespace relborg
