// Tests for the up-down join-multiplicity pass.
#include <cmath>

#include "baseline/materializer.h"
#include "core/multiplicity.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

TEST(MultiplicityTest, DinnerByHand) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  auto mult = ComputeRowMultiplicities(tree);

  int orders = query.IndexOf("Orders");
  int dish = query.IndexOf("Dish");
  int items = query.IndexOf("Items");
  // Each order matches 3 dish items, each with exactly one price: 3.
  for (size_t r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(mult[orders][r], 3.0);
  // Dish rows: burger rows pair with 2 burger orders, hotdog with 2.
  for (size_t r = 0; r < 6; ++r) EXPECT_DOUBLE_EQ(mult[dish][r], 2.0);
  // Items: patty appears in burger only (2 orders) = 2; onion in burger and
  // hotdog (4 orders...) burger onion: 2 orders, hotdog onion: 2 orders = 4.
  EXPECT_DOUBLE_EQ(mult[items][0], 2.0);  // patty
  EXPECT_DOUBLE_EQ(mult[items][1], 4.0);  // onion
  EXPECT_DOUBLE_EQ(mult[items][2], 4.0);  // bun
  EXPECT_DOUBLE_EQ(mult[items][3], 2.0);  // sausage
}

class MultiplicityProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(MultiplicityProperty, RowWeightsMatchEnumeratedJoin) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  for (int root = 0; root < db.query.num_relations(); ++root) {
    RootedTree tree = db.query.Root(root);
    auto mult = ComputeRowMultiplicities(tree);
    // Reference: count row participation by emitting key columns of every
    // relation via the enumerator — instead we recount by materializing
    // with a per-relation row id. Use the join count identity:
    // sum of multiplicities over any one relation == |join|.
    double join_count = CountJoin(tree);
    for (int v = 0; v < tree.num_nodes(); ++v) {
      double total = 0;
      for (double w : mult[v]) total += w;
      EXPECT_NEAR(total, join_count, 1e-6 * (1 + join_count))
          << "node " << v << " root " << root;
    }
  }
}

TEST_P(MultiplicityProperty, FiltersZeroOutRows) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FilterSet filters(db.query.num_relations());
  // Keep only k1 in {0,1} at the fact.
  filters[0].push_back(Predicate::InSet(0, {0, 1}));
  RootedTree tree = db.query.Root(0);
  auto mult = ComputeRowMultiplicities(tree, filters);
  const Relation& fact = *db.query.relation(0);
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    if (fact.Cat(r, 0) > 1) {
      EXPECT_DOUBLE_EQ(mult[0][r], 0.0);
    }
  }
  double total = 0;
  for (double w : mult[0]) total += w;
  EXPECT_NEAR(total, CountJoin(tree, filters), 1e-7 * (1 + total));
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, MultiplicityProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

}  // namespace
}  // namespace relborg
