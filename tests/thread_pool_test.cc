// Dedicated suite for util/thread_pool.h: Submit/Wait/ParallelFor under
// contention, nested ParallelFor (regression: the seed implementation
// waited on the pool-wide in-flight count from inside a pool task and
// deadlocked), and zero-task edge cases.
#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace relborg {
namespace {

TEST(ThreadPoolSuite, ZeroTaskWaitReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Nothing submitted: must not block.
  pool.ParallelFor(0, [](size_t) { FAIL() << "fn called for n == 0"; });
  pool.Wait();
}

TEST(ThreadPoolSuite, SubmitManyTasksUnderContention) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolSuite, WaitFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      done.fetch_add(1);
    });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&pool, &done] {
      pool.Wait();
      EXPECT_EQ(done.load(), 64);
    });
  }
  for (std::thread& t : waiters) t.join();
}

TEST(ThreadPoolSuite, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolSuite, ParallelForSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&sum](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2);
}

TEST(ThreadPoolSuite, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &counts, c] {
      pool.ParallelFor(kN, [&counts, c](size_t) { counts[c].fetch_add(1); });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(counts[c].load(), static_cast<int>(kN)) << "caller " << c;
  }
}

// Regression: a ParallelFor issued from inside a pool task used to wait for
// the pool-wide in-flight count to reach zero — which includes the caller's
// own task — and deadlocked. The run must terminate and cover all indices.
TEST(ThreadPoolSuite, NestedParallelForFromPoolTask) {
  ThreadPool pool(3);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    pool.ParallelFor(kInner,
                     [&, o](size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolSuite, NestedParallelForFromSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    pool.ParallelFor(256, [&count](size_t) { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPoolSuite, DefaultPoolIsUsableAndStable) {
  ThreadPool& pool = ThreadPool::Default();
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(&pool, &ThreadPool::Default());
  std::atomic<int> count{0};
  pool.ParallelFor(32, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace relborg
