// Tests for the shared decision-node batch engine against per-candidate
// computation over the materialized join.
#include <cmath>

#include "baseline/materializer.h"
#include "core/decision_node_engine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

class DecisionNodeProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(DecisionNodeProperty, StatsMatchMaterialized) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  // Response: the last feature.
  int y = fm.num_features() - 1;
  int response_node = fm.NodeOf(y);
  int response_attr = fm.AttrOf(y);

  // Candidates: thresholds on every feature (one per feature), plus a
  // categorical candidate on the fact key.
  std::vector<SplitCandidate> candidates;
  for (int f = 0; f + 1 < fm.num_features(); ++f) {
    candidates.push_back(
        {fm.NodeOf(f), Predicate::Ge(fm.AttrOf(f), 0.25)});
    candidates.push_back(
        {fm.NodeOf(f), Predicate::Lt(fm.AttrOf(f), -0.5)});
  }
  candidates.push_back({0, Predicate::InSet(0, {0, 2, 4})});

  // Path filter restricting the first feature's relation.
  FilterSet path(db.query.num_relations());
  path[fm.NodeOf(0)].push_back(Predicate::Lt(fm.AttrOf(0), 1.5));

  std::vector<SplitStats> got = ComputeSplitStats(
      db.query, response_node, response_attr, path, candidates);

  // Reference: materialized join with all features plus the fact key.
  RootedTree tree = db.query.Root(0);
  std::vector<ColumnRef> cols;
  for (const auto& fr : db.features) cols.push_back({fr.relation, fr.attr});
  cols.push_back({db.query.relation(0)->name(), "k1"});
  DataMatrix m = MaterializeJoin(tree, cols, path);
  const int key_col = m.num_cols() - 1;

  for (size_t i = 0; i < candidates.size(); ++i) {
    double count = 0, sum = 0, sum_sq = 0;
    for (size_t r = 0; r < m.num_rows(); ++r) {
      bool pass;
      if (i + 1 == candidates.size()) {
        int32_t k = static_cast<int32_t>(m.At(r, key_col));
        pass = (k == 0 || k == 2 || k == 4);
      } else {
        int f = static_cast<int>(i / 2);
        double v = m.At(r, f);
        pass = (i % 2 == 0) ? v >= 0.25 : v < -0.5;
      }
      if (!pass) continue;
      double yv = m.At(r, y);
      count += 1;
      sum += yv;
      sum_sq += yv * yv;
    }
    EXPECT_NEAR(got[i].count, count, 1e-7) << i;
    EXPECT_NEAR(got[i].sum, sum, 1e-6 * (1 + std::abs(sum))) << i;
    EXPECT_NEAR(got[i].sum_sq, sum_sq, 1e-6 * (1 + std::abs(sum_sq))) << i;
  }
}

TEST_P(DecisionNodeProperty, ClassCountsMatchMaterialized) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  // Response: the fact's categorical key k1 (acts as a class label).
  int response_node = 0;
  int response_attr = 0;
  FeatureMap fm(db.query, db.features);

  std::vector<SplitCandidate> candidates;
  candidates.push_back({fm.NodeOf(0), Predicate::Ge(fm.AttrOf(0), 0.0)});
  candidates.push_back({fm.NodeOf(1), Predicate::Lt(fm.AttrOf(1), 0.3)});

  std::vector<FlatHashMap<double>> got = ComputeSplitClassCounts(
      db.query, response_node, response_attr, {}, candidates);

  RootedTree tree = db.query.Root(0);
  std::vector<ColumnRef> cols{{db.query.relation(0)->name(), "k1"}};
  for (const auto& fr : db.features) cols.push_back({fr.relation, fr.attr});
  DataMatrix m = MaterializeJoin(tree, cols);
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::map<int32_t, double> want;
    for (size_t r = 0; r < m.num_rows(); ++r) {
      double v = m.At(r, static_cast<int>(i) + 1);
      bool pass = i == 0 ? v >= 0.0 : m.At(r, 2) < 0.3;
      if (pass) want[static_cast<int32_t>(m.At(r, 0))] += 1;
    }
    double got_total = 0;
    got[i].ForEach([&](uint64_t, double c) { got_total += c; });
    double want_total = 0;
    for (const auto& [cls, c] : want) {
      const double* g = got[i].Find(PackKey1(cls));
      ASSERT_NE(g, nullptr) << "class " << cls;
      EXPECT_NEAR(*g, c, 1e-9);
      want_total += c;
    }
    EXPECT_NEAR(got_total, want_total, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, DecisionNodeProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

TEST(DecisionNodeBatchSizeTest, ThreePerCandidate) {
  EXPECT_EQ(DecisionNodeBatchSize(10), 30u);
}

}  // namespace
}  // namespace relborg
