// Unit tests for src/relational: schema, relation, catalog, CSV I/O.
#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "relational/catalog.h"
#include "relational/csv_io.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace relborg {
namespace {

Schema TestSchema() {
  return Schema({{"key", AttrType::kCategorical},
                 {"value", AttrType::kDouble},
                 {"tag", AttrType::kCategorical}});
}

TEST(SchemaTest, IndexOf) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_attrs(), 3);
  EXPECT_EQ(s.IndexOf("key"), 0);
  EXPECT_EQ(s.IndexOf("value"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_TRUE(s.HasAttribute("tag"));
  EXPECT_FALSE(s.HasAttribute("nope"));
}

TEST(RelationTest, AppendAndRead) {
  Relation r("R", TestSchema());
  r.AppendRow({3, 1.5, 7});
  r.AppendRow({4, -2.25, 9});
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.Cat(0, 0), 3);
  EXPECT_DOUBLE_EQ(r.Double(0, 1), 1.5);
  EXPECT_EQ(r.Cat(1, 2), 9);
  EXPECT_DOUBLE_EQ(r.AsDouble(1, 0), 4.0);
}

TEST(RelationTest, DomainSize) {
  Relation r("R", TestSchema());
  EXPECT_EQ(r.DomainSize(0), 0);
  r.AppendRow({3, 0.0, 0});
  r.AppendRow({7, 0.0, 2});
  EXPECT_EQ(r.DomainSize(0), 8);
  EXPECT_EQ(r.DomainSize(2), 3);
}

TEST(RelationTest, ByteSizeGrows) {
  Relation r("R", TestSchema());
  size_t empty = r.ByteSize();
  r.AppendRow({1, 2.0, 3});
  EXPECT_GT(r.ByteSize(), empty);
  // 1 double + 2 int32 per row.
  EXPECT_EQ(r.ByteSize(), sizeof(double) + 2 * sizeof(int32_t));
}

TEST(CatalogTest, AddAndGet) {
  Catalog c;
  Relation* r = c.AddRelation("R", TestSchema());
  r->AppendRow({1, 2.0, 3});
  EXPECT_TRUE(c.Has("R"));
  EXPECT_FALSE(c.Has("S"));
  EXPECT_EQ(c.Get("R")->num_rows(), 1u);
  EXPECT_EQ(c.num_relations(), 1);
  EXPECT_EQ(c.TotalRows(), 1u);
  EXPECT_GT(c.TotalBytes(), 0u);
}

TEST(CsvIoTest, RoundTrip) {
  Relation r("R", TestSchema());
  r.AppendRow({3, 1.5, 7});
  r.AppendRow({4, -2.25, 9});
  r.AppendRow({5, 1e6, 11});
  std::string path = ::testing::TempDir() + "/relborg_csv_test.csv";
  ASSERT_TRUE(WriteCsv(r, path));
  EXPECT_GT(FileBytes(path), 0u);

  Relation back("R2", TestSchema());
  ASSERT_TRUE(ReadCsv(path, "R2", TestSchema(), &back));
  ASSERT_EQ(back.num_rows(), 3u);
  for (size_t row = 0; row < 3; ++row) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(back.AsDouble(row, a), r.AsDouble(row, a));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileFails) {
  Relation out("X", TestSchema());
  EXPECT_FALSE(ReadCsv("/nonexistent/path.csv", "X", TestSchema(), &out));
  EXPECT_EQ(FileBytes("/nonexistent/path.csv"), 0u);
}

}  // namespace
}  // namespace relborg
