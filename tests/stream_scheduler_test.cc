// Tests for the async stream scheduler (src/stream/): the pipelined,
// epoch-coalesced path must be BIT-IDENTICAL to its serial replay for any
// ExecPolicy thread count across all three IVM strategies, for insert-only
// and mixed insert/delete streams; with single-batch epochs both must be
// bit-identical to the classic append-then-ApplyBatch loop. Staged
// ingestion (StageRows/CommitChunk) must reproduce AppendRows state
// exactly.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

// Exact (bitwise) agreement: the scheduler's determinism contract.
void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j)) << "(" << i << "," << j
                                                     << ")";
    }
  }
}

void ExpectCovarNear(const CovarMatrix& got, const CovarMatrix& want,
                     double tol = 1e-6) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_NEAR(got.Moment(i, j), want.Moment(i, j),
                  tol * (1 + std::abs(want.Moment(i, j))))
          << "(" << i << "," << j << ")";
    }
  }
}

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  // Small grain so the 17-row test batches still split into multiple
  // partitions and the partitioned delta path is actually exercised.
  policy.partition_grain = 16;
  return policy;
}

enum class Mode { kClassic, kReplay, kAsync };

// Runs `stream` through one strategy with the given mode and returns the
// maintained covariance batch.
template <typename Strategy>
CovarMatrix RunStream(const RandomDb& db,
                      const std::vector<UpdateBatch>& stream, Mode mode,
                      int threads, const StreamOptions& options,
                      StreamStats* stats = nullptr) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  StreamStats local;
  switch (mode) {
    case Mode::kClassic:
      for (const UpdateBatch& batch : stream) {
        size_t first = shadow.AppendRows(batch.node, batch.rows, batch.sign);
        strategy.ApplyBatch(batch.node, first, batch.rows.size());
      }
      break;
    case Mode::kReplay:
      local = ReplayStream(&shadow, &strategy, stream, options);
      break;
    case Mode::kAsync:
      local = ApplyStream(&shadow, &strategy, stream, options);
      break;
  }
  if (stats != nullptr) *stats = local;
  return strategy.Current();
}

StreamOptions CoalescingOptions() {
  StreamOptions options;
  // Several batches per epoch at the tests' 17-row batches, so epochs
  // really coalesce multiple nodes and multiple same-node batches.
  options.epoch_rows = 96;
  options.epoch_batches = 5;
  return options;
}

class StreamSchedulerProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {
 protected:
  std::vector<UpdateBatch> MakeInsertStream(const RandomDb& db,
                                            uint64_t seed) const {
    UpdateStreamOptions opts;
    opts.batch_size = 17;
    opts.seed = seed;
    return BuildInsertStream(db.query, opts);
  }

  std::vector<UpdateBatch> MakeMixed(const RandomDb& db,
                                     uint64_t seed) const {
    MixedStreamOptions opts;
    opts.insert.batch_size = 17;
    opts.insert.seed = seed;
    opts.delete_probability = 0.35;
    return BuildMixedStream(db.query, opts);
  }

  template <typename Strategy>
  void CheckBitIdentical(const RandomDb& db,
                         const std::vector<UpdateBatch>& stream) {
    const StreamOptions options = CoalescingOptions();
    CovarMatrix reference =
        RunStream<Strategy>(db, stream, Mode::kReplay, /*threads=*/1, options);
    for (int threads : {1, 2, 4}) {
      CovarMatrix async = RunStream<Strategy>(db, stream, Mode::kAsync,
                                              threads, options);
      ExpectCovarExact(async, reference);
    }
  }
};

TEST_P(StreamSchedulerProperty, AsyncBitIdenticalToSerialReplay) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/50);
  std::vector<UpdateBatch> stream = MakeInsertStream(db, seed);
  ASSERT_FALSE(stream.empty());
  CheckBitIdentical<CovarFivm>(db, stream);
  CheckBitIdentical<HigherOrderIvm>(db, stream);
  CheckBitIdentical<FirstOrderIvm>(db, stream);
}

TEST_P(StreamSchedulerProperty, AsyncBitIdenticalOnMixedStreams) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 17);
  bool has_delete = false;
  for (const UpdateBatch& b : stream) has_delete |= b.sign < 0;
  ASSERT_TRUE(has_delete) << "mixed stream contains no delete batches";
  CheckBitIdentical<CovarFivm>(db, stream);
  CheckBitIdentical<HigherOrderIvm>(db, stream);
  CheckBitIdentical<FirstOrderIvm>(db, stream);
}

// With single-batch epochs the scheduler performs exactly the classic
// append-then-ApplyBatch loop, so even the coalescing-free async path is
// bit-identical to it.
TEST_P(StreamSchedulerProperty, SingleBatchEpochsMatchClassicReplay) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 5);
  StreamOptions options;
  options.epoch_batches = 1;
  CovarMatrix classic = RunStream<CovarFivm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options);
  for (int threads : {1, 2, 4}) {
    ExpectCovarExact(
        RunStream<CovarFivm>(db, stream, Mode::kAsync, threads, options),
        classic);
  }
  ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                             /*threads=*/2, options),
                   RunStream<HigherOrderIvm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options));
  ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                   RunStream<FirstOrderIvm>(db, stream, Mode::kClassic,
                                            /*threads=*/1, options));
}

// Epoch coalescing re-associates floating-point sums, so against the
// classic per-batch loop the coalesced result agrees to rounding (the
// ring semantics are exact), and the three strategies agree with each
// other.
TEST_P(StreamSchedulerProperty, CoalescedAgreesWithClassicToRounding) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 29);
  const StreamOptions options = CoalescingOptions();
  CovarMatrix classic = RunStream<CovarFivm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options);
  CovarMatrix fivm =
      RunStream<CovarFivm>(db, stream, Mode::kAsync, /*threads=*/2, options);
  ExpectCovarNear(fivm, classic);
  ExpectCovarNear(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                  fivm);
  ExpectCovarNear(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                           /*threads=*/2, options),
                  fivm);
}

// Tiny queue bounds force the backpressure paths (Push blocking on the
// ingress queue, the assembler blocking on the epoch queue) without
// changing any result.
TEST_P(StreamSchedulerProperty, BackpressureDoesNotChangeResults) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeInsertStream(db, seed + 3);
  StreamOptions options = CoalescingOptions();
  CovarMatrix reference =
      RunStream<CovarFivm>(db, stream, Mode::kReplay, /*threads=*/1, options);
  options.max_queued_rows = 1;  // every Push waits for the assembler
  options.max_queued_epochs = 1;
  StreamStats stats;
  CovarMatrix squeezed = RunStream<CovarFivm>(db, stream, Mode::kAsync,
                                              /*threads=*/2, options, &stats);
  ExpectCovarExact(squeezed, reference);
  EXPECT_EQ(stats.rows, StreamRowCount(stream));
}

// Structural stats are a pure function of (stream, options): the async
// pipeline and the serial replay must report identical epoch structure.
TEST_P(StreamSchedulerProperty, StructuralStatsAreDeterministic) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 11);
  const StreamOptions options = CoalescingOptions();
  StreamStats replay;
  RunStream<CovarFivm>(db, stream, Mode::kReplay, /*threads=*/1, options,
                       &replay);
  for (int run = 0; run < 2; ++run) {
    StreamStats async;
    RunStream<CovarFivm>(db, stream, Mode::kAsync, /*threads=*/2, options,
                         &async);
    EXPECT_EQ(async.batches, replay.batches);
    EXPECT_EQ(async.rows, replay.rows);
    EXPECT_EQ(async.epochs, replay.epochs);
    EXPECT_EQ(async.ranges, replay.ranges);
  }
  EXPECT_EQ(replay.rows, StreamRowCount(stream));
  EXPECT_GT(replay.epochs, 1u);
  // Coalescing must actually merge same-node batches somewhere.
  EXPECT_LT(replay.ranges, replay.batches);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, StreamSchedulerProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

// Staged two-phase ingestion must reproduce AppendRows state exactly:
// relation contents, per-row signs, and the child-key indexes.
TEST(StagedIngestTest, StageCommitMatchesAppendRows) {
  RandomDb db = MakeRandomDb(7, Topology::kBushy, /*fact_rows=*/60);
  UpdateStreamOptions opts;
  opts.batch_size = 13;
  opts.seed = 7;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);

  ShadowDb direct(db.query, 0);
  ShadowDb staged(db.query, 0);
  std::vector<size_t> next_row(db.query.num_relations(), 0);
  double sign = 1.0;
  for (const UpdateBatch& batch : stream) {
    direct.AppendRows(batch.node, batch.rows, sign);
    IngestChunk chunk = staged.StageRows(
        batch.node, batch.rows,
        std::vector<double>(batch.rows.size(), sign), next_row[batch.node]);
    next_row[batch.node] += batch.rows.size();
    staged.CommitChunk(std::move(chunk));
    sign = -sign;  // exercise both multiplicities
  }

  for (int v = 0; v < db.query.num_relations(); ++v) {
    const Relation& a = direct.relation(v);
    const Relation& b = staged.relation(v);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t row = 0; row < a.num_rows(); ++row) {
      EXPECT_EQ(direct.sign(v, row), staged.sign(v, row));
      for (int attr = 0; attr < a.num_attrs(); ++attr) {
        EXPECT_EQ(a.AsDouble(row, attr), b.AsDouble(row, attr));
      }
    }
    for (int c : direct.tree().node(v).children) {
      for (size_t row = 0; row < a.num_rows(); ++row) {
        uint64_t key = direct.tree().RowKeyToChild(v, c, row);
        const std::vector<uint32_t>* ra = direct.RowsByChildKey(v, c, key);
        const std::vector<uint32_t>* rb = staged.RowsByChildKey(v, c, key);
        ASSERT_NE(ra, nullptr);
        ASSERT_NE(rb, nullptr);
        EXPECT_EQ(*ra, *rb) << "node " << v << " child " << c;
      }
    }
  }
}

// --- Two-phase staging / watermark-flip properties -----------------------

// VisiblePrefix is the reader-side watermark filter: ascending row-id
// vectors expose exactly their prefix below the limit.
TEST(StagedIngestTest, VisiblePrefixBoundaries) {
  const std::vector<uint32_t> empty;
  EXPECT_EQ(VisiblePrefix(empty, 0), 0u);
  EXPECT_EQ(VisiblePrefix(empty, 100), 0u);
  const std::vector<uint32_t> rows = {2, 5, 7, 11};
  EXPECT_EQ(VisiblePrefix(rows, 0), 0u);
  EXPECT_EQ(VisiblePrefix(rows, 2), 0u);   // limit is exclusive
  EXPECT_EQ(VisiblePrefix(rows, 3), 1u);
  EXPECT_EQ(VisiblePrefix(rows, 7), 2u);
  EXPECT_EQ(VisiblePrefix(rows, 8), 3u);
  EXPECT_EQ(VisiblePrefix(rows, 11), 3u);
  EXPECT_EQ(VisiblePrefix(rows, 12), 4u);
  EXPECT_EQ(VisiblePrefix(rows, SIZE_MAX), 4u);
  const std::vector<uint32_t> max_id = {UINT32_MAX};
  EXPECT_EQ(VisiblePrefix(max_id, UINT32_MAX), 0u);
  EXPECT_EQ(VisiblePrefix(max_id, SIZE_MAX), 1u);
}

// Phase 1 (StageRows) must be invisible: no watermark movement, no index
// entries, no relation rows. Phase 2 (CommitChunk) flips the watermark to
// cover exactly the chunk, and every index entry below the pre-commit
// watermark is untouched.
TEST(StagedIngestTest, StagedRowsInvisibleUntilWatermarkFlip) {
  RandomDb db = MakeRandomDb(11, Topology::kStar, /*fact_rows=*/30);
  UpdateStreamOptions opts;
  opts.batch_size = 10;
  opts.seed = 11;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  ASSERT_GE(stream.size(), 2u);

  ShadowDb shadow(db.query, 0);
  // Seed the db with the first batch through the classic path.
  const UpdateBatch& seeded = stream[0];
  shadow.AppendRows(seeded.node, seeded.rows);
  EXPECT_EQ(shadow.committed_rows(seeded.node), seeded.rows.size());

  // Find a later batch for the same node and stage it.
  const UpdateBatch* next = nullptr;
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].node == seeded.node) {
      next = &stream[i];
      break;
    }
  }
  ASSERT_NE(next, nullptr);
  const int v = next->node;
  const size_t first = shadow.relation(v).num_rows();
  IngestChunk chunk = shadow.StageRows(
      v, next->rows, std::vector<double>(next->rows.size(), 1.0), first);

  // Staged but not committed: nothing moved.
  EXPECT_EQ(shadow.committed_rows(v), first);
  EXPECT_EQ(shadow.relation(v).num_rows(), first);
  const RootedNode& node = shadow.tree().node(v);
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    chunk.child_groups[ci].ForEach(
        [&](uint64_t key, const std::vector<uint32_t>& ids) {
          for (uint32_t id : ids) EXPECT_GE(id, first);
          const std::vector<uint32_t>* indexed =
              shadow.RowsByChildKey(v, node.children[ci], key);
          if (indexed != nullptr) {
            // Whatever the index already held for this key is fully below
            // the watermark — the staged ids are not in it yet.
            EXPECT_EQ(VisiblePrefix(*indexed, first), indexed->size());
          }
        });
  }

  // The flip: exactly the chunk becomes visible, in one step.
  IngestChunk committed = std::move(chunk);
  const size_t rows = committed.num_rows();
  shadow.CommitChunk(std::move(committed));
  EXPECT_EQ(shadow.committed_rows(v), first + rows);
  EXPECT_EQ(shadow.relation(v).num_rows(), first + rows);
  // Filtering at the OLD watermark still hides the new rows in every
  // per-key index vector — the invariant overlapped maintenance relies on.
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    for (size_t row = 0; row < shadow.relation(v).num_rows(); ++row) {
      uint64_t key = shadow.tree().RowKeyToChild(v, node.children[ci], row);
      const std::vector<uint32_t>* indexed =
          shadow.RowsByChildKey(v, node.children[ci], key);
      ASSERT_NE(indexed, nullptr);
      const size_t visible = VisiblePrefix(*indexed, first);
      for (size_t k = 0; k < indexed->size(); ++k) {
        EXPECT_EQ((*indexed)[k] < first, k < visible);
      }
    }
  }
}

// Absolute row ids are assigned at staging time, so ANY interleaving of
// StageRows calls (across nodes, ahead of commits) that commits in stream
// order lands in the exact same state as the serial AppendRows loop, with
// the watermark advancing chunk by chunk.
TEST(StagedIngestTest, RowIdsStableAcrossStagingInterleavings) {
  RandomDb db = MakeRandomDb(21, Topology::kBushy, /*fact_rows=*/40);
  UpdateStreamOptions opts;
  opts.batch_size = 9;
  opts.seed = 21;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);

  ShadowDb direct(db.query, 0);
  for (const UpdateBatch& batch : stream) {
    direct.AppendRows(batch.node, batch.rows);
  }

  // Three staging interleavings: stream order, reverse order, and
  // node-major (all of one node's chunks, then the next node's). Each
  // respects per-node offsets; commits always run in stream order.
  for (int variant = 0; variant < 3; ++variant) {
    SCOPED_TRACE(::testing::Message() << "staging interleaving " << variant);
    ShadowDb staged(db.query, 0);
    std::vector<size_t> next_row(db.query.num_relations(), 0);
    std::vector<size_t> stage_order(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) stage_order[i] = i;
    if (variant == 1) {
      std::reverse(stage_order.begin(), stage_order.end());
    } else if (variant == 2) {
      std::stable_sort(stage_order.begin(), stage_order.end(),
                       [&](size_t a, size_t b) {
                         return stream[a].node < stream[b].node;
                       });
    }
    // Per-node offsets follow the STREAM order regardless of when a chunk
    // is staged, exactly like the assembler's next_row_ bookkeeping.
    std::vector<size_t> offset(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      offset[i] = next_row[stream[i].node];
      next_row[stream[i].node] += stream[i].rows.size();
    }
    std::vector<IngestChunk> chunks(stream.size());
    for (size_t pos : stage_order) {
      chunks[pos] = staged.StageRows(
          stream[pos].node, stream[pos].rows,
          std::vector<double>(stream[pos].rows.size(), 1.0), offset[pos]);
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      const int v = chunks[i].node;
      const size_t expect_watermark = chunks[i].first + chunks[i].num_rows();
      staged.CommitChunk(std::move(chunks[i]));
      EXPECT_EQ(staged.committed_rows(v), expect_watermark);
    }
    for (int v = 0; v < db.query.num_relations(); ++v) {
      const Relation& a = direct.relation(v);
      const Relation& b = staged.relation(v);
      ASSERT_EQ(a.num_rows(), b.num_rows());
      EXPECT_EQ(staged.committed_rows(v), b.num_rows());
      for (size_t row = 0; row < a.num_rows(); ++row) {
        for (int attr = 0; attr < a.num_attrs(); ++attr) {
          EXPECT_EQ(a.AsDouble(row, attr), b.AsDouble(row, attr));
        }
      }
      for (int c : direct.tree().node(v).children) {
        for (size_t row = 0; row < a.num_rows(); ++row) {
          uint64_t key = direct.tree().RowKeyToChild(v, c, row);
          const std::vector<uint32_t>* ra = direct.RowsByChildKey(v, c, key);
          const std::vector<uint32_t>* rb = staged.RowsByChildKey(v, c, key);
          ASSERT_NE(ra, nullptr);
          ASSERT_NE(rb, nullptr);
          EXPECT_EQ(*ra, *rb) << "node " << v << " child " << c;
        }
      }
    }
  }
}

// --- Zero-range epochs and full retractions ------------------------------

// Zero-row batches flow through the pipeline: they count toward the batch
// bound (matching ReplayStream), and an epoch sealed from empty batches
// alone carries zero ranges and applies as a structural no-op.
TEST(StreamSchedulerTest, ZeroRangeEpochsSealAndApply) {
  RandomDb db = MakeRandomDb(5, Topology::kStar, /*fact_rows=*/30);
  UpdateStreamOptions opts;
  opts.batch_size = 11;
  opts.seed = 5;
  std::vector<UpdateBatch> inserts = BuildInsertStream(db.query, opts);
  // Interleave runs of empty batches long enough that, at epoch_batches=2,
  // some epochs consist of empty batches only.
  std::vector<UpdateBatch> stream;
  for (size_t i = 0; i < inserts.size(); ++i) {
    stream.push_back(inserts[i]);
    if (i % 3 == 0) {
      stream.push_back(UpdateBatch{});  // node -1, no rows
      stream.push_back(UpdateBatch{});
      stream.push_back(UpdateBatch{});
    }
  }
  StreamOptions options;
  options.epoch_batches = 2;
  options.epoch_rows = SIZE_MAX;  // seal on the batch bound only
  StreamStats replay_stats;
  CovarMatrix reference = RunStream<CovarFivm>(db, stream, Mode::kReplay,
                                               /*threads=*/1, options,
                                               &replay_stats);
  // Every epoch seals on the batch bound, so the epoch count is exact —
  // and the runs of empty batches guarantee all-empty (zero-range) epochs
  // like (empty, empty) right after the first insert. Prove one seals at
  // the assembler level, then that the full pipeline applies the stream.
  {
    ShadowDb probe(db.query, 0);
    EpochAssembler assembler(&probe, options);
    StreamEpoch epoch;
    EXPECT_FALSE(assembler.Add(UpdateBatch{}, &epoch));
    ASSERT_TRUE(assembler.Add(UpdateBatch{}, &epoch));
    EXPECT_TRUE(epoch.ranges.empty());
    EXPECT_EQ(epoch.batches, 2u);
    EXPECT_EQ(epoch.rows, 0u);
    // Nothing pending afterwards: the zero-range epoch reset the window.
    EXPECT_FALSE(assembler.Flush(&epoch));
  }
  EXPECT_EQ(replay_stats.epochs, (stream.size() + 1) / 2);
  EXPECT_EQ(replay_stats.batches, stream.size());
  for (int threads : {1, 2}) {
    StreamStats async_stats;
    CovarMatrix async = RunStream<CovarFivm>(db, stream, Mode::kAsync,
                                             threads, options, &async_stats);
    ExpectCovarExact(async, reference);
    EXPECT_EQ(async_stats.batches, replay_stats.batches);
    EXPECT_EQ(async_stats.epochs, replay_stats.epochs);
    EXPECT_EQ(async_stats.ranges, replay_stats.ranges);
  }
}

// A delete batch that retracts an entire prior insert batch, coalesced
// into the SAME epoch: the range carries both signs, the per-key deltas
// cancel in the ring, and the maintained aggregate returns to empty.
TEST(StreamSchedulerTest, FullBatchRetractionCancelsWithinAnEpoch) {
  RandomDb db = MakeRandomDb(9, Topology::kChain, /*fact_rows=*/24);
  UpdateStreamOptions opts;
  opts.batch_size = 8;
  opts.seed = 9;
  std::vector<UpdateBatch> inserts = BuildInsertStream(db.query, opts);
  // Mirror the whole stream: every insert followed by its exact
  // retraction. One giant epoch coalesces each insert/delete pair into a
  // single per-node range whose net delta is zero.
  std::vector<UpdateBatch> stream;
  for (const UpdateBatch& batch : inserts) {
    stream.push_back(batch);
    UpdateBatch del = batch;
    del.sign = -1.0;
    stream.push_back(std::move(del));
  }
  StreamOptions options;
  options.epoch_rows = SIZE_MAX;
  options.epoch_batches = SIZE_MAX;
  StreamStats replay_stats;
  CovarMatrix reference = RunStream<CovarFivm>(db, stream, Mode::kReplay,
                                               /*threads=*/1, options,
                                               &replay_stats);
  EXPECT_EQ(reference.count(), 0.0);
  EXPECT_EQ(replay_stats.epochs, 1u);
  for (int threads : {1, 2, 4}) {
    StreamStats async_stats;
    CovarMatrix async = RunStream<CovarFivm>(db, stream, Mode::kAsync,
                                             threads, options, &async_stats);
    ExpectCovarExact(async, reference);
    EXPECT_EQ(async_stats.epochs, replay_stats.epochs);
  }
  ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                             /*threads=*/2, options),
                   reference);
  ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                   reference);
}

// BuildMixedStream's full-retraction knob: some delete batch retracts a
// whole relation (more rows than batch_size in one batch), the stream
// stays replayable with multiplicities in {0, +1}, and the scheduler
// agrees with the serial replay bit for bit.
TEST(StreamSchedulerTest, MixedStreamFullRetractionsMatchReplay) {
  RandomDb db = MakeRandomDb(13, Topology::kStar, /*fact_rows=*/40);
  MixedStreamOptions opts;
  opts.insert.batch_size = 6;
  opts.insert.seed = 13;
  opts.delete_probability = 0.5;
  opts.full_retraction_probability = 0.6;
  std::vector<UpdateBatch> stream = BuildMixedStream(db.query, opts);
  bool oversized_delete = false;
  for (const UpdateBatch& batch : stream) {
    if (batch.sign < 0 && batch.rows.size() > opts.insert.batch_size) {
      oversized_delete = true;
    }
  }
  EXPECT_TRUE(oversized_delete)
      << "no full retraction exceeded the insert batch size";
  const StreamOptions options = CoalescingOptions();
  CovarMatrix reference = RunStream<CovarFivm>(db, stream, Mode::kReplay,
                                               /*threads=*/1, options);
  for (int threads : {1, 2, 4}) {
    ExpectCovarExact(
        RunStream<CovarFivm>(db, stream, Mode::kAsync, threads, options),
        reference);
  }
  ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                             /*threads=*/2, options),
                   RunStream<HigherOrderIvm>(db, stream, Mode::kReplay,
                                             /*threads=*/1, options));
  ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                   RunStream<FirstOrderIvm>(db, stream, Mode::kReplay,
                                            /*threads=*/1, options));
}

// A scheduler finished without any Push must leave everything untouched.
TEST(StreamSchedulerTest, EmptyStream) {
  RandomDb db = MakeRandomDb(3, Topology::kStar, /*fact_rows=*/20);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm, MakePolicy(2));
  StreamStats stats = ApplyStream(&shadow, &fivm, {});
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.epochs, 0u);
  EXPECT_EQ(fivm.Current().count(), 0.0);
}

}  // namespace
}  // namespace relborg
