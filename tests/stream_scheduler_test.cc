// Tests for the async stream scheduler (src/stream/): the pipelined,
// epoch-coalesced path must be BIT-IDENTICAL to its serial replay for any
// ExecPolicy thread count across all three IVM strategies, for insert-only
// and mixed insert/delete streams; with single-batch epochs both must be
// bit-identical to the classic append-then-ApplyBatch loop. Staged
// ingestion (StageRows/CommitChunk) must reproduce AppendRows state
// exactly.
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

// Exact (bitwise) agreement: the scheduler's determinism contract.
void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j)) << "(" << i << "," << j
                                                     << ")";
    }
  }
}

void ExpectCovarNear(const CovarMatrix& got, const CovarMatrix& want,
                     double tol = 1e-6) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_NEAR(got.Moment(i, j), want.Moment(i, j),
                  tol * (1 + std::abs(want.Moment(i, j))))
          << "(" << i << "," << j << ")";
    }
  }
}

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  // Small grain so the 17-row test batches still split into multiple
  // partitions and the partitioned delta path is actually exercised.
  policy.partition_grain = 16;
  return policy;
}

enum class Mode { kClassic, kReplay, kAsync };

// Runs `stream` through one strategy with the given mode and returns the
// maintained covariance batch.
template <typename Strategy>
CovarMatrix RunStream(const RandomDb& db,
                      const std::vector<UpdateBatch>& stream, Mode mode,
                      int threads, const StreamOptions& options,
                      StreamStats* stats = nullptr) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  StreamStats local;
  switch (mode) {
    case Mode::kClassic:
      for (const UpdateBatch& batch : stream) {
        size_t first = shadow.AppendRows(batch.node, batch.rows, batch.sign);
        strategy.ApplyBatch(batch.node, first, batch.rows.size());
      }
      break;
    case Mode::kReplay:
      local = ReplayStream(&shadow, &strategy, stream, options);
      break;
    case Mode::kAsync:
      local = ApplyStream(&shadow, &strategy, stream, options);
      break;
  }
  if (stats != nullptr) *stats = local;
  return strategy.Current();
}

StreamOptions CoalescingOptions() {
  StreamOptions options;
  // Several batches per epoch at the tests' 17-row batches, so epochs
  // really coalesce multiple nodes and multiple same-node batches.
  options.epoch_rows = 96;
  options.epoch_batches = 5;
  return options;
}

class StreamSchedulerProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {
 protected:
  std::vector<UpdateBatch> MakeInsertStream(const RandomDb& db,
                                            uint64_t seed) const {
    UpdateStreamOptions opts;
    opts.batch_size = 17;
    opts.seed = seed;
    return BuildInsertStream(db.query, opts);
  }

  std::vector<UpdateBatch> MakeMixed(const RandomDb& db,
                                     uint64_t seed) const {
    MixedStreamOptions opts;
    opts.insert.batch_size = 17;
    opts.insert.seed = seed;
    opts.delete_probability = 0.35;
    return BuildMixedStream(db.query, opts);
  }

  template <typename Strategy>
  void CheckBitIdentical(const RandomDb& db,
                         const std::vector<UpdateBatch>& stream) {
    const StreamOptions options = CoalescingOptions();
    CovarMatrix reference =
        RunStream<Strategy>(db, stream, Mode::kReplay, /*threads=*/1, options);
    for (int threads : {1, 2, 4}) {
      CovarMatrix async = RunStream<Strategy>(db, stream, Mode::kAsync,
                                              threads, options);
      ExpectCovarExact(async, reference);
    }
  }
};

TEST_P(StreamSchedulerProperty, AsyncBitIdenticalToSerialReplay) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/50);
  std::vector<UpdateBatch> stream = MakeInsertStream(db, seed);
  ASSERT_FALSE(stream.empty());
  CheckBitIdentical<CovarFivm>(db, stream);
  CheckBitIdentical<HigherOrderIvm>(db, stream);
  CheckBitIdentical<FirstOrderIvm>(db, stream);
}

TEST_P(StreamSchedulerProperty, AsyncBitIdenticalOnMixedStreams) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 17);
  bool has_delete = false;
  for (const UpdateBatch& b : stream) has_delete |= b.sign < 0;
  ASSERT_TRUE(has_delete) << "mixed stream contains no delete batches";
  CheckBitIdentical<CovarFivm>(db, stream);
  CheckBitIdentical<HigherOrderIvm>(db, stream);
  CheckBitIdentical<FirstOrderIvm>(db, stream);
}

// With single-batch epochs the scheduler performs exactly the classic
// append-then-ApplyBatch loop, so even the coalescing-free async path is
// bit-identical to it.
TEST_P(StreamSchedulerProperty, SingleBatchEpochsMatchClassicReplay) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 5);
  StreamOptions options;
  options.epoch_batches = 1;
  CovarMatrix classic = RunStream<CovarFivm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options);
  for (int threads : {1, 2, 4}) {
    ExpectCovarExact(
        RunStream<CovarFivm>(db, stream, Mode::kAsync, threads, options),
        classic);
  }
  ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                             /*threads=*/2, options),
                   RunStream<HigherOrderIvm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options));
  ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                   RunStream<FirstOrderIvm>(db, stream, Mode::kClassic,
                                            /*threads=*/1, options));
}

// Epoch coalescing re-associates floating-point sums, so against the
// classic per-batch loop the coalesced result agrees to rounding (the
// ring semantics are exact), and the three strategies agree with each
// other.
TEST_P(StreamSchedulerProperty, CoalescedAgreesWithClassicToRounding) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 29);
  const StreamOptions options = CoalescingOptions();
  CovarMatrix classic = RunStream<CovarFivm>(db, stream, Mode::kClassic,
                                             /*threads=*/1, options);
  CovarMatrix fivm =
      RunStream<CovarFivm>(db, stream, Mode::kAsync, /*threads=*/2, options);
  ExpectCovarNear(fivm, classic);
  ExpectCovarNear(RunStream<HigherOrderIvm>(db, stream, Mode::kAsync,
                                            /*threads=*/2, options),
                  fivm);
  ExpectCovarNear(RunStream<FirstOrderIvm>(db, stream, Mode::kAsync,
                                           /*threads=*/2, options),
                  fivm);
}

// Tiny queue bounds force the backpressure paths (Push blocking on the
// ingress queue, the assembler blocking on the epoch queue) without
// changing any result.
TEST_P(StreamSchedulerProperty, BackpressureDoesNotChangeResults) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeInsertStream(db, seed + 3);
  StreamOptions options = CoalescingOptions();
  CovarMatrix reference =
      RunStream<CovarFivm>(db, stream, Mode::kReplay, /*threads=*/1, options);
  options.max_queued_rows = 1;  // every Push waits for the assembler
  options.max_queued_epochs = 1;
  StreamStats stats;
  CovarMatrix squeezed = RunStream<CovarFivm>(db, stream, Mode::kAsync,
                                              /*threads=*/2, options, &stats);
  ExpectCovarExact(squeezed, reference);
  EXPECT_EQ(stats.rows, StreamRowCount(stream));
}

// Structural stats are a pure function of (stream, options): the async
// pipeline and the serial replay must report identical epoch structure.
TEST_P(StreamSchedulerProperty, StructuralStatsAreDeterministic) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 11);
  const StreamOptions options = CoalescingOptions();
  StreamStats replay;
  RunStream<CovarFivm>(db, stream, Mode::kReplay, /*threads=*/1, options,
                       &replay);
  for (int run = 0; run < 2; ++run) {
    StreamStats async;
    RunStream<CovarFivm>(db, stream, Mode::kAsync, /*threads=*/2, options,
                         &async);
    EXPECT_EQ(async.batches, replay.batches);
    EXPECT_EQ(async.rows, replay.rows);
    EXPECT_EQ(async.epochs, replay.epochs);
    EXPECT_EQ(async.ranges, replay.ranges);
  }
  EXPECT_EQ(replay.rows, StreamRowCount(stream));
  EXPECT_GT(replay.epochs, 1u);
  // Coalescing must actually merge same-node batches somewhere.
  EXPECT_LT(replay.ranges, replay.batches);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, StreamSchedulerProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

// Staged two-phase ingestion must reproduce AppendRows state exactly:
// relation contents, per-row signs, and the child-key indexes.
TEST(StagedIngestTest, StageCommitMatchesAppendRows) {
  RandomDb db = MakeRandomDb(7, Topology::kBushy, /*fact_rows=*/60);
  UpdateStreamOptions opts;
  opts.batch_size = 13;
  opts.seed = 7;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);

  ShadowDb direct(db.query, 0);
  ShadowDb staged(db.query, 0);
  std::vector<size_t> next_row(db.query.num_relations(), 0);
  double sign = 1.0;
  for (const UpdateBatch& batch : stream) {
    direct.AppendRows(batch.node, batch.rows, sign);
    IngestChunk chunk = staged.StageRows(
        batch.node, batch.rows,
        std::vector<double>(batch.rows.size(), sign), next_row[batch.node]);
    next_row[batch.node] += batch.rows.size();
    staged.CommitChunk(std::move(chunk));
    sign = -sign;  // exercise both multiplicities
  }

  for (int v = 0; v < db.query.num_relations(); ++v) {
    const Relation& a = direct.relation(v);
    const Relation& b = staged.relation(v);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t row = 0; row < a.num_rows(); ++row) {
      EXPECT_EQ(direct.sign(v, row), staged.sign(v, row));
      for (int attr = 0; attr < a.num_attrs(); ++attr) {
        EXPECT_EQ(a.AsDouble(row, attr), b.AsDouble(row, attr));
      }
    }
    for (int c : direct.tree().node(v).children) {
      for (size_t row = 0; row < a.num_rows(); ++row) {
        uint64_t key = direct.tree().RowKeyToChild(v, c, row);
        const std::vector<uint32_t>* ra = direct.RowsByChildKey(v, c, key);
        const std::vector<uint32_t>* rb = staged.RowsByChildKey(v, c, key);
        ASSERT_NE(ra, nullptr);
        ASSERT_NE(rb, nullptr);
        EXPECT_EQ(*ra, *rb) << "node " << v << " child " << c;
      }
    }
  }
}

// A scheduler finished without any Push must leave everything untouched.
TEST(StreamSchedulerTest, EmptyStream) {
  RandomDb db = MakeRandomDb(3, Topology::kStar, /*fact_rows=*/20);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm, MakePolicy(2));
  StreamStats stats = ApplyStream(&shadow, &fivm, {});
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.epochs, 0u);
  EXPECT_EQ(fivm.Current().count(), 0.0);
}

}  // namespace
}  // namespace relborg
