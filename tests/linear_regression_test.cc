// Tests for ridge regression over the covariance matrix: gradient descent
// vs Cholesky closed form vs normal equations over the materialized join.
#include <cmath>

#include "baseline/materializer.h"
#include "baseline/sgd_learner.h"
#include "core/covar_engine.h"
#include "gtest/gtest.h"
#include "ml/linear_regression.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

class LinRegProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinRegProperty, GdMatchesClosedForm) {
  RandomDb db = MakeRandomDb(GetParam(), Topology::kStar, /*fact_rows=*/200);
  FeatureMap fm(db.query, db.features);
  CovarMatrix m = ComputeCovarMatrix(db.query.Root(0), fm);
  int response = fm.num_features() - 1;

  RidgeOptions opts;
  opts.lambda = 1e-2;
  TrainInfo info;
  LinearModel gd = TrainRidgeGd(m, response, opts, {}, &info);
  LinearModel cf = SolveRidgeClosedForm(m, response, opts.lambda);
  ASSERT_EQ(gd.weights.size(), cf.weights.size());
  for (size_t a = 0; a < gd.weights.size(); ++a) {
    EXPECT_NEAR(gd.weights[a], cf.weights[a],
                1e-5 * (1 + std::abs(cf.weights[a])));
  }
  EXPECT_NEAR(gd.bias, cf.bias, 1e-5 * (1 + std::abs(cf.bias)));
  EXPECT_LT(info.final_gradient_norm, 1e-8);
}

TEST_P(LinRegProperty, MseFromCovarMatchesDirectMse) {
  RandomDb db = MakeRandomDb(GetParam() + 100, Topology::kChain,
                             /*fact_rows=*/150);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  CovarMatrix m = ComputeCovarMatrix(tree, fm);
  if (m.count() < 1) GTEST_SKIP() << "empty join";
  int response = fm.num_features() - 1;
  LinearModel model = SolveRidgeClosedForm(m, response, 1e-2);

  DataMatrix data = MaterializeJoin(tree, fm);
  double direct = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    double err = model.Predict(data.Row(r)) - data.At(r, response);
    direct += err * err;
  }
  direct /= static_cast<double>(data.num_rows());
  EXPECT_NEAR(MseFromCovar(m, response, model), direct,
              1e-6 * (1 + direct));
  EXPECT_NEAR(Rmse(model, data, response), std::sqrt(direct),
              1e-6 * (1 + std::sqrt(direct)));
}

TEST_P(LinRegProperty, FactorizedMatchesMaterializedTraining) {
  // Train the closed form on the factorized covariance and on a covariance
  // computed from the materialized matrix: identical models.
  RandomDb db = MakeRandomDb(GetParam() + 7, Topology::kBushy,
                             /*fact_rows=*/120);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  CovarMatrix fact = ComputeCovarMatrix(tree, fm);
  if (fact.count() < 1) GTEST_SKIP();
  DataMatrix data = MaterializeJoin(tree, fm);
  CovarMatrix mat(fm.num_features(), testing::ReferenceCovar(data));
  int response = fm.num_features() - 1;
  LinearModel a = SolveRidgeClosedForm(fact, response, 1e-3);
  LinearModel b = SolveRidgeClosedForm(mat, response, 1e-3);
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_NEAR(a.weights[i], b.weights[i],
                1e-6 * (1 + std::abs(b.weights[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinRegProperty,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

TEST(LinRegTest, RecoversPlantedModel) {
  // y = 2 x0 - 3 x1 + 1 + noise over a single-relation "join".
  Catalog catalog;
  Schema s({{"k", AttrType::kCategorical},
            {"x0", AttrType::kDouble},
            {"x1", AttrType::kDouble},
            {"y", AttrType::kDouble}});
  Relation* r = catalog.AddRelation("R", s);
  Schema dim_schema({{"k", AttrType::kCategorical}});
  Relation* dim = catalog.AddRelation("D", dim_schema);
  dim->AppendRow({0});
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    double x0 = rng.Gaussian();
    double x1 = rng.Gaussian(0, 2);
    double y = 2 * x0 - 3 * x1 + 1 + rng.Gaussian(0, 0.01);
    r->AppendRow({0, x0, x1, y});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(dim);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "x0"}, {"R", "x1"}, {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  LinearModel model = SolveRidgeClosedForm(m, 2, 1e-6);
  EXPECT_NEAR(model.weights[0], 2.0, 0.01);
  EXPECT_NEAR(model.weights[1], -3.0, 0.01);
  EXPECT_NEAR(model.bias, 1.0, 0.01);
}

TEST(LinRegTest, SubsetTraining) {
  RandomDb db = MakeRandomDb(77, Topology::kStar, 150);
  FeatureMap fm(db.query, db.features);
  CovarMatrix m = ComputeCovarMatrix(db.query.Root(0), fm);
  int response = fm.num_features() - 1;
  LinearModel model = SolveRidgeClosedForm(m, response, 1e-2, {0, 2});
  EXPECT_EQ(model.feature_indices, (std::vector<int>{0, 2}));
  EXPECT_EQ(model.weights.size(), 2u);
  // Full model fits at least as well (more capacity, same penalty space).
  LinearModel full = SolveRidgeClosedForm(m, response, 1e-2);
  EXPECT_LE(MseFromCovar(m, response, full),
            MseFromCovar(m, response, model) + 1e-9);
}

TEST(LinRegTest, WarmStartConvergesFaster) {
  RandomDb db = MakeRandomDb(11, Topology::kStar, 300);
  FeatureMap fm(db.query, db.features);
  CovarMatrix m = ComputeCovarMatrix(db.query.Root(0), fm);
  int response = fm.num_features() - 1;
  RidgeOptions opts;
  TrainInfo cold_info;
  LinearModel cold = TrainRidgeGd(m, response, opts, {}, &cold_info);
  RidgeOptions warm_opts = opts;
  warm_opts.warm_start = cold.weights;
  TrainInfo warm_info;
  TrainRidgeGd(m, response, warm_opts, {}, &warm_info);
  EXPECT_LT(warm_info.iterations, std::max(cold_info.iterations, 2));
}

TEST(SgdLearnerTest, BeatsMeanPredictorOnPlantedData) {
  DataMatrix data({"x0", "x1", "y"});
  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    double x0 = rng.Gaussian();
    double x1 = rng.Uniform(-1, 1);
    double row[3] = {x0, x1, 1.5 * x0 - 2.0 * x1 + rng.Gaussian(0, 0.1)};
    data.AppendRow(row);
  }
  SgdOptions opts;
  opts.batch_size = 1000;
  opts.epochs = 5;
  LinearModel model = TrainSgd(data, 2, opts);
  double mse = 0, var = 0, mean = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) mean += data.At(r, 2);
  mean /= static_cast<double>(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    double err = model.Predict(data.Row(r)) - data.At(r, 2);
    mse += err * err;
    var += (data.At(r, 2) - mean) * (data.At(r, 2) - mean);
  }
  EXPECT_LT(mse, 0.2 * var);  // much better than predicting the mean
}

TEST(SgdLearnerTest, OneEpochIsLessAccurateThanClosedForm) {
  // The Fig. 3 accuracy note: one SGD epoch is close but slightly worse
  // than the covariance-matrix solution.
  RandomDb db = MakeRandomDb(21, Topology::kStar, 400);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  CovarMatrix m = ComputeCovarMatrix(tree, fm);
  if (m.count() < 10) GTEST_SKIP();
  DataMatrix data = MaterializeJoin(tree, fm);
  int response = fm.num_features() - 1;
  LinearModel exact = SolveRidgeClosedForm(m, response, 1e-3);
  SgdOptions opts;
  opts.batch_size = 200;
  opts.epochs = 1;
  LinearModel sgd = TrainSgd(data, response, opts);
  EXPECT_LE(Rmse(exact, data, response),
            Rmse(sgd, data, response) + 1e-9);
}

}  // namespace
}  // namespace relborg
