// Tests for the observability subsystem (src/obs/): metrics registry
// semantics and exposition format, the lock-free trace ring + Chrome
// export, structured events — and the two pipeline-level contracts:
//
//  1. StreamStats is a PROJECTION of the metrics registry: after a real
//     scheduler run, every flat-struct field equals the value re-derived
//     from the registry instruments, field by field.
//  2. Tracing never perturbs what the pipeline computes: the maintained
//     covariance is bit-identical with tracing on and off.
//
// The concurrency cases (counter hammering, recording racing TailString)
// run in the TSan CI leg (ci.sh matches the Obs* suites in its regex).
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot_server.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

// --- Metrics -------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("relborg_test_total", "help");
  EXPECT_EQ(c->Value(), 0.0);
  c->Inc();
  c->Inc(2.5);
  EXPECT_EQ(c->Value(), 3.5);

  obs::Gauge* g = reg.GetGauge("relborg_test_gauge", "help");
  g->Set(7.0);
  EXPECT_EQ(g->Value(), 7.0);
  g->SetMax(3.0);  // no-op: smaller
  EXPECT_EQ(g->Value(), 7.0);
  g->SetMax(11.0);
  EXPECT_EQ(g->Value(), 11.0);
}

TEST(ObsMetrics, RegistryIsIdempotentPerName) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("relborg_test_total", "help");
  obs::Counter* b = reg.GetCounter("relborg_test_total", "help");
  EXPECT_EQ(a, b);  // same instrument, stable pointer
  EXPECT_EQ(reg.FindCounter("relborg_test_total"), a);
  EXPECT_EQ(reg.FindCounter("relborg_absent_total"), nullptr);
  EXPECT_EQ(reg.FindHistogram("relborg_test_total"), nullptr);  // wrong kind
}

TEST(ObsMetrics, HistogramBucketsFollowLeSemantics) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("relborg_test_seconds", "help");
  // Exact powers of two land in their own le="2^k" bucket (le is an upper
  // INCLUSIVE bound), values just above in the next.
  h->Observe(1.0);
  const int one = obs::Histogram::BucketIndex(1.0);
  EXPECT_EQ(obs::Histogram::BucketBound(one), 1.0);
  EXPECT_EQ(h->BucketCount(one), 1u);
  h->Observe(1.001);
  EXPECT_EQ(h->BucketCount(one + 1), 1u);
  // Tiny values fall into the first bucket; huge ones into +Inf.
  h->Observe(1e-12);
  EXPECT_EQ(h->BucketCount(0), 1u);
  h->Observe(1e12);
  EXPECT_EQ(h->BucketCount(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 1.0 + 1.001 + 1e-12 + 1e12);
}

TEST(ObsMetrics, HistogramQuantilesAreMonotone) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("relborg_test_seconds", "help");
  for (int i = 0; i < 90; ++i) h->Observe(0.001);  // ~1ms
  for (int i = 0; i < 10; ++i) h->Observe(0.1);    // ~100ms tail
  const double p50 = h->Quantile(0.50);
  const double p95 = h->Quantile(0.95);
  EXPECT_LE(p50, 0.002);  // within the ~1ms bucket's bound
  EXPECT_GE(p95, 0.05);   // in the tail
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h->Quantile(0.99));
}

TEST(ObsMetrics, QuantileStopsAtTheLowestPopulatedBucket) {
  // Regression: with empty leading buckets, q = 0 used to satisfy
  // `cum >= target` at target 0 on bucket 0 and report 2^-20 for data that
  // never touched it. Every quantile must land in a populated bucket.
  obs::Histogram h;
  for (int i = 0; i < 4; ++i) h.Observe(0.25);  // bucket bound 0.25
  const double min_bound = 0.25;
  EXPECT_EQ(h.Quantile(0.0), min_bound);
  EXPECT_EQ(h.Quantile(1e-9), min_bound);  // rounds below 1 observation
  EXPECT_EQ(h.Quantile(1.0), min_bound);   // all mass in one bucket
}

TEST(ObsMetrics, QuantileOfASingleObservation) {
  obs::Histogram h;
  h.Observe(0.01);  // bucket (2^-7, 2^-6]: bound 0.015625
  const double bound =
      obs::Histogram::BucketBound(obs::Histogram::BucketIndex(0.01));
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), bound) << "q=" << q;
  }
}

TEST(ObsMetrics, QuantileSpansPopulatedBucketsOnly) {
  // 1 observation near 1ms, 99 near 100ms: q = 0 must report the minimum's
  // bucket, q >= 0.02 the tail's — and nothing in between, since no other
  // bucket holds observations.
  obs::Histogram h;
  h.Observe(0.001);
  for (int i = 0; i < 99; ++i) h.Observe(0.1);
  const double lo =
      obs::Histogram::BucketBound(obs::Histogram::BucketIndex(0.001));
  const double hi =
      obs::Histogram::BucketBound(obs::Histogram::BucketIndex(0.1));
  EXPECT_EQ(h.Quantile(0.0), lo);
  EXPECT_EQ(h.Quantile(0.01), lo);  // exactly the first observation's rank
  EXPECT_EQ(h.Quantile(0.02), hi);
  EXPECT_EQ(h.Quantile(1.0), hi);
  // Empty histogram stays the documented 0.
  obs::Histogram empty;
  EXPECT_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_EQ(empty.Quantile(1.0), 0.0);
}

TEST(ObsMetrics, RegistryMergeAggregatesAndLabelsPerSource) {
  obs::MetricsRegistry a, b;
  a.GetCounter("relborg_test_total", "help")->Inc(3);
  b.GetCounter("relborg_test_total", "help")->Inc(4);
  a.GetGauge("relborg_test_gauge", "help")->Set(2.0);
  b.GetGauge("relborg_test_gauge", "help")->Set(5.0);
  a.GetHistogram("relborg_test_seconds", "help")->Observe(0.001);
  b.GetHistogram("relborg_test_seconds", "help")->Observe(0.1);

  obs::MetricsRegistry agg;
  agg.MergeFrom(a, "_shard0");
  agg.MergeFrom(b, "_shard1");
  EXPECT_EQ(agg.FindCounter("relborg_test_total")->Value(), 7.0);
  EXPECT_EQ(agg.FindCounter("relborg_test_total_shard0")->Value(), 3.0);
  EXPECT_EQ(agg.FindCounter("relborg_test_total_shard1")->Value(), 4.0);
  EXPECT_EQ(agg.FindGauge("relborg_test_gauge")->Value(), 5.0);  // max
  EXPECT_EQ(agg.FindGauge("relborg_test_gauge_shard0")->Value(), 2.0);
  obs::Histogram* h = agg.FindHistogram("relborg_test_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Count(), 2u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.101);
  EXPECT_EQ(agg.FindHistogram("relborg_test_seconds_shard1")->Count(), 1u);
}

TEST(ObsMetrics, ExpositionTextIsPrometheusShaped) {
  obs::MetricsRegistry reg;
  reg.GetCounter("relborg_test_total", "a counter")->Inc(3);
  reg.GetGauge("relborg_test_gauge", "a gauge")->Set(1.5);
  obs::Histogram* h = reg.GetHistogram("relborg_test_seconds", "a histogram");
  h->Observe(0.5);
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("# HELP relborg_test_total a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE relborg_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("relborg_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE relborg_test_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE relborg_test_seconds histogram"),
            std::string::npos);
  // Cumulative le buckets: 0.5 is an exact power of two, so its own
  // bucket counts it, and every larger bound (incl. +Inf) includes it.
  EXPECT_NE(text.find("relborg_test_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("relborg_test_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("relborg_test_seconds_sum 0.5"), std::string::npos);
  EXPECT_NE(text.find("relborg_test_seconds_count 1"), std::string::npos);
}

TEST(ObsMetrics, ConcurrentIncrementsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("relborg_test_total", "help");
  obs::Histogram* h = reg.GetHistogram("relborg_test_seconds", "help");
  obs::Gauge* g = reg.GetGauge("relborg_test_gauge", "help");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(0.25);  // power of two: exact double accumulation
        g->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->Sum(), 0.25 * kThreads * kPerThread);
  EXPECT_EQ(g->Value(), static_cast<double>(kThreads * kPerThread - 1));
}

// --- Trace ---------------------------------------------------------------

// The recording-behavior suite only exists when spans record: under
// -DRELBORG_OBS_NO_TRACE every span/instant compiles to nothing (which
// IS the behavior under test there — nothing must be recorded, nothing
// must crash — covered by the two no-op cases kept outside the guard).
#ifndef RELBORG_OBS_NO_TRACE

TEST(ObsTrace, SpansAreNoOpsWithoutAScope) {
  EXPECT_FALSE(obs::TraceEnabledOnThisThread());
  obs::TraceSpan span("orphan", "test");  // must not crash or record
  RELBORG_TRACE_INSTANT("orphan-instant", "test", -1, -1);
}

TEST(ObsTrace, ScopeInstallsRecordsAndRestores) {
  obs::TraceRecorder recorder;
  {
    obs::ThreadTraceScope scope(&recorder, "worker");
    EXPECT_TRUE(obs::TraceEnabledOnThisThread());
    { obs::TraceSpan span("unit", "test", /*epoch=*/3, /*node=*/1); }
    RELBORG_TRACE_INSTANT("mark", "test", 4, -1);
  }
  EXPECT_FALSE(obs::TraceEnabledOnThisThread());
  EXPECT_EQ(recorder.thread_count(), 1u);
  const std::string json = recorder.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker\""), std::string::npos);  // ph:M
  EXPECT_NE(json.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"node\":1"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":4"), std::string::npos);  // the instant
}

TEST(ObsTrace, RepeatScopesOnSameRecorderReuseTheRing) {
  obs::TraceRecorder recorder;
  for (int i = 0; i < 5; ++i) {
    obs::ThreadTraceScope scope(&recorder, "reader");
    obs::TraceSpan span("read", "test");
  }
  EXPECT_EQ(recorder.thread_count(), 1u);  // one ring, not five
  // A DIFFERENT recorder must not alias the cached ring.
  obs::TraceRecorder other;
  {
    obs::ThreadTraceScope scope(&other, "reader");
    obs::TraceSpan span("read", "test");
  }
  EXPECT_EQ(other.thread_count(), 1u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(ObsTrace, NullRecorderDisablesTracingInScope) {
  obs::TraceRecorder recorder;
  obs::ThreadTraceScope outer(&recorder, "outer");
  {
    obs::ThreadTraceScope inner(nullptr, "inner");
    EXPECT_FALSE(obs::TraceEnabledOnThisThread());
    obs::TraceSpan span("dropped", "test");
  }
  EXPECT_TRUE(obs::TraceEnabledOnThisThread());  // restored
  const std::string json = recorder.ExportChromeJson();
  EXPECT_EQ(json.find("dropped"), std::string::npos);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDropped) {
  obs::TraceRecorder recorder(/*capacity_per_thread=*/4);
  obs::ThreadTraceScope scope(&recorder, "looper");
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span(i % 2 == 0 ? "even" : "odd", "test", i);
  }
  EXPECT_EQ(recorder.dropped(), 6u);  // 10 recorded - 4 retained
  const std::string json = recorder.ExportChromeJson();
  // Only the newest four survive: epochs 6..9.
  EXPECT_EQ(json.find("\"epoch\":5,"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":6,"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":9,"), std::string::npos);
}

TEST(ObsTrace, JsonEscapesMetacharacters) {
  obs::TraceRecorder recorder;
  obs::ThreadTraceScope scope(&recorder, "na\"me\\with\nnoise");
  obs::TraceSpan span("plain", "test");
  span.End();
  const std::string json = recorder.ExportChromeJson();
  EXPECT_NE(json.find("na\\\"me\\\\with\\u000anoise"), std::string::npos);
}

TEST(ObsTrace, TailStringMergesThreadsByTime) {
  obs::TraceRecorder recorder;
  {
    obs::ThreadTraceScope scope(&recorder, "alpha");
    obs::TraceSpan span("first", "test", 1);
  }
  std::thread([&] {
    obs::ThreadTraceScope scope(&recorder, "beta");
    obs::TraceSpan span("second", "test", 2);
  }).join();
  const std::string tail = recorder.TailString(16);
  EXPECT_NE(tail.find("alpha"), std::string::npos);
  EXPECT_NE(tail.find("beta"), std::string::npos);
  EXPECT_NE(tail.find("test/first"), std::string::npos);
  EXPECT_LT(tail.find("test/first"), tail.find("test/second"));
}

TEST(ObsTrace, TailStringToleratesConcurrentRecording) {
  obs::TraceRecorder recorder(/*capacity_per_thread=*/64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&recorder, &stop, t] {
      obs::ThreadTraceScope scope(&recorder,
                                  t == 0 ? "writer0" : "writer1");
      while (!stop.load(std::memory_order_relaxed)) {
        obs::TraceSpan span("spin", "test", t);
      }
    });
  }
  // The watchdog-style racy read: must be data-race-free (TSan) and never
  // touch invalid memory; torn/missing events are acceptable.
  for (int i = 0; i < 50; ++i) {
    (void)recorder.TailString(8);
    (void)recorder.dropped();
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

#else  // RELBORG_OBS_NO_TRACE

TEST(ObsTrace, KilledSpansCompileToNoOpsAndRecordNothing) {
  obs::TraceRecorder recorder;
  obs::ThreadTraceScope scope(&recorder, "worker");
  EXPECT_FALSE(obs::TraceEnabledOnThisThread());
  { obs::TraceSpan span("unit", "test", 1, 2); }
  RELBORG_TRACE_INSTANT("mark", "test", 3, -1);
  EXPECT_EQ(recorder.ExportChromeJson().find("\"ph\":\"X\""),
            std::string::npos);
}

#endif  // RELBORG_OBS_NO_TRACE

// --- Structured events ---------------------------------------------------

TEST(ObsEvent, RendersOneLinePlusIndentedDetail) {
  obs::StructuredEvent ev("stream.stall");
  ev.Add("no_progress_s", 2.5);
  ev.Add("ingress", static_cast<int64_t>(12));
  ev.Detail("watermarks", "    node 0 committed_rows=5\n");
  const std::string text = ev.Render();
  EXPECT_EQ(text.find("[relborg] stream.stall"), 0u);
  EXPECT_NE(text.find(" no_progress_s=2.5"), std::string::npos);
  EXPECT_NE(text.find(" ingress=12"), std::string::npos);
  EXPECT_NE(text.find("  watermarks:\n    node 0 committed_rows=5\n"),
            std::string::npos);
  // Single-line header: the detail block starts on its own line.
  EXPECT_LT(text.find('\n'), text.find("watermarks"));
}

// --- Pipeline contracts --------------------------------------------------

std::vector<UpdateBatch> MakeStream(const RandomDb& db, uint64_t seed) {
  MixedStreamOptions opts;
  opts.insert.batch_size = 5;
  opts.insert.seed = seed;
  opts.delete_probability = 0.25;
  return BuildMixedStream(db.query, opts);
}

// Contract 1: the flat StreamStats a scheduler reports is exactly what the
// external registry's instruments derive to — the registry is the single
// source of truth and the struct is a projection of it.
TEST(ObsStream, StreamStatsEqualsRegistryDerivation) {
  RandomDb db = MakeRandomDb(7, Topology::kStar, /*fact_rows=*/40);
  const std::vector<UpdateBatch> stream = MakeStream(db, 11);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  ExecPolicy policy;
  policy.threads = 2;
  policy.partition_grain = 16;
  CovarFivm strategy(&shadow, &fm, policy);

  obs::MetricsRegistry registry;
  StreamOptions options;
  options.epoch_batches = 3;
  options.metrics = &registry;
  StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());

  auto counter = [&](const char* name) {
    const obs::Counter* c = registry.FindCounter(name);
    return c != nullptr ? static_cast<size_t>(c->Value()) : SIZE_MAX;
  };
  auto hist_sum = [&](const char* name) {
    const obs::Histogram* h = registry.FindHistogram(name);
    return h != nullptr ? h->Sum() : -1.0;
  };
  auto gauge = [&](const char* name) {
    const obs::Gauge* g = registry.FindGauge(name);
    return g != nullptr ? g->Value() : -1.0;
  };
  EXPECT_EQ(stats.batches, counter("relborg_stream_batches_total"));
  EXPECT_EQ(stats.rows, counter("relborg_stream_rows_total"));
  EXPECT_EQ(stats.epochs, counter("relborg_stream_epochs_total"));
  EXPECT_EQ(stats.ranges, counter("relborg_stream_ranges_total"));
  EXPECT_EQ(stats.speculated_ranges,
            counter("relborg_stream_speculated_ranges_total"));
  EXPECT_EQ(stats.speculation_hits,
            counter("relborg_stream_speculation_hits_total"));
  EXPECT_EQ(stats.speculation_misses,
            counter("relborg_stream_speculation_misses_total"));
  EXPECT_EQ(stats.probe_staged_ranges,
            counter("relborg_stream_probe_staged_ranges_total"));
  EXPECT_EQ(stats.apply_seconds, hist_sum("relborg_stream_apply_seconds"));
  EXPECT_EQ(stats.commit_seconds, hist_sum("relborg_stream_commit_seconds"));
  EXPECT_EQ(stats.compute_seconds,
            hist_sum("relborg_stream_compute_seconds"));
  EXPECT_EQ(stats.commit_gate_wait_seconds,
            hist_sum("relborg_stream_commit_gate_wait_seconds"));
  EXPECT_EQ(stats.maintain_gate_wait_seconds,
            hist_sum("relborg_stream_maintain_gate_wait_seconds"));
  EXPECT_EQ(stats.compute_gate_wait_seconds,
            hist_sum("relborg_stream_compute_gate_wait_seconds"));
  EXPECT_EQ(static_cast<double>(stats.commit_ahead_max_epochs),
            gauge("relborg_stream_commit_ahead_epochs_max"));
  EXPECT_EQ(static_cast<double>(stats.compute_overlap_epochs_max),
            gauge("relborg_stream_compute_overlap_epochs_max"));
  EXPECT_EQ(stats.epoch_latency_max_seconds,
            gauge("relborg_stream_epoch_latency_max_seconds"));
  EXPECT_EQ(static_cast<double>(stats.ingress_high_water_rows),
            gauge("relborg_stream_ingress_high_water_rows"));
  EXPECT_EQ(static_cast<double>(stats.epoch_queue_high_water),
            gauge("relborg_stream_epoch_queue_high_water"));
  EXPECT_EQ(stats.rejected_batches,
            counter("relborg_stream_rejected_batches_total"));
  EXPECT_EQ(stats.rejected_rows,
            counter("relborg_stream_rejected_rows_total"));
  EXPECT_EQ(stats.quarantined_batches,
            counter("relborg_stream_quarantined_batches_total"));
  EXPECT_EQ(stats.quarantine_dropped_batches,
            counter("relborg_stream_quarantine_dropped_batches_total"));
  EXPECT_EQ(stats.dropped_batches,
            counter("relborg_stream_dropped_batches_total"));
  EXPECT_EQ(stats.try_push_timeouts,
            counter("relborg_stream_try_push_timeouts_total"));
  EXPECT_EQ(stats.watchdog_stalls,
            counter("relborg_stream_watchdog_stalls_total"));
  {
    const obs::Histogram* h =
        registry.FindHistogram("relborg_stream_checkpoint_write_seconds");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(stats.checkpoints_written, static_cast<size_t>(h->Count()));
    EXPECT_EQ(stats.checkpoint_seconds, h->Sum());
  }
  EXPECT_EQ(stats.checkpoint_bytes,
            counter("relborg_stream_checkpoint_bytes_total"));
  // The derived mean is the histogram sum over the epoch count.
  const obs::Histogram* latency =
      registry.FindHistogram("relborg_stream_epoch_latency_seconds");
  ASSERT_NE(latency, nullptr);
  ASSERT_GT(stats.epochs, 0u);
  EXPECT_EQ(stats.epoch_latency_mean_seconds,
            latency->Sum() / static_cast<double>(stats.epochs));
  EXPECT_EQ(latency->Count(), static_cast<uint64_t>(stats.epochs));
  // And DeriveStats() re-derives the same struct while the scheduler is
  // still alive (modulo nothing: the pipeline is drained).
  const StreamStats again = scheduler.DeriveStats();
  EXPECT_EQ(again.rows, stats.rows);
  EXPECT_EQ(again.apply_seconds, stats.apply_seconds);
  // The exposition text carries the documented catalog.
  const std::string text = scheduler.MetricsText();
  EXPECT_NE(text.find("relborg_stream_batches_total"), std::string::npos);
  EXPECT_NE(text.find("relborg_stream_epoch_latency_seconds_bucket"),
            std::string::npos);
}

// Contract 2: tracing on vs off is bit-identical in the maintained
// covariance and the structural stats; the traced run actually captures
// stage spans from every pipeline thread.
TEST(ObsStream, TracingOnOffIsBitIdentical) {
  RandomDb db = MakeRandomDb(42, Topology::kChain, /*fact_rows=*/40);
  const std::vector<UpdateBatch> stream = MakeStream(db, 13);

  auto run = [&](obs::TraceRecorder* trace, StreamStats* stats) {
    ShadowDb shadow(db.query, 0);
    FeatureMap fm(shadow.query(), db.features);
    ExecPolicy policy;
    policy.threads = 2;
    policy.partition_grain = 16;
    CovarFivm strategy(&shadow, &fm, policy);
    StreamOptions options;
    options.epoch_batches = 2;
    options.trace = trace;
    *stats = ApplyStream(&shadow, &strategy, stream, options);
    return strategy.Current();
  };

  StreamStats off_stats, on_stats;
  const CovarMatrix off = run(nullptr, &off_stats);
  obs::TraceRecorder recorder;
  const CovarMatrix on = run(&recorder, &on_stats);

  ASSERT_EQ(on.num_features(), off.num_features());
  const int n = off.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(on.Moment(i, j), off.Moment(i, j))
          << "(" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(on_stats.batches, off_stats.batches);
  EXPECT_EQ(on_stats.rows, off_stats.rows);
  EXPECT_EQ(on_stats.epochs, off_stats.epochs);
  EXPECT_EQ(on_stats.ranges, off_stats.ranges);

  // The traced run registered every pipeline stage thread (assemble,
  // commit, compute, apply, watchdog + the producer ring).
  EXPECT_GE(recorder.thread_count(), 5u);
#ifndef RELBORG_OBS_NO_TRACE
  const std::string json = recorder.ExportChromeJson();
  for (const char* name : {"assemble", "commit", "compute", "apply"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"cat\":\"ivm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"storage\""), std::string::npos);
#endif
}

// The serve layer registers its instruments in the scheduler's registry,
// so one exposition covers pipeline + serving, and serve reads observe
// their latency.
TEST(ObsStream, ServeMetricsShareTheSchedulerRegistry) {
  RandomDb db = MakeRandomDb(3, Topology::kStar, /*fact_rows=*/30);
  const std::vector<UpdateBatch> stream = MakeStream(db, 5);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  ExecPolicy policy;
  policy.threads = 1;
  CovarFivm strategy(&shadow, &fm, policy);
  StreamOptions options;
  obs::TraceRecorder recorder;
  options.trace = &recorder;
  StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
  SnapshotServer<CovarFivm> server(&scheduler, &shadow, &strategy);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  {
    auto txn = server.BeginSnapshot();
    (void)server.Covar(txn);
    server.EndSnapshot(&txn);
  }
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());

  const obs::MetricsRegistry& reg = server.metrics();
  const obs::Counter* txns =
      reg.FindCounter("relborg_serve_transactions_total");
  const obs::Counter* reads = reg.FindCounter("relborg_serve_reads_total");
  const obs::Histogram* latency =
      reg.FindHistogram("relborg_serve_read_latency_seconds");
  ASSERT_NE(txns, nullptr);
  ASSERT_NE(reads, nullptr);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(txns->Value(), 1.0);
  EXPECT_EQ(reads->Value(), 1.0);
  EXPECT_EQ(latency->Count(), 1u);
  const obs::Counter* published =
      reg.FindCounter("relborg_serve_snapshots_published_total");
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(static_cast<size_t>(published->Value()),
            server.published_snapshots());
  // One exposition text covers both layers, served through the server.
  const std::string text = server.MetricsText();
  EXPECT_NE(text.find("relborg_stream_batches_total"), std::string::npos);
  EXPECT_NE(text.find("relborg_serve_read_latency_seconds_bucket"),
            std::string::npos);
#ifndef RELBORG_OBS_NO_TRACE
  // The serve read recorded a span in the shared recorder.
  EXPECT_NE(recorder.ExportChromeJson().find("serve/covar"),
            std::string::npos);
#endif
}

}  // namespace
}  // namespace relborg
