// Randomized differential stress suite for the watermark-overlapped
// stream scheduler (src/stream/).
//
// Every case draws a full pipeline configuration from the case seed —
// topology, stream shape (mixed insert/delete, incl. full retractions and
// empty batches), epoch sealing bounds, queue capacities, thread count,
// commit overlap on/off, COMPUTE overlap on/off with a drawn run-ahead
// depth — runs all three IVM strategies through the async scheduler, and
// demands BIT-IDENTITY with the serial ReplayStream reference plus
// identical structural stats. The point is adversarial coverage of the
// overlap machinery: tiny queues force backpressure, tiny epochs force
// commit churn, whole-stream epochs force one giant coalesced fold, deep
// compute run-ahead forces speculation against stale snapshots (and its
// validation misses, when speculate_past_conflicts is drawn), and the
// commit gate + view gates + per-range watermarks must keep every
// interleaving invisible in the results. The suite runs in the TSan CI
// leg under the `stream-stress` CTest label.
//
// Failures involving scheduler interleavings reproduce deterministically
// through SteppedStreamPipeline: the stepped properties below drive
// random stage traces, print the trace on failure, and the trace-replay
// property pins that replaying a recorded trace reproduces the schedule
// (and its stats) exactly.
//
// Seeds follow the kPropertySeeds policy of tests/test_util.h: 6 seeds x
// 9 drawn configurations = 54 randomized cases per property, each
// replayed exactly from the test name.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

struct StressConfig {
  Topology topology = Topology::kStar;
  int fact_rows = 30;
  size_t batch_size = 7;
  double delete_probability = 0.3;
  double full_retraction_probability = 0.15;
  double empty_batch_probability = 0.0;
  StreamOptions options;
  int threads = 1;
};

// Draws case `index` of `seed`'s configuration sequence. The first four
// indices pin the acceptance grid's epoch sizes (1 row, 1 batch, the
// defaults, whole-stream); the rest are free draws.
StressConfig DrawConfig(uint64_t seed, int index) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(index) + 1);
  StressConfig cfg;
  const Topology topologies[] = {Topology::kStar, Topology::kChain,
                                 Topology::kBushy};
  cfg.topology = topologies[rng.Below(3)];
  cfg.fact_rows = static_cast<int>(rng.Range(12, 40));
  cfg.batch_size = static_cast<size_t>(rng.Range(3, 13));
  cfg.delete_probability = rng.Uniform(0.1, 0.5);
  cfg.full_retraction_probability = rng.Uniform(0.0, 0.4);
  switch (index) {
    case 0:  // 1-row epochs: maximal commit churn.
      cfg.options.epoch_rows = 1;
      break;
    case 1:  // single-batch epochs: the classic per-batch schedule.
      cfg.options.epoch_batches = 1;
      break;
    case 2:  // library defaults.
      break;
    case 3:  // whole-stream epoch: one giant coalesced fold.
      cfg.options.epoch_rows = SIZE_MAX;
      cfg.options.epoch_batches = SIZE_MAX;
      break;
    default:
      cfg.options.epoch_rows = static_cast<size_t>(rng.Range(8, 96));
      cfg.options.epoch_batches = static_cast<size_t>(rng.Range(2, 8));
      break;
  }
  // Queue capacities from starved (1) to roomy; tiny values exercise every
  // backpressure and gate path.
  const size_t row_caps[] = {1, 16, 4096};
  cfg.options.max_queued_rows = row_caps[rng.Below(3)];
  cfg.options.max_queued_epochs = static_cast<size_t>(rng.Range(1, 4));
  cfg.options.overlap_commits = rng.Below(4) != 0;  // mostly on
  // Compute-overlap dimension: speculation mostly on, run-ahead depth from
  // lockstep (1) to deep (4). Occasionally speculate past conflicts —
  // forcing the validation-miss / serial-recompute path that conflict
  // avoidance makes rare — and occasionally inject empty batches so
  // zero-range epochs flow through the pipeline mid-stream.
  cfg.options.overlap_compute = rng.Below(4) != 0;  // mostly on
  cfg.options.max_compute_ahead_epochs = static_cast<size_t>(rng.Range(1, 4));
  cfg.options.speculate_past_conflicts = rng.Below(3) == 0;
  cfg.empty_batch_probability = rng.Below(2) == 0 ? 0.0 : 0.2;
  const int thread_choices[] = {1, 2, 4};
  cfg.threads = thread_choices[rng.Below(3)];
  return cfg;
}

std::vector<UpdateBatch> MakeStressStream(const RandomDb& db, uint64_t seed,
                                          const StressConfig& cfg) {
  MixedStreamOptions opts;
  opts.insert.batch_size = cfg.batch_size;
  opts.insert.seed = seed;
  opts.insert.order =
      seed % 2 == 0 ? StreamOrder::kRoundRobin : StreamOrder::kProportional;
  opts.delete_probability = cfg.delete_probability;
  opts.full_retraction_probability = cfg.full_retraction_probability;
  opts.empty_batch_probability = cfg.empty_batch_probability;
  return BuildMixedStream(db.query, opts);
}

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;  // small batches must still partition
  return policy;
}

// Runs `stream` through one strategy (async scheduler or serial replay)
// and returns the maintained covariance batch.
template <typename Strategy>
CovarMatrix RunStream(const RandomDb& db,
                      const std::vector<UpdateBatch>& stream, bool async,
                      int threads, const StreamOptions& options,
                      StreamStats* stats) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  *stats = async ? ApplyStream(&shadow, &strategy, stream, options)
                 : ReplayStream(&shadow, &strategy, stream, options);
  return strategy.Current();
}

template <typename Strategy>
void CheckDifferential(const RandomDb& db,
                       const std::vector<UpdateBatch>& stream,
                       const StressConfig& cfg) {
  StreamStats replay_stats;
  const CovarMatrix reference = RunStream<Strategy>(
      db, stream, /*async=*/false, /*threads=*/1, cfg.options, &replay_stats);
  StreamStats async_stats;
  const CovarMatrix async = RunStream<Strategy>(
      db, stream, /*async=*/true, cfg.threads, cfg.options, &async_stats);
  ExpectCovarExact(async, reference);
  // Structural stats are a pure function of (stream, options).
  EXPECT_EQ(async_stats.batches, replay_stats.batches);
  EXPECT_EQ(async_stats.rows, replay_stats.rows);
  EXPECT_EQ(async_stats.epochs, replay_stats.epochs);
  EXPECT_EQ(async_stats.ranges, replay_stats.ranges);
  EXPECT_EQ(async_stats.rows, StreamRowCount(stream));
  // Every speculated range settles exactly once at its serial point.
  EXPECT_EQ(async_stats.speculation_hits + async_stats.speculation_misses,
            async_stats.speculated_ranges);
  EXPECT_LE(async_stats.speculated_ranges + async_stats.probe_staged_ranges,
            async_stats.ranges);
}

class StreamStressSuite : public ::testing::TestWithParam<uint64_t> {};

// The headline property: for 9 drawn configurations per seed (54 cases
// over the suite) and all three strategies, the watermark-overlapped
// async pipeline is bit-identical to the serial replay.
TEST_P(StreamStressSuite, AsyncBitIdenticalAcrossRandomConfigs) {
  const uint64_t seed = GetParam();
  for (int index = 0; index < 9; ++index) {
    SCOPED_TRACE(::testing::Message() << "config index " << index);
    const StressConfig cfg = DrawConfig(seed, index);
    RandomDb db = MakeRandomDb(seed + index, cfg.topology, cfg.fact_rows);
    const std::vector<UpdateBatch> stream =
        MakeStressStream(db, seed + 31 * index, cfg);
    ASSERT_FALSE(stream.empty());
    CheckDifferential<CovarFivm>(db, stream, cfg);
    CheckDifferential<HigherOrderIvm>(db, stream, cfg);
    CheckDifferential<FirstOrderIvm>(db, stream, cfg);
  }
}

// Watermark invariants observed live from the producer thread while the
// pipeline runs: per-node committed-row watermarks only ever grow
// (committed_rows is an acquire-published monotone counter), and after
// Finish every watermark equals the relation's row count — nothing stays
// staged-but-invisible.
TEST_P(StreamStressSuite, WatermarksAreMonotoneUnderLoad) {
  const uint64_t seed = GetParam();
  const StressConfig cfg = DrawConfig(seed, /*index=*/4);
  RandomDb db = MakeRandomDb(seed, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream = MakeStressStream(db, seed + 7, cfg);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm, MakePolicy(cfg.threads));
  const int num_nodes = shadow.tree().num_nodes();
  std::vector<size_t> last(num_nodes, 0);
  StreamOptions options = cfg.options;
  options.overlap_commits = true;
  StreamScheduler<CovarFivm> scheduler(&shadow, &fivm, options);
  for (const UpdateBatch& batch : stream) {
    scheduler.Push(batch);
    for (int v = 0; v < num_nodes; ++v) {
      const size_t w = shadow.committed_rows(v);
      EXPECT_GE(w, last[v]) << "watermark of node " << v << " regressed";
      last[v] = w;
    }
  }
  StreamStats stats;
  ASSERT_TRUE(scheduler.Finish(&stats).ok());
  for (int v = 0; v < num_nodes; ++v) {
    EXPECT_EQ(shadow.committed_rows(v), shadow.relation(v).num_rows());
  }
  EXPECT_EQ(stats.rows, StreamRowCount(stream));
  // With overlap on, the committer always finishes an epoch before the
  // applier maintains it, so its lead is at least one epoch.
  if (stats.epochs > 0) {
    EXPECT_GE(stats.commit_ahead_max_epochs, 1u);
  }
}

// Overlap on and off must agree bitwise: the commit gate and the
// watermarks make the committer's lead unobservable in the results.
TEST_P(StreamStressSuite, OverlapToggleIsUnobservable) {
  const uint64_t seed = GetParam();
  const StressConfig cfg = DrawConfig(seed, /*index=*/5);
  RandomDb db = MakeRandomDb(seed + 3, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 13, cfg);
  StreamOptions on = cfg.options;
  on.overlap_commits = true;
  StreamOptions off = cfg.options;
  off.overlap_commits = false;
  StreamStats stats_on, stats_off;
  const CovarMatrix with_overlap = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, on, &stats_on);
  const CovarMatrix without_overlap = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, off, &stats_off);
  ExpectCovarExact(with_overlap, without_overlap);
  EXPECT_EQ(stats_on.epochs, stats_off.epochs);
  EXPECT_EQ(stats_on.ranges, stats_off.ranges);
}

// Compute overlap on and off must agree bitwise too: turning speculation
// off restores the PR-5 schedule (every delta computed at its serial
// point), and the toggle is invisible in the maintained results.
TEST_P(StreamStressSuite, ComputeOverlapToggleIsUnobservable) {
  const uint64_t seed = GetParam();
  const StressConfig cfg = DrawConfig(seed, /*index=*/6);
  RandomDb db = MakeRandomDb(seed + 11, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 17, cfg);
  StreamOptions on = cfg.options;
  on.overlap_commits = true;
  on.overlap_compute = true;
  StreamOptions off = cfg.options;
  off.overlap_commits = true;
  off.overlap_compute = false;
  StreamStats stats_on, stats_off;
  const CovarMatrix with_compute = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, on, &stats_on);
  const CovarMatrix without_compute = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, off, &stats_off);
  ExpectCovarExact(with_compute, without_compute);
  EXPECT_EQ(stats_on.epochs, stats_off.epochs);
  EXPECT_EQ(stats_on.ranges, stats_off.ranges);
  // With the compute stage forwarding, nothing speculates or stages.
  EXPECT_EQ(stats_off.speculated_ranges, 0u);
  EXPECT_EQ(stats_off.probe_staged_ranges, 0u);
  EXPECT_EQ(stats_on.speculation_hits + stats_on.speculation_misses,
            stats_on.speculated_ranges);
}

// FirstOrderIvm has no speculative per-range API (its delta-join
// re-enumeration reads the whole database): the compute stage must
// forward its epochs untouched — the serial PR-5 schedule — while the
// results stay bit-identical to the replay.
TEST_P(StreamStressSuite, FirstOrderFallsBackToSerialSchedule) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/7);
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  RandomDb db = MakeRandomDb(seed + 5, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 23, cfg);
  StreamStats replay_stats, async_stats;
  const CovarMatrix reference = RunStream<FirstOrderIvm>(
      db, stream, /*async=*/false, /*threads=*/1, cfg.options, &replay_stats);
  const CovarMatrix async = RunStream<FirstOrderIvm>(
      db, stream, /*async=*/true, cfg.threads, cfg.options, &async_stats);
  ExpectCovarExact(async, reference);
  EXPECT_EQ(async_stats.epochs, replay_stats.epochs);
  EXPECT_EQ(async_stats.speculated_ranges, 0u);
  EXPECT_EQ(async_stats.probe_staged_ranges, 0u);
  EXPECT_EQ(async_stats.speculation_hits, 0u);
  EXPECT_EQ(async_stats.speculation_misses, 0u);
}

// Zero-range epochs (empty batches sealing alone under epoch_batches == 1)
// flow through commit, compute and apply as no-ops that still retire in
// order — regression for the empty-epoch edge under compute overlap.
TEST_P(StreamStressSuite, ZeroRangeEpochsUnderComputeOverlap) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/8);
  cfg.empty_batch_probability = 0.5;
  cfg.options.epoch_rows = 8192;
  cfg.options.epoch_batches = 1;  // every empty batch seals a zero-range epoch
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  RandomDb db = MakeRandomDb(seed + 2, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 29, cfg);
  CheckDifferential<CovarFivm>(db, stream, cfg);
  CheckDifferential<HigherOrderIvm>(db, stream, cfg);
}

// Full retractions under compute overlap: a delete batch cancelling a
// relation's whole live multiset can zero an epoch's net delta while
// later epochs have already speculated against the pre-retraction views —
// the version check must invalidate exactly those and recompute.
TEST_P(StreamStressSuite, FullRetractionUnderComputeOverlap) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/9);
  cfg.delete_probability = 0.5;
  cfg.full_retraction_probability = 1.0;
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  RandomDb db = MakeRandomDb(seed + 19, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 37, cfg);
  CheckDifferential<CovarFivm>(db, stream, cfg);
  CheckDifferential<HigherOrderIvm>(db, stream, cfg);
}

// Forced speculation past conflicts: probe sets intersecting in-flight
// write closures speculate anyway, so validation misses become common and
// the serial-recompute path must restore bit-identity every time.
TEST_P(StreamStressSuite, SpeculatePastConflictsStaysBitIdentical) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/10);
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  cfg.options.speculate_past_conflicts = true;
  cfg.options.max_compute_ahead_epochs = 4;
  RandomDb db = MakeRandomDb(seed + 41, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 43, cfg);
  CheckDifferential<CovarFivm>(db, stream, cfg);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, StreamStressSuite,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

// The acceptance grid, pinned deterministically: epoch sizes {1 row,
// 1 batch, defaults, whole-stream} x ExecPolicy{1,2,4} x all three
// strategies on a mixed stream — the async path must reproduce the serial
// replay bit for bit in every cell.
class StreamEpochGrid : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamEpochGrid, BitIdenticalInEveryCell) {
  const uint64_t seed = GetParam();
  RandomDb db = MakeRandomDb(seed, Topology::kBushy, /*fact_rows=*/25);
  MixedStreamOptions mixed;
  mixed.insert.batch_size = 9;
  mixed.insert.seed = seed;
  mixed.delete_probability = 0.3;
  mixed.full_retraction_probability = 0.2;
  const std::vector<UpdateBatch> stream = BuildMixedStream(db.query, mixed);
  StreamOptions sizes[4];
  sizes[0].epoch_rows = 1;
  sizes[1].epoch_batches = 1;
  // sizes[2]: library defaults.
  sizes[3].epoch_rows = SIZE_MAX;
  sizes[3].epoch_batches = SIZE_MAX;
  for (int s = 0; s < 4; ++s) {
    SCOPED_TRACE(::testing::Message() << "epoch size cell " << s);
    StressConfig cfg;
    cfg.options = sizes[s];
    StreamStats stats;
    const CovarMatrix fivm_ref = RunStream<CovarFivm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    const CovarMatrix higher_ref = RunStream<HigherOrderIvm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    const CovarMatrix first_ref = RunStream<FirstOrderIvm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(::testing::Message() << "threads " << threads);
      ExpectCovarExact(RunStream<CovarFivm>(db, stream, /*async=*/true,
                                            threads, cfg.options, &stats),
                       fivm_ref);
      ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, /*async=*/true,
                                                 threads, cfg.options, &stats),
                       higher_ref);
      ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, /*async=*/true,
                                                threads, cfg.options, &stats),
                       first_ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, StreamEpochGrid,
    ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall));

// --- Deterministic scheduler-interleaving harness -------------------------
//
// SteppedStreamPipeline advances the exact stage code paths of the
// threaded scheduler one explicit step at a time, so any interleaving the
// threads can produce corresponds to a replayable stage trace. The
// properties below drive random traces (printing the trace on failure —
// paste it into ReplaySteps to reproduce a failure exactly) and pin that
// trace replay is deterministic, including the speculation stats.

PipelineStep StepOf(char c) {
  switch (c) {
    case 'A':
      return PipelineStep::kAssemble;
    case 'C':
      return PipelineStep::kCommit;
    case 'X':
      return PipelineStep::kCompute;
    case 'M':
      return PipelineStep::kApply;
    default:
      ADD_FAILURE() << "bad trace letter '" << c << "'";
      return PipelineStep::kAssemble;
  }
}

// Drives `pipeline` with uniformly random stage picks until drained.
// Failed steps change nothing and leave no trace entry, so the recorded
// trace alone reproduces the run.
template <typename Strategy>
void DriveRandomSteps(SteppedStreamPipeline<Strategy>* pipeline, Rng* rng) {
  static constexpr PipelineStep kAll[] = {
      PipelineStep::kAssemble, PipelineStep::kCommit, PipelineStep::kCompute,
      PipelineStep::kApply};
  while (!pipeline->drained()) pipeline->Step(kAll[rng->Below(4)]);
}

// Replays a recorded trace; every step of a valid trace must progress.
template <typename Strategy>
void ReplaySteps(SteppedStreamPipeline<Strategy>* pipeline,
                 const std::string& trace) {
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(pipeline->Step(StepOf(trace[i])))
        << "trace step " << i << " ('" << trace[i] << "') did not progress";
  }
  EXPECT_TRUE(pipeline->drained());
}

template <typename Strategy>
struct SteppedRun {
  CovarMatrix covar{0, CovarPayload{}};
  std::string trace;
  StreamStats stats;
};

template <typename Strategy>
SteppedRun<Strategy> RunStepped(const RandomDb& db,
                                const std::vector<UpdateBatch>& stream,
                                const StressConfig& cfg, Rng* step_rng,
                                const std::string* replay_trace) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(cfg.threads));
  SteppedStreamPipeline<Strategy> pipeline(&shadow, &strategy, stream,
                                           cfg.options);
  if (replay_trace != nullptr) {
    ReplaySteps(&pipeline, *replay_trace);
  } else {
    DriveRandomSteps(&pipeline, step_rng);
  }
  SteppedRun<Strategy> run;
  run.covar = strategy.Current();
  run.trace = pipeline.trace();
  run.stats = pipeline.stats();
  return run;
}

// Random stage traces are bit-identical to the serial replay — the
// stepped twin of AsyncBitIdenticalAcrossRandomConfigs, with the schedule
// under explicit deterministic control instead of thread timing.
TEST_P(StreamStressSuite, SteppedPipelineRandomTracesAreBitIdentical) {
  const uint64_t seed = GetParam();
  for (int index = 0; index < 3; ++index) {
    StressConfig cfg = DrawConfig(seed, /*index=*/11 + index);
    cfg.options.overlap_commits = true;
    cfg.options.overlap_compute = true;
    RandomDb db =
        MakeRandomDb(seed + 51 + index, cfg.topology, cfg.fact_rows);
    const std::vector<UpdateBatch> stream =
        MakeStressStream(db, seed + 53 + index, cfg);
    StreamStats replay_stats;
    const CovarMatrix reference =
        RunStream<CovarFivm>(db, stream, /*async=*/false, /*threads=*/1,
                             cfg.options, &replay_stats);
    Rng step_rng(seed * 1000003ull + static_cast<uint64_t>(index));
    const SteppedRun<CovarFivm> run =
        RunStepped<CovarFivm>(db, stream, cfg, &step_rng, nullptr);
    SCOPED_TRACE(::testing::Message()
                 << "config index " << 11 + index << ", pipeline trace: "
                 << run.trace);
    ExpectCovarExact(run.covar, reference);
    EXPECT_EQ(run.stats.batches, replay_stats.batches);
    EXPECT_EQ(run.stats.rows, replay_stats.rows);
    EXPECT_EQ(run.stats.epochs, replay_stats.epochs);
    EXPECT_EQ(run.stats.ranges, replay_stats.ranges);
    EXPECT_EQ(run.stats.speculation_hits + run.stats.speculation_misses,
              run.stats.speculated_ranges);
  }
}

// Replaying a recorded trace against a fresh pipeline reproduces the
// schedule exactly: every step progresses, and the results AND the
// timing-free stats (including which ranges speculated, hit and missed)
// come out identical — this is what makes a dumped trace a reproducer.
TEST_P(StreamStressSuite, SteppedPipelineTraceReplayIsExact) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/14);
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  cfg.options.speculate_past_conflicts = seed % 2 == 0;
  RandomDb db = MakeRandomDb(seed + 61, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 67, cfg);
  Rng step_rng(seed * 2000003ull + 5);
  const SteppedRun<CovarFivm> recorded =
      RunStepped<CovarFivm>(db, stream, cfg, &step_rng, nullptr);
  SCOPED_TRACE(::testing::Message() << "pipeline trace: " << recorded.trace);
  const SteppedRun<CovarFivm> replayed =
      RunStepped<CovarFivm>(db, stream, cfg, nullptr, &recorded.trace);
  EXPECT_EQ(replayed.trace, recorded.trace);
  ExpectCovarExact(replayed.covar, recorded.covar);
  EXPECT_EQ(replayed.stats.batches, recorded.stats.batches);
  EXPECT_EQ(replayed.stats.rows, recorded.stats.rows);
  EXPECT_EQ(replayed.stats.epochs, recorded.stats.epochs);
  EXPECT_EQ(replayed.stats.ranges, recorded.stats.ranges);
  EXPECT_EQ(replayed.stats.speculated_ranges,
            recorded.stats.speculated_ranges);
  EXPECT_EQ(replayed.stats.probe_staged_ranges,
            recorded.stats.probe_staged_ranges);
  EXPECT_EQ(replayed.stats.speculation_hits, recorded.stats.speculation_hits);
  EXPECT_EQ(replayed.stats.speculation_misses,
            recorded.stats.speculation_misses);
  EXPECT_EQ(replayed.stats.compute_overlap_epochs_max,
            recorded.stats.compute_overlap_epochs_max);
}

// A maximally-eager compute schedule: run every stage as far ahead as the
// caps allow before each maintain. This is the adversarial interleaving
// for speculation (deepest run-ahead, most stale snapshots), pinned here
// as a deterministic trace via Drain's fixed round-robin order.
TEST_P(StreamStressSuite, SteppedPipelineDrainIsBitIdentical) {
  const uint64_t seed = GetParam();
  StressConfig cfg = DrawConfig(seed, /*index=*/15);
  cfg.options.overlap_commits = true;
  cfg.options.overlap_compute = true;
  cfg.options.speculate_past_conflicts = false;
  RandomDb db = MakeRandomDb(seed + 71, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 73, cfg);
  StreamStats replay_stats;
  const CovarMatrix reference = RunStream<CovarFivm>(
      db, stream, /*async=*/false, /*threads=*/1, cfg.options, &replay_stats);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm, MakePolicy(cfg.threads));
  SteppedStreamPipeline<CovarFivm> pipeline(&shadow, &fivm, stream,
                                            cfg.options);
  pipeline.Drain();
  SCOPED_TRACE(::testing::Message()
               << "pipeline trace: " << pipeline.trace());
  ExpectCovarExact(fivm.Current(), reference);
  EXPECT_EQ(pipeline.stats().epochs, replay_stats.epochs);
  EXPECT_EQ(pipeline.stats().ranges, replay_stats.ranges);
  // Drain's round-robin keeps at most one epoch past the compute stage, so
  // only same-epoch conflicts stage probes: every range either speculates
  // or stages, and with no cross-epoch writes every speculation hits —
  // this pins that the speculative path actually runs (nothing vacuous).
  EXPECT_EQ(pipeline.stats().speculated_ranges +
                pipeline.stats().probe_staged_ranges,
            pipeline.stats().ranges);
  EXPECT_EQ(pipeline.stats().speculation_hits,
            pipeline.stats().speculated_ranges);
}

}  // namespace
}  // namespace relborg
