// Randomized differential stress suite for the watermark-overlapped
// stream scheduler (src/stream/).
//
// Every case draws a full pipeline configuration from the case seed —
// topology, stream shape (mixed insert/delete, incl. full retractions),
// epoch sealing bounds, queue capacities, thread count, overlap on/off —
// runs all three IVM strategies through the async scheduler, and demands
// BIT-IDENTITY with the serial ReplayStream reference plus identical
// structural stats. The point is adversarial coverage of the overlap
// machinery: tiny queues force backpressure, tiny epochs force commit
// churn, whole-stream epochs force one giant coalesced fold, and the
// commit gate + per-range watermarks must keep every interleaving
// invisible in the results. The suite runs in the TSan CI leg under the
// `stream-stress` CTest label.
//
// Seeds follow the kPropertySeeds policy of tests/test_util.h: 6 seeds x
// 9 drawn configurations = 54 randomized cases per property, each
// replayed exactly from the test name.
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

struct StressConfig {
  Topology topology = Topology::kStar;
  int fact_rows = 30;
  size_t batch_size = 7;
  double delete_probability = 0.3;
  double full_retraction_probability = 0.15;
  StreamOptions options;
  int threads = 1;
};

// Draws case `index` of `seed`'s configuration sequence. The first four
// indices pin the acceptance grid's epoch sizes (1 row, 1 batch, the
// defaults, whole-stream); the rest are free draws.
StressConfig DrawConfig(uint64_t seed, int index) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(index) + 1);
  StressConfig cfg;
  const Topology topologies[] = {Topology::kStar, Topology::kChain,
                                 Topology::kBushy};
  cfg.topology = topologies[rng.Below(3)];
  cfg.fact_rows = static_cast<int>(rng.Range(12, 40));
  cfg.batch_size = static_cast<size_t>(rng.Range(3, 13));
  cfg.delete_probability = rng.Uniform(0.1, 0.5);
  cfg.full_retraction_probability = rng.Uniform(0.0, 0.4);
  switch (index) {
    case 0:  // 1-row epochs: maximal commit churn.
      cfg.options.epoch_rows = 1;
      break;
    case 1:  // single-batch epochs: the classic per-batch schedule.
      cfg.options.epoch_batches = 1;
      break;
    case 2:  // library defaults.
      break;
    case 3:  // whole-stream epoch: one giant coalesced fold.
      cfg.options.epoch_rows = SIZE_MAX;
      cfg.options.epoch_batches = SIZE_MAX;
      break;
    default:
      cfg.options.epoch_rows = static_cast<size_t>(rng.Range(8, 96));
      cfg.options.epoch_batches = static_cast<size_t>(rng.Range(2, 8));
      break;
  }
  // Queue capacities from starved (1) to roomy; tiny values exercise every
  // backpressure and gate path.
  const size_t row_caps[] = {1, 16, 4096};
  cfg.options.max_queued_rows = row_caps[rng.Below(3)];
  cfg.options.max_queued_epochs = static_cast<size_t>(rng.Range(1, 4));
  cfg.options.overlap_commits = rng.Below(4) != 0;  // mostly on
  const int thread_choices[] = {1, 2, 4};
  cfg.threads = thread_choices[rng.Below(3)];
  return cfg;
}

std::vector<UpdateBatch> MakeStressStream(const RandomDb& db, uint64_t seed,
                                          const StressConfig& cfg) {
  MixedStreamOptions opts;
  opts.insert.batch_size = cfg.batch_size;
  opts.insert.seed = seed;
  opts.insert.order =
      seed % 2 == 0 ? StreamOrder::kRoundRobin : StreamOrder::kProportional;
  opts.delete_probability = cfg.delete_probability;
  opts.full_retraction_probability = cfg.full_retraction_probability;
  return BuildMixedStream(db.query, opts);
}

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;  // small batches must still partition
  return policy;
}

// Runs `stream` through one strategy (async scheduler or serial replay)
// and returns the maintained covariance batch.
template <typename Strategy>
CovarMatrix RunStream(const RandomDb& db,
                      const std::vector<UpdateBatch>& stream, bool async,
                      int threads, const StreamOptions& options,
                      StreamStats* stats) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  *stats = async ? ApplyStream(&shadow, &strategy, stream, options)
                 : ReplayStream(&shadow, &strategy, stream, options);
  return strategy.Current();
}

template <typename Strategy>
void CheckDifferential(const RandomDb& db,
                       const std::vector<UpdateBatch>& stream,
                       const StressConfig& cfg) {
  StreamStats replay_stats;
  const CovarMatrix reference = RunStream<Strategy>(
      db, stream, /*async=*/false, /*threads=*/1, cfg.options, &replay_stats);
  StreamStats async_stats;
  const CovarMatrix async = RunStream<Strategy>(
      db, stream, /*async=*/true, cfg.threads, cfg.options, &async_stats);
  ExpectCovarExact(async, reference);
  // Structural stats are a pure function of (stream, options).
  EXPECT_EQ(async_stats.batches, replay_stats.batches);
  EXPECT_EQ(async_stats.rows, replay_stats.rows);
  EXPECT_EQ(async_stats.epochs, replay_stats.epochs);
  EXPECT_EQ(async_stats.ranges, replay_stats.ranges);
  EXPECT_EQ(async_stats.rows, StreamRowCount(stream));
}

class StreamStressSuite : public ::testing::TestWithParam<uint64_t> {};

// The headline property: for 9 drawn configurations per seed (54 cases
// over the suite) and all three strategies, the watermark-overlapped
// async pipeline is bit-identical to the serial replay.
TEST_P(StreamStressSuite, AsyncBitIdenticalAcrossRandomConfigs) {
  const uint64_t seed = GetParam();
  for (int index = 0; index < 9; ++index) {
    SCOPED_TRACE(::testing::Message() << "config index " << index);
    const StressConfig cfg = DrawConfig(seed, index);
    RandomDb db = MakeRandomDb(seed + index, cfg.topology, cfg.fact_rows);
    const std::vector<UpdateBatch> stream =
        MakeStressStream(db, seed + 31 * index, cfg);
    ASSERT_FALSE(stream.empty());
    CheckDifferential<CovarFivm>(db, stream, cfg);
    CheckDifferential<HigherOrderIvm>(db, stream, cfg);
    CheckDifferential<FirstOrderIvm>(db, stream, cfg);
  }
}

// Watermark invariants observed live from the producer thread while the
// pipeline runs: per-node committed-row watermarks only ever grow
// (committed_rows is an acquire-published monotone counter), and after
// Finish every watermark equals the relation's row count — nothing stays
// staged-but-invisible.
TEST_P(StreamStressSuite, WatermarksAreMonotoneUnderLoad) {
  const uint64_t seed = GetParam();
  const StressConfig cfg = DrawConfig(seed, /*index=*/4);
  RandomDb db = MakeRandomDb(seed, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream = MakeStressStream(db, seed + 7, cfg);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm, MakePolicy(cfg.threads));
  const int num_nodes = shadow.tree().num_nodes();
  std::vector<size_t> last(num_nodes, 0);
  StreamOptions options = cfg.options;
  options.overlap_commits = true;
  StreamScheduler<CovarFivm> scheduler(&shadow, &fivm, options);
  for (const UpdateBatch& batch : stream) {
    scheduler.Push(batch);
    for (int v = 0; v < num_nodes; ++v) {
      const size_t w = shadow.committed_rows(v);
      EXPECT_GE(w, last[v]) << "watermark of node " << v << " regressed";
      last[v] = w;
    }
  }
  const StreamStats stats = scheduler.Finish();
  for (int v = 0; v < num_nodes; ++v) {
    EXPECT_EQ(shadow.committed_rows(v), shadow.relation(v).num_rows());
  }
  EXPECT_EQ(stats.rows, StreamRowCount(stream));
  // With overlap on, the committer always finishes an epoch before the
  // applier maintains it, so its lead is at least one epoch.
  if (stats.epochs > 0) {
    EXPECT_GE(stats.commit_ahead_max_epochs, 1u);
  }
}

// Overlap on and off must agree bitwise: the commit gate and the
// watermarks make the committer's lead unobservable in the results.
TEST_P(StreamStressSuite, OverlapToggleIsUnobservable) {
  const uint64_t seed = GetParam();
  const StressConfig cfg = DrawConfig(seed, /*index=*/5);
  RandomDb db = MakeRandomDb(seed + 3, cfg.topology, cfg.fact_rows);
  const std::vector<UpdateBatch> stream =
      MakeStressStream(db, seed + 13, cfg);
  StreamOptions on = cfg.options;
  on.overlap_commits = true;
  StreamOptions off = cfg.options;
  off.overlap_commits = false;
  StreamStats stats_on, stats_off;
  const CovarMatrix with_overlap = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, on, &stats_on);
  const CovarMatrix without_overlap = RunStream<CovarFivm>(
      db, stream, /*async=*/true, cfg.threads, off, &stats_off);
  ExpectCovarExact(with_overlap, without_overlap);
  EXPECT_EQ(stats_on.epochs, stats_off.epochs);
  EXPECT_EQ(stats_on.ranges, stats_off.ranges);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, StreamStressSuite,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

// The acceptance grid, pinned deterministically: epoch sizes {1 row,
// 1 batch, defaults, whole-stream} x ExecPolicy{1,2,4} x all three
// strategies on a mixed stream — the async path must reproduce the serial
// replay bit for bit in every cell.
class StreamEpochGrid : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamEpochGrid, BitIdenticalInEveryCell) {
  const uint64_t seed = GetParam();
  RandomDb db = MakeRandomDb(seed, Topology::kBushy, /*fact_rows=*/25);
  MixedStreamOptions mixed;
  mixed.insert.batch_size = 9;
  mixed.insert.seed = seed;
  mixed.delete_probability = 0.3;
  mixed.full_retraction_probability = 0.2;
  const std::vector<UpdateBatch> stream = BuildMixedStream(db.query, mixed);
  StreamOptions sizes[4];
  sizes[0].epoch_rows = 1;
  sizes[1].epoch_batches = 1;
  // sizes[2]: library defaults.
  sizes[3].epoch_rows = SIZE_MAX;
  sizes[3].epoch_batches = SIZE_MAX;
  for (int s = 0; s < 4; ++s) {
    SCOPED_TRACE(::testing::Message() << "epoch size cell " << s);
    StressConfig cfg;
    cfg.options = sizes[s];
    StreamStats stats;
    const CovarMatrix fivm_ref = RunStream<CovarFivm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    const CovarMatrix higher_ref = RunStream<HigherOrderIvm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    const CovarMatrix first_ref = RunStream<FirstOrderIvm>(
        db, stream, /*async=*/false, /*threads=*/1, cfg.options, &stats);
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(::testing::Message() << "threads " << threads);
      ExpectCovarExact(RunStream<CovarFivm>(db, stream, /*async=*/true,
                                            threads, cfg.options, &stats),
                       fivm_ref);
      ExpectCovarExact(RunStream<HigherOrderIvm>(db, stream, /*async=*/true,
                                                 threads, cfg.options, &stats),
                       higher_ref);
      ExpectCovarExact(RunStream<FirstOrderIvm>(db, stream, /*async=*/true,
                                                threads, cfg.options, &stats),
                       first_ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, StreamEpochGrid,
    ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall));

}  // namespace
}  // namespace relborg
