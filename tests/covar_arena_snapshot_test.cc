// Property tests for the CovarArenaView snapshot protocol
// (ring/covar_arena.h): pinned snapshots taken at arbitrary points of an
// interleaved merge sequence must keep reading EXACTLY the pre-merge
// state — byte-identical payloads, stable slot ids, no reads of keys that
// did not exist yet — while the view keeps absorbing published merges;
// and the (version, slots) watermark must behave as a monotone
// publication counter, including under a concurrent lock-free poller
// (the TSan leg exercises that case via the `stream-stress` label).
//
// Seeds follow the kPropertySeeds policy of tests/test_util.h.
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/view_tree.h"
#include "ring/covar_arena.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

constexpr int kFeatures = 4;
constexpr uint64_t kKeySpace = 32;

// One published merge of `keys_per_merge` random keys: every touched span
// entry accumulates a random increment, mirrored into `mirror` (the
// plain-map ground truth the snapshots are checked against).
void ApplyRandomMerge(CovarArenaView* view,
                      std::map<uint64_t, std::vector<double>>* mirror,
                      Rng* rng, int keys_per_merge) {
  const size_t stride = view->stride();
  for (int k = 0; k < keys_per_merge; ++k) {
    const uint64_t key = rng->Below(kKeySpace);
    double* span = view->BeginMergeKey(key);
    std::vector<double>& shadow = (*mirror)[key];
    shadow.resize(stride, 0.0);
    for (size_t i = 0; i < stride; ++i) {
      const double inc = rng->Uniform(-2.0, 2.0);
      span[i] += inc;
      shadow[i] += inc;
    }
  }
  view->PublishMerge();
}

// Every key of `expected` must read back byte-identical through
// FindAt(snap); keys the view acquired after the snapshot must be
// invisible at it.
void ExpectSnapshotReadsExactly(
    const CovarArenaView& view, const CovarViewSnapshot& snap,
    const std::map<uint64_t, std::vector<double>>& expected,
    const std::map<uint64_t, std::vector<double>>& current) {
  for (const auto& [key, want] : expected) {
    const double* got = view.FindAt(key, snap);
    ASSERT_NE(got, nullptr) << "key " << key << " lost at snapshot";
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "key " << key << " entry " << i;
    }
  }
  for (const auto& [key, unused] : current) {
    if (expected.count(key) == 0) {
      EXPECT_EQ(view.FindAt(key, snap), nullptr)
          << "key " << key << " visible before it existed";
    }
  }
}

class CovarArenaSnapshotSuite : public ::testing::TestWithParam<uint64_t> {};

// The headline property: a pin taken mid-sequence freezes exactly the
// pre-pin state. Every later published merge is invisible at the pinned
// snapshot (COW keeps the old bytes addressable), the live view tracks
// the mirror bit for bit throughout, and after Unpin the view is
// indistinguishable from one that never pinned.
TEST_P(CovarArenaSnapshotSuite, PinnedSnapshotReadsExactPreMergeState) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  CovarArenaView view(kFeatures);
  std::map<uint64_t, std::vector<double>> mirror;
  const int merges = 24;
  const int pin_at = static_cast<int>(rng.Below(merges - 4));

  std::map<uint64_t, std::vector<double>> at_pin;
  CovarViewSnapshot snap;
  uint32_t version_at_pin = 0;
  for (int m = 0; m < merges; ++m) {
    if (m == pin_at) {
      snap = view.Pin();
      at_pin = mirror;  // ground truth frozen with the pin
      version_at_pin = snap.version;
      EXPECT_TRUE(view.pinned());
    }
    ApplyRandomMerge(&view, &mirror, &rng,
                     /*keys_per_merge=*/1 + static_cast<int>(rng.Below(5)));
    if (m >= pin_at) {
      ExpectSnapshotReadsExactly(view, snap, at_pin, mirror);
      // The watermark keeps advancing past the pin — pins freeze reads,
      // not publication.
      EXPECT_GT(view.version(), version_at_pin);
    }
    // The live view always reads the full mirror, pinned or not.
    for (const auto& [key, want] : mirror) {
      const double* got = view.Find(key);
      ASSERT_NE(got, nullptr);
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i]);
      }
    }
  }
  view.Unpin();
  EXPECT_FALSE(view.pinned());
  EXPECT_EQ(view.size(), mirror.size());
}

// Nested pins: an outer and an inner pin each freeze their own point of
// the sequence, and both read exactly their own states until released.
TEST_P(CovarArenaSnapshotSuite, NestedPinsFreezeIndependentStates) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 2);
  CovarArenaView view(kFeatures);
  std::map<uint64_t, std::vector<double>> mirror;
  for (int m = 0; m < 6; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);

  const CovarViewSnapshot outer = view.Pin();
  const std::map<uint64_t, std::vector<double>> at_outer = mirror;
  for (int m = 0; m < 6; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);

  const CovarViewSnapshot inner = view.Pin();
  const std::map<uint64_t, std::vector<double>> at_inner = mirror;
  for (int m = 0; m < 6; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);

  ExpectSnapshotReadsExactly(view, outer, at_outer, mirror);
  ExpectSnapshotReadsExactly(view, inner, at_inner, mirror);
  view.Unpin();
  // The outer pin alone still protects its slots.
  ApplyRandomMerge(&view, &mirror, &rng, 3);
  ExpectSnapshotReadsExactly(view, outer, at_outer, mirror);
  view.Unpin();
  EXPECT_FALSE(view.pinned());
}

// Without a pin, a snapshot still bounds KEY visibility by its slot
// watermark: merges that only add NEW keys leave every pre-snapshot
// payload untouched in place, so FindAt reads exact pre-merge bytes and
// the new keys stay invisible — while the version bump records that a
// validation against this snapshot must now fail.
TEST_P(CovarArenaSnapshotSuite, UnpinnedSnapshotBoundsKeyVisibility) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);
  CovarArenaView view(kFeatures);
  std::map<uint64_t, std::vector<double>> mirror;
  for (int m = 0; m < 8; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);

  const CovarViewSnapshot snap = view.Snapshot();
  const std::map<uint64_t, std::vector<double>> at_snap = mirror;
  // Merge strictly-new keys (beyond kKeySpace, so no collision with the
  // existing key set).
  const size_t stride = view.stride();
  for (int m = 0; m < 4; ++m) {
    for (int k = 0; k < 3; ++k) {
      const uint64_t key = kKeySpace + rng.Below(kKeySpace);
      double* span = view.BeginMergeKey(key);
      std::vector<double>& shadow = mirror[key];
      shadow.resize(stride, 0.0);
      for (size_t i = 0; i < stride; ++i) {
        const double inc = rng.Uniform(-1.0, 1.0);
        span[i] += inc;
        shadow[i] += inc;
      }
    }
    view.PublishMerge();
  }
  ExpectSnapshotReadsExactly(view, snap, at_snap, mirror);
  // Any merge published after the snapshot invalidates version checks.
  EXPECT_NE(view.version(), snap.version);
}

// Maintainer-level: SnapshotView + a pin on a maintained view isolate it
// from the folds of later ApplyBatch calls (which publish through
// FoldPublished and so copy-on-write around the pin), and the COW path
// leaves the final maintained state bit-identical to a never-pinned
// maintainer fed the same batches.
TEST_P(CovarArenaSnapshotSuite, MaintainerSnapshotIsolatesLaterFolds) {
  const uint64_t seed = GetParam();
  RandomDb db = MakeRandomDb(seed, Topology::kBushy, /*fact_rows=*/24);

  // Feeds node batches in a fixed order; calls `hook(round)` before each.
  auto run = [&](ShadowDb* shadow,
                 ViewTreeMaintainer<CovarArenaIvmOps>* maintainer,
                 const std::function<void(int)>& hook) {
    const int num_nodes = shadow->tree().num_nodes();
    for (int round = 0; round < 2; ++round) {
      hook(round);
      for (int v = 0; v < num_nodes; ++v) {
        const Relation& src = *db.query.relation(v);
        const size_t half = src.num_rows() / 2;
        const size_t begin = round == 0 ? 0 : half;
        const size_t end = round == 0 ? half : src.num_rows();
        if (begin == end) continue;
        std::vector<std::vector<double>> rows;
        rows.reserve(end - begin);
        for (size_t r = begin; r < end; ++r) {
          std::vector<double> values(src.num_attrs());
          for (int a = 0; a < src.num_attrs(); ++a) {
            values[a] = src.AsDouble(r, a);
          }
          rows.push_back(std::move(values));
        }
        const size_t first = shadow->AppendRows(v, rows);
        maintainer->ApplyBatch(v, first, rows.size());
      }
    }
  };

  // Reference: no pins anywhere.
  ShadowDb ref_shadow(db.query, 0);
  FeatureMap ref_fm(ref_shadow.query(), db.features);
  ViewTreeMaintainer<CovarArenaIvmOps> reference(&ref_shadow,
                                                 CovarArenaIvmOps(&ref_fm));
  run(&ref_shadow, &reference, [](int) {});

  // Pinned: after round 0, pin the root view, capture its state, and let
  // round 1 fold through the pin.
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  ViewTreeMaintainer<CovarArenaIvmOps> maintainer(&shadow,
                                                  CovarArenaIvmOps(&fm));
  const int root = shadow.tree().root();
  CovarViewSnapshot snap;
  std::map<uint64_t, std::vector<double>> at_pin;
  uint64_t version_at_pin = 0;
  run(&shadow, &maintainer, [&](int round) {
    if (round != 1) return;
    CovarArenaView& view = maintainer.mutable_view(root);
    snap = view.Pin();
    version_at_pin = maintainer.ViewVersion(root);
    EXPECT_EQ(snap.version, maintainer.SnapshotView(root).version);
    view.ForEach([&](uint64_t key, const double* span) {
      at_pin[key].assign(span, span + view.stride());
    });
  });

  // The pinned snapshot still reads the exact end-of-round-0 root state.
  const CovarArenaView& pinned_view = maintainer.mutable_view(root);
  for (const auto& [key, want] : at_pin) {
    const double* got = pinned_view.FindAt(key, snap);
    ASSERT_NE(got, nullptr);
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "root key " << key << " entry " << i;
    }
  }
  // Round 1 folds really happened (the version moved past the pin)...
  EXPECT_GT(maintainer.ViewVersion(root), version_at_pin);
  maintainer.mutable_view(root).Unpin();

  // ...and the COW detour left the maintained state bit-identical to the
  // never-pinned reference, key for key.
  const CovarArenaView& got_root = maintainer.mutable_view(root);
  const CovarArenaView& want_root = reference.mutable_view(root);
  EXPECT_EQ(got_root.size(), want_root.size());
  want_root.ForEach([&](uint64_t key, const double* want) {
    const double* got = got_root.Find(key);
    ASSERT_NE(got, nullptr);
    for (size_t i = 0; i < got_root.stride(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "root key " << key << " entry " << i;
    }
  });
}

// K simultaneous pins at K different versions, each frozen mid-storm:
// every pin keeps reading its own state byte-exact while merges keep
// landing, and — the pin table's over-approximation guarantee — they ALL
// keep reading exactly until the LAST Unpin, no matter which logical pin
// each Unpin call is taken to release (Unpin is token-less: it drops the
// smallest floor, so the max floor, and with it every pin's protection,
// survives any release order of the first K-1 pins).
TEST_P(CovarArenaSnapshotSuite, SimultaneousPinsReadTheirOwnVersions) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 4);
  CovarArenaView view(kFeatures);
  std::map<uint64_t, std::vector<double>> mirror;
  constexpr int kPins = 5;
  std::vector<CovarViewSnapshot> snaps;
  std::vector<std::map<uint64_t, std::vector<double>>> at_pin;
  for (int p = 0; p < kPins; ++p) {
    for (int m = 0; m < 4; ++m) {
      ApplyRandomMerge(&view, &mirror, &rng,
                       1 + static_cast<int>(rng.Below(4)));
    }
    snaps.push_back(view.Pin());
    at_pin.push_back(mirror);
  }
  // Distinct versions: each pin really froze a different point.
  for (int p = 1; p < kPins; ++p) {
    EXPECT_GT(snaps[p].version, snaps[p - 1].version);
  }
  auto check_all = [&] {
    for (int p = 0; p < kPins; ++p) {
      ExpectSnapshotReadsExactly(view, snaps[p], at_pin[p], mirror);
    }
  };
  for (int m = 0; m < 8; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);
  check_all();
  // Release K-1 pins with a merge storm after each: every snapshot —
  // released or not — still reads exact while any pin remains.
  for (int released = 0; released < kPins - 1; ++released) {
    view.Unpin();
    for (int m = 0; m < 4; ++m) ApplyRandomMerge(&view, &mirror, &rng, 3);
    check_all();
  }
  view.Unpin();
  EXPECT_FALSE(view.pinned());
  // The live view never deviated from the mirror.
  for (const auto& [key, want] : mirror) {
    const double* got = view.Find(key);
    ASSERT_NE(got, nullptr);
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CovarArenaSnapshotSuite,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

// Concurrent watermark polling: the writer publishes merges while a
// reader thread polls Snapshot() — one atomic acquire, the only operation
// that is safe concurrently with merges — and the observed (version,
// slots) sequence must be monotone and pair-consistent (a version pins
// its slot count: the packed word is published atomically). Runs in the
// TSan leg via the stream-stress label.
TEST(CovarArenaSnapshotConcurrency, PublishedWatermarkIsMonotone) {
  CovarArenaView view(3);
  std::atomic<bool> done{false};
  size_t version_regressions = 0;
  size_t slot_regressions = 0;
  size_t pair_violations = 0;
  std::thread reader([&] {
    CovarViewSnapshot last;
    while (!done.load(std::memory_order_acquire)) {
      const CovarViewSnapshot s = view.Snapshot();
      if (s.version < last.version) version_regressions++;
      if (s.slots < last.slots) slot_regressions++;
      if (s.version == last.version && s.slots != last.slots) {
        pair_violations++;
      }
      last = s;
    }
  });
  Rng rng(123);
  for (int m = 0; m < 4000; ++m) {
    const int keys = 1 + static_cast<int>(rng.Below(4));
    for (int k = 0; k < keys; ++k) {
      double* span = view.BeginMergeKey(rng.Below(64));
      for (size_t i = 0; i < view.stride(); ++i) span[i] += rng.Uniform();
    }
    view.PublishMerge();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(version_regressions, 0u);
  EXPECT_EQ(slot_regressions, 0u);
  EXPECT_EQ(pair_violations, 0u);
  EXPECT_EQ(view.version(), 4000u);
}

// Concurrent pinners: a writer thread pins a snapshot every few merges
// and hands it to one of K reader threads; each reader verifies its
// snapshot byte-exact (under a reader/writer lock standing in for the
// scheduler's ViewGate — FindAt is only merge-safe with the writer
// excluded, COW preserves bytes not addresses) and then Unpins FROM ITS
// OWN THREAD, so unpin calls land in completion order, interleaved with
// the writer's Pin calls — the cross-thread surface of the pin table.
// Runs in the TSan leg via the stream-stress label.
TEST(CovarArenaSnapshotConcurrency, ConcurrentPinnedReadersUnderMergeStorm) {
  constexpr int kReaders = 3;
  constexpr int kRounds = 40;
  CovarArenaView view(3);
  std::shared_mutex merge_mu;  // writer: exclusive per merge; readers: shared
  struct Pinned {
    CovarViewSnapshot snap;
    std::map<uint64_t, std::vector<double>> expect;
  };
  std::mutex queue_mu;
  std::vector<Pinned> queue;
  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (true) {
        Pinned p;
        {
          std::lock_guard<std::mutex> lock(queue_mu);
          if (queue.empty()) {
            if (done.load(std::memory_order_acquire)) return;
            std::this_thread::yield();
            continue;
          }
          p = std::move(queue.back());
          queue.pop_back();
        }
        // Several verification passes so merges interleave between them.
        for (int pass = 0; pass < 3; ++pass) {
          std::shared_lock<std::shared_mutex> lock(merge_mu);
          for (const auto& [key, want] : p.expect) {
            const double* got = view.FindAt(key, p.snap);
            if (got == nullptr) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            for (size_t i = 0; i < want.size(); ++i) {
              if (got[i] != want[i]) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
        view.Unpin();  // any thread, completion order
      }
    });
  }
  Rng rng(987);
  std::map<uint64_t, std::vector<double>> mirror;
  for (int r = 0; r < kRounds; ++r) {
    {
      std::unique_lock<std::shared_mutex> lock(merge_mu);
      for (int m = 0; m < 3; ++m) {
        ApplyRandomMerge(&view, &mirror, &rng,
                         1 + static_cast<int>(rng.Below(4)));
      }
    }
    Pinned p;
    p.snap = view.Pin();  // writer-side, outside the merge lock is fine
    p.expect = mirror;
    std::lock_guard<std::mutex> lock(queue_mu);
    queue.push_back(std::move(p));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  // Readers drained the queue and unpinned everything they verified; any
  // leftovers (raced with shutdown) unpin here.
  for (const Pinned& p : queue) {
    (void)p;
    view.Unpin();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  // The live view matches the mirror after all pins released.
  for (const auto& [key, want] : mirror) {
    const double* got = view.Find(key);
    ASSERT_NE(got, nullptr);
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

}  // namespace
}  // namespace relborg
