// Unit tests for src/util: flat hash map, rng, packed keys, thread pool.
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/flat_hash_map.h"
#include "util/packed_key.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace relborg {
namespace {

TEST(PackedKeyTest, PackUnpackRoundTrip) {
  EXPECT_EQ(UnpackHigh(PackKey2(7, 11)), 7);
  EXPECT_EQ(UnpackLow(PackKey2(7, 11)), 11);
  EXPECT_EQ(PackKey1(42), 42u);
  EXPECT_EQ(UnpackLow(PackKey1(42)), 42);
}

TEST(PackedKeyTest, OrderMatters) {
  EXPECT_NE(PackKey2(1, 2), PackKey2(2, 1));
}

TEST(PackedKeyTest, SentinelUnreachable) {
  // Non-negative int32 halves can never produce the empty sentinel.
  EXPECT_NE(PackKey2(0x7FFFFFFF, 0x7FFFFFFF), kEmptyKey);
}

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<int> m;
  m[3] = 7;
  m[5] = 9;
  ASSERT_NE(m.Find(3), nullptr);
  EXPECT_EQ(*m.Find(3), 7);
  ASSERT_NE(m.Find(5), nullptr);
  EXPECT_EQ(*m.Find(5), 9);
  EXPECT_EQ(m.Find(4), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<double> m;
  EXPECT_EQ(m[10], 0.0);
  m[10] += 2.5;
  EXPECT_EQ(m[10], 2.5);
}

TEST(FlatHashMapTest, GrowsThroughManyInsertions) {
  FlatHashMap<uint64_t> m;
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) m[i * 2654435761u] = i;
  EXPECT_EQ(m.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t* v = m.Find(i * 2654435761u);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatHashMapTest, ForEachVisitsEveryEntryOnce) {
  FlatHashMap<int> m;
  for (int i = 1; i <= 100; ++i) m[i] = i;
  int64_t sum = 0;
  size_t visits = 0;
  m.ForEach([&](uint64_t k, int v) {
    sum += v;
    EXPECT_EQ(static_cast<int>(k), v);
    ++visits;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(sum, 5050);
}

TEST(FlatHashMapTest, ClearEmpties) {
  FlatHashMap<int> m;
  m[1] = 1;
  m[2] = 2;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(1), nullptr);
}

TEST(FlatHashMapTest, ReserveDoesNotLoseEntries) {
  FlatHashMap<int> m;
  for (int i = 0; i < 10; ++i) m[i + 1] = i;
  m.Reserve(100000);
  for (int i = 0; i < 10; ++i) {
    ASSERT_NE(m.Find(i + 1), nullptr);
    EXPECT_EQ(*m.Find(i + 1), i);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    int64_t r = rng.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0;
  double sum2 = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SkewedCategoryInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int32_t c = rng.SkewedCategory(10);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(TimerTest, Advances) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GE(t.Seconds(), 0.0);
}

TEST(HashKeyTest, DistinctForSmallInputs) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashKey(i));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace relborg
