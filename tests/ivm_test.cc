// Tests for the IVM layer: after any insert stream, all three maintenance
// strategies must agree exactly with recomputation from scratch; deletions
// (negative multiplicities, the ring's additive inverse) must cancel.
#include <cmath>

#include "core/covar_engine.h"
#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

void ExpectCovarNear(const CovarMatrix& got, const CovarMatrix& want,
                     double tol = 1e-6) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_NEAR(got.Moment(i, j), want.Moment(i, j),
                  tol * (1 + std::abs(want.Moment(i, j))))
          << "(" << i << "," << j << ")";
    }
  }
}

class IvmProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(IvmProperty, AllStrategiesMatchRecomputation) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/50);
  FeatureMap source_fm(db.query, db.features);

  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);
  HigherOrderIvm higher(&shadow, &fm);
  FirstOrderIvm first(&shadow, &fm);
  EXPECT_EQ(higher.num_aggregates(),
            CovarBatchSize(fm.num_features()));

  UpdateStreamOptions opts;
  opts.batch_size = 17;
  opts.seed = seed;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  ASSERT_FALSE(stream.empty());

  size_t applied = 0;
  for (const UpdateBatch& batch : stream) {
    size_t from = shadow.AppendRows(batch.node, batch.rows);
    fivm.ApplyBatch(batch.node, from, batch.rows.size());
    higher.ApplyBatch(batch.node, from, batch.rows.size());
    first.ApplyBatch(batch.node, from, batch.rows.size());
    ++applied;
    if (applied % 7 == 0 || applied == stream.size()) {
      // Recompute from scratch over the shadow relations.
      CovarMatrix want =
          ComputeCovarMatrix(shadow.tree(), fm);
      ExpectCovarNear(fivm.Current(), want);
      ExpectCovarNear(higher.Current(), want);
      ExpectCovarNear(first.Current(), want);
    }
  }
  // Fully loaded: must equal the covariance over the original database.
  CovarMatrix original = ComputeCovarMatrix(db.query.Root(0), source_fm);
  ExpectCovarNear(fivm.Current(), original);
}

TEST_P(IvmProperty, DeletionsCancelInsertions) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/30);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm fivm(&shadow, &fm);

  UpdateStreamOptions opts;
  opts.batch_size = 11;
  opts.seed = seed + 1;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  for (const UpdateBatch& batch : stream) {
    size_t from = shadow.AppendRows(batch.node, batch.rows);
    fivm.ApplyBatch(batch.node, from, batch.rows.size());
  }
  CovarMatrix loaded = fivm.Current();
  EXPECT_GE(loaded.count(), 0.0);

  // Delete a prefix of the fact stream (re-insert with multiplicity -1)
  // and compare against recomputation over the surviving fact rows.
  const UpdateBatch* fact_batch = nullptr;
  for (const UpdateBatch& b : stream) {
    if (b.node == 0) {
      fact_batch = &b;
      break;
    }
  }
  ASSERT_NE(fact_batch, nullptr);
  size_t from = shadow.AppendRows(0, fact_batch->rows, /*sign=*/-1.0);
  fivm.ApplyBatch(0, from, fact_batch->rows.size());

  // Reference: database without that batch's fact rows.
  Catalog ref_catalog;
  Relation* fact = ref_catalog.AddRelation("F", db.query.relation(0)->schema());
  {
    bool skip_applied = false;
    for (const UpdateBatch& b : stream) {
      if (b.node != 0) continue;
      if (!skip_applied && &b == fact_batch) {
        skip_applied = true;
        continue;
      }
      for (const auto& row : b.rows) fact->AppendRow(row);
    }
  }
  JoinQuery ref_query;
  ref_query.AddRelation(fact);
  for (int v = 1; v < db.query.num_relations(); ++v) {
    ref_query.AddRelation(db.query.relation(v));
  }
  for (const JoinEdge& e : db.query.edges()) {
    std::vector<std::string> names;
    for (int attr : e.attrs_a) {
      names.push_back(db.query.relation(e.a)->schema().attr(attr).name);
    }
    ref_query.AddJoin(e.a == 0 ? "F" : db.query.relation(e.a)->name(),
                      e.b == 0 ? "F" : db.query.relation(e.b)->name(), names);
  }
  FeatureMap ref_fm(ref_query, [&] {
    std::vector<FeatureRef> feats = db.features;
    for (auto& f : feats) {
      if (f.relation == db.query.relation(0)->name()) f.relation = "F";
    }
    return feats;
  }());
  CovarMatrix want = ComputeCovarMatrix(ref_query.Root(0), ref_fm);
  ExpectCovarNear(fivm.Current(), want);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, IvmProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

TEST(UpdateStreamTest, CoversAllRows) {
  RandomDb db = MakeRandomDb(9, Topology::kStar);
  UpdateStreamOptions opts;
  opts.batch_size = 13;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  size_t total = 0;
  for (int v = 0; v < db.query.num_relations(); ++v) {
    total += db.query.relation(v)->num_rows();
  }
  EXPECT_EQ(StreamRowCount(stream), total);
  for (const UpdateBatch& b : stream) {
    EXPECT_LE(b.rows.size(), opts.batch_size);
    EXPECT_FALSE(b.rows.empty());
  }
}

TEST(UpdateStreamTest, ProportionalIsDeterministicUnderFixedSeed) {
  RandomDb db = MakeRandomDb(11, Topology::kBushy);
  UpdateStreamOptions opts;
  opts.batch_size = 7;
  opts.seed = 11;
  opts.order = StreamOrder::kProportional;
  std::vector<UpdateBatch> a = BuildInsertStream(db.query, opts);
  std::vector<UpdateBatch> b = BuildInsertStream(db.query, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "batch " << i;
    EXPECT_EQ(a[i].sign, b[i].sign);
    ASSERT_EQ(a[i].rows.size(), b[i].rows.size()) << "batch " << i;
    for (size_t r = 0; r < a[i].rows.size(); ++r) {
      EXPECT_EQ(a[i].rows[r], b[i].rows[r]) << "batch " << i << " row " << r;
    }
  }
}

TEST(UpdateStreamTest, ProportionalExhaustsEveryRelation) {
  RandomDb db = MakeRandomDb(13, Topology::kStar);
  UpdateStreamOptions opts;
  opts.batch_size = 9;
  opts.seed = 13;
  opts.order = StreamOrder::kProportional;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, opts);
  // StreamRowCount round-trip: the deal covers every source row exactly
  // once, per relation.
  std::vector<size_t> dealt(db.query.num_relations(), 0);
  for (const UpdateBatch& b : stream) {
    ASSERT_GE(b.node, 0);
    ASSERT_LT(b.node, db.query.num_relations());
    EXPECT_FALSE(b.rows.empty());
    EXPECT_LE(b.rows.size(), opts.batch_size);
    dealt[b.node] += b.rows.size();
  }
  size_t total = 0;
  for (int v = 0; v < db.query.num_relations(); ++v) {
    EXPECT_EQ(dealt[v], db.query.relation(v)->num_rows()) << "node " << v;
    total += dealt[v];
  }
  EXPECT_EQ(StreamRowCount(stream), total);
}

TEST(UpdateStreamTest, MixedStreamDeletesOnlyInsertedRows) {
  RandomDb db = MakeRandomDb(21, Topology::kChain);
  MixedStreamOptions opts;
  opts.insert.batch_size = 8;
  opts.insert.seed = 21;
  opts.delete_probability = 0.5;
  std::vector<UpdateBatch> stream = BuildMixedStream(db.query, opts);
  // Replaying the stream in order, every deleted row must currently be
  // live (inserted earlier, not deleted yet): multiplicities stay in
  // {0, +1}. Deletion is oldest-first, so a per-node FIFO suffices.
  std::vector<std::vector<std::vector<double>>> live(db.query.num_relations());
  std::vector<size_t> consumed(db.query.num_relations(), 0);
  bool saw_delete = false;
  size_t inserted_rows = 0;
  for (const UpdateBatch& b : stream) {
    if (b.sign > 0) {
      inserted_rows += b.rows.size();
      for (const auto& row : b.rows) live[b.node].push_back(row);
      continue;
    }
    saw_delete = true;
    for (const auto& row : b.rows) {
      ASSERT_LT(consumed[b.node], live[b.node].size());
      EXPECT_EQ(row, live[b.node][consumed[b.node]++]);
    }
  }
  EXPECT_TRUE(saw_delete);
  // The insert deal itself is unchanged by the interleaved deletes.
  size_t total = 0;
  for (int v = 0; v < db.query.num_relations(); ++v) {
    total += db.query.relation(v)->num_rows();
  }
  EXPECT_EQ(inserted_rows, total);
}

TEST(UpdateStreamTest, MixedStreamWithZeroProbabilityIsInsertStream) {
  RandomDb db = MakeRandomDb(5, Topology::kStar);
  MixedStreamOptions opts;
  opts.insert.batch_size = 10;
  opts.insert.seed = 5;
  opts.delete_probability = 0.0;
  std::vector<UpdateBatch> mixed = BuildMixedStream(db.query, opts);
  std::vector<UpdateBatch> inserts = BuildInsertStream(db.query, opts.insert);
  ASSERT_EQ(mixed.size(), inserts.size());
  for (size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].node, inserts[i].node);
    EXPECT_EQ(mixed[i].sign, 1.0);
    EXPECT_EQ(mixed[i].rows, inserts[i].rows);
  }
}

}  // namespace
}  // namespace relborg
