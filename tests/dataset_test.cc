// Tests for the synthetic dataset generators: schemas, join shapes,
// determinism, and end-to-end usability with the engines.
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "query/width.h"

namespace relborg {
namespace {

GenOptions Tiny() {
  GenOptions o;
  o.scale = 0.001;
  return o;
}

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, GeneratesUsableDataset) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  EXPECT_EQ(ds.name, GetParam());
  EXPECT_GE(ds.query.num_relations(), 3);
  EXPECT_GT(ds.catalog->TotalRows(), 0u);
  // Fact exists and is the largest relation.
  const Relation* fact = ds.catalog->Get(ds.fact);
  for (int v = 0; v < ds.query.num_relations(); ++v) {
    EXPECT_LE(ds.query.relation(v)->num_rows(), fact->num_rows());
  }
  // All features resolve, response is among them and last.
  FeatureMap fm(ds.query, ds.features);
  EXPECT_GE(fm.num_features(), 5);
  EXPECT_EQ(ds.features.back().relation, ds.response.relation);
  EXPECT_EQ(ds.features.back().attr, ds.response.attr);
  // Categorical attributes resolve with the right type.
  for (const FeatureRef& c : ds.categoricals) {
    const Relation* rel = ds.catalog->Get(c.relation);
    int attr = rel->schema().MustIndexOf(c.attr);
    EXPECT_EQ(rel->schema().attr(attr).type, AttrType::kCategorical);
  }
}

TEST_P(DatasetTest, JoinIsAcyclicTreeAndNonEmpty) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  // The join graph is a tree by construction (Root() checks edge count);
  // the query hypergraph is alpha-acyclic.
  Hypergraph hg;
  for (int v = 0; v < ds.query.num_relations(); ++v) {
    const Relation* rel = ds.query.relation(v);
    std::vector<std::string> attrs;
    for (int a = 0; a < rel->schema().num_attrs(); ++a) {
      attrs.push_back(rel->schema().attr(a).name);
    }
    hg.AddEdge(attrs);
  }
  EXPECT_TRUE(IsAlphaAcyclic(hg));

  FeatureMap fm(ds.query, ds.features);
  CovarMatrix m = ComputeCovarMatrix(ds.RootAtFact(), fm);
  EXPECT_GT(m.count(), 0.0);
  // Response has signal: nonzero variance.
  int y = fm.num_features() - 1;
  EXPECT_GT(m.Covariance(y, y), 0.0);
}

TEST_P(DatasetTest, DeterministicForFixedSeed) {
  Dataset a = MakeDataset(GetParam(), Tiny());
  Dataset b = MakeDataset(GetParam(), Tiny());
  ASSERT_EQ(a.catalog->TotalRows(), b.catalog->TotalRows());
  const Relation* fa = a.catalog->Get(a.fact);
  const Relation* fb = b.catalog->Get(b.fact);
  ASSERT_EQ(fa->num_rows(), fb->num_rows());
  for (size_t r = 0; r < std::min<size_t>(fa->num_rows(), 100); ++r) {
    for (int attr = 0; attr < fa->num_attrs(); ++attr) {
      EXPECT_DOUBLE_EQ(fa->AsDouble(r, attr), fb->AsDouble(r, attr));
    }
  }
}

TEST_P(DatasetTest, ScaleGrowsRows) {
  GenOptions small = Tiny();
  GenOptions larger = Tiny();
  larger.scale = 0.004;
  Dataset a = MakeDataset(GetParam(), small);
  Dataset b = MakeDataset(GetParam(), larger);
  EXPECT_GT(b.catalog->Get(b.fact)->num_rows(),
            a.catalog->Get(a.fact)->num_rows());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::ValuesIn(DatasetNames()));

TEST(DatasetRegistryTest, Names) {
  EXPECT_EQ(DatasetNames().size(), 4u);
  EXPECT_EQ(DatasetNames()[0], "retailer");
}

}  // namespace
}  // namespace relborg
