// End-to-end integration tests: miniature versions of the paper's
// experiments over the synthetic datasets, asserting the qualitative claims
// each figure makes (the bench/ harnesses print the full tables).
#include <cmath>

#include "baseline/materializer.h"
#include "baseline/query_at_a_time.h"
#include "baseline/sgd_learner.h"
#include "core/covar_compressed.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/linear_regression.h"
#include "ml/model_selection.h"
#include "ml/mutual_information.h"
#include "ml/naive_bayes.h"
#include "ml/pca.h"

namespace relborg {
namespace {

GenOptions Tiny() {
  GenOptions o;
  o.scale = 0.003;
  return o;
}

class DatasetIntegration : public ::testing::TestWithParam<std::string> {};

// Fig. 3 claim: factorized training reaches at least the accuracy of
// 1-epoch SGD over the materialized matrix, and the sufficient statistics
// are orders of magnitude smaller than the data matrix.
TEST_P(DatasetIntegration, FactorizedTrainingMatchesOrBeatsSgd) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  const int response = fm.num_features() - 1;

  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  ASSERT_GT(covar.count(), 100);
  LinearModel aware = TrainRidgeGd(covar, response);

  DataMatrix matrix = MaterializeJoin(tree, fm);
  SgdOptions sgd;
  sgd.batch_size = 5000;
  LinearModel agnostic = TrainSgd(matrix, response, sgd);

  double rmse_aware = Rmse(aware, matrix, response);
  double rmse_agnostic = Rmse(agnostic, matrix, response);
  EXPECT_LE(rmse_aware, rmse_agnostic * 1.02);

  size_t stats_bytes =
      (1 + covar.payload().sum.size() + covar.payload().quad.size()) *
      sizeof(double);
  EXPECT_LT(stats_bytes * 50, matrix.ByteSize());
}

// Fig. 4 left claim: shared evaluation and query-at-a-time agree exactly.
TEST_P(DatasetIntegration, SharedAndQueryAtATimeAgree) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();
  CovarMatrix shared = ComputeCovarMatrix(tree, fm);
  CovarMatrix compressed = ComputeCovarMatrixCompressed(tree, fm);
  DataMatrix matrix = MaterializeJoin(tree, fm);
  CovarMatrix baseline = CovarByQueryAtATime(matrix);
  const int n = fm.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      double want = baseline.Moment(i, j);
      EXPECT_NEAR(shared.Moment(i, j), want, 1e-6 * (1 + std::abs(want)));
      EXPECT_NEAR(compressed.Moment(i, j), want,
                  1e-6 * (1 + std::abs(want)));
    }
  }
}

// Fig. 4 right claim: all three IVM strategies converge to the same state
// as recomputation after streaming the whole dataset.
TEST_P(DatasetIntegration, IvmStrategiesConvergeOnRealSchemas) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  // Few features keep higher-order's quadratic fan-out quick in this test.
  std::vector<FeatureRef> feats(ds.features.end() - 3, ds.features.end());
  ShadowDb shadow(ds.query, ds.query.IndexOf(ds.fact));
  FeatureMap fm(shadow.query(), feats);
  CovarFivm fivm(&shadow, &fm);
  HigherOrderIvm higher(&shadow, &fm);
  FirstOrderIvm first(&shadow, &fm);

  UpdateStreamOptions opts;
  opts.batch_size = 500;
  std::vector<UpdateBatch> stream = BuildInsertStream(ds.query, opts);
  for (const UpdateBatch& batch : stream) {
    size_t from = shadow.AppendRows(batch.node, batch.rows);
    fivm.ApplyBatch(batch.node, from, batch.rows.size());
    higher.ApplyBatch(batch.node, from, batch.rows.size());
    first.ApplyBatch(batch.node, from, batch.rows.size());
  }
  CovarMatrix want = ComputeCovarMatrix(shadow.tree(), fm);
  const int n = fm.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      double w = want.Moment(i, j);
      EXPECT_NEAR(fivm.Current().Moment(i, j), w, 1e-6 * (1 + std::abs(w)));
      EXPECT_NEAR(higher.Current().Moment(i, j), w,
                  1e-6 * (1 + std::abs(w)));
      EXPECT_NEAR(first.Current().Moment(i, j), w, 1e-6 * (1 + std::abs(w)));
    }
  }
}

// Sec. 1.5 claim: model selection works off one covariance matrix and
// improves monotonically.
TEST_P(DatasetIntegration, ModelSelectionRunsOffOneMatrix) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  FeatureMap fm(ds.query, ds.features);
  CovarMatrix covar = ComputeCovarMatrix(ds.RootAtFact(), fm);
  ModelSelectionOptions opts;
  opts.max_features = 4;
  ModelSelectionResult sel =
      ForwardSelect(covar, fm.num_features() - 1, opts);
  ASSERT_GE(sel.steps.size(), 1u);
  for (size_t i = 1; i < sel.steps.size(); ++i) {
    EXPECT_LE(sel.steps[i].mse, sel.steps[i - 1].mse + 1e-9);
  }
}

// The wider ML layer runs end-to-end on every dataset.
TEST_P(DatasetIntegration, MlLayerSmoke) {
  Dataset ds = MakeDataset(GetParam(), Tiny());
  FeatureMap fm(ds.query, ds.features);
  RootedTree tree = ds.RootAtFact();

  PcaResult pca = ComputePca(ComputeCovarMatrix(tree, fm), 2);
  EXPECT_GE(pca.components.size(), 1u);

  MutualInformationResult mi =
      ComputeMutualInformation(tree, ds.categoricals);
  EXPECT_GE(mi.aggregates, ds.categoricals.size());
  std::vector<ChowLiuEdge> cl = BuildChowLiuTree(mi);
  EXPECT_EQ(cl.size(), ds.categoricals.size() - 1);

  KMeansOptions km;
  km.k = 3;
  km.per_relation_k = 4;
  KMeansResult clusters = RelationalKMeans(tree, fm, km);
  EXPECT_EQ(clusters.centroids.size(), 3u);

  // Decision tree on two continuous features, shallow.
  std::vector<TreeFeature> tf{
      {ds.features[0].relation, ds.features[0].attr, false},
      {ds.features[1].relation, ds.features[1].attr, false}};
  DecisionTreeOptions topts;
  topts.max_depth = 2;
  topts.thresholds_per_feature = 4;
  DecisionTree tree_model =
      DecisionTree::TrainRegression(ds.query, ds.response, tf, topts);
  EXPECT_GE(tree_model.num_nodes(), 1);

  // Naive Bayes on the first categorical as class, second as predictor.
  if (ds.categoricals.size() >= 2) {
    NaiveBayesModel nb = NaiveBayesModel::Train(
        tree, ds.categoricals[0], {ds.categoricals[1]});
    EXPECT_GE(nb.num_classes(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetIntegration,
                         ::testing::ValuesIn(DatasetNames()));

}  // namespace
}  // namespace relborg
