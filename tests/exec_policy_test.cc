// Thread-sweep determinism suite for the two-level parallel execution
// mode (core/exec_policy.h): ExecPolicy{1}, ExecPolicy{2} and
// ExecPolicy{4} must produce BIT-IDENTICAL covariance, group-by,
// decision-node and IVM results — the partitioned plan's accumulation
// orders depend only on the data, never on the thread count. The sweep
// uses a small partition grain so the random databases actually split
// into many partitions.
//
// Also covers the ExecPolicy/ExecContext primitives themselves:
// partition-bound arithmetic, view-group construction, and the
// RELBORG_THREADS parsing.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/decision_node_engine.h"
#include "core/exec_policy.h"
#include "core/feature_map.h"
#include "core/groupby_engine.h"
#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/shadow_db.h"
#include "query/join_tree.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::ReferenceCovar;
using testing::Topology;

// Sweep policy: tiny grain so even the ~300-row test relations split into
// many partitions. The grain is part of the policy, not derived from the
// thread count, so every sweep entry sees the same partition structure.
ExecPolicy SweepPolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;
  return policy;
}

constexpr int kSweep[] = {1, 2, 4};

// --- ExecPolicy / ExecContext primitives --------------------------------

TEST(ExecPolicyTest, NumPartitionsIgnoresThreadCount) {
  for (size_t rows : {0ul, 1ul, 15ul, 16ul, 17ul, 1000ul, 1000000ul}) {
    size_t expected = SweepPolicy(1).NumPartitions(rows);
    for (int threads : {2, 3, 4, 8}) {
      EXPECT_EQ(SweepPolicy(threads).NumPartitions(rows), expected) << rows;
    }
  }
  // Disabled policy: always a single (full-range) partition.
  EXPECT_EQ(ExecPolicy{}.NumPartitions(1000000), 1u);
  // The partition cap holds.
  EXPECT_LE(SweepPolicy(2).NumPartitions(1u << 30),
            SweepPolicy(2).max_partitions);
}

TEST(ExecPolicyTest, PartitionBoundsAreContiguousAndExhaustive) {
  for (size_t rows : {1ul, 7ul, 64ul, 1001ul}) {
    for (size_t parts : {1ul, 2ul, 7ul, 64ul}) {
      size_t expected_begin = 0;
      for (size_t p = 0; p < parts; ++p) {
        auto [begin, end] = ExecContext::PartitionBounds(rows, parts, p);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, rows);
    }
  }
}

TEST(ExecPolicyTest, ParallelForCoversAllIndicesForEveryThreadCount) {
  for (int threads : kSweep) {
    ExecContext ctx(SweepPolicy(threads));
    std::vector<std::atomic<int>> hits(257);
    ctx.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ExecPolicyTest, FromEnvParsesValidAndRejectsInvalid) {
  ::setenv("RELBORG_THREADS", "3", 1);
  EXPECT_EQ(ExecPolicy::FromEnv().threads, 3);
  ::setenv("RELBORG_THREADS", "not-a-number", 1);
  EXPECT_GE(ExecPolicy::FromEnv().threads, 1);  // falls back with a warning
  ::setenv("RELBORG_THREADS", "0", 1);
  EXPECT_GE(ExecPolicy::FromEnv().threads, 1);
  ::unsetenv("RELBORG_THREADS");
  EXPECT_GE(ExecPolicy::FromEnv().threads, 1);
}

TEST(IndependentViewGroupsTest, GroupsOrderDeepestFirstRootLast) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  RootedTree tree = query.Root("Orders");
  std::vector<std::vector<int>> groups = IndependentViewGroups(tree);
  // Orders - Dish - Items is a chain: three singleton groups, root last.
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& group : groups) EXPECT_EQ(group.size(), 1u);
  EXPECT_EQ(groups.back()[0], tree.root());
  // Every node's parent appears in a strictly later group.
  std::vector<int> group_of(tree.num_nodes(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int v : groups[g]) group_of[v] = static_cast<int>(g);
  }
  for (int v = 0; v < tree.num_nodes(); ++v) {
    int parent = tree.node(v).parent;
    if (parent >= 0) {
      EXPECT_LT(group_of[v], group_of[parent]);
    }
  }
}

// --- Thread-sweep property suites ---------------------------------------

class ThreadSweepProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {
 protected:
  // Larger than the default fixture so scans really partition (grain 16).
  static constexpr int kFactRows = 300;
};

TEST_P(ThreadSweepProperty, CovarBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, kFactRows);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  const int n = fm.num_features();

  CovarEngineOptions serial;
  serial.mode = ExecMode::kSharedParallel;
  serial.policy = SweepPolicy(1);
  CovarMatrix want = ComputeCovarMatrix(tree, fm, {}, serial);
  for (int threads : kSweep) {
    CovarEngineOptions options;
    options.mode = ExecMode::kSharedParallel;
    options.policy = SweepPolicy(threads);
    CovarMatrix got = ComputeCovarMatrix(tree, fm, {}, options);
    for (int i = 0; i <= n; ++i) {
      for (int j = i; j <= n; ++j) {
        EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
            << "threads=" << threads << " i=" << i << " j=" << j;
      }
    }
  }
  // And the partitioned plan agrees with the legacy serial engine.
  CovarMatrix legacy = ComputeCovarMatrix(tree, fm);
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_NEAR(want.Moment(i, j), legacy.Moment(i, j),
                  1e-9 * (1 + std::abs(legacy.Moment(i, j))));
    }
  }
}

// Sorted (key, value) snapshot for exact map comparison.
std::vector<std::pair<uint64_t, double>> Snapshot(const GroupByResult& map) {
  std::vector<std::pair<uint64_t, double>> entries;
  map.ForEach([&](uint64_t key, const double& value) {
    entries.push_back({key, value});
  });
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST_P(ThreadSweepProperty, GroupByBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, kFactRows);
  RootedTree tree = db.query.Root(0);

  std::vector<GroupByAggregate> aggs;
  aggs.push_back(CountGroupedBy(db.query, "R0", "k1"));
  aggs.push_back(SumGroupedBy(db.query, "R0", "a", "R0", "k1"));

  std::vector<std::vector<std::pair<uint64_t, double>>> want;
  for (const GroupByAggregate& agg : aggs) {
    want.push_back(Snapshot(ComputeGroupBy(tree, agg, {}, SweepPolicy(1))));
  }
  for (int threads : kSweep) {
    for (size_t a = 0; a < aggs.size(); ++a) {
      std::vector<std::pair<uint64_t, double>> got =
          Snapshot(ComputeGroupBy(tree, aggs[a], {}, SweepPolicy(threads)));
      ASSERT_EQ(got.size(), want[a].size()) << "threads=" << threads;
      for (size_t e = 0; e < got.size(); ++e) {
        EXPECT_EQ(got[e].first, want[a][e].first);
        EXPECT_EQ(got[e].second, want[a][e].second)
            << "threads=" << threads << " agg=" << a << " entry=" << e;
      }
    }
    // The batched evaluation must sweep identically too.
    std::vector<GroupByResult> batch =
        ComputeGroupByBatch(tree, aggs, {}, SweepPolicy(threads));
    for (size_t a = 0; a < aggs.size(); ++a) {
      std::vector<std::pair<uint64_t, double>> got = Snapshot(batch[a]);
      ASSERT_EQ(got.size(), want[a].size());
      for (size_t e = 0; e < got.size(); ++e) {
        EXPECT_EQ(got[e].second, want[a][e].second)
            << "batch threads=" << threads << " agg=" << a;
      }
    }
  }
}

TEST_P(ThreadSweepProperty, DecisionNodeBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, kFactRows);

  // Candidates on every feature-owning relation: two thresholds each, so
  // several roots exercise the outer (view-group) level.
  std::vector<SplitCandidate> candidates;
  for (size_t f = 0; f + 1 < db.features.size(); ++f) {
    int node = db.query.IndexOf(db.features[f].relation);
    int attr = db.query.relation(node)->schema().MustIndexOf(
        db.features[f].attr);
    for (double t : {-0.5, 0.5}) {
      candidates.push_back({node, Predicate::Ge(attr, t)});
    }
  }
  int response_node = db.query.IndexOf(db.features.back().relation);
  int response_attr = db.query.relation(response_node)
                          ->schema()
                          .MustIndexOf(db.features.back().attr);

  std::vector<SplitStats> want = ComputeSplitStats(
      db.query, response_node, response_attr, {}, candidates, SweepPolicy(1));
  for (int threads : kSweep) {
    std::vector<SplitStats> got =
        ComputeSplitStats(db.query, response_node, response_attr, {},
                          candidates, SweepPolicy(threads));
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].count, want[i].count) << "threads=" << threads;
      EXPECT_EQ(got[i].sum, want[i].sum) << "threads=" << threads;
      EXPECT_EQ(got[i].sum_sq, want[i].sum_sq) << "threads=" << threads;
    }
  }
  // The legacy (policy-less) engine agrees.
  std::vector<SplitStats> legacy = ComputeSplitStats(
      db.query, response_node, response_attr, {}, candidates);
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_NEAR(want[i].count, legacy[i].count, 1e-9 * (1 + legacy[i].count));
    EXPECT_NEAR(want[i].sum, legacy[i].sum,
                1e-9 * (1 + std::abs(legacy[i].sum)));
  }

  // Classification variant: categorical response (the fact's first key).
  std::vector<FlatHashMap<double>> want_counts = ComputeSplitClassCounts(
      db.query, 0, 0, {}, candidates, SweepPolicy(1));
  for (int threads : kSweep) {
    std::vector<FlatHashMap<double>> got_counts = ComputeSplitClassCounts(
        db.query, 0, 0, {}, candidates, SweepPolicy(threads));
    ASSERT_EQ(got_counts.size(), want_counts.size());
    for (size_t i = 0; i < got_counts.size(); ++i) {
      std::vector<std::pair<uint64_t, double>> got = Snapshot(got_counts[i]);
      std::vector<std::pair<uint64_t, double>> want_s =
          Snapshot(want_counts[i]);
      ASSERT_EQ(got.size(), want_s.size());
      for (size_t e = 0; e < got.size(); ++e) {
        EXPECT_EQ(got[e].first, want_s[e].first);
        EXPECT_EQ(got[e].second, want_s[e].second) << "threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, ThreadSweepProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

// --- IVM sweep (small tier: per-seed cost dominated by strategy runs) ---

class IvmThreadSweepProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

// Replays the whole random database into a ShadowDb as insert batches,
// applying each batch through `strategy`.
template <typename Strategy>
CovarMatrix Replay(const RandomDb& db, Strategy* strategy, ShadowDb* shadow) {
  const int num_nodes = shadow->tree().num_nodes();
  const size_t kBatch = 37;  // > grain 16, so batch deltas partition too
  for (int v = 0; v < num_nodes; ++v) {
    const Relation& rel = *db.query.relation(v);
    for (size_t first = 0; first < rel.num_rows(); first += kBatch) {
      size_t count = std::min(kBatch, rel.num_rows() - first);
      std::vector<std::vector<double>> rows;
      for (size_t r = first; r < first + count; ++r) {
        std::vector<double> row(rel.num_attrs());
        for (int a = 0; a < rel.num_attrs(); ++a) row[a] = rel.AsDouble(r, a);
        rows.push_back(std::move(row));
      }
      size_t shadow_first = shadow->AppendRows(v, rows);
      strategy->ApplyBatch(v, shadow_first, rows.size());
    }
  }
  return strategy->Current();
}

template <typename Strategy>
void ExpectIvmSweepIdentical(uint64_t seed, Topology topology) {
  RandomDb db = MakeRandomDb(seed, topology, 200);
  std::vector<CovarMatrix> results;
  for (int threads : kSweep) {
    ShadowDb shadow(db.query, 0);
    FeatureMap fm(shadow.query(), db.features);
    Strategy strategy(&shadow, &fm, SweepPolicy(threads));
    results.push_back(Replay(db, &strategy, &shadow));
  }
  const int n = results[0].num_features();
  for (size_t s = 1; s < results.size(); ++s) {
    for (int i = 0; i <= n; ++i) {
      for (int j = i; j <= n; ++j) {
        EXPECT_EQ(results[s].Moment(i, j), results[0].Moment(i, j))
            << "threads=" << kSweep[s] << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST_P(IvmThreadSweepProperty, FivmBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  ExpectIvmSweepIdentical<CovarFivm>(seed, topology);
}

TEST_P(IvmThreadSweepProperty, HigherOrderBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  ExpectIvmSweepIdentical<HigherOrderIvm>(seed, topology);
}

TEST_P(IvmThreadSweepProperty, FirstOrderBitIdenticalAcrossThreads) {
  auto [seed, topology] = GetParam();
  ExpectIvmSweepIdentical<FirstOrderIvm>(seed, topology);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, IvmThreadSweepProperty,
    ::testing::Combine(
        ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
        ::testing::Values(Topology::kStar, Topology::kChain,
                          Topology::kBushy)));

// The partitioned plan is not just self-consistent: it matches the
// materialized reference.
TEST(ThreadSweepReferenceTest, PartitionedPlanMatchesMaterializedJoin) {
  RandomDb db = MakeRandomDb(7, Topology::kBushy, 300);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  DataMatrix matrix = MaterializeJoin(tree, fm);
  CovarPayload ref = ReferenceCovar(matrix);
  CovarEngineOptions options;
  options.mode = ExecMode::kSharedParallel;
  options.policy = SweepPolicy(4);
  CovarMatrix m = ComputeCovarMatrix(tree, fm, {}, options);
  const int n = fm.num_features();
  ASSERT_NEAR(m.count(), ref.count, 1e-6 * (1 + std::abs(ref.count)));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double want = ref.quad[UpperTriIndex(n, i, j)];
      EXPECT_NEAR(m.Moment(i, j), want, 1e-6 * (1 + std::abs(want)));
    }
  }
}

}  // namespace
}  // namespace relborg
