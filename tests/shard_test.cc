// Differential suite for key-range sharded pipelines (src/shard/):
//
//   * The tentpole property: a ShardedStreamScheduler's merged aggregate is
//     BIT-IDENTICAL to the unsharded StreamScheduler run over the same
//     mixed stream — for shard counts {1, 2, 4, 8}, all three IVM
//     strategies, and every (seed, topology) of the broad property tier.
//     The fixtures use integer-valued features (test_util.h's
//     integer_values knob): sharding re-associates the ring sums across
//     shards, which is exact in IEEE double only when every partial sum is
//     exactly representable — with integer data, bitwise equality is a
//     theorem, not luck.
//   * ShardMap unit properties: deterministic total routing, range
//     monotonicity, beyond-domain clamping, malformed-row safety.
//   * Merged serving: concurrent ShardedSnapshotServer reads against a
//     per-prefix serial oracle — every merged cut equals the unsharded
//     state after exactly that many source batches.
//   * Restore: per-shard checkpoints resumed into a fresh fleet and
//     replayed equal the straight-through run, including a shard whose
//     checkpoint file was deleted (fresh restart mid-fleet).
//   * Quarantine routing: a poison batch is rejected by exactly the shards
//     it routed to, tagged with their indices, and the fleet's final state
//     ignores it.
//
// Runs under TSan in CI (reader threads hammer merged begins against N
// concurrent pipelines' applier/committer/compute threads).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ring/covar_arena.h"
#include "serve/sharded_snapshot_server.h"
#include "shard/shard_map.h"
#include "shard/sharded_stream_scheduler.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

using GroupByResult = std::vector<std::pair<uint64_t, double>>;

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;
  return policy;
}

// Small epochs so modest streams cross many per-shard epoch boundaries
// (the interesting regime: shards seal epochs at different global points).
StreamOptions SmallEpochOptions() {
  StreamOptions options;
  options.epoch_rows = 96;
  options.epoch_batches = 5;
  return options;
}

std::vector<UpdateBatch> MakeMixed(const RandomDb& db, uint64_t seed) {
  MixedStreamOptions opts;
  opts.insert.batch_size = 17;
  opts.insert.seed = seed;
  opts.delete_probability = 0.35;
  return BuildMixedStream(db.query, opts);
}

void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

void ExpectPayloadExact(const CovarPayload& got, const CovarPayload& want) {
  EXPECT_EQ(got.count, want.count);
  ASSERT_EQ(got.sum.size(), want.sum.size());
  ASSERT_EQ(got.quad.size(), want.quad.size());
  for (size_t i = 0; i < want.sum.size(); ++i) {
    EXPECT_EQ(got.sum[i], want.sum[i]) << "sum[" << i << "]";
  }
  for (size_t i = 0; i < want.quad.size(); ++i) {
    EXPECT_EQ(got.quad[i], want.quad[i]) << "quad[" << i << "]";
  }
}

// The unsharded oracle: one StreamScheduler over the whole stream.
template <typename Strategy>
CovarMatrix UnshardedResult(const RandomDb& db, const FeatureMap& fm,
                            const std::vector<UpdateBatch>& stream,
                            int threads) {
  ShadowDb shadow(db.query, 0);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  StreamScheduler<Strategy> scheduler(&shadow, &strategy,
                                      SmallEpochOptions());
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  EXPECT_TRUE(scheduler.Finish().ok());
  return strategy.Current();
}

// ---------------------------------------------------------------------------
// ShardMap unit properties.

TEST(ShardMapTest, RoutingIsDeterministicTotalAndMonotonic) {
  RandomDb db = MakeRandomDb(7, Topology::kStar, /*fact_rows=*/60);
  const ShardMap map = ShardMap::ForQuery(db.query, /*root=*/0, 4);
  EXPECT_EQ(map.num_shards(), 4);
  EXPECT_EQ(map.root_node(), 0);
  ASSERT_FALSE(map.key_attrs().empty());
  const Relation& root = *db.query.relation(0);
  int last_shard = -1;
  std::vector<int> hits(4, 0);
  for (uint64_t key = 0; key < map.domain(); ++key) {
    const int s = map.ShardOfKey(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_GE(s, last_shard) << "key ranges must be contiguous";
    last_shard = s;
    ++hits[static_cast<size_t>(s)];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(hits[static_cast<size_t>(s)], 0) << "empty shard " << s;
  }
  for (size_t r = 0; r < root.num_rows(); ++r) {
    std::vector<double> row(static_cast<size_t>(root.num_attrs()));
    for (int a = 0; a < root.num_attrs(); ++a) row[a] = root.AsDouble(r, a);
    EXPECT_EQ(map.ShardOfRow(row), map.ShardOfRow(row));  // pure function
    EXPECT_EQ(map.ShardOfRow(row), map.ShardOfKey(map.KeyOfRow(row)));
  }
}

TEST(ShardMapTest, TrivialAndClampedRouting) {
  const ShardMap trivial;
  EXPECT_EQ(trivial.num_shards(), 1);
  EXPECT_EQ(trivial.ShardOfKey(12345), 0);

  const ShardMap map(/*root_node=*/0, /*key_attrs=*/{0}, /*domain=*/10,
                     /*num_shards=*/4);
  EXPECT_EQ(map.ShardOfKey(0), 0);
  EXPECT_EQ(map.ShardOfKey(9), 3);
  // Keys the split never saw clamp to the last shard — still pure.
  EXPECT_EQ(map.ShardOfKey(10), 3);
  EXPECT_EQ(map.ShardOfKey(std::numeric_limits<uint64_t>::max()), 3);
}

TEST(ShardMapTest, MalformedRowsRouteDeterministically) {
  const ShardMap map(/*root_node=*/0, /*key_attrs=*/{0, 1}, /*domain=*/64,
                     /*num_shards=*/4);
  // Too-short rows and non-finite key values must not crash routing; they
  // key to kUnitKey (shard 0) and are left to ingress validation.
  EXPECT_EQ(map.ShardOfRow({}), 0);
  EXPECT_EQ(map.ShardOfRow({3.0}), 0);
  EXPECT_EQ(map.ShardOfRow({std::nan(""), 1.0}), 0);
  EXPECT_EQ(map.ShardOfRow({1.0, std::numeric_limits<double>::infinity()}),
            0);
}

// ---------------------------------------------------------------------------
// The tentpole differential: merged sharded state == unsharded state,
// bitwise, for every shard count and strategy.

class ShardedStreamProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

template <typename Strategy>
void CheckShardedMatchesUnsharded(const RandomDb& db, const FeatureMap& fm,
                                  const std::vector<UpdateBatch>& stream) {
  const CovarMatrix want = UnshardedResult<Strategy>(db, fm, stream, 2);
  for (int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedStreamOptions options;
    options.stream = SmallEpochOptions();
    ShardedStreamScheduler<Strategy> sched(
        db.query, /*root=*/0, &fm, ShardMap::ForQuery(db.query, 0, shards),
        MakePolicy(2), options);
    for (const UpdateBatch& batch : stream) {
      ASSERT_TRUE(sched.Push(batch).ok());
    }
    StreamStats total;
    std::vector<StreamStats> per_shard;
    ASSERT_TRUE(sched.Finish(&total, &per_shard).ok());
    ExpectCovarExact(sched.MergedCurrent(), want);
    // Structural accounting: rejected nothing; the aggregate counters are
    // the per-shard sums.
    EXPECT_EQ(total.rejected_batches, 0u);
    size_t rows = 0, epochs = 0;
    for (const StreamStats& s : per_shard) {
      rows += s.rows;
      epochs += s.epochs;
    }
    EXPECT_EQ(total.rows, rows);
    EXPECT_EQ(total.epochs, epochs);
    EXPECT_EQ(sched.global_batches(), stream.size());
  }
}

TEST_P(ShardedStreamProperty, MergedStateMatchesUnshardedBitwise) {
  auto [seed, topology] = GetParam();
  const RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/30,
                                   /*domain=*/8, /*integer_values=*/true);
  const FeatureMap fm(db.query, db.features);
  const std::vector<UpdateBatch> stream = MakeMixed(db, seed + 17);
  ASSERT_FALSE(stream.empty());
  CheckShardedMatchesUnsharded<CovarFivm>(db, fm, stream);
  CheckShardedMatchesUnsharded<HigherOrderIvm>(db, fm, stream);
  CheckShardedMatchesUnsharded<FirstOrderIvm>(db, fm, stream);
}

// Cross-arena merge plumbing: MergeViewInto over the ROOT view (the only
// partitioned view) reconstructs the unsharded root payload, and the
// sharded MetricsText carries both the aggregate and per-shard series.
TEST_P(ShardedStreamProperty, RootViewMergeAndMetricsAggregation) {
  auto [seed, topology] = GetParam();
  const RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/30,
                                   /*domain=*/8, /*integer_values=*/true);
  const FeatureMap fm(db.query, db.features);
  const std::vector<UpdateBatch> stream = MakeMixed(db, seed + 29);
  const CovarMatrix want = UnshardedResult<CovarFivm>(db, fm, stream, 2);
  ShardedStreamOptions options;
  options.stream = SmallEpochOptions();
  ShardedStreamScheduler<CovarFivm> sched(
      db.query, /*root=*/0, &fm, ShardMap::ForQuery(db.query, 0, 4),
      MakePolicy(2), options);
  for (const UpdateBatch& batch : stream) ASSERT_TRUE(sched.Push(batch).ok());
  ASSERT_TRUE(sched.Finish().ok());

  const int root = sched.shadow(0).tree().root();
  const int n = fm.num_features();
  CovarArenaView merged(n);
  sched.MergeViewInto(root, &merged);
  const double* span = merged.Find(kUnitKey);
  ASSERT_NE(span, nullptr);
  ExpectPayloadExact(CovarPayloadFromSpan(n, span), want.payload());

  const std::string text = sched.MetricsText();
  EXPECT_NE(text.find("_shard0"), std::string::npos);
  EXPECT_NE(text.find("_shard3"), std::string::npos);
  EXPECT_NE(text.find("relborg_stream_rows_total "), std::string::npos)
      << "aggregate (unsuffixed) series missing:\n"
      << text.substr(0, 400);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, ShardedStreamProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

// ---------------------------------------------------------------------------
// Merged serving: every concurrent merged read equals the unsharded state
// after exactly txn.global_batches() source batches.

// A node whose view has multiple keys and exercises the replicated-view
// read path: the root's first child if any, else the root itself.
int GroupByNode(const ShadowDb& shadow) {
  const int root = shadow.tree().root();
  const std::vector<int>& children = shadow.tree().node(root).children;
  return children.empty() ? root : children[0];
}

// The per-prefix serial oracle: state after the first b batches, for every
// b — built by forcing an epoch boundary after each batch.
struct PrefixOracle {
  std::vector<CovarPayload> covar;    // [b] = after first b batches
  std::vector<GroupByResult> groups;  // at GroupByNode
  int gb_node = -1;
};

PrefixOracle BuildPrefixOracle(const RandomDb& db, const FeatureMap& fm,
                               const std::vector<UpdateBatch>& stream) {
  ShadowDb shadow(db.query, 0);
  CovarFivm strategy(&shadow, &fm, MakePolicy(1));
  PrefixOracle oracle;
  oracle.gb_node = GroupByNode(shadow);
  auto record = [&] {
    CovarFivm::ServePin pin = strategy.PinServe();
    oracle.covar.push_back(strategy.CovarAt(pin).payload());
    oracle.groups.push_back(strategy.GroupByAt(oracle.gb_node, pin));
    strategy.UnpinServe();
  };
  record();  // b = 0: the empty database
  StreamOptions options;  // large epochs; Flush forces the boundary
  EpochAssembler assembler(&shadow, options);
  StreamEpoch epoch;
  auto apply = [&] {
    stream_internal::CommitEpoch(&shadow, &epoch);
    stream_internal::MaintainEpoch(&strategy, &epoch);
    epoch = StreamEpoch();
  };
  for (const UpdateBatch& batch : stream) {
    if (assembler.Add(batch, &epoch)) apply();
    if (assembler.Flush(&epoch)) apply();
    record();
  }
  return oracle;
}

TEST(ShardedServeTest, MergedReadsMatchPrefixOracle) {
  const RandomDb db = MakeRandomDb(21, Topology::kBushy, /*fact_rows=*/40,
                                   /*domain=*/8, /*integer_values=*/true);
  const FeatureMap fm(db.query, db.features);
  const std::vector<UpdateBatch> stream = MakeMixed(db, 38);
  ASSERT_FALSE(stream.empty());
  const PrefixOracle oracle = BuildPrefixOracle(db, fm, stream);

  struct Observation {
    uint64_t batches = 0;
    CovarPayload covar;
    GroupByResult groups;
  };
  constexpr int kReaders = 3;
  std::vector<std::vector<Observation>> observed(kReaders);
  size_t failed_begins = 0;
  {
    ShardedStreamOptions options;
    options.stream = SmallEpochOptions();
    ShardedStreamScheduler<CovarFivm> sched(
        db.query, /*root=*/0, &fm, ShardMap::ForQuery(db.query, 0, 4),
        MakePolicy(2), options);
    ShardedSnapshotServer<CovarFivm> server(&sched);
    std::atomic<bool> done{false};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        while (true) {
          const bool last = done.load(std::memory_order_acquire);
          ShardedSnapshotServer<CovarFivm>::MergedReadTxn txn;
          if (server.BeginMergedSnapshot(&txn).ok()) {
            Observation o;
            o.batches = txn.global_batches();
            o.covar = server.Covar(txn).payload();
            o.groups = server.GroupBy(txn, oracle.gb_node);
            server.EndSnapshot(&txn);
            observed[t].push_back(std::move(o));
          }
          if (last) break;
        }
      });
    }
    for (const UpdateBatch& batch : stream) {
      ASSERT_TRUE(sched.Push(batch).ok());
    }
    ASSERT_TRUE(sched.Finish().ok());
    done.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();
    const obs::Counter* failures = server.metrics().FindCounter(
        "relborg_sharded_serve_begin_failures_total");
    ASSERT_NE(failures, nullptr);
    failed_begins = static_cast<size_t>(failures->Value());
  }
  size_t checked = 0;
  uint64_t max_seen = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    ASSERT_FALSE(per_thread.empty())
        << "merged begins never succeeded (failed begins: " << failed_begins
        << ")";
    for (const Observation& o : per_thread) {
      ASSERT_LT(o.batches, oracle.covar.size());
      ExpectPayloadExact(o.covar, oracle.covar[o.batches]);
      EXPECT_EQ(o.groups, oracle.groups[o.batches])
          << "cut " << o.batches;
      max_seen = std::max(max_seen, o.batches);
      ++checked;
    }
  }
  ASSERT_GT(checked, 0u);
  // A quiescent fleet always yields a cut, and the post-Finish iteration
  // of every reader sees the full stream.
  EXPECT_EQ(max_seen, stream.size());
}

// ---------------------------------------------------------------------------
// Restore: per-shard checkpoints resumed and replayed equal the straight
// run — including one shard restarting from scratch (checkpoint deleted).

std::string ShardCheckpointPrefix(const std::string& tag) {
  return ::testing::TempDir() + "relborg_shard_" +
#ifndef _WIN32
         std::to_string(::getpid()) + "_" +
#endif
         tag + "_";
}

template <typename Strategy>
void CheckResumeMatchesStraightRun(uint64_t seed, bool delete_one_shard) {
  const RandomDb db = MakeRandomDb(seed, Topology::kChain, /*fact_rows=*/40,
                                   /*domain=*/8, /*integer_values=*/true);
  const FeatureMap fm(db.query, db.features);
  const std::vector<UpdateBatch> stream = MakeMixed(db, seed + 5);
  const CovarMatrix want = UnshardedResult<Strategy>(db, fm, stream, 2);
  constexpr int kShards = 4;
  const ShardMap map = ShardMap::ForQuery(db.query, 0, kShards);
  const std::string prefix = ShardCheckpointPrefix(
      "s" + std::to_string(seed) + (delete_one_shard ? "_del" : ""));
  ShardedStreamOptions options;
  options.stream = SmallEpochOptions();
  // Tiny epochs + every-epoch cadence: even lightly-loaded shards cross
  // several checkpoints within the half stream ingested below.
  options.stream.epoch_batches = 2;
  options.stream.epoch_rows = 32;
  options.stream.checkpoint.every_epochs = 1;
  options.stream.checkpoint.fsync = false;
  options.checkpoint_prefix = prefix;
  {
    // First run: ingest a prefix of the stream, checkpointing on cadence.
    ShardedStreamScheduler<Strategy> first(db.query, 0, &fm, map,
                                           MakePolicy(2), options);
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      ASSERT_TRUE(first.Push(stream[i]).ok());
    }
    StreamStats stats;
    ASSERT_TRUE(first.Finish(&stats).ok());
    ASSERT_GT(stats.checkpoints_written, 0u) << "cadence never fired";
  }
  if (delete_one_shard) {
    // Shard 2 loses its checkpoint: Resume must restart it from scratch
    // while the other shards skip their restored prefixes.
    ASSERT_EQ(std::remove((prefix + "shard-2.ckpt").c_str()), 0);
  }
  std::unique_ptr<ShardedStreamScheduler<Strategy>> resumed;
  ASSERT_TRUE(ShardedStreamScheduler<Strategy>::Resume(
                  db.query, 0, &fm, map, MakePolicy(2), options, &resumed)
                  .ok());
  // The resume contract: replay the WHOLE stream; restored prefixes are
  // skipped per shard.
  for (const UpdateBatch& batch : stream) {
    ASSERT_TRUE(resumed->Push(batch).ok());
  }
  ASSERT_TRUE(resumed->Finish().ok());
  ExpectCovarExact(resumed->MergedCurrent(), want);
  for (int s = 0; s < kShards; ++s) {
    std::remove((prefix + "shard-" + std::to_string(s) + ".ckpt").c_str());
  }
}

TEST(ShardedRestoreTest, ResumedFleetMatchesStraightRun) {
  CheckResumeMatchesStraightRun<CovarFivm>(3, /*delete_one_shard=*/false);
  CheckResumeMatchesStraightRun<HigherOrderIvm>(21,
                                                /*delete_one_shard=*/false);
}

TEST(ShardedRestoreTest, MissingShardCheckpointRestartsThatShardOnly) {
  CheckResumeMatchesStraightRun<CovarFivm>(55, /*delete_one_shard=*/true);
}

// ---------------------------------------------------------------------------
// Quarantine routing: a poison root batch is rejected by exactly the
// shards its rows routed to and leaves the merged state untouched.

TEST(ShardedQuarantineTest, PoisonBatchIsTaggedAndIgnored) {
  const RandomDb db = MakeRandomDb(42, Topology::kChain, /*fact_rows=*/30,
                                   /*domain=*/8, /*integer_values=*/true);
  const FeatureMap fm(db.query, db.features);
  const std::vector<UpdateBatch> stream = MakeMixed(db, 47);
  const CovarMatrix want = UnshardedResult<CovarFivm>(db, fm, stream, 2);
  ShardedStreamOptions options;
  options.stream = SmallEpochOptions();
  ShardedStreamScheduler<CovarFivm> sched(
      db.query, 0, &fm, ShardMap::ForQuery(db.query, 0, 4), MakePolicy(2),
      options);
  for (const UpdateBatch& batch : stream) ASSERT_TRUE(sched.Push(batch).ok());
  UpdateBatch poison;
  poison.node = 0;
  poison.rows = {{1.0, std::nan("")}};  // chain R0(k1, a): non-finite value
  const Status st = sched.Push(poison);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(sched.Finish().ok()) << "rejection must not fail the fleet";
  auto quarantined = sched.DrainQuarantine();
  ASSERT_EQ(quarantined.size(), 1u) << "one shard received the poison row";
  EXPECT_GE(quarantined[0].shard, 0);
  EXPECT_LT(quarantined[0].shard, 4);
  EXPECT_EQ(quarantined[0].rejected.batch.rows.size(), 1u);
  ExpectCovarExact(sched.MergedCurrent(), want);
}

}  // namespace
}  // namespace relborg
