// Tests for k-means: weighted Lloyd's and the relational (Rk-means style)
// grid coreset whose weights come from one factorized counting pass.
#include <cmath>

#include "baseline/materializer.h"
#include "gtest/gtest.h"
#include "ml/kmeans.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

WeightedPoints ThreeBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  WeightedPoints pts;
  pts.dims = 2;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      pts.coords.push_back(centers[b][0] + rng.Gaussian(0, 0.3));
      pts.coords.push_back(centers[b][1] + rng.Gaussian(0, 0.3));
    }
  }
  return pts;
}

TEST(LloydKMeansTest, SeparatesBlobs) {
  WeightedPoints pts = ThreeBlobs(200, 1);
  KMeansOptions opts;
  opts.k = 3;
  KMeansResult result = LloydKMeans(pts, opts);
  ASSERT_EQ(result.centroids.size(), 3u);
  // Each centroid is near one blob center; objective is tiny relative to
  // the blob separation.
  EXPECT_LT(result.objective / (3 * 200), 0.5);
  for (const auto& c : result.centroids) {
    double best = 1e18;
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (auto& center : centers) {
      double d = (c[0] - center[0]) * (c[0] - center[0]) +
                 (c[1] - center[1]) * (c[1] - center[1]);
      best = std::min(best, d);
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(LloydKMeansTest, WeightsShiftCentroids) {
  // Two points; weight one 9x: the 1-means centroid is the weighted mean.
  WeightedPoints pts;
  pts.dims = 1;
  pts.coords = {0.0, 10.0};
  pts.weights = {9.0, 1.0};
  KMeansOptions opts;
  opts.k = 1;
  KMeansResult r = LloydKMeans(pts, opts);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_NEAR(r.centroids[0][0], 1.0, 1e-9);
}

TEST(LloydKMeansTest, ObjectiveDecreasesWithK) {
  WeightedPoints pts = ThreeBlobs(100, 2);
  double prev = 1e300;
  for (int k = 1; k <= 4; ++k) {
    KMeansOptions opts;
    opts.k = k;
    double obj = LloydKMeans(pts, opts).objective;
    EXPECT_LE(obj, prev * 1.0001);
    prev = obj;
  }
}

TEST(LloydKMeansTest, EmptyInput) {
  WeightedPoints pts;
  pts.dims = 2;
  KMeansOptions opts;
  KMeansResult r = LloydKMeans(pts, opts);
  EXPECT_TRUE(r.centroids.empty());
  EXPECT_EQ(r.objective, 0.0);
}

class RelationalKMeansProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(RelationalKMeansProperty, CoresetWeightsSumToJoinSize) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/80);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  KMeansOptions opts;
  opts.k = 3;
  opts.per_relation_k = 4;
  KMeansResult r = RelationalKMeans(tree, fm, opts);
  double join_count = CountJoin(tree);
  if (join_count == 0) {
    EXPECT_EQ(r.coreset_size, 0u);
    return;
  }
  EXPECT_GT(r.coreset_size, 0u);
  // The coreset objective summed over weights uses all join tuples once:
  // verify via the objective identity on a 1-centroid run.
  KMeansOptions one = opts;
  one.k = 1;
  KMeansResult single = RelationalKMeans(tree, fm, one);
  EXPECT_GT(single.coreset_size, 0u);
}

TEST_P(RelationalKMeansProperty, CoresetObjectiveNearFullLloyd) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/80);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  DataMatrix data = MaterializeJoin(tree, fm);
  if (data.num_rows() < 20) GTEST_SKIP() << "join too small";

  WeightedPoints full;
  full.dims = data.num_cols();
  full.coords.assign(data.Row(0), data.Row(0) + data.num_rows() * full.dims);

  KMeansOptions opts;
  opts.k = 4;
  opts.per_relation_k = 6;
  KMeansResult base = LloydKMeans(full, opts);
  KMeansResult rel = RelationalKMeans(tree, fm, opts);
  ASSERT_FALSE(rel.centroids.empty());

  // Evaluate the coreset centroids on the FULL join: constant-factor
  // approximation (we allow 3x; the theory gives a constant too).
  double rel_obj_on_full = KMeansObjective(full, rel.centroids);
  EXPECT_LE(rel_obj_on_full, 3.0 * base.objective + 1e-6);
  // The coreset is much smaller than the join.
  EXPECT_LT(rel.coreset_size, data.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, RelationalKMeansProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

}  // namespace
}  // namespace relborg
