// Crash-recovery differential suite for the stream checkpoint subsystem
// (src/stream/checkpoint.h + StreamScheduler::RestoreFromCheckpoint):
//
//   * Deterministic fault injection (util/fault.h) kills the pipeline at a
//     named stage boundary mid-run — including mid-epoch, leaving the
//     ShadowDb genuinely torn (some ranges committed, some lost).
//   * Recovery restores the last checkpoint into a FRESH ShadowDb +
//     strategy (the torn state is discarded with the failed engine) and
//     replays the stream tail from the checkpoint's batch cursor.
//   * The recovered run must be BIT-IDENTICAL to an uninterrupted serial
//     replay: covariance payloads, per-view group-bys (CovarFivm), the
//     row store, and the structural stats fields — for all three IVM
//     strategies, any ExecPolicy thread count, and every injected fault
//     site/hit, including while a SnapshotServer holds pins across the
//     crash.
//
// Fault-seed policy: RELBORG_FAULT_SEED (environment) pins the sweep to a
// single seed — the CI fault leg sweeps it; without it every (site, hit)
// pair of the first two hits is exercised. Seeds whose site never fires in
// a given configuration (e.g. the compute site under a non-speculating
// strategy) leave the faulted run complete, which recovery handles as the
// trivial tail — the differential still applies.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "serve/snapshot_server.h"
#include "stream/checkpoint.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace relborg {
namespace {

using testing::kPropertySeeds;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

void ExpectCovarExact(const CovarMatrix& got, const CovarMatrix& want) {
  ASSERT_EQ(got.num_features(), want.num_features());
  const int n = want.num_features();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      EXPECT_EQ(got.Moment(i, j), want.Moment(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;
  return policy;
}

// ShadowDb + feature map + strategy with tied lifetimes, built over an
// EMPTY database (the stream tests' convention: all rows arrive as
// updates).
template <typename Strategy>
struct Engine {
  ShadowDb shadow;
  FeatureMap fm;
  Strategy strategy;
  Engine(const RandomDb& db, int threads)
      : shadow(db.query, 0),
        fm(shadow.query(), db.features),
        strategy(&shadow, &fm, MakePolicy(threads)) {}
};

std::string CheckpointPath(const std::string& tag) {
  return ::testing::TempDir() + "relborg_ckpt_" +
#ifndef _WIN32
         std::to_string(::getpid()) + "_" +
#endif
         tag + ".bin";
}

void RemoveCheckpoint(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// Small epochs and a short checkpoint cadence so a modest stream crosses
// several checkpoints and faults land both before and after one.
StreamOptions CheckpointStreamOptions(const std::string& path) {
  StreamOptions options;
  options.epoch_batches = 4;
  options.epoch_rows = 256;
  options.checkpoint.path = path;
  options.checkpoint.every_epochs = 3;
  options.checkpoint.fsync = false;  // keep the suite I/O-light
  return options;
}

std::vector<UpdateBatch> MakeStream(const RandomDb& db, uint64_t seed) {
  MixedStreamOptions opts;
  opts.insert.batch_size = 17;
  opts.insert.seed = seed;
  opts.delete_probability = 0.3;
  return BuildMixedStream(db.query, opts);
}

// The full-state comparison behind "bit-identical": root aggregates, the
// row store (values AND signs in arrival order), and — for the strategy
// with served group-bys — every view's per-key count payload.
template <typename Strategy>
void ExpectEnginesIdentical(Engine<Strategy>& got, Engine<Strategy>& want) {
  ExpectCovarExact(got.strategy.Current(), want.strategy.Current());
  const int num_nodes = want.shadow.tree().num_nodes();
  for (int v = 0; v < num_nodes; ++v) {
    const Relation& g = got.shadow.relation(v);
    const Relation& w = want.shadow.relation(v);
    ASSERT_EQ(g.num_rows(), w.num_rows()) << "node " << v;
    ASSERT_EQ(g.num_attrs(), w.num_attrs()) << "node " << v;
    for (size_t row = 0; row < w.num_rows(); ++row) {
      EXPECT_EQ(got.shadow.sign(v, row), want.shadow.sign(v, row))
          << "node " << v << " row " << row;
      for (int a = 0; a < w.num_attrs(); ++a) {
        EXPECT_EQ(g.AsDouble(row, a), w.AsDouble(row, a))
            << "node " << v << " row " << row << " attr " << a;
      }
    }
  }
  if constexpr (std::is_same_v<Strategy, CovarFivm>) {
    auto got_pin = got.strategy.PinServe();
    auto want_pin = want.strategy.PinServe();
    for (int v = 0; v < num_nodes; ++v) {
      auto g = got.strategy.GroupByAt(v, got_pin);
      auto w = want.strategy.GroupByAt(v, want_pin);
      std::sort(g.begin(), g.end());
      std::sort(w.begin(), w.end());
      EXPECT_EQ(g, w) << "group-by of node " << v;
    }
    got.strategy.UnpinServe();
    want.strategy.UnpinServe();
  }
}

// One crash-recovery differential: reference replay, faulted run, restore
// into a fresh engine, tail replay, full-state comparison.
template <typename Strategy>
void CrashRecoveryDifferential(const RandomDb& db,
                               const std::vector<UpdateBatch>& stream,
                               int threads, int fault_seed,
                               const std::string& tag) {
  const std::string path = CheckpointPath(tag);
  RemoveCheckpoint(path);
  const StreamOptions options = CheckpointStreamOptions(path);

  // Uninterrupted serial reference; checkpointing off (it must not affect
  // results either way — the recovered run below has it on).
  Engine<Strategy> ref(db, /*threads=*/1);
  StreamOptions ref_options = options;
  ref_options.checkpoint = StreamCheckpointOptions{};
  const StreamStats ref_stats =
      ReplayStream(&ref.shadow, &ref.strategy, stream, ref_options);

  // Faulted run: arm, push everything (pushes after the failure are
  // reported and dropped — never aborted), finish, discard the engine.
  {
    Engine<Strategy> faulted(db, threads);
    StreamScheduler<Strategy> scheduler(&faulted.shadow, &faulted.strategy,
                                        options);
    FaultInjector::Global().ArmFromSeed(fault_seed);
    for (const UpdateBatch& batch : stream) (void)scheduler.Push(batch);
    const Status st = scheduler.Finish();
    FaultInjector::Global().Disarm();
    if (!st.ok()) {
      // A fired fault surfaces as the failing stage's status, never an
      // abort.
      EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
      EXPECT_NE(st.message().find("injected fault"), std::string::npos)
          << st.ToString();
    }
  }

  // Recover: restore the last checkpoint into a FRESH engine and replay
  // the tail from the checkpoint's batch cursor. kNotFound (the fault hit
  // before the first checkpoint was written) degrades to a from-scratch
  // replay.
  Engine<Strategy> rec(db, threads);
  StreamCheckpointInfo info;
  const Status restored = StreamScheduler<Strategy>::RestoreFromCheckpoint(
      path, &rec.shadow, &rec.strategy, &info);
  size_t start = 0;
  const StreamCheckpointInfo* resume = nullptr;
  if (restored.ok()) {
    start = info.batches;
    resume = &info;
  } else {
    ASSERT_EQ(restored.code(), StatusCode::kNotFound) << restored.ToString();
  }
  ASSERT_LE(start, stream.size());
  StreamStats rec_stats;
  {
    StreamScheduler<Strategy> scheduler(&rec.shadow, &rec.strategy, options,
                                        resume);
    for (size_t i = start; i < stream.size(); ++i) {
      const Status st = scheduler.Push(stream[i]);
      ASSERT_TRUE(st.ok()) << "tail batch " << i << ": " << st.ToString();
    }
    const Status fin = scheduler.Finish(&rec_stats);
    ASSERT_TRUE(fin.ok()) << fin.ToString();
  }

  // Structural stats continue the uninterrupted run's exactly.
  EXPECT_EQ(rec_stats.batches, ref_stats.batches);
  EXPECT_EQ(rec_stats.rows, ref_stats.rows);
  EXPECT_EQ(rec_stats.epochs, ref_stats.epochs);
  EXPECT_EQ(rec_stats.ranges, ref_stats.ranges);
  ExpectEnginesIdentical(rec, ref);
  RemoveCheckpoint(path);
}

// RELBORG_FAULT_SEED pins the sweep to one seed (the CI fault leg);
// default covers the first two hits of every registered site.
std::vector<int> FaultSeedsToSweep() {
  if (const char* env = std::getenv("RELBORG_FAULT_SEED")) {
    return {std::atoi(env)};
  }
  std::vector<int> seeds;
  const int n = static_cast<int>(FaultSites().size());
  for (int s = 0; s < 2 * n; ++s) seeds.push_back(s);
  return seeds;
}

Topology TopologyFor(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return Topology::kStar;
    case 1:
      return Topology::kChain;
    default:
      return Topology::kBushy;
  }
}

class StreamCheckpointProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamCheckpointProperty, CrashRecoveryBitIdentical) {
  const uint64_t seed = GetParam();
  RandomDb db = MakeRandomDb(seed, TopologyFor(seed), /*fact_rows=*/40);
  const std::vector<UpdateBatch> stream = MakeStream(db, seed + 17);
  ASSERT_FALSE(stream.empty());
  const std::vector<int> fault_seeds = FaultSeedsToSweep();
  for (int threads : {1, 2, 4}) {
    for (int fault_seed : fault_seeds) {
      const std::string tag = "crash_s" + std::to_string(seed) + "_t" +
                              std::to_string(threads) + "_f" +
                              std::to_string(fault_seed);
      SCOPED_TRACE(tag);
      CrashRecoveryDifferential<CovarFivm>(db, stream, threads, fault_seed,
                                           tag + "_fivm");
      CrashRecoveryDifferential<HigherOrderIvm>(db, stream, threads,
                                                fault_seed, tag + "_hoi");
      CrashRecoveryDifferential<FirstOrderIvm>(db, stream, threads, fault_seed,
                                               tag + "_foi");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamCheckpointProperty,
                         ::testing::ValuesIn(kPropertySeeds));

// Checkpoint/restore with no fault at all: run to completion while
// checkpointing, then prove the LAST checkpoint + tail replay reproduces
// the run — the pure subsystem round trip.
TEST(StreamCheckpointTest, CompletedRunRestoresAndReplaysBitIdentical) {
  RandomDb db = MakeRandomDb(7, Topology::kChain, /*fact_rows=*/48);
  const std::vector<UpdateBatch> stream = MakeStream(db, 24);
  const std::string path = CheckpointPath("roundtrip");
  RemoveCheckpoint(path);
  const StreamOptions options = CheckpointStreamOptions(path);

  Engine<CovarFivm> full(db, /*threads=*/2);
  Status full_status;
  const StreamStats full_stats = ApplyStream(
      &full.shadow, &full.strategy, stream, options, &full_status);
  ASSERT_TRUE(full_status.ok()) << full_status.ToString();
  ASSERT_GT(full_stats.checkpoints_written, 0u);
  ASSERT_GT(full_stats.checkpoint_bytes, 0u);

  Engine<CovarFivm> rec(db, /*threads=*/2);
  StreamCheckpointInfo info;
  const Status restored = StreamScheduler<CovarFivm>::RestoreFromCheckpoint(
      path, &rec.shadow, &rec.strategy, &info);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  ASSERT_GT(info.batches, 0u);
  ASSERT_LE(info.batches, stream.size());
  StreamOptions tail_options = options;
  tail_options.checkpoint = StreamCheckpointOptions{};
  StreamScheduler<CovarFivm> scheduler(&rec.shadow, &rec.strategy,
                                       tail_options, &info);
  for (size_t i = info.batches; i < stream.size(); ++i) {
    ASSERT_TRUE(scheduler.Push(stream[i]).ok());
  }
  StreamStats rec_stats;
  ASSERT_TRUE(scheduler.Finish(&rec_stats).ok());
  EXPECT_EQ(rec_stats.batches, full_stats.batches);
  EXPECT_EQ(rec_stats.rows, full_stats.rows);
  EXPECT_EQ(rec_stats.epochs, full_stats.epochs);
  EXPECT_EQ(rec_stats.ranges, full_stats.ranges);
  ExpectEnginesIdentical(rec, full);
  RemoveCheckpoint(path);
}

// The crash happens while a SnapshotServer client holds an open read
// transaction: the pinned snapshot stays readable through the failure,
// and a recovered pipeline (with a fresh server) serves the bit-identical
// final state.
TEST(StreamCheckpointTest, RecoveryBitIdenticalWhileServerHoldsPins) {
  RandomDb db = MakeRandomDb(42, Topology::kStar, /*fact_rows=*/48);
  const std::vector<UpdateBatch> stream = MakeStream(db, 59);
  const std::string path = CheckpointPath("serve_pins");
  RemoveCheckpoint(path);
  const StreamOptions options = CheckpointStreamOptions(path);

  Engine<CovarFivm> ref(db, /*threads=*/1);
  StreamOptions ref_options = options;
  ref_options.checkpoint = StreamCheckpointOptions{};
  ReplayStream(&ref.shadow, &ref.strategy, stream, ref_options);

  {
    Engine<CovarFivm> faulted(db, /*threads=*/4);
    StreamScheduler<CovarFivm> scheduler(&faulted.shadow, &faulted.strategy,
                                         options);
    SnapshotServer<CovarFivm> server(&scheduler, &faulted.shadow,
                                     &faulted.strategy);
    auto txn = server.BeginSnapshot();  // held across the crash
    // Seed 1 = site "stream/pre-publish-merge", hit 0: the applier dies
    // before its first fold while the server's pin is live.
    FaultInjector::Global().ArmFromSeed(1);
    for (const UpdateBatch& batch : stream) (void)scheduler.Push(batch);
    const Status st = scheduler.Finish();
    FaultInjector::Global().Disarm();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("apply"), std::string::npos)
        << st.ToString();
    // The pinned (horizon 0, pre-crash) snapshot still reads cleanly.
    CovarMatrix pinned = server.Covar(txn);
    EXPECT_EQ(pinned.num_features(),
              static_cast<int>(db.features.size()));
    EXPECT_EQ(pinned.Moment(0, 0), 0.0);  // horizon 0 = empty database
    server.EndSnapshot(&txn);
  }

  Engine<CovarFivm> rec(db, /*threads=*/4);
  StreamCheckpointInfo info;
  const Status restored = StreamScheduler<CovarFivm>::RestoreFromCheckpoint(
      path, &rec.shadow, &rec.strategy, &info);
  size_t start = 0;
  const StreamCheckpointInfo* resume = nullptr;
  if (restored.ok()) {
    start = info.batches;
    resume = &info;
  } else {
    ASSERT_EQ(restored.code(), StatusCode::kNotFound) << restored.ToString();
  }
  {
    StreamScheduler<CovarFivm> scheduler(&rec.shadow, &rec.strategy, options,
                                         resume);
    SnapshotServer<CovarFivm> server(&scheduler, &rec.shadow, &rec.strategy);
    for (size_t i = start; i < stream.size(); ++i) {
      ASSERT_TRUE(scheduler.Push(stream[i]).ok());
    }
    ASSERT_TRUE(scheduler.Finish().ok());
    // The final snapshot covers the whole stream and serves the reference
    // bytes.
    auto txn = server.BeginSnapshot();
    ExpectCovarExact(server.Covar(txn), ref.strategy.Current());
    server.EndSnapshot(&txn);
  }
  ExpectEnginesIdentical(rec, ref);
  RemoveCheckpoint(path);
}

// File-level failure modes of ReadCheckpointFile / RestoreFromCheckpoint:
// missing file, corrupt payload, truncation, strategy-tag mismatch.
TEST(StreamCheckpointTest, DetectsMissingCorruptAndMismatchedFiles) {
  RandomDb db = MakeRandomDb(3, Topology::kChain, /*fact_rows=*/32);
  const std::vector<UpdateBatch> stream = MakeStream(db, 11);
  const std::string path = CheckpointPath("corrupt");
  RemoveCheckpoint(path);
  // Tight cadence so even this short stream writes a checkpoint.
  auto write_checkpoint = [&](auto* engine) {
    StreamOptions options = CheckpointStreamOptions(path);
    options.epoch_batches = 2;
    options.checkpoint.every_epochs = 1;
    Status status;
    StreamStats stats =
        ApplyStream(&engine->shadow, &engine->strategy, stream, options,
                    &status);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_GT(stats.checkpoints_written, 0u);
  };

  {  // Missing file -> kNotFound.
    Engine<CovarFivm> e(db, 1);
    StreamCheckpointInfo info;
    EXPECT_EQ(StreamScheduler<CovarFivm>::RestoreFromCheckpoint(
                  path, &e.shadow, &e.strategy, &info)
                  .code(),
              StatusCode::kNotFound);
  }

  // Write a real checkpoint.
  {
    Engine<CovarFivm> e(db, 2);
    write_checkpoint(&e);
  }

  {  // Flip one payload byte -> kDataLoss (checksum).
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
    Engine<CovarFivm> e(db, 1);
    StreamCheckpointInfo info;
    EXPECT_EQ(StreamScheduler<CovarFivm>::RestoreFromCheckpoint(
                  path, &e.shadow, &e.strategy, &info)
                  .code(),
              StatusCode::kDataLoss);
  }

  // Rewrite a good checkpoint, then truncate it -> kDataLoss.
  {
    Engine<CovarFivm> e(db, 2);
    write_checkpoint(&e);
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(size, 16);
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
    Engine<CovarFivm> e2(db, 1);
    StreamCheckpointInfo info;
    EXPECT_EQ(StreamScheduler<CovarFivm>::RestoreFromCheckpoint(
                  path, &e2.shadow, &e2.strategy, &info)
                  .code(),
              StatusCode::kDataLoss);
  }

  // Rewrite once more; restoring into the WRONG strategy is rejected
  // before any view state is touched.
  {
    Engine<CovarFivm> e(db, 2);
    write_checkpoint(&e);
    Engine<HigherOrderIvm> other(db, 1);
    StreamCheckpointInfo info;
    EXPECT_EQ(StreamScheduler<HigherOrderIvm>::RestoreFromCheckpoint(
                  path, &other.shadow, &other.strategy, &info)
                  .code(),
              StatusCode::kInvalidArgument);
  }
  RemoveCheckpoint(path);
}

}  // namespace
}  // namespace relborg
