// Tests for polynomial feature expansion and the Naive Bayes classifier.
#include <cmath>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "gtest/gtest.h"
#include "ml/linear_regression.h"
#include "ml/naive_bayes.h"
#include "ml/poly_features.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

TEST(PolyFeaturesTest, AddProductColumnComputesProducts) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"a", AttrType::kDouble},
                   {"b", AttrType::kDouble}}));
  r->AppendRow({0, 2.0, 3.0});
  r->AppendRow({1, -1.5, 4.0});
  int attr = AddProductColumn(r, "a", "b");
  EXPECT_EQ(r->schema().attr(attr).name, "a*b");
  EXPECT_DOUBLE_EQ(r->Double(0, attr), 6.0);
  EXPECT_DOUBLE_EQ(r->Double(1, attr), -6.0);
  int sq = AddProductColumn(r, "a", "a");
  EXPECT_DOUBLE_EQ(r->Double(0, sq), 4.0);
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(PolyFeaturesTest, QuadraticSignalNeedsExpansion) {
  // y = x^2 - 2 z + noise: linear model fails on x, succeeds after
  // expansion; all training over the factorized covariance.
  Catalog catalog;
  Relation* f = catalog.AddRelation(
      "F", Schema({{"k", AttrType::kCategorical},
                   {"x", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical},
                   {"z", AttrType::kDouble}}));
  Rng rng(19);
  const int kDomain = 30;
  std::vector<double> zs(kDomain);
  for (int k = 0; k < kDomain; ++k) {
    zs[k] = rng.Uniform(-1, 1);
    d->AppendRow({static_cast<double>(k), zs[k]});
  }
  for (int i = 0; i < 4000; ++i) {
    int k = static_cast<int>(rng.Below(kDomain));
    double x = rng.Uniform(-2, 2);
    f->AppendRow({static_cast<double>(k), x,
                  x * x - 2 * zs[k] + rng.Gaussian(0, 0.05)});
  }

  std::vector<FeatureRef> base{{"F", "x"}, {"D", "z"}, {"F", "y"}};
  std::vector<FeatureRef> expanded =
      ExpandPolynomialFeatures(&catalog, base);
  // x^2, x (from F), z^2 and z (from D) plus response.
  EXPECT_GT(expanded.size(), base.size());

  JoinQuery query;
  query.AddRelation(catalog.Get("F"));
  query.AddRelation(catalog.Get("D"));
  query.AddJoin("F", "D", {"k"});

  FeatureMap base_fm(query, base);
  CovarMatrix base_cov = ComputeCovarMatrix(query.Root("F"), base_fm);
  LinearModel linear =
      SolveRidgeClosedForm(base_cov, base_fm.num_features() - 1, 1e-6);
  double linear_mse =
      MseFromCovar(base_cov, base_fm.num_features() - 1, linear);

  FeatureMap poly_fm(query, expanded);
  CovarMatrix poly_cov = ComputeCovarMatrix(query.Root("F"), poly_fm);
  LinearModel poly =
      SolveRidgeClosedForm(poly_cov, poly_fm.num_features() - 1, 1e-6);
  double poly_mse = MseFromCovar(poly_cov, poly_fm.num_features() - 1, poly);

  EXPECT_LT(poly_mse, 0.05 * linear_mse);
  EXPECT_LT(poly_mse, 0.01);
  // The x*x weight should be ~1 and the z weight ~-2.
  int xx = poly_fm.IndexOf("F", "x*x");
  ASSERT_GE(xx, 0);
  for (size_t i = 0; i < poly.weights.size(); ++i) {
    if (poly.feature_indices[i] == xx) {
      EXPECT_NEAR(poly.weights[i], 1.0, 0.05);
    }
  }
}

TEST(PolyFeaturesTest, SquaresOnlyOption) {
  Catalog catalog;
  Relation* r = catalog.AddRelation(
      "R", Schema({{"k", AttrType::kCategorical},
                   {"a", AttrType::kDouble},
                   {"b", AttrType::kDouble},
                   {"y", AttrType::kDouble}}));
  r->AppendRow({0, 1.0, 2.0, 3.0});
  PolyExpansionOptions opts;
  opts.within_relation_pairs = false;
  std::vector<FeatureRef> expanded = ExpandPolynomialFeatures(
      &catalog, {{"R", "a"}, {"R", "b"}, {"R", "y"}}, opts);
  // a, b, a*a, b*b, y.
  EXPECT_EQ(expanded.size(), 5u);
  EXPECT_TRUE(r->schema().HasAttribute("a*a"));
  EXPECT_TRUE(r->schema().HasAttribute("b*b"));
  EXPECT_FALSE(r->schema().HasAttribute("a*b"));
}

TEST(NaiveBayesTest, LearnsClassConditionalStructure) {
  // class determined by (g at dimension, h at fact) with noise; NB must
  // beat the majority baseline clearly.
  Catalog catalog;
  Relation* f = catalog.AddRelation(
      "F", Schema({{"k", AttrType::kCategorical},
                   {"h", AttrType::kCategorical},
                   {"cls", AttrType::kCategorical}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical},
                   {"g", AttrType::kCategorical}}));
  Rng rng(29);
  const int kDomain = 21;
  std::vector<int32_t> gs(kDomain);
  std::vector<std::vector<int>> keys_with_g(3);
  for (int k = 0; k < kDomain; ++k) {
    gs[k] = static_cast<int32_t>(k % 3);
    keys_with_g[gs[k]].push_back(k);
    d->AppendRow({static_cast<double>(k), static_cast<double>(gs[k])});
  }
  // Generative model NB can represent: draw cls, then h ~ cls (80% match)
  // and g ~ cls (70% match) independently given cls.
  for (int i = 0; i < 6000; ++i) {
    int32_t cls = static_cast<int32_t>(rng.Below(3));
    int32_t h = rng.Uniform() < 0.8 ? cls : static_cast<int32_t>(rng.Below(3));
    int32_t g = rng.Uniform() < 0.7 ? cls : static_cast<int32_t>(rng.Below(3));
    int k = keys_with_g[g][rng.Below(keys_with_g[g].size())];
    f->AppendRow({static_cast<double>(k), static_cast<double>(h),
                  static_cast<double>(cls)});
  }
  JoinQuery query;
  query.AddRelation(f);
  query.AddRelation(d);
  query.AddJoin("F", "D", {"k"});
  RootedTree tree = query.Root("F");

  NaiveBayesModel nb = NaiveBayesModel::Train(
      tree, {"F", "cls"}, {{"D", "g"}, {"F", "h"}});
  EXPECT_EQ(nb.num_classes(), 3);
  EXPECT_EQ(nb.aggregates_evaluated(), 3u);  // 1 prior + 2 pair counts

  // Evaluate on the materialized join.
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{"D", "g"}, {"F", "h"}, {"F", "cls"}});
  double correct = 0;
  for (size_t r = 0; r < m.num_rows(); ++r) {
    int32_t pred = nb.Predict({static_cast<int32_t>(m.At(r, 0)),
                               static_cast<int32_t>(m.At(r, 1))});
    if (pred == static_cast<int32_t>(m.At(r, 2))) correct += 1;
  }
  double accuracy = correct / static_cast<double>(m.num_rows());
  // The generative process is exactly NB's model; Bayes-optimal accuracy
  // here is ~0.87, so the learned model should be well above chance (1/3).
  EXPECT_GT(accuracy, 0.75);
}

TEST(NaiveBayesTest, UnseenValueFallsBackToSmoothing) {
  Catalog catalog;
  Relation* f = catalog.AddRelation(
      "F", Schema({{"k", AttrType::kCategorical},
                   {"a", AttrType::kCategorical},
                   {"cls", AttrType::kCategorical}}));
  Relation* d = catalog.AddRelation(
      "D", Schema({{"k", AttrType::kCategorical}}));
  d->AppendRow({0});
  for (int i = 0; i < 50; ++i) {
    f->AppendRow({0, static_cast<double>(i % 2),
                  static_cast<double>(i % 2)});
  }
  JoinQuery query;
  query.AddRelation(f);
  query.AddRelation(d);
  query.AddJoin("F", "D", {"k"});
  NaiveBayesModel nb = NaiveBayesModel::Train(query.Root("F"), {"F", "cls"},
                                              {{"F", "a"}});
  // Value 1 predicts class 1; an unseen value must not crash and yields
  // the prior-driven decision.
  EXPECT_EQ(nb.Predict({1}), 1);
  int32_t unseen = nb.Predict({7});
  EXPECT_TRUE(unseen == 0 || unseen == 1);
}

}  // namespace
}  // namespace relborg
