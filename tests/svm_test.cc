// Tests for the SVM over inequality aggregates, and for the batched
// inequality aggregates backing it.
#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "inequality/inequality_join.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace relborg {
namespace {

// Builds a linearly separable two-relation problem: the label of a join
// tuple is sign(2*xr - 1.5*ys + 0.5) with a margin; R carries (key, xr,
// label), S carries (key, ys). The label must be decided per R row, so ys
// enters through the per-key mean: we generate S with ONE row per key so
// the join label is exact.
struct SvmFixture {
  Relation r;
  Relation s;
  SvmFixture(int num_keys, int rows, uint64_t seed)
      : r("R", Schema({{"k", AttrType::kCategorical},
                       {"xr", AttrType::kDouble},
                       {"label", AttrType::kCategorical}})),
        s("S", Schema({{"k", AttrType::kCategorical},
                       {"ys", AttrType::kDouble}})) {
    Rng rng(seed);
    std::vector<double> ys(num_keys);
    for (int k = 0; k < num_keys; ++k) {
      ys[k] = rng.Uniform(-1, 1);
      s.AppendRow({static_cast<double>(k), ys[k]});
    }
    for (int i = 0; i < rows; ++i) {
      int k = static_cast<int>(rng.Below(num_keys));
      double xr = rng.Uniform(-1, 1);
      double margin = 2 * xr - 1.5 * ys[k] + 0.5;
      if (std::abs(margin) < 0.2) continue;  // enforce a margin
      r.AppendRow({static_cast<double>(k), xr, margin > 0 ? 1.0 : 0.0});
    }
  }
};

TEST(InequalityBatchTest, SortedMatchesNaive) {
  Rng rng(3);
  Relation r("R", Schema({{"k", AttrType::kCategorical},
                          {"a", AttrType::kDouble},
                          {"b", AttrType::kDouble}}));
  Relation s("S", Schema({{"k", AttrType::kCategorical},
                          {"c", AttrType::kDouble},
                          {"d", AttrType::kDouble}}));
  for (int i = 0; i < 400; ++i) {
    r.AppendRow({static_cast<double>(rng.Below(9)), rng.Uniform(-2, 2),
                 rng.Uniform(-2, 2)});
    s.AppendRow({static_cast<double>(rng.Below(9)), rng.Uniform(-2, 2),
                 rng.Uniform(-2, 2)});
  }
  InequalityBatchSpec spec;
  spec.r_score_attrs = {1, 2};
  spec.r_score_weights = {0.7, -1.1};
  spec.s_score_attrs = {1};
  spec.s_score_weights = {1.3};
  spec.threshold = 0.25;
  spec.r_measure_attrs = {1, 2};
  spec.s_measure_attrs = {1, 2};
  InequalityBatchResult sorted = InequalityAggregateBatchSorted(r, s, spec);
  InequalityBatchResult naive = InequalityAggregateBatchNaive(r, s, spec);
  EXPECT_NEAR(sorted.count, naive.count, 1e-9);
  for (size_t m = 0; m < 2; ++m) {
    EXPECT_NEAR(sorted.r_sums[m], naive.r_sums[m],
                1e-8 * (1 + std::abs(naive.r_sums[m])));
    EXPECT_NEAR(sorted.s_sums[m], naive.s_sums[m],
                1e-8 * (1 + std::abs(naive.s_sums[m])));
  }
}

TEST(InequalityBatchTest, EmptyMeasures) {
  Relation r("R", Schema({{"k", AttrType::kCategorical},
                          {"a", AttrType::kDouble}}));
  Relation s("S", Schema({{"k", AttrType::kCategorical},
                          {"c", AttrType::kDouble}}));
  r.AppendRow({0, 5.0});
  s.AppendRow({0, 5.0});
  InequalityBatchSpec spec;
  spec.r_score_attrs = {1};
  spec.r_score_weights = {1.0};
  spec.s_score_attrs = {1};
  spec.s_score_weights = {1.0};
  spec.threshold = 0.0;
  InequalityBatchResult res = InequalityAggregateBatchSorted(r, s, spec);
  EXPECT_DOUBLE_EQ(res.count, 1.0);
  EXPECT_TRUE(res.r_sums.empty());
}

class SvmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SvmProperty, SeparatesPlantedHyperplane) {
  SvmFixture fx(40, 3000, GetParam());
  SvmProblem problem;
  problem.r = &fx.r;
  problem.s = &fx.s;
  problem.r_key_attr = 0;
  problem.s_key_attr = 0;
  problem.r_feature_attrs = {1};
  problem.s_feature_attrs = {1};
  problem.label_attr = 2;

  SvmOptions opts;
  opts.iterations = 300;
  SvmTrainStats stats;
  SvmModel model = TrainSvmOverJoin(problem, opts, &stats);
  EXPECT_EQ(stats.aggregate_batches, 600u);  // two sorted passes per step
  EXPECT_GT(stats.join_size, 1000);

  double acc = SvmJoinAccuracy(problem, model);
  EXPECT_GT(acc, 0.97) << "w_r=" << model.r_weights[0]
                       << " w_s=" << model.s_weights[0]
                       << " b=" << model.bias;
  // Weight signs match the planted hyperplane 2*xr - 1.5*ys + 0.5.
  EXPECT_GT(model.r_weights[0], 0);
  EXPECT_LT(model.s_weights[0], 0);
  EXPECT_GE(stats.final_hinge_loss, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmProperty, ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall));

TEST(SvmTest, EmptyJoinGivesZeroModel) {
  Relation r("R", Schema({{"k", AttrType::kCategorical},
                          {"x", AttrType::kDouble},
                          {"label", AttrType::kCategorical}}));
  Relation s("S", Schema({{"k", AttrType::kCategorical},
                          {"y", AttrType::kDouble}}));
  r.AppendRow({1, 0.5, 1});
  s.AppendRow({2, 0.5});  // disjoint keys
  SvmProblem problem;
  problem.r = &r;
  problem.s = &s;
  problem.r_feature_attrs = {1};
  problem.s_feature_attrs = {1};
  problem.label_attr = 2;
  SvmModel model = TrainSvmOverJoin(problem);
  EXPECT_DOUBLE_EQ(model.r_weights[0], 0.0);
  EXPECT_DOUBLE_EQ(model.bias, 0.0);
}

}  // namespace
}  // namespace relborg
