// Tests for the factorized group-by engine (sparse tensors of Sec. 2.1):
// the dinner example with hand-computed groups, plus property tests
// cross-checking against materialized GROUP BY on random databases.
#include <cmath>
#include <map>

#include "baseline/materializer.h"
#include "core/groupby_engine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

class GroupByDinnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MakeDinnerDb(&catalog_);
    query_ = MakeDinnerQuery(catalog_);
  }
  Catalog catalog_;
  JoinQuery query_;
};

TEST_F(GroupByDinnerTest, SumPriceGroupByDish) {
  // Figure 9 (right): SUM(price) GROUP BY dish = {burger: 20, hotdog: 16}.
  RootedTree tree = query_.Root("Orders");
  GroupByAggregate agg =
      SumGroupedBy(query_, "Items", "price", "Orders", "dish");
  GroupByResult result = ComputeGroupBy(tree, agg);
  EXPECT_EQ(result.size(), 2u);
  const double* burger = result.Find(GroupKeyHigh(0));
  const double* hotdog = result.Find(GroupKeyHigh(1));
  ASSERT_NE(burger, nullptr);
  ASSERT_NE(hotdog, nullptr);
  EXPECT_DOUBLE_EQ(*burger, 20.0);
  EXPECT_DOUBLE_EQ(*hotdog, 16.0);
}

TEST_F(GroupByDinnerTest, CountGroupByCustomer) {
  // Elise: 2 orders x 3 items = 6; Steve: 3; Joe: 3.
  RootedTree tree = query_.Root("Items");  // root choice must not matter
  GroupByResult result =
      ComputeGroupBy(tree, CountGroupedBy(query_, "Orders", "customer"));
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyHigh(0)), 6.0);
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyHigh(1)), 3.0);
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyHigh(2)), 3.0);
}

TEST_F(GroupByDinnerTest, PairGroupAcrossBranches) {
  // (day, item) pair counts: cross-relation sparse tensor.
  RootedTree tree = query_.Root("Dish");
  GroupByResult result = ComputeGroupBy(
      tree, CountGroupedByPair(query_, "Orders", "day", "Items", "item"));
  // Monday(0) x patty(0): 1 (Elise Monday burger).
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyBoth(0, 0)), 1.0);
  // Friday(1) x onion(1): Elise burger + Steve hotdog + Joe hotdog = 3.
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyBoth(1, 1)), 3.0);
  // Friday(1) x sausage(3): 2 hotdog orders.
  EXPECT_DOUBLE_EQ(*result.Find(GroupKeyBoth(1, 3)), 2.0);
  // Monday x sausage: absent.
  EXPECT_EQ(result.Find(GroupKeyBoth(0, 3)), nullptr);
}

TEST_F(GroupByDinnerTest, ScalarAggregateUsesUnitKey) {
  RootedTree tree = query_.Root("Orders");
  GroupByAggregate agg;  // plain COUNT(*)
  GroupByResult result = ComputeGroupBy(tree, agg);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(*result.Find(kUnitKey), 12.0);
}

TEST_F(GroupByDinnerTest, SquaredMeasure) {
  RootedTree tree = query_.Root("Orders");
  GroupByAggregate agg;
  int items = query_.IndexOf("Items");
  int price = catalog_.Get("Items")->schema().MustIndexOf("price");
  agg.measure = {{items, price}, {items, price}};  // SUM(price^2)
  GroupByResult result = ComputeGroupBy(tree, agg);
  EXPECT_DOUBLE_EQ(*result.Find(kUnitKey), 2 * 44.0 + 2 * 24.0);
}

// --- Property tests against the materialized reference ---

class GroupByProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(GroupByProperty, MatchesMaterializedGroupBy) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  // Group by the fact's first key attribute, measure = first feature.
  const FeatureRef& mref = db.features[0];
  GroupByAggregate agg = SumGroupedBy(db.query, mref.relation, mref.attr,
                                      db.query.relation(0)->name(), "k1");
  RootedTree tree = db.query.Root(0);
  GroupByResult got = ComputeGroupBy(tree, agg);

  // Reference: materialize and group manually.
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{db.query.relation(0)->name(), "k1"},
                                   {mref.relation, mref.attr}});
  std::map<int32_t, double> want;
  for (size_t r = 0; r < m.num_rows(); ++r) {
    want[static_cast<int32_t>(m.At(r, 0))] += m.At(r, 1);
  }
  size_t matched = 0;
  for (const auto& [k, v] : want) {
    const double* g = got.Find(GroupKeyHigh(k));
    ASSERT_NE(g, nullptr) << "missing group " << k;
    EXPECT_NEAR(*g, v, 1e-7 * (1 + std::abs(v)));
    ++matched;
  }
  EXPECT_EQ(matched, got.size());
}

TEST_P(GroupByProperty, PairGroupMatchesMaterialized) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  // Pair: fact key k1 x another relation's key (its own join attribute).
  const Relation* d1 = db.query.relation(1);
  std::string attr2 = d1->schema().attr(0).name;
  GroupByAggregate agg = CountGroupedByPair(
      db.query, db.query.relation(0)->name(), "k1", d1->name(), attr2);
  RootedTree tree = db.query.Root(0);
  GroupByResult got = ComputeGroupBy(tree, agg);

  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{{db.query.relation(0)->name(), "k1"},
                                   {d1->name(), attr2}});
  std::map<std::pair<int32_t, int32_t>, double> want;
  for (size_t r = 0; r < m.num_rows(); ++r) {
    want[{static_cast<int32_t>(m.At(r, 0)),
          static_cast<int32_t>(m.At(r, 1))}] += 1.0;
  }
  size_t matched = 0;
  for (const auto& [k, v] : want) {
    const double* g = got.Find(GroupKeyBoth(k.first, k.second));
    ASSERT_NE(g, nullptr);
    EXPECT_NEAR(*g, v, 1e-9);
    ++matched;
  }
  EXPECT_EQ(matched, got.size());
}

TEST_P(GroupByProperty, FiltersRespected) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FilterSet filters(db.query.num_relations());
  filters[0].push_back(Predicate::InSet(0, {0, 1, 2}));
  GroupByAggregate agg =
      CountGroupedBy(db.query, db.query.relation(0)->name(), "k1");
  RootedTree tree = db.query.Root(0);
  GroupByResult got = ComputeGroupBy(tree, agg, filters);
  got.ForEach([&](uint64_t key, double) {
    int32_t k = UnpackHigh(key);
    EXPECT_GE(k, 0);
    EXPECT_LE(k, 2);
  });
  EXPECT_NEAR([&] {
    double total = 0;
    got.ForEach([&](uint64_t, double v) { total += v; });
    return total;
  }(), CountJoin(tree, filters), 1e-9);
}

TEST_P(GroupByProperty, BatchMatchesIndividualEvaluation) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  RootedTree tree = db.query.Root(0);
  const std::string fact = db.query.relation(0)->name();
  const Relation* d1 = db.query.relation(1);
  std::vector<GroupByAggregate> batch{
      GroupByAggregate{},  // COUNT(*)
      CountGroupedBy(db.query, fact, "k1"),
      SumGroupedBy(db.query, db.features[0].relation, db.features[0].attr,
                   fact, "k1"),
      CountGroupedByPair(db.query, fact, "k1", d1->name(),
                         d1->schema().attr(0).name)};
  std::vector<GroupByResult> got = ComputeGroupByBatch(tree, batch);
  ASSERT_EQ(got.size(), batch.size());
  for (size_t q = 0; q < batch.size(); ++q) {
    GroupByResult want = ComputeGroupBy(tree, batch[q]);
    EXPECT_EQ(got[q].size(), want.size()) << q;
    want.ForEach([&](uint64_t key, double v) {
      const double* g = got[q].Find(key);
      ASSERT_NE(g, nullptr) << q;
      EXPECT_NEAR(*g, v, 1e-8 * (1 + std::abs(v))) << q;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, GroupByProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

}  // namespace
}  // namespace relborg
