// Differential suite for the serve layer (src/serve/snapshot_server.h):
// every read a client thread takes from a LIVE pipeline must be byte-exact
// against a paused-pipeline oracle at the same epoch horizon — the serial
// replay advanced epoch-by-epoch, its state captured at every boundary.
// Covers all three strategies (zero-copy pinned serving for CovarFivm,
// boundary copies for HigherOrderIvm / FirstOrderIvm) across ExecPolicy
// thread counts {1, 2, 4}, plus the staleness knob, long-held snapshots
// surviving merge traffic, and model serving. Runs under TSan in CI (the
// reader threads hammer BeginSnapshot/Covar/GroupBy against the pipeline's
// committer, compute and applier threads).
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "serve/snapshot_server.h"
#include "stream/stream_scheduler.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

using GroupByResult = std::vector<std::pair<uint64_t, double>>;

ExecPolicy MakePolicy(int threads) {
  ExecPolicy policy;
  policy.threads = threads;
  policy.partition_grain = 16;
  return policy;
}

StreamOptions CoalescingOptions() {
  StreamOptions options;
  options.epoch_rows = 96;
  options.epoch_batches = 5;
  return options;
}

std::vector<UpdateBatch> MakeMixed(const RandomDb& db, uint64_t seed) {
  MixedStreamOptions opts;
  opts.insert.batch_size = 17;
  opts.insert.seed = seed;
  opts.delete_probability = 0.35;
  return BuildMixedStream(db.query, opts);
}

// A node whose view has multiple keys: the root's first child if any
// (leaf views are keyed by the parent edge), else the root itself.
int GroupByNode(const ShadowDb& shadow) {
  const int root = shadow.tree().root();
  const std::vector<int>& children = shadow.tree().node(root).children;
  return children.empty() ? root : children[0];
}

// What a paused pipeline would serve at each epoch horizon. Horizon 0 is
// the empty database; horizon h is the state after serially committing and
// maintaining epochs [0, h).
struct Oracle {
  std::map<uint64_t, CovarPayload> covar;
  std::map<uint64_t, std::vector<size_t>> watermark;
  std::map<uint64_t, GroupByResult> groups;  // pinned strategies only
  uint64_t max_horizon = 0;
};

// Builds the oracle by advancing the serial replay one epoch at a time and
// capturing state at every boundary — through the SAME read entry points
// the server uses (PinServe/CovarAt/GroupByAt for CovarFivm, Current() for
// the copy-based strategies).
template <typename Strategy>
Oracle BuildOracle(const RandomDb& db, const std::vector<UpdateBatch>& stream,
                   const StreamOptions& options) {
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(1));
  const int gb_node = GroupByNode(shadow);
  Oracle oracle;
  std::vector<size_t> wm(shadow.tree().num_nodes(), 0);
  auto record = [&](uint64_t horizon) {
    oracle.watermark[horizon] = wm;
    if constexpr (serve_internal::HasServePin<Strategy>::value) {
      typename Strategy::ServePin pin = strategy.PinServe();
      oracle.covar[horizon] = strategy.CovarAt(pin).payload();
      oracle.groups[horizon] = strategy.GroupByAt(gb_node, pin);
      strategy.UnpinServe();
    } else {
      oracle.covar[horizon] = strategy.Current().payload();
    }
    oracle.max_horizon = horizon;
  };
  record(0);
  EpochAssembler assembler(&shadow, options);
  StreamEpoch epoch;
  auto apply = [&] {
    stream_internal::CommitEpoch(&shadow, &epoch);
    stream_internal::MaintainEpoch(&strategy, &epoch);
    if (!epoch.ranges.empty()) wm = epoch.ranges.back().visible;
    record(epoch.id + 1);
    epoch = StreamEpoch();
  };
  for (const UpdateBatch& batch : stream) {
    if (assembler.Add(batch, &epoch)) apply();
  }
  if (assembler.Flush(&epoch)) apply();
  return oracle;
}

void ExpectPayloadExact(const CovarPayload& got, const CovarPayload& want,
                        uint64_t horizon) {
  EXPECT_EQ(got.count, want.count) << "horizon " << horizon;
  ASSERT_EQ(got.sum.size(), want.sum.size());
  ASSERT_EQ(got.quad.size(), want.quad.size());
  for (size_t i = 0; i < want.sum.size(); ++i) {
    EXPECT_EQ(got.sum[i], want.sum[i]) << "sum[" << i << "] @" << horizon;
  }
  for (size_t i = 0; i < want.quad.size(); ++i) {
    EXPECT_EQ(got.quad[i], want.quad[i]) << "quad[" << i << "] @" << horizon;
  }
}

// One observation a reader thread took from the live server. Verified
// against the oracle on the main thread after everything joins (gtest
// assertions stay single-threaded).
struct Observation {
  uint64_t horizon = 0;
  std::vector<size_t> watermark;
  CovarPayload covar;
  GroupByResult groups;
  bool has_groups = false;
};

// Runs the live pipeline with `kReaders` concurrent snapshot clients and
// checks every observation byte-exact against the oracle.
template <typename Strategy>
void RunLiveAndCheck(const RandomDb& db, const std::vector<UpdateBatch>& stream,
                     const StreamOptions& options, int threads,
                     const ServeOptions& serve, const Oracle& oracle) {
  constexpr bool kPinned = serve_internal::HasServePin<Strategy>::value;
  constexpr int kReaders = 3;
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  Strategy strategy(&shadow, &fm, MakePolicy(threads));
  const int gb_node = GroupByNode(shadow);
  std::vector<std::vector<Observation>> observed(kReaders);
  {
    StreamScheduler<Strategy> scheduler(&shadow, &strategy, options);
    SnapshotServer<Strategy> server(&scheduler, &shadow, &strategy, serve);
    std::atomic<bool> done{false};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        while (true) {
          // Read the flag BEFORE the snapshot: when it is already set the
          // pipeline has finished, so this final iteration observes the
          // last published horizon.
          const bool last = done.load(std::memory_order_acquire);
          auto txn = server.BeginSnapshot();
          Observation o;
          o.horizon = txn.horizon_epochs();
          o.watermark = txn.watermark();
          o.covar = server.Covar(txn).payload();
          if constexpr (kPinned) {
            o.groups = server.GroupBy(txn, gb_node);
            o.has_groups = true;
          }
          server.EndSnapshot(&txn);
          observed[t].push_back(std::move(o));
          if (last) break;
        }
      });
    }
    for (const UpdateBatch& batch : stream) scheduler.Push(batch);
    scheduler.Finish();
    done.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();
  }
  uint64_t max_seen = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    ASSERT_FALSE(per_thread.empty());
    for (const Observation& o : per_thread) {
      max_seen = std::max(max_seen, o.horizon);
      auto covar_it = oracle.covar.find(o.horizon);
      ASSERT_NE(covar_it, oracle.covar.end())
          << "server published unknown horizon " << o.horizon;
      ExpectPayloadExact(o.covar, covar_it->second, o.horizon);
      EXPECT_EQ(o.watermark, oracle.watermark.at(o.horizon))
          << "horizon " << o.horizon;
      if (o.has_groups) {
        EXPECT_EQ(o.groups, oracle.groups.at(o.horizon))
            << "horizon " << o.horizon;
      }
    }
  }
  if (serve.snapshot_every_epochs <= 1) {
    // The post-Finish iteration of every reader sees the final horizon.
    EXPECT_EQ(max_seen, oracle.max_horizon);
  }
}

class ServeSnapshotProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

// The core differential property: live concurrent snapshot reads are
// byte-exact against the paused-pipeline oracle at their horizon, for all
// three strategies across ExecPolicy thread counts.
TEST_P(ServeSnapshotProperty, LiveReadsMatchPausedPipelineOracle) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 17);
  ASSERT_FALSE(stream.empty());
  const StreamOptions options = CoalescingOptions();
  const ServeOptions serve;
  const Oracle fivm = BuildOracle<CovarFivm>(db, stream, options);
  const Oracle higher = BuildOracle<HigherOrderIvm>(db, stream, options);
  const Oracle first = BuildOracle<FirstOrderIvm>(db, stream, options);
  ASSERT_GT(fivm.max_horizon, 1u) << "stream too short to exercise serving";
  for (int threads : {1, 2, 4}) {
    RunLiveAndCheck<CovarFivm>(db, stream, options, threads, serve, fivm);
    RunLiveAndCheck<HigherOrderIvm>(db, stream, options, threads, serve,
                                    higher);
    RunLiveAndCheck<FirstOrderIvm>(db, stream, options, threads, serve,
                                   first);
  }
}

// The staleness knob: with snapshot_every_epochs = K the server only ever
// publishes horizons that are multiples of K (plus the initial 0), and
// every read is still byte-exact at its (staler) horizon.
TEST_P(ServeSnapshotProperty, StalenessKnobBoundsPublishedHorizons) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 31);
  const StreamOptions options = CoalescingOptions();
  ServeOptions serve;
  serve.snapshot_every_epochs = 3;
  const Oracle oracle = BuildOracle<CovarFivm>(db, stream, options);
  // Reuse the differential harness; it asserts every observed horizon
  // exists in the oracle and matches byte-exact.
  RunLiveAndCheck<CovarFivm>(db, stream, options, /*threads=*/2, serve,
                             oracle);
  // And separately pin down the knob's horizon arithmetic.
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm strategy(&shadow, &fm, MakePolicy(2));
  StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
  SnapshotServer<CovarFivm> server(&scheduler, &shadow, &strategy, serve);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  scheduler.Finish();
  auto txn = server.BeginSnapshot();
  EXPECT_EQ(txn.horizon_epochs() % 3, 0u);
  EXPECT_LE(oracle.max_horizon - txn.horizon_epochs(), 2u);
  server.EndSnapshot(&txn);
  EXPECT_EQ(server.published_snapshots(), 1 + oracle.max_horizon / 3);
}

// A transaction held open across many epochs of merge traffic still reads
// its original horizon byte-exact (the pin table's COW protection), and
// overlapping transactions may close in any order.
TEST_P(ServeSnapshotProperty, LongHeldSnapshotsSurviveMergeTraffic) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology, /*fact_rows=*/40);
  std::vector<UpdateBatch> stream = MakeMixed(db, seed + 47);
  const StreamOptions options = CoalescingOptions();
  const Oracle oracle = BuildOracle<CovarFivm>(db, stream, options);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm strategy(&shadow, &fm, MakePolicy(2));
  StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
  SnapshotServer<CovarFivm> server(&scheduler, &shadow, &strategy);
  const int gb_node = GroupByNode(shadow);
  // Open transactions at staggered points of the ingest; keep all of them
  // open until after Finish.
  std::vector<SnapshotServer<CovarFivm>::ReadTxn> txns;
  const size_t step = std::max<size_t>(1, stream.size() / 4);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i % step == 0) txns.push_back(server.BeginSnapshot());
    scheduler.Push(stream[i]);
  }
  scheduler.Finish();
  txns.push_back(server.BeginSnapshot());  // the final horizon
  // Read and close in an order different from open order (newest first):
  // unpin order independence at the server level.
  for (size_t i = txns.size(); i-- > 0;) {
    const uint64_t h = txns[i].horizon_epochs();
    ExpectPayloadExact(server.Covar(txns[i]).payload(), oracle.covar.at(h),
                       h);
    EXPECT_EQ(server.GroupBy(txns[i], gb_node), oracle.groups.at(h));
    server.EndSnapshot(&txns[i]);
  }
  EXPECT_EQ(txns.front().open(), false);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, ServeSnapshotProperty,
    ::testing::Combine(
        ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall),
        ::testing::Values(Topology::kStar, Topology::kChain,
                          Topology::kBushy)));

// Model serving: the first TrainModel call per response is a cold-start
// train on the snapshot's covariance batch, so it must equal a direct
// TrainRidgeGd on the oracle's payload at the same horizon bit-for-bit.
// The second call warm-starts from the cached weights and must converge at
// least as fast to the same optimum.
TEST(ServeModelTest, ServedModelMatchesDirectTraining) {
  RandomDb db = MakeRandomDb(7, Topology::kBushy, /*fact_rows=*/50);
  // Insert-only: deletes could leave the final join too sparse to train.
  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 17;
  stream_opts.seed = 24;
  std::vector<UpdateBatch> stream = BuildInsertStream(db.query, stream_opts);
  const StreamOptions options = CoalescingOptions();
  const Oracle oracle = BuildOracle<CovarFivm>(db, stream, options);
  ShadowDb shadow(db.query, 0);
  FeatureMap fm(shadow.query(), db.features);
  CovarFivm strategy(&shadow, &fm, MakePolicy(2));
  StreamScheduler<CovarFivm> scheduler(&shadow, &strategy, options);
  SnapshotServer<CovarFivm> server(&scheduler, &shadow, &strategy);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  scheduler.Finish();
  auto txn = server.BeginSnapshot();
  const uint64_t h = txn.horizon_epochs();
  ASSERT_EQ(h, oracle.max_horizon);
  ASSERT_GT(oracle.covar.at(h).count, 0) << "empty join; pick another seed";
  TrainInfo cold_info;
  LinearModel served = server.TrainModel(txn, /*response=*/0, {}, &cold_info);
  CovarMatrix direct_m(fm.num_features(), oracle.covar.at(h));
  LinearModel direct = TrainRidgeGd(direct_m, /*response=*/0);
  ASSERT_EQ(served.weights.size(), direct.weights.size());
  for (size_t i = 0; i < direct.weights.size(); ++i) {
    EXPECT_EQ(served.weights[i], direct.weights[i]) << i;
  }
  EXPECT_EQ(served.bias, direct.bias);
  TrainInfo warm_info;
  LinearModel warm = server.TrainModel(txn, /*response=*/0, {}, &warm_info);
  EXPECT_LE(warm_info.iterations, cold_info.iterations);
  for (size_t i = 0; i < direct.weights.size(); ++i) {
    EXPECT_NEAR(warm.weights[i], direct.weights[i], 1e-6) << i;
  }
  server.EndSnapshot(&txn);
}

}  // namespace
}  // namespace relborg
