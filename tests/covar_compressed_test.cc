// The compressed (subtree-restricted payload) covariance engine must agree
// exactly with the full-width engine and the materialized reference.
#include <cmath>

#include "baseline/materializer.h"
#include "core/covar_compressed.h"
#include "core/covar_engine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;
using testing::MakeRandomDb;
using testing::RandomDb;
using testing::ReferenceCovar;
using testing::Topology;

TEST(CovarCompressedTest, DinnerExample) {
  Catalog catalog;
  MakeDinnerDb(&catalog);
  JoinQuery query = MakeDinnerQuery(catalog);
  FeatureMap fm(query, {{"Items", "price"}});
  CovarMatrix m = ComputeCovarMatrixCompressed(query.Root("Orders"), fm);
  EXPECT_DOUBLE_EQ(m.count(), 12.0);
  EXPECT_DOUBLE_EQ(m.Sum(0), 36.0);
  EXPECT_DOUBLE_EQ(m.Moment(0, 0), 2 * 44.0 + 2 * 24.0);
}

class CovarCompressedProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, Topology>> {};

TEST_P(CovarCompressedProperty, MatchesFullWidthEngineAllRoots) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  const int n = fm.num_features();
  for (int root = 0; root < db.query.num_relations(); ++root) {
    RootedTree tree = db.query.Root(root);
    CovarMatrix full = ComputeCovarMatrix(tree, fm);
    CovarMatrix compressed = ComputeCovarMatrixCompressed(tree, fm);
    for (int i = 0; i <= n; ++i) {
      for (int j = i; j <= n; ++j) {
        EXPECT_NEAR(compressed.Moment(i, j), full.Moment(i, j),
                    1e-7 * (1 + std::abs(full.Moment(i, j))))
            << "root=" << root << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST_P(CovarCompressedProperty, MatchesMaterializedWithFilters) {
  auto [seed, topology] = GetParam();
  RandomDb db = MakeRandomDb(seed, topology);
  FeatureMap fm(db.query, db.features);
  RootedTree tree = db.query.Root(0);
  FilterSet filters(db.query.num_relations());
  filters[fm.NodeOf(0)].push_back(Predicate::Ge(fm.AttrOf(0), -0.5));
  filters[0].push_back(Predicate::InSet(0, {0, 1, 2, 3, 4}));

  DataMatrix matrix = MaterializeJoin(tree, fm, filters);
  CovarPayload ref = ReferenceCovar(matrix);
  CovarMatrix m = ComputeCovarMatrixCompressed(tree, fm, filters);
  const int n = fm.num_features();
  EXPECT_NEAR(m.count(), ref.count, 1e-7 * (1 + ref.count));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(m.Sum(i), ref.sum[i], 1e-7 * (1 + std::abs(ref.sum[i])));
    for (int j = i; j < n; ++j) {
      double want = ref.quad[UpperTriIndex(n, i, j)];
      EXPECT_NEAR(m.Moment(i, j), want, 1e-7 * (1 + std::abs(want)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, CovarCompressedProperty,
    ::testing::Combine(::testing::ValuesIn(relborg::testing::kPropertySeeds),
                       ::testing::Values(Topology::kStar, Topology::kChain,
                                         Topology::kBushy)));

TEST(CovarCompressedTest, EmptyJoin) {
  Catalog catalog;
  Schema fact({{"k", AttrType::kCategorical}, {"x", AttrType::kDouble}});
  Schema dim({{"k", AttrType::kCategorical}, {"y", AttrType::kDouble}});
  Relation* f = catalog.AddRelation("F", fact);
  Relation* d = catalog.AddRelation("D", dim);
  f->AppendRow({1, 2.0});
  d->AppendRow({9, 3.0});  // no matching keys
  JoinQuery q;
  q.AddRelation(f);
  q.AddRelation(d);
  q.AddJoin("F", "D", {"k"});
  FeatureMap fm(q, {{"F", "x"}, {"D", "y"}});
  CovarMatrix m = ComputeCovarMatrixCompressed(q.Root("F"), fm);
  EXPECT_DOUBLE_EQ(m.count(), 0.0);
}

TEST(CovarCompressedTest, PayloadBytesShrink) {
  // A dimension view carrying 1 of 12 features stores ~66x fewer doubles.
  EXPECT_LT(CompressedPayloadBytes(1), CompressedPayloadBytes(12) / 20);
}

}  // namespace
}  // namespace relborg
