// Property tests for the ring layer: the covariance ring and the group-by
// (sparse tensor) ring must satisfy the (semi)ring axioms of Sec. 3.1 of the
// paper; lifts must match brute-force moments.
#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "ring/covariance.h"
#include "ring/group_ring.h"
#include "util/rng.h"

namespace relborg {
namespace {

constexpr int kN = 4;
constexpr double kTol = 1e-9;

CovarPayload RandomPayload(Rng* rng) {
  CovarPayload p = CovarPayload::Zero(kN);
  p.count = rng->Uniform(0.0, 3.0);
  for (auto& s : p.sum) s = rng->Uniform(-2.0, 2.0);
  for (auto& q : p.quad) q = rng->Uniform(-2.0, 2.0);
  return p;
}

void ExpectNear(const CovarPayload& a, const CovarPayload& b) {
  ASSERT_EQ(a.sum.size(), b.sum.size());
  EXPECT_NEAR(a.count, b.count, kTol);
  for (size_t i = 0; i < a.sum.size(); ++i) {
    EXPECT_NEAR(a.sum[i], b.sum[i], kTol);
  }
  for (size_t i = 0; i < a.quad.size(); ++i) {
    EXPECT_NEAR(a.quad[i], b.quad[i], kTol);
  }
}

class CovarRingAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CovarRingAxioms, AdditionCommutes) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(&rng);
  CovarPayload b = RandomPayload(&rng);
  CovarPayload ab = a;
  CovarAddInPlace(&ab, b);
  CovarPayload ba = b;
  CovarAddInPlace(&ba, a);
  ExpectNear(ab, ba);
}

TEST_P(CovarRingAxioms, MultiplicationCommutes) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(&rng);
  CovarPayload b = RandomPayload(&rng);
  CovarPayload ab;
  CovarPayload ba;
  CovarMulInto(kN, a, b, &ab);
  CovarMulInto(kN, b, a, &ba);
  ExpectNear(ab, ba);
}

TEST_P(CovarRingAxioms, MultiplicationAssociates) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(&rng);
  CovarPayload b = RandomPayload(&rng);
  CovarPayload c = RandomPayload(&rng);
  CovarPayload ab, ab_c, bc, a_bc;
  CovarMulInto(kN, a, b, &ab);
  CovarMulInto(kN, ab, c, &ab_c);
  CovarMulInto(kN, b, c, &bc);
  CovarMulInto(kN, a, bc, &a_bc);
  ExpectNear(ab_c, a_bc);
}

TEST_P(CovarRingAxioms, DistributivityOverAddition) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(&rng);
  CovarPayload b = RandomPayload(&rng);
  CovarPayload c = RandomPayload(&rng);
  // a * (b + c)
  CovarPayload bc = b;
  CovarAddInPlace(&bc, c);
  CovarPayload lhs;
  CovarMulInto(kN, a, bc, &lhs);
  // a * b + a * c
  CovarPayload ab, ac;
  CovarMulInto(kN, a, b, &ab);
  CovarMulInto(kN, a, c, &ac);
  CovarPayload rhs = ab;
  CovarAddInPlace(&rhs, ac);
  ExpectNear(lhs, rhs);
}

TEST_P(CovarRingAxioms, Identities) {
  Rng rng(GetParam());
  CovarPayload a = RandomPayload(&rng);
  // a * 1 == a
  CovarPayload one = CovarPayload::One(kN);
  CovarPayload a1;
  CovarMulInto(kN, a, one, &a1);
  ExpectNear(a1, a);
  // a + 0 == a
  CovarPayload zero = CovarPayload::Zero(kN);
  CovarPayload a0 = a;
  CovarAddInPlace(&a0, zero);
  ExpectNear(a0, a);
  // a * 0 == 0
  CovarPayload az;
  CovarMulInto(kN, a, zero, &az);
  ExpectNear(az, zero);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CovarRingAxioms,
                         ::testing::ValuesIn(relborg::testing::kPropertySeeds));

TEST(CovarLiftTest, SingleTupleMoments) {
  // Lift of a tuple with features {0: 2.0, 2: -3.0}.
  CovarPayload p;
  CovarLiftInto(kN, {{0, 2.0}, {2, -3.0}}, &p);
  EXPECT_DOUBLE_EQ(p.count, 1.0);
  EXPECT_DOUBLE_EQ(p.sum[0], 2.0);
  EXPECT_DOUBLE_EQ(p.sum[1], 0.0);
  EXPECT_DOUBLE_EQ(p.sum[2], -3.0);
  EXPECT_DOUBLE_EQ(p.quad[UpperTriIndex(kN, 0, 0)], 4.0);
  EXPECT_DOUBLE_EQ(p.quad[UpperTriIndex(kN, 0, 2)], -6.0);
  EXPECT_DOUBLE_EQ(p.quad[UpperTriIndex(kN, 2, 2)], 9.0);
  EXPECT_DOUBLE_EQ(p.quad[UpperTriIndex(kN, 1, 1)], 0.0);
}

TEST(CovarLiftTest, ProductOfLiftsMatchesJointLift) {
  // Lifting disjoint feature sets and multiplying equals lifting jointly —
  // the core factorization identity.
  CovarPayload a, b, prod, joint;
  CovarLiftInto(kN, {{0, 1.5}}, &a);
  CovarLiftInto(kN, {{2, -2.0}, {3, 0.5}}, &b);
  CovarMulInto(kN, a, b, &prod);
  CovarLiftInto(kN, {{0, 1.5}, {2, -2.0}, {3, 0.5}}, &joint);
  EXPECT_DOUBLE_EQ(prod.count, 1.0);
  for (int i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(prod.sum[i], joint.sum[i]) << i;
    for (int j = i; j < kN; ++j) {
      EXPECT_DOUBLE_EQ(prod.quad[UpperTriIndex(kN, i, j)],
                       joint.quad[UpperTriIndex(kN, i, j)])
          << i << "," << j;
    }
  }
}

TEST(UpperTriTest, IndexingIsBijective) {
  const int n = 7;
  std::vector<int> hits(UpperTriSize(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      ++hits[UpperTriIndex(n, i, j)];
    }
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(CovarMatrixTest, MomentConventions) {
  CovarPayload p = CovarPayload::Zero(2);
  p.count = 10;
  p.sum = {3.0, 4.0};
  p.quad = {9.0, 12.0, 16.0};  // (0,0), (0,1), (1,1)
  CovarMatrix m(2, p);
  EXPECT_DOUBLE_EQ(m.Moment(2, 2), 10.0);
  EXPECT_DOUBLE_EQ(m.Moment(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.Moment(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.Moment(0, 1), 12.0);
  EXPECT_DOUBLE_EQ(m.Moment(1, 0), 12.0);
  // cov(0,1) = 12/10 - (3/10)(4/10)
  EXPECT_NEAR(m.Covariance(0, 1), 1.2 - 0.12, 1e-12);
}

// --- Group ring ---

TEST(GroupRingTest, KeysAndSlots) {
  uint64_t hi = GroupKeyHigh(5);
  uint64_t lo = GroupKeyLow(9);
  uint64_t both = MergeGroupKeys(hi, lo);
  EXPECT_EQ(both, GroupKeyBoth(5, 9));
  EXPECT_EQ(MergeGroupKeys(kScalarGroupKey, hi), hi);
  EXPECT_EQ(CanonicalGroupKey(kScalarGroupKey), kUnitKey);
  EXPECT_EQ(CanonicalGroupKey(both), both);
}

TEST(GroupRingTest, AddMergesByKey) {
  GroupPayload a = GroupPayload::Single(GroupKeyLow(1), 2.0);
  a.AddEntry(GroupKeyLow(2), 3.0);
  GroupPayload b = GroupPayload::Single(GroupKeyLow(2), 5.0);
  a.AddInPlace(b);
  EXPECT_EQ(a.size(), 2u);
  for (const auto& e : a.entries()) {
    if (e.key == GroupKeyLow(1)) {
      EXPECT_DOUBLE_EQ(e.value, 2.0);
    }
    if (e.key == GroupKeyLow(2)) {
      EXPECT_DOUBLE_EQ(e.value, 8.0);
    }
  }
}

TEST(GroupRingTest, ScalarProductScales) {
  GroupPayload a = GroupPayload::Single(GroupKeyLow(1), 2.0);
  a.AddEntry(GroupKeyLow(2), 3.0);
  GroupPayload s = GroupPayload::Single(kScalarGroupKey, 4.0);
  GroupPayload out;
  GroupMulInto(a, s, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.entries()[0].value, 8.0);
  EXPECT_DOUBLE_EQ(out.entries()[1].value, 12.0);
  // Commutes.
  GroupPayload out2;
  GroupMulInto(s, a, &out2);
  EXPECT_EQ(out2.size(), 2u);
}

TEST(GroupRingTest, OuterProductMergesSlots) {
  GroupPayload a = GroupPayload::Single(GroupKeyHigh(1), 2.0);
  a.AddEntry(GroupKeyHigh(2), 3.0);
  GroupPayload b = GroupPayload::Single(GroupKeyLow(7), 10.0);
  GroupPayload out;
  GroupMulInto(a, b, &out);
  ASSERT_EQ(out.size(), 2u);
  const double* v17 = nullptr;
  for (const auto& e : out.entries()) {
    if (e.key == GroupKeyBoth(1, 7)) v17 = &e.value;
  }
  ASSERT_NE(v17, nullptr);
  EXPECT_DOUBLE_EQ(*v17, 20.0);
}

TEST(GroupRingTest, OneIsMultiplicativeIdentity) {
  GroupPayload a = GroupPayload::Single(GroupKeyLow(3), 2.5);
  GroupPayload out;
  GroupMulInto(a, GroupPayload::One(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.entries()[0].key, GroupKeyLow(3));
  EXPECT_DOUBLE_EQ(out.entries()[0].value, 2.5);
}

TEST(GroupRingTest, EmptyIsAbsorbingForMul) {
  GroupPayload a = GroupPayload::Single(GroupKeyLow(3), 2.5);
  GroupPayload zero;
  GroupPayload out;
  GroupMulInto(a, zero, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GroupRingTest, ScalarValue) {
  GroupPayload p = GroupPayload::Single(kScalarGroupKey, 6.0);
  EXPECT_DOUBLE_EQ(p.ScalarValue(), 6.0);
  GroupPayload q = GroupPayload::Single(GroupKeyLow(1), 6.0);
  EXPECT_DOUBLE_EQ(q.ScalarValue(), 0.0);
}

}  // namespace
}  // namespace relborg
