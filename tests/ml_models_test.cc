// Tests for decision trees, PCA, mutual information / Chow-Liu, FD
// reparameterization, and model selection.
#include <cmath>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "gtest/gtest.h"
#include "ml/decision_tree.h"
#include "ml/fd_reparam.h"
#include "ml/model_selection.h"
#include "ml/mutual_information.h"
#include "ml/pca.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeRandomDb;
using testing::RandomDb;
using testing::Topology;

// --- Decision trees ---

// A two-relation database with an obvious split structure.
struct TreeFixture {
  Catalog catalog;
  JoinQuery query;
};

void BuildTreeDb(TreeFixture* fx, int rows = 2000) {
  Schema fact({{"k", AttrType::kCategorical},
               {"x", AttrType::kDouble},
               {"y", AttrType::kDouble}});
  Schema dim({{"k", AttrType::kCategorical},
              {"g", AttrType::kCategorical},
              {"z", AttrType::kDouble}});
  Relation* f = fx->catalog.AddRelation("F", fact);
  Relation* d = fx->catalog.AddRelation("D", dim);
  Rng rng(17);
  const int kDomain = 20;
  std::vector<double> zs(kDomain);
  for (int k = 0; k < kDomain; ++k) {
    zs[k] = rng.Uniform(-1, 1);
    d->AppendRow({static_cast<double>(k), static_cast<double>(k % 3), zs[k]});
  }
  for (int i = 0; i < rows; ++i) {
    int k = static_cast<int>(rng.Below(kDomain));
    double x = rng.Uniform(-2, 2);
    // Piecewise response: step on x at 0.5, step on z at 0.
    double y = (x >= 0.5 ? 5.0 : 0.0) + (zs[k] >= 0 ? 2.0 : 0.0) +
               rng.Gaussian(0, 0.1);
    f->AppendRow({static_cast<double>(k), x, y});
  }
  fx->query.AddRelation(f);
  fx->query.AddRelation(d);
  fx->query.AddJoin("F", "D", {"k"});
}

TEST(DecisionTreeTest, FindsPlantedSplits) {
  TreeFixture fx;
  BuildTreeDb(&fx);
  std::vector<TreeFeature> features{{"F", "x", false}, {"D", "z", false}};
  DecisionTreeOptions opts;
  opts.max_depth = 3;
  opts.thresholds_per_feature = 16;
  DecisionTree tree = DecisionTree::TrainRegression(
      fx.query, FeatureRef{"F", "y"}, features, opts);
  EXPECT_GT(tree.num_nodes(), 3);
  EXPECT_GT(tree.aggregates_evaluated(), 0u);

  // MSE over the materialized join must be far below the response variance.
  RootedTree rt = fx.query.Root("F");
  DataMatrix data = MaterializeJoin(
      rt, std::vector<ColumnRef>{{"F", "x"}, {"D", "z"}, {"F", "y"}});
  double mse = tree.Mse(data, 2);
  double mean = 0, var = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) mean += data.At(r, 2);
  mean /= static_cast<double>(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    var += (data.At(r, 2) - mean) * (data.At(r, 2) - mean);
  }
  var /= static_cast<double>(data.num_rows());
  EXPECT_LT(mse, 0.1 * var);
  EXPECT_LE(tree.depth(), opts.max_depth);
}

TEST(DecisionTreeTest, CategoricalSplits) {
  TreeFixture fx;
  BuildTreeDb(&fx);
  // Response depends on g only through z's sign; a categorical-only tree
  // still must beat the mean predictor using g as proxy where informative.
  std::vector<TreeFeature> features{{"F", "x", false}, {"D", "g", true}};
  DecisionTree tree = DecisionTree::TrainRegression(
      fx.query, FeatureRef{"F", "y"}, features, {});
  EXPECT_GT(tree.num_nodes(), 1);
  RootedTree rt = fx.query.Root("F");
  DataMatrix data = MaterializeJoin(
      rt, std::vector<ColumnRef>{{"F", "x"}, {"D", "g"}, {"F", "y"}});
  double mse = tree.Mse(data, 2);
  EXPECT_LT(mse, 4.0);  // x-splits alone capture the big step
}

TEST(DecisionTreeTest, ClassificationOnSeparableData) {
  Catalog catalog;
  Schema fact({{"k", AttrType::kCategorical},
               {"x", AttrType::kDouble},
               {"label", AttrType::kCategorical}});
  Schema dim({{"k", AttrType::kCategorical}});
  Relation* f = catalog.AddRelation("F", fact);
  Relation* d = catalog.AddRelation("D", dim);
  d->AppendRow({0});
  Rng rng(23);
  for (int i = 0; i < 1500; ++i) {
    double x = rng.Uniform(-1, 1);
    int label = x >= 0.2 ? 1 : 0;
    // 5% label noise.
    if (rng.Uniform() < 0.05) label = 1 - label;
    f->AppendRow({0, x, static_cast<double>(label)});
  }
  JoinQuery q;
  q.AddRelation(f);
  q.AddRelation(d);
  q.AddJoin("F", "D", {"k"});
  DecisionTreeOptions opts;
  opts.max_depth = 2;
  opts.thresholds_per_feature = 20;
  DecisionTree tree = DecisionTree::TrainClassification(
      q, FeatureRef{"F", "label"}, {{"F", "x", false}}, opts);
  // Accuracy on the training data should be ~95%.
  int correct = 0;
  for (size_t r = 0; r < f->num_rows(); ++r) {
    double row[1] = {f->Double(r, 1)};
    if (static_cast<int>(tree.Predict(row)) == f->Cat(r, 2)) ++correct;
  }
  EXPECT_GT(correct, 1350);
}

// --- PCA ---

TEST(PcaTest, RecoversDominantDirection) {
  // Data concentrated along (1,1)/sqrt(2) in features 0,1; feature 2 noise.
  Catalog catalog;
  Schema s({{"k", AttrType::kCategorical},
            {"a", AttrType::kDouble},
            {"b", AttrType::kDouble},
            {"c", AttrType::kDouble}});
  Relation* r = catalog.AddRelation("R", s);
  Schema dim_schema({{"k", AttrType::kCategorical}});
  Relation* dim = catalog.AddRelation("D", dim_schema);
  dim->AppendRow({0});
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    double t = rng.Gaussian(0, 3);
    r->AppendRow({0, t + rng.Gaussian(0, 0.1), t + rng.Gaussian(0, 0.1),
                  rng.Gaussian(0, 0.1)});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(dim);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "a"}, {"R", "b"}, {"R", "c"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  PcaResult pca = ComputePca(m, 2);
  ASSERT_GE(pca.components.size(), 1u);
  const auto& v = pca.components[0];
  double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(v[0]), inv_sqrt2, 0.02);
  EXPECT_NEAR(std::abs(v[1]), inv_sqrt2, 0.02);
  EXPECT_NEAR(v[2], 0.0, 0.05);
  EXPECT_GT(pca.explained_ratio[0], 0.95);
  ASSERT_EQ(pca.eigenvalues.size(), 2u);
  EXPECT_GE(pca.eigenvalues[0], pca.eigenvalues[1]);
}

// --- Mutual information / Chow-Liu ---

TEST(MutualInformationTest, DependentPairBeatsIndependentPair) {
  Catalog catalog;
  Schema s({{"k", AttrType::kCategorical},
            {"a", AttrType::kCategorical},
            {"b", AttrType::kCategorical},
            {"c", AttrType::kCategorical}});
  Relation* r = catalog.AddRelation("R", s);
  Schema dim_schema({{"k", AttrType::kCategorical}});
  Relation* dim = catalog.AddRelation("D", dim_schema);
  dim->AppendRow({0});
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    int a = static_cast<int>(rng.Below(4));
    int b = rng.Uniform() < 0.9 ? a : static_cast<int>(rng.Below(4));
    int c = static_cast<int>(rng.Below(4));  // independent
    r->AppendRow({0, static_cast<double>(a), static_cast<double>(b),
                  static_cast<double>(c)});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(dim);
  q.AddJoin("R", "D", {"k"});
  MutualInformationResult mi = ComputeMutualInformation(
      q.Root("R"), {{"R", "a"}, {"R", "b"}, {"R", "c"}});
  EXPECT_GT(mi.At(0, 1), 0.5);       // strongly dependent
  EXPECT_LT(mi.At(0, 2), 0.01);      // independent
  EXPECT_LT(mi.At(1, 2), 0.01);
  EXPECT_EQ(mi.aggregates, 3u + 3u);  // 3 marginals + 3 pairs

  std::vector<ChowLiuEdge> tree = BuildChowLiuTree(mi);
  ASSERT_EQ(tree.size(), 2u);
  // The strongest edge must be (a, b).
  EXPECT_TRUE((tree[0].a == 0 && tree[0].b == 1) ||
              (tree[0].a == 1 && tree[0].b == 0));
}

// --- FD reparameterization ---

TEST(FdReparamTest, SplitIsExactAndMinimumNorm) {
  Rng rng(31);
  const int kCities = 40;
  const int kCountries = 5;
  std::vector<int32_t> country_of(kCities);
  std::vector<double> merged(kCities);
  for (int c = 0; c < kCities; ++c) {
    country_of[c] = static_cast<int32_t>(rng.Below(kCountries));
    merged[c] = rng.Uniform(-3, 3);
  }
  FdReparamResult split =
      SplitMergedParameters(merged, country_of, kCountries);
  // Exact reconstruction: theta_city + theta_country == merged.
  for (int c = 0; c < kCities; ++c) {
    EXPECT_NEAR(split.theta_city[c] + split.theta_country[country_of[c]],
                merged[c], 1e-12);
  }
  // Minimum norm: beats the naive split (everything on the city).
  FdReparamResult naive;
  naive.theta_city = merged;
  naive.theta_country.assign(kCountries, 0.0);
  EXPECT_LE(SplitPenalty(split), SplitPenalty(naive) + 1e-12);
  // And beats random perturbations that preserve the sums.
  for (int trial = 0; trial < 20; ++trial) {
    FdReparamResult other = split;
    int k = static_cast<int>(rng.Below(kCountries));
    double eps = rng.Uniform(-0.5, 0.5);
    other.theta_country[k] += eps;
    for (int c = 0; c < kCities; ++c) {
      if (country_of[c] == k) other.theta_city[c] -= eps;
    }
    EXPECT_LE(SplitPenalty(split), SplitPenalty(other) + 1e-12);
  }
}

// --- Model selection ---

TEST(ModelSelectionTest, PicksInformativeFeaturesFirst) {
  // y depends on features 0 and 2; 1 and 3 are noise.
  Catalog catalog;
  Schema s({{"k", AttrType::kCategorical},
            {"f0", AttrType::kDouble},
            {"f1", AttrType::kDouble},
            {"f2", AttrType::kDouble},
            {"f3", AttrType::kDouble},
            {"y", AttrType::kDouble}});
  Relation* r = catalog.AddRelation("R", s);
  Schema dim_schema({{"k", AttrType::kCategorical}});
  Relation* dim = catalog.AddRelation("D", dim_schema);
  dim->AppendRow({0});
  Rng rng(12);
  for (int i = 0; i < 3000; ++i) {
    double f0 = rng.Gaussian();
    double f1 = rng.Gaussian();
    double f2 = rng.Gaussian();
    double f3 = rng.Gaussian();
    r->AppendRow({0, f0, f1, f2, f3,
                  3 * f0 - 2 * f2 + rng.Gaussian(0, 0.05)});
  }
  JoinQuery q;
  q.AddRelation(r);
  q.AddRelation(dim);
  q.AddJoin("R", "D", {"k"});
  FeatureMap fm(q, {{"R", "f0"}, {"R", "f1"}, {"R", "f2"}, {"R", "f3"},
                    {"R", "y"}});
  CovarMatrix m = ComputeCovarMatrix(q.Root("R"), fm);
  ModelSelectionOptions opts;
  opts.min_mse_gain = 0.01;
  ModelSelectionResult sel = ForwardSelect(m, 4, opts);
  ASSERT_GE(sel.steps.size(), 2u);
  // The first two selections must be the informative features {0, 2}.
  std::vector<int> first_two{sel.steps[0].added_feature,
                             sel.steps[1].added_feature};
  std::sort(first_two.begin(), first_two.end());
  EXPECT_EQ(first_two, (std::vector<int>{0, 2}));
  // MSE decreases monotonically along the path.
  for (size_t i = 1; i < sel.steps.size(); ++i) {
    EXPECT_LE(sel.steps[i].mse, sel.steps[i - 1].mse + 1e-9);
  }
  EXPECT_GT(sel.models_evaluated, 4u);
}

}  // namespace
}  // namespace relborg
