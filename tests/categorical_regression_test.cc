// Tests for the sparse generalized covariance and ridge regression with
// categorical (one-hot) parameters: the factorized/sparse training must
// match a reference solver over the explicitly one-hot-encoded
// materialized join.
#include <cmath>

#include "baseline/materializer.h"
#include "core/sparse_covar.h"
#include "gtest/gtest.h"
#include "ml/categorical_regression.h"
#include "ml/linalg.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

// Two relations, continuous + categorical features with planted effects:
//   y = 2*x - 1*z + eff1[c1] + eff2[c2] + noise.
struct Fixture {
  Catalog catalog;
  JoinQuery query;
  std::vector<double> eff1, eff2;
  int k1 = 4, k2 = 3;

  explicit Fixture(uint64_t seed, int rows = 3000) {
    Rng rng(seed);
    eff1.resize(k1);
    eff2.resize(k2);
    for (auto& e : eff1) e = rng.Uniform(-2, 2);
    for (auto& e : eff2) e = rng.Uniform(-2, 2);
    Relation* f = catalog.AddRelation(
        "F", Schema({{"k", AttrType::kCategorical},
                     {"c1", AttrType::kCategorical},
                     {"x", AttrType::kDouble},
                     {"y", AttrType::kDouble}}));
    Relation* d = catalog.AddRelation(
        "D", Schema({{"k", AttrType::kCategorical},
                     {"c2", AttrType::kCategorical},
                     {"z", AttrType::kDouble}}));
    const int kDomain = 25;
    std::vector<int> c2_of(kDomain);
    std::vector<double> z_of(kDomain);
    for (int k = 0; k < kDomain; ++k) {
      c2_of[k] = static_cast<int>(rng.Below(k2));
      z_of[k] = rng.Uniform(-1, 1);
      d->AppendRow({static_cast<double>(k), static_cast<double>(c2_of[k]),
                    z_of[k]});
    }
    for (int i = 0; i < rows; ++i) {
      int k = static_cast<int>(rng.Below(kDomain));
      int c1 = static_cast<int>(rng.Below(k1));
      double x = rng.Uniform(-2, 2);
      double y = 2 * x - z_of[k] + eff1[c1] + eff2[c2_of[k]] +
                 rng.Gaussian(0, 0.05);
      f->AppendRow({static_cast<double>(k), static_cast<double>(c1), x, y});
    }
    query.AddRelation(catalog.Get("F"));
    query.AddRelation(catalog.Get("D"));
    query.AddJoin("F", "D", {"k"});
  }
};

TEST(SparseCovarTest, AggregatesMatchMaterializedOneHot) {
  Fixture fx(5, 800);
  FeatureMap fm(fx.query, {{"F", "x"}, {"D", "z"}, {"F", "y"}});
  std::vector<FeatureRef> cats{{"F", "c1"}, {"D", "c2"}};
  RootedTree tree = fx.query.Root("F");
  SparseCovar sc = ComputeSparseCovar(tree, fm, cats);
  EXPECT_EQ(sc.num_categorical(), 2);
  EXPECT_GT(sc.num_aggregates(), CovarBatchSize(3));

  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{
                {"F", "x"}, {"D", "z"}, {"F", "y"}, {"F", "c1"}, {"D", "c2"}});
  // Spot-check every aggregate family against manual grouping.
  for (int v = 0; v < fx.k1; ++v) {
    double want_count = 0, want_sum_x = 0;
    for (size_t r = 0; r < m.num_rows(); ++r) {
      if (static_cast<int>(m.At(r, 3)) != v) continue;
      want_count += 1;
      want_sum_x += m.At(r, 0);
    }
    const double* c = sc.cat_count(0).Find(PackKey1(v));
    if (want_count == 0) {
      EXPECT_TRUE(c == nullptr || *c == 0);
      continue;
    }
    ASSERT_NE(c, nullptr);
    EXPECT_NEAR(*c, want_count, 1e-9);
    EXPECT_NEAR(*sc.cat_sum(0, 0).Find(PackKey1(v)), want_sum_x,
                1e-8 * (1 + std::abs(want_sum_x)));
  }
  for (int v = 0; v < fx.k1; ++v) {
    for (int w = 0; w < fx.k2; ++w) {
      double want = 0;
      for (size_t r = 0; r < m.num_rows(); ++r) {
        if (static_cast<int>(m.At(r, 3)) == v &&
            static_cast<int>(m.At(r, 4)) == w) {
          want += 1;
        }
      }
      const double* c = sc.pair_count(0, 1).Find(PackKey2(v, w));
      if (want == 0) {
        EXPECT_TRUE(c == nullptr);
      } else {
        ASSERT_NE(c, nullptr);
        EXPECT_NEAR(*c, want, 1e-9);
      }
    }
  }
}

class CategoricalRidgeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CategoricalRidgeProperty, MatchesExplicitOneHotSolver) {
  Fixture fx(GetParam());
  FeatureMap fm(fx.query, {{"F", "x"}, {"D", "z"}, {"F", "y"}});
  std::vector<FeatureRef> cats{{"F", "c1"}, {"D", "c2"}};
  RootedTree tree = fx.query.Root("F");
  SparseCovar sc = ComputeSparseCovar(tree, fm, cats);

  CategoricalRidgeOptions opts;
  opts.lambda = 1e-3;
  CategoricalTrainInfo info;
  CategoricalModel model = TrainRidgeCategorical(sc, 2, opts, &info);
  EXPECT_GT(info.num_parameters, 3u);
  EXPECT_LT(info.final_delta, 1e-8);

  // Reference: explicit one-hot design over the materialized join, normal
  // equations with the same penalty (bias unpenalized).
  DataMatrix m = MaterializeJoin(
      tree, std::vector<ColumnRef>{
                {"F", "x"}, {"D", "z"}, {"F", "y"}, {"F", "c1"}, {"D", "c2"}});
  const int p = 1 + 2 + fx.k1 + fx.k2;  // bias, x, z, one-hots
  auto design = [&](size_t r, std::vector<double>* row) {
    row->assign(p, 0.0);
    (*row)[0] = 1.0;
    (*row)[1] = m.At(r, 0);
    (*row)[2] = m.At(r, 1);
    (*row)[3 + static_cast<int>(m.At(r, 3))] = 1.0;
    (*row)[3 + fx.k1 + static_cast<int>(m.At(r, 4))] = 1.0;
  };
  std::vector<double> a(p * p, 0.0), b(p, 0.0), row;
  for (size_t r = 0; r < m.num_rows(); ++r) {
    design(r, &row);
    for (int i = 0; i < p; ++i) {
      b[i] += row[i] * m.At(r, 2);
      for (int j = 0; j < p; ++j) a[i * p + j] += row[i] * row[j];
    }
  }
  double penalty = opts.lambda * static_cast<double>(m.num_rows());
  for (int i = 1; i < p; ++i) a[i * p + i] += penalty;
  a[0] += 1e-9;  // keep the (unpenalized) bias row positive definite
  std::vector<double> theta;
  ASSERT_TRUE(CholeskySolve(a, b, p, &theta));

  // Predictions must match on every join tuple (the parametrizations can
  // differ by one-hot gauge only when unpenalized; ridge pins them).
  double max_diff = 0;
  std::vector<double> cont_row(3);
  int32_t cat_codes[2];
  for (size_t r = 0; r < m.num_rows(); ++r) {
    design(r, &row);
    double ref = 0;
    for (int i = 0; i < p; ++i) ref += row[i] * theta[i];
    cont_row[0] = m.At(r, 0);
    cont_row[1] = m.At(r, 1);
    cat_codes[0] = static_cast<int32_t>(m.At(r, 3));
    cat_codes[1] = static_cast<int32_t>(m.At(r, 4));
    max_diff = std::max(
        max_diff, std::abs(model.Predict(cont_row.data(), cat_codes) - ref));
  }
  EXPECT_LT(max_diff, 1e-5);
}

TEST_P(CategoricalRidgeProperty, RecoversPlantedEffects) {
  Fixture fx(GetParam() + 10, 6000);
  FeatureMap fm(fx.query, {{"F", "x"}, {"D", "z"}, {"F", "y"}});
  RootedTree tree = fx.query.Root("F");
  SparseCovar sc =
      ComputeSparseCovar(tree, fm, {{"F", "c1"}, {"D", "c2"}});
  CategoricalRidgeOptions opts;
  opts.lambda = 1e-6;
  CategoricalModel model = TrainRidgeCategorical(sc, 2, opts);
  EXPECT_NEAR(model.cont_weights[0], 2.0, 0.05);   // x
  EXPECT_NEAR(model.cont_weights[1], -1.0, 0.05);  // z
  // Category effect DIFFERENCES are identified (levels absorb the bias).
  const double* w0 = model.cat_weights[0].Find(PackKey1(0));
  const double* w1 = model.cat_weights[0].Find(PackKey1(1));
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  EXPECT_NEAR(*w1 - *w0, fx.eff1[1] - fx.eff1[0], 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CategoricalRidgeProperty,
                         ::testing::ValuesIn(relborg::testing::kPropertySeedsSmall));

}  // namespace
}  // namespace relborg
