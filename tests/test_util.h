// Shared fixtures for the relborg test suite:
//  * the "dinner" database of Figure 7 of the paper (Orders, Dish, Items),
//    with hand-computable aggregates,
//  * random acyclic databases (star / chain / bushy topologies) used by the
//    property tests to cross-check the factorized engines against the
//    materialized reference.
//
// Seed policy — every randomized test must be bit-for-bit deterministic:
//  * All randomness flows through util/rng.h (SplitMix64); tests never use
//    std::random_device, time-based seeds, or address-dependent values.
//  * Every Rng in a test is constructed with a literal seed written at the
//    construction site. Property suites enumerate their seeds through
//    INSTANTIATE_TEST_SUITE_P (e.g. Values(1, 2, 3, 7, 42, 1001)) so a
//    failing test's name identifies the seed to replay.
//  * Dataset generators derive their streams from GenOptions::seed
//    (default 20200901); tests that need a different instance change the
//    seed in GenOptions rather than re-seeding mid-test.
//  * Concurrency tests assert order-independent facts (counts, coverage,
//    permutation-invariant sums), never a particular interleaving.
#ifndef RELBORG_TESTS_TEST_UTIL_H_
#define RELBORG_TESTS_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "baseline/data_matrix.h"
#include "core/feature_map.h"
#include "query/join_tree.h"
#include "relational/catalog.h"
#include "ring/covariance.h"
#include "util/rng.h"

namespace relborg {
namespace testing {

// Category codes for the dinner database.
// customer: Elise=0, Steve=1, Joe=2;  day: Monday=0, Friday=1;
// dish: burger=0, hotdog=1;  item: patty=0, onion=1, bun=2, sausage=3.
inline void MakeDinnerDb(Catalog* catalog) {
  Schema orders_schema({{"customer", AttrType::kCategorical},
                        {"day", AttrType::kCategorical},
                        {"dish", AttrType::kCategorical}});
  Relation* orders = catalog->AddRelation("Orders", orders_schema);
  orders->AppendRow({0, 0, 0});  // Elise Monday burger
  orders->AppendRow({0, 1, 0});  // Elise Friday burger
  orders->AppendRow({1, 1, 1});  // Steve Friday hotdog
  orders->AppendRow({2, 1, 1});  // Joe Friday hotdog

  Schema dish_schema({{"dish", AttrType::kCategorical},
                      {"item", AttrType::kCategorical}});
  Relation* dish = catalog->AddRelation("Dish", dish_schema);
  dish->AppendRow({0, 0});  // burger patty
  dish->AppendRow({0, 1});  // burger onion
  dish->AppendRow({0, 2});  // burger bun
  dish->AppendRow({1, 2});  // hotdog bun
  dish->AppendRow({1, 1});  // hotdog onion
  dish->AppendRow({1, 3});  // hotdog sausage

  Schema items_schema({{"item", AttrType::kCategorical},
                       {"price", AttrType::kDouble}});
  Relation* items = catalog->AddRelation("Items", items_schema);
  items->AppendRow({0, 6});  // patty 6
  items->AppendRow({1, 2});  // onion 2
  items->AppendRow({2, 2});  // bun 2
  items->AppendRow({3, 4});  // sausage 4
}

inline JoinQuery MakeDinnerQuery(const Catalog& catalog) {
  JoinQuery q;
  q.AddRelation(catalog.Get("Orders"));
  q.AddRelation(catalog.Get("Dish"));
  q.AddRelation(catalog.Get("Items"));
  q.AddJoin("Orders", "Dish", {"dish"});
  q.AddJoin("Dish", "Items", {"item"});
  return q;
}

// Canonical seed lists for randomized property suites (see the seed policy
// above). Suites take their seeds from one of these tiers instead of
// inventing ad-hoc sets, so the full inventory of random streams exercised
// by the suite lives in this header:
//  * kPropertySeeds — broad tier for cheap, exact-comparison suites;
//  * kPropertySeedsSmall — small tier for expensive suites (per-seed cost
//    dominated by engine runs or iterative solvers).
inline constexpr uint64_t kPropertySeeds[] = {1, 2, 3, 7, 42, 1001};
inline constexpr uint64_t kPropertySeedsSmall[] = {3, 21, 55};

enum class Topology { kStar, kChain, kBushy };

// A randomly generated acyclic database plus its query and feature list.
struct RandomDb {
  std::unique_ptr<Catalog> catalog;
  JoinQuery query;
  std::vector<FeatureRef> features;
};

// Builds a random database. Star: fact R0 joins dims D1..D3 on distinct
// keys; chain: R0-R1-R2 linked by successive keys; bushy: R0 with child D1
// which itself has children D2, D3 (a two-level tree, D3 joined on a
// two-attribute key). Key values are drawn from [0, domain) and some key
// values are deliberately absent from one side (dangling tuples).
//
// integer_values rounds every double feature to an integer (same rng draw
// sequence, so keys and shapes match the unrounded database). Suites that
// compare two different SUMMATION ORDERS of the same multiset — e.g. the
// sharded-vs-unsharded differential — need it: covariance payload sums
// over small integers are exactly representable, making bitwise equality
// independent of fold order.
inline RandomDb MakeRandomDb(uint64_t seed, Topology topology,
                             int fact_rows = 60, int32_t domain = 8,
                             bool integer_values = false) {
  RandomDb db;
  db.catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  auto value = [&]() {
    const double v = rng.Uniform(-2.0, 2.0);
    return integer_values ? std::round(v) : v;
  };

  if (topology == Topology::kStar) {
    Schema fact({{"k1", AttrType::kCategorical},
                 {"k2", AttrType::kCategorical},
                 {"k3", AttrType::kCategorical},
                 {"a", AttrType::kDouble}});
    Relation* r0 = db.catalog->AddRelation("R0", fact);
    for (int i = 0; i < fact_rows; ++i) {
      r0->AppendRow({static_cast<double>(rng.Below(domain)),
                     static_cast<double>(rng.Below(domain)),
                     static_cast<double>(rng.Below(domain)), value()});
    }
    for (int d = 1; d <= 3; ++d) {
      std::string name = "D" + std::to_string(d);
      std::string key = "k" + std::to_string(d);
      std::string attr = "b" + std::to_string(d);
      Schema dim({{key, AttrType::kCategorical}, {attr, AttrType::kDouble}});
      Relation* rel = db.catalog->AddRelation(name, dim);
      for (int32_t k = 0; k < domain; ++k) {
        if (rng.Uniform() < 0.15) continue;  // dangling fact keys
        int copies = 1 + static_cast<int>(rng.Below(3));
        for (int c = 0; c < copies; ++c) {
          rel->AppendRow({static_cast<double>(k), value()});
        }
      }
      db.features.push_back({name, attr});
    }
    db.features.push_back({"R0", "a"});
    db.query.AddRelation(db.catalog->Get("R0"));
    db.query.AddRelation(db.catalog->Get("D1"));
    db.query.AddRelation(db.catalog->Get("D2"));
    db.query.AddRelation(db.catalog->Get("D3"));
    db.query.AddJoin("R0", "D1", {"k1"});
    db.query.AddJoin("R0", "D2", {"k2"});
    db.query.AddJoin("R0", "D3", {"k3"});
    return db;
  }

  if (topology == Topology::kChain) {
    Schema s0({{"k1", AttrType::kCategorical}, {"a", AttrType::kDouble}});
    Schema s1({{"k1", AttrType::kCategorical},
               {"k2", AttrType::kCategorical},
               {"b", AttrType::kDouble}});
    Schema s2({{"k2", AttrType::kCategorical}, {"c", AttrType::kDouble}});
    Relation* r0 = db.catalog->AddRelation("R0", s0);
    Relation* r1 = db.catalog->AddRelation("R1", s1);
    Relation* r2 = db.catalog->AddRelation("R2", s2);
    for (int i = 0; i < fact_rows; ++i) {
      r0->AppendRow({static_cast<double>(rng.Below(domain)), value()});
      r1->AppendRow({static_cast<double>(rng.Below(domain)),
                     static_cast<double>(rng.Below(domain)), value()});
    }
    for (int32_t k = 0; k < domain; ++k) {
      if (rng.Uniform() < 0.2) continue;
      r2->AppendRow({static_cast<double>(k), value()});
    }
    db.features = {{"R0", "a"}, {"R1", "b"}, {"R2", "c"}};
    db.query.AddRelation(r0);
    db.query.AddRelation(r1);
    db.query.AddRelation(r2);
    db.query.AddJoin("R0", "R1", {"k1"});
    db.query.AddJoin("R1", "R2", {"k2"});
    return db;
  }

  // Bushy: R0(k1,a) - D1(k1,k2,k3a,k3b,b) - { D2(k2,c), D3(k3a,k3b,d) }.
  // D3 exercises two-attribute join keys.
  Schema s0({{"k1", AttrType::kCategorical}, {"a", AttrType::kDouble}});
  Schema s1({{"k1", AttrType::kCategorical},
             {"k2", AttrType::kCategorical},
             {"k3a", AttrType::kCategorical},
             {"k3b", AttrType::kCategorical},
             {"b", AttrType::kDouble}});
  Schema s2({{"k2", AttrType::kCategorical}, {"c", AttrType::kDouble}});
  Schema s3({{"k3a", AttrType::kCategorical},
             {"k3b", AttrType::kCategorical},
             {"d", AttrType::kDouble}});
  Relation* r0 = db.catalog->AddRelation("R0", s0);
  Relation* d1 = db.catalog->AddRelation("D1", s1);
  Relation* d2 = db.catalog->AddRelation("D2", s2);
  Relation* d3 = db.catalog->AddRelation("D3", s3);
  for (int i = 0; i < fact_rows; ++i) {
    r0->AppendRow({static_cast<double>(rng.Below(domain)), value()});
    d1->AppendRow({static_cast<double>(rng.Below(domain)),
                   static_cast<double>(rng.Below(domain)),
                   static_cast<double>(rng.Below(domain / 2 + 1)),
                   static_cast<double>(rng.Below(domain / 2 + 1)), value()});
  }
  for (int32_t k = 0; k < domain; ++k) {
    if (rng.Uniform() < 0.2) continue;
    d2->AppendRow({static_cast<double>(k), value()});
  }
  for (int32_t ka = 0; ka <= domain / 2; ++ka) {
    for (int32_t kb = 0; kb <= domain / 2; ++kb) {
      if (rng.Uniform() < 0.3) continue;
      d3->AppendRow({static_cast<double>(ka), static_cast<double>(kb),
                     value()});
    }
  }
  db.features = {{"R0", "a"}, {"D1", "b"}, {"D2", "c"}, {"D3", "d"}};
  db.query.AddRelation(r0);
  db.query.AddRelation(d1);
  db.query.AddRelation(d2);
  db.query.AddRelation(d3);
  db.query.AddJoin("R0", "D1", {"k1"});
  db.query.AddJoin("D1", "D2", {"k2"});
  db.query.AddJoin("D1", "D3", {"k3a", "k3b"});
  return db;
}

// Reference covariance payload computed directly from a materialized matrix
// whose columns are the features in order.
inline CovarPayload ReferenceCovar(const DataMatrix& matrix) {
  const int n = matrix.num_cols();
  CovarPayload p = CovarPayload::Zero(n);
  for (size_t r = 0; r < matrix.num_rows(); ++r) {
    const double* row = matrix.Row(r);
    p.count += 1;
    for (int i = 0; i < n; ++i) {
      p.sum[i] += row[i];
      for (int j = i; j < n; ++j) {
        p.quad[UpperTriIndex(n, i, j)] += row[i] * row[j];
      }
    }
  }
  return p;
}

}  // namespace testing
}  // namespace relborg

#endif  // RELBORG_TESTS_TEST_UTIL_H_
