// Unit tests for src/query: join trees, rooting, predicates, width.
#include "gtest/gtest.h"
#include "query/join_tree.h"
#include "query/predicate.h"
#include "query/width.h"
#include "relational/catalog.h"
#include "tests/test_util.h"

namespace relborg {
namespace {

using testing::MakeDinnerDb;
using testing::MakeDinnerQuery;

class JoinTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MakeDinnerDb(&catalog_);
    query_ = MakeDinnerQuery(catalog_);
  }
  Catalog catalog_;
  JoinQuery query_;
};

TEST_F(JoinTreeTest, RootAtOrders) {
  RootedTree tree = query_.Root("Orders");
  EXPECT_EQ(tree.root(), query_.IndexOf("Orders"));
  int dish = query_.IndexOf("Dish");
  int items = query_.IndexOf("Items");
  EXPECT_EQ(tree.node(dish).parent, tree.root());
  EXPECT_EQ(tree.node(items).parent, dish);
  // Dish joins to Orders on its "dish" attribute (index 0).
  ASSERT_EQ(tree.node(dish).key_attrs.size(), 1u);
  EXPECT_EQ(tree.node(dish).key_attrs[0], 0);
  // Orders' matching attribute is its "dish" (index 2).
  EXPECT_EQ(tree.node(dish).parent_key_attrs[0], 2);
}

TEST_F(JoinTreeTest, PostorderChildrenBeforeParents) {
  for (int root = 0; root < query_.num_relations(); ++root) {
    RootedTree tree = query_.Root(root);
    std::vector<int> position(tree.num_nodes(), -1);
    const auto& post = tree.postorder();
    ASSERT_EQ(static_cast<int>(post.size()), tree.num_nodes());
    for (int i = 0; i < static_cast<int>(post.size()); ++i) {
      position[post[i]] = i;
    }
    for (int v = 0; v < tree.num_nodes(); ++v) {
      for (int c : tree.node(v).children) {
        EXPECT_LT(position[c], position[v]);
      }
    }
    EXPECT_EQ(post.back(), root);
  }
}

TEST_F(JoinTreeTest, ReRootingFlipsParentEdges) {
  RootedTree tree = query_.Root("Items");
  int orders = query_.IndexOf("Orders");
  int dish = query_.IndexOf("Dish");
  EXPECT_EQ(tree.node(orders).parent, dish);
  EXPECT_EQ(tree.node(dish).parent, query_.IndexOf("Items"));
  // Orders now joins up to Dish on "dish" (Orders attr index 2).
  EXPECT_EQ(tree.node(orders).key_attrs[0], 2);
}

TEST_F(JoinTreeTest, RowKeys) {
  RootedTree tree = query_.Root("Orders");
  int dish = query_.IndexOf("Dish");
  // Dish row 3 is (hotdog=1, bun=2); its key to parent is dish value 1.
  EXPECT_EQ(tree.RowKeyToParent(dish, 3), PackKey1(1));
  // Orders row 0 (Elise Monday burger) probes Dish's view with key 0.
  EXPECT_EQ(tree.RowKeyToChild(tree.root(), dish, 0), PackKey1(0));
  // Root key is the unit key.
  EXPECT_EQ(tree.RowKeyToParent(tree.root(), 0), kUnitKey);
}

TEST(PredicateTest, Matches) {
  Schema s({{"x", AttrType::kDouble}, {"c", AttrType::kCategorical}});
  Relation r("R", s);
  r.AppendRow({1.5, 3});
  r.AppendRow({-0.5, 5});
  EXPECT_TRUE(Predicate::Ge(0, 1.0).Matches(r, 0));
  EXPECT_FALSE(Predicate::Ge(0, 1.0).Matches(r, 1));
  EXPECT_TRUE(Predicate::Lt(0, 0.0).Matches(r, 1));
  EXPECT_TRUE(Predicate::Eq(1, 3).Matches(r, 0));
  EXPECT_TRUE(Predicate::Ne(1, 3).Matches(r, 1));
  EXPECT_TRUE(Predicate::InSet(1, {5, 3}).Matches(r, 0));
  EXPECT_FALSE(Predicate::InSet(1, {4}).Matches(r, 0));
  EXPECT_TRUE(Predicate::NotInSet(1, {4}).Matches(r, 0));
  EXPECT_TRUE(RowPasses(r, 0, {Predicate::Ge(0, 1.0), Predicate::Eq(1, 3)}));
  EXPECT_FALSE(RowPasses(r, 0, {Predicate::Ge(0, 2.0), Predicate::Eq(1, 3)}));
}

TEST(WidthTest, AcyclicQueries) {
  // The dinner query: Orders(c,d,dish), Dish(dish,item), Items(item,price).
  Hypergraph hg;
  hg.AddEdge({"customer", "day", "dish"});
  hg.AddEdge({"dish", "item"});
  hg.AddEdge({"item", "price"});
  EXPECT_TRUE(IsAlphaAcyclic(hg));
}

TEST(WidthTest, TriangleIsCyclic) {
  Hypergraph hg;
  hg.AddEdge({"a", "b"});
  hg.AddEdge({"b", "c"});
  hg.AddEdge({"a", "c"});
  EXPECT_FALSE(IsAlphaAcyclic(hg));
}

TEST(WidthTest, EdgeCoverNumbers) {
  Hypergraph hg;
  hg.AddEdge({"a", "b"});
  hg.AddEdge({"b", "c"});
  hg.AddEdge({"a", "c"});
  // Triangle: two edges cover all three vertices.
  EXPECT_EQ(IntegralEdgeCoverNumber(hg), 2);
  EXPECT_GE(FractionalEdgeCoverUpperBound(hg), 1.5);

  Hypergraph star;
  star.AddEdge({"k1", "k2", "k3"});
  star.AddEdge({"k1", "b1"});
  star.AddEdge({"k2", "b2"});
  star.AddEdge({"k3", "b3"});
  EXPECT_TRUE(IsAlphaAcyclic(star));
  // The three dimension edges plus the fact edge are needed.
  EXPECT_EQ(IntegralEdgeCoverNumber(star), 3);
}

TEST(WidthTest, SubsetEdgeRemoved) {
  Hypergraph hg;
  hg.AddEdge({"a", "b", "c"});
  hg.AddEdge({"a", "b"});
  EXPECT_TRUE(IsAlphaAcyclic(hg));
  EXPECT_EQ(IntegralEdgeCoverNumber(hg), 1);
}

}  // namespace
}  // namespace relborg
