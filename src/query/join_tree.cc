#include "query/join_tree.h"

#include <algorithm>

#include "util/check.h"

namespace relborg {

int JoinQuery::AddRelation(const Relation* rel) {
  RELBORG_CHECK(rel != nullptr);
  relations_.push_back(rel);
  return num_relations() - 1;
}

int JoinQuery::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_relations(); ++i) {
    if (relations_[i]->name() == name) return i;
  }
  RELBORG_CHECK_MSG(false, name.c_str());
  return -1;
}

void JoinQuery::AddJoin(const std::string& rel_a, const std::string& rel_b,
                        const std::vector<std::string>& key_attrs) {
  RELBORG_CHECK_MSG(key_attrs.size() >= 1 && key_attrs.size() <= 2,
                    "join keys must have 1 or 2 attributes");
  JoinEdge e;
  e.a = IndexOf(rel_a);
  e.b = IndexOf(rel_b);
  for (const std::string& k : key_attrs) {
    int ia = relations_[e.a]->schema().MustIndexOf(k);
    int ib = relations_[e.b]->schema().MustIndexOf(k);
    RELBORG_CHECK_MSG(
        relations_[e.a]->schema().attr(ia).type == AttrType::kCategorical &&
            relations_[e.b]->schema().attr(ib).type == AttrType::kCategorical,
        "join keys must be categorical");
    e.attrs_a.push_back(ia);
    e.attrs_b.push_back(ib);
  }
  edges_.push_back(std::move(e));
}

RootedTree JoinQuery::Root(int root) const {
  int n = num_relations();
  RELBORG_CHECK(root >= 0 && root < n);
  RELBORG_CHECK_MSG(static_cast<int>(edges_.size()) == n - 1,
                    "join graph is not a tree");
  std::vector<RootedNode> nodes(n);
  // Adjacency: (neighbor, edge index).
  std::vector<std::vector<std::pair<int, int>>> adj(n);
  for (int ei = 0; ei < static_cast<int>(edges_.size()); ++ei) {
    adj[edges_[ei].a].push_back({edges_[ei].b, ei});
    adj[edges_[ei].b].push_back({edges_[ei].a, ei});
  }
  // BFS orientation from the root.
  std::vector<int> order{root};
  std::vector<bool> seen(n, false);
  seen[root] = true;
  for (size_t qi = 0; qi < order.size(); ++qi) {
    int v = order[qi];
    for (auto [u, ei] : adj[v]) {
      if (seen[u]) continue;
      seen[u] = true;
      nodes[u].parent = v;
      nodes[v].children.push_back(u);
      const JoinEdge& e = edges_[ei];
      if (e.a == u) {
        nodes[u].key_attrs = e.attrs_a;
        nodes[u].parent_key_attrs = e.attrs_b;
      } else {
        nodes[u].key_attrs = e.attrs_b;
        nodes[u].parent_key_attrs = e.attrs_a;
      }
      order.push_back(u);
    }
  }
  RELBORG_CHECK_MSG(static_cast<int>(order.size()) == n,
                    "join graph is disconnected");
  return RootedTree(this, root, std::move(nodes));
}

RootedTree JoinQuery::Root(const std::string& root_name) const {
  return Root(IndexOf(root_name));
}

RootedTree::RootedTree(const JoinQuery* query, int root,
                       std::vector<RootedNode> nodes)
    : query_(query), root_(root), nodes_(std::move(nodes)) {
  // Postorder: reverse BFS order works for trees (children always appear
  // after their parents in BFS), but recompute explicitly for clarity.
  postorder_.reserve(nodes_.size());
  std::vector<int> stack{root_};
  std::vector<int> preorder;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    preorder.push_back(v);
    for (int c : nodes_[v].children) stack.push_back(c);
  }
  postorder_.assign(preorder.rbegin(), preorder.rend());
}

uint64_t RootedTree::RowKeyToParent(int v, size_t row) const {
  return PackRowKey(relation(v), row, nodes_[v].key_attrs);
}

uint64_t RootedTree::RowKeyToChild(int v, int c, size_t row) const {
  return PackRowKey(relation(v), row, nodes_[c].parent_key_attrs);
}

uint64_t PackRowKey(const Relation& rel, size_t row,
                    const std::vector<int>& attrs) {
  if (attrs.empty()) return kUnitKey;
  if (attrs.size() == 1) return PackKey1(rel.Cat(row, attrs[0]));
  RELBORG_DCHECK(attrs.size() == 2);
  return PackKey2(rel.Cat(row, attrs[0]), rel.Cat(row, attrs[1]));
}

}  // namespace relborg
