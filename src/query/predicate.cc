#include "query/predicate.h"

#include <algorithm>

namespace relborg {

Predicate Predicate::InSet(int attr, std::vector<int32_t> s) {
  std::sort(s.begin(), s.end());
  return Predicate{attr, Op::kInSet, 0.0, -1, std::move(s)};
}

Predicate Predicate::NotInSet(int attr, std::vector<int32_t> s) {
  std::sort(s.begin(), s.end());
  return Predicate{attr, Op::kNotInSet, 0.0, -1, std::move(s)};
}

bool Predicate::Matches(const Relation& rel, size_t row) const {
  switch (op) {
    case Op::kGe:
      return rel.AsDouble(row, attr) >= threshold;
    case Op::kLt:
      return rel.AsDouble(row, attr) < threshold;
    case Op::kEq:
      return rel.Cat(row, attr) == category;
    case Op::kNe:
      return rel.Cat(row, attr) != category;
    case Op::kInSet:
      return std::binary_search(set.begin(), set.end(), rel.Cat(row, attr));
    case Op::kNotInSet:
      return !std::binary_search(set.begin(), set.end(), rel.Cat(row, attr));
  }
  return false;
}

bool RowPasses(const Relation& rel, size_t row,
               const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    if (!p.Matches(rel, row)) return false;
  }
  return true;
}

}  // namespace relborg
