// Filter predicates on single attributes, pushed into the per-relation
// scans of the engines. Decision-tree node conditions (Sec. 2.2 of the
// paper: "X >= c", "X in {v1..vk}") are expressed with these.
#ifndef RELBORG_QUERY_PREDICATE_H_
#define RELBORG_QUERY_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace relborg {

struct Predicate {
  enum class Op : uint8_t {
    kGe,     // continuous: value >= threshold
    kLt,     // continuous: value <  threshold
    kEq,     // categorical: code == category
    kNe,     // categorical: code != category
    kInSet,  // categorical: code in set
    kNotInSet,
  };

  int attr = -1;
  Op op = Op::kGe;
  double threshold = 0.0;          // for kGe / kLt
  int32_t category = -1;           // for kEq / kNe
  std::vector<int32_t> set;        // for kInSet / kNotInSet (sorted)

  static Predicate Ge(int attr, double t) {
    return Predicate{attr, Op::kGe, t, -1, {}};
  }
  static Predicate Lt(int attr, double t) {
    return Predicate{attr, Op::kLt, t, -1, {}};
  }
  static Predicate Eq(int attr, int32_t c) {
    return Predicate{attr, Op::kEq, 0.0, c, {}};
  }
  static Predicate Ne(int attr, int32_t c) {
    return Predicate{attr, Op::kNe, 0.0, c, {}};
  }
  static Predicate InSet(int attr, std::vector<int32_t> s);
  static Predicate NotInSet(int attr, std::vector<int32_t> s);

  bool Matches(const Relation& rel, size_t row) const;
};

// Per-relation predicate lists for a whole query. filters[v] applies to the
// relation at node v of the join tree.
using FilterSet = std::vector<std::vector<Predicate>>;

// True iff every predicate in `preds` holds for the row.
bool RowPasses(const Relation& rel, size_t row,
               const std::vector<Predicate>& preds);

}  // namespace relborg

#endif  // RELBORG_QUERY_PREDICATE_H_
