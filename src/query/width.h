// Combinatorial structure of queries (Sec. 3.2 of the paper): hypergraph
// acyclicity (GYO reduction) and edge-cover-based width bounds.
//
// The engines in this library require tree-shaped (alpha-acyclic) joins, for
// which the fractional hypertree width and the factorization width are 1 for
// Boolean/count aggregates; these helpers let callers verify that and reason
// about the size bounds the paper quotes (O(N^w)).
#ifndef RELBORG_QUERY_WIDTH_H_
#define RELBORG_QUERY_WIDTH_H_

#include <string>
#include <vector>

namespace relborg {

// A query hypergraph: vertex = attribute name, hyperedge = relation schema.
struct Hypergraph {
  // edges[i] = sorted list of vertex ids; vertex names for reporting.
  std::vector<std::vector<int>> edges;
  std::vector<std::string> vertex_names;

  int AddVertex(const std::string& name);
  void AddEdge(const std::vector<std::string>& vertex_names_in_edge);
};

// True iff the hypergraph is alpha-acyclic (GYO reduction succeeds).
bool IsAlphaAcyclic(const Hypergraph& hg);

// Minimum integral edge cover number (rho): the smallest number of
// hyperedges covering all vertices. Exponential in the number of edges;
// intended for the small (<= ~12 relations) queries of this library.
// Returns -1 if no cover exists (isolated vertices).
int IntegralEdgeCoverNumber(const Hypergraph& hg);

// Upper bound on the fractional edge cover number rho* computed by the
// greedy set-cover heuristic (ln(n)-approximate); cheap and good enough for
// the sanity checks in tests. Exact LP solving is out of scope.
double FractionalEdgeCoverUpperBound(const Hypergraph& hg);

}  // namespace relborg

#endif  // RELBORG_QUERY_WIDTH_H_
