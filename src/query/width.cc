#include "query/width.h"

#include <algorithm>

#include "util/check.h"

namespace relborg {

int Hypergraph::AddVertex(const std::string& name) {
  for (int i = 0; i < static_cast<int>(vertex_names.size()); ++i) {
    if (vertex_names[i] == name) return i;
  }
  vertex_names.push_back(name);
  return static_cast<int>(vertex_names.size()) - 1;
}

void Hypergraph::AddEdge(const std::vector<std::string>& names) {
  std::vector<int> e;
  e.reserve(names.size());
  for (const std::string& n : names) e.push_back(AddVertex(n));
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());
  edges.push_back(std::move(e));
}

namespace {

// Removes vertex v from every edge in-place.
void RemoveVertex(std::vector<std::vector<int>>* edges, int v) {
  for (auto& e : *edges) {
    auto it = std::find(e.begin(), e.end(), v);
    if (it != e.end()) e.erase(it);
  }
}

}  // namespace

bool IsAlphaAcyclic(const Hypergraph& hg) {
  std::vector<std::vector<int>> edges = hg.edges;
  int n = static_cast<int>(hg.vertex_names.size());
  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: remove ear vertices (vertices occurring in exactly one edge).
    std::vector<int> occurrence(n, 0);
    for (const auto& e : edges) {
      for (int v : e) ++occurrence[v];
    }
    for (int v = 0; v < n; ++v) {
      if (occurrence[v] == 1) {
        RemoveVertex(&edges, v);
        changed = true;
      }
    }
    // Rule 2: remove edges contained in another edge (and empty edges).
    for (size_t i = 0; i < edges.size(); ++i) {
      bool remove = edges[i].empty();
      for (size_t j = 0; !remove && j < edges.size(); ++j) {
        if (i == j) continue;
        if (std::includes(edges[j].begin(), edges[j].end(), edges[i].begin(),
                          edges[i].end())) {
          // Tie-break so two identical edges are not both removed w.r.t.
          // each other in the same pass.
          if (edges[i] != edges[j] || i > j) remove = true;
        }
      }
      if (remove) {
        edges.erase(edges.begin() + i);
        changed = true;
        --i;
      }
    }
  }
  return edges.empty() || (edges.size() == 1);
}

int IntegralEdgeCoverNumber(const Hypergraph& hg) {
  int m = static_cast<int>(hg.edges.size());
  RELBORG_CHECK_MSG(m <= 20, "too many edges for exact cover search");
  int n = static_cast<int>(hg.vertex_names.size());
  uint64_t all = n == 64 ? ~0ull : ((1ull << n) - 1);
  std::vector<uint64_t> masks(m, 0);
  for (int i = 0; i < m; ++i) {
    for (int v : hg.edges[i]) masks[i] |= 1ull << v;
  }
  int best = -1;
  for (uint64_t subset = 0; subset < (1ull << m); ++subset) {
    uint64_t covered = 0;
    int count = 0;
    for (int i = 0; i < m; ++i) {
      if (subset & (1ull << i)) {
        covered |= masks[i];
        ++count;
      }
    }
    if (covered == all && (best < 0 || count < best)) best = count;
  }
  return best;
}

double FractionalEdgeCoverUpperBound(const Hypergraph& hg) {
  // Greedy: repeatedly take the edge covering the most uncovered vertices.
  // An integral cover is an upper bound on the fractional optimum.
  int n = static_cast<int>(hg.vertex_names.size());
  std::vector<bool> covered(n, false);
  int remaining = n;
  double weight = 0;
  while (remaining > 0) {
    int best_edge = -1;
    int best_gain = 0;
    for (int i = 0; i < static_cast<int>(hg.edges.size()); ++i) {
      int gain = 0;
      for (int v : hg.edges[i]) {
        if (!covered[v]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_edge = i;
      }
    }
    if (best_edge < 0) return -1;  // uncoverable
    for (int v : hg.edges[best_edge]) {
      if (!covered[v]) {
        covered[v] = true;
        --remaining;
      }
    }
    weight += 1.0;
  }
  return weight;
}

}  // namespace relborg
