// Feature-extraction queries as natural joins with a tree-shaped join graph.
//
// A JoinQuery holds the participating relations and the join edges (pairs of
// relations with aligned key attributes). Rooting the tree at any relation
// yields a RootedTree: the execution skeleton of every engine in this
// library. The factorized engines evaluate one view per node bottom-up;
// LMFAO-style multi-output plans re-root the same query at different
// relations (JoinQuery::Root is cheap).
//
// Join keys are 1 or 2 categorical attributes, packed into a uint64
// (util/packed_key.h). All datasets in the paper join on 1- or 2-attribute
// keys (e.g. Weather joins Inventory on (location, date)).
#ifndef RELBORG_QUERY_JOIN_TREE_H_
#define RELBORG_QUERY_JOIN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/packed_key.h"

namespace relborg {

// One join edge: relation `a` and relation `b` joined on
// a.attr_a[i] == b.attr_b[i] for every i.
struct JoinEdge {
  int a = -1;
  int b = -1;
  std::vector<int> attrs_a;  // attribute indices in relation a
  std::vector<int> attrs_b;  // attribute indices in relation b
};

class RootedTree;

class JoinQuery {
 public:
  JoinQuery() = default;

  // Registers a relation; returns its node index.
  int AddRelation(const Relation* rel);

  // Adds a natural-join edge between the named relations on the named key
  // attributes (which must exist, with categorical type, in both). At most
  // two key attributes per edge.
  void AddJoin(const std::string& rel_a, const std::string& rel_b,
               const std::vector<std::string>& key_attrs);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const Relation* relation(int i) const { return relations_[i]; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  // Node index of the named relation; aborts if absent.
  int IndexOf(const std::string& name) const;

  // Orients the join tree with `root` as the root. Aborts if the join graph
  // is not a tree (use width.h to check acyclicity of general queries).
  RootedTree Root(int root) const;
  RootedTree Root(const std::string& root_name) const;

 private:
  std::vector<const Relation*> relations_;
  std::vector<JoinEdge> edges_;
};

// One node of a rooted join tree. Node indices equal JoinQuery relation
// indices.
struct RootedNode {
  int parent = -1;                 // -1 for the root
  std::vector<int> children;
  // Key attributes (in this node's relation) joining to the parent, and the
  // aligned attributes in the parent's relation. Empty for the root.
  std::vector<int> key_attrs;
  std::vector<int> parent_key_attrs;
};

class RootedTree {
 public:
  RootedTree(const JoinQuery* query, int root, std::vector<RootedNode> nodes);

  const JoinQuery& query() const { return *query_; }
  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const RootedNode& node(int i) const { return nodes_[i]; }
  const Relation& relation(int i) const { return *query_->relation(i); }

  // Nodes in bottom-up (children before parents) order.
  const std::vector<int>& postorder() const { return postorder_; }

  // Packed key of row `row` of node `v` w.r.t. its parent edge.
  uint64_t RowKeyToParent(int v, size_t row) const;

  // Packed key of row `row` of node `v` w.r.t. the edge to child `c`
  // (the key used to probe child c's view).
  uint64_t RowKeyToChild(int v, int c, size_t row) const;

 private:
  const JoinQuery* query_;
  int root_;
  std::vector<RootedNode> nodes_;
  std::vector<int> postorder_;
};

// Packs the values of `attrs` (size 1 or 2) of row `row` in `rel`.
uint64_t PackRowKey(const Relation& rel, size_t row,
                    const std::vector<int>& attrs);

}  // namespace relborg

#endif  // RELBORG_QUERY_JOIN_TREE_H_
