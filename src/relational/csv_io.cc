#include "relational/csv_io.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace relborg {

bool WriteCsv(const Relation& rel, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const Schema& schema = rel.schema();
  for (int a = 0; a < schema.num_attrs(); ++a) {
    std::fprintf(f, "%s%s", a == 0 ? "" : ",", schema.attr(a).name.c_str());
  }
  std::fputc('\n', f);
  for (size_t row = 0; row < rel.num_rows(); ++row) {
    for (int a = 0; a < schema.num_attrs(); ++a) {
      if (a > 0) std::fputc(',', f);
      if (schema.attr(a).type == AttrType::kCategorical) {
        std::fprintf(f, "%d", rel.Cat(row, a));
      } else {
        std::fprintf(f, "%.10g", rel.Double(row, a));
      }
    }
    std::fputc('\n', f);
  }
  bool ok = std::fclose(f) == 0;
  return ok;
}

bool ReadCsv(const std::string& path, const std::string& name,
             const Schema& schema, Relation* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  *out = Relation(name, schema);
  std::string line;
  std::vector<char> buf(1 << 16);
  bool first = true;
  std::vector<double> values(schema.num_attrs());
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), f) != nullptr) {
    if (first) {  // skip header
      first = false;
      continue;
    }
    const char* p = buf.data();
    int a = 0;
    while (*p != '\0' && *p != '\n' && a < schema.num_attrs()) {
      char* end = nullptr;
      values[a++] = std::strtod(p, &end);
      p = (end != nullptr && *end == ',') ? end + 1 : end;
      if (p == nullptr) break;
    }
    if (a != schema.num_attrs()) {
      std::fclose(f);
      return false;
    }
    out->AppendRow(values);
  }
  std::fclose(f);
  return true;
}

size_t FileBytes(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return 0;
  return static_cast<size_t>(st.st_size);
}

}  // namespace relborg
