#include "relational/catalog.h"

#include "util/check.h"

namespace relborg {

Relation* Catalog::AddRelation(std::string name, Schema schema) {
  RELBORG_CHECK_MSG(!Has(name), "duplicate relation name");
  relations_.push_back(
      std::make_unique<Relation>(std::move(name), std::move(schema)));
  return relations_.back().get();
}

Relation* Catalog::Get(const std::string& name) {
  for (auto& r : relations_) {
    if (r->name() == name) return r.get();
  }
  RELBORG_CHECK_MSG(false, name.c_str());
  return nullptr;
}

const Relation* Catalog::Get(const std::string& name) const {
  return const_cast<Catalog*>(this)->Get(name);
}

bool Catalog::Has(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r->name() == name) return true;
  }
  return false;
}

size_t Catalog::TotalRows() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r->num_rows();
  return n;
}

size_t Catalog::TotalBytes() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r->ByteSize();
  return n;
}

}  // namespace relborg
