// A named collection of relations: the "database" a feature-extraction
// query runs over.
#ifndef RELBORG_RELATIONAL_CATALOG_H_
#define RELBORG_RELATIONAL_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace relborg {

class Catalog {
 public:
  Catalog() = default;

  // Move-only: relations are large.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  // Adds a relation and returns a stable pointer to it.
  Relation* AddRelation(std::string name, Schema schema);

  // Lookup by name; aborts if absent.
  Relation* Get(const std::string& name);
  const Relation* Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  int num_relations() const { return static_cast<int>(relations_.size()); }
  Relation* relation(int i) { return relations_[i].get(); }
  const Relation* relation(int i) const { return relations_[i].get(); }

  // Total rows and bytes across all relations (Fig. 3 "Database" row).
  size_t TotalRows() const;
  size_t TotalBytes() const;

 private:
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace relborg

#endif  // RELBORG_RELATIONAL_CATALOG_H_
