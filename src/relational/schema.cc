#include "relational/schema.h"

#include "util/check.h"

namespace relborg {

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attrs(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return -1;
}

int Schema::MustIndexOf(const std::string& name) const {
  int i = IndexOf(name);
  RELBORG_CHECK_MSG(i >= 0, name.c_str());
  return i;
}

}  // namespace relborg
