#include "relational/relation.h"

#include <algorithm>

namespace relborg {

Relation::Relation(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attrs());
  for (int i = 0; i < schema_.num_attrs(); ++i) {
    columns_.emplace_back(schema_.attr(i).type);
  }
}

void Relation::AppendRow(const std::vector<double>& values) {
  RELBORG_CHECK(static_cast<int>(values.size()) == schema_.num_attrs());
  for (int i = 0; i < schema_.num_attrs(); ++i) {
    columns_[i].AppendAsDouble(values[i]);
  }
  ++num_rows_;
}

void Relation::CommitAppendedRows(size_t n) {
  for (const Column& c : columns_) {
    RELBORG_CHECK_MSG(c.size() == num_rows_ + n,
                      "bulk append out of step with the row count");
  }
  num_rows_ += n;
}

void Relation::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

size_t Relation::ByteSize() const {
  size_t bytes = 0;
  for (const Column& c : columns_) {
    bytes += c.type() == AttrType::kDouble ? c.size() * sizeof(double)
                                           : c.size() * sizeof(int32_t);
  }
  return bytes;
}

int32_t Relation::DomainSize(int attr) const {
  const Column& c = columns_[attr];
  RELBORG_CHECK(c.type() == AttrType::kCategorical);
  int32_t max_code = -1;
  for (int32_t v : c.cats()) max_code = std::max(max_code, v);
  return max_code + 1;
}

}  // namespace relborg
