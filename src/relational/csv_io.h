// CSV import/export for relations.
//
// Used both as a general-purpose loader and — importantly for the Fig. 3
// reproduction — as the "data move" step of the structure-agnostic pipeline:
// the materialized data matrix is serialized to CSV by the "query engine"
// and parsed back by the "learning library".
#ifndef RELBORG_RELATIONAL_CSV_IO_H_
#define RELBORG_RELATIONAL_CSV_IO_H_

#include <string>

#include "relational/relation.h"

namespace relborg {

// Writes `rel` (with a header line) to `path`. Returns false on I/O error.
bool WriteCsv(const Relation& rel, const std::string& path);

// Reads a CSV with header into a new relation using `schema` (header names
// must match the schema in order). Returns false on I/O or parse error.
bool ReadCsv(const std::string& path, const std::string& name,
             const Schema& schema, Relation* out);

// Byte size of the file at `path`, or 0 if it does not exist.
size_t FileBytes(const std::string& path);

}  // namespace relborg

#endif  // RELBORG_RELATIONAL_CSV_IO_H_
