// Attribute types and relation schemas.
//
// relborg distinguishes two storage types, matching what the learning layer
// needs: continuous attributes (doubles, usable directly as features) and
// categorical attributes (non-negative int32 codes: join keys, group-by
// attributes, one-hot/sparse-tensor features).
#ifndef RELBORG_RELATIONAL_SCHEMA_H_
#define RELBORG_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relborg {

enum class AttrType : uint8_t {
  kDouble,       // continuous feature / measure
  kCategorical,  // int32 code: key, group-by attribute, categorical feature
};

struct Attribute {
  std::string name;
  AttrType type = AttrType::kDouble;
};

// Ordered list of attributes with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(int i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  void AddAttribute(const std::string& name, AttrType type) {
    attrs_.push_back(Attribute{name, type});
  }

  // Index of the attribute with the given name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  // Index of the attribute with the given name; aborts if absent.
  int MustIndexOf(const std::string& name) const;

  bool HasAttribute(const std::string& name) const {
    return IndexOf(name) >= 0;
  }

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace relborg

#endif  // RELBORG_RELATIONAL_SCHEMA_H_
