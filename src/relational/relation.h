// Columnar in-memory relations.
//
// A Relation stores one typed column per schema attribute. Continuous
// columns are std::vector<double>; categorical columns are
// std::vector<int32_t> of non-negative codes. Append-only: the engines in
// this library never update rows in place (deletions are modeled by the IVM
// layer as multiplicity -1 payloads, not by mutating base relations).
#ifndef RELBORG_RELATIONAL_RELATION_H_
#define RELBORG_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/check.h"

namespace relborg {

// One typed column. Exactly one of the two vectors is used, per `type`.
class Column {
 public:
  explicit Column(AttrType type) : type_(type) {}

  AttrType type() const { return type_; }
  size_t size() const {
    return type_ == AttrType::kDouble ? doubles_.size() : cats_.size();
  }

  double Double(size_t row) const {
    RELBORG_DCHECK(type_ == AttrType::kDouble);
    return doubles_[row];
  }
  int32_t Cat(size_t row) const {
    RELBORG_DCHECK(type_ == AttrType::kCategorical);
    return cats_[row];
  }

  // Value as a double regardless of type (categorical codes are exact in
  // double up to 2^53). Used by the structure-agnostic baseline's data
  // matrix and by CSV export.
  double AsDouble(size_t row) const {
    return type_ == AttrType::kDouble ? doubles_[row]
                                      : static_cast<double>(cats_[row]);
  }

  void AppendDouble(double v) {
    RELBORG_DCHECK(type_ == AttrType::kDouble);
    doubles_.push_back(v);
  }
  void AppendCat(int32_t v) {
    RELBORG_DCHECK(type_ == AttrType::kCategorical);
    RELBORG_DCHECK(v >= 0);
    cats_.push_back(v);
  }
  void AppendAsDouble(double v) {
    if (type_ == AttrType::kDouble) {
      doubles_.push_back(v);
    } else {
      AppendCat(static_cast<int32_t>(v));
    }
  }

  // Bulk appends of pre-typed columnar chunks (the staged-ingestion path:
  // rows are transposed and typed off the hot thread, commits reduce to
  // one splice per column).
  void AppendChunk(const std::vector<double>& values) {
    RELBORG_DCHECK(type_ == AttrType::kDouble);
    doubles_.insert(doubles_.end(), values.begin(), values.end());
  }
  void AppendChunk(const std::vector<int32_t>& values) {
    RELBORG_DCHECK(type_ == AttrType::kCategorical);
    cats_.insert(cats_.end(), values.begin(), values.end());
  }

  void Reserve(size_t n) {
    if (type_ == AttrType::kDouble) {
      doubles_.reserve(n);
    } else {
      cats_.reserve(n);
    }
  }

  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int32_t>& cats() const { return cats_; }

 private:
  AttrType type_;
  std::vector<double> doubles_;
  std::vector<int32_t> cats_;
};

class Relation {
 public:
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_attrs() const { return schema_.num_attrs(); }

  const Column& column(int attr) const { return columns_[attr]; }
  Column& mutable_column(int attr) { return columns_[attr]; }

  double Double(size_t row, int attr) const {
    return columns_[attr].Double(row);
  }
  int32_t Cat(size_t row, int attr) const { return columns_[attr].Cat(row); }
  double AsDouble(size_t row, int attr) const {
    return columns_[attr].AsDouble(row);
  }

  // Appends one row given per-attribute values as doubles (categorical
  // attributes are cast). Aborts if the arity does not match.
  void AppendRow(const std::vector<double>& values);

  // Completes a bulk append: after `n` values were added to EVERY column
  // via mutable_column().AppendChunk, registers the n new rows. Aborts if
  // any column is out of step.
  void CommitAppendedRows(size_t n);

  void Reserve(size_t n);

  // Rough in-memory footprint in bytes (for the Fig. 3 size columns).
  size_t ByteSize() const;

  // The largest categorical code in `attr` plus one (0 for empty columns);
  // the "active domain" size used to size one-hot encodings and category
  // grids.
  int32_t DomainSize(int attr) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace relborg

#endif  // RELBORG_RELATIONAL_RELATION_H_
