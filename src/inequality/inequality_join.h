// Aggregates over joins with ADDITIVE INEQUALITY conditions (Sec. 2.3):
//
//   SUM(f) WHERE w1 * X1 + w2 * X2 > c [GROUP BY Z]
//
// where X1 and X2 live in different relations of a join. These arise in the
// subgradients of non-polynomial loss functions (SVM hinge loss, robust
// regression) and in k-means assignment counts.
//
// A classical engine evaluates the theta-join by enumerating the join and
// testing the inequality per tuple: O(|join|). The factorized algorithm
// (after Abo Khamis et al., PODS 2019) instead sorts, per join key, the
// right-hand tuples by their linear score and keeps prefix sums of the
// measure; each left tuple then answers with one binary search:
// O(N log N) regardless of the join's output size.
#ifndef RELBORG_INEQUALITY_INEQUALITY_JOIN_H_
#define RELBORG_INEQUALITY_INEQUALITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace relborg {

// The query shape: R(k, x, [m]) |X|_k S(k, y) with condition
// wx * x + wy * y > c. The measure is SUM(m) where m is a continuous
// attribute of R (or COUNT(*) when measure_attr < 0).
struct InequalityAggregateSpec {
  int r_key_attr = 0;
  int r_x_attr = 1;
  int r_measure_attr = -1;  // -1 = COUNT(*)
  int s_key_attr = 0;
  int s_y_attr = 1;
  double wx = 1.0;
  double wy = 1.0;
  double threshold = 0.0;
};

struct InequalityAggregateResult {
  double value = 0;
  size_t tuples_inspected = 0;  // work measure: join tuples / probes touched
};

// Baseline: enumerate the join (hash join on the key) and test the
// inequality per output tuple.
InequalityAggregateResult InequalityAggregateNaive(
    const Relation& r, const Relation& s, const InequalityAggregateSpec& spec);

// Factorized: per key, sort S by wy * y with suffix counts; each R tuple
// binary-searches for the qualifying suffix. Never enumerates the join.
InequalityAggregateResult InequalityAggregateSorted(
    const Relation& r, const Relation& s, const InequalityAggregateSpec& spec);

// SVM-style application: the hinge-loss subgradient component
//   SUM(m) WHERE wx * x + wy * y < 1  (margin violations)
// is the same machinery with flipped inequality; exposed as a convenience
// by negating weights and threshold.
InequalityAggregateResult HingeViolationMass(
    const Relation& r, const Relation& s, int r_key, int r_x, int r_measure,
    int s_key, int s_y, double wx, double wy);

// --- Batched inequality aggregates -------------------------------------
//
// A (sub)gradient needs MANY aggregates under the SAME inequality
// condition: the violator count plus SUM(x_d) for every feature dimension
// d on either side of the join. One sort of S (by its linear score, per
// key, with suffix sums of every S-side measure) serves the whole batch —
// the cross-aggregate sharing theme of the paper applied to theta-joins.

struct InequalityBatchSpec {
  int r_key_attr = 0;
  int s_key_attr = 0;
  // The inequality: sum_d rw[d]*R.x[d] + sum_d sw[d]*S.y[d] > threshold,
  // where r_score_attrs / s_score_attrs list the attributes entering the
  // linear scores with weights r_score_weights / s_score_weights.
  std::vector<int> r_score_attrs;
  std::vector<double> r_score_weights;
  std::vector<int> s_score_attrs;
  std::vector<double> s_score_weights;
  double threshold = 0.0;
  // Measures to aggregate over qualifying join tuples.
  std::vector<int> r_measure_attrs;
  std::vector<int> s_measure_attrs;
};

struct InequalityBatchResult {
  double count = 0;                 // qualifying join tuples
  std::vector<double> r_sums;       // per r_measure_attrs entry
  std::vector<double> s_sums;       // per s_measure_attrs entry
};

// Factorized evaluation: O((|R| + |S|) log |S|) for the whole batch.
InequalityBatchResult InequalityAggregateBatchSorted(
    const Relation& r, const Relation& s, const InequalityBatchSpec& spec);

// Reference evaluation by join enumeration (for tests and the benches).
InequalityBatchResult InequalityAggregateBatchNaive(
    const Relation& r, const Relation& s, const InequalityBatchSpec& spec);

}  // namespace relborg

#endif  // RELBORG_INEQUALITY_INEQUALITY_JOIN_H_
