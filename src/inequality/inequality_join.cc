#include "inequality/inequality_join.h"

#include <algorithm>

#include "util/check.h"
#include "util/flat_hash_map.h"
#include "util/packed_key.h"

namespace relborg {

InequalityAggregateResult InequalityAggregateNaive(
    const Relation& r, const Relation& s,
    const InequalityAggregateSpec& spec) {
  InequalityAggregateResult result;
  // Hash S rows by key.
  FlatHashMap<std::vector<uint32_t>> index;
  for (size_t row = 0; row < s.num_rows(); ++row) {
    index[PackKey1(s.Cat(row, spec.s_key_attr))].push_back(
        static_cast<uint32_t>(row));
  }
  for (size_t rrow = 0; rrow < r.num_rows(); ++rrow) {
    const std::vector<uint32_t>* matches =
        index.Find(PackKey1(r.Cat(rrow, spec.r_key_attr)));
    if (matches == nullptr) continue;
    double x = r.Double(rrow, spec.r_x_attr);
    double m = spec.r_measure_attr < 0
                   ? 1.0
                   : r.Double(rrow, spec.r_measure_attr);
    for (uint32_t srow : *matches) {
      ++result.tuples_inspected;  // one join tuple materialized & tested
      double y = s.Double(srow, spec.s_y_attr);
      if (spec.wx * x + spec.wy * y > spec.threshold) {
        result.value += m;
      }
    }
  }
  return result;
}

InequalityAggregateResult InequalityAggregateSorted(
    const Relation& r, const Relation& s,
    const InequalityAggregateSpec& spec) {
  InequalityAggregateResult result;
  // Per key: S scores wy * y, sorted ascending, with suffix counts.
  struct KeyGroup {
    std::vector<double> scores;  // sorted wy * y
  };
  FlatHashMap<KeyGroup> groups;
  for (size_t row = 0; row < s.num_rows(); ++row) {
    groups[PackKey1(s.Cat(row, spec.s_key_attr))].scores.push_back(
        spec.wy * s.Double(row, spec.s_y_attr));
  }
  groups.ForEachMutable([&](uint64_t, KeyGroup& g) {
    std::sort(g.scores.begin(), g.scores.end());
    result.tuples_inspected += g.scores.size();  // sorting pass over S
  });
  for (size_t rrow = 0; rrow < r.num_rows(); ++rrow) {
    const KeyGroup* g = groups.Find(PackKey1(r.Cat(rrow, spec.r_key_attr)));
    ++result.tuples_inspected;  // one probe per R tuple
    if (g == nullptr) continue;
    double lhs = spec.wx * r.Double(rrow, spec.r_x_attr);
    double m = spec.r_measure_attr < 0
                   ? 1.0
                   : r.Double(rrow, spec.r_measure_attr);
    // Count S partners with wy*y > threshold - wx*x.
    double bound = spec.threshold - lhs;
    auto it = std::upper_bound(g->scores.begin(), g->scores.end(), bound);
    size_t qualifying = static_cast<size_t>(g->scores.end() - it);
    result.value += m * static_cast<double>(qualifying);
  }
  return result;
}

namespace {

double RowScore(const Relation& rel, size_t row,
                const std::vector<int>& attrs,
                const std::vector<double>& weights) {
  double s = 0;
  for (size_t d = 0; d < attrs.size(); ++d) {
    s += weights[d] * rel.Double(row, attrs[d]);
  }
  return s;
}

}  // namespace

InequalityBatchResult InequalityAggregateBatchSorted(
    const Relation& r, const Relation& s, const InequalityBatchSpec& spec) {
  RELBORG_CHECK(spec.r_score_attrs.size() == spec.r_score_weights.size());
  RELBORG_CHECK(spec.s_score_attrs.size() == spec.s_score_weights.size());
  InequalityBatchResult result;
  result.r_sums.assign(spec.r_measure_attrs.size(), 0.0);
  result.s_sums.assign(spec.s_measure_attrs.size(), 0.0);
  const size_t num_s_measures = spec.s_measure_attrs.size();

  // Per key: S rows sorted by score, with suffix sums of count and of
  // every S-side measure.
  struct KeyGroup {
    // Sorted (score, row) pairs, later replaced by suffix sums.
    std::vector<std::pair<double, uint32_t>> rows;
    // suffix[m][i] = sum over rows[i..] of measure m (m == 0 is COUNT).
    std::vector<std::vector<double>> suffix;
  };
  FlatHashMap<KeyGroup> groups;
  for (size_t row = 0; row < s.num_rows(); ++row) {
    groups[PackKey1(s.Cat(row, spec.s_key_attr))].rows.push_back(
        {RowScore(s, row, spec.s_score_attrs, spec.s_score_weights),
         static_cast<uint32_t>(row)});
  }
  groups.ForEachMutable([&](uint64_t, KeyGroup& g) {
    std::sort(g.rows.begin(), g.rows.end());
    const size_t n = g.rows.size();
    g.suffix.assign(1 + num_s_measures, std::vector<double>(n + 1, 0.0));
    for (size_t i = n; i > 0; --i) {
      g.suffix[0][i - 1] = g.suffix[0][i] + 1.0;
      for (size_t m = 0; m < num_s_measures; ++m) {
        g.suffix[1 + m][i - 1] =
            g.suffix[1 + m][i] +
            s.Double(g.rows[i - 1].second, spec.s_measure_attrs[m]);
      }
    }
  });

  for (size_t rrow = 0; rrow < r.num_rows(); ++rrow) {
    const KeyGroup* g = groups.Find(PackKey1(r.Cat(rrow, spec.r_key_attr)));
    if (g == nullptr) continue;
    double bound = spec.threshold -
                   RowScore(r, rrow, spec.r_score_attrs, spec.r_score_weights);
    // First S row with score strictly greater than `bound`.
    auto it = std::upper_bound(
        g->rows.begin(), g->rows.end(), bound,
        [](double b, const std::pair<double, uint32_t>& e) {
          return b < e.first;
        });
    size_t idx = static_cast<size_t>(it - g->rows.begin());
    double qualifying = g->suffix[0][idx];
    if (qualifying == 0) continue;
    result.count += qualifying;
    for (size_t m = 0; m < spec.r_measure_attrs.size(); ++m) {
      result.r_sums[m] +=
          qualifying * r.Double(rrow, spec.r_measure_attrs[m]);
    }
    for (size_t m = 0; m < num_s_measures; ++m) {
      result.s_sums[m] += g->suffix[1 + m][idx];
    }
  }
  return result;
}

InequalityBatchResult InequalityAggregateBatchNaive(
    const Relation& r, const Relation& s, const InequalityBatchSpec& spec) {
  InequalityBatchResult result;
  result.r_sums.assign(spec.r_measure_attrs.size(), 0.0);
  result.s_sums.assign(spec.s_measure_attrs.size(), 0.0);
  FlatHashMap<std::vector<uint32_t>> index;
  for (size_t row = 0; row < s.num_rows(); ++row) {
    index[PackKey1(s.Cat(row, spec.s_key_attr))].push_back(
        static_cast<uint32_t>(row));
  }
  for (size_t rrow = 0; rrow < r.num_rows(); ++rrow) {
    const std::vector<uint32_t>* matches =
        index.Find(PackKey1(r.Cat(rrow, spec.r_key_attr)));
    if (matches == nullptr) continue;
    double r_score =
        RowScore(r, rrow, spec.r_score_attrs, spec.r_score_weights);
    for (uint32_t srow : *matches) {
      double score = r_score +
                     RowScore(s, srow, spec.s_score_attrs,
                              spec.s_score_weights);
      if (score <= spec.threshold) continue;
      result.count += 1;
      for (size_t m = 0; m < spec.r_measure_attrs.size(); ++m) {
        result.r_sums[m] += r.Double(rrow, spec.r_measure_attrs[m]);
      }
      for (size_t m = 0; m < spec.s_measure_attrs.size(); ++m) {
        result.s_sums[m] += s.Double(srow, spec.s_measure_attrs[m]);
      }
    }
  }
  return result;
}

InequalityAggregateResult HingeViolationMass(const Relation& r,
                                             const Relation& s, int r_key,
                                             int r_x, int r_measure, int s_key,
                                             int s_y, double wx, double wy) {
  // wx*x + wy*y < 1  <=>  (-wx)*x + (-wy)*y > -1.
  InequalityAggregateSpec spec;
  spec.r_key_attr = r_key;
  spec.r_x_attr = r_x;
  spec.r_measure_attr = r_measure;
  spec.s_key_attr = s_key;
  spec.s_y_attr = s_y;
  spec.wx = -wx;
  spec.wy = -wy;
  spec.threshold = -1.0;
  return InequalityAggregateSorted(r, s, spec);
}

}  // namespace relborg
