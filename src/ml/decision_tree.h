// CART decision trees trained over aggregates (Sec. 2.2).
//
// Each tree node evaluates its whole batch of candidate-split cost
// functions through the decision-node engine (shared factorized passes)
// instead of scanning a materialized data matrix: VARIANCE(Y) under the
// path condition AND the split condition for regression, per-class counts
// (Gini) for classification.
#ifndef RELBORG_ML_DECISION_TREE_H_
#define RELBORG_ML_DECISION_TREE_H_

#include <string>
#include <vector>

#include "baseline/data_matrix.h"
#include "core/decision_node_engine.h"
#include "core/feature_map.h"
#include "query/join_tree.h"

namespace relborg {

// A tree feature: continuous features split on thresholds, categorical
// features split on equality with frequent categories.
struct TreeFeature {
  std::string relation;
  std::string attr;
  bool categorical = false;
};

struct DecisionTreeOptions {
  int max_depth = 4;
  double min_node_count = 50;     // do not split smaller nodes
  int thresholds_per_feature = 8; // quantile candidates per continuous attr
  int categories_per_feature = 8; // equality candidates per categorical attr
  double min_gain = 1e-9;
};

class DecisionTree {
 public:
  struct Node {
    bool is_leaf = true;
    double prediction = 0;     // mean response (regression) or class code
    int feature = -1;          // index into the training feature list
    Predicate pred;            // split condition relative to that feature
    int yes_child = -1;
    int no_child = -1;
    double count = 0;
  };

  // Trains a regression tree. `features` are the splitting attributes;
  // `response` must be continuous and is NOT part of `features`.
  static DecisionTree TrainRegression(const JoinQuery& query,
                                      const FeatureRef& response,
                                      const std::vector<TreeFeature>& features,
                                      const DecisionTreeOptions& options = {});

  // Trains a classification tree; the response must be categorical.
  static DecisionTree TrainClassification(
      const JoinQuery& query, const FeatureRef& response,
      const std::vector<TreeFeature>& features,
      const DecisionTreeOptions& options = {});

  // Predicts for a row whose column i holds the value of training feature i
  // (categorical features as their code).
  double Predict(const double* row) const;

  // Mean squared prediction error over a data matrix whose first
  // `features.size()` columns are the features (training order) and whose
  // column `response_col` is the response.
  double Mse(const DataMatrix& data, int response_col) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const { return nodes_[i]; }
  int depth() const;

  // Total number of candidate-split aggregates evaluated during training
  // (the "decision node" rows of Fig. 5 count one node's batch).
  size_t aggregates_evaluated() const { return aggregates_evaluated_; }

 private:
  static DecisionTree Train(const JoinQuery& query, const FeatureRef& response,
                            const std::vector<TreeFeature>& features,
                            const DecisionTreeOptions& options,
                            bool classification);

  std::vector<Node> nodes_;
  size_t aggregates_evaluated_ = 0;
};

// Builds the candidate splits for one tree node: quantile thresholds for
// continuous features, frequent-category equality tests for categorical
// ones. Exposed for the Fig. 5 aggregate-count table. candidate_feature[i]
// receives the feature index of candidates[i].
std::vector<SplitCandidate> BuildSplitCandidates(
    const JoinQuery& query, const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options, std::vector<int>* candidate_feature);

}  // namespace relborg

#endif  // RELBORG_ML_DECISION_TREE_H_
