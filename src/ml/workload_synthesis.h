// Synthesis of the aggregate batches behind each workload of Fig. 5.
//
// Fig. 5 of the paper reports the NUMBER of aggregates each workload
// expands to (covariance matrix, one decision-tree node, mutual
// information, k-means). These functions synthesize the concrete aggregate
// descriptors for a dataset's feature configuration — the counts are the
// sizes of real batch specs, not closed formulas. Absolute numbers depend
// on each dataset's feature mix (the paper's datasets have many more
// categorical attributes than our scaled generators), but the ordering
// decision-node > covariance >> {MI, k-means} is preserved.
#ifndef RELBORG_ML_WORKLOAD_SYNTHESIS_H_
#define RELBORG_ML_WORKLOAD_SYNTHESIS_H_

#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "query/join_tree.h"

namespace relborg {

// One synthesized aggregate, as a human-readable SQL-ish descriptor (used
// by tests and by the Fig. 5 harness to show what is being counted).
using AggregateDescriptor = std::string;

// Covariance batch: SUM(1), SUM(xi), SUM(xi*xj) over continuous features
// plus the sparse-tensor group-by aggregates for categorical features
// (counts per category, per category pair, and SUM(xi) GROUP BY cat).
std::vector<AggregateDescriptor> SynthesizeCovarBatch(
    int num_continuous, int num_categorical);

// Decision-tree node batch: (COUNT, SUM(y), SUM(y^2)) per candidate split.
std::vector<AggregateDescriptor> SynthesizeDecisionNodeBatch(
    const JoinQuery& query, const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options);

// Mutual-information batch: one marginal count per attribute plus one pair
// count per attribute pair.
std::vector<AggregateDescriptor> SynthesizeMutualInfoBatch(
    int num_categorical);

// k-means (Rk-means) batch: per-dimension SUM and SUM^2 (grid statistics),
// the per-relation assignment counts, and the coreset weight aggregate.
std::vector<AggregateDescriptor> SynthesizeKMeansBatch(
    int num_dimensions, int num_feature_relations);

}  // namespace relborg

#endif  // RELBORG_ML_WORKLOAD_SYNTHESIS_H_
