#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

Predicate Negate(const Predicate& p) {
  Predicate n = p;
  switch (p.op) {
    case Predicate::Op::kGe:
      n.op = Predicate::Op::kLt;
      break;
    case Predicate::Op::kLt:
      n.op = Predicate::Op::kGe;
      break;
    case Predicate::Op::kEq:
      n.op = Predicate::Op::kNe;
      break;
    case Predicate::Op::kNe:
      n.op = Predicate::Op::kEq;
      break;
    case Predicate::Op::kInSet:
      n.op = Predicate::Op::kNotInSet;
      break;
    case Predicate::Op::kNotInSet:
      n.op = Predicate::Op::kInSet;
      break;
  }
  return n;
}

// Evaluates a split predicate against a plain feature value (prediction
// path; no relation involved).
bool MatchesValue(const Predicate& p, double v) {
  switch (p.op) {
    case Predicate::Op::kGe:
      return v >= p.threshold;
    case Predicate::Op::kLt:
      return v < p.threshold;
    case Predicate::Op::kEq:
      return static_cast<int32_t>(v) == p.category;
    case Predicate::Op::kNe:
      return static_cast<int32_t>(v) != p.category;
    case Predicate::Op::kInSet:
      return std::binary_search(p.set.begin(), p.set.end(),
                                static_cast<int32_t>(v));
    case Predicate::Op::kNotInSet:
      return !std::binary_search(p.set.begin(), p.set.end(),
                                 static_cast<int32_t>(v));
  }
  return false;
}

double SseOf(const SplitStats& s) {
  if (s.count <= 0) return 0;
  double sse = s.sum_sq - s.sum * s.sum / s.count;
  return sse < 0 ? 0 : sse;
}

struct ClassStats {
  double count = 0;
  FlatHashMap<double> per_class;
};

double GiniImpurity(const ClassStats& s) {
  if (s.count <= 0) return 0;
  double sum_sq = 0;
  s.per_class.ForEach([&](uint64_t, double c) { sum_sq += c * c; });
  return s.count * (1.0 - sum_sq / (s.count * s.count));
}

double MajorityClass(const ClassStats& s) {
  double best_count = -1;
  uint64_t best_class = 0;
  s.per_class.ForEach([&](uint64_t cls, double c) {
    if (c > best_count) {
      best_count = c;
      best_class = cls;
    }
  });
  return static_cast<double>(UnpackLow(best_class));
}

}  // namespace

std::vector<SplitCandidate> BuildSplitCandidates(
    const JoinQuery& query, const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options, std::vector<int>* candidate_feature) {
  std::vector<SplitCandidate> candidates;
  for (size_t f = 0; f < features.size(); ++f) {
    const TreeFeature& tf = features[f];
    int node = query.IndexOf(tf.relation);
    const Relation& rel = *query.relation(node);
    int attr = rel.schema().MustIndexOf(tf.attr);
    if (!tf.categorical) {
      RELBORG_CHECK(rel.schema().attr(attr).type == AttrType::kDouble);
      // Quantile thresholds from (a sample of) the relation's own column.
      std::vector<double> values;
      size_t stride = std::max<size_t>(1, rel.num_rows() / 20000);
      for (size_t row = 0; row < rel.num_rows(); row += stride) {
        values.push_back(rel.Double(row, attr));
      }
      if (values.empty()) continue;
      std::sort(values.begin(), values.end());
      double last = std::numeric_limits<double>::quiet_NaN();
      for (int t = 1; t <= options.thresholds_per_feature; ++t) {
        size_t idx = values.size() * t / (options.thresholds_per_feature + 1);
        if (idx >= values.size()) idx = values.size() - 1;
        double thr = values[idx];
        if (thr == last) continue;  // dedupe equal quantiles
        last = thr;
        candidates.push_back(
            {node, Predicate::Ge(static_cast<int>(attr), thr)});
        if (candidate_feature != nullptr) {
          candidate_feature->push_back(static_cast<int>(f));
        }
      }
    } else {
      RELBORG_CHECK(rel.schema().attr(attr).type == AttrType::kCategorical);
      // Most frequent categories.
      FlatHashMap<double> freq;
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        freq[PackKey1(rel.Cat(row, attr))] += 1;
      }
      std::vector<std::pair<double, int32_t>> ranked;
      freq.ForEach([&](uint64_t key, double c) {
        ranked.push_back({c, UnpackLow(key)});
      });
      std::sort(ranked.rbegin(), ranked.rend());
      int take = std::min<int>(options.categories_per_feature,
                               static_cast<int>(ranked.size()));
      for (int t = 0; t < take; ++t) {
        candidates.push_back(
            {node, Predicate::Eq(static_cast<int>(attr), ranked[t].second)});
        if (candidate_feature != nullptr) {
          candidate_feature->push_back(static_cast<int>(f));
        }
      }
    }
  }
  return candidates;
}

DecisionTree DecisionTree::Train(const JoinQuery& query,
                                 const FeatureRef& response,
                                 const std::vector<TreeFeature>& features,
                                 const DecisionTreeOptions& options,
                                 bool classification) {
  DecisionTree tree;
  const int response_node = query.IndexOf(response.relation);
  const int response_attr =
      query.relation(response_node)->schema().MustIndexOf(response.attr);

  std::vector<int> candidate_feature;
  std::vector<SplitCandidate> candidates =
      BuildSplitCandidates(query, features, options, &candidate_feature);

  // A trivially-true candidate computes the node's own statistics within
  // the same batch.
  SplitCandidate base;
  base.node = response_node;
  base.pred = classification
                  ? Predicate::Ne(response_attr, -1)
                  : Predicate::Ge(response_attr,
                                  -std::numeric_limits<double>::infinity());
  std::vector<SplitCandidate> batch = candidates;
  batch.push_back(base);
  const size_t base_idx = batch.size() - 1;

  struct WorkItem {
    int node_index;
    FilterSet filters;
    int depth;
  };
  tree.nodes_.push_back(Node{});
  std::vector<WorkItem> work{{0, FilterSet(query.num_relations()), 0}};

  while (!work.empty()) {
    WorkItem item = std::move(work.back());
    work.pop_back();
    Node& node = tree.nodes_[item.node_index];

    int best = -1;
    double best_gain = options.min_gain;
    Node yes_node;
    Node no_node;

    if (!classification) {
      std::vector<SplitStats> stats = ComputeSplitStats(
          query, response_node, response_attr, item.filters, batch);
      tree.aggregates_evaluated_ += DecisionNodeBatchSize(batch.size());
      const SplitStats& parent = stats[base_idx];
      node.count = parent.count;
      node.prediction = parent.count > 0 ? parent.sum / parent.count : 0;
      if (item.depth >= options.max_depth ||
          parent.count < options.min_node_count) {
        continue;  // leaf
      }
      double parent_sse = SseOf(parent);
      for (size_t i = 0; i < candidates.size(); ++i) {
        SplitStats no_stats{parent.count - stats[i].count,
                            parent.sum - stats[i].sum,
                            parent.sum_sq - stats[i].sum_sq};
        if (stats[i].count < 1 || no_stats.count < 1) continue;
        double gain = parent_sse - SseOf(stats[i]) - SseOf(no_stats);
        if (gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(i);
          yes_node.count = stats[i].count;
          yes_node.prediction = stats[i].sum / stats[i].count;
          no_node.count = no_stats.count;
          no_node.prediction = no_stats.sum / no_stats.count;
        }
      }
    } else {
      std::vector<FlatHashMap<double>> counts = ComputeSplitClassCounts(
          query, response_node, response_attr, item.filters, batch);
      tree.aggregates_evaluated_ += batch.size();
      ClassStats parent;
      counts[base_idx].ForEach([&](uint64_t cls, double c) {
        parent.per_class[cls] += c;
        parent.count += c;
      });
      node.count = parent.count;
      node.prediction = MajorityClass(parent);
      if (item.depth >= options.max_depth ||
          parent.count < options.min_node_count) {
        continue;
      }
      double parent_gini = GiniImpurity(parent);
      for (size_t i = 0; i < candidates.size(); ++i) {
        ClassStats yes;
        counts[i].ForEach([&](uint64_t cls, double c) {
          yes.per_class[cls] += c;
          yes.count += c;
        });
        ClassStats no;
        parent.per_class.ForEach([&](uint64_t cls, double c) {
          const double* y = yes.per_class.Find(cls);
          double rest = c - (y == nullptr ? 0.0 : *y);
          if (rest > 0) {
            no.per_class[cls] += rest;
            no.count += rest;
          }
        });
        if (yes.count < 1 || no.count < 1) continue;
        double gain = parent_gini - GiniImpurity(yes) - GiniImpurity(no);
        if (gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(i);
          yes_node.count = yes.count;
          yes_node.prediction = MajorityClass(yes);
          no_node.count = no.count;
          no_node.prediction = MajorityClass(no);
        }
      }
    }

    if (best < 0) continue;  // no useful split: leaf
    node.is_leaf = false;
    node.feature = candidate_feature[best];
    node.pred = candidates[best].pred;
    node.yes_child = static_cast<int>(tree.nodes_.size());
    node.no_child = node.yes_child + 1;
    tree.nodes_.push_back(yes_node);
    tree.nodes_.push_back(no_node);

    FilterSet yes_filters = item.filters;
    yes_filters[candidates[best].node].push_back(candidates[best].pred);
    FilterSet no_filters = std::move(item.filters);
    no_filters[candidates[best].node].push_back(Negate(candidates[best].pred));
    work.push_back({tree.nodes_[item.node_index].yes_child,
                    std::move(yes_filters), item.depth + 1});
    work.push_back({tree.nodes_[item.node_index].no_child,
                    std::move(no_filters), item.depth + 1});
  }
  return tree;
}

DecisionTree DecisionTree::TrainRegression(
    const JoinQuery& query, const FeatureRef& response,
    const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options) {
  return Train(query, response, features, options, /*classification=*/false);
}

DecisionTree DecisionTree::TrainClassification(
    const JoinQuery& query, const FeatureRef& response,
    const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options) {
  return Train(query, response, features, options, /*classification=*/true);
}

double DecisionTree::Predict(const double* row) const {
  int i = 0;
  while (!nodes_[i].is_leaf) {
    const Node& n = nodes_[i];
    i = MatchesValue(n.pred, row[n.feature]) ? n.yes_child : n.no_child;
  }
  return nodes_[i].prediction;
}

double DecisionTree::Mse(const DataMatrix& data, int response_col) const {
  if (data.num_rows() == 0) return 0;
  double sse = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    double err = Predict(data.Row(r)) - data.At(r, response_col);
    sse += err * err;
  }
  return sse / static_cast<double>(data.num_rows());
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  std::vector<int> depth(nodes_.size(), 0);
  int max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf) {
      depth[nodes_[i].yes_child] = depth[i] + 1;
      depth[nodes_[i].no_child] = depth[i] + 1;
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

}  // namespace relborg
