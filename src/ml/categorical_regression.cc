#include "ml/categorical_regression.h"

#include <algorithm>
#include <cmath>

#include "ml/linalg.h"
#include "util/check.h"
#include "util/packed_key.h"

namespace relborg {
namespace {

// Per categorical attribute: its category codes in a stable order, so
// coordinate descent can sweep deterministically.
std::vector<int32_t> CategoryCodes(const FlatHashMap<double>& counts) {
  std::vector<int32_t> codes;
  counts.ForEach([&](uint64_t key, double) {
    codes.push_back(UnpackLow(key));
  });
  std::sort(codes.begin(), codes.end());
  return codes;
}

// Adjacency of the sparse pair-count tensors: for ordered attrs (a, b),
// neighbors[v] lists (w, count) with COUNT(a=v, b=w) > 0.
struct PairAdjacency {
  FlatHashMap<std::vector<std::pair<int32_t, double>>> by_first;
};

}  // namespace

double CategoricalModel::Predict(const double* cont_row,
                                 const int32_t* cat_codes) const {
  double y = bias;
  for (size_t i = 0; i < cont_features.size(); ++i) {
    y += cont_weights[i] * cont_row[cont_features[i]];
  }
  for (size_t a = 0; a < cat_weights.size(); ++a) {
    const double* w = cat_weights[a].Find(PackKey1(cat_codes[a]));
    if (w != nullptr) y += *w;
  }
  return y;
}

CategoricalModel TrainRidgeCategorical(const SparseCovar& covar, int response,
                                       const CategoricalRidgeOptions& options,
                                       CategoricalTrainInfo* info) {
  const CovarMatrix& cont = covar.continuous();
  const int n = cont.num_features();
  const int m = covar.num_categorical();
  const double count = cont.count();
  RELBORG_CHECK_MSG(count > 0, "cannot train on an empty join");
  const double penalty = options.lambda * count;

  CategoricalModel model;
  for (int f = 0; f < n; ++f) {
    if (f != response) model.cont_features.push_back(f);
  }
  const int p = static_cast<int>(model.cont_features.size());
  model.cont_weights.assign(p, 0.0);
  model.cat_weights.resize(m);

  // Category code lists and pair adjacency (both directions).
  std::vector<std::vector<int32_t>> codes(m);
  size_t num_params = 1 + p;
  for (int a = 0; a < m; ++a) {
    codes[a] = CategoryCodes(covar.cat_count(a));
    num_params += codes[a].size();
    for (int32_t v : codes[a]) model.cat_weights[a][PackKey1(v)] = 0.0;
  }
  // adj[a][b] maps v -> [(w, COUNT(a=v, b=w))].
  std::vector<std::vector<PairAdjacency>> adj(m);
  for (int a = 0; a < m; ++a) {
    adj[a].resize(m);
    for (int b = 0; b < m; ++b) {
      if (a == b) continue;
      const FlatHashMap<double>& pairs =
          a < b ? covar.pair_count(a, b) : covar.pair_count(b, a);
      pairs.ForEach([&](uint64_t key, double c) {
        int32_t va = a < b ? UnpackHigh(key) : UnpackLow(key);
        int32_t vb = a < b ? UnpackLow(key) : UnpackHigh(key);
        adj[a][b].by_first[PackKey1(va)].push_back({vb, c});
      });
    }
  }

  auto cat_sum_at = [&](int a, int i, int32_t v) {
    const double* s = covar.cat_sum(a, i).Find(PackKey1(v));
    return s == nullptr ? 0.0 : *s;
  };
  auto cat_count_at = [&](int a, int32_t v) {
    const double* c = covar.cat_count(a).Find(PackKey1(v));
    return c == nullptr ? 0.0 : *c;
  };

  // Block-coordinate descent: per sweep, the dense (bias, continuous)
  // block is solved EXACTLY by Cholesky given the categorical parameters
  // (removes the slow coupling between correlated continuous columns and
  // one-hot blocks), then every categorical coordinate gets its exact
  // update theta_k = (b_k - sum_{j != k} A_kj theta_j) / (A_kk + penalty).
  const int pd = 1 + p;  // bias + continuous
  std::vector<double> block_a(static_cast<size_t>(pd) * pd, 0.0);
  block_a[0] = count + 1e-12;
  for (int i = 0; i < p; ++i) {
    block_a[0 * pd + (1 + i)] = cont.Sum(model.cont_features[i]);
    block_a[(1 + i) * pd + 0] = cont.Sum(model.cont_features[i]);
    for (int j = 0; j < p; ++j) {
      block_a[(1 + i) * pd + (1 + j)] =
          cont.Moment(model.cont_features[i], model.cont_features[j]);
    }
    block_a[(1 + i) * pd + (1 + i)] += penalty;
  }

  int sweep = 0;
  double delta = 0;
  std::vector<double> block_b(pd);
  std::vector<double> block_theta;
  for (; sweep < options.max_sweeps; ++sweep) {
    delta = 0;

    // Dense block: solve for (bias, continuous) with categoricals fixed.
    block_b[0] = cont.Sum(response);
    for (int i = 0; i < p; ++i) {
      block_b[1 + i] = cont.Moment(model.cont_features[i], response);
    }
    for (int a = 0; a < m; ++a) {
      model.cat_weights[a].ForEach([&](uint64_t key, double w) {
        if (w == 0.0) return;
        int32_t v = UnpackLow(key);
        block_b[0] -= cat_count_at(a, v) * w;
        for (int i = 0; i < p; ++i) {
          block_b[1 + i] -= cat_sum_at(a, model.cont_features[i], v) * w;
        }
      });
    }
    RELBORG_CHECK(CholeskySolve(block_a, block_b, pd, &block_theta));
    delta = std::max(delta, std::abs(block_theta[0] - model.bias));
    model.bias = block_theta[0];
    for (int i = 0; i < p; ++i) {
      delta = std::max(delta,
                       std::abs(block_theta[1 + i] - model.cont_weights[i]));
      model.cont_weights[i] = block_theta[1 + i];
    }

    // Categorical weights.
    for (int a = 0; a < m; ++a) {
      for (int32_t v : codes[a]) {
        double c_v = cat_count_at(a, v);
        if (c_v <= 0) continue;
        double dot = c_v * model.bias;
        for (int i = 0; i < p; ++i) {
          dot += cat_sum_at(a, model.cont_features[i], v) *
                 model.cont_weights[i];
        }
        for (int b = 0; b < m; ++b) {
          if (b == a) continue;
          const auto* neighbors = adj[a][b].by_first.Find(PackKey1(v));
          if (neighbors == nullptr) continue;
          for (const auto& [w_code, c] : *neighbors) {
            const double* w = model.cat_weights[b].Find(PackKey1(w_code));
            if (w != nullptr) dot += c * *w;
          }
        }
        double b_k = cat_sum_at(a, response, v);
        double next = (b_k - dot) / (c_v + penalty);
        double* slot = model.cat_weights[a].Find(PackKey1(v));
        delta = std::max(delta, std::abs(next - *slot));
        *slot = next;
      }
    }

    // Re-gauge: every tuple has exactly one category per attribute, so
    // shifting a block by a constant and adding it to the (unpenalized)
    // bias preserves all predictions. The unweighted block mean is the
    // penalty-minimizing shift; jumping there removes the near-null
    // one-hot/bias direction that otherwise makes coordinate descent
    // crawl.
    for (int a = 0; a < m; ++a) {
      if (codes[a].empty()) continue;
      double mean = 0;
      model.cat_weights[a].ForEach([&](uint64_t, double w) { mean += w; });
      mean /= static_cast<double>(codes[a].size());
      if (mean == 0) continue;
      model.cat_weights[a].ForEachMutable(
          [&](uint64_t, double& w) { w -= mean; });
      model.bias += mean;
    }

    if (delta < options.tolerance) break;
  }

  if (info != nullptr) {
    info->sweeps = sweep;
    info->final_delta = delta;
    info->num_parameters = num_params;
  }
  return model;
}

}  // namespace relborg
