#include "ml/workload_synthesis.h"

namespace relborg {
namespace {

std::string Xi(int i) { return "x" + std::to_string(i); }
std::string Ci(int i) { return "c" + std::to_string(i); }

}  // namespace

std::vector<AggregateDescriptor> SynthesizeCovarBatch(int num_continuous,
                                                      int num_categorical) {
  std::vector<AggregateDescriptor> batch;
  batch.push_back("SUM(1)");
  for (int i = 0; i < num_continuous; ++i) {
    batch.push_back("SUM(" + Xi(i) + ")");
    for (int j = i; j < num_continuous; ++j) {
      batch.push_back("SUM(" + Xi(i) + "*" + Xi(j) + ")");
    }
  }
  // Sparse-tensor encodings of categorical interactions (Sec. 2.1).
  for (int a = 0; a < num_categorical; ++a) {
    batch.push_back("SUM(1) GROUP BY " + Ci(a));
    for (int i = 0; i < num_continuous; ++i) {
      batch.push_back("SUM(" + Xi(i) + ") GROUP BY " + Ci(a));
    }
    for (int b = a + 1; b < num_categorical; ++b) {
      batch.push_back("SUM(1) GROUP BY " + Ci(a) + "," + Ci(b));
    }
  }
  return batch;
}

std::vector<AggregateDescriptor> SynthesizeDecisionNodeBatch(
    const JoinQuery& query, const std::vector<TreeFeature>& features,
    const DecisionTreeOptions& options) {
  std::vector<SplitCandidate> candidates =
      BuildSplitCandidates(query, features, options, nullptr);
  std::vector<AggregateDescriptor> batch;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::string cond = " WHERE cand" + std::to_string(i);
    batch.push_back("COUNT(*)" + cond);
    batch.push_back("SUM(y)" + cond);
    batch.push_back("SUM(y*y)" + cond);
  }
  return batch;
}

std::vector<AggregateDescriptor> SynthesizeMutualInfoBatch(
    int num_categorical) {
  std::vector<AggregateDescriptor> batch;
  for (int a = 0; a < num_categorical; ++a) {
    batch.push_back("SUM(1) GROUP BY " + Ci(a));
    for (int b = a + 1; b < num_categorical; ++b) {
      batch.push_back("SUM(1) GROUP BY " + Ci(a) + "," + Ci(b));
    }
  }
  return batch;
}

std::vector<AggregateDescriptor> SynthesizeKMeansBatch(
    int num_dimensions, int num_feature_relations) {
  std::vector<AggregateDescriptor> batch;
  batch.push_back("SUM(1)");  // total mass
  for (int d = 0; d < num_dimensions; ++d) {
    batch.push_back("SUM(" + Xi(d) + ")");
    batch.push_back("SUM(" + Xi(d) + "*" + Xi(d) + ")");
  }
  for (int r = 0; r < num_feature_relations; ++r) {
    batch.push_back("SUM(1) GROUP BY assign_r" + std::to_string(r));
  }
  batch.push_back("SUM(1) GROUP BY coreset_cell");
  return batch;
}

}  // namespace relborg
