#include "ml/fd_reparam.h"

#include "util/check.h"

namespace relborg {

FdReparamResult SplitMergedParameters(const std::vector<double>& merged,
                                      const std::vector<int32_t>& country_of,
                                      int32_t num_countries) {
  RELBORG_CHECK(merged.size() == country_of.size());
  FdReparamResult result;
  result.theta_city.assign(merged.size(), 0.0);
  result.theta_country.assign(num_countries, 0.0);
  std::vector<double> count(num_countries, 0.0);
  for (size_t c = 0; c < merged.size(); ++c) {
    RELBORG_CHECK(country_of[c] >= 0 && country_of[c] < num_countries);
    result.theta_country[country_of[c]] += merged[c];
    count[country_of[c]] += 1;
  }
  for (int32_t k = 0; k < num_countries; ++k) {
    result.theta_country[k] =
        count[k] > 0 ? result.theta_country[k] / (count[k] + 1) : 0.0;
  }
  for (size_t c = 0; c < merged.size(); ++c) {
    result.theta_city[c] = merged[c] - result.theta_country[country_of[c]];
  }
  return result;
}

double SplitPenalty(const FdReparamResult& split) {
  double p = 0;
  for (double v : split.theta_city) p += v * v;
  for (double v : split.theta_country) p += v * v;
  return p;
}

}  // namespace relborg
