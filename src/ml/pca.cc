#include "ml/pca.h"

#include <cmath>

#include "ml/linalg.h"
#include "util/check.h"

namespace relborg {

PcaResult ComputePca(const CovarMatrix& m, int k,
                     const std::vector<int>& feature_subset) {
  std::vector<int> subset = feature_subset;
  if (subset.empty()) {
    for (int f = 0; f < m.num_features(); ++f) subset.push_back(f);
  }
  const int p = static_cast<int>(subset.size());
  RELBORG_CHECK(k >= 1);
  k = std::min(k, p);

  std::vector<double> cov(p * p);
  PcaResult result;
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      cov[a * p + b] = m.Covariance(subset[a], subset[b]);
    }
    result.total_variance += cov[a * p + a];
  }

  double cumulative = 0;
  for (int c = 0; c < k; ++c) {
    std::vector<double> v;
    double lambda = PowerIteration(cov, p, &v, 500, /*seed=*/17 + c);
    if (lambda <= 1e-12) break;
    result.components.push_back(v);
    result.eigenvalues.push_back(lambda);
    cumulative += lambda;
    result.explained_ratio.push_back(
        result.total_variance > 0 ? cumulative / result.total_variance : 1.0);
    Deflate(&cov, p, lambda, v);
  }
  return result;
}

}  // namespace relborg
