// Mutual information between categorical attributes over the join, and
// Chow-Liu trees built from it (Fig. 5's "Mutual inf." workload: model
// selection and tree-structured graphical models).
//
// All pairwise distributions are group-by count aggregates (the sparse-
// tensor encoding), evaluated factorized — the join is never materialized.
#ifndef RELBORG_ML_MUTUAL_INFORMATION_H_
#define RELBORG_ML_MUTUAL_INFORMATION_H_

#include <string>
#include <vector>

#include "core/feature_map.h"
#include "query/join_tree.h"

namespace relborg {

struct MutualInformationResult {
  std::vector<FeatureRef> attrs;
  // Row-major symmetric matrix of pairwise mutual information (nats);
  // diagonal holds each attribute's entropy.
  std::vector<double> mi;
  // Number of group-by aggregates evaluated (for the Fig. 5 table).
  size_t aggregates = 0;

  double At(int i, int j) const {
    return mi[i * static_cast<int>(attrs.size()) + j];
  }
};

// Computes all pairwise MI between the given categorical attributes.
MutualInformationResult ComputeMutualInformation(
    const RootedTree& tree, const std::vector<FeatureRef>& attrs);

// An edge of the Chow-Liu tree: indices into the MI result's attr list.
struct ChowLiuEdge {
  int a = -1;
  int b = -1;
  double mi = 0;
};

// Maximum-spanning-tree (Kruskal) over MI weights: the Chow-Liu structure.
std::vector<ChowLiuEdge> BuildChowLiuTree(const MutualInformationResult& mi);

}  // namespace relborg

#endif  // RELBORG_ML_MUTUAL_INFORMATION_H_
