#include "ml/linear_regression.h"

#include <cmath>

#include "ml/linalg.h"
#include "util/check.h"

namespace relborg {
namespace {

// Standardized ridge system extracted from the covariance matrix:
// correlation matrix C (p x p) of the selected regressors, correlation
// vector r with the response, and the statistics needed to map solutions
// back to the original space. Standardizing makes gradient descent's step
// size a simple function of p and keeps Cholesky well conditioned; both
// solvers use the same system so they agree exactly on the model.
struct StandardizedSystem {
  std::vector<int> subset;
  std::vector<double> mean;   // per regressor
  std::vector<double> scale;  // per regressor (1 for constant columns)
  double mean_y = 0;
  std::vector<double> corr;     // p x p
  std::vector<double> corr_y;   // p
  double count = 0;
};

StandardizedSystem BuildSystem(const CovarMatrix& m, int response,
                               const std::vector<int>& feature_subset) {
  StandardizedSystem sys;
  if (feature_subset.empty()) {
    for (int f = 0; f < m.num_features(); ++f) {
      if (f != response) sys.subset.push_back(f);
    }
  } else {
    sys.subset = feature_subset;
  }
  const int p = static_cast<int>(sys.subset.size());
  const double c = m.count();
  sys.count = c;
  RELBORG_CHECK_MSG(c > 0, "cannot train on an empty join");
  sys.mean.resize(p);
  sys.scale.resize(p);
  for (int a = 0; a < p; ++a) {
    int f = sys.subset[a];
    RELBORG_CHECK(f != response);
    sys.mean[a] = m.Sum(f) / c;
    double var = m.Moment(f, f) / c - sys.mean[a] * sys.mean[a];
    sys.scale[a] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  sys.mean_y = m.Sum(response) / c;
  sys.corr.assign(p * p, 0.0);
  sys.corr_y.assign(p, 0.0);
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      double cov = m.Moment(sys.subset[a], sys.subset[b]) / c -
                   sys.mean[a] * sys.mean[b];
      sys.corr[a * p + b] = cov / (sys.scale[a] * sys.scale[b]);
    }
    double cov_y =
        m.Moment(sys.subset[a], response) / c - sys.mean[a] * sys.mean_y;
    sys.corr_y[a] = cov_y / sys.scale[a];
  }
  return sys;
}

LinearModel ModelFromStandardized(const StandardizedSystem& sys,
                                  const std::vector<double>& theta_std) {
  const int p = static_cast<int>(sys.subset.size());
  LinearModel model;
  model.feature_indices = sys.subset;
  model.weights.resize(p);
  double bias = sys.mean_y;
  for (int a = 0; a < p; ++a) {
    model.weights[a] = theta_std[a] / sys.scale[a];
    bias -= model.weights[a] * sys.mean[a];
  }
  model.bias = bias;
  return model;
}

}  // namespace

double LinearModel::Predict(const double* row) const {
  double y = bias;
  for (size_t a = 0; a < weights.size(); ++a) {
    y += weights[a] * row[feature_indices[a]];
  }
  return y;
}

LinearModel TrainRidgeGd(const CovarMatrix& m, int response,
                         const RidgeOptions& options,
                         const std::vector<int>& feature_subset,
                         TrainInfo* info) {
  StandardizedSystem sys = BuildSystem(m, response, feature_subset);
  const int p = static_cast<int>(sys.subset.size());
  std::vector<double> theta(p, 0.0);
  if (!options.warm_start.empty()) {
    RELBORG_CHECK(static_cast<int>(options.warm_start.size()) == p);
    for (int a = 0; a < p; ++a) {
      theta[a] = options.warm_start[a] * sys.scale[a];
    }
  }
  // Step size from the largest eigenvalue of the correlation matrix.
  std::vector<double> v;
  double lmax = PowerIteration(sys.corr, p, &v, 60);
  double step = 1.0 / (std::max(lmax, 1e-6) + options.lambda);

  std::vector<double> grad(p);
  int it = 0;
  double gnorm = 0;
  for (; it < options.max_iters; ++it) {
    // grad = C theta - r + lambda theta  (all in standardized space).
    MatVec(sys.corr, theta, p, &grad);
    gnorm = 0;
    for (int a = 0; a < p; ++a) {
      grad[a] += options.lambda * theta[a] - sys.corr_y[a];
      gnorm += grad[a] * grad[a];
    }
    gnorm = std::sqrt(gnorm);
    if (gnorm < options.tolerance) break;
    for (int a = 0; a < p; ++a) theta[a] -= step * grad[a];
  }
  if (info != nullptr) {
    info->iterations = it;
    info->final_gradient_norm = gnorm;
  }
  return ModelFromStandardized(sys, theta);
}

LinearModel SolveRidgeClosedForm(const CovarMatrix& m, int response,
                                 double lambda,
                                 const std::vector<int>& feature_subset) {
  StandardizedSystem sys = BuildSystem(m, response, feature_subset);
  const int p = static_cast<int>(sys.subset.size());
  std::vector<double> a = sys.corr;
  for (int i = 0; i < p; ++i) a[i * p + i] += lambda + 1e-12;
  std::vector<double> theta;
  RELBORG_CHECK_MSG(CholeskySolve(a, sys.corr_y, p, &theta),
                    "ridge system not positive definite");
  return ModelFromStandardized(sys, theta);
}

double MseFromCovar(const CovarMatrix& m, int response,
                    const LinearModel& model) {
  const double c = m.count();
  if (c <= 0) return 0;
  const int n = m.num_features();  // index n = constant feature
  // Extended coefficient vector over (features..., constant) with the
  // response entering with coefficient -1:
  //   residual = sum_a w_a x_a + bias * 1 - y.
  std::vector<std::pair<int, double>> coef;
  for (size_t a = 0; a < model.weights.size(); ++a) {
    coef.push_back({model.feature_indices[a], model.weights[a]});
  }
  coef.push_back({n, model.bias});
  coef.push_back({response, -1.0});
  double sse = 0;
  for (const auto& [fa, wa] : coef) {
    for (const auto& [fb, wb] : coef) {
      sse += wa * wb * m.Moment(fa, fb);
    }
  }
  return sse / c;
}

double Rmse(const LinearModel& model, const DataMatrix& data,
            int response_col) {
  if (data.num_rows() == 0) return 0;
  double sse = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    double err = model.Predict(data.Row(r)) - data.At(r, response_col);
    sse += err * err;
  }
  return std::sqrt(sse / static_cast<double>(data.num_rows()));
}

}  // namespace relborg
