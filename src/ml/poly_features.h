// Polynomial feature expansion for degree-2 models (Sec. 2.1 mentions
// polynomial regression and factorisation machines among the models whose
// aggregates derive like the covariance batch).
//
// Within-relation product columns x_i * x_j are appended to the owning
// relation; a model that is LINEAR in the expanded features is then exactly
// trainable from the (expanded) covariance matrix — same engine, no new
// aggregates. Cross-relation interaction *parameters* would need the
// higher-order sparse tensors of Abo Khamis et al. (PODS'18) and are out of
// scope; the expansion covers within-relation quadratic structure, which is
// where the join's redundancy lives anyway (a dimension row's x_i * x_j is
// repeated once per joining fact).
#ifndef RELBORG_ML_POLY_FEATURES_H_
#define RELBORG_ML_POLY_FEATURES_H_

#include <string>
#include <vector>

#include "core/feature_map.h"
#include "relational/catalog.h"

namespace relborg {

// Appends the column a*b (named "a*b") to `rel`; returns its attribute
// index. a == b gives the square column.
int AddProductColumn(Relation* rel, const std::string& a,
                     const std::string& b);

struct PolyExpansionOptions {
  bool squares = true;                   // add x_i^2 per feature
  bool within_relation_pairs = true;     // add x_i * x_j, same relation
};

// Expands the given (continuous) features with derived product columns in
// their owning relations and returns the full expanded feature list
// (originals first, derived after, response untouched and NOT expanded).
// The response must be the last entry of `features`.
std::vector<FeatureRef> ExpandPolynomialFeatures(
    Catalog* catalog, const std::vector<FeatureRef>& features,
    const PolyExpansionOptions& options = {});

}  // namespace relborg

#endif  // RELBORG_ML_POLY_FEATURES_H_
