// Naive Bayes over the join: class priors and per-attribute conditional
// distributions are nothing but group-by COUNT aggregates (class) and
// (class, attribute) pair counts — the sparse-tensor encodings of Sec. 2.1
// — so the classifier trains in one factorized pass per attribute without
// materializing the join.
#ifndef RELBORG_ML_NAIVE_BAYES_H_
#define RELBORG_ML_NAIVE_BAYES_H_

#include <vector>

#include "core/feature_map.h"
#include "query/join_tree.h"
#include "util/flat_hash_map.h"

namespace relborg {

struct NaiveBayesOptions {
  double smoothing = 1.0;  // Laplace smoothing
};

class NaiveBayesModel {
 public:
  // Trains on categorical attributes: `response` is the class attribute,
  // `attrs` the predictors (all categorical, anywhere in the join tree).
  static NaiveBayesModel Train(const RootedTree& tree,
                               const FeatureRef& response,
                               const std::vector<FeatureRef>& attrs,
                               const NaiveBayesOptions& options = {});

  // Predicts the class code for a tuple whose i-th entry is the code of
  // attrs[i] (training order).
  int32_t Predict(const std::vector<int32_t>& attr_codes) const;

  // Log posterior (unnormalized) of a class for a tuple.
  double LogScore(int32_t cls, const std::vector<int32_t>& attr_codes) const;

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const std::vector<int32_t>& classes() const { return classes_; }
  size_t aggregates_evaluated() const { return aggregates_; }

 private:
  std::vector<int32_t> classes_;
  std::vector<double> log_prior_;  // per class index
  // log P(attr = v | class), keyed by PackKey2(class index, value); one map
  // per predictor, plus a per-(attr, class) default for unseen values.
  std::vector<FlatHashMap<double>> log_cond_;
  std::vector<std::vector<double>> log_default_;  // [attr][class index]
  size_t aggregates_ = 0;
  double smoothing_ = 1.0;

  int ClassIndex(int32_t cls) const;
};

}  // namespace relborg

#endif  // RELBORG_ML_NAIVE_BAYES_H_
