// K-means over relational data (Sec. 3.3).
//
// Two paths:
//  * LloydKMeans: weighted Lloyd iterations over explicit points — the
//    structure-agnostic baseline when run over the materialized join.
//  * RelationalKMeans (after Rk-means [Curtin et al., AISTATS 2020]):
//    clusters each feature-bearing relation separately with join-
//    multiplicity weights, then runs weighted k-means over the small cross
//    product of per-relation centroids ("grid coreset"), whose weights are
//    computed EXACTLY with one factorized counting pass over the join tree
//    (each relation's centroid assignment rides in one byte of the packed
//    coreset key). Objective is a constant-factor approximation of k-means
//    over the full join at a tiny fraction of the cost.
#ifndef RELBORG_ML_KMEANS_H_
#define RELBORG_ML_KMEANS_H_

#include <vector>

#include "baseline/data_matrix.h"
#include "core/feature_map.h"
#include "query/join_tree.h"

namespace relborg {

struct KMeansOptions {
  int k = 5;
  int max_iters = 30;
  uint64_t seed = 13;
  // Per-relation centroid count for the relational coreset (<= 255).
  int per_relation_k = 8;
};

struct KMeansResult {
  // centroids[c] has one entry per dimension.
  std::vector<std::vector<double>> centroids;
  double objective = 0;  // weighted sum of squared distances
  int iterations = 0;
  size_t coreset_size = 0;  // 0 for the baseline path
};

// Weighted points: row-major coordinates plus one weight per point.
struct WeightedPoints {
  int dims = 0;
  std::vector<double> coords;   // num_points * dims
  std::vector<double> weights;  // num_points (empty = all 1)

  size_t num_points() const {
    return dims == 0 ? 0 : coords.size() / dims;
  }
  const double* Point(size_t i) const { return coords.data() + i * dims; }
};

// Weighted Lloyd's algorithm with k-means++ style seeding.
KMeansResult LloydKMeans(const WeightedPoints& points,
                         const KMeansOptions& options);

// Convenience: unweighted k-means over the columns of a data matrix.
KMeansResult LloydKMeans(const DataMatrix& data, const KMeansOptions& options);

// Rk-means over the join: features (continuous attributes across the
// relations of `tree`) define the dimensions, in FeatureMap order.
KMeansResult RelationalKMeans(const RootedTree& tree, const FeatureMap& fm,
                              const KMeansOptions& options);

// Evaluates the k-means objective of `centroids` over explicit points
// (used to compare coreset centroids against the baseline's on equal
// footing).
double KMeansObjective(const WeightedPoints& points,
                       const std::vector<std::vector<double>>& centroids);

}  // namespace relborg

#endif  // RELBORG_ML_KMEANS_H_
