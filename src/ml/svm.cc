#include "ml/svm.h"

#include <cmath>

#include "inequality/inequality_join.h"
#include "util/check.h"
#include "util/flat_hash_map.h"
#include "util/packed_key.h"

namespace relborg {
namespace {

// R rows of one class, projected to (key, features...), with the original
// feature columns reused as both score and measure attributes.
Relation ProjectClass(const SvmProblem& p, int32_t label_code) {
  Schema schema({{"key", AttrType::kCategorical}});
  for (size_t d = 0; d < p.r_feature_attrs.size(); ++d) {
    schema.AddAttribute("f" + std::to_string(d), AttrType::kDouble);
  }
  Relation out("class", schema);
  std::vector<double> row(1 + p.r_feature_attrs.size());
  for (size_t r = 0; r < p.r->num_rows(); ++r) {
    if (p.r->Cat(r, p.label_attr) != label_code) continue;
    row[0] = static_cast<double>(p.r->Cat(r, p.r_key_attr));
    for (size_t d = 0; d < p.r_feature_attrs.size(); ++d) {
      row[1 + d] = p.r->Double(r, p.r_feature_attrs[d]);
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

double SvmModel::Score(const std::vector<double>& r_feats,
                       const std::vector<double>& s_feats) const {
  double score = bias;
  for (size_t d = 0; d < r_weights.size(); ++d) {
    score += r_weights[d] * r_feats[d];
  }
  for (size_t d = 0; d < s_weights.size(); ++d) {
    score += s_weights[d] * s_feats[d];
  }
  return score;
}

SvmModel TrainSvmOverJoin(const SvmProblem& problem, const SvmOptions& options,
                          SvmTrainStats* stats) {
  RELBORG_CHECK(problem.r != nullptr && problem.s != nullptr);
  const size_t dr = problem.r_feature_attrs.size();
  const size_t ds = problem.s_feature_attrs.size();

  // Per-class projections of R; S is shared.
  Relation pos = ProjectClass(problem, 1);
  Relation neg = ProjectClass(problem, 0);

  // Join size N (normalization of the loss): per-key S counts.
  FlatHashMap<double> s_count;
  for (size_t row = 0; row < problem.s->num_rows(); ++row) {
    s_count[PackKey1(problem.s->Cat(row, problem.s_key_attr))] += 1;
  }
  double join_size = 0;
  for (const Relation* cls : {&pos, &neg}) {
    for (size_t row = 0; row < cls->num_rows(); ++row) {
      const double* c = s_count.Find(PackKey1(cls->Cat(row, 0)));
      if (c != nullptr) join_size += *c;
    }
  }
  if (stats != nullptr) stats->join_size = join_size;

  SvmModel model;
  model.r_weights.assign(dr, 0.0);
  model.s_weights.assign(ds, 0.0);
  if (join_size == 0) return model;

  std::vector<int> class_feature_attrs(dr);
  for (size_t d = 0; d < dr; ++d) class_feature_attrs[d] = 1 + static_cast<int>(d);

  size_t batches = 0;
  InequalityBatchResult last_pos, last_neg;
  for (int t = 0; t < options.iterations; ++t) {
    // Violators of class y: y*(w.x + b) < 1.
    //   +1:  -w.x > b - 1      -1:  w.x > -1 - b
    auto batch_for = [&](const Relation& cls, double sign) {
      InequalityBatchSpec spec;
      spec.r_key_attr = 0;
      spec.s_key_attr = problem.s_key_attr;
      spec.r_score_attrs = class_feature_attrs;
      spec.s_score_attrs = problem.s_feature_attrs;
      spec.r_score_weights.resize(dr);
      spec.s_score_weights.resize(ds);
      for (size_t d = 0; d < dr; ++d) {
        spec.r_score_weights[d] = -sign * model.r_weights[d];
      }
      for (size_t d = 0; d < ds; ++d) {
        spec.s_score_weights[d] = -sign * model.s_weights[d];
      }
      spec.threshold = sign * model.bias - 1.0;
      spec.r_measure_attrs = class_feature_attrs;
      spec.s_measure_attrs = problem.s_feature_attrs;
      ++batches;
      return InequalityAggregateBatchSorted(cls, *problem.s, spec);
    };
    InequalityBatchResult vp = batch_for(pos, +1.0);
    InequalityBatchResult vn = batch_for(neg, -1.0);
    last_pos = vp;
    last_neg = vn;

    // Subgradient: lambda*w - (1/N) * sum_{violators} y * x.
    double lr = options.learning_rate / (1.0 + options.lambda * t);
    for (size_t d = 0; d < dr; ++d) {
      double g = options.lambda * model.r_weights[d] -
                 (vp.r_sums[d] - vn.r_sums[d]) / join_size;
      model.r_weights[d] -= lr * g;
    }
    for (size_t d = 0; d < ds; ++d) {
      double g = options.lambda * model.s_weights[d] -
                 (vp.s_sums[d] - vn.s_sums[d]) / join_size;
      model.s_weights[d] -= lr * g;
    }
    model.bias += lr * (vp.count - vn.count) / join_size;
  }

  if (stats != nullptr) {
    stats->aggregate_batches = batches;
    // Average hinge loss from the final violator aggregates:
    // sum over +1 violators of (1 - w.x - b) and over -1 of (1 + w.x + b).
    double loss = last_pos.count * (1.0 - model.bias) +
                  last_neg.count * (1.0 + model.bias);
    for (size_t d = 0; d < dr; ++d) {
      loss -= model.r_weights[d] * last_pos.r_sums[d];
      loss += model.r_weights[d] * last_neg.r_sums[d];
    }
    for (size_t d = 0; d < ds; ++d) {
      loss -= model.s_weights[d] * last_pos.s_sums[d];
      loss += model.s_weights[d] * last_neg.s_sums[d];
    }
    stats->final_hinge_loss = loss / join_size;
  }
  return model;
}

double SvmJoinAccuracy(const SvmProblem& problem, const SvmModel& model) {
  FlatHashMap<std::vector<uint32_t>> index;
  for (size_t row = 0; row < problem.s->num_rows(); ++row) {
    index[PackKey1(problem.s->Cat(row, problem.s_key_attr))].push_back(
        static_cast<uint32_t>(row));
  }
  double correct = 0;
  double total = 0;
  std::vector<double> rf(problem.r_feature_attrs.size());
  std::vector<double> sf(problem.s_feature_attrs.size());
  for (size_t rrow = 0; rrow < problem.r->num_rows(); ++rrow) {
    const std::vector<uint32_t>* matches =
        index.Find(PackKey1(problem.r->Cat(rrow, problem.r_key_attr)));
    if (matches == nullptr) continue;
    double y = problem.r->Cat(rrow, problem.label_attr) == 1 ? 1.0 : -1.0;
    for (size_t d = 0; d < rf.size(); ++d) {
      rf[d] = problem.r->Double(rrow, problem.r_feature_attrs[d]);
    }
    for (uint32_t srow : *matches) {
      for (size_t d = 0; d < sf.size(); ++d) {
        sf[d] = problem.s->Double(srow, problem.s_feature_attrs[d]);
      }
      total += 1;
      if (model.Score(rf, sf) * y > 0) correct += 1;
    }
  }
  return total == 0 ? 0 : correct / total;
}

}  // namespace relborg
