#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "core/groupby_engine.h"
#include "util/check.h"

namespace relborg {

NaiveBayesModel NaiveBayesModel::Train(const RootedTree& tree,
                                       const FeatureRef& response,
                                       const std::vector<FeatureRef>& attrs,
                                       const NaiveBayesOptions& options) {
  NaiveBayesModel model;
  model.smoothing_ = options.smoothing;
  const JoinQuery& query = tree.query();

  // Class counts: SUM(1) GROUP BY class.
  GroupByResult class_counts = ComputeGroupBy(
      tree, CountGroupedBy(query, response.relation, response.attr));
  ++model.aggregates_;
  double total = 0;
  class_counts.ForEach([&](uint64_t key, double c) {
    model.classes_.push_back(UnpackHigh(key));
    total += c;
  });
  std::sort(model.classes_.begin(), model.classes_.end());
  std::vector<double> class_count(model.classes_.size(), 0.0);
  class_counts.ForEach([&](uint64_t key, double c) {
    class_count[model.ClassIndex(UnpackHigh(key))] = c;
  });
  model.log_prior_.resize(model.classes_.size());
  for (size_t k = 0; k < model.classes_.size(); ++k) {
    model.log_prior_[k] = std::log(
        (class_count[k] + options.smoothing) /
        (total + options.smoothing * model.classes_.size()));
  }

  // Per predictor: SUM(1) GROUP BY class, attr — one factorized pass each.
  model.log_cond_.resize(attrs.size());
  model.log_default_.resize(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    GroupByResult joint = ComputeGroupBy(
        tree, CountGroupedByPair(query, response.relation, response.attr,
                                 attrs[a].relation, attrs[a].attr));
    ++model.aggregates_;
    // Active-domain size of the attribute (for smoothing).
    const Relation* rel = query.relation(query.IndexOf(attrs[a].relation));
    int attr = rel->schema().MustIndexOf(attrs[a].attr);
    double domain = std::max<int32_t>(1, rel->DomainSize(attr));
    model.log_default_[a].resize(model.classes_.size());
    for (size_t k = 0; k < model.classes_.size(); ++k) {
      model.log_default_[a][k] = std::log(
          options.smoothing /
          (class_count[k] + options.smoothing * domain));
    }
    joint.ForEach([&](uint64_t key, double c) {
      int32_t cls = UnpackHigh(key);
      int32_t value = UnpackLow(key);
      int k = model.ClassIndex(cls);
      model.log_cond_[a][PackKey2(static_cast<int32_t>(k), value)] = std::log(
          (c + options.smoothing) /
          (class_count[k] + options.smoothing * domain));
    });
  }
  return model;
}

int NaiveBayesModel::ClassIndex(int32_t cls) const {
  for (size_t k = 0; k < classes_.size(); ++k) {
    if (classes_[k] == cls) return static_cast<int>(k);
  }
  RELBORG_CHECK_MSG(false, "unknown class");
  return -1;
}

double NaiveBayesModel::LogScore(int32_t cls,
                                 const std::vector<int32_t>& codes) const {
  int k = ClassIndex(cls);
  double score = log_prior_[k];
  for (size_t a = 0; a < codes.size(); ++a) {
    const double* p =
        log_cond_[a].Find(PackKey2(static_cast<int32_t>(k), codes[a]));
    score += p != nullptr ? *p : log_default_[a][k];
  }
  return score;
}

int32_t NaiveBayesModel::Predict(const std::vector<int32_t>& codes) const {
  RELBORG_CHECK(!classes_.empty());
  RELBORG_CHECK(codes.size() == log_cond_.size());
  int32_t best = classes_[0];
  double best_score = -1e300;
  for (int32_t cls : classes_) {
    double score = LogScore(cls, codes);
    if (score > best_score) {
      best_score = score;
      best = cls;
    }
  }
  return best;
}

}  // namespace relborg
