// Ridge linear regression with CATEGORICAL features (AC/DC-style,
// Sec. 2.1 of the paper): each categorical attribute contributes one-hot
// parameters theta_a(v), but neither the data nor the model is ever
// one-hot *materialized* — training runs on the sparse generalized
// covariance (core/sparse_covar.h) by coordinate descent, touching only
// the (pairs of) categories that occur in the join.
#ifndef RELBORG_ML_CATEGORICAL_REGRESSION_H_
#define RELBORG_ML_CATEGORICAL_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "core/sparse_covar.h"
#include "util/flat_hash_map.h"

namespace relborg {

struct CategoricalModel {
  // Continuous regressors: feature indices (covariance numbering,
  // excluding the response) and their weights.
  std::vector<int> cont_features;
  std::vector<double> cont_weights;
  double bias = 0;
  // One sparse weight map per categorical attribute, keyed by category.
  std::vector<FlatHashMap<double>> cat_weights;

  // Prediction for a tuple: `cont_row` indexed by covariance feature
  // numbering, `cat_codes` by categorical attribute order. Categories not
  // seen during training contribute 0.
  double Predict(const double* cont_row, const int32_t* cat_codes) const;
};

struct CategoricalRidgeOptions {
  double lambda = 1e-3;   // penalty per tuple (scaled by the join size)
  int max_sweeps = 300;
  double tolerance = 1e-9;  // max parameter change per sweep
};

struct CategoricalTrainInfo {
  int sweeps = 0;
  double final_delta = 0;
  size_t num_parameters = 0;
};

// Trains by cyclic coordinate descent on the generalized covariance.
// `response` is the continuous feature index of the label.
CategoricalModel TrainRidgeCategorical(
    const SparseCovar& covar, int response,
    const CategoricalRidgeOptions& options = {},
    CategoricalTrainInfo* info = nullptr);

}  // namespace relborg

#endif  // RELBORG_ML_CATEGORICAL_REGRESSION_H_
