// Ridge linear regression over the covariance matrix (Sec. 2.1 / Fig. 3).
//
// Once the covariance batch is computed over the join, training never
// touches the data again: the least-squares gradient is
//
//   grad_j = (1/c) * (SUM_i theta_i * M[i][j] - M[y][j]) + lambda * theta_j
//
// built from the matrix entries and the current parameters, so gradient
// descent runs in O(p^2) per step (the paper's "50 milliseconds"). A
// Cholesky closed form is provided for cross-checking, and models over any
// feature *subset* can be trained from the same matrix (Sec. 1.5 — model
// selection at no extra data cost).
#ifndef RELBORG_ML_LINEAR_REGRESSION_H_
#define RELBORG_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "baseline/data_matrix.h"
#include "ring/covariance.h"

namespace relborg {

struct LinearModel {
  // weights[i] multiplies feature `feature_indices[i]`; bias is the
  // intercept. Feature indices refer to the covariance matrix's feature
  // numbering.
  std::vector<int> feature_indices;
  std::vector<double> weights;
  double bias = 0;

  // Prediction for a row whose columns follow the covariance matrix's
  // feature numbering (as produced by MaterializeJoin over the same
  // FeatureMap).
  double Predict(const double* row) const;
};

struct RidgeOptions {
  double lambda = 1e-3;      // L2 penalty (not applied to the bias)
  int max_iters = 5000;
  double tolerance = 1e-10;  // on the gradient norm
  // Optional warm start: if non-empty, must match the feature count + 1
  // (bias last). Used by the IVM layer to resume convergence after updates
  // (Sec. 1.5, third scenario).
  std::vector<double> warm_start;
};

struct TrainInfo {
  int iterations = 0;
  double final_gradient_norm = 0;
};

// Trains by gradient descent on the covariance matrix. `response` is the
// feature index of the label; `feature_subset` lists the regressor feature
// indices (empty = all features except the response).
LinearModel TrainRidgeGd(const CovarMatrix& m, int response,
                         const RidgeOptions& options = {},
                         const std::vector<int>& feature_subset = {},
                         TrainInfo* info = nullptr);

// Closed-form ridge solution (A + lambda*c*I) theta = b via Cholesky.
LinearModel SolveRidgeClosedForm(const CovarMatrix& m, int response,
                                 double lambda = 1e-3,
                                 const std::vector<int>& feature_subset = {});

// Training mean-squared error straight from the covariance matrix (no data
// pass): MSE = (theta^T A theta - 2 theta^T b + M[y][y]) / count.
double MseFromCovar(const CovarMatrix& m, int response,
                    const LinearModel& model);

// Root-mean-squared error over an explicit data matrix whose columns follow
// the covariance feature numbering; `response_col` is the label column.
double Rmse(const LinearModel& model, const DataMatrix& data,
            int response_col);

}  // namespace relborg

#endif  // RELBORG_ML_LINEAR_REGRESSION_H_
