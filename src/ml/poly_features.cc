#include "ml/poly_features.h"

#include "util/check.h"

namespace relborg {

int AddProductColumn(Relation* rel, const std::string& a,
                     const std::string& b) {
  const Schema& schema = rel->schema();
  int ia = schema.MustIndexOf(a);
  int ib = schema.MustIndexOf(b);
  RELBORG_CHECK(schema.attr(ia).type == AttrType::kDouble &&
                schema.attr(ib).type == AttrType::kDouble);
  std::string name = a + "*" + b;
  RELBORG_CHECK_MSG(!schema.HasAttribute(name), "product column exists");
  // Relation columns are fixed at construction; rebuild in place with the
  // extra column. Relations are columnar, so this copies column headers
  // and appends one computed column.
  Schema extended = schema;
  extended.AddAttribute(name, AttrType::kDouble);
  Relation rebuilt(rel->name(), extended);
  rebuilt.Reserve(rel->num_rows());
  std::vector<double> row(extended.num_attrs());
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    for (int attr = 0; attr < schema.num_attrs(); ++attr) {
      row[attr] = rel->AsDouble(r, attr);
    }
    row[schema.num_attrs()] = rel->Double(r, ia) * rel->Double(r, ib);
    rebuilt.AppendRow(row);
  }
  *rel = std::move(rebuilt);
  return extended.num_attrs() - 1;
}

std::vector<FeatureRef> ExpandPolynomialFeatures(
    Catalog* catalog, const std::vector<FeatureRef>& features,
    const PolyExpansionOptions& options) {
  RELBORG_CHECK(!features.empty());
  const FeatureRef response = features.back();
  std::vector<FeatureRef> expanded(features.begin(), features.end() - 1);

  // Group regressors by relation.
  std::vector<std::pair<std::string, std::vector<std::string>>> by_relation;
  for (size_t f = 0; f + 1 < features.size(); ++f) {
    bool found = false;
    for (auto& [rel, attrs] : by_relation) {
      if (rel == features[f].relation) {
        attrs.push_back(features[f].attr);
        found = true;
      }
    }
    if (!found) by_relation.push_back({features[f].relation,
                                       {features[f].attr}});
  }

  for (const auto& [rel_name, attrs] : by_relation) {
    Relation* rel = catalog->Get(rel_name);
    for (size_t a = 0; a < attrs.size(); ++a) {
      size_t b_start = options.squares ? a : a + 1;
      size_t b_end = options.within_relation_pairs ? attrs.size() : a + 1;
      for (size_t b = b_start; b < b_end; ++b) {
        if (a == b && !options.squares) continue;
        if (a != b && !options.within_relation_pairs) continue;
        AddProductColumn(rel, attrs[a], attrs[b]);
        expanded.push_back({rel_name, attrs[a] + "*" + attrs[b]});
      }
    }
  }
  expanded.push_back(response);
  return expanded;
}

}  // namespace relborg
