// Linear support vector machines over a two-relation join, trained with
// additive-inequality aggregates (Sec. 2.3 of the paper).
//
// The hinge-loss subgradient needs, per step, the count of margin
// violators and SUM(x_d) over violators for every feature dimension d —
// all under the condition  y * (w . x + b) < 1, an additive inequality
// whose two sides live in different relations. relborg evaluates the whole
// per-class batch with ONE sorted pass (InequalityAggregateBatchSorted),
// never enumerating the join; a Pegasos-style subgradient descent runs on
// top.
#ifndef RELBORG_ML_SVM_H_
#define RELBORG_ML_SVM_H_

#include <vector>

#include "relational/relation.h"

namespace relborg {

struct SvmOptions {
  double lambda = 1e-3;   // L2 regularization
  int iterations = 200;
  double learning_rate = 0.5;  // base step; decays as lr / (1 + lambda*t)
};

// The join: R(key, r_features..., label) |X|_key S(key, s_features...).
// The label attribute is categorical with codes {0, 1} (mapped to -1/+1).
struct SvmProblem {
  const Relation* r = nullptr;
  const Relation* s = nullptr;
  int r_key_attr = 0;
  int s_key_attr = 0;
  std::vector<int> r_feature_attrs;
  std::vector<int> s_feature_attrs;
  int label_attr = 0;  // in R
};

struct SvmModel {
  std::vector<double> r_weights;  // aligned with r_feature_attrs
  std::vector<double> s_weights;  // aligned with s_feature_attrs
  double bias = 0;

  double Score(const std::vector<double>& r_feats,
               const std::vector<double>& s_feats) const;
};

struct SvmTrainStats {
  size_t aggregate_batches = 0;   // sorted passes performed
  double final_hinge_loss = 0;    // average hinge loss over the join
  double join_size = 0;
};

// Trains the SVM with subgradient descent over inequality aggregates.
SvmModel TrainSvmOverJoin(const SvmProblem& problem,
                          const SvmOptions& options = {},
                          SvmTrainStats* stats = nullptr);

// Fraction of correctly classified join tuples (enumerates the join; for
// evaluation/tests only).
double SvmJoinAccuracy(const SvmProblem& problem, const SvmModel& model);

}  // namespace relborg

#endif  // RELBORG_ML_SVM_H_
