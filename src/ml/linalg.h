// Small dense linear algebra used by the ML layer: symmetric solves
// (Cholesky) for closed-form ridge regression and power iteration for PCA.
// Matrices are row-major std::vector<double>.
#ifndef RELBORG_ML_LINALG_H_
#define RELBORG_ML_LINALG_H_

#include <cstdint>
#include <vector>

namespace relborg {

// Solves A x = b for symmetric positive-definite A (n x n, row-major) via
// Cholesky decomposition. Returns false if A is not positive definite.
// A and b are left unmodified; the solution is written to *x.
bool CholeskySolve(const std::vector<double>& a, const std::vector<double>& b,
                   int n, std::vector<double>* x);

// Largest eigenvalue/eigenvector of symmetric A by power iteration.
// Returns the eigenvalue; the (unit) eigenvector is written to *v.
double PowerIteration(const std::vector<double>& a, int n,
                      std::vector<double>* v, int iters = 300,
                      uint64_t seed = 7);

// b = A v (symmetric full storage).
void MatVec(const std::vector<double>& a, const std::vector<double>& v, int n,
            std::vector<double>* out);

// Frobenius deflation: A -= lambda * v v^T.
void Deflate(std::vector<double>* a, int n, double lambda,
             const std::vector<double>& v);

double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace relborg

#endif  // RELBORG_ML_LINALG_H_
