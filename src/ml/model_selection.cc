#include "ml/model_selection.h"

#include <algorithm>

namespace relborg {

ModelSelectionResult ForwardSelect(const CovarMatrix& m, int response,
                                   const ModelSelectionOptions& options) {
  ModelSelectionResult result;
  const int n = m.num_features();
  std::vector<int> selected;
  std::vector<bool> used(n, false);
  used[response] = true;

  // Baseline MSE: predict the mean.
  double c = m.count();
  double prev_mse =
      c > 0 ? m.Moment(response, response) / c -
                  (m.Sum(response) / c) * (m.Sum(response) / c)
            : 0.0;

  const int limit = std::min(options.max_features, n - 1);
  for (int step = 0; step < limit; ++step) {
    int best_f = -1;
    double best_mse = prev_mse;
    LinearModel best_model;
    for (int f = 0; f < n; ++f) {
      if (used[f]) continue;
      std::vector<int> candidate = selected;
      candidate.push_back(f);
      LinearModel model =
          SolveRidgeClosedForm(m, response, options.lambda, candidate);
      ++result.models_evaluated;
      double mse = MseFromCovar(m, response, model);
      if (mse < best_mse) {
        best_mse = mse;
        best_f = f;
        best_model = std::move(model);
      }
    }
    if (best_f < 0) break;
    double gain = prev_mse > 0 ? (prev_mse - best_mse) / prev_mse : 0;
    if (gain < options.min_mse_gain && step > 0) break;
    used[best_f] = true;
    selected.push_back(best_f);
    prev_mse = best_mse;
    result.steps.push_back({best_f, best_mse, std::move(best_model)});
  }
  return result;
}

}  // namespace relborg
