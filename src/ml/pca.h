// Principal component analysis over the covariance matrix (Sec. 1 lists PCA
// among the models trainable from the same sufficient statistics). Top-k
// components by power iteration with deflation — the data is never
// revisited after the one factorized covariance pass.
#ifndef RELBORG_ML_PCA_H_
#define RELBORG_ML_PCA_H_

#include <vector>

#include "ring/covariance.h"

namespace relborg {

struct PcaResult {
  // components[c] is a unit vector over the selected features.
  std::vector<std::vector<double>> components;
  std::vector<double> eigenvalues;       // descending
  double total_variance = 0;             // trace of the covariance
  // Fraction of variance explained by the first i+1 components.
  std::vector<double> explained_ratio;
};

// Computes the top `k` principal components of the centered covariance of
// `feature_subset` (empty = all features of the matrix).
PcaResult ComputePca(const CovarMatrix& m, int k,
                     const std::vector<int>& feature_subset = {});

}  // namespace relborg

#endif  // RELBORG_ML_PCA_H_
