// Functional-dependency reparameterization (Sec. 3.2 of the paper).
//
// Given the FD city -> country, a ridge model with one-hot parameters
// theta_city and theta_country can be trained with merged parameters
// theta'_(city) = theta_city + theta_country(country(city)) — fewer
// parameters, same predictions — and the original parameters recovered in
// closed form afterwards. Under the L2 penalty the recovery is the
// minimum-norm split: for country K with cities C(K),
//
//   theta_country(K) = sum_{c in C(K)} theta'_c / (|C(K)| + 1)
//   theta_city(c)    = theta'_c - theta_country(country(c))
//
// which minimizes sum theta_city^2 + sum theta_country^2 subject to the
// merged sums being fixed.
#ifndef RELBORG_ML_FD_REPARAM_H_
#define RELBORG_ML_FD_REPARAM_H_

#include <cstdint>
#include <vector>

namespace relborg {

struct FdReparamResult {
  std::vector<double> theta_city;     // indexed by city code
  std::vector<double> theta_country;  // indexed by country code
};

// Recovers (theta_city, theta_country) from merged per-city parameters.
// `country_of[c]` is the FD image of city c. The returned split satisfies
// theta_city[c] + theta_country[country_of[c]] == merged[c] exactly and has
// minimum L2 norm among all such splits.
FdReparamResult SplitMergedParameters(const std::vector<double>& merged,
                                      const std::vector<int32_t>& country_of,
                                      int32_t num_countries);

// L2 norm^2 of a split (the ridge penalty it incurs).
double SplitPenalty(const FdReparamResult& split);

}  // namespace relborg

#endif  // RELBORG_ML_FD_REPARAM_H_
