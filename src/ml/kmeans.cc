#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/multiplicity.h"
#include "util/check.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace relborg {
namespace {

double Sq(double x) { return x * x; }

double Dist2(const double* a, const double* b, int dims) {
  double d = 0;
  for (int i = 0; i < dims; ++i) d += Sq(a[i] - b[i]);
  return d;
}

int Nearest(const double* p, const std::vector<std::vector<double>>& centroids,
            int dims, double* dist2_out) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = Dist2(p, centroids[c].data(), dims);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  if (dist2_out != nullptr) *dist2_out = best_d;
  return best;
}

// Weighted k-means++ seeding.
std::vector<std::vector<double>> Seed(const WeightedPoints& pts, int k,
                                      Rng* rng) {
  const size_t n = pts.num_points();
  const int dims = pts.dims;
  std::vector<std::vector<double>> centroids;
  auto weight = [&](size_t i) {
    return pts.weights.empty() ? 1.0 : pts.weights[i];
  };
  // First centroid: weight-proportional.
  double total = 0;
  for (size_t i = 0; i < n; ++i) total += weight(i);
  double target = rng->Uniform() * total;
  size_t first = 0;
  for (size_t i = 0; i < n; ++i) {
    target -= weight(i);
    if (target <= 0) {
      first = i;
      break;
    }
  }
  centroids.emplace_back(pts.Point(first), pts.Point(first) + dims);
  std::vector<double> d2(n);
  while (static_cast<int>(centroids.size()) < k) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      double d;
      Nearest(pts.Point(i), centroids, dims, &d);
      d2[i] = d * weight(i);
      sum += d2[i];
    }
    if (sum <= 0) {
      // All mass on the centroids already; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double t = rng->Uniform() * sum;
    size_t pick = n - 1;
    for (size_t i = 0; i < n; ++i) {
      t -= d2[i];
      if (t <= 0) {
        pick = i;
        break;
      }
    }
    centroids.emplace_back(pts.Point(pick), pts.Point(pick) + dims);
  }
  return centroids;
}

}  // namespace

double KMeansObjective(const WeightedPoints& points,
                       const std::vector<std::vector<double>>& centroids) {
  double obj = 0;
  for (size_t i = 0; i < points.num_points(); ++i) {
    double d;
    Nearest(points.Point(i), centroids, points.dims, &d);
    obj += d * (points.weights.empty() ? 1.0 : points.weights[i]);
  }
  return obj;
}

KMeansResult LloydKMeans(const WeightedPoints& pts,
                         const KMeansOptions& options) {
  KMeansResult result;
  const size_t n = pts.num_points();
  const int dims = pts.dims;
  if (n == 0) return result;
  const int k = std::min<int>(options.k, static_cast<int>(n));
  Rng rng(options.seed);
  std::vector<std::vector<double>> centroids = Seed(pts, k, &rng);
  auto weight = [&](size_t i) {
    return pts.weights.empty() ? 1.0 : pts.weights[i];
  };

  std::vector<int> assign(n, -1);
  int it = 0;
  for (; it < options.max_iters; ++it) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int c = Nearest(pts.Point(i), centroids, dims, nullptr);
      if (c != assign[i]) {
        assign[i] = c;
        changed = true;
      }
    }
    if (!changed && it > 0) break;
    // Recompute weighted means.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<double> mass(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double w = weight(i);
      mass[assign[i]] += w;
      for (int d = 0; d < dims; ++d) {
        sums[assign[i]][d] += w * pts.Point(i)[d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (mass[c] <= 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t far = rng.Below(n);
        centroids[c].assign(pts.Point(far), pts.Point(far) + dims);
        continue;
      }
      for (int d = 0; d < dims; ++d) centroids[c][d] = sums[c][d] / mass[c];
    }
  }
  result.centroids = std::move(centroids);
  result.iterations = it;
  result.objective = KMeansObjective(pts, result.centroids);
  return result;
}

KMeansResult LloydKMeans(const DataMatrix& data, const KMeansOptions& options) {
  WeightedPoints pts;
  pts.dims = data.num_cols();
  if (data.num_rows() > 0) {
    pts.coords.assign(data.Row(0), data.Row(0) + data.num_rows() * pts.dims);
  }
  return LloydKMeans(pts, options);
}

namespace {

// Sparse payload mapping packed coreset keys (one byte per feature-bearing
// relation, centroid id + 1) to counts; ring product ORs the disjoint
// bytes. This is the counting pass that makes the coreset weights exact.
// Backed by a hash map so that the per-tuple accumulation at the root
// (whose distribution grows to the coreset size) stays O(1) per add.
// Packed keys can never equal the map's ~0 sentinel: that would need eight
// feature relations all assigned centroid id 254, which the per_relation_k
// cap in RelationalKMeans rules out.
struct AssignPayload {
  FlatHashMap<double> entries;

  bool empty() const { return entries.empty(); }

  void AddInPlace(const AssignPayload& other) {
    other.entries.ForEach([&](uint64_t key, double v) { entries[key] += v; });
  }

  void AddEntry(uint64_t key, double v) { entries[key] += v; }

  template <typename Fn>
  void ForEachKey(Fn&& fn) const {
    entries.ForEach([&](uint64_t key, double v) { fn(key, v); });
  }
};

void AssignMulInto(const AssignPayload& a, const AssignPayload& b,
                   AssignPayload* dst) {
  dst->entries.clear();
  a.ForEachKey([&](uint64_t ka, double va) {
    b.ForEachKey([&](uint64_t kb, double vb) {
      dst->AddEntry(ka | kb, va * vb);  // disjoint byte slots
    });
  });
}

}  // namespace

KMeansResult RelationalKMeans(const RootedTree& tree, const FeatureMap& fm,
                              const KMeansOptions& options) {
  const int num_nodes = tree.num_nodes();
  const int dims = fm.num_features();
  // Feature-bearing nodes get byte slots in the coreset key.
  std::vector<int> slot_of_node(num_nodes, -1);
  std::vector<int> nodes_with_features;
  for (int v = 0; v < num_nodes; ++v) {
    if (!fm.NodeFeatures(v).empty()) {
      slot_of_node[v] = static_cast<int>(nodes_with_features.size());
      nodes_with_features.push_back(v);
    }
  }
  RELBORG_CHECK_MSG(nodes_with_features.size() <= 8,
                    "coreset keys support at most 8 feature relations");
  RELBORG_CHECK(options.per_relation_k >= 1 && options.per_relation_k <= 200);

  // Join multiplicities weight the per-relation clustering problems.
  std::vector<std::vector<double>> mult = ComputeRowMultiplicities(tree);

  // Per-relation weighted k-means; record each row's centroid id.
  std::vector<std::vector<std::vector<double>>> local_centroids(num_nodes);
  std::vector<std::vector<int>> local_assign(num_nodes);
  for (int v : nodes_with_features) {
    const Relation& rel = tree.relation(v);
    const auto& feats = fm.NodeFeatures(v);
    WeightedPoints pts;
    pts.dims = static_cast<int>(feats.size());
    pts.coords.reserve(rel.num_rows() * feats.size());
    pts.weights.reserve(rel.num_rows());
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      for (const auto& [attr, f] : feats) {
        pts.coords.push_back(rel.Double(row, attr));
      }
      pts.weights.push_back(mult[v][row]);
    }
    KMeansOptions local = options;
    local.k = options.per_relation_k;
    KMeansResult r = LloydKMeans(pts, local);
    local_centroids[v] = std::move(r.centroids);
    local_assign[v].resize(rel.num_rows());
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      local_assign[v][row] =
          Nearest(pts.Point(row), local_centroids[v], pts.dims, nullptr);
    }
  }

  // Exact coreset weights: one factorized counting pass whose lift encodes
  // each row's local centroid id in its relation's byte slot.
  std::vector<FlatHashMap<AssignPayload>> views(num_nodes);
  AssignPayload p, buf_a, buf_b;
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    FlatHashMap<AssignPayload>& out = views[v];
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      p.entries.clear();
      uint64_t key = 0;
      if (slot_of_node[v] >= 0) {
        key = static_cast<uint64_t>(local_assign[v][row] + 1)
              << (8 * slot_of_node[v]);
      }
      p.AddEntry(key, 1.0);
      AssignPayload* cur = &p;
      AssignPayload* nxt = &buf_a;
      bool dangling = false;
      for (int c : node.children) {
        const AssignPayload* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr || cp->empty()) {
          dangling = true;
          break;
        }
        AssignMulInto(*cur, *cp, nxt);
        cur = nxt;
        nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
      }
      if (dangling) continue;
      out[tree.RowKeyToParent(v, row)].AddInPlace(*cur);
    }
  }

  // Decode the coreset: one weighted point per packed assignment key.
  WeightedPoints coreset;
  coreset.dims = dims;
  const AssignPayload* root = views[tree.root()].Find(kUnitKey);
  if (root != nullptr) {
    root->ForEachKey([&](uint64_t key, double weight) {
      std::vector<double> point(dims, 0.0);
      for (int v : nodes_with_features) {
        int byte = static_cast<int>((key >> (8 * slot_of_node[v])) & 0xFF);
        RELBORG_CHECK(byte > 0);  // every tuple passes every relation
        const std::vector<double>& c = local_centroids[v][byte - 1];
        const auto& feats = fm.NodeFeatures(v);
        for (size_t d = 0; d < feats.size(); ++d) {
          point[feats[d].second] = c[d];
        }
      }
      coreset.coords.insert(coreset.coords.end(), point.begin(), point.end());
      coreset.weights.push_back(weight);
    });
  }

  KMeansResult result = LloydKMeans(coreset, options);
  result.coreset_size = coreset.num_points();
  return result;
}

}  // namespace relborg
