#include "ml/linalg.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace relborg {

bool CholeskySolve(const std::vector<double>& a, const std::vector<double>& b,
                   int n, std::vector<double>* x) {
  RELBORG_CHECK(static_cast<int>(a.size()) == n * n);
  RELBORG_CHECK(static_cast<int>(b.size()) == n);
  // Lower-triangular factor L with A = L L^T.
  std::vector<double> l(n * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (int k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0) return false;
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l[i * n + k] * y[k];
    y[i] = sum / l[i * n + i];
  }
  // Back substitution: L^T x = y.
  x->assign(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int k = i + 1; k < n; ++k) sum -= l[k * n + i] * (*x)[k];
    (*x)[i] = sum / l[i * n + i];
  }
  return true;
}

void MatVec(const std::vector<double>& a, const std::vector<double>& v, int n,
            std::vector<double>* out) {
  out->assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double sum = 0;
    for (int j = 0; j < n; ++j) sum += a[i * n + j] * v[j];
    (*out)[i] = sum;
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double PowerIteration(const std::vector<double>& a, int n,
                      std::vector<double>* v, int iters, uint64_t seed) {
  Rng rng(seed);
  v->resize(n);
  for (double& x : *v) x = rng.Gaussian();
  std::vector<double> next;
  for (int it = 0; it < iters; ++it) {
    MatVec(a, *v, n, &next);
    double norm = std::sqrt(Dot(next, next));
    if (norm < 1e-300) return 0.0;
    for (double& x : next) x /= norm;
    *v = next;
  }
  // Rayleigh quotient for a signed eigenvalue.
  MatVec(a, *v, n, &next);
  return Dot(*v, next);
}

void Deflate(std::vector<double>* a, int n, double lambda,
             const std::vector<double>& v) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      (*a)[i * n + j] -= lambda * v[i] * v[j];
    }
  }
}

}  // namespace relborg
