// Model selection over feature subsets (Sec. 1.5 of the paper).
//
// Once the covariance matrix is computed over the join, a ridge model over
// ANY subset of the features trains in O(p^3) — microseconds to
// milliseconds — so exploring the model space (forward selection here)
// costs no further data passes. The structure-agnostic alternative rescans
// the data matrix per candidate model; the Sec. 1.5 benchmark measures that
// gap.
#ifndef RELBORG_ML_MODEL_SELECTION_H_
#define RELBORG_ML_MODEL_SELECTION_H_

#include <vector>

#include "ml/linear_regression.h"
#include "ring/covariance.h"

namespace relborg {

struct ModelSelectionOptions {
  double lambda = 1e-3;
  int max_features = 8;      // stop after this many selected features
  double min_mse_gain = 1e-6;  // relative improvement to keep going
};

struct SelectionStep {
  int added_feature = -1;
  double mse = 0;            // training MSE from the covariance matrix
  LinearModel model;
};

struct ModelSelectionResult {
  std::vector<SelectionStep> steps;  // one per accepted feature
  size_t models_evaluated = 0;       // candidate models scored
};

// Greedy forward selection of regressors for `response` using only the
// covariance matrix.
ModelSelectionResult ForwardSelect(const CovarMatrix& m, int response,
                                   const ModelSelectionOptions& options = {});

}  // namespace relborg

#endif  // RELBORG_ML_MODEL_SELECTION_H_
