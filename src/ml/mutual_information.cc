#include "ml/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/groupby_engine.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

double Entropy(const FlatHashMap<double>& counts, double total) {
  double h = 0;
  counts.ForEach([&](uint64_t, double c) {
    if (c > 0) {
      double p = c / total;
      h -= p * std::log(p);
    }
  });
  return h;
}

}  // namespace

MutualInformationResult ComputeMutualInformation(
    const RootedTree& tree, const std::vector<FeatureRef>& attrs) {
  MutualInformationResult result;
  result.attrs = attrs;
  const int m = static_cast<int>(attrs.size());
  result.mi.assign(m * m, 0.0);
  const JoinQuery& query = tree.query();

  // The whole workload — m marginal counts and m(m-1)/2 pair counts — is
  // one aggregate batch, evaluated in a single shared factorized pass.
  std::vector<GroupByAggregate> batch;
  for (int i = 0; i < m; ++i) {
    batch.push_back(CountGroupedBy(query, attrs[i].relation, attrs[i].attr));
  }
  std::vector<std::pair<int, int>> pair_of;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      batch.push_back(CountGroupedByPair(query, attrs[i].relation,
                                         attrs[i].attr, attrs[j].relation,
                                         attrs[j].attr));
      pair_of.push_back({i, j});
    }
  }
  std::vector<GroupByResult> evaluated = ComputeGroupByBatch(tree, batch);
  result.aggregates = batch.size();

  // Marginal entropies.
  double total = 0;
  for (int i = 0; i < m; ++i) {
    double t = 0;
    evaluated[i].ForEach([&](uint64_t, double c) { t += c; });
    total = t;  // identical for every attribute (same join)
    result.mi[i * m + i] = t > 0 ? Entropy(evaluated[i], t) : 0.0;
  }
  if (total <= 0) return result;

  // Pairwise joint counts -> MI(i,j) = H(i) + H(j) - H(i,j).
  for (size_t p = 0; p < pair_of.size(); ++p) {
    auto [i, j] = pair_of[p];
    double h_joint = Entropy(evaluated[m + p], total);
    double mi = result.mi[i * m + i] + result.mi[j * m + j] - h_joint;
    if (mi < 0) mi = 0;  // clamp FP noise
    result.mi[i * m + j] = mi;
    result.mi[j * m + i] = mi;
  }
  return result;
}

std::vector<ChowLiuEdge> BuildChowLiuTree(const MutualInformationResult& mi) {
  const int m = static_cast<int>(mi.attrs.size());
  std::vector<ChowLiuEdge> edges;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      edges.push_back({i, j, mi.At(i, j)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const ChowLiuEdge& a, const ChowLiuEdge& b) {
              return a.mi > b.mi;
            });
  // Kruskal with union-find.
  std::vector<int> parent(m);
  for (int i = 0; i < m; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<ChowLiuEdge> tree;
  for (const ChowLiuEdge& e : edges) {
    int ra = find(e.a);
    int rb = find(e.b);
    if (ra == rb) continue;
    parent[ra] = rb;
    tree.push_back(e);
    if (static_cast<int>(tree.size()) == m - 1) break;
  }
  return tree;
}

}  // namespace relborg
