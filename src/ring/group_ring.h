// The group-by ring: relborg's sparse-tensor representation (Sec. 2.1).
//
// A payload is a sparse map from a *group key* to a double measure. A group
// key packs the values of up to two categorical group-by attributes into two
// 32-bit slots of a uint64; a slot whose attribute is not (yet) present in
// the payload holds the sentinel kUnsetSlot. The ring product is an outer
// product: measures multiply and keys merge slot-wise (each group-by
// attribute is owned by exactly one branch of the join tree, so slots never
// collide).
//
// With zero group-by attributes the payload degenerates to a scalar (the
// counting / summing ring); with one or two it implements
// SUM(expr) GROUP BY X[, Y] without one-hot encoding — only the (pairs of)
// categories that actually occur in the data are represented, which is
// precisely the paper's sparse-tensor encoding of categorical interactions.
#ifndef RELBORG_RING_GROUP_RING_H_
#define RELBORG_RING_GROUP_RING_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/packed_key.h"

namespace relborg {

inline constexpr uint32_t kUnsetSlot = 0xFFFFFFFFu;
// Key with both slots unset: the key of purely scalar measures.
inline constexpr uint64_t kScalarGroupKey = ~0ull;

// Builds a group key with only the high / low slot set.
inline uint64_t GroupKeyHigh(int32_t v) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 32) | kUnsetSlot;
}
inline uint64_t GroupKeyLow(int32_t v) {
  return (static_cast<uint64_t>(kUnsetSlot) << 32) |
         static_cast<uint32_t>(v);
}
inline uint64_t GroupKeyBoth(int32_t hi, int32_t lo) {
  return PackKey2(hi, lo);
}

// Merges two keys with disjoint set slots. Aborts (debug) on collision.
inline uint64_t MergeGroupKeys(uint64_t a, uint64_t b) {
  uint32_t ahi = static_cast<uint32_t>(a >> 32);
  uint32_t alo = static_cast<uint32_t>(a);
  uint32_t bhi = static_cast<uint32_t>(b >> 32);
  uint32_t blo = static_cast<uint32_t>(b);
  RELBORG_DCHECK(ahi == kUnsetSlot || bhi == kUnsetSlot);
  RELBORG_DCHECK(alo == kUnsetSlot || blo == kUnsetSlot);
  uint32_t hi = ahi == kUnsetSlot ? bhi : ahi;
  uint32_t lo = alo == kUnsetSlot ? blo : alo;
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

// Canonical key for result maps: the all-unset (scalar) key is remapped to
// kUnitKey so that it can live in a FlatHashMap (whose empty sentinel is
// ~0ull). Unambiguous because a query has a fixed set of group-by slots.
inline uint64_t CanonicalGroupKey(uint64_t key) {
  return key == kScalarGroupKey ? kUnitKey : key;
}

// Sparse map payload, kept sorted by key. Sizes are typically tiny (most
// view entries carry a handful of groups), so sorted vectors beat hash maps.
class GroupPayload {
 public:
  struct Entry {
    uint64_t key;
    double value;
  };

  GroupPayload() = default;

  // Payload of a single (key, value) pair.
  static GroupPayload Single(uint64_t key, double value) {
    GroupPayload p;
    p.entries_.push_back(Entry{key, value});
    return p;
  }

  // Multiplicative identity: scalar 1.
  static GroupPayload One() { return Single(kScalarGroupKey, 1.0); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  // this += other (merge by key).
  void AddInPlace(const GroupPayload& other);

  // Adds a single entry.
  void AddEntry(uint64_t key, double value);

  // this *= scalar.
  void ScaleInPlace(double scalar);

  double ScalarValue() const;  // value at kScalarGroupKey (0 if absent)

 private:
  std::vector<Entry> entries_;
};

// dst = a * b (outer product with slot-wise key merge). dst must be distinct
// from a and b.
void GroupMulInto(const GroupPayload& a, const GroupPayload& b,
                  GroupPayload* dst);

}  // namespace relborg

#endif  // RELBORG_RING_GROUP_RING_H_
