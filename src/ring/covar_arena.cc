#include "ring/covar_arena.h"

#include <algorithm>
#include <utility>

namespace relborg {

CovarScope CovarScope::Over(int n, const std::vector<int>& features) {
  CovarScope scope;
  scope.n = n;
  scope.sum = features;
  std::sort(scope.sum.begin(), scope.sum.end());
  scope.sum.erase(std::unique(scope.sum.begin(), scope.sum.end()),
                  scope.sum.end());
  for (size_t a = 0; a < scope.sum.size(); ++a) {
    for (size_t b = a; b < scope.sum.size(); ++b) {
      const int i = scope.sum[a];
      const int j = scope.sum[b];
      scope.quad.push_back(
          {static_cast<uint32_t>(UpperTriIndex(n, i, j)), i, j});
    }
  }
  std::sort(scope.quad.begin(), scope.quad.end(),
            [](const QuadEntry& x, const QuadEntry& y) { return x.q < y.q; });
  return scope;
}

CovarScope CovarScope::Union(int n, const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> both = a;
  both.insert(both.end(), b.begin(), b.end());
  return Over(n, both);
}

namespace {

// Shared body of the scoped ring products: Assign selects = vs +=.
template <bool kAssign>
inline void ScopedMulImpl(const CovarScope& scope,
                          const double* RELBORG_RESTRICT a,
                          const double* RELBORG_RESTRICT b,
                          double* RELBORG_RESTRICT dst) {
  const double ca = a[kCovarCountOffset];
  const double cb = b[kCovarCountOffset];
  const double* RELBORG_RESTRICT as = a + kCovarSumOffset;
  const double* RELBORG_RESTRICT bs = b + kCovarSumOffset;
  double* RELBORG_RESTRICT ds = dst + kCovarSumOffset;
  if (kAssign) {
    dst[kCovarCountOffset] = ca * cb;
  } else {
    dst[kCovarCountOffset] += ca * cb;
  }
  for (int i : scope.sum) {
    const double v = cb * as[i] + ca * bs[i];
    if (kAssign) {
      ds[i] = v;
    } else {
      ds[i] += v;
    }
  }
  const size_t quad = CovarQuadOffset(scope.n);
  const double* RELBORG_RESTRICT aq = a + quad;
  const double* RELBORG_RESTRICT bq = b + quad;
  double* RELBORG_RESTRICT dq = dst + quad;
  for (const CovarScope::QuadEntry& e : scope.quad) {
    const double v =
        cb * aq[e.q] + ca * bq[e.q] + as[e.i] * bs[e.j] + bs[e.i] * as[e.j];
    if (kAssign) {
      dq[e.q] = v;
    } else {
      dq[e.q] += v;
    }
  }
}

}  // namespace

void CovarSpanMulScoped(const CovarScope& scope,
                        const double* RELBORG_RESTRICT a,
                        const double* RELBORG_RESTRICT b,
                        double* RELBORG_RESTRICT dst) {
  ScopedMulImpl<true>(scope, a, b, dst);
}

void CovarSpanMulAddScoped(const CovarScope& scope,
                           const double* RELBORG_RESTRICT a,
                           const double* RELBORG_RESTRICT b,
                           double* RELBORG_RESTRICT dst) {
  ScopedMulImpl<false>(scope, a, b, dst);
}

void CovarSpanLiftMulScoped(int n, const CovarScope& scope,
                            const std::pair<int, double>* feats,
                            size_t num_feats, double sign, const double* prod,
                            double* RELBORG_RESTRICT dst) {
  // Scoped copy of sign * prod (the lift's count is 1), then the sparse
  // lift corrections. The scope covers scope(prod) and the lifted
  // features, so every entry the corrections can make nonzero is assigned
  // first; outside the scope the corrections only ever add exact zeros to
  // zero entries.
  double* RELBORG_RESTRICT ds = dst + kCovarSumOffset;
  const double* RELBORG_RESTRICT ps = prod + kCovarSumOffset;
  dst[kCovarCountOffset] = sign * prod[kCovarCountOffset];
  for (int i : scope.sum) ds[i] = sign * ps[i];
  const size_t quad = CovarQuadOffset(n);
  const double* RELBORG_RESTRICT pq = prod + quad;
  double* RELBORG_RESTRICT dq = dst + quad;
  for (const CovarScope::QuadEntry& e : scope.quad) dq[e.q] = sign * pq[e.q];
  internal::LiftCorrections(n, feats, num_feats, sign, prod, dst);
}

void CovarSpanLiftMulAddScoped(int n, const CovarScope& scope,
                               const std::pair<int, double>* feats,
                               size_t num_feats, double sign,
                               const double* prod,
                               double* RELBORG_RESTRICT dst) {
  double* RELBORG_RESTRICT ds = dst + kCovarSumOffset;
  const double* RELBORG_RESTRICT ps = prod + kCovarSumOffset;
  dst[kCovarCountOffset] += sign * prod[kCovarCountOffset];
  for (int i : scope.sum) ds[i] += sign * ps[i];
  const size_t quad = CovarQuadOffset(n);
  const double* RELBORG_RESTRICT pq = prod + quad;
  double* RELBORG_RESTRICT dq = dst + quad;
  for (const CovarScope::QuadEntry& e : scope.quad) dq[e.q] += sign * pq[e.q];
  internal::LiftCorrections(n, feats, num_feats, sign, prod, dst);
}

CovarPayload CovarPayloadFromSpan(int n, const double* span) {
  CovarPayload p;
  p.count = span[kCovarCountOffset];
  p.sum.assign(span + kCovarSumOffset, span + kCovarSumOffset + n);
  p.quad.assign(span + CovarQuadOffset(n),
                span + CovarQuadOffset(n) + UpperTriSize(n));
  return p;
}

void CovarPayloadToSpan(const CovarPayload& p, double* span) {
  const int n = static_cast<int>(p.sum.size());
  span[kCovarCountOffset] = p.count;
  for (int i = 0; i < n; ++i) span[kCovarSumOffset + i] = p.sum[i];
  double* quad = span + CovarQuadOffset(n);
  for (size_t i = 0; i < p.quad.size(); ++i) quad[i] = p.quad[i];
}

void CovarArenaMergeInto(const CovarArenaView& src, CovarArenaView* dst) {
  RELBORG_DCHECK(src.num_features() == dst->num_features());
  const size_t stride = src.stride();
  src.ForEach([&](uint64_t key, const double* span) {
    CovarSpanAdd(stride, dst->BeginMergeKey(key), span);
  });
  dst->PublishMerge();
}

void CovarArenaMergeAt(const CovarArenaView& src, const CovarViewSnapshot& snap,
                       CovarArenaView* dst) {
  RELBORG_DCHECK(src.num_features() == dst->num_features());
  const size_t stride = src.stride();
  // The key set only ever grows, so iterating the CURRENT keys and filtering
  // through FindAt visits exactly the keys that existed at the snapshot.
  src.ForEach([&](uint64_t key, const double* /*current*/) {
    const double* at = src.FindAt(key, snap);
    if (at != nullptr) CovarSpanAdd(stride, dst->BeginMergeKey(key), at);
  });
  dst->PublishMerge();
}

}  // namespace relborg
