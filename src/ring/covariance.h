// The covariance ring (Sec. 5.2 of the paper).
//
// A payload is a triple (c, s, Q): a scalar count SUM(1), a vector of sums
// SUM(x_i), and an upper-triangular matrix of second moments SUM(x_i * x_j)
// over a set of n continuous features. The ring operations are
//
//   (c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)
//   (c1,s1,Q1) * (c2,s2,Q2) = (c1*c2,
//                              c2*s1 + c1*s2,
//                              c2*Q1 + c1*Q2 + s1*s2^T + s2*s1^T)
//
// with 0 = (0, 0, 0) and 1 = (1, 0, 0). Product combines payloads of
// *conditionally independent* branches of a factorized join: the cross
// moments between features of different branches are exactly s1*s2^T + its
// transpose. One bottom-up pass with this ring computes every aggregate of
// the covariance batch at once — the computation sharing that Figures 4 and
// 6 of the paper attribute LMFAO's and F-IVM's performance to.
#ifndef RELBORG_RING_COVARIANCE_H_
#define RELBORG_RING_COVARIANCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace relborg {

// Index of (i, j), i <= j, in a packed upper-triangular n x n matrix.
inline size_t UpperTriIndex(int n, int i, int j) {
  RELBORG_DCHECK(0 <= i && i <= j && j < n);
  return static_cast<size_t>(i) * n - static_cast<size_t>(i) * (i - 1) / 2 +
         (j - i);
}

inline size_t UpperTriSize(int n) {
  return static_cast<size_t>(n) * (n + 1) / 2;
}

// One covariance-ring element over n features. Default-constructed payloads
// are "unset" (empty vectors) and behave as ring zero for AddInPlace targets.
struct CovarPayload {
  double count = 0;
  std::vector<double> sum;   // size n
  std::vector<double> quad;  // size UpperTriSize(n)

  bool IsUnset() const { return sum.empty() && count == 0; }

  static CovarPayload Zero(int n) {
    CovarPayload p;
    p.count = 0;
    p.sum.assign(n, 0.0);
    p.quad.assign(UpperTriSize(n), 0.0);
    return p;
  }

  static CovarPayload One(int n) {
    CovarPayload p = Zero(n);
    p.count = 1;
    return p;
  }
};

// dst += src. An unset dst is first initialized to zero of src's width.
void CovarAddInPlace(CovarPayload* dst, const CovarPayload& src);

// dst = a * b (ring product). dst must be distinct from a and b; it is
// resized as needed. n is the feature count of all three payloads.
void CovarMulInto(int n, const CovarPayload& a, const CovarPayload& b,
                  CovarPayload* dst);

// Writes the lift of one tuple into dst: count 1, sum[f] = v and
// quad(f,g) = v_f * v_g for the given (feature index, value) pairs, zero
// elsewhere. Feature indices must be distinct but may be in any order.
void CovarLiftInto(int n, const std::vector<std::pair<int, double>>& features,
                   CovarPayload* dst);

// The final result of a covariance batch: a symmetric (n+1) x (n+1) view
// where index n plays the role of the constant feature 1 (so Moment(n, i) is
// SUM(x_i) and Moment(n, n) is the count).
class CovarMatrix {
 public:
  CovarMatrix(int n, CovarPayload payload)
      : n_(n), payload_(std::move(payload)) {
    RELBORG_CHECK(static_cast<int>(payload_.sum.size()) == n);
  }

  int num_features() const { return n_; }
  double count() const { return payload_.count; }
  double Sum(int i) const { return payload_.sum[i]; }

  // SUM(x_i * x_j) with the convention above for i == n or j == n.
  double Moment(int i, int j) const {
    if (i > j) std::swap(i, j);
    if (j == n_) return i == n_ ? payload_.count : payload_.sum[i];
    return payload_.quad[UpperTriIndex(n_, i, j)];
  }

  // Covariance (centered) between features i and j, i, j < n.
  double Covariance(int i, int j) const {
    double c = payload_.count;
    if (c <= 0) return 0;
    return Moment(i, j) / c - (Sum(i) / c) * (Sum(j) / c);
  }

  const CovarPayload& payload() const { return payload_; }

 private:
  int n_;
  CovarPayload payload_;
};

}  // namespace relborg

#endif  // RELBORG_RING_COVARIANCE_H_
