// Arena-backed storage for covariance-ring payloads.
//
// FlatHashMap<CovarPayload> keeps two heap-allocated std::vectors inside
// every map slot, so the engines' inner loops chase pointers and pay an
// allocation per materialized key (plus vector copies on every rehash).
// Since every payload of one view has the SAME width n, the arena lays all
// of a view's payloads out in one contiguous buffer with a fixed stride of
//
//   CovarStride(n) = 1 + n + n(n+1)/2   doubles per slot:
//
//   span[0]                      count        SUM(1)
//   span[1 .. n]                 sum          SUM(x_i)
//   span[1+n .. CovarStride(n))  quad         SUM(x_i * x_j), packed upper
//                                             triangle (UpperTriIndex)
//
// and the per-key hash map shrinks to FlatHashMap<uint32_t> over arena slot
// ids. Slots are allocated append-only and never freed or compacted — views
// only ever accumulate keys (payloads may reach ring zero but their slots
// stay), mirroring FlatHashMap's no-erase contract — so a span pointer stays
// valid until the NEXT allocation from the same arena (growth may move the
// buffer). The ring kernels below operate on raw double spans in plain
// contiguous loops the compiler can autovectorize; the per-element
// expressions of CovarSpanAdd/Mul/Lift match ring/covariance.h's reference
// ops exactly, so the two representations agree bit for bit (the fused
// CovarSpanLiftMulAdd re-associates sums and agrees to rounding).
#ifndef RELBORG_RING_COVAR_ARENA_H_
#define RELBORG_RING_COVAR_ARENA_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "ring/covariance.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

#if defined(__GNUC__) || defined(__clang__)
#define RELBORG_RESTRICT __restrict__
#else
#define RELBORG_RESTRICT
#endif

namespace relborg {

// Doubles per payload slot for n features.
inline size_t CovarStride(int n) {
  return 1 + static_cast<size_t>(n) + UpperTriSize(n);
}

// Offsets of the three sections within a slot.
inline constexpr size_t kCovarCountOffset = 0;
inline constexpr size_t kCovarSumOffset = 1;
inline size_t CovarQuadOffset(int n) { return 1 + static_cast<size_t>(n); }

// --- Span kernels ---------------------------------------------------------
//
// All dense kernels are defined inline: the decision-node engine calls
// them with the compile-time width n == 1, and inlining lets the compiler
// collapse the loops to straight-line scalar code there while still
// autovectorizing the runtime-n covariance paths.

// dst += src over a whole payload. count, sum and quad are contiguous, so
// the entire ring addition is one vectorizable loop.
inline void CovarSpanAdd(size_t stride, double* RELBORG_RESTRICT dst,
                         const double* RELBORG_RESTRICT src) {
  for (size_t i = 0; i < stride; ++i) dst[i] += src[i];
}

// dst = a * b (ring product). dst must not alias a or b. Element
// expressions are identical to CovarMulInto.
inline void CovarSpanMul(int n, const double* RELBORG_RESTRICT a,
                         const double* RELBORG_RESTRICT b,
                         double* RELBORG_RESTRICT dst) {
  const double ca = a[kCovarCountOffset];
  const double cb = b[kCovarCountOffset];
  const double* RELBORG_RESTRICT as = a + kCovarSumOffset;
  const double* RELBORG_RESTRICT bs = b + kCovarSumOffset;
  double* RELBORG_RESTRICT ds = dst + kCovarSumOffset;
  dst[kCovarCountOffset] = ca * cb;
  for (int i = 0; i < n; ++i) {
    ds[i] = cb * as[i] + ca * bs[i];
  }
  const size_t quad = CovarQuadOffset(n);
  const double* RELBORG_RESTRICT aq = a + quad;
  const double* RELBORG_RESTRICT bq = b + quad;
  double* RELBORG_RESTRICT dq = dst + quad;
  size_t idx = 0;
  for (int i = 0; i < n; ++i) {
    const double asi = as[i];
    const double bsi = bs[i];
    for (int j = i; j < n; ++j, ++idx) {
      dq[idx] = cb * aq[idx] + ca * bq[idx] + asi * bs[j] + bsi * as[j];
    }
  }
}

// dst += a * b (ring product folded straight into the accumulator — the
// tail of a child-product chain never materializes its last intermediate).
// dst must not alias a or b.
inline void CovarSpanMulAdd(int n, const double* RELBORG_RESTRICT a,
                            const double* RELBORG_RESTRICT b,
                            double* RELBORG_RESTRICT dst) {
  const double ca = a[kCovarCountOffset];
  const double cb = b[kCovarCountOffset];
  const double* RELBORG_RESTRICT as = a + kCovarSumOffset;
  const double* RELBORG_RESTRICT bs = b + kCovarSumOffset;
  double* RELBORG_RESTRICT ds = dst + kCovarSumOffset;
  dst[kCovarCountOffset] += ca * cb;
  for (int i = 0; i < n; ++i) {
    ds[i] += cb * as[i] + ca * bs[i];
  }
  const size_t quad = CovarQuadOffset(n);
  const double* RELBORG_RESTRICT aq = a + quad;
  const double* RELBORG_RESTRICT bq = b + quad;
  double* RELBORG_RESTRICT dq = dst + quad;
  size_t idx = 0;
  for (int i = 0; i < n; ++i) {
    const double asi = as[i];
    const double bsi = bs[i];
    for (int j = i; j < n; ++j, ++idx) {
      dq[idx] += cb * aq[idx] + ca * bq[idx] + asi * bs[j] + bsi * as[j];
    }
  }
}

// dst = lift of one tuple (count 1, sum[f] = v, quad(f, g) = v_f * v_g for
// the given (feature, value) pairs, zero elsewhere). Matches CovarLiftInto.
inline void CovarSpanLift(int n, const std::pair<int, double>* feats,
                          size_t num_feats, double* RELBORG_RESTRICT dst) {
  const size_t stride = CovarStride(n);
  for (size_t i = 0; i < stride; ++i) dst[i] = 0.0;
  dst[kCovarCountOffset] = 1.0;
  double* RELBORG_RESTRICT sum = dst + kCovarSumOffset;
  double* RELBORG_RESTRICT quad = dst + CovarQuadOffset(n);
  for (size_t k = 0; k < num_feats; ++k) {
    sum[feats[k].first] = feats[k].second;
  }
  for (size_t a = 0; a < num_feats; ++a) {
    for (size_t b = a; b < num_feats; ++b) {
      int i = feats[a].first;
      int j = feats[b].first;
      if (i > j) {
        int t = i;
        i = j;
        j = t;
      }
      quad[UpperTriIndex(n, i, j)] = feats[a].second * feats[b].second;
    }
  }
}

namespace internal {

// Sparse corrections shared by the fused lift kernels: adds the terms of
// sign * lift(feats) * prod that a dense sign * prod pass does not cover
// (see the derivation at CovarSpanLiftMulAdd).
inline void LiftCorrections(int n, const std::pair<int, double>* feats,
                            size_t num_feats, double sign, const double* prod,
                            double* RELBORG_RESTRICT dst) {
  double* RELBORG_RESTRICT sum = dst + kCovarSumOffset;
  double* RELBORG_RESTRICT quad = dst + CovarQuadOffset(n);
  const double cp = prod[kCovarCountOffset];
  const double* RELBORG_RESTRICT ps = prod + kCovarSumOffset;
  for (size_t k = 0; k < num_feats; ++k) {
    const int f = feats[k].first;
    const double v = sign * feats[k].second;
    sum[f] += cp * v;
    // Cross moments v_f * s_P[j] land in column f of the triangle for
    // j < f and in row f for j >= f; the diagonal term appears twice in
    // s_L * s_P^T + s_P * s_L^T.
    size_t idx = UpperTriIndex(n, 0, f);
    for (int j = 0; j < f; ++j) {
      quad[idx] += v * ps[j];
      idx += static_cast<size_t>(n - j - 1);
    }
    double* RELBORG_RESTRICT row = quad + UpperTriIndex(n, f, f);
    const double* RELBORG_RESTRICT tail = ps + f;
    const int len = n - f;
    for (int j = 0; j < len; ++j) {
      row[j] += v * tail[j];
    }
    quad[UpperTriIndex(n, f, f)] += v * ps[f];
    // Lifted-pair quads scale by prod's count.
    for (size_t b = k; b < num_feats; ++b) {
      int i = f;
      int j = feats[b].first;
      if (i > j) {
        int t = i;
        i = j;
        j = t;
      }
      quad[UpperTriIndex(n, i, j)] += cp * v * feats[b].second;
    }
  }
}

}  // namespace internal

// Fused lift-multiply-accumulate: dst += sign * lift(feats) * prod, where
// `prod` is the (dense) product of the row's child payloads, or the ring
// One when nullptr (leaf nodes). No intermediate payload is materialized;
// the lift's sparsity turns the O(n^2) ring product into one contiguous
// dst += sign * prod pass plus O(num_feats * n) sparse corrections:
//
//   count += sign * c_P
//   sum    += sign * s_P            and   sum[f] += sign * c_P * v_f
//   quad   += sign * q_P            and   quad(f, j) += sign * v_f * s_P[j]
//                                         (doubled at j == f),
//                                         quad(f, g) += sign * c_P * v_f*v_g
//
// which is exactly sign * (lift * prod) by the ring product rule, summed in
// a fixed, data-dependent order (deterministic for any thread count).
inline void CovarSpanLiftMulAdd(int n, const std::pair<int, double>* feats,
                                size_t num_feats, double sign,
                                const double* prod,
                                double* RELBORG_RESTRICT dst) {
  if (prod == nullptr) {
    // Leaf: dst += sign * lift. Only the lift's sparse entries move —
    // O(num_feats^2) work per row instead of O(n^2).
    double* RELBORG_RESTRICT sum = dst + kCovarSumOffset;
    double* RELBORG_RESTRICT quad = dst + CovarQuadOffset(n);
    dst[kCovarCountOffset] += sign;
    for (size_t k = 0; k < num_feats; ++k) {
      sum[feats[k].first] += sign * feats[k].second;
    }
    for (size_t a = 0; a < num_feats; ++a) {
      for (size_t b = a; b < num_feats; ++b) {
        int i = feats[a].first;
        int j = feats[b].first;
        if (i > j) {
          int t = i;
          i = j;
          j = t;
        }
        quad[UpperTriIndex(n, i, j)] +=
            sign * feats[a].second * feats[b].second;
      }
    }
    return;
  }

  // Dense part: lift.count == 1 contributes sign * prod across the whole
  // slot (count, sum and quad at once) — one contiguous loop — then the
  // lift's nonzeros add their sparse corrections.
  const size_t stride = CovarStride(n);
  for (size_t i = 0; i < stride; ++i) dst[i] += sign * prod[i];
  internal::LiftCorrections(n, feats, num_feats, sign, prod, dst);
}

// dst = sign * lift(feats) * prod (overwriting dst; prod must not alias
// dst and must be non-null). The head of a multi-child product chain: the
// lift folds into the first child payload for O(stride + num_feats * n)
// instead of a dense O(n^2) ring product.
inline void CovarSpanLiftMul(int n, const std::pair<int, double>* feats,
                             size_t num_feats, double sign, const double* prod,
                             double* RELBORG_RESTRICT dst) {
  const size_t stride = CovarStride(n);
  for (size_t i = 0; i < stride; ++i) dst[i] = sign * prod[i];
  internal::LiftCorrections(n, feats, num_feats, sign, prod, dst);
}

// --- Scoped kernels -------------------------------------------------------
//
// A factorized view's payload is nonzero only on the features of its
// subtree (its SCOPE) — e.g. a dimension view over 1 of n features carries
// n - 1 structurally-zero sums and almost n(n+1)/2 zero quads. Scopes are a
// pure function of the join tree and the feature map, so the engines
// precompute one CovarScope per product step at plan time and the scoped
// kernels only touch the live entries. The per-element expressions are the
// ones of the dense kernels, so computed entries agree bit for bit; skipped
// entries are exact zeros in both representations. Invariant required of
// all inputs (and preserved for all outputs): payload entries outside a
// span's scope are exactly 0.0 — arena slots are born zero-filled and the
// kernels only ever add zero outside their scope, so the invariant holds by
// construction.

// One product step's live entries: the union of the operand scopes.
struct CovarScope {
  struct QuadEntry {
    uint32_t q;  // packed UpperTriIndex(n, i, j)
    int32_t i;
    int32_t j;
  };
  int n = 0;                    // feature width of the payloads
  std::vector<int> sum;         // live feature indices, ascending
  std::vector<QuadEntry> quad;  // live (i <= j) pairs, ascending by q

  // A scope covering every feature: the contiguous dense kernels beat the
  // scoped (gather-indexed) ones, so callers dispatch on this.
  bool IsDense() const { return sum.size() == static_cast<size_t>(n); }

  // Builds the scope over the given (possibly unsorted) feature set.
  static CovarScope Over(int n, const std::vector<int>& features);
  // Union of two feature sets, as a scope.
  static CovarScope Union(int n, const std::vector<int>& a,
                          const std::vector<int>& b);
};

// dst = a * b restricted to the scope's entries (assign; entries outside
// the scope are left untouched — they must already be zero).
void CovarSpanMulScoped(const CovarScope& scope, const double* RELBORG_RESTRICT a,
                        const double* RELBORG_RESTRICT b,
                        double* RELBORG_RESTRICT dst);

// dst += a * b restricted to the scope's entries.
void CovarSpanMulAddScoped(const CovarScope& scope,
                           const double* RELBORG_RESTRICT a,
                           const double* RELBORG_RESTRICT b,
                           double* RELBORG_RESTRICT dst);

// dst = sign * lift(feats) * prod with the dense copy restricted to the
// scope (which must cover scope(prod) UNION the lifted features).
void CovarSpanLiftMulScoped(int n, const CovarScope& scope,
                            const std::pair<int, double>* feats,
                            size_t num_feats, double sign, const double* prod,
                            double* RELBORG_RESTRICT dst);

// dst += sign * lift(feats) * prod with the dense add restricted to the
// scope (which must cover scope(prod); the lift's terms are sparse
// corrections regardless).
void CovarSpanLiftMulAddScoped(int n, const CovarScope& scope,
                               const std::pair<int, double>* feats,
                               size_t num_feats, double sign,
                               const double* prod,
                               double* RELBORG_RESTRICT dst);

// Conversions between the two representations (result extraction, tests).
CovarPayload CovarPayloadFromSpan(int n, const double* span);
void CovarPayloadToSpan(const CovarPayload& p, double* span);

// --- Arena and arena-backed view ------------------------------------------

// Append-only slab of fixed-stride payload slots, addressed by 32-bit ids.
class CovarArena {
 public:
  CovarArena() = default;
  explicit CovarArena(int n) { Init(n); }

  // Sets the feature width. Must be called before the first Allocate; a
  // repeated Init with the same n is a no-op.
  void Init(int n) {
    RELBORG_DCHECK(n_ < 0 || n_ == n);
    n_ = n;
    stride_ = CovarStride(n);
  }

  bool initialized() const { return n_ >= 0; }
  int num_features() const { return n_; }
  size_t stride() const { return stride_; }
  size_t num_slots() const { return num_slots_; }
  size_t bytes() const { return data_.capacity() * sizeof(double); }

  // Appends one zero-initialized slot and returns its id. Invalidates span
  // pointers previously handed out by Slot (the buffer may move).
  uint32_t Allocate() {
    RELBORG_DCHECK(initialized());
    data_.resize(data_.size() + stride_, 0.0);
    return static_cast<uint32_t>(num_slots_++);
  }

  double* Slot(uint32_t id) {
    RELBORG_DCHECK(id < num_slots_);
    return data_.data() + static_cast<size_t>(id) * stride_;
  }
  const double* Slot(uint32_t id) const {
    RELBORG_DCHECK(id < num_slots_);
    return data_.data() + static_cast<size_t>(id) * stride_;
  }

 private:
  int n_ = -1;
  size_t stride_ = 0;
  size_t num_slots_ = 0;
  std::vector<double> data_;
};

// A version snapshot of a CovarArenaView: the pair (published slot count,
// publication counter) read in one atomic acquire. Because slots are
// allocated append-only and ids ascend by allocation time, `slots` is a
// watermark: exactly the slots with id < slots existed when the snapshot
// was taken. `version` counts published merges and backs the stream
// scheduler's speculation validity check — equal versions imply an
// unchanged view, hence bit-identical reads.
struct CovarViewSnapshot {
  uint32_t slots = 0;
  uint32_t version = 0;
};

// A factorized view over arena storage: FlatHashMap from packed join key to
// arena slot id (stored as id + 1 so the map's zero-initialized default
// means "no slot yet"). Drop-in replacement for FlatHashMap<CovarPayload>
// in the engines, with payload access via raw spans.
//
// SNAPSHOT PROTOCOL (the per-view analogue of ShadowDb's row watermarks).
// A maintained view is written only through published merges: the writer
// folds a delta via BeginMergeKey per key, then calls PublishMerge, which
// release-stores the packed (version + 1, slot count) pair AFTER every
// payload write of the merge. Snapshot() is one acquire load, so a reader
// that observes a snapshot also observes every payload write of every
// merge published at or before it — snapshot readers never see a torn
// payload. Two read modes build on this:
//
//  * VERSION VALIDATION (lock-free, the production path): a speculative
//    reader records Snapshot().version before reading and revalidates it
//    at the serial point; equality proves the view never changed in
//    between, so whatever was read is exactly what a serial reader would
//    have read. Map probes and payload reads still require that no merge
//    runs CONCURRENTLY with the reads themselves (a merge can rehash the
//    map and reallocate the arena) — the stream scheduler's ViewGate
//    provides that exclusion.
//  * PINNED SNAPSHOT READS (copy-on-write): Pin() returns a snapshot and
//    switches subsequent merges to copy-on-write for every slot at an id
//    below the pin point — the old payload stays untouched, the new slot
//    chains to it — so FindAt(key, snap) keeps reading the exact pre-merge
//    bytes (stable slot ids included) until Unpin. COW only runs while
//    pins are active, so the maintenance hot path never pays for it.
class CovarArenaView {
 public:
  CovarArenaView() = default;
  explicit CovarArenaView(int n) : arena_(n) {}

  // Movable, not copyable (the published watermark is an atomic). Moves
  // may not race with readers of the moved-from view; relaxed transfer of
  // the watermark is therefore enough.
  CovarArenaView(CovarArenaView&& other) noexcept { MoveFrom(&other); }
  CovarArenaView& operator=(CovarArenaView&& other) noexcept {
    if (this != &other) MoveFrom(&other);
    return *this;
  }

  void Init(int n) { arena_.Init(n); }
  bool initialized() const { return arena_.initialized(); }
  int num_features() const { return arena_.num_features(); }
  size_t stride() const { return arena_.stride(); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const CovarArena& arena() const { return arena_; }

  // Span of `key`, allocating a zeroed slot on first access. The returned
  // pointer is valid until the next GetOrAdd of a NEW key. Delta-building
  // path: writes through GetOrAdd are NOT published (snapshots never cover
  // them); maintained views use BeginMergeKey + PublishMerge instead.
  double* GetOrAdd(uint64_t key) {
    uint32_t& slot = map_[key];
    if (slot == 0) {
      slot = arena_.Allocate() + 1;
      prev_.push_back(0);
    }
    return arena_.Slot(slot - 1);
  }

  // Span of `key`, or nullptr when absent.
  const double* Find(uint64_t key) const {
    const uint32_t* slot = map_.Find(key);
    return slot == nullptr ? nullptr : arena_.Slot(*slot - 1);
  }

  // --- Published merges (writer side of the snapshot protocol) -----------

  // Writable span of `key` for one merge: in place normally; a fresh slot
  // carrying a copy of the old payload (chained for FindAt) when a pin
  // protects the existing slot. Call PublishMerge once after all of the
  // merge's keys are folded.
  double* BeginMergeKey(uint64_t key) {
    uint32_t& slot = map_[key];
    if (slot == 0) {
      slot = arena_.Allocate() + 1;
      prev_.push_back(0);
      return arena_.Slot(slot - 1);
    }
    if (slot - 1 < cow_floor_.load(std::memory_order_acquire)) {
      const uint32_t fresh = arena_.Allocate();
      prev_.push_back(slot);  // chain to the pinned payload
      double* dst = arena_.Slot(fresh);
      const double* src = arena_.Slot(slot - 1);  // after Allocate: may move
      std::copy(src, src + arena_.stride(), dst);
      slot = fresh + 1;
      return dst;
    }
    return arena_.Slot(slot - 1);
  }

  // Publishes every payload write since the previous publish: one release
  // store of the packed (version, slot count) watermark pair.
  void PublishMerge() {
    ++next_version_;
    published_.store((static_cast<uint64_t>(next_version_) << 32) |
                         static_cast<uint64_t>(arena_.num_slots()),
                     std::memory_order_release);
  }

  // Checkpoint-restore hook: publishes the CURRENT slot count under the
  // given publication counter, so a view rebuilt from a checkpoint resumes
  // the exact version sequence of the run that wrote it (speculation
  // validity and serve snapshots compare versions across epochs). Only
  // valid on a quiescent view with no readers — restore runs before any
  // pipeline thread exists.
  void RestorePublished(uint32_t version) {
    next_version_ = version;
    published_.store((static_cast<uint64_t>(version) << 32) |
                         static_cast<uint64_t>(arena_.num_slots()),
                     std::memory_order_release);
  }

  // --- Snapshot readers --------------------------------------------------

  // The current published watermark; one atomic acquire, safe to call
  // concurrently with merges.
  CovarViewSnapshot Snapshot() const {
    const uint64_t p = published_.load(std::memory_order_acquire);
    return {static_cast<uint32_t>(p), static_cast<uint32_t>(p >> 32)};
  }

  // Publication counter alone (speculation validity checks).
  uint32_t version() const { return Snapshot().version; }

  // Span of `key` as of `snap`: the newest chained slot the snapshot
  // covers, nullptr if the key did not exist yet. Reads the exact
  // pre-merge bytes for any merge published after the snapshot, provided a
  // pin covering the snapshot was active across those merges.
  const double* FindAt(uint64_t key, const CovarViewSnapshot& snap) const {
    const uint32_t* s = map_.Find(key);
    uint32_t id1 = s == nullptr ? 0 : *s;
    while (id1 != 0 && id1 - 1 >= snap.slots) id1 = prev_[id1 - 1];
    return id1 == 0 ? nullptr : arena_.Slot(id1 - 1);
  }

  // Protects every currently published slot from in-place modification
  // (merges copy-on-write instead) and returns the snapshot the pin
  // covers. Pins nest; each Pin must be matched by one Unpin, in ANY order
  // across any threads. Pin itself is a writer-side call (it must not race
  // with merges — the serve layer pins on the applier thread between
  // epochs); Unpin is safe from any thread, concurrently with merges.
  //
  // PIN TABLE. Each pin records its COW floor (the slot count at pin time)
  // in a mutex-guarded table; the atomic cow_floor_ mirrors the table's
  // maximum and is the only word BeginMergeKey reads. Because slots grow
  // monotonically, floors are recorded in non-decreasing order, so a
  // token-less Unpin can release the SMALLEST floor: the surviving entries
  // then over-approximate every surviving pin's true floor (protection is
  // only ever too wide, never too narrow — a stale-high floor costs one
  // extra COW copy, a low one would corrupt a pinned read). The floor
  // drops only when the last pin releases. The release-store on a drop
  // pairs with BeginMergeKey's acquire: the writer's in-place overwrite is
  // ordered after every payload read the unpinning client performed.
  CovarViewSnapshot Pin() {
    const uint32_t floor = static_cast<uint32_t>(arena_.num_slots());
    std::lock_guard<std::mutex> lock(pin_mu_);
    pin_floors_.push_back(floor);
    if (floor > cow_floor_.load(std::memory_order_relaxed)) {
      cow_floor_.store(floor, std::memory_order_release);
    }
    return Snapshot();
  }

  void Unpin() {
    std::lock_guard<std::mutex> lock(pin_mu_);
    RELBORG_DCHECK(!pin_floors_.empty());
    // Floors are appended in non-decreasing order; the minimum is at the
    // front. Erasing it keeps the maximum (and thus cow_floor_) intact
    // unless this was the last active pin.
    pin_floors_.erase(pin_floors_.begin());
    cow_floor_.store(pin_floors_.empty() ? 0 : pin_floors_.back(),
                     std::memory_order_release);
  }

  bool pinned() const {
    std::lock_guard<std::mutex> lock(pin_mu_);
    return !pin_floors_.empty();
  }

  // fn(key, const double* span) over all entries; iteration order depends
  // only on the inserted key set, never on the thread count.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach(
        [&](uint64_t key, const uint32_t& slot) { fn(key, arena_.Slot(slot - 1)); });
  }

 private:
  void MoveFrom(CovarArenaView* other) {
    map_ = std::move(other->map_);
    arena_ = std::move(other->arena_);
    prev_ = std::move(other->prev_);
    published_.store(other->published_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    next_version_ = other->next_version_;
    pin_floors_ = std::move(other->pin_floors_);
    cow_floor_.store(other->cow_floor_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  FlatHashMap<uint32_t> map_;
  CovarArena arena_;
  // Per slot: previous chained slot id + 1 (0 = chain end). A COW merge
  // chains the fresh slot to the payload it superseded; ids descend
  // strictly along a chain, so FindAt's walk terminates.
  std::vector<uint32_t> prev_;
  // Packed (version << 32 | published slot count); see Snapshot().
  std::atomic<uint64_t> published_{0};
  uint32_t next_version_ = 0;  // writer-side shadow of the version half
  // Pin table (see Pin/Unpin): per-pin COW floors, non-decreasing order,
  // guarded by pin_mu_; cow_floor_ mirrors the maximum (0 = no pins) and
  // is the writer's single acquire-read per BeginMergeKey.
  mutable std::mutex pin_mu_;
  std::vector<uint32_t> pin_floors_;
  std::atomic<uint32_t> cow_floor_{0};
};

// --- Cross-arena merges ---------------------------------------------------
//
// Ring-adds every entry of `src` into `dst` (dst[key] += src[key], allocating
// absent keys) as ONE published merge on dst. Per-key additions are
// independent, so the result is a pure function of the two views' contents —
// never of iteration order — and merging shard-local views in ascending
// shard order yields the same bytes on every run. Both views must have the
// same feature width; the caller must exclude concurrent merges on BOTH
// views for the duration (a merge can rehash the map / move the arena).
void CovarArenaMergeInto(const CovarArenaView& src, CovarArenaView* dst);

// As above, but reads `src` as of `snap` (FindAt): keys published after the
// snapshot are skipped, superseded payloads read their pinned pre-merge
// bytes. `snap` must come from src.Pin() (or a quiescent src.Snapshot())
// and the pin must stay active across the call.
void CovarArenaMergeAt(const CovarArenaView& src, const CovarViewSnapshot& snap,
                       CovarArenaView* dst);

}  // namespace relborg

#endif  // RELBORG_RING_COVAR_ARENA_H_
