#include "ring/group_ring.h"

#include <algorithm>

namespace relborg {

void GroupPayload::AddInPlace(const GroupPayload& other) {
  if (other.entries_.empty()) return;
  if (entries_.empty()) {
    entries_ = other.entries_;
    return;
  }
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].key < other.entries_[j].key) {
      merged.push_back(entries_[i++]);
    } else if (entries_[i].key > other.entries_[j].key) {
      merged.push_back(other.entries_[j++]);
    } else {
      merged.push_back(
          Entry{entries_[i].key, entries_[i].value + other.entries_[j].value});
      ++i;
      ++j;
    }
  }
  while (i < entries_.size()) merged.push_back(entries_[i++]);
  while (j < other.entries_.size()) merged.push_back(other.entries_[j++]);
  entries_ = std::move(merged);
}

void GroupPayload::AddEntry(uint64_t key, double value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) {
    it->value += value;
  } else {
    entries_.insert(it, Entry{key, value});
  }
}

void GroupPayload::ScaleInPlace(double scalar) {
  for (Entry& e : entries_) e.value *= scalar;
}

double GroupPayload::ScalarValue() const {
  for (const Entry& e : entries_) {
    if (e.key == kScalarGroupKey) return e.value;
  }
  return 0;
}

void GroupMulInto(const GroupPayload& a, const GroupPayload& b,
                  GroupPayload* dst) {
  *dst = GroupPayload();
  if (a.empty() || b.empty()) return;
  // Fast path: one side is a pure scalar.
  if (a.size() == 1 && a.entries()[0].key == kScalarGroupKey) {
    *dst = b;
    dst->ScaleInPlace(a.entries()[0].value);
    return;
  }
  if (b.size() == 1 && b.entries()[0].key == kScalarGroupKey) {
    *dst = a;
    dst->ScaleInPlace(b.entries()[0].value);
    return;
  }
  for (const auto& ea : a.entries()) {
    for (const auto& eb : b.entries()) {
      dst->AddEntry(MergeGroupKeys(ea.key, eb.key), ea.value * eb.value);
    }
  }
}

}  // namespace relborg
