#include "ring/covariance.h"

#include <utility>

namespace relborg {

void CovarAddInPlace(CovarPayload* dst, const CovarPayload& src) {
  if (src.IsUnset()) return;
  if (dst->IsUnset()) {
    *dst = src;
    return;
  }
  RELBORG_DCHECK(dst->sum.size() == src.sum.size());
  dst->count += src.count;
  for (size_t i = 0; i < src.sum.size(); ++i) dst->sum[i] += src.sum[i];
  for (size_t i = 0; i < src.quad.size(); ++i) dst->quad[i] += src.quad[i];
}

void CovarMulInto(int n, const CovarPayload& a, const CovarPayload& b,
                  CovarPayload* dst) {
  const size_t tri = UpperTriSize(n);
  dst->sum.resize(n);
  dst->quad.resize(tri);
  dst->count = a.count * b.count;
  const double ca = a.count;
  const double cb = b.count;
  for (int i = 0; i < n; ++i) {
    dst->sum[i] = cb * a.sum[i] + ca * b.sum[i];
  }
  size_t idx = 0;
  for (int i = 0; i < n; ++i) {
    const double asi = a.sum[i];
    const double bsi = b.sum[i];
    for (int j = i; j < n; ++j, ++idx) {
      dst->quad[idx] = cb * a.quad[idx] + ca * b.quad[idx] + asi * b.sum[j] +
                       bsi * a.sum[j];
    }
  }
}

void CovarLiftInto(int n, const std::vector<std::pair<int, double>>& features,
                   CovarPayload* dst) {
  dst->count = 1;
  dst->sum.assign(n, 0.0);
  dst->quad.assign(UpperTriSize(n), 0.0);
  for (const auto& [f, v] : features) {
    dst->sum[f] = v;
  }
  for (size_t a = 0; a < features.size(); ++a) {
    for (size_t b = a; b < features.size(); ++b) {
      int i = features[a].first;
      int j = features[b].first;
      if (i > j) std::swap(i, j);
      dst->quad[UpperTriIndex(n, i, j)] =
          features[a].second * features[b].second;
    }
  }
}

}  // namespace relborg
