// Snapshot-consistent concurrent query serving over a live stream pipeline
// — the read front end of the engines (the "millions of users" story).
//
// A SnapshotServer<Strategy> wraps a running StreamScheduler<Strategy> and
// lets any number of client threads open READ TRANSACTIONS against the
// stream while ingestion and maintenance keep running:
//
//   SnapshotServer<CovarFivm>::ReadTxn txn = server.BeginSnapshot();
//   CovarMatrix covar   = server.Covar(txn);         // aggregates
//   LinearModel model   = server.TrainModel(txn, y); // model outputs
//   auto groups         = server.GroupBy(txn, node); // group-by results
//   server.EndSnapshot(&txn);
//
// Every read of one transaction observes ONE committed epoch horizon: the
// state a serial replay of the stream would have after exactly
// txn.horizon_epochs() epochs — epoch-consistent across all views and the
// row store, and byte-identical to that paused-pipeline state (the
// differential suite in tests/serve_snapshot_test.cc pins this against a
// serial oracle for all three strategies).
//
// HOW IT COMPOSES with the PR-5/PR-6 machinery (no stop-the-world, reads
// never block the committer or the compute stage):
//
//   * The server registers a StreamEpochObserver; at every K-th epoch
//     boundary (ServeOptions::snapshot_every_epochs, the staleness knob)
//     the APPLIER thread publishes a fresh snapshot entry. For strategies
//     with the per-view pin protocol (CovarFivm's ServePin over
//     CovarArenaView::Pin) the entry pins all views copy-on-write —
//     zero-copy snapshots whose bytes later merges cannot disturb. For
//     copy-based strategies (HigherOrderIvm, FirstOrderIvm) the entry
//     copies Current() at the boundary — ~n(n+1)/2 doubles.
//   * BeginSnapshot is non-blocking: it refcounts the newest published
//     entry (one mutex acquisition, no gates). Entries unpin when the last
//     transaction holding them closes AND a newer entry has superseded
//     them, in any order across threads (the CovarArenaView pin table).
//   * Pinned-path queries take the scheduler's ViewGate READ lock on just
//     the views they touch (a concurrent fold can rehash a view's hash map
//     and move its arena buffer; COW preserves payload bytes, not
//     addresses). Readers block — and are blocked by — only the applier's
//     fold into one of those same views, never the committer (CommitGate
//     is untouched), the compute stage (reader/reader), or other clients.
//
// LIFECYCLE. Construct the server AFTER the scheduler but BEFORE the first
// Push (the constructor pins the initial empty-database snapshot, which
// must not race a fold). Destroy it before the scheduler; the destructor
// unregisters the observer and synchronizes with any in-flight epoch
// callback. Transactions still open at destruction keep their snapshot
// alive (shared ownership) and must be closed before the strategy itself
// is destroyed. The server keeps serving after StreamScheduler::Finish —
// the final snapshot then covers the whole stream.
#ifndef RELBORG_SERVE_SNAPSHOT_SERVER_H_
#define RELBORG_SERVE_SNAPSHOT_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "ml/linear_regression.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/covariance.h"
#include "stream/stream_scheduler.h"
#include "util/check.h"
#include "util/timer.h"

namespace relborg {

/// Serving configuration.
struct ServeOptions {
  /// Staleness bound: publish a fresh snapshot every K maintained epochs.
  /// 1 = every epoch boundary (freshest reads, one pin/copy per epoch);
  /// larger values amortize snapshot publication against read staleness —
  /// a transaction's horizon then lags the maintained prefix by at most
  /// K - 1 epochs. Clamped to >= 1.
  size_t snapshot_every_epochs = 1;
};

namespace serve_internal {

// Detects the zero-copy pin protocol (CovarFivm): `Strategy::ServePin`
// plus PinServe / UnpinServe / CovarAt / GroupByAt. Strategies without it
// are served by copying Current() at the epoch boundary.
template <typename Strategy, typename = void>
struct HasServePin : std::false_type {};
template <typename Strategy>
struct HasServePin<Strategy, std::void_t<typename Strategy::ServePin>>
    : std::true_type {};

// One published snapshot entry. The copy-based primary template stores the
// covariance payload copied at the epoch boundary; the pinned
// specialization stores the strategy's per-view pin (released on
// destruction, from whichever thread drops the last reference).
template <typename Strategy, bool = HasServePin<Strategy>::value>
struct Entry {
  uint64_t horizon = 0;              // epochs maintained at publication
  std::vector<size_t> watermark;     // per-node committed rows at horizon
  int num_features = 0;
  CovarPayload covar;                // copied at the boundary
  Entry(uint64_t h, std::vector<size_t> wm, Strategy* strategy)
      : horizon(h), watermark(std::move(wm)) {
    CovarMatrix m = strategy->Current();
    num_features = m.num_features();
    covar = m.payload();
  }
};

template <typename Strategy>
struct Entry<Strategy, true> {
  uint64_t horizon = 0;
  std::vector<size_t> watermark;
  typename Strategy::ServePin pin;
  Strategy* strategy;  // for the unpin on release
  Entry(uint64_t h, std::vector<size_t> wm, Strategy* s)
      : horizon(h), watermark(std::move(wm)), pin(s->PinServe()), strategy(s) {}
  Entry(const Entry&) = delete;
  Entry& operator=(const Entry&) = delete;
  ~Entry() { strategy->UnpinServe(); }
};

}  // namespace serve_internal

/// Read front end over a live StreamScheduler<Strategy> (see the file
/// comment for the protocol and lifecycle).
///
/// THREAD SAFETY: BeginSnapshot / EndSnapshot / Covar / GroupBy /
/// TrainModel / horizon_epochs are safe from any number of client threads
/// concurrently with the pipeline. Construction and destruction belong to
/// one thread (the scheduler's owner).
template <typename Strategy>
class SnapshotServer : public StreamEpochObserver {
  static constexpr bool kPinned =
      serve_internal::HasServePin<Strategy>::value;
  using Entry = serve_internal::Entry<Strategy>;

 public:
  /// One open read transaction: a shared handle on a published snapshot.
  /// Copyable/movable; closing (EndSnapshot or destruction) releases the
  /// hold. All reads through one ReadTxn observe the same horizon.
  class ReadTxn {
   public:
    ReadTxn() = default;
    /// The number of stream epochs this snapshot covers.
    uint64_t horizon_epochs() const { return entry_->horizon; }
    /// Per-node committed-row watermark at the horizon (observability).
    const std::vector<size_t>& watermark() const { return entry_->watermark; }
    bool open() const { return entry_ != nullptr; }

   private:
    friend class SnapshotServer;
    explicit ReadTxn(std::shared_ptr<const Entry> entry)
        : entry_(std::move(entry)) {}
    std::shared_ptr<const Entry> entry_;
  };

  /// Registers the epoch observer and publishes the initial (empty-
  /// database, horizon 0) snapshot. Must run after the scheduler's
  /// construction and before its first Push.
  SnapshotServer(StreamScheduler<Strategy>* scheduler, const ShadowDb* db,
                 Strategy* strategy, const ServeOptions& options = {})
      : scheduler_(scheduler),
        db_(db),
        strategy_(strategy),
        options_(options),
        root_mask_(db->tree().num_nodes(), 0) {
    if (options_.snapshot_every_epochs == 0) {
      options_.snapshot_every_epochs = 1;
    }
    root_mask_[db->tree().root()] = 1;
    // Serve instruments live in the SCHEDULER's registry, so one
    // MetricsText() exposes the whole pipeline + serving surface.
    obs::MetricsRegistry& reg = scheduler_->metrics();
    read_latency_ = reg.GetHistogram("relborg_serve_read_latency_seconds",
                                     "Per-query serve read latency (Covar / "
                                     "GroupBy, gate wait included)");
    transactions_ = reg.GetCounter("relborg_serve_transactions_total",
                                   "Read transactions opened");
    reads_ = reg.GetCounter("relborg_serve_reads_total",
                            "Snapshot reads served (Covar + GroupBy)");
    snapshots_ = reg.GetCounter("relborg_serve_snapshots_published_total",
                                "Snapshot entries published (initial one "
                                "included)");
    models_ = reg.GetCounter("relborg_serve_models_trained_total",
                             "Ridge models trained over snapshots");
    Publish(0, std::vector<size_t>(db->tree().num_nodes(), 0));
    scheduler_->SetEpochObserver(this);
  }

  ~SnapshotServer() override {
    // Synchronizes with any in-flight callback; no new one can start.
    scheduler_->SetEpochObserver(nullptr);
  }

  SnapshotServer(const SnapshotServer&) = delete;
  SnapshotServer& operator=(const SnapshotServer&) = delete;

  /// Opens a read transaction on the newest published snapshot.
  /// Non-blocking (one mutex acquisition); never waits on the pipeline.
  ReadTxn BeginSnapshot() {
    transactions_->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    return ReadTxn(current_);
  }

  /// Closes a transaction. Dropping the last hold on a superseded
  /// snapshot releases its pins (any thread, any order).
  void EndSnapshot(ReadTxn* txn) { txn->entry_.reset(); }

  /// The covariance aggregate batch at the transaction's horizon.
  CovarMatrix Covar(const ReadTxn& txn) const {
    RELBORG_DCHECK(txn.open());
    obs::ThreadTraceScope trace_scope(scheduler_->trace(), "serve");
    obs::TraceSpan span("serve/covar", "serve",
                        static_cast<int64_t>(txn.horizon_epochs()));
    WallTimer timer;
    reads_->Inc();
    if constexpr (kPinned) {
      scheduler_->BeginViewRead(root_mask_);
      CovarMatrix m = strategy_->CovarAt(txn.entry_->pin);
      scheduler_->EndViewRead(root_mask_);
      read_latency_->Observe(timer.Seconds());
      return m;
    } else {
      CovarMatrix m(txn.entry_->num_features, txn.entry_->covar);
      read_latency_->Observe(timer.Seconds());
      return m;
    }
  }

  /// Group-by results at the horizon: node `v`'s view keys with their
  /// COUNT(*) payloads, sorted by key. Zero-copy strategies only
  /// (copy-based snapshots keep no per-view state).
  std::vector<std::pair<uint64_t, double>> GroupBy(const ReadTxn& txn,
                                                   int v) const {
    static_assert(kPinned,
                  "GroupBy requires a strategy with the ServePin protocol "
                  "(CovarFivm); copy-based snapshots keep no view state");
    RELBORG_DCHECK(txn.open());
    obs::ThreadTraceScope trace_scope(scheduler_->trace(), "serve");
    obs::TraceSpan span("serve/group-by", "serve",
                        static_cast<int64_t>(txn.horizon_epochs()), v);
    WallTimer timer;
    reads_->Inc();
    std::vector<uint8_t> mask(root_mask_.size(), 0);
    mask[v] = 1;
    scheduler_->BeginViewRead(mask);
    auto out = strategy_->GroupByAt(v, txn.entry_->pin);
    scheduler_->EndViewRead(mask);
    read_latency_->Observe(timer.Seconds());
    return out;
  }

  /// Trains (or warm-start-refreshes) the ridge model for `response` on
  /// the transaction's covariance snapshot. Consecutive calls for the same
  /// response resume gradient descent from the previous weights (Sec. 1.5
  /// of the paper) — the cache is shared across clients under a mutex.
  LinearModel TrainModel(const ReadTxn& txn, int response,
                         RidgeOptions options = {},
                         TrainInfo* info = nullptr) {
    CovarMatrix m = Covar(txn);
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      auto it = warm_.find(response);
      if (it != warm_.end()) options.warm_start = it->second;
    }
    LinearModel model = TrainRidgeGd(m, response, options, {}, info);
    models_->Inc();
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      warm_[response] = model.weights;
    }
    return model;
  }

  /// Horizon of the newest published snapshot (epochs maintained).
  uint64_t horizon_epochs() {
    std::lock_guard<std::mutex> lock(mu_);
    return current_->horizon;
  }

  /// Snapshots published so far (including the initial one).
  size_t published_snapshots() {
    std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }

  /// Prometheus-style exposition of the shared registry: the scheduler's
  /// pipeline instruments plus this server's serve instruments. Safe from
  /// any thread — this is the "metrics queryable through the serve layer"
  /// endpoint.
  std::string MetricsText() const { return scheduler_->MetricsText(); }

  /// The shared registry itself (e.g. for quantile queries on
  /// relborg_serve_read_latency_seconds).
  const obs::MetricsRegistry& metrics() const {
    return scheduler_->metrics();
  }

  /// StreamEpochObserver: runs on the APPLIER thread between epochs —
  /// the one point where pinning/copying strategy state cannot race a
  /// fold. Not part of the client API.
  void OnEpochMaintained(uint64_t id,
                         const std::vector<size_t>& watermark) override {
    if ((id + 1) % options_.snapshot_every_epochs != 0) return;
    Publish(id + 1, watermark);
  }

 private:
  void Publish(uint64_t horizon, std::vector<size_t> watermark) {
    // Runs on the applier thread (or the owner's at construction): the
    // instant lands in that thread's trace ring when tracing is on.
    RELBORG_TRACE_INSTANT("snapshot-publish", "serve",
                          static_cast<int64_t>(horizon), -1);
    auto entry = std::make_shared<const Entry>(horizon, std::move(watermark),
                                               strategy_);
    snapshots_->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(entry);  // superseded entry unpins on last release
    ++published_;
  }

  StreamScheduler<Strategy>* scheduler_;
  const ShadowDb* db_;
  Strategy* strategy_;
  ServeOptions options_;
  std::vector<uint8_t> root_mask_;  // view-gate mask: the root view only
  std::mutex mu_;                   // guards current_ + published_
  std::shared_ptr<const Entry> current_;
  size_t published_ = 0;
  std::mutex model_mu_;             // guards warm_
  std::map<int, std::vector<double>> warm_;  // response -> last weights
  // Serve instruments (registered in the scheduler's registry; stable for
  // the registry's lifetime). read_latency_/reads_ are written from const
  // read paths — the instruments are atomic, so they stay mutable.
  obs::Histogram* read_latency_ = nullptr;
  obs::Counter* transactions_ = nullptr;
  mutable obs::Counter* reads_ = nullptr;
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* models_ = nullptr;
};

}  // namespace relborg

#endif  // RELBORG_SERVE_SNAPSHOT_SERVER_H_
