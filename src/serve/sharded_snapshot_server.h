// Merged snapshot-consistent serving over a key-range SHARDED pipeline —
// one read surface across N independent shard pipelines
// (shard/sharded_stream_scheduler.h), returning the same answers a
// SnapshotServer over the equivalent unsharded pipeline would.
//
// THE MERGED-HORIZON PROBLEM. Each shard seals and maintains its own
// epochs at its own pace, so "the newest snapshot of every shard" is NOT a
// consistent cut of the source stream: shard 0 may have applied source
// batch 40 while shard 1 is still at batch 25. A merged read must pick one
// GLOBAL batch count b and, for every shard, a published snapshot whose
// state equals that shard's deliveries among the first b source batches —
// then the ring merge of the per-shard snapshots equals the unsharded
// aggregate after b batches exactly.
//
// HOW A CUT IS FOUND. The sharded scheduler logs every delivery as
// (global batch, cumulative delivered rows); because shard epochs are
// whole delivered batches, a snapshot's applied-row count (the sum of its
// watermark) maps EXACTLY to a delivery ordinal, and hence to the global
// batch interval [g_lo, g_hi) over which that shard state is current
// (ShardedStreamScheduler::DeliveryInterval). BeginMergedSnapshot takes
// b* = min over shards of the newest entry's interval end, then picks from
// each shard's ring of recent entries the one whose interval contains b*.
// Retained rings make the race window small; if some shard has already
// discarded every entry covering b* the begin fails kUnavailable and the
// caller retries — reads can degrade to failure, never to an inconsistent
// merge. A quiescent pipeline (after Finish, or paused) always succeeds:
// every newest interval is open-ended, so b* falls in all of them.
//
// The merge itself is the ring fold in ascending shard order (key-wise
// CovarSpanAdd semantics — see shard/shard_map.h for why the join
// distributes over the root partition): bit-identical across runs, and
// bit-identical to the unsharded answer whenever the payload sums are
// exactly representable (integer-valued features; the differential suite
// in tests/shard_test.cc pins this).
//
// Zero-copy strategies (CovarFivm's ServePin) serve pinned view bytes
// under each shard's view-gate read lock; copy-based strategies serve the
// payload copied at the shard's epoch boundary. Same entry machinery as
// serve/snapshot_server.h (serve_internal::Entry).
//
// RESUMED RUNS. While a Resume() replay is still inside some shard's
// restored prefix, that shard's snapshots cover deliveries the global log
// has not re-routed yet, so interval lookups fail and merged begins return
// kUnavailable; once the replay catches up past every restored prefix,
// merged reads succeed again. Likewise a quarantined (rejected) delivery
// permanently shifts its shard's delivered-row counts off the unsharded
// stream — later begins keep failing rather than serving a wrong merge.
//
// LIFECYCLE mirrors SnapshotServer: construct AFTER the sharded scheduler
// and BEFORE its first Push (initial empty/restored snapshots must not
// race a fold); destroy before the scheduler; open transactions keep their
// entries alive until closed.
#ifndef RELBORG_SERVE_SHARDED_SNAPSHOT_SERVER_H_
#define RELBORG_SERVE_SHARDED_SNAPSHOT_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ml/linear_regression.h"
#include "obs/metrics.h"
#include "ring/covariance.h"
#include "serve/snapshot_server.h"
#include "shard/sharded_stream_scheduler.h"
#include "util/check.h"
#include "util/timer.h"

namespace relborg {

/// Sharded serving configuration.
struct ShardedServeOptions {
  /// Per-shard staleness bound, as in ServeOptions (clamped to >= 1).
  size_t snapshot_every_epochs = 1;
  /// Published entries retained per shard for merged-cut selection. Larger
  /// rings tolerate more shard-progress skew between begins; 0 clamps to 1
  /// (newest only — begins then require near-lockstep shards).
  size_t retained_entries = 8;
  /// Attempts per BeginMergedSnapshot before giving up with kUnavailable
  /// (each attempt re-reads every shard's newest entries).
  size_t begin_attempts = 16;
};

/// Merged read front end over a live ShardedStreamScheduler<Strategy>.
///
/// THREAD SAFETY: BeginMergedSnapshot / EndSnapshot / Covar / GroupBy /
/// TrainModel are safe from any number of client threads concurrently with
/// the pipelines. Construction and destruction belong to the scheduler's
/// owner thread.
template <typename Strategy>
class ShardedSnapshotServer {
  static constexpr bool kPinned =
      serve_internal::HasServePin<Strategy>::value;
  using Entry = serve_internal::Entry<Strategy>;

 public:
  /// One open merged read transaction: a shared hold on one published
  /// entry per shard, all current at the same global batch count.
  class MergedReadTxn {
   public:
    MergedReadTxn() = default;
    /// The global cut: source batches covered by every read through this
    /// transaction.
    uint64_t global_batches() const { return global_batches_; }
    /// Shard s's epoch horizon at the cut (epochs this server observed —
    /// a resumed shard's restored prefix counts as horizon 0).
    uint64_t shard_horizon(int s) const { return entries_[s]->horizon; }
    bool open() const { return !entries_.empty(); }

   private:
    friend class ShardedSnapshotServer;
    std::vector<std::shared_ptr<const Entry>> entries_;
    uint64_t global_batches_ = 0;
  };

  /// Registers an epoch observer on every shard pipeline and publishes
  /// each shard's initial snapshot (the empty database — or the restored
  /// watermark when the scheduler was Resume()d). Must run after the
  /// scheduler's construction and before its first Push.
  ShardedSnapshotServer(ShardedStreamScheduler<Strategy>* sched,
                        const ShardedServeOptions& options = {})
      : sched_(sched), options_(options) {
    if (options_.snapshot_every_epochs == 0) options_.snapshot_every_epochs = 1;
    if (options_.retained_entries == 0) options_.retained_entries = 1;
    if (options_.begin_attempts == 0) options_.begin_attempts = 1;
    const int num_nodes = sched_->shadow(0).tree().num_nodes();
    root_mask_.assign(num_nodes, 0);
    root_mask_[sched_->shadow(0).tree().root()] = 1;
    read_latency_ = registry_.GetHistogram(
        "relborg_sharded_serve_read_latency_seconds",
        "Per-query merged serve read latency (gate waits included)");
    transactions_ = registry_.GetCounter(
        "relborg_sharded_serve_transactions_total",
        "Merged read transactions opened");
    failed_begins_ = registry_.GetCounter(
        "relborg_sharded_serve_begin_failures_total",
        "Merged begins that found no consistent cut");
    reads_ = registry_.GetCounter("relborg_sharded_serve_reads_total",
                                  "Merged snapshot reads served");
    snapshots_ = registry_.GetCounter(
        "relborg_sharded_serve_snapshots_published_total",
        "Per-shard snapshot entries published (initial ones included)");
    rings_.resize(static_cast<size_t>(sched_->num_shards()));
    observers_.reserve(rings_.size());
    for (int s = 0; s < sched_->num_shards(); ++s) {
      // Initial entry: whatever the shard starts from (empty, or the
      // restored checkpoint state on a resumed run).
      std::vector<size_t> wm(static_cast<size_t>(num_nodes), 0);
      for (int v = 0; v < num_nodes; ++v) {
        wm[static_cast<size_t>(v)] = sched_->shadow(s).committed_rows(v);
      }
      Publish(s, 0, std::move(wm));
      observers_.push_back(std::make_unique<ShardObserver>(this, s));
      sched_->scheduler(s)->SetEpochObserver(observers_.back().get());
    }
  }

  ~ShardedSnapshotServer() {
    // Synchronizes with any in-flight epoch callback per shard.
    for (int s = 0; s < sched_->num_shards(); ++s) {
      sched_->scheduler(s)->SetEpochObserver(nullptr);
    }
  }

  ShardedSnapshotServer(const ShardedSnapshotServer&) = delete;
  ShardedSnapshotServer& operator=(const ShardedSnapshotServer&) = delete;

  /// Opens a merged transaction on the newest consistent cut (see the file
  /// comment). kUnavailable when no retained entry combination forms one
  /// after `begin_attempts` tries — transient while shards race far apart
  /// or a Resume() replay is still inside a restored prefix; permanent
  /// after a quarantined delivery. Never blocks on the pipelines.
  Status BeginMergedSnapshot(MergedReadTxn* out) {
    transactions_->Inc();
    const int shards = sched_->num_shards();
    for (size_t attempt = 0; attempt < options_.begin_attempts; ++attempt) {
      // Snapshot every shard's retained ring (newest last), then work
      // lock-free on the shared_ptr copies.
      std::vector<std::vector<std::shared_ptr<const Entry>>> rings(
          static_cast<size_t>(shards));
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (int s = 0; s < shards; ++s) {
          const auto& ring = rings_[static_cast<size_t>(s)];
          rings[static_cast<size_t>(s)].assign(ring.begin(), ring.end());
        }
      }
      // The cut candidate: every shard's newest entry covers [lo, hi);
      // b* = min over shards of (hi - 1), open-ended intervals capped at
      // the current global batch count.
      uint64_t cut = sched_->global_batches();
      bool newest_ok = true;
      for (int s = 0; s < shards && newest_ok; ++s) {
        uint64_t lo = 0, hi = 0;
        newest_ok = Interval(s, *rings[s].back(), &lo, &hi);
        if (newest_ok && hi != UINT64_MAX && hi - 1 < cut) cut = hi - 1;
      }
      if (!newest_ok) continue;  // a shard mid-replay or mid-delivery
      MergedReadTxn txn;
      txn.entries_.resize(static_cast<size_t>(shards));
      txn.global_batches_ = cut;
      bool all = true;
      for (int s = 0; s < shards && all; ++s) {
        all = false;
        for (auto it = rings[s].rbegin(); it != rings[s].rend(); ++it) {
          uint64_t lo = 0, hi = 0;
          if (Interval(s, **it, &lo, &hi) && lo <= cut && cut < hi) {
            txn.entries_[static_cast<size_t>(s)] = *it;
            all = true;
            break;
          }
        }
      }
      if (all) {
        *out = std::move(txn);
        return Status::Ok();
      }
    }
    failed_begins_->Inc();
    return Status::Unavailable(
        "no consistent merged cut across shard snapshots");
  }

  /// Closes a merged transaction; superseded entries unpin on last hold.
  void EndSnapshot(MergedReadTxn* txn) {
    txn->entries_.clear();
    txn->global_batches_ = 0;
  }

  /// The merged covariance aggregate at the transaction's cut: per-shard
  /// snapshots ring-added in ascending shard order.
  CovarMatrix Covar(const MergedReadTxn& txn) const {
    RELBORG_DCHECK(txn.open());
    WallTimer timer;
    reads_->Inc();
    CovarPayload acc;
    int n = 0;
    for (int s = 0; s < sched_->num_shards(); ++s) {
      const Entry& entry = *txn.entries_[static_cast<size_t>(s)];
      if constexpr (kPinned) {
        StreamScheduler<Strategy>* shard = sched_->scheduler(s);
        shard->BeginViewRead(root_mask_);
        CovarMatrix m = sched_->strategy(s)->CovarAt(entry.pin);
        shard->EndViewRead(root_mask_);
        if (s == 0) {
          n = m.num_features();
          acc = CovarPayload::Zero(n);
        }
        CovarAddInPlace(&acc, m.payload());
      } else {
        if (s == 0) {
          n = entry.num_features;
          acc = CovarPayload::Zero(n);
        }
        CovarAddInPlace(&acc, entry.covar);
      }
    }
    read_latency_->Observe(timer.Seconds());
    return CovarMatrix(n, acc);
  }

  /// Group-by at the cut: node v's keys with their COUNT(*) payloads,
  /// sorted by key — the unsharded answer, reconstructed per v's position:
  /// only the ROOT's view aggregates over the partitioned root relation,
  /// so only it sums across shards; every other view is maintained over
  /// broadcast (replicated) relations, so at a consistent cut all shards
  /// hold the same result and one replica — shard 0's — IS the answer
  /// (summing would overcount N-fold). Zero-copy strategies only, as in
  /// SnapshotServer::GroupBy.
  std::vector<std::pair<uint64_t, double>> GroupBy(const MergedReadTxn& txn,
                                                   int v) const {
    static_assert(kPinned,
                  "GroupBy requires a strategy with the ServePin protocol "
                  "(CovarFivm); copy-based snapshots keep no view state");
    RELBORG_DCHECK(txn.open());
    WallTimer timer;
    reads_->Inc();
    std::vector<uint8_t> mask(root_mask_.size(), 0);
    mask[static_cast<size_t>(v)] = 1;
    const int shards =
        v == sched_->shadow(0).tree().root() ? sched_->num_shards() : 1;
    std::map<uint64_t, double> merged;
    for (int s = 0; s < shards; ++s) {
      StreamScheduler<Strategy>* shard = sched_->scheduler(s);
      shard->BeginViewRead(mask);
      auto part = sched_->strategy(s)->GroupByAt(
          v, txn.entries_[static_cast<size_t>(s)]->pin);
      shard->EndViewRead(mask);
      for (const std::pair<uint64_t, double>& kv : part) {
        merged[kv.first] += kv.second;
      }
    }
    read_latency_->Observe(timer.Seconds());
    return std::vector<std::pair<uint64_t, double>>(merged.begin(),
                                                    merged.end());
  }

  /// Trains the ridge model for `response` on the merged covariance at the
  /// cut, warm-starting from the last weights for that response (shared
  /// cache, as in SnapshotServer::TrainModel).
  LinearModel TrainModel(const MergedReadTxn& txn, int response,
                         RidgeOptions options = {},
                         TrainInfo* info = nullptr) {
    CovarMatrix m = Covar(txn);
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      auto it = warm_.find(response);
      if (it != warm_.end()) options.warm_start = it->second;
    }
    LinearModel model = TrainRidgeGd(m, response, options, {}, info);
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      warm_[response] = model.weights;
    }
    return model;
  }

  /// Per-shard snapshot entries published so far (initial ones included).
  size_t published_snapshots() const {
    std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }

  /// One exposition across the whole sharded deployment: the scheduler's
  /// merged pipeline instruments (aggregate + per-shard series) followed
  /// by this server's merged-serve instruments.
  std::string MetricsText() const {
    return sched_->MetricsText() + registry_.ExpositionText();
  }

  /// The merged-serve registry itself (e.g. quantile queries on
  /// relborg_sharded_serve_read_latency_seconds).
  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  // Per-shard epoch-boundary hook: runs on that shard's APPLIER thread
  // between epochs, the one point where pinning/copying strategy state
  // cannot race a fold.
  struct ShardObserver : StreamEpochObserver {
    ShardObserver(ShardedSnapshotServer* owner, int shard)
        : owner(owner), shard(shard) {}
    void OnEpochMaintained(uint64_t id,
                           const std::vector<size_t>& watermark) override {
      if ((id + 1) % owner->options_.snapshot_every_epochs != 0) return;
      owner->Publish(shard, id + 1, watermark);
    }
    ShardedSnapshotServer* owner;
    int shard;
  };

  void Publish(int shard, uint64_t horizon, std::vector<size_t> watermark) {
    auto entry = std::make_shared<const Entry>(horizon, std::move(watermark),
                                               sched_->strategy(shard));
    snapshots_->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<std::shared_ptr<const Entry>>& ring =
        rings_[static_cast<size_t>(shard)];
    ring.push_back(std::move(entry));
    while (ring.size() > options_.retained_entries) ring.pop_front();
    ++published_;
  }

  // The global batch interval [*lo, *hi) over which `entry`'s shard state
  // is current — false while the delivery log has not (re-)routed the
  // entry's applied prefix (Resume replay) or after a quarantined delivery
  // shifted the shard's row counts.
  bool Interval(int shard, const Entry& entry, uint64_t* lo,
                uint64_t* hi) const {
    size_t applied = 0;
    for (size_t rows : entry.watermark) applied += rows;
    return sched_->DeliveryInterval(shard, applied, lo, hi);
  }

  ShardedStreamScheduler<Strategy>* sched_;
  ShardedServeOptions options_;
  std::vector<uint8_t> root_mask_;  // view-gate mask: the root view only
  std::vector<std::unique_ptr<ShardObserver>> observers_;
  mutable std::mutex mu_;  // guards rings_ + published_
  std::vector<std::deque<std::shared_ptr<const Entry>>> rings_;
  size_t published_ = 0;
  std::mutex model_mu_;                      // guards warm_
  std::map<int, std::vector<double>> warm_;  // response -> last weights
  // Merged-serve instruments (own registry; the shard pipelines keep
  // theirs). Written from const read paths — the instruments are atomic.
  obs::MetricsRegistry registry_;
  mutable obs::Histogram* read_latency_ = nullptr;
  obs::Counter* transactions_ = nullptr;
  obs::Counter* failed_begins_ = nullptr;
  mutable obs::Counter* reads_ = nullptr;
  obs::Counter* snapshots_ = nullptr;
};

}  // namespace relborg

#endif  // RELBORG_SERVE_SHARDED_SNAPSHOT_SERVER_H_
