#include "core/multiplicity.h"

#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {

std::vector<std::vector<double>> ComputeRowMultiplicities(
    const RootedTree& tree, const FilterSet& filters) {
  const int num_nodes = tree.num_nodes();
  RELBORG_CHECK(filters.empty() ||
                static_cast<int>(filters.size()) == num_nodes);

  // --- Up pass: subtree counts. up[v][key] = number of subtree(v) tuples
  // whose parent-edge key is `key`; sub_row[v][row] = subtree tuples using
  // that particular row (0 if the row dangles or fails its filter).
  std::vector<FlatHashMap<double>> up(num_nodes);
  std::vector<std::vector<double>> sub_row(num_nodes);
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    const std::vector<Predicate>* preds =
        filters.empty() ? nullptr : &filters[v];
    sub_row[v].assign(rel.num_rows(), 0.0);
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (preds != nullptr && !preds->empty() &&
          !RowPasses(rel, row, *preds)) {
        continue;
      }
      double m = 1.0;
      bool dangling = false;
      for (int c : node.children) {
        const double* cp = up[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr || *cp == 0.0) {
          dangling = true;
          break;
        }
        m *= *cp;
      }
      if (dangling) continue;
      sub_row[v][row] = m;
      up[v][tree.RowKeyToParent(v, row)] += m;
    }
  }

  // --- Down pass: context counts. down[v][key] = number of join tuples of
  // the *rest of the tree* (everything outside subtree(v)) compatible with
  // parent-edge key `key`. Root context is 1.
  std::vector<FlatHashMap<double>> down(num_nodes);
  // Preorder = reversed postorder (parents before children).
  const auto& post = tree.postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    int v = *it;
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    if (node.children.empty()) continue;
    const std::vector<Predicate>* preds =
        filters.empty() ? nullptr : &filters[v];
    const bool is_root = v == tree.root();
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (sub_row[v][row] == 0.0) continue;  // filtered or dangling
      if (preds != nullptr && !preds->empty() &&
          !RowPasses(rel, row, *preds)) {
        continue;
      }
      double ctx = 1.0;
      if (!is_root) {
        const double* d = down[v].Find(tree.RowKeyToParent(v, row));
        if (d == nullptr || *d == 0.0) continue;
        ctx = *d;
      }
      // For each child c: context(c) = ctx * prod_{c' != c} up[c'](key).
      // Computed via prefix/suffix products to stay linear in #children.
      const size_t k = node.children.size();
      std::vector<double> vals(k);
      for (size_t i = 0; i < k; ++i) {
        const double* cp =
            up[node.children[i]].Find(tree.RowKeyToChild(v, node.children[i],
                                                         row));
        vals[i] = cp == nullptr ? 0.0 : *cp;
      }
      std::vector<double> prefix(k + 1, 1.0);
      std::vector<double> suffix(k + 1, 1.0);
      for (size_t i = 0; i < k; ++i) prefix[i + 1] = prefix[i] * vals[i];
      for (size_t i = k; i > 0; --i) suffix[i - 1] = suffix[i] * vals[i - 1];
      for (size_t i = 0; i < k; ++i) {
        double others = prefix[i] * suffix[i + 1];
        if (others == 0.0) continue;
        down[node.children[i]][tree.RowKeyToChild(v, node.children[i], row)] +=
            ctx * others;
      }
    }
  }

  // Multiplicity of a row = (its subtree tuples) x (context of its key).
  std::vector<std::vector<double>> result(num_nodes);
  for (int v = 0; v < num_nodes; ++v) {
    const Relation& rel = tree.relation(v);
    result[v].assign(rel.num_rows(), 0.0);
    const bool is_root = v == tree.root();
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (sub_row[v][row] == 0.0) continue;
      double ctx = 1.0;
      if (!is_root) {
        const double* d = down[v].Find(tree.RowKeyToParent(v, row));
        ctx = d == nullptr ? 0.0 : *d;
      }
      result[v][row] = sub_row[v][row] * ctx;
    }
  }
  return result;
}

}  // namespace relborg
