#include "core/covar_compressed.h"

#include <algorithm>

#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

// Flat payload layout helpers: [0] count, [1..W] sums, then the upper
// triangle of the W x W second-moment matrix.
inline size_t PayloadSize(int width) {
  return 1 + width + UpperTriSize(width);
}
inline double& Count(std::vector<double>& p) { return p[0]; }
inline double* Sums(std::vector<double>& p) { return p.data() + 1; }
inline const double* Sums(const std::vector<double>& p) {
  return p.data() + 1;
}
inline double* Quad(std::vector<double>& p, int width) {
  return p.data() + 1 + width;
}
inline const double* Quad(const std::vector<double>& p, int width) {
  return p.data() + 1 + width;
}

struct NodeLayout {
  std::vector<int> subtree_features;           // global ids, sorted
  std::vector<std::pair<int, int>> own;        // (attr, local index)
  std::vector<std::vector<int>> child_remap;   // child-local -> local
  int width = 0;
};

// acc (over this node's width W) *= child payload b (over the child's
// width, remapped into acc via `remap`). Implements the covariance-ring
// product with the second operand zero outside the child's features.
void MulChildInPlace(std::vector<double>* acc, int width,
                     const std::vector<double>& b,
                     const std::vector<int>& remap) {
  const int child_width = static_cast<int>(remap.size());
  const double a0 = (*acc)[0];
  const double b0 = b[0];
  const double* as = Sums(*acc);
  const double* bs = Sums(b);
  const double* bq = Quad(b, child_width);
  double* q = Quad(*acc, width);

  // q = b0 * q_old  (+ cross terms and child quads below, all of which use
  // the OLD sums, so the sum update comes last).
  const size_t tri = UpperTriSize(width);
  for (size_t t = 0; t < tri; ++t) q[t] *= b0;
  // + a0 * b_quad at remapped positions.
  {
    size_t idx = 0;
    for (int a = 0; a < child_width; ++a) {
      for (int c = a; c < child_width; ++c, ++idx) {
        int i = remap[a];
        int j = remap[c];
        if (i > j) std::swap(i, j);
        q[UpperTriIndex(width, i, j)] += a0 * bq[idx];
      }
    }
  }
  // + cross terms a_s[i] * b_s[j] + b_s[i] * a_s[j]: loop each child
  // position g against every local j; the diagonal (j == g) needs the
  // factor 2 the symmetric formula produces.
  for (int a = 0; a < child_width; ++a) {
    const int g = remap[a];
    const double bg = bs[a];
    if (bg == 0.0) continue;
    for (int j = 0; j < width; ++j) {
      double term = bg * as[j];
      if (j == g) term *= 2.0;
      int i = g;
      int jj = j;
      if (i > jj) std::swap(i, jj);
      q[UpperTriIndex(width, i, jj)] += term;
    }
  }
  // Sums and count.
  double* s = Sums(*acc);
  for (int i = 0; i < width; ++i) s[i] *= b0;
  for (int a = 0; a < child_width; ++a) s[remap[a]] += a0 * bs[a];
  (*acc)[0] = a0 * b0;
}

void AddInPlace(std::vector<double>* dst, const std::vector<double>& src) {
  if (dst->empty()) {
    *dst = src;
    return;
  }
  RELBORG_DCHECK(dst->size() == src.size());
  for (size_t i = 0; i < src.size(); ++i) (*dst)[i] += src[i];
}

}  // namespace

CovarMatrix ComputeCovarMatrixCompressed(const RootedTree& tree,
                                         const FeatureMap& fm,
                                         const FilterSet& filters) {
  RELBORG_CHECK(filters.empty() ||
                static_cast<int>(filters.size()) == tree.num_nodes());
  const int num_nodes = tree.num_nodes();
  const int n = fm.num_features();

  // --- Plan per-node layouts bottom-up. ---
  std::vector<NodeLayout> layouts(num_nodes);
  for (int v : tree.postorder()) {
    NodeLayout& layout = layouts[v];
    for (const auto& [attr, f] : fm.NodeFeatures(v)) {
      layout.subtree_features.push_back(f);
    }
    for (int c : tree.node(v).children) {
      for (int f : layouts[c].subtree_features) {
        layout.subtree_features.push_back(f);
      }
    }
    std::sort(layout.subtree_features.begin(), layout.subtree_features.end());
    layout.width = static_cast<int>(layout.subtree_features.size());
    auto local_of = [&](int f) {
      return static_cast<int>(
          std::lower_bound(layout.subtree_features.begin(),
                           layout.subtree_features.end(), f) -
          layout.subtree_features.begin());
    };
    for (const auto& [attr, f] : fm.NodeFeatures(v)) {
      layout.own.push_back({attr, local_of(f)});
    }
    for (int c : tree.node(v).children) {
      std::vector<int> remap;
      remap.reserve(layouts[c].subtree_features.size());
      for (int f : layouts[c].subtree_features) remap.push_back(local_of(f));
      layout.child_remap.push_back(std::move(remap));
    }
  }

  // --- Bottom-up evaluation. ---
  std::vector<FlatHashMap<std::vector<double>>> views(num_nodes);
  std::vector<double> acc;
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    const NodeLayout& layout = layouts[v];
    const std::vector<Predicate>* preds =
        filters.empty() ? nullptr : &filters[v];
    const int width = layout.width;
    FlatHashMap<std::vector<double>>& out = views[v];
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (preds != nullptr && !preds->empty() &&
          !RowPasses(rel, row, *preds)) {
        continue;
      }
      // Lift: count 1, own feature sums and pairwise products.
      acc.assign(PayloadSize(width), 0.0);
      acc[0] = 1.0;
      double* s = Sums(acc);
      double* q = Quad(acc, width);
      for (const auto& [attr, local] : layout.own) {
        s[local] = rel.Double(row, attr);
      }
      for (size_t a = 0; a < layout.own.size(); ++a) {
        for (size_t b = a; b < layout.own.size(); ++b) {
          int i = layout.own[a].second;
          int j = layout.own[b].second;
          if (i > j) std::swap(i, j);
          q[UpperTriIndex(width, i, j)] = s[i] * s[j];
        }
      }
      // Multiply in the children's payloads.
      bool dangling = false;
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        int c = node.children[ci];
        const std::vector<double>* cp =
            views[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr || cp->empty()) {
          dangling = true;
          break;
        }
        MulChildInPlace(&acc, width, *cp, layout.child_remap[ci]);
      }
      if (dangling) continue;
      AddInPlace(&out[tree.RowKeyToParent(v, row)], acc);
    }
  }

  // --- Unpack the root payload into the full-width convention. ---
  CovarPayload payload = CovarPayload::Zero(n);
  const std::vector<double>* root = views[tree.root()].Find(kUnitKey);
  if (root != nullptr && !root->empty()) {
    const NodeLayout& layout = layouts[tree.root()];
    payload.count = (*root)[0];
    const double* s = Sums(*root);
    const double* q = Quad(*root, layout.width);
    for (int a = 0; a < layout.width; ++a) {
      payload.sum[layout.subtree_features[a]] = s[a];
      for (int b = a; b < layout.width; ++b) {
        int i = layout.subtree_features[a];
        int j = layout.subtree_features[b];
        if (i > j) std::swap(i, j);
        payload.quad[UpperTriIndex(n, i, j)] =
            q[UpperTriIndex(layout.width, a, b)];
      }
    }
  }
  return CovarMatrix(n, std::move(payload));
}

}  // namespace relborg
