// Execution policy for the aggregate engines: how many threads to use and
// how to partition relation scans for domain parallelism.
//
// The engines offer two plans:
//
//   * the LEGACY plan (ExecPolicy{} / threads == 0): one serial bottom-up
//     pass accumulating in row order — the canonical reference the
//     materialized baselines and the existing suites pin down;
//   * the PARTITIONED plan (threads >= 1): every relation scan is split
//     into fixed partitions, each partition accumulates serially in row
//     order into its own partial view, and partials are merged in
//     ascending partition order.
//
// The partitioned plan is DETERMINISTIC BY CONSTRUCTION: the partition
// boundaries are a pure function of the row count (never of the thread
// count), and every floating-point accumulation order is fixed by the
// (partition, row) structure, so ExecPolicy{1}, ExecPolicy{2} and
// ExecPolicy{4} produce bit-identical results — threads only decide who
// executes each partition, not what is summed in which order. The
// thread-sweep suite in tests/exec_policy_test.cc enforces this.
//
// Two-level parallelism: independent view groups of the view tree (nodes
// at the same depth have no view dependencies between them) run
// concurrently at the outer level, and each node's scan runs
// domain-parallel over its partitions at the inner level via the
// nest-safe ThreadPool::ParallelFor.
#ifndef RELBORG_CORE_EXEC_POLICY_H_
#define RELBORG_CORE_EXEC_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "query/join_tree.h"
#include "util/thread_pool.h"

namespace relborg {

struct ExecPolicy {
  // 0 selects the legacy serial plan; >= 1 selects the partitioned plan
  // executed with that many threads (1 = the same plan, run serially).
  int threads = 0;
  // Rows per partition. Partition boundaries depend on the row count and
  // this grain only — NEVER on `threads` — which is what makes the
  // partitioned plan's results independent of the thread count.
  size_t partition_grain = 2048;
  size_t max_partitions = 64;
  // Optional externally-owned pool; when null, ExecContext owns one.
  ThreadPool* pool = nullptr;

  bool enabled() const { return threads >= 1; }
  bool parallel() const { return threads > 1; }

  // Number of partitions for a scan of `rows` rows: a pure function of
  // (rows, partition_grain, max_partitions).
  size_t NumPartitions(size_t rows) const;

  // Thread count from RELBORG_THREADS, defaulting to the hardware
  // concurrency. Invalid values warn on stderr and fall back to the
  // default (benches additionally record the effective thread count in
  // every JSON record, so a misread knob is visible in the trajectory).
  static ExecPolicy FromEnv();
};

// Runtime companion of an ExecPolicy: borrows the policy's pool or a
// process-wide cached pool of the right size (pools are created once per
// distinct thread count and reused, so constructing an ExecContext per
// engine invocation costs no thread spawn/join), and hands out
// deterministic partition bounds.
class ExecContext {
 public:
  explicit ExecContext(const ExecPolicy& policy);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  const ExecPolicy& policy() const { return policy_; }
  bool enabled() const { return policy_.enabled(); }
  int threads() const { return policy_.threads; }

  // Runs fn(i) for i in [0, n): in ascending order on the calling thread
  // when serial, via the (nest-safe) pool otherwise. fn must only write
  // state owned by index i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) const;

  size_t NumPartitions(size_t rows) const {
    return policy_.NumPartitions(rows);
  }

  // Half-open row range of partition `part` of `parts` over [0, rows):
  // contiguous, ascending, exhaustive.
  static std::pair<size_t, size_t> PartitionBounds(size_t rows, size_t parts,
                                                   size_t part);

 private:
  ExecPolicy policy_;
  ThreadPool* pool_ = nullptr;  // borrowed (policy.pool or process cache)
};

// Independent view groups of a rooted join tree: nodes grouped by depth,
// deepest group first, node ids ascending within a group (the root is the
// last group). Views in one group only read views of deeper groups, so a
// group's nodes can be computed concurrently once all deeper groups are
// done.
std::vector<std::vector<int>> IndependentViewGroups(const RootedTree& tree);

// Per-node group index of IndependentViewGroups: group_of[v] == g iff v is
// in groups[g] (0 is the deepest group, the root group is last). The
// stream scheduler orders epoch ranges by this — same-group nodes are
// never ancestor/descendant, so their deltas can be computed concurrently.
std::vector<int> ViewGroupOf(const RootedTree& tree);

// Sets mask[u] = 1 for `node` and every ancestor of `node` up to the root
// (mask is indexed by node id and must already have num_nodes entries;
// already-marked entries short-circuit the walk). The union over a set of
// nodes is the read closure of view-tree maintenance for that set: a
// range's delta scan reads its own node and upward propagation reads
// strictly ancestors, so the stream scheduler may commit rows of any node
// OUTSIDE the closure concurrently with the set's maintenance.
void MarkAncestorClosure(const RootedTree& tree, int node,
                         std::vector<uint8_t>* mask);

// Sets mask[c] = 1 for every child of `node` (same indexing contract as
// MarkAncestorClosure). The children of a node are the READ set of its
// delta scan — what a speculative ComputeDelta probes — while the ancestor
// closure is the read set of the full maintenance pass.
void MarkChildren(const RootedTree& tree, int node,
                  std::vector<uint8_t>* mask);

// True iff the two node masks share a marked node. The stream scheduler's
// compute stage uses this to test a range's probe set against the write
// closures of epochs still in flight.
bool MasksIntersect(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b);

// Deterministic partitioned reduction over [0, rows): `scan(begin, end,
// &acc)` accumulates one partition serially in row order; `merge(out,
// &partial)` folds partials into *out serially in ascending partition
// order. With one partition (any disabled policy, or few rows) the scan
// writes straight into *out — byte-for-byte the legacy serial pass. The
// partition count is thread-independent, so every ExecPolicy{N >= 1}
// takes the same branch and produces identical results.
template <typename Partial, typename ScanFn, typename MergeFn>
void PartitionedScan(const ExecContext& ctx, size_t rows, Partial* out,
                     ScanFn&& scan, MergeFn&& merge) {
  const size_t parts = ctx.NumPartitions(rows);
  if (parts <= 1) {
    scan(0, rows, out);
    return;
  }
  std::vector<Partial> partials(parts);
  ctx.ParallelFor(parts, [&](size_t p) {
    const std::pair<size_t, size_t> b =
        ExecContext::PartitionBounds(rows, parts, p);
    scan(b.first, b.second, &partials[p]);
  });
  for (size_t p = 0; p < parts; ++p) merge(out, &partials[p]);
}

// Variant of PartitionedScan for scans that fan out into `n_slots` final
// accumulators (e.g. one per candidate of a decision-node batch). The scan
// receives a vector of slot pointers: the final accumulators themselves on
// the one-partition path (exactly the legacy pass), per-partition partials
// otherwise; `final_slot(k)` names the final accumulator and
// `merge(slot_k, &partial_k)` folds partials in ascending partition order.
// Same determinism contract as PartitionedScan.
template <typename Partial, typename FinalSlotFn, typename ScanFn,
          typename MergeFn>
void PartitionedSlotScan(const ExecContext& ctx, size_t rows, size_t n_slots,
                         FinalSlotFn&& final_slot, ScanFn&& scan,
                         MergeFn&& merge) {
  const size_t parts = ctx.NumPartitions(rows);
  if (parts <= 1) {
    std::vector<Partial*> slots(n_slots);
    for (size_t k = 0; k < n_slots; ++k) slots[k] = final_slot(k);
    scan(0, rows, slots);
    return;
  }
  std::vector<std::vector<Partial>> partials(parts);
  ctx.ParallelFor(parts, [&](size_t p) {
    const std::pair<size_t, size_t> b =
        ExecContext::PartitionBounds(rows, parts, p);
    partials[p].resize(n_slots);
    std::vector<Partial*> slots(n_slots);
    for (size_t k = 0; k < n_slots; ++k) slots[k] = &partials[p][k];
    scan(b.first, b.second, slots);
  });
  for (size_t p = 0; p < parts; ++p) {
    for (size_t k = 0; k < n_slots; ++k) {
      merge(final_slot(k), &partials[p][k]);
    }
  }
}

}  // namespace relborg

#endif  // RELBORG_CORE_EXEC_POLICY_H_
