// Covariance batches with SUBTREE-RESTRICTED payloads.
//
// The plain shared engine (core/covar_engine.h, ExecMode::kShared) carries
// full-width (all-features) covariance payloads in every view. LMFAO's
// generated code restricts each view's payload to the features of its own
// subtree: a view over Items carries 1 sum and 1 square, not the whole
// (n, n^2/2) block. Payload width then grows only along the path to the
// root, which shrinks both the views' memory and the per-tuple ring work —
// part of the "specialization" Sec. 4 of the paper credits for LMFAO's
// constants.
//
// Payload layout per node v with subtree feature set S_v (|S_v| = W):
//   flat double vector [count, s_0..s_{W-1}, upper-tri quad of W]
// Products remap child-local indices into the parent's local indices via
// precomputed tables.
#ifndef RELBORG_CORE_COVAR_COMPRESSED_H_
#define RELBORG_CORE_COVAR_COMPRESSED_H_

#include "core/feature_map.h"
#include "query/join_tree.h"
#include "query/predicate.h"
#include "ring/covariance.h"

namespace relborg {

// Same result as ComputeCovarMatrix, computed with subtree-restricted
// payloads.
CovarMatrix ComputeCovarMatrixCompressed(const RootedTree& tree,
                                         const FeatureMap& fm,
                                         const FilterSet& filters = {});

// Bytes a payload of the given feature width occupies (for the view-size
// accounting in benchmarks/tests).
inline size_t CompressedPayloadBytes(int width) {
  return (1 + width + UpperTriSize(width)) * sizeof(double);
}

}  // namespace relborg

#endif  // RELBORG_CORE_COVAR_COMPRESSED_H_
