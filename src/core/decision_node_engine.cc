#include "core/decision_node_engine.h"

#include "ring/covar_arena.h"
#include "ring/group_ring.h"
#include "util/check.h"

namespace relborg {
namespace {

// The regression batch maintains the n=1 covariance ring over the response:
// (count, sum, sum of squares), i.e. payload spans of kTripleStride doubles
// in arena storage (CovarArenaView keeps all of a view's triples in one
// contiguous buffer behind a FlatHashMap<uint32_t>). Decision-node batches
// are hot, so the per-row ring math runs on a register-resident Triple
// instead of the generic span kernels; the formulas are the n=1 covariance
// ring product and lift.
constexpr int kTripleN = 1;
constexpr size_t kTripleStride = 3;  // == CovarStride(kTripleN)

struct Triple {
  double c = 0;
  double s = 0;
  double q = 0;
};

inline Triple Mul(const Triple& a, const double* RELBORG_RESTRICT b) {
  return Triple{a.c * b[0], b[0] * a.s + a.c * b[1],
                b[0] * a.q + a.c * b[2] + 2 * a.s * b[1]};
}

inline void AddInPlace(double* RELBORG_RESTRICT dst, const Triple& src) {
  dst[0] += src.c;
  dst[1] += src.s;
  dst[2] += src.q;
}

const std::vector<Predicate>& NodeFilters(const FilterSet& filters, int v) {
  static const std::vector<Predicate> kNone;
  if (filters.empty()) return kNone;
  return filters[v];
}

// Groups candidate indices by their owning node.
std::vector<std::vector<size_t>> CandidatesByNode(
    int num_nodes, const std::vector<SplitCandidate>& candidates) {
  std::vector<std::vector<size_t>> by_node(num_nodes);
  for (size_t i = 0; i < candidates.size(); ++i) {
    RELBORG_CHECK(candidates[i].node >= 0 && candidates[i].node < num_nodes);
    by_node[candidates[i].node].push_back(i);
  }
  return by_node;
}

// Non-root node pass of the regression batch: rows [row_begin, row_end) of
// node v accumulated into *out.
void ScanTripleNode(const RootedTree& tree, const FilterSet& path_filters,
                    int v, int response_node, int response_attr,
                    const std::vector<CovarArenaView>& views,
                    size_t row_begin, size_t row_end, CovarArenaView* out) {
  const Relation& rel = tree.relation(v);
  const RootedNode& node = tree.node(v);
  const std::vector<Predicate>& preds = NodeFilters(path_filters, v);
  const bool has_response = v == response_node;
  out->Init(kTripleN);
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    Triple p{1, 0, 0};
    if (has_response) {
      double y = rel.Double(row, response_attr);
      p = Triple{1, y, y * y};
    }
    bool dangling = false;
    for (int c : node.children) {
      const double* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
      if (cp == nullptr) {
        dangling = true;
        break;
      }
      p = Mul(p, cp);
    }
    if (dangling) continue;
    AddInPlace(out->GetOrAdd(tree.RowKeyToParent(v, row)), p);
  }
}

// Root pass: rows [row_begin, row_end) of root r; each candidate owned by
// r accumulates into *outs[k] (pointers so the one-partition path writes
// the final stats directly, exactly like the serial engine).
void ScanTripleRoot(const RootedTree& tree, const FilterSet& path_filters,
                    int r, int response_node, int response_attr,
                    const std::vector<CovarArenaView>& views,
                    const std::vector<SplitCandidate>& candidates,
                    const std::vector<size_t>& owned, size_t row_begin,
                    size_t row_end, const std::vector<SplitStats*>& outs) {
  const Relation& rel = tree.relation(r);
  const RootedNode& node = tree.node(r);
  const std::vector<Predicate>& preds = NodeFilters(path_filters, r);
  const bool has_response = r == response_node;
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    Triple p{1, 0, 0};
    if (has_response) {
      double y = rel.Double(row, response_attr);
      p = Triple{1, y, y * y};
    }
    bool dangling = false;
    for (int c : node.children) {
      const double* cp = views[c].Find(tree.RowKeyToChild(r, c, row));
      if (cp == nullptr) {
        dangling = true;
        break;
      }
      p = Mul(p, cp);
    }
    if (dangling) continue;
    for (size_t k = 0; k < owned.size(); ++k) {
      if (candidates[owned[k]].pred.Matches(rel, row)) {
        outs[k]->count += p.c;
        outs[k]->sum += p.s;
        outs[k]->sum_sq += p.q;
      }
    }
  }
}

// One full per-root pass of the regression batch (views bottom-up, then the
// shared root scan), writing the owned candidates' stats into *stats.
void ProcessStatsRoot(const JoinQuery& query, int r, int response_node,
                      int response_attr, const FilterSet& path_filters,
                      const std::vector<SplitCandidate>& candidates,
                      const std::vector<size_t>& owned,
                      const ExecContext& ctx, std::vector<SplitStats>* stats) {
  RootedTree tree = query.Root(r);
  const int num_nodes = query.num_relations();
  std::vector<CovarArenaView> views(num_nodes);
  for (int v : tree.postorder()) {
    if (v == r) break;  // root handled below (postorder ends with root)
    views[v].Init(kTripleN);
    PartitionedScan<CovarArenaView>(
        ctx, tree.relation(v).num_rows(), &views[v],
        [&](size_t begin, size_t end, CovarArenaView* acc) {
          ScanTripleNode(tree, path_filters, v, response_node, response_attr,
                         views, begin, end, acc);
        },
        [&](CovarArenaView* out, CovarArenaView* partial) {
          partial->ForEach([&](uint64_t key, const double* span) {
            CovarSpanAdd(kTripleStride, out->GetOrAdd(key), span);
          });
        });
  }
  // Root scan: one pass serves every candidate owned by r.
  PartitionedSlotScan<SplitStats>(
      ctx, tree.relation(r).num_rows(), owned.size(),
      [&](size_t k) { return &(*stats)[owned[k]]; },
      [&](size_t begin, size_t end, const std::vector<SplitStats*>& slots) {
        ScanTripleRoot(tree, path_filters, r, response_node, response_attr,
                       views, candidates, owned, begin, end, slots);
      },
      [](SplitStats* out, SplitStats* partial) {
        out->count += partial->count;
        out->sum += partial->sum;
        out->sum_sq += partial->sum_sq;
      });
}

}  // namespace

std::vector<SplitStats> ComputeSplitStats(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates, const ExecPolicy& policy) {
  const int num_nodes = query.num_relations();
  std::vector<SplitStats> stats(candidates.size());
  std::vector<std::vector<size_t>> by_node =
      CandidatesByNode(num_nodes, candidates);
  std::vector<int> roots;
  for (int r = 0; r < num_nodes; ++r) {
    if (!by_node[r].empty()) roots.push_back(r);
  }

  ExecContext ctx(policy);
  // Each candidate-owning root is an independent view group: its pass only
  // writes stats of its own candidates. The inner level partitions every
  // relation scan of the pass.
  ctx.ParallelFor(roots.size(), [&](size_t ri) {
    int r = roots[ri];
    ProcessStatsRoot(query, r, response_node, response_attr, path_filters,
                     candidates, by_node[r], ctx, &stats);
  });
  return stats;
}

namespace {

// Classification lift: indicator payload keyed by the response class.
GroupPayload ClassLift(int v, int response_node, int response_attr,
                       const Relation& rel, size_t row) {
  if (v == response_node) {
    return GroupPayload::Single(GroupKeyHigh(rel.Cat(row, response_attr)),
                                1.0);
  }
  return GroupPayload::One();
}

// Non-root node pass of the classification batch.
void ScanClassNode(const RootedTree& tree, const FilterSet& path_filters,
                   int v, int response_node, int response_attr,
                   const std::vector<FlatHashMap<GroupPayload>>& views,
                   size_t row_begin, size_t row_end,
                   FlatHashMap<GroupPayload>* out) {
  const Relation& rel = tree.relation(v);
  const RootedNode& node = tree.node(v);
  const std::vector<Predicate>& preds = NodeFilters(path_filters, v);
  GroupPayload buf_a;
  GroupPayload buf_b;
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    GroupPayload p = ClassLift(v, response_node, response_attr, rel, row);
    GroupPayload* cur = &p;
    GroupPayload* nxt = &buf_a;
    bool dangling = false;
    for (int c : node.children) {
      const GroupPayload* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
      if (cp == nullptr || cp->empty()) {
        dangling = true;
        break;
      }
      GroupMulInto(*cur, *cp, nxt);
      cur = nxt;
      nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
    }
    if (dangling) continue;
    (*out)[tree.RowKeyToParent(v, row)].AddInPlace(*cur);
  }
}

// Root pass of the classification batch: per-candidate class-count maps,
// written through *outs[k] pointers (see ScanTripleRoot).
void ScanClassRoot(const RootedTree& tree, const FilterSet& path_filters,
                   int r, int response_node, int response_attr,
                   const std::vector<FlatHashMap<GroupPayload>>& views,
                   const std::vector<SplitCandidate>& candidates,
                   const std::vector<size_t>& owned, size_t row_begin,
                   size_t row_end,
                   const std::vector<FlatHashMap<double>*>& outs) {
  const Relation& rel = tree.relation(r);
  const RootedNode& node = tree.node(r);
  const std::vector<Predicate>& preds = NodeFilters(path_filters, r);
  GroupPayload buf_a;
  GroupPayload buf_b;
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    GroupPayload p = ClassLift(r, response_node, response_attr, rel, row);
    GroupPayload* cur = &p;
    GroupPayload* nxt = &buf_a;
    bool dangling = false;
    for (int c : node.children) {
      const GroupPayload* cp = views[c].Find(tree.RowKeyToChild(r, c, row));
      if (cp == nullptr || cp->empty()) {
        dangling = true;
        break;
      }
      GroupMulInto(*cur, *cp, nxt);
      cur = nxt;
      nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
    }
    if (dangling) continue;
    for (size_t k = 0; k < owned.size(); ++k) {
      if (candidates[owned[k]].pred.Matches(rel, row)) {
        for (const auto& e : cur->entries()) {
          (*outs[k])[PackKey1(UnpackHigh(e.key))] += e.value;
        }
      }
    }
  }
}

void ProcessClassRoot(const JoinQuery& query, int r, int response_node,
                      int response_attr, const FilterSet& path_filters,
                      const std::vector<SplitCandidate>& candidates,
                      const std::vector<size_t>& owned,
                      const ExecContext& ctx,
                      std::vector<FlatHashMap<double>>* counts) {
  RootedTree tree = query.Root(r);
  const int num_nodes = query.num_relations();
  std::vector<FlatHashMap<GroupPayload>> views(num_nodes);
  for (int v : tree.postorder()) {
    if (v == r) break;
    PartitionedScan<FlatHashMap<GroupPayload>>(
        ctx, tree.relation(v).num_rows(), &views[v],
        [&](size_t begin, size_t end, FlatHashMap<GroupPayload>* acc) {
          ScanClassNode(tree, path_filters, v, response_node, response_attr,
                        views, begin, end, acc);
        },
        [&](FlatHashMap<GroupPayload>* out,
            FlatHashMap<GroupPayload>* partial) {
          partial->ForEach([&](uint64_t key, const GroupPayload& p) {
            (*out)[key].AddInPlace(p);
          });
        });
  }
  PartitionedSlotScan<FlatHashMap<double>>(
      ctx, tree.relation(r).num_rows(), owned.size(),
      [&](size_t k) { return &(*counts)[owned[k]]; },
      [&](size_t begin, size_t end,
          const std::vector<FlatHashMap<double>*>& slots) {
        ScanClassRoot(tree, path_filters, r, response_node, response_attr,
                      views, candidates, owned, begin, end, slots);
      },
      [](FlatHashMap<double>* out, FlatHashMap<double>* partial) {
        partial->ForEach([&](uint64_t key, const double& value) {
          (*out)[key] += value;
        });
      });
}

}  // namespace

std::vector<FlatHashMap<double>> ComputeSplitClassCounts(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates, const ExecPolicy& policy) {
  const int num_nodes = query.num_relations();
  std::vector<FlatHashMap<double>> counts(candidates.size());
  std::vector<std::vector<size_t>> by_node =
      CandidatesByNode(num_nodes, candidates);
  std::vector<int> roots;
  for (int r = 0; r < num_nodes; ++r) {
    if (!by_node[r].empty()) roots.push_back(r);
  }

  ExecContext ctx(policy);
  ctx.ParallelFor(roots.size(), [&](size_t ri) {
    int r = roots[ri];
    ProcessClassRoot(query, r, response_node, response_attr, path_filters,
                     candidates, by_node[r], ctx, &counts);
  });
  return counts;
}

}  // namespace relborg
