#include "core/decision_node_engine.h"

#include "ring/group_ring.h"
#include "util/check.h"

namespace relborg {
namespace {

// Scalar covariance-ring payload specialized to a single feature (the
// response): (count, sum, sum of squares). This is the n=1 covariance ring
// without the vector/matrix indirection — decision-node batches are hot.
struct Triple {
  double c = 0;
  double s = 0;
  double q = 0;
};

inline Triple Mul(const Triple& a, const Triple& b) {
  return Triple{a.c * b.c, b.c * a.s + a.c * b.s,
                b.c * a.q + a.c * b.q + 2 * a.s * b.s};
}

inline void AddInPlace(Triple* dst, const Triple& src) {
  dst->c += src.c;
  dst->s += src.s;
  dst->q += src.q;
}

const std::vector<Predicate>& NodeFilters(const FilterSet& filters, int v) {
  static const std::vector<Predicate> kNone;
  if (filters.empty()) return kNone;
  return filters[v];
}

// Groups candidate indices by their owning node.
std::vector<std::vector<size_t>> CandidatesByNode(
    int num_nodes, const std::vector<SplitCandidate>& candidates) {
  std::vector<std::vector<size_t>> by_node(num_nodes);
  for (size_t i = 0; i < candidates.size(); ++i) {
    RELBORG_CHECK(candidates[i].node >= 0 && candidates[i].node < num_nodes);
    by_node[candidates[i].node].push_back(i);
  }
  return by_node;
}

}  // namespace

std::vector<SplitStats> ComputeSplitStats(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates) {
  const int num_nodes = query.num_relations();
  std::vector<SplitStats> stats(candidates.size());
  std::vector<std::vector<size_t>> by_node =
      CandidatesByNode(num_nodes, candidates);

  for (int r = 0; r < num_nodes; ++r) {
    if (by_node[r].empty()) continue;
    RootedTree tree = query.Root(r);
    // Bottom-up views for every node except the root r.
    std::vector<FlatHashMap<Triple>> views(num_nodes);
    for (int v : tree.postorder()) {
      const Relation& rel = tree.relation(v);
      const RootedNode& node = tree.node(v);
      const std::vector<Predicate>& preds = NodeFilters(path_filters, v);
      const bool has_response = v == response_node;
      if (v == r) break;  // root handled below (postorder ends with root)
      FlatHashMap<Triple>& out = views[v];
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
        Triple p{1, 0, 0};
        if (has_response) {
          double y = rel.Double(row, response_attr);
          p = Triple{1, y, y * y};
        }
        bool dangling = false;
        for (int c : node.children) {
          const Triple* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
          if (cp == nullptr) {
            dangling = true;
            break;
          }
          p = Mul(p, *cp);
        }
        if (dangling) continue;
        AddInPlace(&out[tree.RowKeyToParent(v, row)], p);
      }
    }
    // Root scan: one pass serves every candidate owned by r.
    const Relation& rel = tree.relation(r);
    const RootedNode& node = tree.node(r);
    const std::vector<Predicate>& preds = NodeFilters(path_filters, r);
    const bool has_response = r == response_node;
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
      Triple p{1, 0, 0};
      if (has_response) {
        double y = rel.Double(row, response_attr);
        p = Triple{1, y, y * y};
      }
      bool dangling = false;
      for (int c : node.children) {
        const Triple* cp = views[c].Find(tree.RowKeyToChild(r, c, row));
        if (cp == nullptr) {
          dangling = true;
          break;
        }
        p = Mul(p, *cp);
      }
      if (dangling) continue;
      for (size_t idx : by_node[r]) {
        if (candidates[idx].pred.Matches(rel, row)) {
          stats[idx].count += p.c;
          stats[idx].sum += p.s;
          stats[idx].sum_sq += p.q;
        }
      }
    }
  }
  return stats;
}

std::vector<FlatHashMap<double>> ComputeSplitClassCounts(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates) {
  const int num_nodes = query.num_relations();
  std::vector<FlatHashMap<double>> counts(candidates.size());
  std::vector<std::vector<size_t>> by_node =
      CandidatesByNode(num_nodes, candidates);

  for (int r = 0; r < num_nodes; ++r) {
    if (by_node[r].empty()) continue;
    RootedTree tree = query.Root(r);
    std::vector<FlatHashMap<GroupPayload>> views(num_nodes);
    GroupPayload buf_a;
    GroupPayload buf_b;
    auto lift = [&](int v, const Relation& rel, size_t row) {
      if (v == response_node) {
        return GroupPayload::Single(GroupKeyHigh(rel.Cat(row, response_attr)),
                                    1.0);
      }
      return GroupPayload::One();
    };
    for (int v : tree.postorder()) {
      if (v == r) break;
      const Relation& rel = tree.relation(v);
      const RootedNode& node = tree.node(v);
      const std::vector<Predicate>& preds = NodeFilters(path_filters, v);
      FlatHashMap<GroupPayload>& out = views[v];
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
        GroupPayload p = lift(v, rel, row);
        GroupPayload* cur = &p;
        GroupPayload* nxt = &buf_a;
        bool dangling = false;
        for (int c : node.children) {
          const GroupPayload* cp =
              views[c].Find(tree.RowKeyToChild(v, c, row));
          if (cp == nullptr || cp->empty()) {
            dangling = true;
            break;
          }
          GroupMulInto(*cur, *cp, nxt);
          cur = nxt;
          nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
        }
        if (dangling) continue;
        out[tree.RowKeyToParent(v, row)].AddInPlace(*cur);
      }
    }
    const Relation& rel = tree.relation(r);
    const RootedNode& node = tree.node(r);
    const std::vector<Predicate>& preds = NodeFilters(path_filters, r);
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
      GroupPayload p = lift(r, rel, row);
      GroupPayload* cur = &p;
      GroupPayload* nxt = &buf_a;
      bool dangling = false;
      for (int c : node.children) {
        const GroupPayload* cp = views[c].Find(tree.RowKeyToChild(r, c, row));
        if (cp == nullptr || cp->empty()) {
          dangling = true;
          break;
        }
        GroupMulInto(*cur, *cp, nxt);
        cur = nxt;
        nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
      }
      if (dangling) continue;
      for (size_t idx : by_node[r]) {
        if (candidates[idx].pred.Matches(rel, row)) {
          for (const auto& e : cur->entries()) {
            counts[idx][PackKey1(UnpackHigh(e.key))] += e.value;
          }
        }
      }
    }
  }
  return counts;
}

}  // namespace relborg
