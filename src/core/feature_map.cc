#include "core/feature_map.h"

#include "util/check.h"

namespace relborg {

FeatureMap::FeatureMap(const JoinQuery& query,
                       const std::vector<FeatureRef>& features) {
  node_features_.resize(query.num_relations());
  for (const FeatureRef& ref : features) {
    int node = query.IndexOf(ref.relation);
    const Relation* rel = query.relation(node);
    int attr = rel->schema().MustIndexOf(ref.attr);
    RELBORG_CHECK_MSG(rel->schema().attr(attr).type == AttrType::kDouble,
                      "covariance features must be continuous");
    int f = num_features();
    names_.push_back(ref.relation + "." + ref.attr);
    owner_node_.push_back(node);
    owner_attr_.push_back(attr);
    node_features_[node].push_back({attr, f});
  }
}

int FeatureMap::IndexOf(const std::string& relation,
                        const std::string& attr) const {
  std::string full = relation + "." + attr;
  for (int f = 0; f < num_features(); ++f) {
    if (names_[f] == full) return f;
  }
  return -1;
}

}  // namespace relborg
