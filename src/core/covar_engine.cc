#include "core/covar_engine.h"

#include <memory>
#include <vector>

#include "ring/covar_arena.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

const std::vector<Predicate>& NodeFilters(const FilterSet& filters, int v) {
  static const std::vector<Predicate> kNone;
  if (filters.empty()) return kNone;
  return filters[v];
}

// ---------------------------------------------------------------------------
// Shared execution: one pass, covariance-ring payloads in arena storage.
// Each view keeps its payloads in one contiguous CovarArena buffer; the
// per-row work is the fused CovarSpanLiftMulAdd kernel, so the hot loop
// never allocates and never materializes a lift payload.
// ---------------------------------------------------------------------------

using CovarView = CovarArenaView;

// Plan-time kernel metadata per join-tree node: the feature scope of each
// step of the node's child-product chain. Payloads are nonzero only on
// their subtree's features, so the scoped kernels skip the structural
// zeros; the scopes depend on the tree and the feature map only — never on
// rows or the thread count.
struct NodeKernelPlan {
  // chain[i] = scope after folding child i into the running product
  // (chain[0] additionally covers the node's own lifted features). Only
  // used with two or more children.
  std::vector<CovarScope> chain;
  // Single-child nodes: scope of the child's view for the fused add.
  CovarScope single;
};

std::vector<NodeKernelPlan> BuildKernelPlans(const RootedTree& tree,
                                             const FeatureMap& fm) {
  const int n = fm.num_features();
  std::vector<std::vector<int>> subtree(tree.num_nodes());
  std::vector<NodeKernelPlan> plans(tree.num_nodes());
  for (int v : tree.postorder()) {
    const RootedNode& node = tree.node(v);
    std::vector<int> own;
    for (const auto& [attr, f] : fm.NodeFeatures(v)) own.push_back(f);
    const size_t m = node.children.size();
    if (m == 1) {
      plans[v].single = CovarScope::Over(n, subtree[node.children[0]]);
    } else if (m >= 2) {
      std::vector<int> acc = own;
      for (size_t ci = 0; ci < m; ++ci) {
        const std::vector<int>& child = subtree[node.children[ci]];
        acc.insert(acc.end(), child.begin(), child.end());
        plans[v].chain.push_back(CovarScope::Over(n, acc));
      }
    }
    std::vector<int>& scope = subtree[v];
    scope = std::move(own);
    for (int c : node.children) {
      scope.insert(scope.end(), subtree[c].begin(), subtree[c].end());
    }
  }
  return plans;
}

// Computes the view of node v given its children's views. If `row_begin` /
// `row_end` restrict the scan, only that partition contributes (used for
// domain parallelism over the root).
void ComputeCovarNodeView(const RootedTree& tree, const FeatureMap& fm,
                          const FilterSet& filters, const NodeKernelPlan& plan,
                          int v, const std::vector<CovarView>& views,
                          size_t row_begin, size_t row_end, CovarView* out) {
  const Relation& rel = tree.relation(v);
  const RootedNode& node = tree.node(v);
  const std::vector<Predicate>& preds = NodeFilters(filters, v);
  const auto& feats = fm.NodeFeatures(v);
  const int n = fm.num_features();
  const size_t stride = CovarStride(n);
  out->Init(n);

  const size_t num_children = node.children.size();
  std::vector<std::pair<int, double>> feat_vals(feats.size());
  std::vector<const double*> child_spans(num_children);
  // One scratch intermediate per chain step (step i writes scratch[i] with
  // the SAME scope on every row, so entries outside that scope stay at
  // their zero initialization — the invariant the scoped kernels rely on).
  // With zero or one child the fused kernel needs no intermediate at all.
  std::vector<std::vector<double>> scratch(
      num_children >= 2 ? num_children - 1 : 0,
      std::vector<double>(stride, 0.0));
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    bool dangling = false;
    for (size_t ci = 0; ci < num_children; ++ci) {
      const int c = node.children[ci];
      const double* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
      if (cp == nullptr) {
        dangling = true;  // row has no join partner in subtree c
        break;
      }
      child_spans[ci] = cp;
    }
    if (dangling) continue;
    for (size_t k = 0; k < feats.size(); ++k) {
      feat_vals[k] = {feats[k].second, rel.Double(row, feats[k].first)};
    }
    double* dst = out->GetOrAdd(tree.RowKeyToParent(v, row));
    if (num_children == 0) {
      // Leaf: pure sparse update, O(#feats^2) per row.
      CovarSpanLiftMulAdd(n, feat_vals.data(), feat_vals.size(), /*sign=*/1.0,
                          nullptr, dst);
    } else if (num_children == 1) {
      // One fused kernel, no intermediate at all.
      if (plan.single.IsDense()) {
        CovarSpanLiftMulAdd(n, feat_vals.data(), feat_vals.size(),
                            /*sign=*/1.0, child_spans[0], dst);
      } else {
        CovarSpanLiftMulAddScoped(n, plan.single, feat_vals.data(),
                                  feat_vals.size(), /*sign=*/1.0,
                                  child_spans[0], dst);
      }
    } else {
      // Fold the sparse lift into the first child, chain the middle
      // children, and fuse the last product into the accumulator — every
      // step restricted to its live feature scope (contiguous dense
      // kernels once a step's scope covers all features).
      if (plan.chain[0].IsDense()) {
        CovarSpanLiftMul(n, feat_vals.data(), feat_vals.size(), /*sign=*/1.0,
                         child_spans[0], scratch[0].data());
      } else {
        CovarSpanLiftMulScoped(n, plan.chain[0], feat_vals.data(),
                               feat_vals.size(), /*sign=*/1.0, child_spans[0],
                               scratch[0].data());
      }
      for (size_t ci = 1; ci + 1 < num_children; ++ci) {
        if (plan.chain[ci].IsDense()) {
          CovarSpanMul(n, scratch[ci - 1].data(), child_spans[ci],
                       scratch[ci].data());
        } else {
          CovarSpanMulScoped(plan.chain[ci], scratch[ci - 1].data(),
                             child_spans[ci], scratch[ci].data());
        }
      }
      if (plan.chain[num_children - 1].IsDense()) {
        CovarSpanMulAdd(n, scratch[num_children - 2].data(),
                        child_spans[num_children - 1], dst);
      } else {
        CovarSpanMulAddScoped(plan.chain[num_children - 1],
                              scratch[num_children - 2].data(),
                              child_spans[num_children - 1], dst);
      }
    }
  }
}

CovarMatrix ComputeSharedCovar(const RootedTree& tree, const FeatureMap& fm,
                               const FilterSet& filters, bool parallel,
                               const ExecPolicy& policy) {
  const int num_nodes = tree.num_nodes();
  const int n = fm.num_features();
  std::vector<CovarView> views(num_nodes);
  const std::vector<NodeKernelPlan> plans = BuildKernelPlans(tree, fm);

  if (!parallel) {
    for (int v : tree.postorder()) {
      ComputeCovarNodeView(tree, fm, filters, plans[v], v, views, 0,
                           tree.relation(v).num_rows(), &views[v]);
    }
  } else {
    // Two-level parallel plan: independent view groups (same depth) run
    // concurrently, and each node's scan is domain-parallel over fixed
    // partitions via the nest-safe ParallelFor. Partition boundaries and
    // merge order never depend on the thread count, so the result is
    // bit-identical for every ExecPolicy{N >= 1}.
    ExecContext ctx(policy);
    const size_t stride = CovarStride(n);
    for (const std::vector<int>& group : IndependentViewGroups(tree)) {
      ctx.ParallelFor(group.size(), [&](size_t idx) {
        int v = group[idx];
        views[v].Init(n);
        PartitionedScan<CovarView>(
            ctx, tree.relation(v).num_rows(), &views[v],
            [&](size_t begin, size_t end, CovarView* acc) {
              ComputeCovarNodeView(tree, fm, filters, plans[v], v, views,
                                   begin, end, acc);
            },
            [&](CovarView* out, CovarView* partial) {
              // Partials arrive in ascending partition order; each span
              // folds with one contiguous add.
              partial->ForEach([&](uint64_t key, const double* span) {
                CovarSpanAdd(stride, out->GetOrAdd(key), span);
              });
            });
      });
    }
  }

  const double* result = views[tree.root()].Find(kUnitKey);
  return CovarMatrix(n, result == nullptr ? CovarPayload::Zero(n)
                                          : CovarPayloadFromSpan(n, result));
}

// ---------------------------------------------------------------------------
// Per-aggregate execution (specialized): one scalar pass per SUM(x_i * x_j).
// ---------------------------------------------------------------------------

double ComputeScalarSpecialized(const RootedTree& tree, const FilterSet& filters,
                                const std::vector<std::vector<int>>& mults) {
  std::vector<FlatHashMap<double>> views(tree.num_nodes());
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    const std::vector<Predicate>& preds = NodeFilters(filters, v);
    const std::vector<int>& node_mults = mults[v];
    FlatHashMap<double>& out = views[v];
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
      double m = 1.0;
      for (int attr : node_mults) m *= rel.Double(row, attr);
      bool dangling = false;
      for (int c : node.children) {
        const double* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr) {
          dangling = true;
          break;
        }
        m *= *cp;
      }
      if (dangling) continue;
      out[tree.RowKeyToParent(v, row)] += m;
    }
  }
  const double* result = views[tree.root()].Find(kUnitKey);
  return result == nullptr ? 0.0 : *result;
}

// ---------------------------------------------------------------------------
// Per-aggregate execution (interpreted): models a tuple-at-a-time engine
// without code specialization — each scanned tuple is materialized into a
// generic row buffer and expressions and key extractors are evaluated
// through virtual dispatch. This is the 1x baseline of the Figure 6
// ablation (AC/DC before LMFAO's compilation); the modeled cost is the
// interpretation overhead, so views use the same FlatHashMap as every
// other engine.
// ---------------------------------------------------------------------------

class Expr {
 public:
  virtual ~Expr() = default;
  // Evaluates over a materialized generic tuple.
  virtual double Eval(const double* tuple) const = 0;
};

class ConstExpr : public Expr {
 public:
  explicit ConstExpr(double v) : v_(v) {}
  double Eval(const double*) const override { return v_; }

 private:
  double v_;
};

class AttrExpr : public Expr {
 public:
  explicit AttrExpr(int attr) : attr_(attr) {}
  double Eval(const double* tuple) const override { return tuple[attr_]; }

 private:
  int attr_;
};

class MulExpr : public Expr {
 public:
  MulExpr(std::unique_ptr<Expr> l, std::unique_ptr<Expr> r)
      : l_(std::move(l)), r_(std::move(r)) {}
  double Eval(const double* tuple) const override {
    return l_->Eval(tuple) * r_->Eval(tuple);
  }

 private:
  std::unique_ptr<Expr> l_;
  std::unique_ptr<Expr> r_;
};

std::unique_ptr<Expr> BuildProductExpr(const std::vector<int>& attrs) {
  std::unique_ptr<Expr> e = std::make_unique<ConstExpr>(1.0);
  for (int a : attrs) {
    e = std::make_unique<MulExpr>(std::move(e), std::make_unique<AttrExpr>(a));
  }
  return e;
}

// Generic key extractor: packs key attributes read from the tuple buffer.
class KeyExpr {
 public:
  explicit KeyExpr(std::vector<int> attrs) : attrs_(std::move(attrs)) {}
  virtual ~KeyExpr() = default;
  virtual uint64_t Eval(const double* tuple) const {
    if (attrs_.empty()) return kUnitKey;
    if (attrs_.size() == 1) {
      return PackKey1(static_cast<int32_t>(tuple[attrs_[0]]));
    }
    return PackKey2(static_cast<int32_t>(tuple[attrs_[0]]),
                    static_cast<int32_t>(tuple[attrs_[1]]));
  }

 private:
  std::vector<int> attrs_;
};

double ComputeScalarInterpreted(const RootedTree& tree,
                                const FilterSet& filters,
                                const std::vector<std::vector<int>>& mults) {
  std::vector<FlatHashMap<double>> views(tree.num_nodes());
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    const std::vector<Predicate>& preds = NodeFilters(filters, v);
    std::unique_ptr<Expr> expr = BuildProductExpr(mults[v]);
    KeyExpr parent_key(node.key_attrs);
    std::vector<std::unique_ptr<KeyExpr>> child_keys;
    for (int c : node.children) {
      child_keys.push_back(std::make_unique<KeyExpr>(tree.node(c).parent_key_attrs));
    }
    auto& out = views[v];
    std::vector<double> tuple(rel.num_attrs());
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
      // Tuple-at-a-time: materialize the generic row buffer.
      for (int a = 0; a < rel.num_attrs(); ++a) {
        tuple[a] = rel.AsDouble(row, a);
      }
      double m = expr->Eval(tuple.data());
      bool dangling = false;
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        const double* cp =
            views[node.children[ci]].Find(child_keys[ci]->Eval(tuple.data()));
        if (cp == nullptr) {
          dangling = true;
          break;
        }
        m *= *cp;
      }
      if (dangling) continue;
      out[parent_key.Eval(tuple.data())] += m;
    }
  }
  const double* result = views[tree.root()].Find(kUnitKey);
  return result == nullptr ? 0.0 : *result;
}

// Per-node multiplier attribute lists for SUM(x_i * x_j); index n (== number
// of features) denotes the constant feature 1 and adds no multiplier.
std::vector<std::vector<int>> MultipliersFor(const RootedTree& tree,
                                             const FeatureMap& fm, int i,
                                             int j) {
  const int n = fm.num_features();
  std::vector<std::vector<int>> mults(tree.num_nodes());
  if (i < n) mults[fm.NodeOf(i)].push_back(fm.AttrOf(i));
  if (j < n) mults[fm.NodeOf(j)].push_back(fm.AttrOf(j));
  return mults;
}

}  // namespace

double ComputeScalarMoment(const RootedTree& tree, const FeatureMap& fm, int i,
                           int j, const FilterSet& filters, bool interpreted) {
  const int n = fm.num_features();
  RELBORG_CHECK(i >= 0 && i <= n && j >= 0 && j <= n);
  std::vector<std::vector<int>> mults = MultipliersFor(tree, fm, i, j);
  return interpreted ? ComputeScalarInterpreted(tree, filters, mults)
                     : ComputeScalarSpecialized(tree, filters, mults);
}

CovarMatrix ComputeCovarMatrix(const RootedTree& tree, const FeatureMap& fm,
                               const FilterSet& filters,
                               const CovarEngineOptions& options) {
  RELBORG_CHECK(filters.empty() ||
                static_cast<int>(filters.size()) == tree.num_nodes());
  const int n = fm.num_features();
  switch (options.mode) {
    case ExecMode::kShared:
      return ComputeSharedCovar(tree, fm, filters, /*parallel=*/false, {});
    case ExecMode::kSharedParallel: {
      ExecPolicy policy = options.policy;
      // Resolve only the thread count from the environment so a caller's
      // partition_grain / max_partitions customization survives.
      if (!policy.enabled()) policy.threads = ExecPolicy::FromEnv().threads;
      if (options.pool != nullptr) policy.pool = options.pool;
      return ComputeSharedCovar(tree, fm, filters, /*parallel=*/true, policy);
    }
    case ExecMode::kPerAggregate:
    case ExecMode::kPerAggregateInterpreted: {
      const bool interpreted =
          options.mode == ExecMode::kPerAggregateInterpreted;
      CovarPayload payload = CovarPayload::Zero(n);
      payload.count = ComputeScalarMoment(tree, fm, n, n, filters, interpreted);
      for (int i = 0; i < n; ++i) {
        payload.sum[i] = ComputeScalarMoment(tree, fm, i, n, filters,
                                             interpreted);
        for (int j = i; j < n; ++j) {
          payload.quad[UpperTriIndex(n, i, j)] =
              ComputeScalarMoment(tree, fm, i, j, filters, interpreted);
        }
      }
      return CovarMatrix(n, std::move(payload));
    }
  }
  RELBORG_CHECK(false);
  return CovarMatrix(0, CovarPayload::Zero(0));
}

}  // namespace relborg
