// Factorized evaluation of group-by aggregates (Sec. 2.1 of the paper):
//
//   SUM(m1 * m2 * ...) GROUP BY G1 [, G2]
//
// where the measures are continuous attributes (an empty measure list means
// COUNT(*)) and the group-by attributes are categorical attributes anywhere
// in the join tree. Group values travel up the tree inside group-ring
// payloads (the sparse-tensor encoding), so any root works; re-rooting is a
// performance choice, not a correctness requirement.
#ifndef RELBORG_CORE_GROUPBY_ENGINE_H_
#define RELBORG_CORE_GROUPBY_ENGINE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "query/join_tree.h"
#include "query/predicate.h"
#include "ring/group_ring.h"
#include "util/flat_hash_map.h"

namespace relborg {

struct GroupByAggregate {
  struct GroupBy {
    int node = -1;  // join-tree node owning the attribute
    int attr = -1;  // attribute index within that relation
    int slot = 0;   // 0 = high 32 bits of the group key, 1 = low 32 bits
  };

  // Product measure: (node, attr) pairs of continuous attributes. Empty
  // means COUNT(*). The same attribute may appear twice (squares).
  std::vector<std::pair<int, int>> measure;
  std::vector<GroupBy> group_by;  // at most 2, with distinct slots
};

// Result: canonical group key (see ring/group_ring.h) -> aggregate value.
// For aggregates without group-by the single entry has key kUnitKey.
using GroupByResult = FlatHashMap<double>;

// With the default (disabled) policy this is the canonical serial pass;
// an enabled policy selects the deterministic two-level parallel plan of
// core/exec_policy.h (bit-identical results for any thread count >= 1).
GroupByResult ComputeGroupBy(const RootedTree& tree,
                             const GroupByAggregate& agg,
                             const FilterSet& filters = {},
                             const ExecPolicy& policy = {});

// Evaluates a whole batch of group-by aggregates in ONE bottom-up pass:
// the relation scans, join-key computations and child-view probes are
// shared across the batch; each view entry carries one group-ring payload
// per aggregate. This is the LMFAO-style sharing applied to group-by
// batches (mutual information, sparse covariance, decision-node batches).
// The policy parameter behaves as in ComputeGroupBy.
std::vector<GroupByResult> ComputeGroupByBatch(
    const RootedTree& tree, const std::vector<GroupByAggregate>& aggs,
    const FilterSet& filters = {}, const ExecPolicy& policy = {});

// Convenience helpers for building aggregates against named attributes.
GroupByAggregate CountGroupedBy(const JoinQuery& query,
                                const std::string& rel1,
                                const std::string& attr1);
GroupByAggregate CountGroupedByPair(const JoinQuery& query,
                                    const std::string& rel1,
                                    const std::string& attr1,
                                    const std::string& rel2,
                                    const std::string& attr2);
GroupByAggregate SumGroupedBy(const JoinQuery& query,
                              const std::string& measure_rel,
                              const std::string& measure_attr,
                              const std::string& rel1,
                              const std::string& attr1);

}  // namespace relborg

#endif  // RELBORG_CORE_GROUPBY_ENGINE_H_
