// Shared evaluation of decision-tree node cost batches (Sec. 2.2).
//
// At a CART node, every candidate split (attribute, threshold/category-set)
// needs VARIANCE(Y) restricted by the node's path condition AND the split
// condition — i.e. the triple (COUNT, SUM(y), SUM(y^2)) per candidate (or
// per-class counts for classification). Evaluating each candidate as its
// own query is what the commercial systems of Fig. 4 effectively do; this
// engine instead shares work the LMFAO way: one pass per relation that owns
// candidates, with the rest of the join collapsed into factorized views
// computed once per pass.
#ifndef RELBORG_CORE_DECISION_NODE_ENGINE_H_
#define RELBORG_CORE_DECISION_NODE_ENGINE_H_

#include <vector>

#include "core/exec_policy.h"
#include "core/feature_map.h"
#include "query/join_tree.h"
#include "query/predicate.h"
#include "util/flat_hash_map.h"

namespace relborg {

// One candidate split: a predicate on an attribute of the relation at
// join-tree node `node`.
struct SplitCandidate {
  int node = -1;
  Predicate pred;
};

// Sufficient statistics of a regression split.
struct SplitStats {
  double count = 0;
  double sum = 0;     // SUM(y)
  double sum_sq = 0;  // SUM(y^2)

  double Variance() const {
    if (count <= 0) return 0;
    double mean = sum / count;
    double v = sum_sq / count - mean * mean;
    return v < 0 ? 0 : v;
  }
};

// Computes, for each candidate, the (count, sum_y, sumsq_y) triple over the
// join restricted by `path_filters` AND the candidate's predicate. The
// response is identified by (response_node, response_attr) and must be
// continuous. Candidates sharing a node share one pass. An enabled policy
// runs the per-root passes as independent view groups (outer level) with
// partitioned relation scans inside each pass (inner level); results are
// bit-identical for any thread count >= 1 (see core/exec_policy.h).
std::vector<SplitStats> ComputeSplitStats(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates,
    const ExecPolicy& policy = {});

// Classification variant: per-candidate counts per class of the categorical
// response. Result maps class code -> count. The policy parameter behaves
// as in ComputeSplitStats.
std::vector<FlatHashMap<double>> ComputeSplitClassCounts(
    const JoinQuery& query, int response_node, int response_attr,
    const FilterSet& path_filters,
    const std::vector<SplitCandidate>& candidates,
    const ExecPolicy& policy = {});

// Number of scalar aggregates the regression batch expands to (3 per
// candidate); used by the Fig. 5 aggregate-count table.
inline size_t DecisionNodeBatchSize(size_t num_candidates) {
  return 3 * num_candidates;
}

}  // namespace relborg

#endif  // RELBORG_CORE_DECISION_NODE_ENGINE_H_
