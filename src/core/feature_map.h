// Maps model features to (join-tree node, attribute) pairs and dense
// feature indices. The covariance engine, the ML layer, and the baselines
// all address features through this map so that the factorized and the
// materialized paths agree on feature order.
#ifndef RELBORG_CORE_FEATURE_MAP_H_
#define RELBORG_CORE_FEATURE_MAP_H_

#include <string>
#include <utility>
#include <vector>

#include "query/join_tree.h"

namespace relborg {

struct FeatureRef {
  std::string relation;
  std::string attr;
};

class FeatureMap {
 public:
  // Builds the map for `query`. Every referenced attribute must exist and be
  // continuous (categorical features are handled by the group-by engine's
  // sparse tensors, not by the covariance matrix).
  FeatureMap(const JoinQuery& query, const std::vector<FeatureRef>& features);

  int num_features() const { return static_cast<int>(names_.size()); }
  const std::string& name(int f) const { return names_[f]; }

  // Features owned by join-tree node `v`, as (attribute index, feature
  // index) pairs.
  const std::vector<std::pair<int, int>>& NodeFeatures(int v) const {
    return node_features_[v];
  }

  // Feature index of (relation, attr) or -1.
  int IndexOf(const std::string& relation, const std::string& attr) const;

  // Node owning feature f.
  int NodeOf(int f) const { return owner_node_[f]; }
  // Attribute index (within its relation) of feature f.
  int AttrOf(int f) const { return owner_attr_[f]; }

 private:
  std::vector<std::string> names_;  // "relation.attr"
  std::vector<int> owner_node_;
  std::vector<int> owner_attr_;
  std::vector<std::vector<std::pair<int, int>>> node_features_;
};

}  // namespace relborg

#endif  // RELBORG_CORE_FEATURE_MAP_H_
