// The GENERALIZED covariance batch of Sec. 2.1: interactions among
// continuous AND categorical features, with categorical interactions kept
// as sparse tensors (group-by aggregates) instead of one-hot columns:
//
//   SUM(xi * xj)                continuous x continuous   (dense block)
//   SUM(xi)    GROUP BY a       continuous x categorical  (sparse vector)
//   SUM(1)     GROUP BY a       categorical marginal
//   SUM(1)     GROUP BY a, b    categorical x categorical (sparse matrix)
//
// Only (pairs of) categories that occur in the join are represented — the
// paper's answer to one-hot blow-up (shortcoming (3) of Sec. 1.2). This is
// the sufficient statistic for ridge models with one-hot parameters
// (AC/DC-style in-database learning).
#ifndef RELBORG_CORE_SPARSE_COVAR_H_
#define RELBORG_CORE_SPARSE_COVAR_H_

#include <cstdint>
#include <vector>

#include "core/covar_engine.h"
#include "core/feature_map.h"
#include "query/join_tree.h"
#include "ring/covariance.h"
#include "util/flat_hash_map.h"

namespace relborg {

class SparseCovar {
 public:
  SparseCovar(CovarMatrix cont, int num_categorical)
      : cont_(std::move(cont)),
        cat_counts_(num_categorical),
        cat_sums_(num_categorical),
        pair_counts_(static_cast<size_t>(num_categorical) * num_categorical) {
    for (auto& s : cat_sums_) s.resize(cont_.num_features());
  }

  // Dense continuous block (index n = the constant feature / count).
  const CovarMatrix& continuous() const { return cont_; }
  int num_continuous() const { return cont_.num_features(); }
  int num_categorical() const { return static_cast<int>(cat_counts_.size()); }

  // COUNT GROUP BY categorical a; keyed by category code.
  FlatHashMap<double>& cat_count(int a) { return cat_counts_[a]; }
  const FlatHashMap<double>& cat_count(int a) const { return cat_counts_[a]; }

  // SUM(x_i) GROUP BY categorical a; keyed by category code.
  FlatHashMap<double>& cat_sum(int a, int i) { return cat_sums_[a][i]; }
  const FlatHashMap<double>& cat_sum(int a, int i) const {
    return cat_sums_[a][i];
  }

  // COUNT GROUP BY a, b (a < b); keyed by PackKey2(code_a, code_b).
  FlatHashMap<double>& pair_count(int a, int b) {
    return pair_counts_[a * num_categorical() + b];
  }
  const FlatHashMap<double>& pair_count(int a, int b) const {
    return pair_counts_[a * num_categorical() + b];
  }

  // Number of group-by aggregates materialized (Fig. 5 accounting).
  size_t num_aggregates() const;

 private:
  CovarMatrix cont_;
  std::vector<FlatHashMap<double>> cat_counts_;
  std::vector<std::vector<FlatHashMap<double>>> cat_sums_;
  std::vector<FlatHashMap<double>> pair_counts_;  // row-major, a < b used
};

// Computes the generalized batch: `fm` lists the continuous features
// (response included), `categoricals` the categorical features.
SparseCovar ComputeSparseCovar(const RootedTree& tree, const FeatureMap& fm,
                               const std::vector<FeatureRef>& categoricals,
                               const FilterSet& filters = {});

}  // namespace relborg

#endif  // RELBORG_CORE_SPARSE_COVAR_H_
