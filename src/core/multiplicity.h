// Join multiplicities: for every base-relation tuple, the number of join
// tuples it participates in, computed without materializing the join by an
// up-down pass over the join tree (counting ring up, context products
// down). Used by relational k-means (per-tuple coreset weights) and by the
// weighted quantile sketches of the decision-tree layer.
#ifndef RELBORG_CORE_MULTIPLICITY_H_
#define RELBORG_CORE_MULTIPLICITY_H_

#include <vector>

#include "query/join_tree.h"
#include "query/predicate.h"

namespace relborg {

// result[v][row] = number of tuples of the (filtered) join containing row
// `row` of the relation at node v. Rows failing their own filter get 0.
std::vector<std::vector<double>> ComputeRowMultiplicities(
    const RootedTree& tree, const FilterSet& filters = {});

}  // namespace relborg

#endif  // RELBORG_CORE_MULTIPLICITY_H_
