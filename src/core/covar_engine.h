// Factorized computation of the covariance-matrix aggregate batch
// (SUM(1), SUM(x_i), SUM(x_i * x_j) for all features) directly over the
// join tree of the feature-extraction query, without materializing the join.
//
// Four execution modes implement the optimization ladder of Figure 6 of the
// paper (each adds one optimization on top of the previous):
//
//   kPerAggregateInterpreted  one bottom-up pass per aggregate, evaluating
//                             an interpreted expression per tuple through
//                             virtual dispatch over a materialized generic
//                             row buffer. Models the unspecialized
//                             AC/DC-style baseline (1x).
//   kPerAggregate             + code specialization: static per-node
//                             multiplier lists, direct column reads. Still
//                             one pass per aggregate.
//   kShared                   + sharing: a single pass with the covariance
//                             ring computes the whole batch at once, with
//                             payloads in arena storage (ring/covar_arena.h)
//                             and the fused lift-multiply-accumulate kernel.
//   kSharedParallel           + parallelization: task parallelism across
//                             independent subtrees and domain parallelism
//                             over partitions of the root relation.
#ifndef RELBORG_CORE_COVAR_ENGINE_H_
#define RELBORG_CORE_COVAR_ENGINE_H_

#include "core/exec_policy.h"
#include "core/feature_map.h"
#include "query/join_tree.h"
#include "query/predicate.h"
#include "ring/covariance.h"
#include "util/thread_pool.h"

namespace relborg {

enum class ExecMode {
  kPerAggregateInterpreted,
  kPerAggregate,
  kShared,
  kSharedParallel,
};

struct CovarEngineOptions {
  ExecMode mode = ExecMode::kShared;
  // Legacy pool injection for kSharedParallel; preferred over creating one
  // in the ExecContext when set.
  ThreadPool* pool = nullptr;
  // Execution policy for kSharedParallel. The default (threads == 0) is
  // resolved through ExecPolicy::FromEnv() at evaluation time; pass an
  // explicit ExecPolicy{N} for a fixed thread count. Results are
  // bit-identical for every N >= 1 (see core/exec_policy.h).
  ExecPolicy policy;
};

// Computes the full covariance batch over the join defined by `tree`.
// `filters` may be empty (no predicates) or have one entry per node.
CovarMatrix ComputeCovarMatrix(const RootedTree& tree, const FeatureMap& fm,
                               const FilterSet& filters = {},
                               const CovarEngineOptions& options = {});

// Single scalar aggregate SUM(x_i * x_j) over the join, where index
// fm.num_features() denotes the constant 1 (so (n, n) is the count).
// Exposed for the per-aggregate baselines and tests.
double ComputeScalarMoment(const RootedTree& tree, const FeatureMap& fm,
                           int i, int j, const FilterSet& filters = {},
                           bool interpreted = false);

// Number of aggregates in the covariance batch for n features (including
// SUM(1) and the response column): (n+1)(n+2)/2.
inline size_t CovarBatchSize(int n) {
  return static_cast<size_t>(n + 1) * (n + 2) / 2;
}

}  // namespace relborg

#endif  // RELBORG_CORE_COVAR_ENGINE_H_
