#include "core/exec_policy.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace relborg {
namespace {

// One shared pool per distinct worker count, created on first use and kept
// for the process lifetime (like ThreadPool::Default()). Engines construct
// an ExecContext per invocation, so pools must not be spawned per call —
// the spawn/join would land inside every measured region.
ThreadPool* CachedPool(int workers) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<ThreadPool>>* pools =
      new std::map<int, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = (*pools)[workers];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(workers);
  return pool.get();
}

}  // namespace

size_t ExecPolicy::NumPartitions(size_t rows) const {
  if (!enabled()) return 1;
  const size_t grain = std::max<size_t>(1, partition_grain);
  size_t parts = rows == 0 ? 1 : (rows + grain - 1) / grain;
  return std::min(std::max<size_t>(parts, 1),
                  std::max<size_t>(1, max_partitions));
}

ExecPolicy ExecPolicy::FromEnv() {
  ExecPolicy policy;
  policy.threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const char* env = std::getenv("RELBORG_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      policy.threads = static_cast<int>(v);
    } else {
      std::fprintf(stderr,
                   "RELBORG_THREADS='%s' is not an integer in [1, 1024]; "
                   "using %d threads\n",
                   env, policy.threads);
    }
  }
  return policy;
}

ExecContext::ExecContext(const ExecPolicy& policy) : policy_(policy) {
  if (policy_.parallel()) {
    if (policy_.pool != nullptr) {
      pool_ = policy_.pool;
    } else {
      // ParallelFor runs on the calling thread too, so threads - 1 workers
      // give `threads` concurrent executors.
      pool_ = CachedPool(policy_.threads - 1);
    }
  }
}

ExecContext::~ExecContext() = default;

void ExecContext::ParallelFor(size_t n,
                              const std::function<void(size_t)>& fn) const {
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(n, fn);
}

std::pair<size_t, size_t> ExecContext::PartitionBounds(size_t rows,
                                                       size_t parts,
                                                       size_t part) {
  RELBORG_CHECK(parts >= 1 && part < parts);
  return {rows * part / parts, rows * (part + 1) / parts};
}

std::vector<std::vector<int>> IndependentViewGroups(const RootedTree& tree) {
  const int num_nodes = tree.num_nodes();
  std::vector<int> depth(num_nodes, 0);
  int max_depth = 0;
  // Preorder (= reversed postorder) visits parents before children.
  const std::vector<int>& post = tree.postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    int v = *it;
    int p = tree.node(v).parent;
    depth[v] = p < 0 ? 0 : depth[p] + 1;
    max_depth = std::max(max_depth, depth[v]);
  }
  std::vector<std::vector<int>> groups(max_depth + 1);
  for (int v = 0; v < num_nodes; ++v) {
    // Node ids ascend within a group; groups[0] is the deepest level.
    groups[max_depth - depth[v]].push_back(v);
  }
  return groups;
}

std::vector<int> ViewGroupOf(const RootedTree& tree) {
  const std::vector<std::vector<int>> groups = IndependentViewGroups(tree);
  std::vector<int> group_of(tree.num_nodes(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int v : groups[g]) group_of[v] = static_cast<int>(g);
  }
  return group_of;
}

void MarkAncestorClosure(const RootedTree& tree, int node,
                         std::vector<uint8_t>* mask) {
  for (int v = node; v >= 0; v = tree.node(v).parent) {
    if ((*mask)[v]) return;  // the rest of the path is already marked
    (*mask)[v] = 1;
  }
}

void MarkChildren(const RootedTree& tree, int node,
                  std::vector<uint8_t>* mask) {
  for (int c : tree.node(node).children) (*mask)[c] = 1;
}

bool MasksIntersect(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t v = 0; v < n; ++v) {
    if (a[v] && b[v]) return true;
  }
  return false;
}

}  // namespace relborg
