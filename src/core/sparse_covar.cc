#include "core/sparse_covar.h"

#include "core/groupby_engine.h"
#include "util/check.h"

namespace relborg {

size_t SparseCovar::num_aggregates() const {
  const int m = num_categorical();
  // 1 count per categorical, n sums per categorical, one pair count per
  // unordered categorical pair, plus the dense block.
  return CovarBatchSize(num_continuous()) +
         static_cast<size_t>(m) * (1 + num_continuous()) +
         static_cast<size_t>(m) * (m - 1) / 2;
}

SparseCovar ComputeSparseCovar(const RootedTree& tree, const FeatureMap& fm,
                               const std::vector<FeatureRef>& categoricals,
                               const FilterSet& filters) {
  const JoinQuery& query = tree.query();
  SparseCovar result(ComputeCovarMatrix(tree, fm, filters),
                     static_cast<int>(categoricals.size()));

  // Build the whole group-by batch and evaluate it in ONE shared pass.
  std::vector<GroupByAggregate> batch;
  struct Sink {
    enum Kind { kCount, kSum, kPair } kind;
    int a;
    int b_or_i;
  };
  std::vector<Sink> sinks;
  for (size_t a = 0; a < categoricals.size(); ++a) {
    batch.push_back(CountGroupedBy(query, categoricals[a].relation,
                                   categoricals[a].attr));
    sinks.push_back({Sink::kCount, static_cast<int>(a), 0});
    for (int i = 0; i < fm.num_features(); ++i) {
      const Relation& rel = tree.relation(fm.NodeOf(i));
      batch.push_back(SumGroupedBy(
          query, rel.name(), rel.schema().attr(fm.AttrOf(i)).name,
          categoricals[a].relation, categoricals[a].attr));
      sinks.push_back({Sink::kSum, static_cast<int>(a), i});
    }
    for (size_t b = a + 1; b < categoricals.size(); ++b) {
      batch.push_back(CountGroupedByPair(
          query, categoricals[a].relation, categoricals[a].attr,
          categoricals[b].relation, categoricals[b].attr));
      sinks.push_back({Sink::kPair, static_cast<int>(a),
                       static_cast<int>(b)});
    }
  }
  std::vector<GroupByResult> results = ComputeGroupByBatch(tree, batch,
                                                           filters);
  for (size_t q = 0; q < results.size(); ++q) {
    const Sink& sink = sinks[q];
    switch (sink.kind) {
      case Sink::kCount:
        results[q].ForEach([&](uint64_t key, double c) {
          result.cat_count(sink.a)[PackKey1(UnpackHigh(key))] = c;
        });
        break;
      case Sink::kSum:
        results[q].ForEach([&](uint64_t key, double s) {
          result.cat_sum(sink.a, sink.b_or_i)[PackKey1(UnpackHigh(key))] = s;
        });
        break;
      case Sink::kPair:
        results[q].ForEach([&](uint64_t key, double c) {
          result.pair_count(sink.a, sink.b_or_i)[key] = c;
        });
        break;
    }
  }
  return result;
}

}  // namespace relborg
