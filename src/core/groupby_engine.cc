#include "core/groupby_engine.h"

#include "util/check.h"

namespace relborg {
namespace {

const std::vector<Predicate>& NodeFilters(const FilterSet& filters, int v) {
  static const std::vector<Predicate> kNone;
  if (filters.empty()) return kNone;
  return filters[v];
}

// Scans rows [row_begin, row_end) of node v and accumulates its view
// entries into *out (which may be a per-partition partial view).
void ScanGroupByNode(const RootedTree& tree, const FilterSet& filters, int v,
                     const std::vector<std::vector<int>>& measures,
                     const std::vector<std::vector<GroupByAggregate::GroupBy>>&
                         groups,
                     const std::vector<FlatHashMap<GroupPayload>>& views,
                     size_t row_begin, size_t row_end,
                     FlatHashMap<GroupPayload>* out) {
  const Relation& rel = tree.relation(v);
  const RootedNode& node = tree.node(v);
  const std::vector<Predicate>& preds = NodeFilters(filters, v);
  GroupPayload buf_a;
  GroupPayload buf_b;
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!preds.empty() && !RowPasses(rel, row, preds)) continue;
    // Lift: measure product and local group key.
    double m = 1.0;
    for (int attr : measures[v]) m *= rel.Double(row, attr);
    uint64_t key = kScalarGroupKey;
    for (const auto& g : groups[v]) {
      uint64_t part = g.slot == 0 ? GroupKeyHigh(rel.Cat(row, g.attr))
                                  : GroupKeyLow(rel.Cat(row, g.attr));
      key = MergeGroupKeys(key, part);
    }
    GroupPayload lift = GroupPayload::Single(key, m);
    GroupPayload* cur = &lift;
    GroupPayload* nxt = &buf_a;
    bool dangling = false;
    for (int c : node.children) {
      const GroupPayload* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
      if (cp == nullptr || cp->empty()) {
        dangling = true;
        break;
      }
      GroupMulInto(*cur, *cp, nxt);
      cur = nxt;
      nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
    }
    if (dangling) continue;
    (*out)[tree.RowKeyToParent(v, row)].AddInPlace(*cur);
  }
}

}  // namespace

GroupByResult ComputeGroupBy(const RootedTree& tree,
                             const GroupByAggregate& agg,
                             const FilterSet& filters,
                             const ExecPolicy& policy) {
  RELBORG_CHECK(agg.group_by.size() <= 2);
  RELBORG_CHECK(filters.empty() ||
                static_cast<int>(filters.size()) == tree.num_nodes());
  if (agg.group_by.size() == 2) {
    RELBORG_CHECK(agg.group_by[0].slot != agg.group_by[1].slot);
  }

  const int num_nodes = tree.num_nodes();
  // Per-node measure attributes and group-by descriptors.
  std::vector<std::vector<int>> measures(num_nodes);
  for (const auto& [node, attr] : agg.measure) measures[node].push_back(attr);
  std::vector<std::vector<GroupByAggregate::GroupBy>> groups(num_nodes);
  for (const auto& g : agg.group_by) groups[g.node].push_back(g);

  // One code path for both plans: with a disabled policy the group loop
  // visits nodes serially and every scan covers the full range directly —
  // the legacy pass. Views of one group only depend on deeper groups.
  std::vector<FlatHashMap<GroupPayload>> views(num_nodes);
  ExecContext ctx(policy);
  for (const std::vector<int>& group : IndependentViewGroups(tree)) {
    ctx.ParallelFor(group.size(), [&](size_t idx) {
      int v = group[idx];
      PartitionedScan<FlatHashMap<GroupPayload>>(
          ctx, tree.relation(v).num_rows(), &views[v],
          [&](size_t begin, size_t end, FlatHashMap<GroupPayload>* acc) {
            ScanGroupByNode(tree, filters, v, measures, groups, views, begin,
                            end, acc);
          },
          [&](FlatHashMap<GroupPayload>* out,
              FlatHashMap<GroupPayload>* partial) {
            partial->ForEach([&](uint64_t key, const GroupPayload& p) {
              (*out)[key].AddInPlace(p);
            });
          });
    });
  }

  GroupByResult result;
  const GroupPayload* root = views[tree.root()].Find(kUnitKey);
  if (root != nullptr) {
    for (const auto& e : root->entries()) {
      result[CanonicalGroupKey(e.key)] += e.value;
    }
  }
  return result;
}

namespace {

using BatchPayload = std::vector<GroupPayload>;  // one per aggregate

// Batch counterpart of ScanGroupByNode: rows [row_begin, row_end) of node
// v, one group-ring payload per aggregate, accumulated into *out.
void ScanGroupByBatchNode(
    const RootedTree& tree, const FilterSet& filters, int v, size_t k,
    const std::vector<std::vector<std::vector<int>>>& measures,
    const std::vector<std::vector<std::vector<GroupByAggregate::GroupBy>>>&
        groups,
    const std::vector<FlatHashMap<BatchPayload>>& views, size_t row_begin,
    size_t row_end, FlatHashMap<BatchPayload>* out) {
  const Relation& rel = tree.relation(v);
  const RootedNode& node = tree.node(v);
  const std::vector<Predicate>* preds =
      filters.empty() ? nullptr : &filters[v];
  GroupPayload buf_a;
  GroupPayload buf_b;
  BatchPayload combined(k);
  std::vector<const BatchPayload*> child_payloads(node.children.size());
  for (size_t row = row_begin; row < row_end; ++row) {
    if (preds != nullptr && !preds->empty() && !RowPasses(rel, row, *preds)) {
      continue;
    }
    // Shared: join keys and child-view probes, computed once per row.
    bool dangling = false;
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      int c = node.children[ci];
      child_payloads[ci] = views[c].Find(tree.RowKeyToChild(v, c, row));
      if (child_payloads[ci] == nullptr) {
        dangling = true;
        break;
      }
    }
    if (dangling) continue;
    // Per aggregate: lift and ring products.
    for (size_t q = 0; q < k; ++q) {
      double m = 1.0;
      for (int attr : measures[q][v]) m *= rel.Double(row, attr);
      uint64_t key = kScalarGroupKey;
      for (const auto& g : groups[q][v]) {
        uint64_t part = g.slot == 0 ? GroupKeyHigh(rel.Cat(row, g.attr))
                                    : GroupKeyLow(rel.Cat(row, g.attr));
        key = MergeGroupKeys(key, part);
      }
      GroupPayload lift = GroupPayload::Single(key, m);
      GroupPayload* cur = &lift;
      GroupPayload* nxt = &buf_a;
      bool empty = false;
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        const GroupPayload& cp = (*child_payloads[ci])[q];
        if (cp.empty()) {
          empty = true;
          break;
        }
        GroupMulInto(*cur, cp, nxt);
        cur = nxt;
        nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
      }
      combined[q] = empty ? GroupPayload() : *cur;
    }
    uint64_t out_key = tree.RowKeyToParent(v, row);
    BatchPayload& slot = (*out)[out_key];
    if (slot.empty()) slot.resize(k);
    for (size_t q = 0; q < k; ++q) slot[q].AddInPlace(combined[q]);
  }
}

}  // namespace

std::vector<GroupByResult> ComputeGroupByBatch(
    const RootedTree& tree, const std::vector<GroupByAggregate>& aggs,
    const FilterSet& filters, const ExecPolicy& policy) {
  const size_t k = aggs.size();
  const int num_nodes = tree.num_nodes();
  RELBORG_CHECK(filters.empty() ||
                static_cast<int>(filters.size()) == num_nodes);
  // Per aggregate, per node: measure attrs and group descriptors.
  std::vector<std::vector<std::vector<int>>> measures(
      k, std::vector<std::vector<int>>(num_nodes));
  std::vector<std::vector<std::vector<GroupByAggregate::GroupBy>>> groups(
      k, std::vector<std::vector<GroupByAggregate::GroupBy>>(num_nodes));
  for (size_t q = 0; q < k; ++q) {
    RELBORG_CHECK(aggs[q].group_by.size() <= 2);
    for (const auto& [node, attr] : aggs[q].measure) {
      measures[q][node].push_back(attr);
    }
    for (const auto& g : aggs[q].group_by) groups[q][g.node].push_back(g);
  }

  std::vector<FlatHashMap<BatchPayload>> views(num_nodes);
  ExecContext ctx(policy);
  for (const std::vector<int>& group : IndependentViewGroups(tree)) {
    ctx.ParallelFor(group.size(), [&](size_t idx) {
      int v = group[idx];
      PartitionedScan<FlatHashMap<BatchPayload>>(
          ctx, tree.relation(v).num_rows(), &views[v],
          [&](size_t begin, size_t end, FlatHashMap<BatchPayload>* acc) {
            ScanGroupByBatchNode(tree, filters, v, k, measures, groups, views,
                                 begin, end, acc);
          },
          [&](FlatHashMap<BatchPayload>* out,
              FlatHashMap<BatchPayload>* partial) {
            partial->ForEach([&](uint64_t key, const BatchPayload& p) {
              BatchPayload& slot = (*out)[key];
              if (slot.empty()) slot.resize(k);
              for (size_t q = 0; q < k; ++q) slot[q].AddInPlace(p[q]);
            });
          });
    });
  }

  std::vector<GroupByResult> results(k);
  const BatchPayload* root = views[tree.root()].Find(kUnitKey);
  if (root != nullptr) {
    for (size_t q = 0; q < k; ++q) {
      for (const auto& e : (*root)[q].entries()) {
        results[q][CanonicalGroupKey(e.key)] += e.value;
      }
    }
  }
  return results;
}

namespace {

GroupByAggregate::GroupBy MakeGroup(const JoinQuery& query,
                                    const std::string& rel,
                                    const std::string& attr, int slot) {
  GroupByAggregate::GroupBy g;
  g.node = query.IndexOf(rel);
  g.attr = query.relation(g.node)->schema().MustIndexOf(attr);
  RELBORG_CHECK(query.relation(g.node)->schema().attr(g.attr).type ==
                AttrType::kCategorical);
  g.slot = slot;
  return g;
}

}  // namespace

GroupByAggregate CountGroupedBy(const JoinQuery& query, const std::string& rel1,
                                const std::string& attr1) {
  GroupByAggregate agg;
  agg.group_by.push_back(MakeGroup(query, rel1, attr1, 0));
  return agg;
}

GroupByAggregate CountGroupedByPair(const JoinQuery& query,
                                    const std::string& rel1,
                                    const std::string& attr1,
                                    const std::string& rel2,
                                    const std::string& attr2) {
  GroupByAggregate agg;
  agg.group_by.push_back(MakeGroup(query, rel1, attr1, 0));
  agg.group_by.push_back(MakeGroup(query, rel2, attr2, 1));
  return agg;
}

GroupByAggregate SumGroupedBy(const JoinQuery& query,
                              const std::string& measure_rel,
                              const std::string& measure_attr,
                              const std::string& rel1,
                              const std::string& attr1) {
  GroupByAggregate agg = CountGroupedBy(query, rel1, attr1);
  int node = query.IndexOf(measure_rel);
  int attr = query.relation(node)->schema().MustIndexOf(measure_attr);
  agg.measure.push_back({node, attr});
  return agg;
}

}  // namespace relborg
