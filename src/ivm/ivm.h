// The three IVM strategies compared in Fig. 4 (right):
//
//  * CovarFivm       — F-IVM: one factorized view tree with the compound
//                      covariance ring; maintenance shared across the
//                      whole aggregate batch.
//  * HigherOrderIvm  — delta processing WITH intermediate views but WITHOUT
//                      cross-aggregate sharing: one scalar view tree per
//                      aggregate of the batch ((n+1)(n+2)/2 of them).
//  * FirstOrderIvm   — classical delta processing: no intermediate views;
//                      each insert batch joins the delta with all other
//                      full relations and folds every delta-join tuple into
//                      the running covariance accumulator.
//
// All three consume the same ShadowDb and expose the same covariance
// result, so tests can assert exact agreement and the benchmark measures
// pure strategy cost.
#ifndef RELBORG_IVM_IVM_H_
#define RELBORG_IVM_IVM_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "core/feature_map.h"
#include "ivm/shadow_db.h"
#include "ivm/view_tree.h"
#include "obs/trace.h"
#include "ring/covar_arena.h"
#include "ring/covariance.h"
#include "util/packed_key.h"
#include "util/serde.h"
#include "util/status.h"

namespace relborg {

// --- Ring adapters (the view-level Ops concept of ivm/view_tree.h) -------

// Covariance-ring ops over the features of `fm` (indices follow fm), with
// views in arena storage: every view and delta keeps its payloads in one
// contiguous CovarArena buffer, and the per-row delta is the fused
// CovarSpanLiftMulAdd kernel — no payload allocation, no materialized
// lift, in the maintenance hot loop.
class CovarArenaIvmOps {
 public:
  using View = CovarArenaView;
  struct Scratch {
    std::vector<std::pair<int, double>> feat_vals;
    std::vector<double> prod_a;  // child-product ping-pong buffers
    std::vector<double> prod_b;
  };

  explicit CovarArenaIvmOps(const FeatureMap* fm) : fm_(fm) {}

  View MakeView() const { return CovarArenaView(fm_->num_features()); }
  Scratch MakeScratch() const {
    Scratch s;
    const size_t stride = CovarStride(fm_->num_features());
    s.prod_a.resize(stride);
    s.prod_b.resize(stride);
    return s;
  }
  bool Empty(const View& view) const { return view.empty(); }
  const double* Find(const View& view, uint64_t key) const {
    return view.Find(key);
  }

  // Snapshot protocol: CovarArenaView's (slot_count, version) watermark
  // pair (see ring/covar_arena.h).
  using Snapshot = CovarViewSnapshot;
  const double* FindAt(const View& view, uint64_t key,
                       const Snapshot& snap) const {
    return view.FindAt(key, snap);
  }
  Snapshot TakeSnapshot(const View& view) const { return view.Snapshot(); }
  uint64_t ViewVersion(const View& view) const { return view.version(); }

  void RowDelta(int v, const Relation& rel, size_t row, double sign,
                const double* const* children, size_t num_children,
                uint64_t key, View* out, Scratch* scratch) const {
    const int n = fm_->num_features();
    const auto& feats = fm_->NodeFeatures(v);
    scratch->feat_vals.resize(feats.size());
    for (size_t k = 0; k < feats.size(); ++k) {
      scratch->feat_vals[k] = {feats[k].second, rel.Double(row, feats[k].first)};
    }
    double* dst = out->GetOrAdd(key);
    if (num_children <= 1) {
      CovarSpanLiftMulAdd(n, scratch->feat_vals.data(),
                          scratch->feat_vals.size(), sign,
                          num_children == 0 ? nullptr : children[0], dst);
    } else {
      // Same chain shape as the covariance engine: sparse lift folds into
      // the first child, the last product fuses into the accumulator.
      double* cur = scratch->prod_a.data();
      double* nxt = scratch->prod_b.data();
      CovarSpanLiftMul(n, scratch->feat_vals.data(),
                       scratch->feat_vals.size(), sign, children[0], cur);
      for (size_t ci = 1; ci + 1 < num_children; ++ci) {
        CovarSpanMul(n, cur, children[ci], nxt);
        std::swap(cur, nxt);
      }
      CovarSpanMulAdd(n, cur, children[num_children - 1], dst);
    }
  }

  void Merge(View* dst, const View& src) const {
    const size_t stride = CovarStride(fm_->num_features());
    src.ForEach([&](uint64_t key, const double* span) {
      CovarSpanAdd(stride, dst->GetOrAdd(key), span);
    });
  }

  // Merge for MAINTAINED views: ring additions go through BeginMergeKey
  // (copy-on-write under active pins), and one release-publish at the end
  // moves the view's snapshot watermark past all of them at once.
  void FoldPublished(View* dst, const View& src) const {
    const size_t stride = CovarStride(fm_->num_features());
    src.ForEach([&](uint64_t key, const double* span) {
      CovarSpanAdd(stride, dst->BeginMergeKey(key), span);
    });
    dst->PublishMerge();
  }

  template <typename Fn>
  void ForEach(const View& view, Fn&& fn) const {
    view.ForEach(fn);
  }

 private:
  const FeatureMap* fm_;
};

// Scalar ring ops for a single SUM(x_i * x_j) aggregate: the payload is a
// double in a plain FlatHashMap view; the lift multiplies whichever of the
// two features live at the node.
class ScalarIvmOps {
 public:
  using View = FlatHashMap<double>;
  struct Scratch {};

  // mults[v] = attribute indices to multiply at node v.
  explicit ScalarIvmOps(std::vector<std::vector<int>> mults)
      : mults_(std::move(mults)) {}

  View MakeView() const { return View(); }
  Scratch MakeScratch() const { return Scratch(); }
  bool Empty(const View& view) const { return view.empty(); }
  const double* Find(const View& view, uint64_t key) const {
    return view.Find(key);
  }

  // FlatHashMap views carry no per-view watermark; HigherOrderIvm versions
  // its 91 view trees at the STRATEGY level instead (one atomic counter per
  // join-tree node), so the ops-level snapshot is empty and FindAt degrades
  // to Find — sound because the stream scheduler only calls it while
  // holding the child's view gate (no concurrent fold can intervene).
  struct Snapshot {};
  const double* FindAt(const View& view, uint64_t key,
                       const Snapshot&) const {
    return view.Find(key);
  }
  Snapshot TakeSnapshot(const View&) const { return {}; }
  uint64_t ViewVersion(const View&) const { return 0; }

  void RowDelta(int v, const Relation& rel, size_t row, double sign,
                const double* const* children, size_t num_children,
                uint64_t key, View* out, Scratch*) const {
    double m = sign;
    for (int attr : mults_[v]) m *= rel.Double(row, attr);
    for (size_t ci = 0; ci < num_children; ++ci) m *= *children[ci];
    (*out)[key] += m;
  }

  void Merge(View* dst, const View& src) const {
    src.ForEach([&](uint64_t key, const double& v) { (*dst)[key] += v; });
  }
  // No view-level watermark to publish (see Snapshot above).
  void FoldPublished(View* dst, const View& src) const { Merge(dst, src); }

  template <typename Fn>
  void ForEach(const View& view, Fn&& fn) const {
    view.ForEach([&](uint64_t key, const double& v) { fn(key, &v); });
  }

 private:
  std::vector<std::vector<int>> mults_;
};

// --- Strategies ----------------------------------------------------------

class CovarFivm {
 public:
  // The policy drives domain parallelism over each update batch's delta
  // computation (see ViewTreeMaintainer::ApplyBatch); the default keeps
  // the canonical serial path. Results are bit-identical for any thread
  // count >= 1.
  CovarFivm(const ShadowDb* db, const FeatureMap* fm,
            const ExecPolicy& policy = {})
      : db_(db), fm_(fm), ctx_(policy), maintainer_(db, CovarArenaIvmOps(fm)) {}

  // Maintenance of a range reads only the range's node and its ancestors
  // (ViewTreeMaintainer's delta scan + upward propagation), so the stream
  // scheduler may overlap commits of nodes outside that closure.
  static constexpr bool kMaintainReadsAncestorClosure = true;

  // `visible` is the per-node row watermark of the caller's epoch (see
  // ViewTreeMaintainer::ApplyBatch); nullptr reads everything committed.
  // `gate`, when non-null, write-locks each view around the fold into it.
  void ApplyBatch(int v, size_t first, size_t count,
                  const size_t* visible = nullptr,
                  ViewWriteGate* gate = nullptr) {
    RELBORG_TRACE_SPAN("fivm/fold", "ivm", -1, v);
    maintainer_.ApplyBatch(v, first, count, ctx_.enabled() ? &ctx_ : nullptr,
                           visible, gate);
  }

  // --- Speculative per-range compute (stream_scheduler's compute stage) --
  //
  // ComputeRangeDelta evaluates a range's delta against the CURRENT child
  // views, bounded by snapshots taken at entry, and records each child's
  // (node, version) in *observed. The caller holds the children's view
  // gates, so no fold intervenes mid-scan; RangeDeltaValid later re-reads
  // the versions at the serial application point — equality means the
  // child views never changed in between, so the precomputed delta is
  // BIT-IDENTICAL to what a fresh serial ComputeDelta would produce (the
  // partitioned fold order is deterministic). ApplyRangeDelta then
  // propagates it exactly like ApplyBatch's second half.
  using RangeDelta = CovarArenaView;

  RangeDelta ComputeRangeDelta(const NodeRowRange& r,
                               std::vector<std::pair<int, uint64_t>>* observed,
                               const StagedChildKeys* staged = nullptr) {
    RELBORG_TRACE_SPAN("fivm/delta", "ivm", -1, r.node);
    const std::vector<int>& children = db_->tree().node(r.node).children;
    std::vector<CovarViewSnapshot> snaps(db_->tree().num_nodes());
    for (int c : children) {
      snaps[c] = maintainer_.SnapshotView(c);
      observed->push_back({c, snaps[c].version});
    }
    return maintainer_.ComputeDelta(r.node, r.first, r.count,
                                    ctx_.enabled() ? &ctx_ : nullptr,
                                    /*visible=*/nullptr, snaps.data(), staged);
  }

  bool RangeDeltaValid(
      const std::vector<std::pair<int, uint64_t>>& observed) const {
    for (const auto& [node, version] : observed) {
      if (maintainer_.ViewVersion(node) != version) return false;
    }
    return true;
  }

  void ApplyRangeDelta(const NodeRowRange& r, RangeDelta delta,
                       const size_t* visible, ViewWriteGate* gate) {
    RELBORG_TRACE_SPAN("fivm/propagate", "ivm", -1, r.node);
    maintainer_.ApplyDelta(r.node, std::move(delta), visible, gate);
  }

  // Applies a group of ranges at the SAME view-tree depth (the stream
  // scheduler's epoch groups). Same-depth nodes are never in an
  // ancestor/descendant relation, so no range's delta scan reads a view
  // another range's application writes: all delta scans run concurrently
  // (each itself partition-parallel via the nested ParallelFor), then the
  // propagations run serially in range order. Bit-identical to calling
  // ApplyBatch per range in the same order, for any thread count.
  void ApplyGroup(const NodeRowRange* ranges, size_t n,
                  const size_t* visible = nullptr,
                  ViewWriteGate* gate = nullptr) {
    if (n == 1) {
      ApplyBatch(ranges[0].node, ranges[0].first, ranges[0].count, visible,
                 gate);
      return;
    }
    RELBORG_TRACE_SPAN("fivm/group", "ivm", -1, ranges[0].node);
    const ExecContext* ctx = ctx_.enabled() ? &ctx_ : nullptr;
    std::vector<CovarArenaView> deltas(n);
    ctx_.ParallelFor(n, [&](size_t i) {
      deltas[i] = maintainer_.ComputeDelta(ranges[i].node, ranges[i].first,
                                           ranges[i].count, ctx, visible);
    });
    for (size_t i = 0; i < n; ++i) {
      maintainer_.ApplyDelta(ranges[i].node, std::move(deltas[i]), visible,
                             gate);
    }
  }

  CovarMatrix Current() const {
    const int n = fm_->num_features();
    const double* span = maintainer_.Root();
    return CovarMatrix(n, span == nullptr ? CovarPayload::Zero(n)
                                          : CovarPayloadFromSpan(n, span));
  }

  /// Node v's maintained arena view — the cross-arena merge entry points
  /// (CovarArenaMergeInto, shard/sharded_stream_scheduler.h) read whole
  /// views, not just the root span. Same quiescence contract as Current().
  const CovarArenaView& ViewOf(int v) const { return maintainer_.view(v); }

  // --- Horizon-bounded serve reads (serve/snapshot_server.h) -------------
  //
  // A serve pin freezes EVERY view at one epoch boundary: PinServe must be
  // called where no fold can be in flight — the stream scheduler's epoch
  // observer (applier thread, between epochs) — and captures each view's
  // (slots, version) snapshot while COW-protecting its published payloads.
  // The ServeCovarAt / ServeGroupByAt readers below then read the EXACT
  // pinned bytes from any client thread, provided the caller holds the
  // scheduler's view-gate read lock on the views it touches (a concurrent
  // fold may rehash a view's map and move its arena buffer; COW preserves
  // payload bytes, not addresses). UnpinServe is safe from any thread, in
  // any order relative to other pins (CovarArenaView's pin table).

  /// One pinned epoch-consistent horizon across all views.
  struct ServePin {
    std::vector<CovarViewSnapshot> snaps;  // per join-tree node
  };

  /// Pins every view (writer-side: applier thread between epochs only).
  ServePin PinServe() {
    const int num_nodes = db_->tree().num_nodes();
    ServePin pin;
    pin.snaps.resize(num_nodes);
    for (int v = 0; v < num_nodes; ++v) {
      pin.snaps[v] = maintainer_.mutable_view(v).Pin();
    }
    return pin;
  }

  /// Releases one serve pin (any thread; pairs with one PinServe).
  void UnpinServe() {
    const int num_nodes = db_->tree().num_nodes();
    for (int v = 0; v < num_nodes; ++v) {
      maintainer_.mutable_view(v).Unpin();
    }
  }

  /// The covariance batch at the pinned horizon. Caller holds the view
  /// gate's read lock on the ROOT view while the pipeline is live.
  CovarMatrix CovarAt(const ServePin& pin) const {
    const int root = db_->tree().root();
    const int n = fm_->num_features();
    const double* span =
        maintainer_.view(root).FindAt(kUnitKey, pin.snaps[root]);
    return CovarMatrix(n, span == nullptr ? CovarPayload::Zero(n)
                                          : CovarPayloadFromSpan(n, span));
  }

  /// Group-by at the pinned horizon: node `v`'s view keys with their
  /// payload counts (COUNT(*) per parent-edge key over v's subtree),
  /// sorted by key for determinism. Keys born after the pin are filtered
  /// out by the snapshot's slot watermark. Caller holds the view gate's
  /// read lock on node `v` while the pipeline is live.
  std::vector<std::pair<uint64_t, double>> GroupByAt(
      int v, const ServePin& pin) const {
    std::vector<std::pair<uint64_t, double>> out;
    const CovarArenaView& view = maintainer_.view(v);
    view.ForEach([&](uint64_t key, const double*) {
      const double* span = view.FindAt(key, pin.snaps[v]);
      if (span != nullptr) out.emplace_back(key, span[kCovarCountOffset]);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  // --- Checkpointing (stream/checkpoint.h) -------------------------------
  //
  // View state is serialized BYTE-EXACT: every key's payload span as IEEE
  // bits plus the view's publication counter. Restore never recomputes a
  // fold (the coalesced epoch folds that built these payloads are a
  // different summation order than any replay could reproduce), so a
  // restored strategy is bit-identical to the one that was saved.
  static constexpr uint32_t kCheckpointTag = 0x46495631;  // "FIV1"

  void SaveCheckpoint(ByteSink* sink) const {
    const int num_nodes = db_->tree().num_nodes();
    const size_t stride = CovarStride(fm_->num_features());
    for (int v = 0; v < num_nodes; ++v) {
      const CovarArenaView& view = maintainer_.view(v);
      sink->U64(view.size());
      view.ForEach([&](uint64_t key, const double* span) {
        sink->U64(key);
        sink->F64Span(span, stride);
      });
      sink->U32(view.version());
    }
  }

  // Requires a freshly constructed strategy (empty views) over the same
  // catalog and feature map as the saved one.
  Status LoadCheckpoint(ByteSource* src) {
    const int num_nodes = db_->tree().num_nodes();
    const size_t stride = CovarStride(fm_->num_features());
    for (int v = 0; v < num_nodes; ++v) {
      CovarArenaView& view = maintainer_.mutable_view(v);
      const uint64_t count = src->U64();
      if (count * (sizeof(uint64_t) + stride * sizeof(double)) >
          src->remaining()) {
        return Status::DataLoss("truncated CovarFivm checkpoint payload");
      }
      for (uint64_t k = 0; k < count; ++k) {
        const uint64_t key = src->U64();
        // The span stays valid until the next GetOrAdd, so fill it now.
        src->F64Span(view.GetOrAdd(key), stride);
      }
      view.RestorePublished(src->U32());
    }
    return src->ok() ? Status::Ok()
                     : Status::DataLoss("truncated CovarFivm checkpoint");
  }

 private:
  const ShadowDb* db_;
  const FeatureMap* fm_;
  ExecContext ctx_;
  ViewTreeMaintainer<CovarArenaIvmOps> maintainer_;
};

class HigherOrderIvm {
 public:
  // An enabled policy applies each batch to the (n+1)(n+2)/2 independent
  // scalar maintainers in parallel — each maintainer stays internally
  // serial, so results are identical for any thread count.
  HigherOrderIvm(const ShadowDb* db, const FeatureMap* fm,
                 const ExecPolicy& policy = {});

  // Every scalar maintainer shares ViewTreeMaintainer's read footprint:
  // the range's node plus its ancestors.
  static constexpr bool kMaintainReadsAncestorClosure = true;

  void ApplyBatch(int v, size_t first, size_t count,
                  const size_t* visible = nullptr,
                  ViewWriteGate* gate = nullptr);

  // Speculative per-range compute, mirroring CovarFivm's contract. The
  // FlatHashMap views carry no watermark, so validity is tracked at the
  // strategy level: one atomic version counter per join-tree node, bumped
  // (release) along the root path after every application. Gate locking is
  // COARSE — the whole root path is locked once around the parallel
  // per-maintainer propagation — because per-merge locking from 91
  // concurrent maintainers would serialize on the gate mutex.
  using RangeDelta = std::vector<FlatHashMap<double>>;  // per maintainer

  RangeDelta ComputeRangeDelta(const NodeRowRange& r,
                               std::vector<std::pair<int, uint64_t>>* observed,
                               const StagedChildKeys* staged = nullptr);
  bool RangeDeltaValid(
      const std::vector<std::pair<int, uint64_t>>& observed) const;
  void ApplyRangeDelta(const NodeRowRange& r, RangeDelta delta,
                       const size_t* visible, ViewWriteGate* gate);

  /// The maintained covariance batch. While a stream pipeline is live this
  /// may only be called where no fold is in flight — the scheduler's epoch
  /// observer (applier thread, between epochs); the serve layer snapshots
  /// by COPY there (no per-view pin protocol on FlatHashMap views).
  CovarMatrix Current() const;

  size_t num_aggregates() const { return maintainers_.size(); }

  // Checkpointing: every maintainer's per-node scalar views (byte-exact,
  // never recomputed) plus the strategy-level per-node version counters —
  // restored speculation validity resumes the saved version sequence.
  static constexpr uint32_t kCheckpointTag = 0x484F4931;  // "HOI1"
  void SaveCheckpoint(ByteSink* sink) const;
  Status LoadCheckpoint(ByteSource* src);  // requires a fresh strategy

 private:
  // v, parent(v), ..., root — the write set of an application at v.
  std::vector<int> RootPath(int v) const;
  void BumpVersions(const std::vector<int>& path);

  const ShadowDb* db_;
  const FeatureMap* fm_;
  ExecContext ctx_;
  // Maintainer k tracks the aggregate for feature pair pairs_[k]; index n
  // denotes the constant feature (counts / sums).
  std::vector<std::pair<int, int>> pairs_;
  std::vector<ViewTreeMaintainer<ScalarIvmOps>> maintainers_;
  // Per-node view version counters (see RangeDelta above). Over-bumping
  // (e.g. when a propagation stops early on an empty delta) is safe: a
  // version mismatch only ever forces a spurious serial recompute.
  std::unique_ptr<std::atomic<uint64_t>[]> versions_;
};

// Classical first-order IVM for the covariance batch: the maintained state
// is the flat vector of aggregate values only (no intermediate views), and
// each update batch evaluates ONE DELTA QUERY PER AGGREGATE —
// dQ_ij = SUM(x_i * x_j) over (delta |X| rest of the database) — exactly as
// a delta-rule engine processes a batch of queries with no cross-query
// sharing. Base relations carry incrementally-maintained indexes (as a
// DBMS would); the missing sharing across the 91 aggregates is what the
// paper credits for the orders-of-magnitude gap to F-IVM.
class FirstOrderIvm {
 public:
  // An enabled policy evaluates the per-aggregate delta queries in
  // parallel (each aggregate's enumeration stays serial, writing only its
  // own accumulator), so results are identical for any thread count.
  FirstOrderIvm(const ShadowDb* db, const FeatureMap* fm,
                const ExecPolicy& policy = {});

  // No kMaintainReadsAncestorClosure: the delta join re-enumerates the
  // WHOLE database, so the stream scheduler must not commit any node's
  // rows while a batch applies — it falls back to the all-nodes read set.
  // For the same reason there is no speculative-compute API (no
  // RangeDelta): every epoch's write set intersects every other epoch's
  // read set, so compute overlap is unsound here and the scheduler's
  // compute stage forwards epochs untouched (the serial PR-5 schedule).

  // `visible` bounds every read (index build, delta-join enumeration) to
  // rows [0, visible[u]) of each node u; nullptr reads all committed rows.
  void ApplyBatch(int v, size_t first, size_t count,
                  const size_t* visible = nullptr);

  /// The maintained covariance batch. Same serve contract as
  /// HigherOrderIvm::Current: under a live pipeline, call only from the
  /// scheduler's epoch observer (applier thread, between epochs).
  CovarMatrix Current() const;

  size_t num_aggregates() const { return pairs_.size(); }

  // Checkpointing: the flat aggregate values (byte-exact) plus the per-node
  // indexed-row counts. LoadCheckpoint rebuilds parent_index_ from the
  // restored ShadowDb's rows — the ShadowDb prefix must be restored FIRST.
  static constexpr uint32_t kCheckpointTag = 0x464F4931;  // "FOI1"
  void SaveCheckpoint(ByteSink* sink) const;
  Status LoadCheckpoint(ByteSource* src);  // requires a fresh strategy

 private:
  // Recursively enumerates delta-join extensions over the undirected tree,
  // multiplying the current aggregate's per-node multipliers, and adds the
  // total into *acc. Rows at or above visible[] stay out of the join.
  void Expand(int v, size_t row, int from, double mult,
              const std::vector<std::vector<int>>& mults,
              const size_t* visible, double* acc);

  const ShadowDb* db_;
  const FeatureMap* fm_;
  ExecContext ctx_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<std::vector<std::vector<int>>> mults_;  // per aggregate
  std::vector<double> values_;                        // per aggregate
  // Per node: rows indexed by the parent-edge key (the direction ShadowDb
  // does not index), maintained incrementally.
  std::vector<FlatHashMap<std::vector<uint32_t>>> parent_index_;
  std::vector<size_t> indexed_rows_;  // rows already in parent_index_
};

}  // namespace relborg

#endif  // RELBORG_IVM_IVM_H_
