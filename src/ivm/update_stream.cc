#include "ivm/update_stream.h"

#include <algorithm>

namespace relborg {

std::vector<UpdateBatch> BuildInsertStream(
    const JoinQuery& query, const UpdateStreamOptions& options) {
  Rng rng(options.seed);
  const int n = query.num_relations();
  // Row order per relation.
  std::vector<std::vector<size_t>> order(n);
  for (int v = 0; v < n; ++v) {
    order[v].resize(query.relation(v)->num_rows());
    for (size_t i = 0; i < order[v].size(); ++i) order[v][i] = i;
    if (options.shuffle_rows) rng.Shuffle(&order[v]);
  }
  std::vector<size_t> next(n, 0);
  std::vector<UpdateBatch> stream;
  auto emit_batch = [&](int pick) {
    const Relation& rel = *query.relation(pick);
    UpdateBatch batch;
    batch.node = pick;
    size_t take =
        std::min(options.batch_size, order[pick].size() - next[pick]);
    batch.rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      size_t row = order[pick][next[pick]++];
      std::vector<double> values(rel.num_attrs());
      for (int a = 0; a < rel.num_attrs(); ++a) {
        values[a] = rel.AsDouble(row, a);
      }
      batch.rows.push_back(std::move(values));
    }
    stream.push_back(std::move(batch));
  };

  if (options.order == StreamOrder::kRoundRobin) {
    bool any = true;
    while (any) {
      any = false;
      for (int v = 0; v < n; ++v) {
        if (next[v] < order[v].size()) {
          emit_batch(v);
          any = true;
        }
      }
    }
    return stream;
  }

  // Proportional: draw relations weighted by remaining rows.
  for (;;) {
    size_t total_remaining = 0;
    for (int v = 0; v < n; ++v) {
      total_remaining += order[v].size() - next[v];
    }
    if (total_remaining == 0) break;
    uint64_t t = rng.Below(total_remaining);
    int pick = 0;
    for (int v = 0; v < n; ++v) {
      size_t rem = order[v].size() - next[v];
      if (t < rem) {
        pick = v;
        break;
      }
      t -= rem;
    }
    emit_batch(pick);
  }
  return stream;
}

std::vector<UpdateBatch> BuildMixedStream(const JoinQuery& query,
                                          const MixedStreamOptions& options) {
  std::vector<UpdateBatch> inserts = BuildInsertStream(query, options.insert);
  // Independent draw stream so the insert deal is byte-identical to
  // BuildInsertStream with the same options.
  Rng rng(options.insert.seed * 0x9E3779B97F4A7C15ull + 0x5DEECE66Dull);
  const int n = query.num_relations();
  // Per node: rows inserted so far (pointers into `inserts`, which is not
  // resized below) and how many of the oldest have been deleted already.
  std::vector<std::vector<const std::vector<double>*>> inserted(n);
  std::vector<size_t> deleted(n, 0);
  std::vector<UpdateBatch> stream;
  stream.reserve(inserts.size());
  for (const UpdateBatch& batch : inserts) {
    const int batch_node = batch.node;
    for (const auto& row : batch.rows) inserted[batch.node].push_back(&row);
    stream.push_back(batch);
    // Empty batch: zero rows at the same node. The guarded draw keeps
    // streams byte-identical to older builds at the default 0.
    if (options.empty_batch_probability > 0 &&
        rng.Uniform() < options.empty_batch_probability) {
      UpdateBatch empty;
      empty.node = batch_node;
      stream.push_back(std::move(empty));
    }
    if (rng.Uniform() >= options.delete_probability) continue;
    // Pick a relation weighted by its live (inserted, not yet deleted) row
    // count, then retract its oldest live rows. Oldest-first deletion keeps
    // every multiplicity in {0, +1}.
    size_t total_live = 0;
    for (int v = 0; v < n; ++v) total_live += inserted[v].size() - deleted[v];
    if (total_live == 0) continue;
    uint64_t t = rng.Below(total_live);
    int pick = 0;
    for (int v = 0; v < n; ++v) {
      size_t live = inserted[v].size() - deleted[v];
      if (t < live) {
        pick = v;
        break;
      }
      t -= live;
    }
    UpdateBatch del;
    del.node = pick;
    del.sign = -1.0;
    const size_t live = inserted[pick].size() - deleted[pick];
    // Full retraction: the whole live multiset of the relation in ONE
    // delete batch (entire prior insert batches retracted, the relation
    // momentarily empty). Oldest-first either way, so multiplicities stay
    // in {0, +1}. The draw only happens when the knob is on, keeping
    // streams byte-identical to older builds at the default 0.
    size_t take = options.full_retraction_probability > 0 &&
                          rng.Uniform() < options.full_retraction_probability
                      ? live
                      : std::min(options.insert.batch_size, live);
    del.rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      del.rows.push_back(*inserted[pick][deleted[pick]++]);
    }
    stream.push_back(std::move(del));
  }
  return stream;
}

size_t StreamRowCount(const std::vector<UpdateBatch>& stream) {
  size_t n = 0;
  for (const UpdateBatch& b : stream) n += b.rows.size();
  return n;
}

}  // namespace relborg
