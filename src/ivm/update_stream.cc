#include "ivm/update_stream.h"

#include <algorithm>

namespace relborg {

std::vector<UpdateBatch> BuildInsertStream(
    const JoinQuery& query, const UpdateStreamOptions& options) {
  Rng rng(options.seed);
  const int n = query.num_relations();
  // Row order per relation.
  std::vector<std::vector<size_t>> order(n);
  for (int v = 0; v < n; ++v) {
    order[v].resize(query.relation(v)->num_rows());
    for (size_t i = 0; i < order[v].size(); ++i) order[v][i] = i;
    if (options.shuffle_rows) rng.Shuffle(&order[v]);
  }
  std::vector<size_t> next(n, 0);
  std::vector<UpdateBatch> stream;
  auto emit_batch = [&](int pick) {
    const Relation& rel = *query.relation(pick);
    UpdateBatch batch;
    batch.node = pick;
    size_t take =
        std::min(options.batch_size, order[pick].size() - next[pick]);
    batch.rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      size_t row = order[pick][next[pick]++];
      std::vector<double> values(rel.num_attrs());
      for (int a = 0; a < rel.num_attrs(); ++a) {
        values[a] = rel.AsDouble(row, a);
      }
      batch.rows.push_back(std::move(values));
    }
    stream.push_back(std::move(batch));
  };

  if (options.order == StreamOrder::kRoundRobin) {
    bool any = true;
    while (any) {
      any = false;
      for (int v = 0; v < n; ++v) {
        if (next[v] < order[v].size()) {
          emit_batch(v);
          any = true;
        }
      }
    }
    return stream;
  }

  // Proportional: draw relations weighted by remaining rows.
  for (;;) {
    size_t total_remaining = 0;
    for (int v = 0; v < n; ++v) {
      total_remaining += order[v].size() - next[v];
    }
    if (total_remaining == 0) break;
    uint64_t t = rng.Below(total_remaining);
    int pick = 0;
    for (int v = 0; v < n; ++v) {
      size_t rem = order[v].size() - next[v];
      if (t < rem) {
        pick = v;
        break;
      }
      t -= rem;
    }
    emit_batch(pick);
  }
  return stream;
}

size_t StreamRowCount(const std::vector<UpdateBatch>& stream) {
  size_t n = 0;
  for (const UpdateBatch& b : stream) n += b.rows.size();
  return n;
}

}  // namespace relborg
