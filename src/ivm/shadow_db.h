// Shared infrastructure for the incremental view maintenance (IVM) layer.
//
// IVM experiments start from an *empty* database and stream inserts into
// it (Fig. 4 right: "maintenance of the covariance matrix under tuple
// insertions into an initially empty retailer database"). A ShadowDb clones
// the schemas and join topology of a source dataset with empty relations,
// accepts per-relation insert batches (with +1/-1 multiplicities — the
// ring's additive inverse models deletions), and maintains the row indexes
// (parent rows by child key) that delta propagation needs. The three IVM
// variants share one ShadowDb per experiment; each keeps its own views.
#ifndef RELBORG_IVM_SHADOW_DB_H_
#define RELBORG_IVM_SHADOW_DB_H_

#include <memory>
#include <vector>

#include "query/join_tree.h"
#include "relational/catalog.h"
#include "util/flat_hash_map.h"

namespace relborg {

class ShadowDb {
 public:
  // Clones schemas and join topology from `source`, rooting the tree at
  // the same node index as `root`.
  ShadowDb(const JoinQuery& source, int root);

  const RootedTree& tree() const { return *tree_; }
  const JoinQuery& query() const { return query_; }
  const Relation& relation(int v) const { return *relations_[v]; }
  double sign(int v, size_t row) const { return signs_[v][row]; }

  // Appends rows (values per attribute, as doubles) to node v's relation
  // with the given multiplicity sign (+1 insert, -1 delete) and updates the
  // indexes. Returns the first new row id; new rows are
  // [first, first + rows.size()).
  size_t AppendRows(int v, const std::vector<std::vector<double>>& rows,
                    double sign = 1.0);

  // Rows of node v whose key on the edge to child c equals `key`
  // (nullptr if none). Used by upward delta propagation.
  const std::vector<uint32_t>* RowsByChildKey(int v, int c,
                                              uint64_t key) const;

 private:
  Catalog catalog_;
  std::vector<Relation*> relations_;  // by node index
  JoinQuery query_;
  std::unique_ptr<RootedTree> tree_;
  std::vector<std::vector<double>> signs_;  // per node, per row
  // child_index_[v][i] indexes node v's rows by the key of the edge to
  // children()[i].
  std::vector<std::vector<FlatHashMap<std::vector<uint32_t>>>> child_index_;
};

}  // namespace relborg

#endif  // RELBORG_IVM_SHADOW_DB_H_
