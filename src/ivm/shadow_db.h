// Shared infrastructure for the incremental view maintenance (IVM) layer.
//
// IVM experiments start from an *empty* database and stream inserts into
// it (Fig. 4 right: "maintenance of the covariance matrix under tuple
// insertions into an initially empty retailer database"). A ShadowDb clones
// the schemas and join topology of a source dataset with empty relations,
// accepts per-relation insert batches (with +1/-1 multiplicities — the
// ring's additive inverse models deletions), and maintains the row indexes
// (parent rows by child key) that delta propagation needs. The three IVM
// variants share one ShadowDb per experiment; each keeps its own views.
#ifndef RELBORG_IVM_SHADOW_DB_H_
#define RELBORG_IVM_SHADOW_DB_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "query/join_tree.h"
#include "relational/catalog.h"
#include "util/flat_hash_map.h"

namespace relborg {

// Precomputed ingestion work for a contiguous run of rows at one node:
// everything about an append that does NOT touch ShadowDb state — packed
// child-edge keys grouped into index fragments with absolute row ids, plus
// the row values and per-row signs. Built by ShadowDb::StageRows (safe to
// call from any thread) and spliced in by CommitChunk; the stream
// scheduler's epoch assembler stages chunks off the maintenance thread so
// commits on the hot path reduce to bulk appends and per-key splices.
struct IngestChunk {
  int node = -1;
  size_t first = 0;  // absolute row id the chunk's rows start at
  size_t rows = 0;
  // Rows transposed into typed columnar chunks (exactly one of the two
  // vectors is non-empty per attribute, following the schema), so a
  // commit splices whole columns instead of appending row by row.
  std::vector<std::vector<double>> double_cols;   // per attr
  std::vector<std::vector<int32_t>> cat_cols;     // per attr
  std::vector<double> signs;  // one per row
  // child_groups[ci] maps the packed key on the edge to children()[ci] to
  // the ABSOLUTE ids of this chunk's rows with that key, in row order.
  std::vector<FlatHashMap<std::vector<uint32_t>>> child_groups;

  size_t num_rows() const { return rows; }
};

// Length of the visible prefix of `rows` under the row watermark `limit`:
// the number of leading entries < limit. Per-key index vectors hold
// absolute row ids in ascending (append) order, so the visible rows of a
// key under any watermark are exactly a prefix — this helper STATES that
// invariant for tests and tools; the maintenance hot loops apply the same
// bound inline (`if (row >= limit) break;` in view_tree.h / ivm.cc)
// rather than calling it. The common case — every row visible — is one
// comparison against the last entry.
inline size_t VisiblePrefix(const std::vector<uint32_t>& rows, size_t limit) {
  if (rows.empty() || rows.back() < limit) return rows.size();
  return static_cast<size_t>(
      std::lower_bound(rows.begin(), rows.end(),
                       static_cast<uint32_t>(std::min<size_t>(
                           limit, UINT32_MAX))) -
      rows.begin());
}

class ShadowDb {
 public:
  // Clones schemas and join topology from `source`, rooting the tree at
  // the same node index as `root`.
  ShadowDb(const JoinQuery& source, int root);

  const RootedTree& tree() const { return *tree_; }
  const JoinQuery& query() const { return query_; }
  const Relation& relation(int v) const { return *relations_[v]; }
  double sign(int v, size_t row) const { return signs_[v][row]; }

  // Appends rows (values per attribute, as doubles) to node v's relation
  // with the given multiplicity sign (+1 insert, -1 delete) and updates the
  // indexes. Returns the first new row id; new rows are
  // [first, first + rows.size()).
  size_t AppendRows(int v, const std::vector<std::vector<double>>& rows,
                    double sign = 1.0);

  // Phase 1 of a two-phase append: packs the child-edge keys of `rows` and
  // groups them into index fragments, assuming the rows will land at
  // absolute ids [first, first + rows.size()). Reads only immutable
  // topology (tree, schemas) — never the relations — so it may run
  // concurrently with maintenance reads and with CommitChunk calls for
  // OTHER chunks; the caller promises `first` will equal
  // relation(v).num_rows() at commit time (the stream scheduler tracks
  // per-node cumulative counts to guarantee this). `signs` holds one
  // multiplicity per row, so a staged chunk can mix inserts and deletes.
  IngestChunk StageRows(int v, std::vector<std::vector<double>> rows,
                        std::vector<double> signs, size_t first) const;

  // Phase 2: appends the staged rows/signs and splices the fragments into
  // the child indexes — one probe per distinct key instead of one per row —
  // then flips the node's committed-row watermark to cover the new rows
  // (a single release-store: visibility is atomic at the watermark).
  // Aborts if the chunk was staged for a different row offset. The
  // resulting relation, sign and index state is identical to AppendRows of
  // the same rows. Consumes the chunk's payload (columns, signs,
  // fragments); the node/first/rows header stays valid so callers can keep
  // describing the committed range.
  void CommitChunk(IngestChunk&& chunk);

  // Per-node committed-row watermark: rows [0, committed_rows(v)) of node
  // v's shadow relation are fully committed (columns, signs and index
  // fragments spliced). Advanced by AppendRows/CommitChunk with a release
  // store and read here with an acquire load, so a reader that observes a
  // watermark also observes every committed row below it. Monotonically
  // non-decreasing, and always safe to POLL from any thread. Actually
  // READING rows below the watermark while commits may run concurrently
  // additionally requires exclusion against CommitChunk on that node —
  // a splice can reallocate the node's column/sign vectors and rehash its
  // index maps, moving the memory under a reader; the stream scheduler's
  // CommitGate provides exactly that exclusion for its maintenance reads.
  // The scheduler commits epoch N+1's chunks while epoch N still
  // propagates, so maintenance code MUST also bound its reads by its
  // epoch's visibility horizon (<= this watermark), never by
  // relation(v).num_rows().
  size_t committed_rows(int v) const {
    return committed_[v].load(std::memory_order_acquire);
  }

  // Rows of node v whose key on the edge to child c equals `key`
  // (nullptr if none). Used by upward delta propagation.
  const std::vector<uint32_t>* RowsByChildKey(int v, int c,
                                              uint64_t key) const;

 private:
  Catalog catalog_;
  std::vector<Relation*> relations_;  // by node index
  JoinQuery query_;
  std::unique_ptr<RootedTree> tree_;
  std::vector<std::vector<double>> signs_;  // per node, per row
  // child_index_[v][i] indexes node v's rows by the key of the edge to
  // children()[i].
  std::vector<std::vector<FlatHashMap<std::vector<uint32_t>>>> child_index_;
  // Committed-row watermarks, one per node (see committed_rows()).
  std::unique_ptr<std::atomic<size_t>[]> committed_;
};

}  // namespace relborg

#endif  // RELBORG_IVM_SHADOW_DB_H_
