// Factorized view-tree maintenance (the F-IVM algorithm, Sec. 3.1 and
// Fig. 4 right of the paper).
//
// A ViewTreeMaintainer keeps, for every join-tree node, a materialized view
// mapping the node's parent-edge key to a ring payload aggregated over its
// subtree. An insert batch at node v:
//
//   1. computes the per-key payload delta at v from the new rows (their
//      lifts multiplied with the children's current views),
//   2. propagates the delta up the path to the root: at each ancestor p,
//      only the rows matching the delta's keys (found via ShadowDb's
//      indexes) contribute, each multiplied with the *sibling* views,
//   3. applies the deltas to the views along the path.
//
// Work is proportional to the affected keys, not to the database size, and
// one compound-ring payload maintains the whole aggregate batch at once.
// The higher-order IVM baseline instantiates this same template with a
// scalar ring — one maintainer per aggregate, no sharing — which is
// exactly the distinction Fig. 4 (right) measures.
//
// The Ops parameter supplies the ring:
//   struct Ops {
//     using Payload = ...;
//     void Lift(int node, const Relation&, size_t row, double sign,
//               Payload* out) const;
//     void Mul(const Payload& a, const Payload& b, Payload* dst) const;
//     void Add(Payload* dst, const Payload& src) const;
//     bool IsZero(const Payload&) const;
//   };
#ifndef RELBORG_IVM_VIEW_TREE_H_
#define RELBORG_IVM_VIEW_TREE_H_

#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "ivm/shadow_db.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {

template <typename Ops>
class ViewTreeMaintainer {
 public:
  using Payload = typename Ops::Payload;

  ViewTreeMaintainer(const ShadowDb* db, Ops ops)
      : db_(db), ops_(std::move(ops)), views_(db->tree().num_nodes()) {}

  // Processes rows [first, first + count) previously appended to node v's
  // shadow relation (all with the same multiplicity sign, already recorded
  // in the ShadowDb). With a context, the per-row delta computation is
  // domain-parallel over deterministic partitions of the batch (partials
  // merged in ascending partition order — bit-identical for any thread
  // count); upward propagation is work-proportional and stays serial.
  void ApplyBatch(int v, size_t first, size_t count,
                  const ExecContext* ctx = nullptr) {
    FlatHashMap<Payload> delta;
    if (ctx == nullptr || ctx->NumPartitions(count) <= 1) {
      ScanDelta(v, first, count, &delta);
    } else {
      const size_t parts = ctx->NumPartitions(count);
      std::vector<FlatHashMap<Payload>> partials(parts);
      ctx->ParallelFor(parts, [&](size_t p) {
        const std::pair<size_t, size_t> b =
            ExecContext::PartitionBounds(count, parts, p);
        ScanDelta(v, first + b.first, b.second - b.first, &partials[p]);
      });
      for (size_t p = 0; p < parts; ++p) {
        partials[p].ForEach([&](uint64_t key, const Payload& payload) {
          ops_.Add(&delta[key], payload);
        });
      }
    }
    Propagate(v, std::move(delta));
  }

  // The root payload (the maintained aggregate batch); nullptr while the
  // join is still empty.
  const Payload* Root() const { return views_[db_->tree().root()].Find(kUnitKey); }

  // Read access for tests.
  const FlatHashMap<Payload>& view(int v) const { return views_[v]; }

 private:
  // Computes the delta at v for rows [first, first + count) into *delta,
  // serially in row order.
  void ScanDelta(int v, size_t first, size_t count,
                 FlatHashMap<Payload>* delta) {
    const RootedTree& tree = db_->tree();
    const Relation& rel = db_->relation(v);
    Payload lift;
    Payload buf_a;
    Payload buf_b;
    for (size_t row = first; row < first + count; ++row) {
      ops_.Lift(v, rel, row, db_->sign(v, row), &lift);
      Payload* cur = &lift;
      Payload* nxt = &buf_a;
      bool dangling = false;
      for (int c : tree.node(v).children) {
        const Payload* cp = views_[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr) {
          dangling = true;
          break;
        }
        ops_.Mul(*cur, *cp, nxt);
        cur = nxt;
        nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
      }
      if (dangling) continue;
      ops_.Add(&(*delta)[tree.RowKeyToParent(v, row)], *cur);
    }
  }

  void Propagate(int v, FlatHashMap<Payload> delta) {
    const RootedTree& tree = db_->tree();
    while (true) {
      if (delta.empty()) return;
      // Fold the delta into v's own view.
      delta.ForEach([&](uint64_t key, const Payload& p) {
        ops_.Add(&views_[v][key], p);
      });
      int parent = tree.node(v).parent;
      if (parent < 0) return;
      // Delta at the parent: only its rows matching the delta keys.
      const Relation& prel = db_->relation(parent);
      FlatHashMap<Payload> parent_delta;
      Payload lift;
      Payload buf_a;
      Payload buf_b;
      delta.ForEach([&](uint64_t key, const Payload& dp) {
        const std::vector<uint32_t>* rows =
            db_->RowsByChildKey(parent, v, key);
        if (rows == nullptr) return;
        for (uint32_t row : *rows) {
          ops_.Lift(parent, prel, row, db_->sign(parent, row), &lift);
          Payload* cur = &lift;
          Payload* nxt = &buf_a;
          bool dangling = false;
          for (int c : tree.node(parent).children) {
            const Payload* cp;
            if (c == v) {
              cp = &dp;  // the delta, not the (already updated) view
            } else {
              cp = views_[c].Find(tree.RowKeyToChild(parent, c, row));
            }
            if (cp == nullptr) {
              dangling = true;
              break;
            }
            ops_.Mul(*cur, *cp, nxt);
            cur = nxt;
            nxt = (nxt == &buf_a) ? &buf_b : &buf_a;
          }
          if (dangling) continue;
          ops_.Add(&parent_delta[tree.RowKeyToParent(parent, row)], *cur);
        }
      });
      delta = std::move(parent_delta);
      v = parent;
    }
  }

  const ShadowDb* db_;
  Ops ops_;
  std::vector<FlatHashMap<Payload>> views_;
};

}  // namespace relborg

#endif  // RELBORG_IVM_VIEW_TREE_H_
