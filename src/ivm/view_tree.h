// Factorized view-tree maintenance (the F-IVM algorithm, Sec. 3.1 and
// Fig. 4 right of the paper).
//
// A ViewTreeMaintainer keeps, for every join-tree node, a materialized view
// mapping the node's parent-edge key to a ring payload aggregated over its
// subtree. An insert batch at node v:
//
//   1. computes the per-key payload delta at v from the new rows (their
//      lifts multiplied with the children's current views),
//   2. propagates the delta up the path to the root: at each ancestor p,
//      only the rows matching the delta's keys (found via ShadowDb's
//      indexes) contribute, each multiplied with the *sibling* views,
//   3. applies the deltas to the views along the path.
//
// Work is proportional to the affected keys, not to the database size, and
// one compound-ring payload maintains the whole aggregate batch at once.
// The higher-order IVM baseline instantiates this same template with a
// scalar ring — one maintainer per aggregate, no sharing — which is
// exactly the distinction Fig. 4 (right) measures.
//
// The Ops parameter supplies the ring AND the physical view layout, so the
// covariance instantiation can keep its payloads in arena storage
// (ring/covar_arena.h) while the scalar baseline stays on FlatHashMap:
//
//   struct Ops {
//     using View = ...;     // keyed payload container, movable
//     using Scratch = ...;  // per-scan scratch, one instance per partition
//     // Version snapshot of a View (see ring/covar_arena.h's protocol);
//     // may be an empty struct for layouts without one.
//     using Snapshot = ...;
//     View MakeView() const;
//     Scratch MakeScratch() const;
//     bool Empty(const View&) const;
//     // Opaque payload handle of `key`, nullptr when absent. Handles stay
//     // valid while their owning view is not written to.
//     const double* Find(const View&, uint64_t key) const;
//     // Handle of `key` as of `snap` (== Find whenever the view has not
//     // been folded into since the snapshot was taken).
//     const double* FindAt(const View&, uint64_t key, const Snapshot&) const;
//     // One-acquire version snapshot / publication counter of the view.
//     Snapshot TakeSnapshot(const View&) const;
//     uint64_t ViewVersion(const View&) const;
//     // (*out)[key] += sign * lift(node, row) * prod(children handles).
//     void RowDelta(int node, const Relation&, size_t row, double sign,
//                   const double* const* children, size_t num_children,
//                   uint64_t key, View* out, Scratch*) const;
//     // dst[key] += payload for every entry of src, in src's iteration
//     // order (a pure function of src's key set).
//     void Merge(View* dst, const View& src) const;
//     // Merge + version publication: same ring addition, but payload
//     // writes are ordered before a release-store of dst's version
//     // watermark so concurrent snapshot readers never see a torn
//     // payload. Used for MAINTAINED views (propagation); plain Merge
//     // stays for scratch views (partial folds).
//     void FoldPublished(View* dst, const View& src) const;
//     // fn(uint64_t key, const double* handle) over all entries.
//     template <typename Fn> void ForEach(const View&, Fn&& fn) const;
//   };
#ifndef RELBORG_IVM_VIEW_TREE_H_
#define RELBORG_IVM_VIEW_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "ivm/shadow_db.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {

// A contiguous run of rows appended to one node's shadow relation. The
// stream scheduler hands groups of these (same view-tree depth, ascending
// node id) to strategies that can maintain them concurrently.
struct NodeRowRange {
  int node = -1;
  size_t first = 0;
  size_t count = 0;
};

// Write-side hook for view propagation: when non-null, ApplyDelta locks a
// node's view around the fold into it, so a concurrent speculative reader
// (the stream scheduler's compute stage) is excluded from exactly the view
// being written — never from the (read-only) upward scan between folds.
// Implementations must allow nested/overlapping locks from one writer.
class ViewWriteGate {
 public:
  virtual ~ViewWriteGate() = default;
  virtual void LockView(int v) = 0;
  virtual void UnlockView(int v) = 0;
};

// Precomputed child join keys for rows [first, first + count) of one
// range: keys[ci][row - first] == tree.RowKeyToChild(node, children[ci],
// row). The stream scheduler stages these off the maintenance thread while
// a conflicting earlier epoch makes full speculation pointless; a
// ComputeDelta consuming them skips the per-row key packing.
struct StagedChildKeys {
  size_t first = 0;
  std::vector<std::vector<uint64_t>> keys;  // per child, per row
};

template <typename Ops>
class ViewTreeMaintainer {
 public:
  using View = typename Ops::View;

  ViewTreeMaintainer(const ShadowDb* db, Ops ops)
      : db_(db), ops_(std::move(ops)) {
    const int num_nodes = db->tree().num_nodes();
    views_.reserve(num_nodes);
    for (int v = 0; v < num_nodes; ++v) views_.push_back(ops_.MakeView());
  }

  // Processes rows [first, first + count) previously appended to node v's
  // shadow relation (signs already recorded in the ShadowDb). With a
  // context, the per-row delta computation is domain-parallel over
  // deterministic partitions of the batch (partials merged in ascending
  // partition order — bit-identical for any thread count); upward
  // propagation is work-proportional and stays serial.
  //
  // `visible`, when non-null, is a per-node row watermark (indexed by node
  // id): maintenance reads at node u are bounded to rows [0, visible[u]).
  // The stream scheduler passes each epoch's visibility horizon here so
  // rows that a later epoch's commit already spliced (at ids >= the
  // horizon, always) stay invisible; nullptr reads everything committed —
  // the classic serial behavior. Results are bit-identical either way
  // whenever the rows above the horizon do not yet exist, which is exactly
  // the serial replay.
  void ApplyBatch(int v, size_t first, size_t count,
                  const ExecContext* ctx = nullptr,
                  const size_t* visible = nullptr,
                  ViewWriteGate* gate = nullptr) {
    ApplyDelta(v, ComputeDelta(v, first, count, ctx, visible), visible, gate);
  }

  // First half of ApplyBatch: the per-key payload delta at v for rows
  // [first, first + count), against the CURRENT child views. Reads only
  // const state (ShadowDb, child views), so deltas of nodes at the same
  // tree depth may be computed concurrently — no node reads a view another
  // same-depth node writes. The scan touches only the range's own rows,
  // which must sit at or below the epoch's watermark.
  //
  // `child_snaps`, when non-null, is a per-NODE array of view snapshots:
  // every child-view probe goes through Ops::FindAt bounded by the child's
  // snapshot, so payloads published after the snapshots stay invisible (the
  // SNAPSHOT HORIZON — the view-level analogue of the row watermark). The
  // stream scheduler's speculative compute stage passes the snapshots it
  // validates against; whenever validation succeeds the children never
  // changed, so the bounded and unbounded scans are bit-identical.
  // `staged`, when non-null, supplies precomputed child join keys for the
  // full [first, first + count) range (identical to what the scan would
  // pack itself).
  View ComputeDelta(int v, size_t first, size_t count,
                    const ExecContext* ctx = nullptr,
                    const size_t* visible = nullptr,
                    const typename Ops::Snapshot* child_snaps = nullptr,
                    const StagedChildKeys* staged = nullptr) {
    RELBORG_DCHECK(visible == nullptr || first + count <= visible[v]);
    (void)visible;  // only asserted: the scan stays inside its own range
    RELBORG_DCHECK(staged == nullptr || staged->first == first);
    View delta = ops_.MakeView();
    if (ctx == nullptr || ctx->NumPartitions(count) <= 1) {
      ScanDelta(v, first, count, &delta, child_snaps, staged, first);
    } else {
      const size_t parts = ctx->NumPartitions(count);
      std::vector<View> partials;
      partials.reserve(parts);
      for (size_t p = 0; p < parts; ++p) partials.push_back(ops_.MakeView());
      ctx->ParallelFor(parts, [&](size_t p) {
        const std::pair<size_t, size_t> b =
            ExecContext::PartitionBounds(count, parts, p);
        ScanDelta(v, first + b.first, b.second - b.first, &partials[p],
                  child_snaps, staged, first);
      });
      for (size_t p = 0; p < parts; ++p) ops_.Merge(&delta, partials[p]);
    }
    return delta;
  }

  // Second half: folds the delta into v's view and propagates it up the
  // root path. Serial; writes views on the path only. Ancestor reads (rows
  // matched through the ShadowDb indexes) honor the `visible` watermark.
  // Each fold into a maintained view is a PUBLISHED merge (payload writes
  // before the release-store of the view's version watermark) and, with a
  // gate, runs under that view's write lock — the scan producing the next
  // ancestor delta holds no lock, so concurrent snapshot readers of other
  // views overlap the expensive part of propagation.
  void ApplyDelta(int v, View delta, const size_t* visible = nullptr,
                  ViewWriteGate* gate = nullptr) {
    Propagate(v, std::move(delta), visible, gate);
  }

  // Version snapshot / publication counter of node v's view (acquire
  // loads; safe concurrently with maintenance on another thread).
  typename Ops::Snapshot SnapshotView(int v) const {
    return ops_.TakeSnapshot(views_[v]);
  }
  uint64_t ViewVersion(int v) const { return ops_.ViewVersion(views_[v]); }

  // Handle of the root payload (the maintained aggregate batch); nullptr
  // while the join is still empty.
  const double* Root() const {
    return ops_.Find(views_[db_->tree().root()], kUnitKey);
  }

  // Read access for tests.
  const View& view(int v) const { return views_[v]; }
  const Ops& ops() const { return ops_; }
  // Mutable view access for tests that drive the snapshot protocol by hand.
  View& mutable_view(int v) { return views_[v]; }

 private:
  // Computes the delta at v for rows [first, first + count) into *delta,
  // serially in row order. `range_first` is the first row of the FULL range
  // (== `first` except for the inner partitions of a parallel scan) — the
  // base that `staged` keys are indexed from.
  void ScanDelta(int v, size_t first, size_t count, View* delta,
                 const typename Ops::Snapshot* child_snaps,
                 const StagedChildKeys* staged, size_t range_first) {
    const RootedTree& tree = db_->tree();
    const Relation& rel = db_->relation(v);
    const std::vector<int>& children = tree.node(v).children;
    std::vector<const double*> spans(children.size());
    typename Ops::Scratch scratch = ops_.MakeScratch();
    for (size_t row = first; row < first + count; ++row) {
      bool dangling = false;
      for (size_t ci = 0; ci < children.size(); ++ci) {
        const uint64_t key =
            staged != nullptr ? staged->keys[ci][row - range_first]
                              : tree.RowKeyToChild(v, children[ci], row);
        const View& child = views_[children[ci]];
        spans[ci] = child_snaps != nullptr
                        ? ops_.FindAt(child, key, child_snaps[children[ci]])
                        : ops_.Find(child, key);
        if (spans[ci] == nullptr) {
          dangling = true;
          break;
        }
      }
      if (dangling) continue;
      ops_.RowDelta(v, rel, row, db_->sign(v, row), spans.data(),
                    spans.size(), tree.RowKeyToParent(v, row), delta,
                    &scratch);
    }
  }

  void Propagate(int v, View delta, const size_t* visible,
                 ViewWriteGate* gate) {
    const RootedTree& tree = db_->tree();
    while (true) {
      if (ops_.Empty(delta)) return;
      // Fold the delta into v's own view — a published merge, under v's
      // write lock when gated. The upward scan below runs unlocked.
      if (gate != nullptr) gate->LockView(v);
      ops_.FoldPublished(&views_[v], delta);
      if (gate != nullptr) gate->UnlockView(v);
      int parent = tree.node(v).parent;
      if (parent < 0) return;
      // Delta at the parent: only its rows matching the delta keys, and
      // only those below the watermark — index entries at or above it
      // belong to epochs this maintenance pass must not see yet (the ids
      // in a per-key vector ascend, so the visible rows are a prefix).
      const size_t parent_limit =
          visible == nullptr ? SIZE_MAX : visible[parent];
      const Relation& prel = db_->relation(parent);
      const std::vector<int>& children = tree.node(parent).children;
      View parent_delta = ops_.MakeView();
      std::vector<const double*> spans(children.size());
      typename Ops::Scratch scratch = ops_.MakeScratch();
      ops_.ForEach(delta, [&](uint64_t key, const double* dp) {
        const std::vector<uint32_t>* rows =
            db_->RowsByChildKey(parent, v, key);
        if (rows == nullptr) return;
        for (uint32_t row : *rows) {
          if (row >= parent_limit) break;
          bool dangling = false;
          for (size_t ci = 0; ci < children.size(); ++ci) {
            if (children[ci] == v) {
              spans[ci] = dp;  // the delta, not the (already updated) view
            } else {
              spans[ci] =
                  ops_.Find(views_[children[ci]],
                            tree.RowKeyToChild(parent, children[ci], row));
            }
            if (spans[ci] == nullptr) {
              dangling = true;
              break;
            }
          }
          if (dangling) continue;
          ops_.RowDelta(parent, prel, row, db_->sign(parent, row),
                        spans.data(), spans.size(),
                        tree.RowKeyToParent(parent, row), &parent_delta,
                        &scratch);
        }
      });
      delta = std::move(parent_delta);
      v = parent;
    }
  }

  const ShadowDb* db_;
  Ops ops_;
  std::vector<View> views_;
};

}  // namespace relborg

#endif  // RELBORG_IVM_VIEW_TREE_H_
