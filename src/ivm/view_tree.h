// Factorized view-tree maintenance (the F-IVM algorithm, Sec. 3.1 and
// Fig. 4 right of the paper).
//
// A ViewTreeMaintainer keeps, for every join-tree node, a materialized view
// mapping the node's parent-edge key to a ring payload aggregated over its
// subtree. An insert batch at node v:
//
//   1. computes the per-key payload delta at v from the new rows (their
//      lifts multiplied with the children's current views),
//   2. propagates the delta up the path to the root: at each ancestor p,
//      only the rows matching the delta's keys (found via ShadowDb's
//      indexes) contribute, each multiplied with the *sibling* views,
//   3. applies the deltas to the views along the path.
//
// Work is proportional to the affected keys, not to the database size, and
// one compound-ring payload maintains the whole aggregate batch at once.
// The higher-order IVM baseline instantiates this same template with a
// scalar ring — one maintainer per aggregate, no sharing — which is
// exactly the distinction Fig. 4 (right) measures.
//
// The Ops parameter supplies the ring AND the physical view layout, so the
// covariance instantiation can keep its payloads in arena storage
// (ring/covar_arena.h) while the scalar baseline stays on FlatHashMap:
//
//   struct Ops {
//     using View = ...;     // keyed payload container, movable
//     using Scratch = ...;  // per-scan scratch, one instance per partition
//     View MakeView() const;
//     Scratch MakeScratch() const;
//     bool Empty(const View&) const;
//     // Opaque payload handle of `key`, nullptr when absent. Handles stay
//     // valid while their owning view is not written to.
//     const double* Find(const View&, uint64_t key) const;
//     // (*out)[key] += sign * lift(node, row) * prod(children handles).
//     void RowDelta(int node, const Relation&, size_t row, double sign,
//                   const double* const* children, size_t num_children,
//                   uint64_t key, View* out, Scratch*) const;
//     // dst[key] += payload for every entry of src, in src's iteration
//     // order (a pure function of src's key set).
//     void Merge(View* dst, const View& src) const;
//     // fn(uint64_t key, const double* handle) over all entries.
//     template <typename Fn> void ForEach(const View&, Fn&& fn) const;
//   };
#ifndef RELBORG_IVM_VIEW_TREE_H_
#define RELBORG_IVM_VIEW_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "ivm/shadow_db.h"
#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {

// A contiguous run of rows appended to one node's shadow relation. The
// stream scheduler hands groups of these (same view-tree depth, ascending
// node id) to strategies that can maintain them concurrently.
struct NodeRowRange {
  int node = -1;
  size_t first = 0;
  size_t count = 0;
};

template <typename Ops>
class ViewTreeMaintainer {
 public:
  using View = typename Ops::View;

  ViewTreeMaintainer(const ShadowDb* db, Ops ops)
      : db_(db), ops_(std::move(ops)) {
    const int num_nodes = db->tree().num_nodes();
    views_.reserve(num_nodes);
    for (int v = 0; v < num_nodes; ++v) views_.push_back(ops_.MakeView());
  }

  // Processes rows [first, first + count) previously appended to node v's
  // shadow relation (signs already recorded in the ShadowDb). With a
  // context, the per-row delta computation is domain-parallel over
  // deterministic partitions of the batch (partials merged in ascending
  // partition order — bit-identical for any thread count); upward
  // propagation is work-proportional and stays serial.
  //
  // `visible`, when non-null, is a per-node row watermark (indexed by node
  // id): maintenance reads at node u are bounded to rows [0, visible[u]).
  // The stream scheduler passes each epoch's visibility horizon here so
  // rows that a later epoch's commit already spliced (at ids >= the
  // horizon, always) stay invisible; nullptr reads everything committed —
  // the classic serial behavior. Results are bit-identical either way
  // whenever the rows above the horizon do not yet exist, which is exactly
  // the serial replay.
  void ApplyBatch(int v, size_t first, size_t count,
                  const ExecContext* ctx = nullptr,
                  const size_t* visible = nullptr) {
    ApplyDelta(v, ComputeDelta(v, first, count, ctx, visible), visible);
  }

  // First half of ApplyBatch: the per-key payload delta at v for rows
  // [first, first + count), against the CURRENT child views. Reads only
  // const state (ShadowDb, child views), so deltas of nodes at the same
  // tree depth may be computed concurrently — no node reads a view another
  // same-depth node writes. The scan touches only the range's own rows,
  // which must sit at or below the epoch's watermark.
  View ComputeDelta(int v, size_t first, size_t count,
                    const ExecContext* ctx = nullptr,
                    const size_t* visible = nullptr) {
    RELBORG_DCHECK(visible == nullptr || first + count <= visible[v]);
    (void)visible;  // only asserted: the scan stays inside its own range
    View delta = ops_.MakeView();
    if (ctx == nullptr || ctx->NumPartitions(count) <= 1) {
      ScanDelta(v, first, count, &delta);
    } else {
      const size_t parts = ctx->NumPartitions(count);
      std::vector<View> partials;
      partials.reserve(parts);
      for (size_t p = 0; p < parts; ++p) partials.push_back(ops_.MakeView());
      ctx->ParallelFor(parts, [&](size_t p) {
        const std::pair<size_t, size_t> b =
            ExecContext::PartitionBounds(count, parts, p);
        ScanDelta(v, first + b.first, b.second - b.first, &partials[p]);
      });
      for (size_t p = 0; p < parts; ++p) ops_.Merge(&delta, partials[p]);
    }
    return delta;
  }

  // Second half: folds the delta into v's view and propagates it up the
  // root path. Serial; writes views on the path only. Ancestor reads (rows
  // matched through the ShadowDb indexes) honor the `visible` watermark.
  void ApplyDelta(int v, View delta, const size_t* visible = nullptr) {
    Propagate(v, std::move(delta), visible);
  }

  // Handle of the root payload (the maintained aggregate batch); nullptr
  // while the join is still empty.
  const double* Root() const {
    return ops_.Find(views_[db_->tree().root()], kUnitKey);
  }

  // Read access for tests.
  const View& view(int v) const { return views_[v]; }
  const Ops& ops() const { return ops_; }

 private:
  // Computes the delta at v for rows [first, first + count) into *delta,
  // serially in row order.
  void ScanDelta(int v, size_t first, size_t count, View* delta) {
    const RootedTree& tree = db_->tree();
    const Relation& rel = db_->relation(v);
    const std::vector<int>& children = tree.node(v).children;
    std::vector<const double*> spans(children.size());
    typename Ops::Scratch scratch = ops_.MakeScratch();
    for (size_t row = first; row < first + count; ++row) {
      bool dangling = false;
      for (size_t ci = 0; ci < children.size(); ++ci) {
        spans[ci] = ops_.Find(views_[children[ci]],
                              tree.RowKeyToChild(v, children[ci], row));
        if (spans[ci] == nullptr) {
          dangling = true;
          break;
        }
      }
      if (dangling) continue;
      ops_.RowDelta(v, rel, row, db_->sign(v, row), spans.data(),
                    spans.size(), tree.RowKeyToParent(v, row), delta,
                    &scratch);
    }
  }

  void Propagate(int v, View delta, const size_t* visible) {
    const RootedTree& tree = db_->tree();
    while (true) {
      if (ops_.Empty(delta)) return;
      // Fold the delta into v's own view.
      ops_.Merge(&views_[v], delta);
      int parent = tree.node(v).parent;
      if (parent < 0) return;
      // Delta at the parent: only its rows matching the delta keys, and
      // only those below the watermark — index entries at or above it
      // belong to epochs this maintenance pass must not see yet (the ids
      // in a per-key vector ascend, so the visible rows are a prefix).
      const size_t parent_limit =
          visible == nullptr ? SIZE_MAX : visible[parent];
      const Relation& prel = db_->relation(parent);
      const std::vector<int>& children = tree.node(parent).children;
      View parent_delta = ops_.MakeView();
      std::vector<const double*> spans(children.size());
      typename Ops::Scratch scratch = ops_.MakeScratch();
      ops_.ForEach(delta, [&](uint64_t key, const double* dp) {
        const std::vector<uint32_t>* rows =
            db_->RowsByChildKey(parent, v, key);
        if (rows == nullptr) return;
        for (uint32_t row : *rows) {
          if (row >= parent_limit) break;
          bool dangling = false;
          for (size_t ci = 0; ci < children.size(); ++ci) {
            if (children[ci] == v) {
              spans[ci] = dp;  // the delta, not the (already updated) view
            } else {
              spans[ci] =
                  ops_.Find(views_[children[ci]],
                            tree.RowKeyToChild(parent, children[ci], row));
            }
            if (spans[ci] == nullptr) {
              dangling = true;
              break;
            }
          }
          if (dangling) continue;
          ops_.RowDelta(parent, prel, row, db_->sign(parent, row),
                        spans.data(), spans.size(),
                        tree.RowKeyToParent(parent, row), &parent_delta,
                        &scratch);
        }
      });
      delta = std::move(parent_delta);
      v = parent;
    }
  }

  const ShadowDb* db_;
  Ops ops_;
  std::vector<View> views_;
};

}  // namespace relborg

#endif  // RELBORG_IVM_VIEW_TREE_H_
