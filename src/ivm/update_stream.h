// Builds insert streams for the IVM experiments: the rows of a source
// dataset are dealt out in per-relation batches, interleaved proportionally
// to relation sizes (so the database grows uniformly from empty, as in the
// Fig. 4 right experiment). Mixed streams additionally re-emit previously
// inserted rows as delete batches (multiplicity -1 — the ring's additive
// inverse), so relations can shrink mid-stream.
#ifndef RELBORG_IVM_UPDATE_STREAM_H_
#define RELBORG_IVM_UPDATE_STREAM_H_

#include <vector>

#include "query/join_tree.h"
#include "util/rng.h"

namespace relborg {

struct UpdateBatch {
  int node = -1;       // join-tree node receiving the rows
  double sign = 1.0;   // +1 insert batch, -1 delete batch
  std::vector<std::vector<double>> rows;
};

enum class StreamOrder {
  // One batch from every non-exhausted relation per round: small dimension
  // tables finish within a few rounds and the fact table dominates the rest
  // of the stream — the F-IVM paper's retailer loading pattern.
  kRoundRobin,
  // Relations drawn with probability proportional to their remaining rows;
  // all relations finish near the end (stresses late high-fan-out inserts).
  kProportional,
};

struct UpdateStreamOptions {
  size_t batch_size = 1000;
  uint64_t seed = 5;
  bool shuffle_rows = true;  // randomize insertion order within relations
  StreamOrder order = StreamOrder::kRoundRobin;
};

// Deals every row of every relation of `query` into batches.
std::vector<UpdateBatch> BuildInsertStream(
    const JoinQuery& query, const UpdateStreamOptions& options = {});

struct MixedStreamOptions {
  UpdateStreamOptions insert;
  // After each insert batch, a delete batch follows with this probability
  // (drawn deterministically from `insert.seed`). Each delete batch
  // re-emits up to `insert.batch_size` of the oldest not-yet-deleted rows
  // of a random relation with sign -1.
  double delete_probability = 0.25;
  // When a delete batch fires, with this (conditional) probability it is a
  // FULL RETRACTION instead: one delete batch re-emitting EVERY live row
  // of the picked relation — entire prior insert batches retracted at
  // once, and the relation's live multiset left momentarily empty. This is
  // the empty-relation / empty-epoch edge case the stream scheduler must
  // coalesce and apply correctly (the retraction can exceed
  // insert.batch_size rows and can cancel an epoch's net delta to zero).
  double full_retraction_probability = 0.0;
  // After each insert batch (independently of the delete draw), an EMPTY
  // batch — zero rows, insert sign — follows with this probability. Empty
  // batches produce zero-range epochs once the scheduler coalesces them:
  // the epoch has batches but no rows, so its compute stage has nothing to
  // speculate and its application is a no-op that must still retire in
  // order. Default 0 keeps streams byte-identical to older builds (the
  // draw is skipped entirely, like full_retraction_probability).
  double empty_batch_probability = 0.0;
};

// Insert stream interleaved with delete batches that retract previously
// inserted rows. A pure function of (query, options): the batch sequence,
// row contents and signs never depend on timing or thread count. Every
// delete targets rows some earlier batch of the same stream inserted, so
// replaying the stream in order keeps multiplicities in {0, +1}.
std::vector<UpdateBatch> BuildMixedStream(const JoinQuery& query,
                                          const MixedStreamOptions& options);

// Total rows across a stream (inserts and deletes both count).
size_t StreamRowCount(const std::vector<UpdateBatch>& stream);

}  // namespace relborg

#endif  // RELBORG_IVM_UPDATE_STREAM_H_
