// Builds insert streams for the IVM experiments: the rows of a source
// dataset are dealt out in per-relation batches, interleaved proportionally
// to relation sizes (so the database grows uniformly from empty, as in the
// Fig. 4 right experiment).
#ifndef RELBORG_IVM_UPDATE_STREAM_H_
#define RELBORG_IVM_UPDATE_STREAM_H_

#include <vector>

#include "query/join_tree.h"
#include "util/rng.h"

namespace relborg {

struct UpdateBatch {
  int node = -1;  // join-tree node receiving the inserts
  std::vector<std::vector<double>> rows;
};

enum class StreamOrder {
  // One batch from every non-exhausted relation per round: small dimension
  // tables finish within a few rounds and the fact table dominates the rest
  // of the stream — the F-IVM paper's retailer loading pattern.
  kRoundRobin,
  // Relations drawn with probability proportional to their remaining rows;
  // all relations finish near the end (stresses late high-fan-out inserts).
  kProportional,
};

struct UpdateStreamOptions {
  size_t batch_size = 1000;
  uint64_t seed = 5;
  bool shuffle_rows = true;  // randomize insertion order within relations
  StreamOrder order = StreamOrder::kRoundRobin;
};

// Deals every row of every relation of `query` into batches.
std::vector<UpdateBatch> BuildInsertStream(
    const JoinQuery& query, const UpdateStreamOptions& options = {});

// Total rows across a stream.
size_t StreamRowCount(const std::vector<UpdateBatch>& stream);

}  // namespace relborg

#endif  // RELBORG_IVM_UPDATE_STREAM_H_
