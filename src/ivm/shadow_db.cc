#include "ivm/shadow_db.h"

#include "obs/trace.h"
#include "util/check.h"

namespace relborg {

ShadowDb::ShadowDb(const JoinQuery& source, int root) {
  const int n = source.num_relations();
  relations_.resize(n);
  for (int v = 0; v < n; ++v) {
    const Relation* src = source.relation(v);
    relations_[v] = catalog_.AddRelation(src->name(), src->schema());
  }
  for (int v = 0; v < n; ++v) query_.AddRelation(relations_[v]);
  for (const JoinEdge& e : source.edges()) {
    // Reconstruct the join by attribute names (schemas are identical).
    std::vector<std::string> names;
    for (int attr : e.attrs_a) {
      names.push_back(source.relation(e.a)->schema().attr(attr).name);
    }
    query_.AddJoin(source.relation(e.a)->name(), source.relation(e.b)->name(),
                   names);
  }
  tree_ = std::make_unique<RootedTree>(query_.Root(root));
  signs_.resize(n);
  child_index_.resize(n);
  committed_ = std::make_unique<std::atomic<size_t>[]>(n);
  for (int v = 0; v < n; ++v) {
    child_index_[v].resize(tree_->node(v).children.size());
    committed_[v].store(0, std::memory_order_relaxed);
  }
}

size_t ShadowDb::AppendRows(int v,
                            const std::vector<std::vector<double>>& rows,
                            double sign) {
  Relation* rel = relations_[v];
  const size_t first = rel->num_rows();
  const RootedNode& node = tree_->node(v);
  for (const auto& values : rows) {
    rel->AppendRow(values);
    signs_[v].push_back(sign);
    size_t row = rel->num_rows() - 1;
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      uint64_t key = tree_->RowKeyToChild(v, node.children[ci], row);
      child_index_[v][ci][key].push_back(static_cast<uint32_t>(row));
    }
  }
  committed_[v].store(rel->num_rows(), std::memory_order_release);
  return first;
}

namespace {

// Packed key of a not-yet-appended row, matching PackRowKey on the
// appended relation bit for bit: Column::AppendAsDouble casts categorical
// values with static_cast<int32_t>, so the same cast here guarantees
// staged fragments and per-row index inserts agree.
uint64_t PackValuesKey(const std::vector<double>& values,
                       const std::vector<int>& attrs) {
  if (attrs.empty()) return kUnitKey;
  if (attrs.size() == 1) {
    return PackKey1(static_cast<int32_t>(values[attrs[0]]));
  }
  RELBORG_DCHECK(attrs.size() == 2);
  return PackKey2(static_cast<int32_t>(values[attrs[0]]),
                  static_cast<int32_t>(values[attrs[1]]));
}

}  // namespace

IngestChunk ShadowDb::StageRows(int v, std::vector<std::vector<double>> rows,
                                std::vector<double> signs,
                                size_t first) const {
  RELBORG_CHECK(signs.size() == rows.size());
  IngestChunk chunk;
  chunk.node = v;
  chunk.first = first;
  chunk.rows = rows.size();
  chunk.signs = std::move(signs);
  const RootedNode& node = tree_->node(v);
  chunk.child_groups.resize(node.children.size());
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    const std::vector<int>& attrs =
        tree_->node(node.children[ci]).parent_key_attrs;
    FlatHashMap<std::vector<uint32_t>>& groups = chunk.child_groups[ci];
    for (size_t i = 0; i < rows.size(); ++i) {
      groups[PackValuesKey(rows[i], attrs)].push_back(
          static_cast<uint32_t>(first + i));
    }
  }
  // Transpose into typed columns; the casts match Column::AppendAsDouble,
  // so committed state is identical to AppendRows of the same rows.
  const Schema& schema = relations_[v]->schema();
  chunk.double_cols.resize(schema.num_attrs());
  chunk.cat_cols.resize(schema.num_attrs());
  for (int a = 0; a < schema.num_attrs(); ++a) {
    if (schema.attr(a).type == AttrType::kDouble) {
      std::vector<double>& col = chunk.double_cols[a];
      col.reserve(rows.size());
      for (const auto& values : rows) col.push_back(values[a]);
    } else {
      std::vector<int32_t>& col = chunk.cat_cols[a];
      col.reserve(rows.size());
      for (const auto& values : rows) {
        col.push_back(static_cast<int32_t>(values[a]));
      }
    }
  }
  return chunk;
}

void ShadowDb::CommitChunk(IngestChunk&& chunk) {
  RELBORG_TRACE_SPAN("commit-chunk", "storage", -1, chunk.node);
  const int v = chunk.node;
  Relation* rel = relations_[v];
  RELBORG_CHECK_MSG(chunk.first == rel->num_rows(),
                    "IngestChunk staged for a different row offset");
  for (int a = 0; a < rel->num_attrs(); ++a) {
    if (rel->schema().attr(a).type == AttrType::kDouble) {
      rel->mutable_column(a).AppendChunk(chunk.double_cols[a]);
    } else {
      rel->mutable_column(a).AppendChunk(chunk.cat_cols[a]);
    }
  }
  rel->CommitAppendedRows(chunk.rows);
  signs_[v].insert(signs_[v].end(), chunk.signs.begin(), chunk.signs.end());
  for (size_t ci = 0; ci < chunk.child_groups.size(); ++ci) {
    chunk.child_groups[ci].ForEach(
        [&](uint64_t key, const std::vector<uint32_t>& ids) {
          std::vector<uint32_t>& dst = child_index_[v][ci][key];
          dst.insert(dst.end(), ids.begin(), ids.end());
        });
  }
  // The visibility flip: everything above landed first, then one release
  // store publishes the rows. Readers bound by an older watermark (or by
  // an epoch horizon at or below it) never touch the spliced region.
  committed_[v].store(chunk.first + chunk.rows, std::memory_order_release);
  // The payload is consumed; keep the header (node/first/rows) valid and
  // drop the buffers so an epoch retained for maintenance stays small.
  chunk.double_cols.clear();
  chunk.cat_cols.clear();
  chunk.signs.clear();
  chunk.child_groups.clear();
}

const std::vector<uint32_t>* ShadowDb::RowsByChildKey(int v, int c,
                                                      uint64_t key) const {
  const RootedNode& node = tree_->node(v);
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    if (node.children[ci] == c) {
      return child_index_[v][ci].Find(key);
    }
  }
  RELBORG_CHECK_MSG(false, "c is not a child of v");
  return nullptr;
}

}  // namespace relborg
