#include "ivm/shadow_db.h"

#include "util/check.h"

namespace relborg {

ShadowDb::ShadowDb(const JoinQuery& source, int root) {
  const int n = source.num_relations();
  relations_.resize(n);
  for (int v = 0; v < n; ++v) {
    const Relation* src = source.relation(v);
    relations_[v] = catalog_.AddRelation(src->name(), src->schema());
  }
  for (int v = 0; v < n; ++v) query_.AddRelation(relations_[v]);
  for (const JoinEdge& e : source.edges()) {
    // Reconstruct the join by attribute names (schemas are identical).
    std::vector<std::string> names;
    for (int attr : e.attrs_a) {
      names.push_back(source.relation(e.a)->schema().attr(attr).name);
    }
    query_.AddJoin(source.relation(e.a)->name(), source.relation(e.b)->name(),
                   names);
  }
  tree_ = std::make_unique<RootedTree>(query_.Root(root));
  signs_.resize(n);
  child_index_.resize(n);
  for (int v = 0; v < n; ++v) {
    child_index_[v].resize(tree_->node(v).children.size());
  }
}

size_t ShadowDb::AppendRows(int v,
                            const std::vector<std::vector<double>>& rows,
                            double sign) {
  Relation* rel = relations_[v];
  const size_t first = rel->num_rows();
  const RootedNode& node = tree_->node(v);
  for (const auto& values : rows) {
    rel->AppendRow(values);
    signs_[v].push_back(sign);
    size_t row = rel->num_rows() - 1;
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      uint64_t key = tree_->RowKeyToChild(v, node.children[ci], row);
      child_index_[v][ci][key].push_back(static_cast<uint32_t>(row));
    }
  }
  return first;
}

const std::vector<uint32_t>* ShadowDb::RowsByChildKey(int v, int c,
                                                      uint64_t key) const {
  const RootedNode& node = tree_->node(v);
  for (size_t ci = 0; ci < node.children.size(); ++ci) {
    if (node.children[ci] == c) {
      return child_index_[v][ci].Find(key);
    }
  }
  RELBORG_CHECK_MSG(false, "c is not a child of v");
  return nullptr;
}

}  // namespace relborg
