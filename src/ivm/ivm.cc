#include "ivm/ivm.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "obs/trace.h"
#include "util/check.h"

namespace relborg {
namespace {

// Multiplier attribute lists for the scalar aggregate SUM(x_i * x_j);
// index n (== fm.num_features()) denotes the constant feature 1.
std::vector<std::vector<int>> MultipliersFor(const FeatureMap& fm,
                                             int num_nodes, int i, int j) {
  const int n = fm.num_features();
  std::vector<std::vector<int>> mults(num_nodes);
  if (i < n) mults[fm.NodeOf(i)].push_back(fm.AttrOf(i));
  if (j < n) mults[fm.NodeOf(j)].push_back(fm.AttrOf(j));
  return mults;
}

}  // namespace

HigherOrderIvm::HigherOrderIvm(const ShadowDb* db, const FeatureMap* fm,
                               const ExecPolicy& policy)
    : db_(db), fm_(fm), ctx_(policy) {
  const int n = fm->num_features();
  const int num_nodes = db->tree().num_nodes();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      pairs_.push_back({i, j});
      maintainers_.emplace_back(
          db, ScalarIvmOps(MultipliersFor(*fm, num_nodes, i, j)));
    }
  }
  versions_ = std::make_unique<std::atomic<uint64_t>[]>(num_nodes);
  for (int v = 0; v < num_nodes; ++v) {
    versions_[v].store(0, std::memory_order_relaxed);
  }
}

std::vector<int> HigherOrderIvm::RootPath(int v) const {
  std::vector<int> path;
  for (int u = v; u >= 0; u = db_->tree().node(u).parent) path.push_back(u);
  return path;
}

void HigherOrderIvm::BumpVersions(const std::vector<int>& path) {
  // Release: the bump publishes the folds the ParallelFor join just made
  // visible to this thread, so a compute-thread acquire load that still
  // sees the OLD version is guaranteed the old view contents too.
  for (int u : path) versions_[u].fetch_add(1, std::memory_order_release);
}

void HigherOrderIvm::ApplyBatch(int v, size_t first, size_t count,
                                const size_t* visible, ViewWriteGate* gate) {
  RELBORG_TRACE_SPAN("hoivm/fold", "ivm", -1, v);
  // The maintainers are mutually independent; each one applies the batch
  // serially, so the per-maintainer state is thread-count-invariant. The
  // root path is write-locked coarsely, once around the parallel fan-out
  // (see the RangeDelta comment in ivm.h).
  const std::vector<int> path = RootPath(v);
  if (gate != nullptr) {
    for (int u : path) gate->LockView(u);
  }
  ctx_.ParallelFor(maintainers_.size(), [&](size_t k) {
    maintainers_[k].ApplyBatch(v, first, count, /*ctx=*/nullptr, visible);
  });
  BumpVersions(path);
  if (gate != nullptr) {
    for (int u : path) gate->UnlockView(u);
  }
}

HigherOrderIvm::RangeDelta HigherOrderIvm::ComputeRangeDelta(
    const NodeRowRange& r, std::vector<std::pair<int, uint64_t>>* observed,
    const StagedChildKeys* staged) {
  RELBORG_TRACE_SPAN("hoivm/delta", "ivm", -1, r.node);
  for (int c : db_->tree().node(r.node).children) {
    observed->push_back({c, versions_[c].load(std::memory_order_acquire)});
  }
  RangeDelta delta(maintainers_.size());
  ctx_.ParallelFor(maintainers_.size(), [&](size_t k) {
    delta[k] = maintainers_[k].ComputeDelta(r.node, r.first, r.count,
                                            /*ctx=*/nullptr,
                                            /*visible=*/nullptr,
                                            /*child_snaps=*/nullptr, staged);
  });
  return delta;
}

bool HigherOrderIvm::RangeDeltaValid(
    const std::vector<std::pair<int, uint64_t>>& observed) const {
  for (const auto& [node, version] : observed) {
    if (versions_[node].load(std::memory_order_acquire) != version) {
      return false;
    }
  }
  return true;
}

void HigherOrderIvm::ApplyRangeDelta(const NodeRowRange& r, RangeDelta delta,
                                     const size_t* visible,
                                     ViewWriteGate* gate) {
  RELBORG_TRACE_SPAN("hoivm/propagate", "ivm", -1, r.node);
  const std::vector<int> path = RootPath(r.node);
  if (gate != nullptr) {
    for (int u : path) gate->LockView(u);
  }
  ctx_.ParallelFor(maintainers_.size(), [&](size_t k) {
    maintainers_[k].ApplyDelta(r.node, std::move(delta[k]), visible,
                               /*gate=*/nullptr);
  });
  BumpVersions(path);
  if (gate != nullptr) {
    for (int u : path) gate->UnlockView(u);
  }
}

void HigherOrderIvm::SaveCheckpoint(ByteSink* sink) const {
  const int num_nodes = db_->tree().num_nodes();
  for (const ViewTreeMaintainer<ScalarIvmOps>& m : maintainers_) {
    for (int v = 0; v < num_nodes; ++v) {
      const FlatHashMap<double>& view = m.view(v);
      sink->U64(view.size());
      view.ForEach([&](uint64_t key, const double& val) {
        sink->U64(key);
        sink->F64(val);
      });
    }
  }
  for (int v = 0; v < num_nodes; ++v) {
    sink->U64(versions_[v].load(std::memory_order_relaxed));
  }
}

Status HigherOrderIvm::LoadCheckpoint(ByteSource* src) {
  const int num_nodes = db_->tree().num_nodes();
  for (ViewTreeMaintainer<ScalarIvmOps>& m : maintainers_) {
    for (int v = 0; v < num_nodes; ++v) {
      FlatHashMap<double>& view = m.mutable_view(v);
      const uint64_t count = src->U64();
      if (count * 2 * sizeof(uint64_t) > src->remaining()) {
        return Status::DataLoss("truncated HigherOrderIvm checkpoint");
      }
      for (uint64_t k = 0; k < count; ++k) {
        const uint64_t key = src->U64();
        view[key] = src->F64();
      }
    }
  }
  for (int v = 0; v < num_nodes; ++v) {
    versions_[v].store(src->U64(), std::memory_order_relaxed);
  }
  return src->ok() ? Status::Ok()
                   : Status::DataLoss("truncated HigherOrderIvm checkpoint");
}

CovarMatrix HigherOrderIvm::Current() const {
  const int n = fm_->num_features();
  CovarPayload payload = CovarPayload::Zero(n);
  for (size_t k = 0; k < pairs_.size(); ++k) {
    const double* value = maintainers_[k].Root();
    double v = value == nullptr ? 0.0 : *value;
    auto [i, j] = pairs_[k];
    if (i == n && j == n) {
      payload.count = v;
    } else if (j == n) {
      payload.sum[i] = v;
    } else {
      payload.quad[UpperTriIndex(n, i, j)] = v;
    }
  }
  return CovarMatrix(n, std::move(payload));
}

FirstOrderIvm::FirstOrderIvm(const ShadowDb* db, const FeatureMap* fm,
                             const ExecPolicy& policy)
    : db_(db),
      fm_(fm),
      ctx_(policy),
      parent_index_(db->tree().num_nodes()),
      indexed_rows_(db->tree().num_nodes(), 0) {
  const int n = fm->num_features();
  const int num_nodes = db->tree().num_nodes();
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      pairs_.push_back({i, j});
      mults_.push_back(MultipliersFor(*fm, num_nodes, i, j));
    }
  }
  values_.assign(pairs_.size(), 0.0);
}

CovarMatrix FirstOrderIvm::Current() const {
  const int n = fm_->num_features();
  CovarPayload payload = CovarPayload::Zero(n);
  for (size_t k = 0; k < pairs_.size(); ++k) {
    auto [i, j] = pairs_[k];
    if (i == n && j == n) {
      payload.count = values_[k];
    } else if (j == n) {
      payload.sum[i] = values_[k];
    } else {
      payload.quad[UpperTriIndex(n, i, j)] = values_[k];
    }
  }
  return CovarMatrix(n, std::move(payload));
}

void FirstOrderIvm::SaveCheckpoint(ByteSink* sink) const {
  sink->U64(values_.size());
  sink->F64Span(values_.data(), values_.size());
  sink->U64(indexed_rows_.size());
  for (size_t rows : indexed_rows_) sink->U64(rows);
}

Status FirstOrderIvm::LoadCheckpoint(ByteSource* src) {
  if (src->U64() != values_.size()) {
    return Status::InvalidArgument(
        "FirstOrderIvm checkpoint aggregate count mismatch");
  }
  src->F64Span(values_.data(), values_.size());
  if (src->U64() != indexed_rows_.size()) {
    return Status::InvalidArgument(
        "FirstOrderIvm checkpoint node count mismatch");
  }
  for (size_t& rows : indexed_rows_) rows = static_cast<size_t>(src->U64());
  if (!src->ok()) {
    return Status::DataLoss("truncated FirstOrderIvm checkpoint");
  }
  // Rebuild the parent-edge indexes from the restored ShadowDb rows in
  // ascending row order — exactly the order the incremental build appended
  // them, so lookups enumerate identical row sequences after restore.
  const RootedTree& tree = db_->tree();
  for (int u = 0; u < tree.num_nodes(); ++u) {
    if (u == tree.root()) continue;
    if (indexed_rows_[u] > db_->relation(u).num_rows()) {
      return Status::InvalidArgument(
          "FirstOrderIvm checkpoint indexes rows the restored database "
          "does not hold");
    }
    for (size_t row = 0; row < indexed_rows_[u]; ++row) {
      parent_index_[u][tree.RowKeyToParent(u, row)].push_back(
          static_cast<uint32_t>(row));
    }
  }
  return Status::Ok();
}

void FirstOrderIvm::ApplyBatch(int v, size_t first, size_t count,
                               const size_t* visible) {
  RELBORG_TRACE_SPAN("foivm/delta-join", "ivm", -1, v);
  const RootedTree& tree = db_->tree();
  // Bring the (base-relation) indexes up to date — a DBMS maintains these
  // incrementally; what first-order IVM lacks is intermediate VIEWS. Under
  // a watermark, only the visible prefix is indexed: the stream scheduler
  // may have committed rows of FUTURE epochs already, and indexing them
  // here would leak them into this batch's delta join. The clamp keeps
  // indexed_rows_ monotone because epoch watermarks only ever grow.
  for (int u = 0; u < tree.num_nodes(); ++u) {
    if (u == tree.root()) continue;
    const Relation& rel = db_->relation(u);
    const size_t limit = visible == nullptr
                             ? rel.num_rows()
                             : std::min(rel.num_rows(), visible[u]);
    for (size_t row = indexed_rows_[u]; row < limit; ++row) {
      parent_index_[u][tree.RowKeyToParent(u, row)].push_back(
          static_cast<uint32_t>(row));
    }
    indexed_rows_[u] = std::max(indexed_rows_[u], limit);
  }
  // One delta query per aggregate: each re-enumerates the delta join. No
  // sharing across the batch — the defining cost of this strategy. The
  // delta queries are independent (disjoint accumulators, read-only
  // indexes), so they may run in parallel without changing any result.
  ctx_.ParallelFor(pairs_.size(), [&](size_t k) {
    double acc = 0;
    for (size_t row = first; row < first + count; ++row) {
      Expand(v, row, /*from=*/-1, db_->sign(v, row), mults_[k], visible,
             &acc);
    }
    values_[k] += acc;
  });
}

void FirstOrderIvm::Expand(int v, size_t row, int from, double mult,
                           const std::vector<std::vector<int>>& mults,
                           const size_t* visible, double* acc) {
  const RootedTree& tree = db_->tree();
  const Relation& rel = db_->relation(v);
  for (int attr : mults[v]) mult *= rel.Double(row, attr);

  // Neighbors to expand (children and parent, minus where we came from).
  std::vector<int> neighbors;
  for (int c : tree.node(v).children) {
    if (c != from) neighbors.push_back(c);
  }
  int parent = tree.node(v).parent;
  if (parent >= 0 && parent != from) neighbors.push_back(parent);

  std::function<void(size_t, double)> helper = [&](size_t ni, double m) {
    if (ni == neighbors.size()) {
      *acc += m;
      return;
    }
    int u = neighbors[ni];
    const std::vector<uint32_t>* rows;
    if (u == parent) {
      rows = db_->RowsByChildKey(parent, v, tree.RowKeyToParent(v, row));
    } else {
      rows = parent_index_[u].Find(tree.RowKeyToChild(v, u, row));
    }
    if (rows == nullptr) return;
    // parent_index_ holds visible rows only (built under the same
    // watermark above); the ShadowDb child index may already hold spliced
    // future rows, which sit past the visible prefix.
    const size_t limit = visible == nullptr ? SIZE_MAX : visible[u];
    for (uint32_t urow : *rows) {
      if (urow >= limit) break;
      // Expand returns the sum over u's side of per-assignment products;
      // distributivity lets the remaining neighbors multiply against that
      // sum (delta-query plans push aggregates too — the cost this
      // baseline cannot avoid is re-running the plan once per aggregate).
      double sub = 0;
      Expand(u, urow, v, db_->sign(u, urow), mults, visible, &sub);
      if (sub != 0) helper(ni + 1, m * sub);
    }
  };
  helper(0, mult);
}

}  // namespace relborg
