// Synthetic Favorita dataset (Corporación Favorita grocery forecasting, one
// of the public datasets used by the paper's experiments). Star join with a
// composite-key edge: Sales is the fact; Transactions joins on
// (dateid, store); Oil and Holidays join on dateid; Items and Stores join
// on their keys.
#include <algorithm>
#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace relborg {

Dataset MakeFavorita(const GenOptions& options) {
  const double s = options.scale;
  const int kDates = std::max(40, static_cast<int>(350 * std::sqrt(s)));
  const int kStores = std::max(10, static_cast<int>(60 * std::sqrt(s)));
  const int kItems = std::max(50, static_cast<int>(1500 * std::sqrt(s)));
  const size_t kSalesRows = static_cast<size_t>(1500000 * s);

  Dataset ds;
  ds.name = "favorita";
  ds.catalog = std::make_unique<Catalog>();
  Rng rng(options.seed + 1);

  // --- Items(item, family, class, perishable) ---
  Schema items_schema({{"item", AttrType::kCategorical},
                       {"family", AttrType::kCategorical},
                       {"class", AttrType::kCategorical},
                       {"perishable", AttrType::kDouble}});
  Relation* items = ds.catalog->AddRelation("Items", items_schema);
  std::vector<double> item_effect(kItems);
  for (int i = 0; i < kItems; ++i) {
    int32_t family = rng.SkewedCategory(20);
    double perishable = rng.Uniform() < 0.25 ? 1.0 : 0.0;
    item_effect[i] = rng.Gaussian(0, 1.2) + 0.8 * perishable;
    items->AppendRow({static_cast<double>(i), static_cast<double>(family),
                      static_cast<double>(family * 3 + rng.Below(3)),
                      perishable});
  }

  // --- Stores(store, city, state, type, cluster, capacity) ---
  Schema stores_schema({{"store", AttrType::kCategorical},
                        {"city", AttrType::kCategorical},
                        {"state", AttrType::kCategorical},
                        {"type", AttrType::kCategorical},
                        {"cluster", AttrType::kCategorical},
                        {"capacity", AttrType::kDouble}});
  Relation* stores = ds.catalog->AddRelation("Stores", stores_schema);
  std::vector<double> store_effect(kStores);
  for (int st = 0; st < kStores; ++st) {
    int32_t city = rng.SkewedCategory(22);
    double capacity = rng.Uniform(10, 100);
    store_effect[st] = 0.02 * capacity + rng.Gaussian(0, 0.8);
    stores->AppendRow({static_cast<double>(st), static_cast<double>(city),
                       static_cast<double>(city % 16),
                       static_cast<double>(rng.Below(5)),
                       static_cast<double>(rng.Below(17)), capacity});
  }

  // --- Oil(dateid, oilprice) --- (random walk)
  Schema oil_schema({{"dateid", AttrType::kCategorical},
                     {"oilprice", AttrType::kDouble}});
  Relation* oil = ds.catalog->AddRelation("Oil", oil_schema);
  std::vector<double> oil_price(kDates);
  double price = 55.0;
  for (int d = 0; d < kDates; ++d) {
    price = std::max(20.0, price + rng.Gaussian(0, 1.0));
    oil_price[d] = price;
    oil->AppendRow({static_cast<double>(d), price});
  }

  // --- Holidays(dateid, holidaytype, is_holiday) ---
  Schema holiday_schema({{"dateid", AttrType::kCategorical},
                         {"holidaytype", AttrType::kCategorical},
                         {"is_holiday", AttrType::kDouble}});
  Relation* holidays = ds.catalog->AddRelation("Holidays", holiday_schema);
  std::vector<double> holiday_boost(kDates);
  for (int d = 0; d < kDates; ++d) {
    bool is_holiday = rng.Uniform() < 0.1;
    holiday_boost[d] = is_holiday ? 1.5 : 0.0;
    holidays->AppendRow({static_cast<double>(d),
                         static_cast<double>(is_holiday ? rng.Below(5) : 5),
                         is_holiday ? 1.0 : 0.0});
  }

  // --- Transactions(dateid, store, transactions) --- composite key edge.
  Schema txn_schema({{"dateid", AttrType::kCategorical},
                     {"store", AttrType::kCategorical},
                     {"transactions", AttrType::kDouble}});
  Relation* txns = ds.catalog->AddRelation("Transactions", txn_schema);
  std::vector<uint8_t> has_txn(static_cast<size_t>(kDates) * kStores, 0);
  for (int d = 0; d < kDates; ++d) {
    for (int st = 0; st < kStores; ++st) {
      if (rng.Uniform() < 0.08) continue;  // store closed / data missing
      has_txn[static_cast<size_t>(d) * kStores + st] = 1;
      double t = 800 + 40 * store_effect[st] + 300 * (holiday_boost[d] > 0) +
                 rng.Gaussian(0, 120);
      txns->AppendRow({static_cast<double>(d), static_cast<double>(st),
                       std::max(50.0, t)});
    }
  }

  // --- Sales(dateid, store, item, unitsales, onpromotion) ---
  Schema sales_schema({{"dateid", AttrType::kCategorical},
                       {"store", AttrType::kCategorical},
                       {"item", AttrType::kCategorical},
                       {"unitsales", AttrType::kDouble},
                       {"onpromotion", AttrType::kDouble}});
  Relation* sales = ds.catalog->AddRelation("Sales", sales_schema);
  sales->Reserve(kSalesRows);
  for (size_t i = 0; i < kSalesRows; ++i) {
    int d = static_cast<int>(rng.Below(kDates));
    int st = static_cast<int>(rng.Below(kStores));
    int it = rng.SkewedCategory(kItems, 0.7);
    double promo = rng.Uniform() < 0.15 ? 1.0 : 0.0;
    double units = 6.0 + item_effect[it] + store_effect[st] +
                   holiday_boost[d] + 2.2 * promo -
                   0.02 * (oil_price[d] - 55.0) + rng.Gaussian(0, 1.8);
    sales->AppendRow({static_cast<double>(d), static_cast<double>(st),
                      static_cast<double>(it), std::max(0.0, units), promo});
  }

  ds.query.AddRelation(sales);
  ds.query.AddRelation(items);
  ds.query.AddRelation(stores);
  ds.query.AddRelation(txns);
  ds.query.AddRelation(oil);
  ds.query.AddRelation(holidays);
  ds.query.AddJoin("Sales", "Items", {"item"});
  ds.query.AddJoin("Sales", "Stores", {"store"});
  ds.query.AddJoin("Sales", "Transactions", {"dateid", "store"});
  ds.query.AddJoin("Sales", "Oil", {"dateid"});
  ds.query.AddJoin("Sales", "Holidays", {"dateid"});

  ds.fact = "Sales";
  ds.features = {{"Sales", "onpromotion"},     {"Items", "perishable"},
                 {"Stores", "capacity"},       {"Transactions", "transactions"},
                 {"Oil", "oilprice"},          {"Holidays", "is_holiday"},
                 {"Sales", "unitsales"}};
  ds.response = {"Sales", "unitsales"};
  ds.categoricals = {{"Items", "family"},
                     {"Stores", "city"},
                     {"Stores", "type"},
                     {"Stores", "cluster"},
                     {"Holidays", "holidaytype"}};
  return ds;
}

}  // namespace relborg
