#include "data/dataset.h"

#include "util/check.h"

namespace relborg {

Dataset MakeDataset(const std::string& name, const GenOptions& options) {
  if (name == "retailer") return MakeRetailer(options);
  if (name == "favorita") return MakeFavorita(options);
  if (name == "yelp") return MakeYelp(options);
  if (name == "tpcds") return MakeTpcDs(options);
  RELBORG_CHECK_MSG(false, name.c_str());
  return {};
}

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"retailer", "favorita", "yelp", "tpcds"};
  return *names;
}

}  // namespace relborg
