// Synthetic dataset generators mirroring the four datasets of the paper's
// experiments (Retailer, Favorita, Yelp, TPC-DS).
//
// The originals are proprietary or too large for a laptop-scale repro, so
// each generator reproduces the *structure* that drives the experiments:
// the schema, the join shape (star / snowflake / chain), realistic key
// fan-outs and skew, a mix of continuous and categorical attributes, and a
// response correlated with features across several relations (so learned
// models have signal). Row counts scale linearly with GenOptions::scale.
#ifndef RELBORG_DATA_DATASET_H_
#define RELBORG_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feature_map.h"
#include "query/join_tree.h"
#include "relational/catalog.h"

namespace relborg {

struct GenOptions {
  double scale = 1.0;  // 1.0 ~= 2M fact rows for Retailer
  uint64_t seed = 20200901;  // date of the VLDB 2020 keynote
};

struct Dataset {
  std::string name;
  std::unique_ptr<Catalog> catalog;
  JoinQuery query;          // relations owned by `catalog`
  std::string fact;         // name of the fact (root) relation
  std::vector<FeatureRef> features;  // continuous features, response last
  FeatureRef response;               // element of `features`
  // Categorical attributes used by decision trees, mutual information and
  // the sparse-tensor aggregates.
  std::vector<FeatureRef> categoricals;

  RootedTree RootAtFact() const { return query.Root(query.IndexOf(fact)); }
};

// Retailer (Fig. 3): Inventory |X| Items |X| Stores |X| Demographics
// |X| Weather. Inventory(locn, dateid, ksn, inventoryunits) is the fact;
// Weather joins on the composite key (locn, dateid); Demographics chains
// off Stores via zip (a snowflake edge).
Dataset MakeRetailer(const GenOptions& options = {});

// Favorita: Sales |X| Items |X| Stores |X| Transactions |X| Oil |X|
// Holidays; Transactions joins on (dateid, store).
Dataset MakeFavorita(const GenOptions& options = {});

// Yelp: Reviews |X| Businesses |X| Users.
Dataset MakeYelp(const GenOptions& options = {});

// TPC-DS (store-sales slice): StoreSales |X| DateDim |X| Item |X| Store
// |X| CustomerDemographics.
Dataset MakeTpcDs(const GenOptions& options = {});

// Lookup by name ("retailer", "favorita", "yelp", "tpcds"); aborts on
// unknown names.
Dataset MakeDataset(const std::string& name, const GenOptions& options = {});

// The four canonical dataset names, in the order the paper's figures use.
const std::vector<std::string>& DatasetNames();

}  // namespace relborg

#endif  // RELBORG_DATA_DATASET_H_
