// Synthetic Yelp dataset: Reviews fact joining Businesses and Users — the
// many-to-many shape (a user reviews many businesses, a business has many
// reviewers) whose join blow-up motivates factorized processing.
#include <algorithm>
#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace relborg {

Dataset MakeYelp(const GenOptions& options) {
  const double s = options.scale;
  const int kBusinesses = std::max(100, static_cast<int>(4000 * std::sqrt(s)));
  const int kUsers = std::max(200, static_cast<int>(20000 * std::sqrt(s)));
  const size_t kReviews = static_cast<size_t>(1000000 * s);

  Dataset ds;
  ds.name = "yelp";
  ds.catalog = std::make_unique<Catalog>();
  Rng rng(options.seed + 2);

  // --- Businesses(business, city, state, bstars, breviewcount) ---
  Schema biz_schema({{"business", AttrType::kCategorical},
                     {"city", AttrType::kCategorical},
                     {"state", AttrType::kCategorical},
                     {"bstars", AttrType::kDouble},
                     {"breviewcount", AttrType::kDouble}});
  Relation* businesses = ds.catalog->AddRelation("Businesses", biz_schema);
  std::vector<double> biz_quality(kBusinesses);
  for (int b = 0; b < kBusinesses; ++b) {
    int32_t city = rng.SkewedCategory(60);
    biz_quality[b] = rng.Gaussian(0, 0.8);
    double bstars = std::clamp(3.5 + biz_quality[b], 1.0, 5.0);
    businesses->AppendRow({static_cast<double>(b), static_cast<double>(city),
                           static_cast<double>(city % 15),
                           std::round(bstars * 2) / 2,
                           rng.Uniform(3, 2000)});
  }

  // --- Users(user, ustars, ureviewcount, fans) ---
  Schema user_schema({{"user", AttrType::kCategorical},
                      {"ustars", AttrType::kDouble},
                      {"ureviewcount", AttrType::kDouble},
                      {"fans", AttrType::kDouble}});
  Relation* users = ds.catalog->AddRelation("Users", user_schema);
  std::vector<double> user_bias(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    user_bias[u] = rng.Gaussian(0, 0.5);
    double reviews = std::floor(std::exp(rng.Uniform(0, 6)));
    users->AppendRow({static_cast<double>(u),
                      std::clamp(3.6 + user_bias[u], 1.0, 5.0), reviews,
                      std::floor(reviews * rng.Uniform(0, 0.2))});
  }

  // --- Reviews(user, business, stars, useful, funny) ---
  Schema review_schema({{"user", AttrType::kCategorical},
                        {"business", AttrType::kCategorical},
                        {"stars", AttrType::kDouble},
                        {"useful", AttrType::kDouble},
                        {"funny", AttrType::kDouble}});
  Relation* reviews = ds.catalog->AddRelation("Reviews", review_schema);
  reviews->Reserve(kReviews);
  for (size_t i = 0; i < kReviews; ++i) {
    int u = rng.SkewedCategory(kUsers, 0.9);
    int b = rng.SkewedCategory(kBusinesses, 0.9);
    double raw = 3.5 + biz_quality[b] + user_bias[u] + rng.Gaussian(0, 0.9);
    double stars = std::clamp(std::round(raw), 1.0, 5.0);
    double useful = std::floor(std::max(0.0, rng.Gaussian(1.0, 2.0)));
    reviews->AppendRow({static_cast<double>(u), static_cast<double>(b), stars,
                        useful,
                        std::floor(std::max(0.0, rng.Gaussian(0.3, 1.0)))});
  }

  ds.query.AddRelation(reviews);
  ds.query.AddRelation(businesses);
  ds.query.AddRelation(users);
  ds.query.AddJoin("Reviews", "Businesses", {"business"});
  ds.query.AddJoin("Reviews", "Users", {"user"});

  ds.fact = "Reviews";
  ds.features = {{"Reviews", "useful"},      {"Reviews", "funny"},
                 {"Businesses", "bstars"},   {"Businesses", "breviewcount"},
                 {"Users", "ustars"},        {"Users", "ureviewcount"},
                 {"Users", "fans"},          {"Reviews", "stars"}};
  ds.response = {"Reviews", "stars"};
  ds.categoricals = {{"Businesses", "city"}, {"Businesses", "state"}};
  return ds;
}

}  // namespace relborg
