// Synthetic TPC-DS slice: the store_sales star used by the paper's
// experiments (fact joining date, item, store and customer-demographics
// dimensions). Largest aggregate batches of Fig. 5 come from this schema's
// wide feature set.
#include <algorithm>
#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace relborg {

Dataset MakeTpcDs(const GenOptions& options) {
  const double s = options.scale;
  const int kDates = std::max(60, static_cast<int>(365 * std::sqrt(s)));
  const int kItems = std::max(80, static_cast<int>(3000 * std::sqrt(s)));
  const int kStores = std::max(8, static_cast<int>(50 * std::sqrt(s)));
  const int kDemos = std::max(20, static_cast<int>(200 * std::sqrt(s)));
  const size_t kSalesRows = static_cast<size_t>(1500000 * s);

  Dataset ds;
  ds.name = "tpcds";
  ds.catalog = std::make_unique<Catalog>();
  Rng rng(options.seed + 3);

  // --- DateDim(date_sk, d_year, d_moy, d_dom) ---
  Schema date_schema({{"date_sk", AttrType::kCategorical},
                      {"d_year", AttrType::kDouble},
                      {"d_moy", AttrType::kDouble},
                      {"d_dom", AttrType::kDouble}});
  Relation* dates = ds.catalog->AddRelation("DateDim", date_schema);
  for (int d = 0; d < kDates; ++d) {
    dates->AppendRow({static_cast<double>(d), 1998.0 + d / 365,
                      static_cast<double>(1 + (d / 30) % 12),
                      static_cast<double>(1 + d % 30)});
  }

  // --- Item(item_sk, category, brand, current_price) ---
  Schema item_schema({{"item_sk", AttrType::kCategorical},
                      {"category", AttrType::kCategorical},
                      {"brand", AttrType::kCategorical},
                      {"current_price", AttrType::kDouble}});
  Relation* items = ds.catalog->AddRelation("Item", item_schema);
  std::vector<double> item_price(kItems);
  for (int i = 0; i < kItems; ++i) {
    item_price[i] = rng.Uniform(1, 120);
    items->AppendRow({static_cast<double>(i),
                      static_cast<double>(rng.Below(10)),
                      static_cast<double>(rng.SkewedCategory(100)),
                      item_price[i]});
  }

  // --- Store(store_sk, market_id, floor_space, employees) ---
  Schema store_schema({{"store_sk", AttrType::kCategorical},
                       {"market_id", AttrType::kCategorical},
                       {"floor_space", AttrType::kDouble},
                       {"employees", AttrType::kDouble}});
  Relation* stores = ds.catalog->AddRelation("Store", store_schema);
  std::vector<double> store_scale(kStores);
  for (int st = 0; st < kStores; ++st) {
    double floor = rng.Uniform(5000, 9000000 / 100.0);
    store_scale[st] = floor / 50000.0;
    stores->AppendRow({static_cast<double>(st),
                       static_cast<double>(rng.Below(10)), floor,
                       rng.Uniform(200, 300)});
  }

  // --- CustomerDemographics(cdemo_sk, gender, marital, dep_count,
  //     vehicle_count) ---
  Schema demo_schema({{"cdemo_sk", AttrType::kCategorical},
                      {"gender", AttrType::kCategorical},
                      {"marital", AttrType::kCategorical},
                      {"dep_count", AttrType::kDouble},
                      {"vehicle_count", AttrType::kDouble}});
  Relation* demos = ds.catalog->AddRelation("CustomerDemographics",
                                            demo_schema);
  for (int c = 0; c < kDemos; ++c) {
    demos->AppendRow({static_cast<double>(c),
                      static_cast<double>(rng.Below(2)),
                      static_cast<double>(rng.Below(5)),
                      static_cast<double>(rng.Below(7)),
                      static_cast<double>(rng.Below(5))});
  }

  // --- StoreSales(date_sk, item_sk, store_sk, cdemo_sk, quantity,
  //     sales_price, ext_discount) ---
  Schema sales_schema({{"date_sk", AttrType::kCategorical},
                       {"item_sk", AttrType::kCategorical},
                       {"store_sk", AttrType::kCategorical},
                       {"cdemo_sk", AttrType::kCategorical},
                       {"quantity", AttrType::kDouble},
                       {"sales_price", AttrType::kDouble},
                       {"ext_discount", AttrType::kDouble}});
  Relation* sales = ds.catalog->AddRelation("StoreSales", sales_schema);
  sales->Reserve(kSalesRows);
  for (size_t i = 0; i < kSalesRows; ++i) {
    int d = static_cast<int>(rng.Below(kDates));
    int it = rng.SkewedCategory(kItems, 0.6);
    int st = static_cast<int>(rng.Below(kStores));
    int cd = static_cast<int>(rng.Below(kDemos));
    double discount = rng.Uniform() < 0.3 ? rng.Uniform(0, 0.4) : 0.0;
    double sales_price = item_price[it] * (1.0 - discount);
    double season = 1.5 * std::sin(6.283185307 * d / 365.0);
    double quantity = std::max(
        1.0, std::round(4.0 + store_scale[st] + season + 6.0 * discount -
                        0.015 * sales_price + rng.Gaussian(0, 1.5)));
    sales->AppendRow({static_cast<double>(d), static_cast<double>(it),
                      static_cast<double>(st), static_cast<double>(cd),
                      quantity, sales_price,
                      discount * item_price[it]});
  }

  ds.query.AddRelation(sales);
  ds.query.AddRelation(dates);
  ds.query.AddRelation(items);
  ds.query.AddRelation(stores);
  ds.query.AddRelation(demos);
  ds.query.AddJoin("StoreSales", "DateDim", {"date_sk"});
  ds.query.AddJoin("StoreSales", "Item", {"item_sk"});
  ds.query.AddJoin("StoreSales", "Store", {"store_sk"});
  ds.query.AddJoin("StoreSales", "CustomerDemographics", {"cdemo_sk"});

  ds.fact = "StoreSales";
  ds.features = {{"StoreSales", "sales_price"},
                 {"StoreSales", "ext_discount"},
                 {"DateDim", "d_moy"},
                 {"DateDim", "d_dom"},
                 {"Item", "current_price"},
                 {"Store", "floor_space"},
                 {"Store", "employees"},
                 {"CustomerDemographics", "dep_count"},
                 {"CustomerDemographics", "vehicle_count"},
                 {"StoreSales", "quantity"}};
  ds.response = {"StoreSales", "quantity"};
  ds.categoricals = {{"Item", "category"},
                     {"Item", "brand"},
                     {"Store", "market_id"},
                     {"CustomerDemographics", "gender"},
                     {"CustomerDemographics", "marital"}};
  return ds;
}

}  // namespace relborg
