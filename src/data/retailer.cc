// Synthetic Retailer dataset (the running example of the paper, Fig. 3).
//
// Schema mirrors the paper's description: Inventory (fact: location, date,
// item, inventory units), Items (price and category hierarchy), Stores
// (size and competitor distances), Demographics (per-zip statistics, joined
// through Stores — the snowflake edge), and Weather (per location and date,
// joined on the composite key). The response (inventoryunits) mixes item,
// store, seasonal and weather effects plus noise, so models trained over
// the join have real signal.
#include <algorithm>
#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace relborg {

Dataset MakeRetailer(const GenOptions& options) {
  const double s = options.scale;
  const int kLocations = std::max(30, static_cast<int>(300 * std::sqrt(s)));
  const int kDates = std::max(40, static_cast<int>(400 * std::sqrt(s)));
  const int kItems = std::max(50, static_cast<int>(2000 * std::sqrt(s)));
  const int kZips = std::max(8, kLocations / 3);
  const size_t kInventoryRows = static_cast<size_t>(2000000 * s);

  Dataset ds;
  ds.name = "retailer";
  ds.catalog = std::make_unique<Catalog>();
  Rng rng(options.seed);

  // --- Stores(locn, zip, sqft, avghhi, distance_comp) ---
  Schema stores_schema({{"locn", AttrType::kCategorical},
                        {"zip", AttrType::kCategorical},
                        {"sqft", AttrType::kDouble},
                        {"avghhi", AttrType::kDouble},
                        {"distance_comp", AttrType::kDouble}});
  Relation* stores = ds.catalog->AddRelation("Stores", stores_schema);
  std::vector<double> store_effect(kLocations);
  for (int l = 0; l < kLocations; ++l) {
    double sqft = rng.Uniform(20, 220);           // thousands of sq ft
    double avghhi = rng.Uniform(25, 140);         // household income, $k
    double dist = rng.Uniform(0.2, 30.0);         // miles to competitor
    store_effect[l] = 0.02 * sqft + rng.Gaussian(0, 1.5);
    stores->AppendRow({static_cast<double>(l),
                       static_cast<double>(rng.Below(kZips)), sqft, avghhi,
                       dist});
  }

  // --- Demographics(zip, population, medianage, households) ---
  Schema demo_schema({{"zip", AttrType::kCategorical},
                      {"population", AttrType::kDouble},
                      {"medianage", AttrType::kDouble},
                      {"households", AttrType::kDouble}});
  Relation* demo = ds.catalog->AddRelation("Demographics", demo_schema);
  for (int z = 0; z < kZips; ++z) {
    double pop = rng.Uniform(2, 80);  // thousands
    demo->AppendRow({static_cast<double>(z), pop, rng.Uniform(24, 55),
                     pop * rng.Uniform(0.3, 0.45)});
  }

  // --- Items(ksn, subcategory, category, categoryCluster, price) ---
  Schema items_schema({{"ksn", AttrType::kCategorical},
                       {"subcategory", AttrType::kCategorical},
                       {"category", AttrType::kCategorical},
                       {"categoryCluster", AttrType::kCategorical},
                       {"price", AttrType::kDouble}});
  Relation* items = ds.catalog->AddRelation("Items", items_schema);
  std::vector<double> item_effect(kItems);
  const int kSubcats = 40;
  const int kCats = 12;
  const int kClusters = 6;
  for (int k = 0; k < kItems; ++k) {
    int32_t subcat = rng.SkewedCategory(kSubcats);
    double price = rng.Uniform(0.5, 60.0);
    item_effect[k] = -0.04 * price + rng.Gaussian(0, 1.0);
    items->AppendRow({static_cast<double>(k), static_cast<double>(subcat),
                      static_cast<double>(subcat % kCats),
                      static_cast<double>(subcat % kClusters), price});
  }

  // --- Weather(locn, dateid, maxtmp, mintmp, meanwind, rain) ---
  Schema weather_schema({{"locn", AttrType::kCategorical},
                         {"dateid", AttrType::kCategorical},
                         {"maxtmp", AttrType::kDouble},
                         {"mintmp", AttrType::kDouble},
                         {"meanwind", AttrType::kDouble},
                         {"rain", AttrType::kDouble}});
  Relation* weather = ds.catalog->AddRelation("Weather", weather_schema);
  // Presence flag and rain/temperature lookup for the response model.
  std::vector<uint8_t> has_weather(
      static_cast<size_t>(kLocations) * kDates, 0);
  std::vector<float> w_rain(has_weather.size(), 0.0f);
  std::vector<float> w_tmp(has_weather.size(), 0.0f);
  for (int l = 0; l < kLocations; ++l) {
    double climate = rng.Uniform(30, 70);
    for (int d = 0; d < kDates; ++d) {
      if (rng.Uniform() < 0.12) continue;  // missing station reports
      double season = 18 * std::sin(6.283185307 * d / 365.0);
      double maxtmp = climate + season + rng.Gaussian(0, 6);
      double rain = rng.Uniform() < 0.25 ? 1.0 : 0.0;
      size_t idx = static_cast<size_t>(l) * kDates + d;
      has_weather[idx] = 1;
      w_rain[idx] = static_cast<float>(rain);
      w_tmp[idx] = static_cast<float>(maxtmp);
      weather->AppendRow({static_cast<double>(l), static_cast<double>(d),
                          maxtmp, maxtmp - rng.Uniform(5, 18),
                          rng.Uniform(0, 25), rain});
    }
  }

  // --- Inventory(locn, dateid, ksn, inventoryunits) ---
  Schema inv_schema({{"locn", AttrType::kCategorical},
                     {"dateid", AttrType::kCategorical},
                     {"ksn", AttrType::kCategorical},
                     {"inventoryunits", AttrType::kDouble}});
  Relation* inventory = ds.catalog->AddRelation("Inventory", inv_schema);
  inventory->Reserve(kInventoryRows);
  for (size_t i = 0; i < kInventoryRows; ++i) {
    int l = static_cast<int>(rng.Below(kLocations));
    int d = static_cast<int>(rng.Below(kDates));
    int k = rng.SkewedCategory(kItems, 0.8);
    size_t widx = static_cast<size_t>(l) * kDates + d;
    double weather_effect =
        has_weather[widx]
            ? 0.03 * (w_tmp[widx] - 50.0) - 1.2 * w_rain[widx]
            : 0.0;
    double season = 2.0 * std::sin(6.283185307 * d / 365.0);
    double units = 8.0 + item_effect[k] + store_effect[l] + season +
                   weather_effect + rng.Gaussian(0, 1.5);
    inventory->AppendRow({static_cast<double>(l), static_cast<double>(d),
                          static_cast<double>(k), std::max(0.0, units)});
  }

  // --- Query: Inventory joins Items, Stores, Weather; Demographics
  // snowflakes off Stores. ---
  ds.query.AddRelation(inventory);
  ds.query.AddRelation(items);
  ds.query.AddRelation(stores);
  ds.query.AddRelation(demo);
  ds.query.AddRelation(weather);
  ds.query.AddJoin("Inventory", "Items", {"ksn"});
  ds.query.AddJoin("Inventory", "Stores", {"locn"});
  ds.query.AddJoin("Stores", "Demographics", {"zip"});
  ds.query.AddJoin("Inventory", "Weather", {"locn", "dateid"});

  ds.fact = "Inventory";
  ds.features = {{"Items", "price"},
                 {"Stores", "sqft"},
                 {"Stores", "avghhi"},
                 {"Stores", "distance_comp"},
                 {"Demographics", "population"},
                 {"Demographics", "medianage"},
                 {"Demographics", "households"},
                 {"Weather", "maxtmp"},
                 {"Weather", "mintmp"},
                 {"Weather", "meanwind"},
                 {"Weather", "rain"},
                 {"Inventory", "inventoryunits"}};
  ds.response = {"Inventory", "inventoryunits"};
  ds.categoricals = {{"Items", "subcategory"},
                     {"Items", "category"},
                     {"Items", "categoryCluster"},
                     {"Stores", "zip"}};
  return ds;
}

}  // namespace relborg
