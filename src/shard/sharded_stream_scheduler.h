// Key-range sharded stream pipelines with exact ring merges.
//
// A ShardedStreamScheduler<Strategy> runs N fully independent
// StreamScheduler pipelines — each with its own ShadowDb, strategy
// instance, metrics registry and (optionally) checkpoint file — and routes
// every pushed UpdateBatch by the deterministic key-range ShardMap:
//
//   * ROOT-relation batches SPLIT: rows partition by ShardOfRow in stable
//     row order, and each shard receives one sub-batch holding exactly its
//     rows (empty sub-batches are delivered nowhere).
//   * NON-ROOT batches BROADCAST verbatim to every shard: dimension
//     relations are not partitioned (the join distributes over a disjoint
//     partition of the root only — see shard/shard_map.h).
//   * EMPTY batches are delivered nowhere (they would only perturb
//     per-shard epoch sealing; the global batch counter still advances).
//
// Shard s therefore maintains Q over (R_s ⋈ S ⋈ ...), and the full
// aggregate is the RING MERGE of the per-shard results, folded in
// ascending shard order (MergedCurrent / MergeViewInto — key-wise
// CovarSpanAdd via ring/covar_arena.h's cross-arena entry points).
//
// DETERMINISM AND EXACTNESS. Routing is a pure function of row content, so
// for a fixed (stream, ShardMap, options) every run delivers the same
// per-shard batch sequences; each per-shard pipeline is bit-identical to
// its own serial replay (stream/stream_scheduler.h), and the merge order
// is fixed — the sharded result is BIT-IDENTICAL across runs, thread
// counts, and commit/compute run-ahead for ANY shard count. Whether the
// sharded result equals the UNSHARDED run's bytes is a property of the
// data: the merge re-associates the ring sums across shards, which is
// exact whenever every payload sum is exactly representable (integer-
// valued features of moderate magnitude — the differential suite in
// tests/shard_test.cc builds such fixtures), and equal only up to rounding
// for general doubles. Deterministic always; exact when the data is.
//
// OBSERVABILITY. Each shard's pipeline owns a private registry;
// MetricsText() folds them through MetricsRegistry::MergeFrom into one
// fresh exposition — every instrument appears as the cross-shard aggregate
// under its original name plus per-shard "_shard<i>" series.
//
// CHECKPOINTS. When ShardedStreamOptions::checkpoint_prefix is set, shard i
// checkpoints to <prefix>shard-i.ckpt on its own epoch cadence. Resume()
// restores every shard that has a checkpoint (a shard without one restarts
// from scratch) and the caller replays the WHOLE global stream from batch
// 0: routing re-derives each shard's delivery sequence, and each shard
// skips its restored delivery prefix — per-shard prefixes differ (each
// shard checkpoints at its own epoch boundaries), which a single global
// cursor could not express.
#ifndef RELBORG_SHARD_SHARDED_STREAM_SCHEDULER_H_
#define RELBORG_SHARD_SHARDED_STREAM_SCHEDULER_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "core/feature_map.h"
#include "ivm/shadow_db.h"
#include "ivm/update_stream.h"
#include "obs/metrics.h"
#include "ring/covar_arena.h"
#include "ring/covariance.h"
#include "shard/shard_map.h"
#include "stream/stream_scheduler.h"
#include "util/check.h"
#include "util/status.h"

namespace relborg {

struct ShardedStreamOptions {
  // Per-shard pipeline options. `checkpoint.path` and `metrics` must stay
  // unset — the sharded scheduler derives per-shard checkpoint paths from
  // checkpoint_prefix below and owns one registry per shard.
  StreamOptions stream;
  // Path prefix for per-shard checkpoint files (<prefix>shard-<i>.ckpt;
  // any directory component must exist — a directory with a trailing
  // slash is a prefix). "" disables checkpointing even if
  // stream.checkpoint.every_epochs is set.
  std::string checkpoint_prefix;
};

// Cross-shard StreamStats aggregate: counters and seconds sum, high-water
// marks and maxima take the max, the latency mean re-weights by epochs.
inline StreamStats AggregateShardStats(const std::vector<StreamStats>& per) {
  StreamStats t;
  double latency_sum = 0;
  for (const StreamStats& s : per) {
    t.batches += s.batches;
    t.rows += s.rows;
    t.epochs += s.epochs;
    t.ranges += s.ranges;
    t.speculated_ranges += s.speculated_ranges;
    t.speculation_hits += s.speculation_hits;
    t.speculation_misses += s.speculation_misses;
    t.probe_staged_ranges += s.probe_staged_ranges;
    t.apply_seconds += s.apply_seconds;
    t.commit_seconds += s.commit_seconds;
    t.compute_seconds += s.compute_seconds;
    t.commit_gate_wait_seconds += s.commit_gate_wait_seconds;
    t.maintain_gate_wait_seconds += s.maintain_gate_wait_seconds;
    t.compute_gate_wait_seconds += s.compute_gate_wait_seconds;
    t.commit_ahead_max_epochs =
        std::max(t.commit_ahead_max_epochs, s.commit_ahead_max_epochs);
    t.compute_overlap_epochs_max =
        std::max(t.compute_overlap_epochs_max, s.compute_overlap_epochs_max);
    latency_sum += s.epoch_latency_mean_seconds * static_cast<double>(s.epochs);
    t.epoch_latency_max_seconds =
        std::max(t.epoch_latency_max_seconds, s.epoch_latency_max_seconds);
    t.ingress_high_water_rows =
        std::max(t.ingress_high_water_rows, s.ingress_high_water_rows);
    t.epoch_queue_high_water =
        std::max(t.epoch_queue_high_water, s.epoch_queue_high_water);
    t.rejected_batches += s.rejected_batches;
    t.rejected_rows += s.rejected_rows;
    t.quarantined_batches += s.quarantined_batches;
    t.quarantine_dropped_batches += s.quarantine_dropped_batches;
    t.dropped_batches += s.dropped_batches;
    t.try_push_timeouts += s.try_push_timeouts;
    t.watchdog_stalls += s.watchdog_stalls;
    t.checkpoints_written += s.checkpoints_written;
    t.checkpoint_bytes += s.checkpoint_bytes;
    t.checkpoint_seconds += s.checkpoint_seconds;
  }
  if (t.epochs > 0) {
    t.epoch_latency_mean_seconds = latency_sum / static_cast<double>(t.epochs);
  }
  return t;
}

/// A quarantined batch with the shard that rejected it.
struct ShardQuarantinedBatch {
  int shard = -1;
  QuarantinedBatch rejected;
};

template <typename Strategy>
class ShardedStreamScheduler {
 public:
  /// Builds `map.num_shards()` independent pipelines over clones of
  /// `source`'s topology rooted at `root` (all relations start empty; the
  /// stream carries every row). `fm` must outlive the scheduler and is
  /// shared by every shard — it resolves to node/attribute INDICES, which
  /// are identical across the clones.
  ShardedStreamScheduler(const JoinQuery& source, int root,
                         const FeatureMap* fm, ShardMap map,
                         const ExecPolicy& policy = {},
                         ShardedStreamOptions options = {})
      : ShardedStreamScheduler(source, root, fm, std::move(map), policy,
                               std::move(options), DeferStart{}) {
    for (int s = 0; s < map_.num_shards(); ++s) StartShard(s, nullptr);
  }

  /// Restores a sharded run from `options.checkpoint_prefix`: every shard
  /// with a checkpoint resumes from it (kNotFound restarts that shard from
  /// scratch; any other restore error fails the whole Resume). On OK the
  /// caller must replay the ENTIRE global stream from batch 0 — routing
  /// skips each shard's restored delivery prefix.
  static Status Resume(const JoinQuery& source, int root, const FeatureMap* fm,
                       ShardMap map, const ExecPolicy& policy,
                       ShardedStreamOptions options,
                       std::unique_ptr<ShardedStreamScheduler>* out) {
    RELBORG_CHECK(!options.checkpoint_prefix.empty());
    std::unique_ptr<ShardedStreamScheduler> sched(new ShardedStreamScheduler(
        source, root, fm, std::move(map), policy, std::move(options),
        DeferStart{}));
    for (int s = 0; s < sched->map_.num_shards(); ++s) {
      StreamCheckpointInfo info;
      Shard& shard = *sched->shards_[s];
      Status st = StreamScheduler<Strategy>::RestoreFromCheckpoint(
          ShardCheckpointPath(sched->options_.checkpoint_prefix, s),
          shard.shadow.get(), shard.strategy.get(), &info);
      if (st.code() == StatusCode::kNotFound) {
        sched->StartShard(s, nullptr);
        continue;
      }
      if (!st.ok()) return st;
      sched->StartShard(s, &info);
      shard.skip_deliveries = info.batches;
    }
    *out = std::move(sched);
    return Status::Ok();
  }

  ~ShardedStreamScheduler() {
    if (!finished_) Finish();
  }

  ShardedStreamScheduler(const ShardedStreamScheduler&) = delete;
  ShardedStreamScheduler& operator=(const ShardedStreamScheduler&) = delete;

  /// Routes one batch (see the file comment). Single-producer, like
  /// StreamScheduler::Push. Returns the first per-shard rejection if any
  /// delivery failed validation; deliveries to OTHER shards still proceed
  /// (each shard quarantines independently).
  Status Push(const UpdateBatch& batch) {
    const uint64_t g = ++global_batches_;
    if (batch.rows.empty()) return Status::Ok();
    Status first = Status::Ok();
    if (batch.node == map_.root_node()) {
      // Stable partition: each shard's sub-batch keeps the global row
      // order, so per-shard streams are a pure subsequence of the input.
      std::vector<UpdateBatch> parts(
          static_cast<size_t>(map_.num_shards()));
      for (const std::vector<double>& row : batch.rows) {
        UpdateBatch& part = parts[map_.ShardOfRow(row)];
        if (part.rows.empty()) {
          part.node = batch.node;
          part.sign = batch.sign;
        }
        part.rows.push_back(row);
      }
      for (int s = 0; s < map_.num_shards(); ++s) {
        if (parts[s].rows.empty()) continue;
        Status st = Deliver(s, g, std::move(parts[s]));
        if (!st.ok() && first.ok()) first = st;
      }
    } else {
      for (int s = 0; s < map_.num_shards(); ++s) {
        Status st = Deliver(s, g, batch);
        if (!st.ok() && first.ok()) first = st;
      }
    }
    return first;
  }

  /// Finishes every shard pipeline (ascending order), aggregates their
  /// stats and returns the first shard failure (OK when all drained
  /// cleanly). Idempotent.
  Status Finish(StreamStats* total = nullptr,
                std::vector<StreamStats>* per_shard = nullptr) {
    if (!finished_) {
      finished_ = true;
      shard_stats_.resize(shards_.size());
      for (size_t s = 0; s < shards_.size(); ++s) {
        Status st = shards_[s]->scheduler->Finish(&shard_stats_[s]);
        if (!st.ok() && finish_status_.ok()) {
          finish_status_ = Status(
              st.code(), "shard " + std::to_string(s) + ": " + st.message());
        }
      }
    }
    if (total != nullptr) *total = AggregateShardStats(shard_stats_);
    if (per_shard != nullptr) *per_shard = shard_stats_;
    return finish_status_;
  }

  int num_shards() const { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }

  /// Source batches routed so far (empty batches included).
  uint64_t global_batches() const {
    return global_batches_.load(std::memory_order_acquire);
  }

  /// Shard s's pipeline / strategy / shadow database. The per-shard
  /// contracts of StreamScheduler apply unchanged (e.g. strategy state is
  /// only readable between epochs or after Finish).
  StreamScheduler<Strategy>* scheduler(int s) {
    return shards_[s]->scheduler.get();
  }
  Strategy* strategy(int s) { return shards_[s]->strategy.get(); }
  const Strategy* strategy(int s) const { return shards_[s]->strategy.get(); }
  const ShadowDb& shadow(int s) const { return *shards_[s]->shadow; }

  /// The merged covariance aggregate: per-shard Strategy::Current()
  /// payloads ring-added in ascending shard order. Same quiescence
  /// contract as Current() itself — call after Finish, or from a paused
  /// pipeline; live merged reads go through serve/sharded_snapshot_server.h.
  CovarMatrix MergedCurrent() const {
    const int n = fm_->num_features();
    CovarPayload acc = CovarPayload::Zero(n);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      CovarAddInPlace(&acc, shard->strategy->Current().payload());
    }
    return CovarMatrix(n, acc);
  }

  /// Ring-merges node v's per-shard maintained views into *out (ascending
  /// shard order, one published merge per shard — CovarArenaMergeInto).
  /// Strategies exposing ViewOf only (CovarFivm); same quiescence contract
  /// as MergedCurrent. The sum is the unsharded view only for the ROOT
  /// node, whose subtree spans the partitioned relation; non-root views
  /// are maintained over broadcast relations and thus REPLICATED — each
  /// shard already holds the unsharded answer, and the N-fold sum is the
  /// replication count times it (see serve/sharded_snapshot_server.h's
  /// GroupBy for the read-side handling).
  template <typename S = Strategy>
  void MergeViewInto(int v, CovarArenaView* out) const {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      CovarArenaMergeInto(static_cast<const S*>(shard->strategy.get())->ViewOf(v),
                          out);
    }
  }

  /// One Prometheus exposition across the fleet: a FRESH registry per call
  /// (MergeFrom re-adds counters, so the aggregate is never kept live),
  /// with every instrument as the cross-shard aggregate plus "_shard<i>"
  /// per-shard series. Safe from any thread while pipelines run.
  std::string MetricsText() const {
    obs::MetricsRegistry agg;
    for (size_t s = 0; s < shards_.size(); ++s) {
      agg.MergeFrom(shards_[s]->scheduler->metrics(),
                    "_shard" + std::to_string(s));
    }
    return agg.ExpositionText();
  }

  /// Shard s's private registry (per-shard instruments, unsuffixed).
  const obs::MetricsRegistry& shard_metrics(int s) const {
    return shards_[s]->scheduler->metrics();
  }

  /// Drains every shard's quarantine, tagged with the shard index,
  /// ascending shard order (oldest-first within a shard).
  std::vector<ShardQuarantinedBatch> DrainQuarantine() {
    std::vector<ShardQuarantinedBatch> out;
    for (size_t s = 0; s < shards_.size(); ++s) {
      for (QuarantinedBatch& q : shards_[s]->scheduler->DrainQuarantine()) {
        out.push_back({static_cast<int>(s), std::move(q)});
      }
    }
    return out;
  }

  /// Maps shard s's applied-row count (the sum of an epoch watermark) to
  /// its delivery ordinal and the GLOBAL batch interval that state covers:
  /// the merged-horizon protocol's bijection (serve layer). Every
  /// delivered batch is non-empty, so cumulative delivered rows strictly
  /// increase and the lookup is exact or fails. On true: a merged read at
  /// any global batch count in [*g_lo, *g_hi) sees shard s in exactly this
  /// state (*g_hi == UINT64_MAX until the next delivery is routed).
  bool DeliveryInterval(int s, size_t applied_rows, uint64_t* g_lo,
                       uint64_t* g_hi) const {
    std::lock_guard<std::mutex> lock(log_mu_);
    const std::vector<DeliveryPoint>& log = shards_[s]->log;
    if (applied_rows == 0) {
      *g_lo = 0;
      *g_hi = log.empty() ? UINT64_MAX : log[0].global_batch;
      return true;
    }
    auto it = std::lower_bound(
        log.begin(), log.end(), applied_rows,
        [](const DeliveryPoint& p, size_t rows) { return p.cum_rows < rows; });
    if (it == log.end() || it->cum_rows != applied_rows) return false;
    *g_lo = it->global_batch;
    *g_hi = (it + 1) == log.end() ? UINT64_MAX : (it + 1)->global_batch;
    return true;
  }

  /// <prefix>shard-<i>.ckpt — the per-shard checkpoint naming scheme.
  static std::string ShardCheckpointPath(const std::string& prefix,
                                         int shard) {
    return prefix + "shard-" + std::to_string(shard) + ".ckpt";
  }

 private:
  // One routed delivery: the global batch counter value it happened at and
  // the shard's cumulative delivered rows after it.
  struct DeliveryPoint {
    uint64_t global_batch = 0;
    size_t cum_rows = 0;
  };

  // Declaration order is the destruction-safety order (reverse teardown):
  // the scheduler goes first, releasing the strategy, the registry it
  // writes into, and the shadow it reads, in that order.
  struct Shard {
    std::unique_ptr<ShadowDb> shadow;
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<Strategy> strategy;
    std::unique_ptr<StreamScheduler<Strategy>> scheduler;
    // Routing state (producer thread; log shared with serve readers under
    // log_mu_).
    size_t delivered = 0;         // deliveries routed to this shard so far
    size_t skip_deliveries = 0;   // restored prefix to skip (Resume)
    size_t cum_rows = 0;          // rows across logged deliveries
    std::vector<DeliveryPoint> log;
  };

  struct DeferStart {};

  ShardedStreamScheduler(const JoinQuery& source, int root,
                         const FeatureMap* fm, ShardMap map,
                         const ExecPolicy& policy,
                         ShardedStreamOptions options, DeferStart)
      : fm_(fm), map_(std::move(map)), policy_(policy),
        options_(std::move(options)) {
    RELBORG_CHECK(options_.stream.metrics == nullptr);
    RELBORG_CHECK(options_.stream.checkpoint.path.empty());
    shards_.reserve(static_cast<size_t>(map_.num_shards()));
    for (int s = 0; s < map_.num_shards(); ++s) {
      auto shard = std::make_unique<Shard>();
      shard->shadow = std::make_unique<ShadowDb>(source, root);
      shard->registry = std::make_unique<obs::MetricsRegistry>();
      shard->strategy =
          std::make_unique<Strategy>(shard->shadow.get(), fm_, policy_);
      shards_.push_back(std::move(shard));
    }
  }

  // Spins up shard s's pipeline (fresh, or resuming from `info`).
  void StartShard(int s, const StreamCheckpointInfo* info) {
    Shard& shard = *shards_[s];
    StreamOptions opts = options_.stream;
    opts.metrics = shard.registry.get();
    if (!options_.checkpoint_prefix.empty()) {
      opts.checkpoint.path = ShardCheckpointPath(options_.checkpoint_prefix, s);
    }
    shard.scheduler = std::make_unique<StreamScheduler<Strategy>>(
        shard.shadow.get(), shard.strategy.get(), opts, info);
  }

  // Hands one non-empty batch to shard s. The delivery is logged only when
  // the shard ACCEPTS it (or when it replays a restored prefix, which was
  // accepted by the run that checkpointed), so the applied-rows bijection
  // in DeliveryInterval never counts quarantined rows.
  Status Deliver(int s, uint64_t g, UpdateBatch batch) {
    Shard& shard = *shards_[s];
    const size_t rows = batch.rows.size();
    if (shard.delivered++ < shard.skip_deliveries) {
      LogDelivery(&shard, g, rows);
      return Status::Ok();
    }
    Status st = shard.scheduler->Push(std::move(batch));
    if (st.ok()) LogDelivery(&shard, g, rows);
    return st;
  }

  void LogDelivery(Shard* shard, uint64_t g, size_t rows) {
    std::lock_guard<std::mutex> lock(log_mu_);
    shard->cum_rows += rows;
    shard->log.push_back({g, shard->cum_rows});
  }

  const FeatureMap* fm_;
  ShardMap map_;
  ExecPolicy policy_;
  ShardedStreamOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> global_batches_{0};
  // Guards every shard's delivery log against concurrent serve readers
  // (DeliveryInterval); appends happen on the producer thread only.
  mutable std::mutex log_mu_;
  std::vector<StreamStats> shard_stats_;
  Status finish_status_;
  bool finished_ = false;
};

}  // namespace relborg

#endif  // RELBORG_SHARD_SHARDED_STREAM_SCHEDULER_H_
