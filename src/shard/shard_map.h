// Deterministic key-range sharding of an update stream's root relation.
//
// A ShardMap splits the packed join-key domain of the ROOT relation into
// `num_shards` contiguous ranges — a STATIC split: shard assignment is a
// pure function of (row key, num_shards, domain) and of nothing else, so
// the same row routes to the same shard on every run, on a restore replay,
// and for the matching delete of an earlier insert (deletes re-emit the
// inserted row's exact content, hence its exact key). Non-root relations
// are not split at all; the sharded scheduler broadcasts them, because the
// join distributes over a disjoint partition of the root:
//
//   Q(R ⋈ S ⋈ ...)  =  Σ_i Q(R_i ⋈ S ⋈ ...)   for R = ⊎_i R_i,
//
// and the covariance ring's addition recombines the per-shard aggregates
// exactly (ring merges are key-wise payload additions — see
// CovarArenaMergeInto in ring/covar_arena.h).
#ifndef RELBORG_SHARD_SHARD_MAP_H_
#define RELBORG_SHARD_SHARD_MAP_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "query/join_tree.h"
#include "util/packed_key.h"

namespace relborg {

class ShardMap {
 public:
  // The trivial map: one shard, every row routes to it.
  ShardMap() = default;

  // Explicit split: rows key on `key_attrs` (attribute indices in the root
  // relation, at most two — packed like PackRowKey) and the packed-key
  // domain [0, domain) splits into num_shards contiguous ranges. Keys at or
  // beyond `domain` (streams may insert keys the split never saw) clamp to
  // the last shard — still a pure function of the key.
  ShardMap(int root_node, std::vector<int> key_attrs, uint64_t domain,
           int num_shards);

  // Builds the split for `source` rooted at `root`: keys on the root's
  // join attributes toward its first child (the attributes every root row
  // carries anyway), with the domain sized from the packed keys present in
  // the SOURCE data. A root with no children (single-relation query) falls
  // back to its first categorical attribute; with none of those, every row
  // keys to kUnitKey and lands on shard 0.
  static ShardMap ForQuery(const JoinQuery& source, int root, int num_shards);

  int num_shards() const { return num_shards_; }
  int root_node() const { return root_node_; }
  uint64_t domain() const { return domain_; }
  const std::vector<int>& key_attrs() const { return key_attrs_; }

  // Packed key of a raw update-stream row (values as doubles, like
  // UpdateBatch carries them). Routing runs BEFORE the per-shard ingress
  // validation ever sees the row, so malformed rows (too short, or a
  // non-finite key value whose int cast would be undefined) must still
  // route somewhere deterministic: they key to kUnitKey, land on shard 0,
  // and get rejected by that shard's validator.
  uint64_t KeyOfRow(const std::vector<double>& row) const {
    if (key_attrs_.empty()) return kUnitKey;
    if (key_attrs_.size() == 1) {
      const double a = KeyValue(row, key_attrs_[0]);
      return std::isfinite(a) ? PackKey1(static_cast<int32_t>(a)) : kUnitKey;
    }
    const double a = KeyValue(row, key_attrs_[0]);
    const double b = KeyValue(row, key_attrs_[1]);
    if (!std::isfinite(a) || !std::isfinite(b)) return kUnitKey;
    return PackKey2(static_cast<int32_t>(a), static_cast<int32_t>(b));
  }

  // The contiguous range holding `key`: floor(key * num_shards / domain),
  // clamped to the last shard for keys beyond the domain. 128-bit
  // intermediate — packed two-attribute keys use the full 64 bits.
  int ShardOfKey(uint64_t key) const {
    if (num_shards_ <= 1 || key >= domain_) return num_shards_ - 1;
    return static_cast<int>(static_cast<unsigned __int128>(key) *
                            static_cast<unsigned __int128>(num_shards_) /
                            domain_);
  }

  int ShardOfRow(const std::vector<double>& row) const {
    return ShardOfKey(KeyOfRow(row));
  }

 private:
  static double KeyValue(const std::vector<double>& row, int attr) {
    const size_t a = static_cast<size_t>(attr);
    return a < row.size() ? row[a] : std::nan("");
  }

  int root_node_ = 0;
  std::vector<int> key_attrs_;
  uint64_t domain_ = 1;
  int num_shards_ = 1;
};

}  // namespace relborg

#endif  // RELBORG_SHARD_SHARD_MAP_H_
