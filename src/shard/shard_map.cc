#include "shard/shard_map.h"

#include <algorithm>
#include <utility>

#include "relational/relation.h"
#include "util/check.h"

namespace relborg {

ShardMap::ShardMap(int root_node, std::vector<int> key_attrs, uint64_t domain,
                   int num_shards)
    : root_node_(root_node),
      key_attrs_(std::move(key_attrs)),
      domain_(std::max<uint64_t>(1, domain)),
      num_shards_(std::max(1, num_shards)) {
  RELBORG_CHECK(key_attrs_.size() <= 2);
}

ShardMap ShardMap::ForQuery(const JoinQuery& source, int root,
                            int num_shards) {
  const RootedTree tree = source.Root(root);
  std::vector<int> attrs;
  if (!tree.node(root).children.empty()) {
    // The root's key attributes on the edge to its first child: present in
    // every root row, and the attributes the per-shard join work keys on.
    attrs = tree.node(tree.node(root).children[0]).parent_key_attrs;
  } else {
    const Schema& schema = source.relation(root)->schema();
    for (int a = 0; a < schema.num_attrs(); ++a) {
      if (schema.attr(a).type == AttrType::kCategorical) {
        attrs.push_back(a);
        break;
      }
    }
  }
  // Domain = max packed key in the SOURCE data + 1; later stream keys
  // beyond it clamp to the last shard (ShardOfKey).
  uint64_t max_key = 0;
  if (!attrs.empty()) {
    const Relation& rel = *source.relation(root);
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      max_key = std::max(max_key, PackRowKey(rel, row, attrs));
    }
  }
  return ShardMap(root, std::move(attrs), max_key + 1, num_shards);
}

}  // namespace relborg
