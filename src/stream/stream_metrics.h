// The stream pipeline's instrument bundle: every StreamStats field is backed
// by exactly one registry instrument, and `Derive()` is the ONLY way a
// StreamStats is produced from a live scheduler — the flat struct and the
// registry can never disagree because the struct is a projection.
//
// Exactness: structural counters are integer-valued doubles (exact to 2^53);
// timing sums are accumulated by the same single writer thread in the same
// order as the `double +=` fields they replaced, and obs::AtomicDouble adds
// with a CAS of the full double, so the totals are bit-identical.
#ifndef RELBORG_STREAM_STREAM_METRICS_H_
#define RELBORG_STREAM_STREAM_METRICS_H_

#include <algorithm>
#include <cstddef>

#include "obs/metrics.h"

namespace relborg {

// Forward-declared here; defined in stream_scheduler.h.
struct StreamStats;

namespace stream_internal {

struct StreamMetrics {
  // Deterministic structural counters.
  obs::Counter* batches = nullptr;
  obs::Counter* rows = nullptr;
  obs::Counter* epochs = nullptr;
  obs::Counter* ranges = nullptr;
  obs::Counter* speculated_ranges = nullptr;
  obs::Counter* speculation_hits = nullptr;
  obs::Counter* speculation_misses = nullptr;
  obs::Counter* probe_staged_ranges = nullptr;
  // Per-epoch stage timings (histograms; the StreamStats seconds fields are
  // the histogram sums).
  obs::Histogram* apply_seconds = nullptr;
  obs::Histogram* commit_seconds = nullptr;
  obs::Histogram* compute_seconds = nullptr;
  obs::Histogram* commit_gate_wait = nullptr;
  obs::Histogram* maintain_gate_wait = nullptr;
  obs::Histogram* compute_gate_wait = nullptr;
  obs::Histogram* epoch_latency = nullptr;  // sealed -> applied, per epoch
  obs::Histogram* checkpoint_write = nullptr;  // per checkpoint file
  obs::Counter* checkpoint_bytes = nullptr;
  // Run-shape gauges.
  obs::Gauge* commit_ahead_max = nullptr;
  obs::Gauge* compute_overlap_max = nullptr;
  obs::Gauge* epoch_latency_max = nullptr;
  obs::Gauge* ingress_high_water = nullptr;
  obs::Gauge* epoch_queue_high_water = nullptr;
  // Ingress robustness + watchdog counters.
  obs::Counter* rejected_batches = nullptr;
  obs::Counter* rejected_rows = nullptr;
  obs::Counter* quarantined_batches = nullptr;
  obs::Counter* quarantine_dropped_batches = nullptr;
  obs::Counter* dropped_batches = nullptr;
  obs::Counter* try_push_timeouts = nullptr;
  obs::Counter* watchdog_stalls = nullptr;

  // Registers (or re-finds) every instrument in `registry`. The catalog
  // below is the documented metric surface (docs/OBSERVABILITY.md).
  static StreamMetrics Register(obs::MetricsRegistry* registry) {
    StreamMetrics m;
    m.batches = registry->GetCounter("relborg_stream_batches_total",
                                     "Source batches consumed");
    m.rows = registry->GetCounter("relborg_stream_rows_total",
                                  "Rows across consumed batches");
    m.epochs = registry->GetCounter("relborg_stream_epochs_total",
                                    "Sealed epochs applied");
    m.ranges = registry->GetCounter("relborg_stream_ranges_total",
                                    "Coalesced per-node ranges applied");
    m.speculated_ranges =
        registry->GetCounter("relborg_stream_speculated_ranges_total",
                             "Ranges with a precomputed delta");
    m.speculation_hits =
        registry->GetCounter("relborg_stream_speculation_hits_total",
                             "Precomputed deltas accepted at the serial point");
    m.speculation_misses =
        registry->GetCounter("relborg_stream_speculation_misses_total",
                             "Precomputed deltas invalidated and recomputed");
    m.probe_staged_ranges =
        registry->GetCounter("relborg_stream_probe_staged_ranges_total",
                             "Conflicted ranges with staged child-key probes");
    m.apply_seconds =
        registry->GetHistogram("relborg_stream_apply_seconds",
                               "Per-epoch maintenance wall time (gate wait "
                               "included)");
    m.commit_seconds =
        registry->GetHistogram("relborg_stream_commit_seconds",
                               "Per-epoch chunk splice wall time (gate waits "
                               "excluded)");
    m.compute_seconds =
        registry->GetHistogram("relborg_stream_compute_seconds",
                               "Per-epoch speculative compute wall time "
                               "(gate waits excluded)");
    m.commit_gate_wait =
        registry->GetHistogram("relborg_stream_commit_gate_wait_seconds",
                               "Committer blocked on maintenance readers, "
                               "per epoch");
    m.maintain_gate_wait =
        registry->GetHistogram("relborg_stream_maintain_gate_wait_seconds",
                               "Applier blocked on in-flight commits, per "
                               "acquisition");
    m.compute_gate_wait =
        registry->GetHistogram("relborg_stream_compute_gate_wait_seconds",
                               "Compute stage blocked on gates, per range");
    m.epoch_latency =
        registry->GetHistogram("relborg_stream_epoch_latency_seconds",
                               "Epoch sealed -> applied latency");
    m.checkpoint_write =
        registry->GetHistogram("relborg_stream_checkpoint_write_seconds",
                               "Checkpoint serialize+write wall time");
    m.checkpoint_bytes =
        registry->GetCounter("relborg_stream_checkpoint_bytes_total",
                             "File bytes across written checkpoints");
    m.commit_ahead_max =
        registry->GetGauge("relborg_stream_commit_ahead_epochs_max",
                           "Committer's max epoch lead over the applier");
    m.compute_overlap_max =
        registry->GetGauge("relborg_stream_compute_overlap_epochs_max",
                           "Compute stage's max epoch lead over the applier");
    m.epoch_latency_max =
        registry->GetGauge("relborg_stream_epoch_latency_max_seconds",
                           "Max epoch sealed -> applied latency");
    m.ingress_high_water =
        registry->GetGauge("relborg_stream_ingress_high_water_rows",
                           "Ingress queue row high-water mark");
    m.epoch_queue_high_water =
        registry->GetGauge("relborg_stream_epoch_queue_high_water",
                           "Max depth across the epoch queues");
    m.rejected_batches =
        registry->GetCounter("relborg_stream_rejected_batches_total",
                             "Batches that failed ingress validation");
    m.rejected_rows =
        registry->GetCounter("relborg_stream_rejected_rows_total",
                             "Rows across rejected batches");
    m.quarantined_batches =
        registry->GetCounter("relborg_stream_quarantined_batches_total",
                             "Rejected batches retained for drain");
    m.quarantine_dropped_batches = registry->GetCounter(
        "relborg_stream_quarantine_dropped_batches_total",
        "Rejected batches dropped because the quarantine was full");
    m.dropped_batches =
        registry->GetCounter("relborg_stream_dropped_batches_total",
                             "Batches pushed after Finish or a failure");
    m.try_push_timeouts =
        registry->GetCounter("relborg_stream_try_push_timeouts_total",
                             "TryPush deadlines that expired");
    m.watchdog_stalls =
        registry->GetCounter("relborg_stream_watchdog_stalls_total",
                             "No-progress intervals the watchdog detected");
    return m;
  }

  // Defined in stream_scheduler.h (below StreamStats) to avoid a circular
  // include; declared here so call sites only need this header.
  inline StreamStats Derive() const;
};

}  // namespace stream_internal
}  // namespace relborg

#endif  // RELBORG_STREAM_STREAM_METRICS_H_
